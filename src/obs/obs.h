// FsObs: the per-filesystem observability bundle — one latency histogram per
// operation type plus (when compiled in) the structured event trace. Both
// LfsFileSystem and FfsFileSystem own one and feed it from their public
// entry points via ScopedOpTimer.
//
// Latencies are *modeled disk time* deltas (BlockDevice::ModeledTime), so an
// op that is absorbed entirely by the write buffer records 0 and a Sync that
// flushes a segment records the full modeled service time of the partial-
// segment write. Deterministic by construction: the same workload records
// the same histograms on every run.

#ifndef LFS_OBS_OBS_H_
#define LFS_OBS_OBS_H_

#include <array>
#include <cstdint>

#include "src/obs/latency.h"
#include "src/obs/modeled_time.h"
#include "src/obs/trace.h"

namespace lfs {
class LogicalClock;  // src/fs/clock.h
}

namespace lfs::obs {

struct FsObs {
  std::array<LatencyHistogram, static_cast<size_t>(OpType::kCount)> op_hist;
#if LFS_TRACE_ENABLED
  TraceBuffer trace{1 << 16};
#endif

  TraceBuffer* tracer() {
#if LFS_TRACE_ENABLED
    return &trace;
#else
    return nullptr;
#endif
  }

  LatencyHistogram& hist(OpType op) {
    return op_hist[static_cast<size_t>(op)];
  }
  const LatencyHistogram& hist(OpType op) const {
    return op_hist[static_cast<size_t>(op)];
  }
};

// RAII op timer: emits kOpBegin/kOpEnd trace events and records the modeled-
// time delta into the op's histogram. `clock` provides the logical timestamp
// for the trace (may be null); `arg` is the op's principal argument (inode,
// segment, ...) for trace filtering.
class ScopedOpTimer {
 public:
  ScopedOpTimer(FsObs* obs, OpType op, const ModeledTimeSource* dev,
                const LogicalClock* clock, uint64_t arg = 0);
  ~ScopedOpTimer();

  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

  // Marks the op as failed in the kOpEnd record (latency is still recorded).
  void set_failed() { ok_ = false; }

 private:
  FsObs* obs_;
  OpType op_;
  const ModeledTimeSource* dev_;
  const LogicalClock* clock_;
  uint64_t arg_;
  double t0_;
  bool ok_ = true;
};

}  // namespace lfs::obs

#endif  // LFS_OBS_OBS_H_
