// Structured event trace: a fixed-capacity ring buffer of typed, fixed-size
// records stamped with the filesystem's logical clock and the modeled disk
// clock. The trace answers "what did the system do, in what order, and how
// much modeled time did it cost" — the raw material behind the paper's
// evaluation numbers (write cost, cleaning behaviour, recovery activity).
//
// Emission sites use the LFS_TRACE() macro, which compiles to nothing when
// the tree is configured with -DLFS_TRACE=OFF (LFS_TRACE_ENABLED=0), so the
// hot paths carry zero tracing cost in that configuration. The TraceBuffer
// type itself always exists so tools and tests link in both configurations.

#ifndef LFS_OBS_TRACE_H_
#define LFS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

#ifndef LFS_TRACE_ENABLED
#define LFS_TRACE_ENABLED 1
#endif

namespace lfs::obs {

// Record types. Values are stable (they appear in serialized trace files);
// append only.
enum class TraceEventType : uint16_t {
  kOpBegin = 1,         // op = OpType, a = inode or 0
  kOpEnd = 2,           // op = OpType, a = inode or 0, b = ok (1) / error (0)
  kSegmentWrite = 3,    // a = segment number, b = blocks written (summary + payload)
  kCleanerPassBegin = 4,  // a = clean segments before the pass
  kCleanerPassEnd = 5,    // a = segments reclaimed, b = live blocks migrated
  kCheckpointBegin = 6,   // a = checkpoint region index
  kCheckpointEnd = 7,     // a = checkpoint region index, b = ok (1) / error (0)
  kIoRetry = 8,           // a = block number, b = attempts beyond the first
  kMediaFault = 9,        // a = block number, b = StatusCode of the failure
  kQuarantine = 10,       // a = segment number
  kRollForward = 11,      // a = segment number, b = partials replayed
  kDegraded = 12,         // entered degraded read-only mode
  kCacheEvict = 13,       // a = block number, b = dirty (1) / clean (0)
  kCacheWriteback = 14,   // a = block number, b = run length in blocks
  kCacheFlush = 15,       // a = dirty blocks written back, b = total frames
};

// Operation codes for kOpBegin/kOpEnd, shared with the latency histograms
// (one histogram per op). Values are stable in serialized traces.
enum class OpType : uint16_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kCreate = 3,
  kUnlink = 4,
  kSync = 5,
  kLookup = 6,
  kTruncate = 7,
  kMkdir = 8,
  kRename = 9,
  kCleanerPass = 10,
  kCheckpoint = 11,
  kCount = 12,  // number of op codes; not a real op
};

const char* TraceEventTypeName(TraceEventType type);
const char* OpTypeName(OpType op);

// One trace record. Fixed-size POD so the ring is a flat allocation and
// serialization is a memcpy per record.
struct TraceRecord {
  uint64_t seq = 0;       // emission counter (monotone across wraparound)
  uint64_t ts = 0;        // logical clock at emission
  uint16_t type = 0;      // TraceEventType
  uint16_t op = 0;        // OpType for op events, 0 otherwise
  uint32_t pad = 0;
  uint64_t a = 0;         // type-specific (see TraceEventType)
  uint64_t b = 0;
  double t_model = 0.0;   // modeled disk time (seconds) at emission

  // One-line human rendering ("seq=12 ts=40 op_end op=read a=5 ...").
  std::string ToString() const;
};

// Thread safety: Emit serializes slot claims under an internal mutex (a
// bare fetch-add claim would let a lapped writer tear a slot another thread
// is still filling), so concurrent emitters are race-free and seq numbers
// stay dense. Single-threaded emission order — and therefore the serialized
// trace file — is byte-identical to the lock-free original.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 1 << 16);

  void Emit(TraceEventType type, OpType op, uint64_t ts, uint64_t a, uint64_t b,
            double t_model);

  size_t capacity() const { return ring_.size(); }
  // Records currently retained (== min(emitted, capacity)).
  size_t size() const;
  // Total records ever emitted, including overwritten ones.
  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  void Clear();

  // Retained records, oldest first.
  std::vector<TraceRecord> Snapshot() const;

  // Binary trace file: 8-byte magic, version, record size, record count,
  // then the records oldest-first. Read back with ReadFile / lfstrace.
  Status WriteFile(const std::string& path) const;
  static Result<std::vector<TraceRecord>> ReadFile(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::vector<TraceRecord> ring_;
  std::atomic<uint64_t> emitted_{0};
};

}  // namespace lfs::obs

// Emission macro: no-op (arguments unevaluated) when tracing is compiled out.
#if LFS_TRACE_ENABLED
#define LFS_TRACE(tracer, ...)              \
  do {                                      \
    if ((tracer) != nullptr) {              \
      (tracer)->Emit(__VA_ARGS__);          \
    }                                       \
  } while (0)
#else
#define LFS_TRACE(tracer, ...) ((void)0)
#endif

#endif  // LFS_OBS_TRACE_H_
