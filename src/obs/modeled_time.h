// ModeledTimeSource: the one-method interface through which the obs layer
// reads the simulated disk clock. BlockDevice inherits it, so any device in
// a stack can be handed to a ScopedOpTimer; only SimDisk reports nonzero
// time (its accumulated DiskModel service time), and wrapper devices forward
// to their backing so the clock is visible through fault-injection stacks.

#ifndef LFS_OBS_MODELED_TIME_H_
#define LFS_OBS_MODELED_TIME_H_

namespace lfs::obs {

class ModeledTimeSource {
 public:
  virtual ~ModeledTimeSource() = default;
  // Monotone modeled time in seconds; 0 for devices without a timing model.
  virtual double ModeledTime() const { return 0.0; }
};

}  // namespace lfs::obs

#endif  // LFS_OBS_MODELED_TIME_H_
