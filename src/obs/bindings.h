// Registry bindings: snapshot every counter family in the repository into a
// MetricsRegistry under a dotted-name prefix. Header-only so obs itself
// stays free of link dependencies on the disk/lfs/ffs libraries — callers
// (benches, tools, tests) already link whichever families they bind.

#ifndef LFS_OBS_BINDINGS_H_
#define LFS_OBS_BINDINGS_H_

#include <string>

#include "src/disk/fault_disk.h"
#include "src/disk/sim_disk.h"
#include "src/disk/ssd_disk.h"
#include "src/ffs/ffs.h"
#include "src/lfs/stats.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace lfs::obs {

inline void BindLfsStats(MetricsRegistry* r, const std::string& p, const LfsStats& s) {
  r->AddCounter(p + "log.payload_bytes_total", s.total_log_written() - s.summary_bytes);
  r->AddCounter(p + "log.summary_bytes", s.summary_bytes);
  r->AddCounter(p + "log.checkpoint_bytes", s.checkpoint_bytes);
  r->AddCounter(p + "log.new_payload_bytes", s.new_payload_bytes);
  r->AddCounter(p + "log.new_data_bytes", s.new_data_bytes);
  r->AddCounter(p + "cleaner.write_bytes", s.clean_write_bytes);
  r->AddCounter(p + "cleaner.read_bytes", s.clean_read_bytes);
  r->AddCounter(p + "cleaner.passes", s.cleaner_passes);
  r->AddCounter(p + "cleaner.segments_cleaned", s.segments_cleaned);
  r->AddCounter(p + "cleaner.segments_cleaned_empty", s.segments_cleaned_empty);
  r->AddGauge(p + "cleaner.avg_cleaned_utilization", s.AvgCleanedUtilization());
  r->AddGauge(p + "cleaner.empty_cleaned_fraction", s.EmptyCleanedFraction());
  r->AddGauge(p + "write_cost", s.WriteCost());
  r->AddCounter(p + "checkpoints", s.checkpoints);
  r->AddCounter(p + "recovery.rollforward_partials", s.rollforward_partials);
  r->AddCounter(p + "selection_mismatches", s.selection_mismatches);
  r->AddCounter(p + "fault.io_retries", s.io_retries);
  r->AddCounter(p + "fault.io_retry_failures", s.io_retry_failures);
  r->AddCounter(p + "fault.read_crc_failures", s.read_crc_failures);
  r->AddCounter(p + "fault.segments_quarantined", s.segments_quarantined);
  r->AddCounter(p + "fault.checkpoint_fallbacks", s.checkpoint_fallbacks);
  r->AddCounter(p + "fault.superblock_fallbacks", s.superblock_fallbacks);
  r->AddCounter(p + "fault.degraded_entries", s.degraded_entries);
}

inline void BindDiskStats(MetricsRegistry* r, const std::string& p, const DiskStats& s) {
  r->AddCounter(p + "reads", s.reads);
  r->AddCounter(p + "writes", s.writes);
  r->AddCounter(p + "bytes_read", s.bytes_read);
  r->AddCounter(p + "bytes_written", s.bytes_written);
  r->AddCounter(p + "seeks", s.seeks);
  r->AddGauge(p + "busy_sec", s.busy_sec);
  r->AddGauge(p + "seek_sec", s.seek_sec);
}

inline void BindFaultCounters(MetricsRegistry* r, const std::string& p,
                              const FaultDisk::FaultCounters& c) {
  r->AddCounter(p + "reads", c.reads);
  r->AddCounter(p + "writes", c.writes);
  r->AddCounter(p + "transient_read_faults", c.transient_read_faults);
  r->AddCounter(p + "transient_write_faults", c.transient_write_faults);
  r->AddCounter(p + "latent_read_faults", c.latent_read_faults);
  r->AddCounter(p + "latent_write_faults", c.latent_write_faults);
  r->AddCounter(p + "corrupted_reads", c.corrupted_reads);
}

inline void BindFfsStats(MetricsRegistry* r, const std::string& p,
                         const ffs::FfsStats& s) {
  r->AddCounter(p + "metadata_writes", s.metadata_writes);
  r->AddCounter(p + "data_writes", s.data_writes);
  r->AddCounter(p + "data_bytes_written", s.data_bytes_written);
}

// Per-op latency histograms (only ops that recorded at least one sample, so
// exports stay compact and schema-stable across workload shapes).
inline void BindFsObs(MetricsRegistry* r, const std::string& p, const FsObs& o) {
  for (size_t i = 1; i < static_cast<size_t>(OpType::kCount); i++) {
    const LatencyHistogram& h = o.op_hist[i];
    if (h.count() > 0) {
      r->AddHistogram(p + "op." + OpTypeName(static_cast<OpType>(i)), h);
    }
  }
#if LFS_TRACE_ENABLED
  r->AddCounter(p + "trace.emitted", o.trace.emitted());
#endif
}

// Flash backend counters: the write-amplification and wear accounting the
// SSD benches gate on. New benches only — not part of BindDiskStats, so the
// rotating-disk bench schemas are untouched.
inline void BindSsdDisk(MetricsRegistry* r, const std::string& p, const SsdDisk& d) {
  SsdStats s = d.stats();
  r->AddCounter(p + "reads", s.reads);
  r->AddCounter(p + "writes", s.writes);
  r->AddCounter(p + "trims", s.trims);
  r->AddCounter(p + "bytes_read", s.bytes_read);
  r->AddCounter(p + "bytes_written", s.bytes_written);
  r->AddCounter(p + "pages_programmed_host", s.pages_programmed_host);
  r->AddCounter(p + "pages_programmed_gc", s.pages_programmed_gc);
  r->AddCounter(p + "pages_trimmed", s.pages_trimmed);
  r->AddCounter(p + "erases", s.erases);
  r->AddGauge(p + "busy_sec", s.busy_sec);
  r->AddGauge(p + "write_amplification", s.WriteAmplification());
  r->AddCounter(p + "erase_count_min", d.min_erase_count());
  r->AddCounter(p + "erase_count_max", d.max_erase_count());
}

// Device-level service-time histograms from a SimDisk.
inline void BindSimDisk(MetricsRegistry* r, const std::string& p, const SimDisk& d) {
  BindDiskStats(r, p, d.stats());
  if (d.read_latency().count() > 0) {
    r->AddHistogram(p + "io.read", d.read_latency());
  }
  if (d.write_latency().count() > 0) {
    r->AddHistogram(p + "io.write", d.write_latency());
  }
}

}  // namespace lfs::obs

#endif  // LFS_OBS_BINDINGS_H_
