#include "src/obs/obs.h"

#include "src/fs/clock.h"

namespace lfs::obs {

ScopedOpTimer::ScopedOpTimer(FsObs* obs, OpType op, const ModeledTimeSource* dev,
                             const LogicalClock* clock, uint64_t arg)
    : obs_(obs),
      op_(op),
      dev_(dev),
      clock_(clock),
      arg_(arg),
      t0_(dev != nullptr ? dev->ModeledTime() : 0.0) {
  LFS_TRACE(obs_->tracer(), TraceEventType::kOpBegin, op_,
            clock_ != nullptr ? clock_->Now() : 0, arg_, 0, t0_);
}

ScopedOpTimer::~ScopedOpTimer() {
  double t1 = dev_ != nullptr ? dev_->ModeledTime() : 0.0;
  obs_->hist(op_).Record(t1 - t0_);
  LFS_TRACE(obs_->tracer(), TraceEventType::kOpEnd, op_,
            clock_ != nullptr ? clock_->Now() : 0, arg_, ok_ ? 1 : 0, t1);
}

}  // namespace lfs::obs
