// MetricsRegistry: a named-metric snapshot unifying every counter family in
// the repository (LfsStats, FFS counters, DiskStats, FaultDisk counters) and
// the obs latency histograms behind one interface with machine-readable
// exporters.
//
// The registry is snapshot-style: Add*() copies the value at call time, so a
// registry can outlive the filesystem it describes and exporting never races
// live counters. Names are dotted paths ("lfs.cleaner.segments_cleaned");
// exporters emit them sorted, which gives the BENCH_*.json files a stable,
// diffable field order.

#ifndef LFS_OBS_METRICS_H_
#define LFS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/obs/latency.h"

namespace lfs::obs {

// Percentile summary of one latency histogram, as exported.
struct HistogramSnapshot {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  uint64_t min_us = 0;
  uint64_t max_us = 0;

  static HistogramSnapshot From(const LatencyHistogram& h);
};

// Thread safety: Add*() and the exporters serialize on an internal mutex so
// concurrent workers can publish into one registry. The reference accessors
// (values()/histograms()) remain unsynchronized views for quiesced use —
// don't walk them while another thread is still adding.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry& o) { *this = o; }
  MetricsRegistry& operator=(const MetricsRegistry& o);

  // Scalar metrics. Counters are integral, gauges are doubles; both land in
  // the same namespace and JSON "metrics" object.
  void AddCounter(const std::string& name, uint64_t value);
  void AddGauge(const std::string& name, double value);
  void AddHistogram(const std::string& name, const LatencyHistogram& hist);

  const std::map<std::string, double>& values() const { return values_; }
  const std::map<std::string, HistogramSnapshot>& histograms() const {
    return histograms_;
  }

  // {"metrics": {...}, "histograms": {name: {count, mean_us, p50_us, ...}}}
  // Keys sorted; numbers rendered with enough precision to round-trip.
  std::string ToJson(int indent = 2) const;

  // "metric,value" rows followed by
  // "histogram,count,mean_us,p50_us,p90_us,p95_us,p99_us,min_us,max_us" rows.
  std::string ToCsv() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> values_;
  std::map<std::string, HistogramSnapshot> histograms_;
};

// Renders a double as JSON: integral values without a fraction, others with
// round-trip precision. Shared by the registry and the bench emitters.
std::string JsonNumber(double v);

// Escapes a string for embedding in JSON (quotes added).
std::string JsonString(const std::string& s);

}  // namespace lfs::obs

#endif  // LFS_OBS_METRICS_H_
