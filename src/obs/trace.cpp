#include "src/obs/trace.h"

#include <cstdio>
#include <cstring>

namespace lfs::obs {

namespace {

// Trace file header. Fixed little-endian layout, record array follows.
constexpr char kMagic[8] = {'L', 'F', 'S', 'T', 'R', 'C', '0', '1'};

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t record_bytes;
  uint64_t count;
};

}  // namespace

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kOpBegin: return "op_begin";
    case TraceEventType::kOpEnd: return "op_end";
    case TraceEventType::kSegmentWrite: return "segment_write";
    case TraceEventType::kCleanerPassBegin: return "cleaner_pass_begin";
    case TraceEventType::kCleanerPassEnd: return "cleaner_pass_end";
    case TraceEventType::kCheckpointBegin: return "checkpoint_begin";
    case TraceEventType::kCheckpointEnd: return "checkpoint_end";
    case TraceEventType::kIoRetry: return "io_retry";
    case TraceEventType::kMediaFault: return "media_fault";
    case TraceEventType::kQuarantine: return "quarantine";
    case TraceEventType::kRollForward: return "roll_forward";
    case TraceEventType::kDegraded: return "degraded";
    case TraceEventType::kCacheEvict: return "cache_evict";
    case TraceEventType::kCacheWriteback: return "cache_writeback";
    case TraceEventType::kCacheFlush: return "cache_flush";
  }
  return "unknown";
}

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kNone: return "none";
    case OpType::kRead: return "read";
    case OpType::kWrite: return "write";
    case OpType::kCreate: return "create";
    case OpType::kUnlink: return "unlink";
    case OpType::kSync: return "sync";
    case OpType::kLookup: return "lookup";
    case OpType::kTruncate: return "truncate";
    case OpType::kMkdir: return "mkdir";
    case OpType::kRename: return "rename";
    case OpType::kCleanerPass: return "cleaner_pass";
    case OpType::kCheckpoint: return "checkpoint";
    case OpType::kCount: break;
  }
  return "unknown";
}

std::string TraceRecord::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "seq=%llu ts=%llu %s op=%s a=%llu b=%llu t=%.6f",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(ts),
                TraceEventTypeName(static_cast<TraceEventType>(type)),
                OpTypeName(static_cast<OpType>(op)),
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), t_model);
  return buf;
}

TraceBuffer::TraceBuffer(size_t capacity) : ring_(capacity > 0 ? capacity : 1) {}

void TraceBuffer::Emit(TraceEventType type, OpType op, uint64_t ts, uint64_t a,
                       uint64_t b, double t_model) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seq = emitted_.load(std::memory_order_relaxed);
  TraceRecord& r = ring_[seq % ring_.size()];
  r.seq = seq;
  r.ts = ts;
  r.type = static_cast<uint16_t>(type);
  r.op = static_cast<uint16_t>(op);
  r.a = a;
  r.b = b;
  r.t_model = t_model;
  emitted_.store(seq + 1, std::memory_order_relaxed);
}

size_t TraceBuffer::size() const {
  uint64_t emitted = emitted_.load(std::memory_order_relaxed);
  return emitted < ring_.size() ? static_cast<size_t>(emitted) : ring_.size();
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  emitted_.store(0, std::memory_order_relaxed);
}

std::vector<TraceRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> out;
  uint64_t emitted = emitted_.load(std::memory_order_relaxed);
  size_t n = emitted < ring_.size() ? static_cast<size_t>(emitted) : ring_.size();
  out.reserve(n);
  uint64_t first = emitted - n;
  for (uint64_t s = first; s < emitted; s++) {
    out.push_back(ring_[s % ring_.size()]);
  }
  return out;
}

Status TraceBuffer::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return IoError("trace: cannot open " + path + " for writing");
  }
  std::vector<TraceRecord> records = Snapshot();
  FileHeader hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.version = 1;
  hdr.record_bytes = sizeof(TraceRecord);
  hdr.count = records.size();
  bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1;
  ok = ok && (records.empty() ||
              std::fwrite(records.data(), sizeof(TraceRecord), records.size(), f) ==
                  records.size());
  ok = std::fclose(f) == 0 && ok;
  return ok ? OkStatus() : IoError("trace: short write to " + path);
}

Result<std::vector<TraceRecord>> TraceBuffer::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return IoError("trace: cannot open " + path);
  }
  FileHeader hdr{};
  if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 ||
      std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0 || hdr.version != 1 ||
      hdr.record_bytes != sizeof(TraceRecord)) {
    std::fclose(f);
    return CorruptionError("trace: " + path + " is not a v1 trace file");
  }
  std::vector<TraceRecord> records(hdr.count);
  size_t got = hdr.count == 0
                   ? 0
                   : std::fread(records.data(), sizeof(TraceRecord), hdr.count, f);
  std::fclose(f);
  if (got != hdr.count) {
    return CorruptionError("trace: " + path + " truncated");
  }
  return records;
}

}  // namespace lfs::obs
