// LatencyHistogram: log2-bucketed latency distribution over microsecond
// ticks. Bucket i (i >= 1) covers [2^(i-1), 2^i) microseconds; bucket 0
// holds exact-zero samples (common under LFS write buffering, where an op
// touches no disk at all). Samples come from the *modeled* disk clock
// (DiskModel service time), not host wall-clock, so every recorded
// distribution is deterministic and replayable.
//
// Percentiles are computed from the bucket counts: the bucket containing the
// requested rank contributes the geometric midpoint of its bounds. Exact
// min/max/sum are tracked alongside so means and extremes are not quantized.

#ifndef LFS_OBS_LATENCY_H_
#define LFS_OBS_LATENCY_H_

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "src/util/relaxed.h"

namespace lfs::obs {

class LatencyHistogram {
 public:
  // 64 buckets cover the full uint64 microsecond range.
  static constexpr size_t kBuckets = 64;

  // Bucket index for a sample of `us` microseconds: 0 for 0, otherwise
  // 1 + floor(log2(us)) (so bucket i covers [2^(i-1), 2^i)).
  static size_t BucketIndex(uint64_t us);

  // Inclusive lower bound of bucket i in microseconds (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerUs(size_t i);
  // Exclusive upper bound of bucket i (1, 2, 4, 8, ...).
  static uint64_t BucketUpperUs(size_t i);

  // Records one sample; `seconds` of modeled time is rounded to the nearest
  // whole microsecond. Negative samples are clamped to zero.
  void Record(double seconds);
  void RecordUs(uint64_t us);

  uint64_t count() const { return count_; }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  uint64_t min_us() const { return count_ == 0 ? 0 : min_us_.load(); }
  uint64_t max_us() const { return max_us_; }
  double sum_us() const { return sum_us_; }
  double MeanUs() const {
    return count_ == 0 ? 0.0 : sum_us_ / static_cast<double>(count_);
  }

  // p in [0, 1]; returns the latency (us) at that quantile, 0 if empty.
  // Exact for the extreme buckets (clamped to recorded min/max).
  double PercentileUs(double p) const;

  void Clear();

  // Merges another histogram into this one.
  void Merge(const LatencyHistogram& other);

 private:
  // Relaxed atomics: concurrent op timers record samples without a race;
  // the struct stays copyable so snapshots keep working. min_us_ holds a
  // max-sentinel when empty (min_us() hides it behind the count_ check).
  std::array<Relaxed<uint64_t>, kBuckets> counts_{};
  Relaxed<uint64_t> count_ = 0;
  Relaxed<uint64_t> min_us_ = std::numeric_limits<uint64_t>::max();
  Relaxed<uint64_t> max_us_ = 0;
  Relaxed<double> sum_us_ = 0.0;
};

}  // namespace lfs::obs

#endif  // LFS_OBS_LATENCY_H_
