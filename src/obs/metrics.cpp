#include "src/obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace lfs::obs {

HistogramSnapshot HistogramSnapshot::From(const LatencyHistogram& h) {
  HistogramSnapshot s;
  s.count = h.count();
  s.mean_us = h.MeanUs();
  s.p50_us = h.PercentileUs(0.50);
  s.p90_us = h.PercentileUs(0.90);
  s.p95_us = h.PercentileUs(0.95);
  s.p99_us = h.PercentileUs(0.99);
  s.min_us = h.min_us();
  s.max_us = h.max_us();
  return s;
}

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& o) {
  if (this != &o) {
    std::scoped_lock lock(mu_, o.mu_);
    values_ = o.values_;
    histograms_ = o.histograms_;
  }
  return *this;
}

void MetricsRegistry::AddCounter(const std::string& name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] = static_cast<double>(value);
}

void MetricsRegistry::AddGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] = value;
}

void MetricsRegistry::AddHistogram(const std::string& name,
                                   const LatencyHistogram& hist) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name] = HistogramSnapshot::From(hist);
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string HistJson(const HistogramSnapshot& h) {
  std::ostringstream os;
  os << "{\"count\": " << h.count << ", \"mean_us\": " << JsonNumber(h.mean_us)
     << ", \"p50_us\": " << JsonNumber(h.p50_us)
     << ", \"p90_us\": " << JsonNumber(h.p90_us)
     << ", \"p95_us\": " << JsonNumber(h.p95_us)
     << ", \"p99_us\": " << JsonNumber(h.p99_us) << ", \"min_us\": " << h.min_us
     << ", \"max_us\": " << h.max_us << "}";
  return os.str();
}

}  // namespace

std::string MetricsRegistry::ToJson(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string pad2 = pad + pad;
  std::ostringstream os;
  os << "{\n" << pad << "\"metrics\": {";
  bool first = true;
  for (const auto& [name, value] : values_) {
    os << (first ? "\n" : ",\n") << pad2 << JsonString(name) << ": "
       << JsonNumber(value);
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "},\n" << pad << "\"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    os << (first ? "\n" : ",\n") << pad2 << JsonString(name) << ": "
       << HistJson(hist);
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "}\n}";
  return os.str();
}

std::string MetricsRegistry::ToCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "metric,value\n";
  for (const auto& [name, value] : values_) {
    os << name << "," << JsonNumber(value) << "\n";
  }
  os << "histogram,count,mean_us,p50_us,p90_us,p95_us,p99_us,min_us,max_us\n";
  for (const auto& [name, h] : histograms_) {
    os << name << "," << h.count << "," << JsonNumber(h.mean_us) << ","
       << JsonNumber(h.p50_us) << "," << JsonNumber(h.p90_us) << ","
       << JsonNumber(h.p95_us) << "," << JsonNumber(h.p99_us) << "," << h.min_us
       << "," << h.max_us << "\n";
  }
  return os.str();
}

}  // namespace lfs::obs
