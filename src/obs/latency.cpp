#include "src/obs/latency.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace lfs::obs {

size_t LatencyHistogram::BucketIndex(uint64_t us) {
  if (us == 0) {
    return 0;
  }
  // bit_width(us) = 1 + floor(log2(us)); us in [2^(i-1), 2^i) => index i.
  size_t i = std::bit_width(us);
  return std::min(i, kBuckets - 1);
}

uint64_t LatencyHistogram::BucketLowerUs(size_t i) {
  return i == 0 ? 0 : uint64_t{1} << (i - 1);
}

uint64_t LatencyHistogram::BucketUpperUs(size_t i) {
  return uint64_t{1} << i;
}

void LatencyHistogram::Record(double seconds) {
  double us = seconds * 1e6;
  RecordUs(us <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(us)));
}

void LatencyHistogram::RecordUs(uint64_t us) {
  counts_[BucketIndex(us)]++;
  min_us_.StoreMin(us);
  max_us_.StoreMax(us);
  sum_us_ += static_cast<double>(us);
  count_++;
}

double LatencyHistogram::PercentileUs(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested sample, 1-based ceiling (p99 of 100 = 99th).
  uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; i++) {
    seen += counts_[i];
    if (seen >= rank) {
      if (i == 0) {
        return 0.0;
      }
      // Geometric midpoint of the bucket, clamped to the observed extremes
      // so tiny histograms report honest values.
      double lo = static_cast<double>(BucketLowerUs(i));
      double hi = static_cast<double>(BucketUpperUs(i));
      double mid = std::sqrt(lo * hi);
      mid = std::min(mid, static_cast<double>(max_us_));
      mid = std::max(mid, static_cast<double>(min_us()));
      return mid;
    }
  }
  return static_cast<double>(max_us_);
}

void LatencyHistogram::Clear() {
  counts_.fill(0);
  count_ = 0;
  min_us_ = std::numeric_limits<uint64_t>::max();
  max_us_ = 0;
  sum_us_ = 0.0;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBuckets; i++) {
    counts_[i] += other.counts_[i].load();
  }
  if (other.count_ > 0) {
    min_us_.StoreMin(other.min_us_.load());
    max_us_.StoreMax(other.max_us_.load());
  }
  count_ += other.count_.load();
  sum_us_ += other.sum_us_.load();
}

}  // namespace lfs::obs
