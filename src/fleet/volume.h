// FleetVolume: one independent LFS volume of the fleet — its own in-memory
// platter, timing-modeled disk, and mounted filesystem.
//
// The volume owns the full device stack (MemDisk -> SimDisk) separately from
// the filesystem so the filesystem can be unmounted and remounted over the
// same media (lifecycle tests, crash drills) and so offline tools (lfsck)
// can read the image while no filesystem is mounted. Each volume keeps its
// own cleaner state; the fleet-level coordinator (fleet.h) decides *when*
// each volume gets to clean.

#ifndef LFS_FLEET_VOLUME_H_
#define LFS_FLEET_VOLUME_H_

#include <memory>
#include <string>

#include "src/disk/disk_model.h"
#include "src/disk/mem_disk.h"
#include "src/disk/sim_disk.h"
#include "src/lfs/lfs.h"
#include "src/util/relaxed.h"
#include "src/util/result.h"

namespace lfs::fleet {

struct VolumeConfig {
  uint64_t disk_bytes = 64ull * 1024 * 1024;
  LfsConfig lfs;
  DiskModelParams disk_model = DiskModelParams::WrenIV();
};

class FleetVolume {
 public:
  // Creates the device stack and formats the filesystem.
  static Result<std::unique_ptr<FleetVolume>> Format(uint32_t index, const VolumeConfig& cfg);

  // Clean unmount (checkpoints). Idempotent; the media survives.
  Status Unmount();
  // Remounts over the existing media after Unmount().
  Status Mount();

  bool mounted() const { return fs_ != nullptr; }
  uint32_t index() const { return index_; }
  LfsFileSystem* fs() { return fs_.get(); }
  SimDisk* disk() { return disk_.get(); }
  // The raw platter, for offline checking (lfsck) past the timing wrapper.
  BlockDevice* raw_device() { return disk_ ? disk_->backing() : nullptr; }
  const VolumeConfig& config() const { return cfg_; }

  // --- fair-share cleaning inputs -----------------------------------------------
  //
  // Dirtiness: how far below its clean-segment comfort zone the volume is
  // (0 = enough clean segments). The coordinator budgets passes by this.
  uint32_t CleanDeficit() const;
  // Foreground pressure: ops dispatched to this volume since the counter was
  // last drained; the coordinator deprioritizes busy volumes unless their
  // deficit is critical.
  Relaxed<uint64_t> foreground_ops{0};
  // Cleaning work actually granted/performed (for metrics and fairness).
  Relaxed<uint64_t> cleaner_passes{0};
  Relaxed<uint64_t> cleaner_segments_reclaimed{0};

  // Runs up to `max_passes` cleaning passes if the volume is below its
  // comfort zone; returns segments reclaimed. No-op on unmounted volumes.
  Result<uint32_t> CleanBudgeted(uint32_t max_passes);

 private:
  FleetVolume(uint32_t index, const VolumeConfig& cfg) : index_(index), cfg_(cfg) {}

  uint32_t index_;
  VolumeConfig cfg_;
  std::unique_ptr<SimDisk> disk_;  // owns the MemDisk backing
  std::unique_ptr<LfsFileSystem> fs_;
};

}  // namespace lfs::fleet

#endif  // LFS_FLEET_VOLUME_H_
