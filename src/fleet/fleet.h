// Fleet: N independent LFS volumes behind one multi-tenant front door.
//
// This is the first subsystem above the single-mount API: the unit of
// service is no longer "a mounted filesystem" but a fleet of them, each with
// its own disk, cache, and cleaner, serving disjoint tenant namespaces. The
// shape follows LogBase's multi-tenant log-as-data store: tenants are routed
// by namespace to a volume, admission control keeps any one tenant from
// monopolizing its volume's log bandwidth, quotas bound its space, and a
// fleet-level coordinator budgets cleaning across volumes so background
// compaction follows dirtiness instead of whoever asks first.
//
// Every tenant op goes through the same pipeline:
//
//   route (tenant -> volume)  ->  admission (token bucket; kBusy on reject)
//     ->  quota (block/inode budgets; kNoSpace on exhaustion)
//       ->  the volume's LfsFileSystem, under the tenant's namespace root
//
// The front door is synchronous and thread-safe (volumes should be mounted
// with LfsConfig::concurrent when called from multiple threads); the
// deterministic event-loop scheduler in event_loop.h layers simulated-time
// queueing, backpressure ordering, and latency measurement on top of it.
//
// Quota accounting is by *data blocks* (file contents, block-granular) and
// inodes; metadata overheads (indirect blocks, directories) ride free. That
// is the usual cloud-quota contract — tenants reason about bytes of data —
// and it keeps the charge computable before the op executes.

#ifndef LFS_FLEET_FLEET_H_
#define LFS_FLEET_FLEET_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/fleet/tenant.h"
#include "src/fleet/volume.h"
#include "src/obs/metrics.h"

namespace lfs::fleet {

struct FleetConfig {
  std::vector<VolumeConfig> volumes;

  // Fair-share cleaner coordinator: total cleaning passes one round may
  // grant across all volumes, and how strongly foreground pressure (ops
  // routed to a volume since the last round) discounts its share.
  uint32_t clean_passes_per_round = 8;
  double pressure_discount = 1.0 / 256.0;  // score /= 1 + ops * discount

  // Time source for admission-control refill. Defaults to host monotonic
  // time; the deterministic scheduler injects simulated time instead.
  std::function<double()> now_fn;

  // When false, Fleet::Admit skips the token bucket (counters still tick):
  // set by the event-loop scheduler, which reserves admission slots itself
  // in simulated time so waits are modeled instead of rejected.
  bool front_door_admission = true;

  // Fleet-wide fine-grained reclamation override: when true, every volume's
  // LfsConfig gets adaptive cleaning + partial compaction, and (when the
  // rate is nonzero) a cleaner QoS token bucket, applied at Create time on
  // top of whatever the per-volume configs say. Off by default so existing
  // fleets keep their exact per-volume settings.
  bool fine_grained_reclamation = false;
  double cleaner_qos_bytes_per_sec = 0.0;
};

// Uniform fleet: `n` volumes of `bytes` each with the same LfsConfig.
FleetConfig UniformFleetConfig(uint32_t n, uint64_t bytes, const LfsConfig& lfs);

class Fleet {
 public:
  static Result<std::unique_ptr<Fleet>> Create(const FleetConfig& cfg);

  // Registers a tenant and creates its namespace root ("/<name>") on its
  // volume. Fails if the name is taken or the volume index is out of range.
  Status AddTenant(const TenantConfig& cfg);

  TenantState* tenant(std::string_view name);
  FleetVolume* volume(uint32_t index) {
    return index < volumes_.size() ? volumes_[index].get() : nullptr;
  }
  uint32_t num_volumes() const { return static_cast<uint32_t>(volumes_.size()); }
  std::vector<std::string> tenant_names() const;

  // --- tenant operations ---------------------------------------------------------
  //
  // Paths are tenant-relative ("/a/b"); the fleet maps them under the
  // tenant's root on its volume. Admission and quota failures surface as
  // kBusy / kNoSpace without touching the volume.

  Result<InodeNum> Create(std::string_view tenant, std::string_view path);
  Status Mkdir(std::string_view tenant, std::string_view path);
  Status Unlink(std::string_view tenant, std::string_view path);
  Status Rename(std::string_view tenant, std::string_view from, std::string_view to);
  Result<InodeNum> Lookup(std::string_view tenant, std::string_view path);
  Result<FileStat> Stat(std::string_view tenant, InodeNum ino);
  Status WriteAt(std::string_view tenant, InodeNum ino, uint64_t offset,
                 std::span<const uint8_t> data);
  Result<uint64_t> ReadAt(std::string_view tenant, InodeNum ino, uint64_t offset,
                          std::span<uint8_t> out);
  Status Truncate(std::string_view tenant, InodeNum ino, uint64_t new_size);

  // --- lifecycle -----------------------------------------------------------------

  Status SyncAll();     // checkpoint every volume
  Status UnmountAll();  // clean-unmount every volume (media survives)
  Status MountAll();    // remount unmounted volumes

  // --- fair-share cleaning -------------------------------------------------------
  //
  // One coordinator round: score every mounted volume by clean-segment
  // deficit discounted by its recent foreground pressure (drained here),
  // then grant single cleaning passes in score order until the round budget
  // is spent or no volume has a deficit. Volumes at their critical floor
  // always outrank pressure. Returns segments reclaimed fleet-wide.
  uint32_t FairShareCleanRound();

  uint64_t clean_rounds() const { return clean_rounds_.load(); }

  // --- metrics -------------------------------------------------------------------

  // Publishes per-tenant and per-volume counters under
  // "<prefix>tenant.<name>." and "<prefix>volume<i>.".
  void BindMetrics(obs::MetricsRegistry* reg, const std::string& prefix) const;

  double Now() const { return cfg_.now_fn ? cfg_.now_fn() : 0.0; }

 private:
  explicit Fleet(FleetConfig cfg) : cfg_(std::move(cfg)) {}

  struct Routed {
    TenantState* tenant = nullptr;
    FleetVolume* volume = nullptr;
    LfsFileSystem* fs = nullptr;
  };
  // Resolves the tenant and its mounted volume; admission is the caller's
  // job (namespace reads skip it deliberately: Stat/Lookup are index hits).
  Result<Routed> Route(std::string_view tenant);
  // Route + token-bucket admission (kBusy when over rate), bumping the
  // tenant's admitted/rejected counters and the volume's pressure counter.
  Result<Routed> Admit(std::string_view tenant);

  std::string VolumePath(const TenantState& t, std::string_view path) const;

  // Data blocks a file of `bytes` occupies on `fs` (block-granular).
  static uint64_t BlocksFor(const LfsFileSystem* fs, uint64_t bytes);

  FleetConfig cfg_;
  std::vector<std::unique_ptr<FleetVolume>> volumes_;
  // Tenant registry is append-only after setup; the map is stable so
  // TenantState pointers can be held across ops.
  std::map<std::string, std::unique_ptr<TenantState>, std::less<>> tenants_;
  Relaxed<uint64_t> clean_rounds_{0};
  Relaxed<uint64_t> clean_segments_total_{0};
};

}  // namespace lfs::fleet

#endif  // LFS_FLEET_FLEET_H_
