#include "src/fleet/fleet.h"

#include <algorithm>
#include <chrono>

namespace lfs::fleet {

namespace {
double HostNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

FleetConfig UniformFleetConfig(uint32_t n, uint64_t bytes, const LfsConfig& lfs) {
  FleetConfig cfg;
  cfg.volumes.resize(n);
  for (auto& v : cfg.volumes) {
    v.disk_bytes = bytes;
    v.lfs = lfs;
  }
  return cfg;
}

Result<std::unique_ptr<Fleet>> Fleet::Create(const FleetConfig& cfg) {
  if (cfg.volumes.empty()) {
    return InvalidArgumentError("fleet needs at least one volume");
  }
  auto fleet = std::unique_ptr<Fleet>(new Fleet(cfg));
  if (!fleet->cfg_.now_fn) {
    fleet->cfg_.now_fn = HostNowSeconds;
  }
  if (fleet->cfg_.fine_grained_reclamation) {
    for (auto& v : fleet->cfg_.volumes) {
      v.lfs.adaptive_cleaning = true;
      v.lfs.partial_compaction = true;
      v.lfs.cleaner_qos_bytes_per_sec = fleet->cfg_.cleaner_qos_bytes_per_sec;
    }
  }
  fleet->volumes_.reserve(cfg.volumes.size());
  for (uint32_t i = 0; i < cfg.volumes.size(); i++) {
    auto vol = FleetVolume::Format(i, fleet->cfg_.volumes[i]);
    if (!vol.ok()) {
      return vol.status();
    }
    fleet->volumes_.push_back(std::move(vol).value());
  }
  return fleet;
}

Status Fleet::AddTenant(const TenantConfig& tcfg) {
  if (tcfg.name.empty() || tcfg.name.find('/') != std::string::npos) {
    return InvalidArgumentError("tenant name must be a single non-empty component");
  }
  if (tcfg.volume >= volumes_.size()) {
    return InvalidArgumentError("tenant '" + tcfg.name + "' names volume " +
                                std::to_string(tcfg.volume) + " of " +
                                std::to_string(volumes_.size()));
  }
  if (tenants_.count(tcfg.name) != 0) {
    return AlreadyExistsError("tenant '" + tcfg.name + "' already registered");
  }
  FleetVolume* vol = volumes_[tcfg.volume].get();
  if (!vol->mounted()) {
    return InvalidArgumentError("tenant '" + tcfg.name + "' volume not mounted");
  }
  LFS_RETURN_IF_ERROR(vol->fs()->Mkdir("/" + tcfg.name));
  tenants_.emplace(tcfg.name, std::make_unique<TenantState>(tcfg));
  return OkStatus();
}

TenantState* Fleet::tenant(std::string_view name) {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Fleet::tenant_names() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) {
    names.push_back(name);
  }
  return names;
}

Result<Fleet::Routed> Fleet::Route(std::string_view name) {
  TenantState* t = tenant(name);
  if (t == nullptr) {
    return NotFoundError("unknown tenant '" + std::string(name) + "'");
  }
  FleetVolume* vol = volumes_[t->config().volume].get();
  if (!vol->mounted()) {
    return ReadOnlyError("tenant '" + std::string(name) + "' volume is unmounted");
  }
  return Routed{t, vol, vol->fs()};
}

Result<Fleet::Routed> Fleet::Admit(std::string_view name) {
  Result<Routed> r = Route(name);
  if (!r.ok()) {
    return r;
  }
  if (cfg_.front_door_admission && !r->tenant->bucket().TryConsume(Now(), 1.0)) {
    r->tenant->ops_rejected.fetch_add(1);
    return BusyError("tenant '" + std::string(name) + "' over admission rate");
  }
  r->tenant->ops_admitted.fetch_add(1);
  r->volume->foreground_ops.fetch_add(1);
  return r;
}

std::string Fleet::VolumePath(const TenantState& t, std::string_view path) const {
  std::string full = "/" + t.config().name;
  if (path != "/") {
    full.append(path);
  }
  return full;
}

uint64_t Fleet::BlocksFor(const LfsFileSystem* fs, uint64_t bytes) {
  uint32_t bs = fs->config().block_size;
  return (bytes + bs - 1) / bs;
}

Result<InodeNum> Fleet::Create(std::string_view tenant, std::string_view path) {
  Result<Routed> r = Admit(tenant);
  if (!r.ok()) {
    return r.status();
  }
  LFS_RETURN_IF_ERROR(r->tenant->ChargeInode());
  Result<InodeNum> ino = r->fs->Create(VolumePath(*r->tenant, path));
  if (!ino.ok()) {
    r->tenant->CreditInode();
    r->tenant->ops_failed.fetch_add(1);
    return ino;
  }
  r->tenant->ops_completed.fetch_add(1);
  return ino;
}

Status Fleet::Mkdir(std::string_view tenant, std::string_view path) {
  Result<Routed> r = Admit(tenant);
  if (!r.ok()) {
    return r.status();
  }
  LFS_RETURN_IF_ERROR(r->tenant->ChargeInode());
  Status st = r->fs->Mkdir(VolumePath(*r->tenant, path));
  if (!st.ok()) {
    r->tenant->CreditInode();
    r->tenant->ops_failed.fetch_add(1);
    return st;
  }
  r->tenant->ops_completed.fetch_add(1);
  return st;
}

Status Fleet::Unlink(std::string_view tenant, std::string_view path) {
  Result<Routed> r = Admit(tenant);
  if (!r.ok()) {
    return r.status();
  }
  std::string vpath = VolumePath(*r->tenant, path);
  // Snapshot the victim's size/links first so the quota credit is exact for
  // last-link unlinks. Races with other writers to the same file are the
  // caller's problem (same contract as POSIX unlink vs write).
  uint64_t credit_blocks = 0;
  bool credit_inode = false;
  Result<FileStat> st_before = r->fs->StatPath(vpath);
  if (st_before.ok() && st_before->type == FileType::kRegular) {
    if (st_before->nlink <= 1) {
      credit_blocks = BlocksFor(r->fs, st_before->size);
      credit_inode = true;
    }
  }
  Status st = r->fs->Unlink(vpath);
  if (!st.ok()) {
    r->tenant->ops_failed.fetch_add(1);
    return st;
  }
  r->tenant->CreditBlocks(credit_blocks);
  if (credit_inode) {
    r->tenant->CreditInode();
  }
  r->tenant->ops_completed.fetch_add(1);
  return st;
}

Status Fleet::Rename(std::string_view tenant, std::string_view from, std::string_view to) {
  Result<Routed> r = Admit(tenant);
  if (!r.ok()) {
    return r.status();
  }
  std::string vfrom = VolumePath(*r->tenant, from);
  std::string vto = VolumePath(*r->tenant, to);
  // A rename that replaces an existing regular file frees its blocks+inode.
  uint64_t credit_blocks = 0;
  bool credit_inode = false;
  Result<FileStat> target = r->fs->StatPath(vto);
  if (target.ok() && target->type == FileType::kRegular && target->nlink <= 1) {
    credit_blocks = BlocksFor(r->fs, target->size);
    credit_inode = true;
  }
  Status st = r->fs->Rename(vfrom, vto);
  if (!st.ok()) {
    r->tenant->ops_failed.fetch_add(1);
    return st;
  }
  r->tenant->CreditBlocks(credit_blocks);
  if (credit_inode) {
    r->tenant->CreditInode();
  }
  r->tenant->ops_completed.fetch_add(1);
  return st;
}

Result<InodeNum> Fleet::Lookup(std::string_view tenant, std::string_view path) {
  Result<Routed> r = Route(tenant);
  if (!r.ok()) {
    return r.status();
  }
  return r->fs->Lookup(VolumePath(*r->tenant, path));
}

Result<FileStat> Fleet::Stat(std::string_view tenant, InodeNum ino) {
  Result<Routed> r = Route(tenant);
  if (!r.ok()) {
    return r.status();
  }
  return r->fs->Stat(ino);
}

Status Fleet::WriteAt(std::string_view tenant, InodeNum ino, uint64_t offset,
                      std::span<const uint8_t> data) {
  Result<Routed> r = Admit(tenant);
  if (!r.ok()) {
    return r.status();
  }
  Result<FileStat> st_before = r->fs->Stat(ino);
  if (!st_before.ok()) {
    r->tenant->ops_failed.fetch_add(1);
    return st_before.status();
  }
  uint64_t old_blocks = BlocksFor(r->fs, st_before->size);
  uint64_t new_size = std::max<uint64_t>(st_before->size, offset + data.size());
  uint64_t new_blocks = BlocksFor(r->fs, new_size);
  uint64_t charged = new_blocks > old_blocks ? new_blocks - old_blocks : 0;
  LFS_RETURN_IF_ERROR(r->tenant->ChargeBlocks(charged));
  Status st = r->fs->WriteAt(ino, offset, data);
  if (!st.ok()) {
    r->tenant->CreditBlocks(charged);
    r->tenant->ops_failed.fetch_add(1);
    return st;
  }
  r->tenant->bytes_written.fetch_add(data.size());
  r->tenant->ops_completed.fetch_add(1);
  return st;
}

Result<uint64_t> Fleet::ReadAt(std::string_view tenant, InodeNum ino, uint64_t offset,
                               std::span<uint8_t> out) {
  Result<Routed> r = Admit(tenant);
  if (!r.ok()) {
    return r.status();
  }
  Result<uint64_t> got = r->fs->ReadAt(ino, offset, out);
  if (!got.ok()) {
    r->tenant->ops_failed.fetch_add(1);
    return got;
  }
  r->tenant->bytes_read.fetch_add(*got);
  r->tenant->ops_completed.fetch_add(1);
  return got;
}

Status Fleet::Truncate(std::string_view tenant, InodeNum ino, uint64_t new_size) {
  Result<Routed> r = Admit(tenant);
  if (!r.ok()) {
    return r.status();
  }
  Result<FileStat> st_before = r->fs->Stat(ino);
  if (!st_before.ok()) {
    r->tenant->ops_failed.fetch_add(1);
    return st_before.status();
  }
  uint64_t old_blocks = BlocksFor(r->fs, st_before->size);
  uint64_t new_blocks = BlocksFor(r->fs, new_size);
  uint64_t charged = new_blocks > old_blocks ? new_blocks - old_blocks : 0;
  LFS_RETURN_IF_ERROR(r->tenant->ChargeBlocks(charged));
  Status st = r->fs->Truncate(ino, new_size);
  if (!st.ok()) {
    r->tenant->CreditBlocks(charged);
    r->tenant->ops_failed.fetch_add(1);
    return st;
  }
  if (new_blocks < old_blocks) {
    r->tenant->CreditBlocks(old_blocks - new_blocks);
  }
  r->tenant->ops_completed.fetch_add(1);
  return st;
}

Status Fleet::SyncAll() {
  for (auto& vol : volumes_) {
    if (vol->mounted()) {
      LFS_RETURN_IF_ERROR(vol->fs()->Sync());
    }
  }
  return OkStatus();
}

Status Fleet::UnmountAll() {
  Status first;
  for (auto& vol : volumes_) {
    Status st = vol->Unmount();
    if (!st.ok() && first.ok()) {
      first = st;
    }
  }
  return first;
}

Status Fleet::MountAll() {
  for (auto& vol : volumes_) {
    LFS_RETURN_IF_ERROR(vol->Mount());
  }
  return OkStatus();
}

uint32_t Fleet::FairShareCleanRound() {
  clean_rounds_.fetch_add(1);
  // Drain each volume's foreground-pressure counter for this round.
  std::vector<uint64_t> pressure(volumes_.size(), 0);
  for (size_t i = 0; i < volumes_.size(); i++) {
    pressure[i] = volumes_[i]->foreground_ops.load();
    volumes_[i]->foreground_ops.store(0);
  }
  std::vector<bool> eligible(volumes_.size(), true);
  uint32_t reclaimed_total = 0;
  uint32_t budget = cfg_.clean_passes_per_round;
  while (budget > 0) {
    // Score = deficit discounted by foreground pressure; a volume at its
    // critical floor (the writer's hard reserve nearly gone) outranks any
    // pressure, since stalling it stalls its tenants entirely.
    double best_score = 0.0;
    int best = -1;
    for (size_t i = 0; i < volumes_.size(); i++) {
      FleetVolume* vol = volumes_[i].get();
      if (!eligible[i] || !vol->mounted()) {
        continue;
      }
      uint32_t deficit = vol->CleanDeficit();
      if (deficit == 0) {
        continue;
      }
      double score = static_cast<double>(deficit) /
                     (1.0 + static_cast<double>(pressure[i]) * cfg_.pressure_discount);
      uint32_t critical_floor = vol->config().lfs.reserve_segments + 2;
      if (vol->fs()->clean_segments() <= critical_floor) {
        score += 1e9;
      }
      if (best < 0 || score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      break;
    }
    Result<uint32_t> got = volumes_[best]->CleanBudgeted(1);
    budget--;
    if (!got.ok() || *got == 0) {
      // Nothing reclaimable (or the pass failed): don't re-grant this round.
      eligible[best] = false;
      continue;
    }
    reclaimed_total += *got;
  }
  clean_segments_total_.fetch_add(reclaimed_total);
  return reclaimed_total;
}

void Fleet::BindMetrics(obs::MetricsRegistry* reg, const std::string& prefix) const {
  reg->AddCounter(prefix + "clean_rounds", clean_rounds_.load());
  reg->AddCounter(prefix + "clean_segments_total", clean_segments_total_.load());
  for (const auto& [name, t] : tenants_) {
    std::string p = prefix + "tenant." + name + ".";
    reg->AddCounter(p + "ops_admitted", t->ops_admitted.load());
    reg->AddCounter(p + "ops_completed", t->ops_completed.load());
    reg->AddCounter(p + "ops_rejected", t->ops_rejected.load());
    reg->AddCounter(p + "ops_quota_denied", t->ops_quota_denied.load());
    reg->AddCounter(p + "ops_failed", t->ops_failed.load());
    reg->AddCounter(p + "bytes_written", t->bytes_written.load());
    reg->AddCounter(p + "bytes_read", t->bytes_read.load());
    reg->AddCounter(p + "blocks_used", t->blocks_used());
    reg->AddCounter(p + "inodes_used", t->inodes_used());
  }
  for (const auto& vol : volumes_) {
    std::string p = prefix + "volume" + std::to_string(vol->index()) + ".";
    reg->AddCounter(p + "cleaner_passes", vol->cleaner_passes.load());
    reg->AddCounter(p + "cleaner_segments_reclaimed",
                    vol->cleaner_segments_reclaimed.load());
    if (vol->mounted()) {
      reg->AddCounter(p + "clean_segments", vol->fs()->clean_segments());
      reg->AddGauge(p + "disk_utilization", vol->fs()->disk_utilization());
      reg->AddGauge(p + "disk_busy_sec", vol->disk()->ModeledTime());
      const LfsStats& st = vol->fs()->stats();
      reg->AddCounter(p + "partial_compactions", st.partial_compactions.load());
      reg->AddCounter(p + "governor_switches", st.governor_switches.load());
      reg->AddCounter(p + "qos_deferrals", st.qos_deferrals.load());
      reg->AddCounter(p + "qos_escalations", st.qos_escalations.load());
      reg->AddCounter(p + "qos_charged_bytes", st.qos_charged_bytes.load());
    }
  }
}

}  // namespace lfs::fleet
