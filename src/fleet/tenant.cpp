#include "src/fleet/tenant.h"

#include <algorithm>

namespace lfs::fleet {

void TokenBucket::RefillLocked(double now) {
  if (now > last_) {
    tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
    last_ = now;
  }
}

bool TokenBucket::TryConsume(double now, double cost) {
  if (rate_ <= 0.0) {
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now);
  if (tokens_ < cost) {
    return false;
  }
  tokens_ -= cost;
  return true;
}

double TokenBucket::DelayUntilAvailable(double now, double cost) {
  if (rate_ <= 0.0) {
    return 0.0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now);
  if (tokens_ >= cost) {
    return 0.0;
  }
  return (cost - tokens_) / rate_;
}

void TokenBucket::ConsumeAt(double now, double cost) {
  if (rate_ <= 0.0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now);
  tokens_ -= cost;
}

Status TenantState::ChargeBlocks(uint64_t blocks) {
  if (blocks == 0) {
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(quota_mu_);
  uint64_t used = blocks_used_.load();
  if (cfg_.max_blocks != 0 && used + blocks > cfg_.max_blocks) {
    ops_quota_denied.fetch_add(1);
    return NoSpaceError("tenant '" + cfg_.name + "' block quota exceeded (" +
                        std::to_string(used) + "+" + std::to_string(blocks) + " > " +
                        std::to_string(cfg_.max_blocks) + ")");
  }
  blocks_used_.store(used + blocks);
  return OkStatus();
}

void TenantState::CreditBlocks(uint64_t blocks) {
  if (blocks == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(quota_mu_);
  uint64_t used = blocks_used_.load();
  blocks_used_.store(used >= blocks ? used - blocks : 0);
}

Status TenantState::ChargeInode() {
  std::lock_guard<std::mutex> lock(quota_mu_);
  uint32_t used = inodes_used_.load();
  if (cfg_.max_inodes != 0 && used + 1 > cfg_.max_inodes) {
    ops_quota_denied.fetch_add(1);
    return NoSpaceError("tenant '" + cfg_.name + "' inode quota exceeded (" +
                        std::to_string(cfg_.max_inodes) + " inodes)");
  }
  inodes_used_.store(used + 1);
  return OkStatus();
}

void TenantState::CreditInode() {
  std::lock_guard<std::mutex> lock(quota_mu_);
  uint32_t used = inodes_used_.load();
  inodes_used_.store(used > 0 ? used - 1 : 0);
}

}  // namespace lfs::fleet
