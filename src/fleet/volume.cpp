#include "src/fleet/volume.h"

namespace lfs::fleet {

Result<std::unique_ptr<FleetVolume>> FleetVolume::Format(uint32_t index,
                                                         const VolumeConfig& cfg) {
  auto vol = std::unique_ptr<FleetVolume>(new FleetVolume(index, cfg));
  uint64_t blocks = cfg.disk_bytes / cfg.lfs.block_size;
  vol->disk_ = std::make_unique<SimDisk>(
      std::make_unique<MemDisk>(cfg.lfs.block_size, blocks), cfg.disk_model);
  auto fs = LfsFileSystem::Mkfs(vol->disk_.get(), cfg.lfs);
  if (!fs.ok()) {
    return fs.status();
  }
  vol->fs_ = std::move(fs).value();
  return vol;
}

Status FleetVolume::Unmount() {
  if (fs_ == nullptr) {
    return OkStatus();
  }
  Status st = fs_->Unmount();
  fs_.reset();  // drop the instance even if the checkpoint failed (degraded)
  return st;
}

Status FleetVolume::Mount() {
  if (fs_ != nullptr) {
    return OkStatus();
  }
  auto fs = LfsFileSystem::Mount(disk_.get(), cfg_.lfs);
  if (!fs.ok()) {
    return fs.status();
  }
  fs_ = std::move(fs).value();
  return OkStatus();
}

uint32_t FleetVolume::CleanDeficit() const {
  if (fs_ == nullptr) {
    return 0;
  }
  uint32_t clean = fs_->clean_segments();
  uint32_t want = cfg_.lfs.clean_hi;
  return clean >= want ? 0 : want - clean;
}

Result<uint32_t> FleetVolume::CleanBudgeted(uint32_t max_passes) {
  if (fs_ == nullptr || max_passes == 0) {
    return 0u;
  }
  uint32_t reclaimed = 0;
  for (uint32_t pass = 0; pass < max_passes; pass++) {
    if (CleanDeficit() == 0) {
      break;
    }
    Result<uint32_t> got = fs_->ForceClean();
    if (!got.ok()) {
      return got.status();
    }
    cleaner_passes.fetch_add(1);
    cleaner_segments_reclaimed.fetch_add(*got);
    reclaimed += *got;
    if (*got == 0) {
      break;  // nothing cleanable right now; don't spin
    }
  }
  return reclaimed;
}

}  // namespace lfs::fleet
