#include "src/fleet/event_loop.h"

#include <algorithm>

namespace lfs::fleet {

void EventLoop::At(double when, Fn fn) {
  heap_.push(Event{std::max(when, now_), seq_++, std::move(fn)});
}

void EventLoop::Run() {
  while (!heap_.empty()) {
    // The heap's top is const; copy the (cheap) header, steal the callback
    // via const_cast before pop — standard priority_queue move-out idiom.
    Event ev;
    ev.when = heap_.top().when;
    ev.fn = std::move(const_cast<Event&>(heap_.top()).fn);
    heap_.pop();
    now_ = std::max(now_, ev.when);
    events_run_++;
    ev.fn();
  }
}

const char* OpClassName(OpClass cls) {
  switch (cls) {
    case OpClass::kCreate:
      return "create";
    case OpClass::kSmallWrite:
      return "small_write";
    case OpClass::kSmallRead:
      return "small_read";
    case OpClass::kLargeWrite:
      return "large_write";
    case OpClass::kNamespace:
      return "namespace";
    case OpClass::kUnlink:
      return "unlink";
    case OpClass::kCount:
      break;
  }
  return "unknown";
}

FleetScheduler::FleetScheduler(Fleet* fleet, SchedulerOptions opts)
    : fleet_(fleet), opts_(opts) {
  vols_.resize(fleet->num_volumes());
  for (const std::string& name : fleet->tenant_names()) {
    tenant_lat_.emplace(name, obs::LatencyHistogram{});
  }
}

const obs::LatencyHistogram* FleetScheduler::tenant_latency(std::string_view tenant) const {
  auto it = tenant_lat_.find(tenant);
  return it == tenant_lat_.end() ? nullptr : &it->second;
}

double FleetScheduler::busy_fraction(uint32_t volume) const {
  if (volume >= vols_.size() || loop_.now() <= 0.0) {
    return 0.0;
  }
  return vols_[volume].busy_sec / loop_.now();
}

void FleetScheduler::Submit(double when, Op op) {
  loop_.At(when, [this, op = std::move(op)]() mutable {
    double now = loop_.now();
    TenantState* t = fleet_->tenant(op.tenant);
    if (t == nullptr) {
      if (op.done) {
        op.done(now, NotFoundError("unknown tenant '" + op.tenant + "'"));
      }
      return;
    }
    // Backpressure: past the tenant's queue-depth bound the pipeline sheds
    // load immediately instead of growing an unbounded admission queue.
    if (t->queued.load() >= t->config().max_queue_depth) {
      ops_rejected_++;
      t->ops_rejected.fetch_add(1);
      if (op.done) {
        op.done(now, BusyError("tenant '" + op.tenant + "' queue full"));
      }
      return;
    }
    t->queued.fetch_add(1);
    ops_outstanding_++;
    // Reserve an admission slot: the bucket goes (possibly) negative and the
    // op starts when its reservation matures — per-tenant FIFO by
    // construction, since each later reservation matures strictly later.
    double delay = t->bucket().DelayUntilAvailable(now, 1.0);
    t->bucket().ConsumeAt(now, 1.0);
    PendingOp pending;
    pending.op = std::move(op);
    pending.tenant = t;
    pending.submit_time = now;
    loop_.At(now + delay, [this, p = std::move(pending)]() mutable {
      EnqueueOnVolume(std::move(p));
    });
    ScheduleCleanRound();
  });
}

void FleetScheduler::EnqueueOnVolume(PendingOp pending) {
  uint32_t v = pending.tenant->config().volume;
  VolumeQueue& vq = vols_[v];
  vq.q.push_back(std::move(pending));
  if (!vq.busy) {
    ServeNext(v);
  }
}

void FleetScheduler::ServeNext(uint32_t v) {
  VolumeQueue& vq = vols_[v];
  if (vq.q.empty()) {
    vq.busy = false;
    return;
  }
  vq.busy = true;
  PendingOp pending = std::move(vq.q.front());
  vq.q.pop_front();

  FleetVolume* vol = fleet_->volume(v);
  double service;
  Status st;
  if (pending.forced_service >= 0.0) {
    // Synthetic job (cleaner round charge): occupies the worker, no body.
    service = pending.forced_service;
    st = OkStatus();
  } else {
    double disk0 = vol->disk()->ModeledTime();
    st = pending.op.body ? pending.op.body() : OkStatus();
    double disk_delta = vol->disk()->ModeledTime() - disk0;
    double cpu = opts_.cpu_per_op_sec +
                 opts_.cpu_per_byte_sec * static_cast<double>(pending.op.bytes);
    // LFS overlaps CPU with asynchronous log writes (bench_common's model).
    service = std::max(cpu, disk_delta);
  }
  vq.busy_sec += service;
  loop_.At(loop_.now() + service,
           [this, v, p = std::move(pending), st, service]() mutable {
             Complete(std::move(p), st, service);
             ServeNext(v);
           });
}

void FleetScheduler::Complete(PendingOp pending, Status st, double service_sec) {
  (void)service_sec;
  if (pending.tenant == nullptr) {
    return;  // synthetic cleaner charge
  }
  double now = loop_.now();
  double latency_us = (now - pending.submit_time) * 1e6;
  class_lat_[static_cast<size_t>(pending.op.cls)].RecordUs(
      static_cast<uint64_t>(latency_us + 0.5));
  auto it = tenant_lat_.find(pending.tenant->config().name);
  if (it != tenant_lat_.end()) {
    it->second.RecordUs(static_cast<uint64_t>(latency_us + 0.5));
  }
  pending.tenant->queued.fetch_add(static_cast<uint64_t>(-1));
  ops_outstanding_--;
  ops_done_++;
  if (pending.op.done) {
    pending.op.done(now, st);
  }
}

void FleetScheduler::ScheduleCleanRound() {
  if (opts_.clean_interval_sec <= 0.0 || clean_round_scheduled_) {
    return;
  }
  clean_round_scheduled_ = true;
  loop_.At(loop_.now() + opts_.clean_interval_sec, [this]() {
    clean_round_scheduled_ = false;
    // Run the coordinator round now (state effects are immediate) and charge
    // each volume's cleaning I/O to its worker timeline as a synthetic job,
    // so queued foreground ops wait behind the compaction they benefit from.
    std::vector<double> disk0(vols_.size());
    for (uint32_t v = 0; v < vols_.size(); v++) {
      FleetVolume* vol = fleet_->volume(v);
      disk0[v] = vol->mounted() ? vol->disk()->ModeledTime() : 0.0;
    }
    fleet_->FairShareCleanRound();
    for (uint32_t v = 0; v < vols_.size(); v++) {
      FleetVolume* vol = fleet_->volume(v);
      if (!vol->mounted()) {
        continue;
      }
      double delta = vol->disk()->ModeledTime() - disk0[v];
      if (delta > 0.0) {
        PendingOp charge;
        charge.forced_service = delta;
        vols_[v].q.push_front(std::move(charge));
        if (!vols_[v].busy) {
          ServeNext(v);
        }
      }
    }
    // Keep the cadence while client work is still in flight.
    if (ops_outstanding_ > 0) {
      ScheduleCleanRound();
    }
  });
}

void FleetScheduler::Run() { loop_.Run(); }

}  // namespace lfs::fleet
