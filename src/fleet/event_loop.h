// Deterministic asynchronous request pipeline over simulated time.
//
// EventLoop is a discrete-event scheduler: a min-heap of (time, seq)
// callbacks with FIFO tie-breaking, so a run is a pure function of the
// submitted events — no host clocks, no threads, byte-identical reports.
// Tens of thousands of simulated clients are just tens of thousands of
// closed-loop callback chains on one heap.
//
// FleetScheduler layers the fleet front door on it:
//
//   client Submit ── backpressure check (queue depth; reject kBusy)
//       └─ admission delay (token bucket reservation, per-tenant FIFO)
//            └─ per-volume worker queue (single server, FIFO)
//                 └─ execute against the volume; service time =
//                    max(cpu model, modeled disk delta)  [LFS overlaps them]
//                      └─ completion callback at submit-to-done latency
//
// Op latency is completion - submit, in *simulated* seconds: it includes
// admission wait, queueing behind other tenants on the volume, the op's own
// service time, and any foreground cleaning the op triggered — which is
// exactly the tail the fleet's fair-share cleaner exists to shave.
//
// The fair-share cleaner coordinator runs as a recurring event: each round's
// cleaning I/O is charged to the owning volume's timeline, so background
// compaction delays foreground ops (honestly) without inflating their
// individual service times.

#ifndef LFS_FLEET_EVENT_LOOP_H_
#define LFS_FLEET_EVENT_LOOP_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/obs/latency.h"

namespace lfs::fleet {

class EventLoop {
 public:
  using Fn = std::function<void()>;

  double now() const { return now_; }

  // Schedules fn at simulated time `when` (clamped to now). Events at equal
  // times run in submission order.
  void At(double when, Fn fn);

  // Runs events in time order until the heap is empty.
  void Run();

  uint64_t events_run() const { return events_run_; }

 private:
  struct Event {
    double when;
    uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  uint64_t seq_ = 0;
  uint64_t events_run_ = 0;
};

// Operation classes the scheduler tracks separate latency tails for.
enum class OpClass : uint8_t {
  kCreate = 0,
  kSmallWrite,
  kSmallRead,
  kLargeWrite,
  kNamespace,  // mkdir/rename/readdir-style metadata traffic
  kUnlink,
  kCount,
};
const char* OpClassName(OpClass cls);

struct SchedulerOptions {
  // CPU cost charged per op and per byte, overlapped with disk time the way
  // the bench layer models LFS (elapsed = max(cpu, disk)).
  double cpu_per_op_sec = 50e-6;
  double cpu_per_byte_sec = 2e-9;

  // Fair-share cleaner cadence (simulated seconds); 0 disables coordinator
  // rounds (volumes then clean only in their own foreground paths).
  double clean_interval_sec = 0.25;
};

class FleetScheduler {
 public:
  // One tenant operation. `body` runs against the fleet at dispatch time;
  // `done` fires at the op's simulated completion (or immediate rejection).
  struct Op {
    std::string tenant;
    OpClass cls = OpClass::kSmallWrite;
    uint64_t bytes = 0;  // payload size, for the CPU cost model
    std::function<Status()> body;
    std::function<void(double now, const Status& st)> done;  // may be null
  };

  FleetScheduler(Fleet* fleet, SchedulerOptions opts);

  EventLoop& loop() { return loop_; }
  double now() const { return loop_.now(); }

  // Submits an op at simulated time `when`. Backpressure (tenant queue
  // depth) rejects immediately with kBusy; otherwise the op is reserved an
  // admission slot (token bucket, per-tenant FIFO) and queued on its
  // volume's worker.
  void Submit(double when, Op op);

  // Runs the pipeline until every submitted op completed.
  void Run();

  // --- results -------------------------------------------------------------------

  const obs::LatencyHistogram& class_latency(OpClass cls) const {
    return class_lat_[static_cast<size_t>(cls)];
  }
  // Per-tenant all-class latency (keyed as fleet tenants are).
  const obs::LatencyHistogram* tenant_latency(std::string_view tenant) const;

  uint64_t ops_done() const { return ops_done_; }
  uint64_t ops_rejected() const { return ops_rejected_; }
  double busy_fraction(uint32_t volume) const;  // volume busy / sim elapsed

 private:
  struct PendingOp {
    Op op;
    TenantState* tenant = nullptr;  // null for synthetic cleaner charges
    double submit_time = 0.0;
    // >= 0: a synthetic job occupying the worker for exactly this long
    // (cleaner-round I/O charged to the volume's timeline); no body, no
    // latency sample.
    double forced_service = -1.0;
  };
  struct VolumeQueue {
    std::deque<PendingOp> q;
    bool busy = false;
    double busy_sec = 0.0;  // total simulated service time charged
  };

  void EnqueueOnVolume(PendingOp pending);
  void ServeNext(uint32_t volume);
  void Complete(PendingOp pending, Status st, double service_sec);
  void ScheduleCleanRound();

  Fleet* fleet_;
  SchedulerOptions opts_;
  EventLoop loop_;
  std::vector<VolumeQueue> vols_;
  std::array<obs::LatencyHistogram, static_cast<size_t>(OpClass::kCount)> class_lat_;
  std::map<std::string, obs::LatencyHistogram, std::less<>> tenant_lat_;
  uint64_t ops_outstanding_ = 0;
  uint64_t ops_done_ = 0;
  uint64_t ops_rejected_ = 0;
  bool clean_round_scheduled_ = false;
};

}  // namespace lfs::fleet

#endif  // LFS_FLEET_EVENT_LOOP_H_
