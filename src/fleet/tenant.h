// Tenant identity, quotas, and admission control for the fleet layer.
//
// A tenant is a named namespace bound to exactly one volume of the fleet.
// Every operation a tenant submits passes two gates before it reaches the
// volume's filesystem:
//
//   1. Admission: a token bucket refilled in *simulated* (or modeled) time.
//      An empty bucket means the tenant is over its provisioned op rate; the
//      caller either waits for the refill (backpressure, bounded by the
//      per-tenant queue depth) or is rejected outright (kBusy, the EAGAIN
//      analogue) once the backlog bound is hit.
//
//   2. Quota: block and inode budgets charged/credited as the tenant's files
//      grow and shrink. Exceeding a budget fails the op with kNoSpace (the
//      ENOSPC analogue) without touching the volume, so one tenant filling
//      its quota can never eat the log headroom other tenants rely on.
//
// All time parameters are explicit (`now` in seconds) so the deterministic
// event-loop scheduler and the threaded front door share one implementation;
// internal state is mutex-guarded for the threaded case.

#ifndef LFS_FLEET_TENANT_H_
#define LFS_FLEET_TENANT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "src/util/relaxed.h"
#include "src/util/status.h"

namespace lfs::fleet {

// Deterministic token bucket over an externally supplied clock. Capacity and
// refill rate are in operations; fractional tokens accumulate so low rates
// still make progress.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  // Consumes `cost` tokens if available at time `now`; returns true on
  // success. `now` must be monotone per bucket (late calls clamp).
  bool TryConsume(double now, double cost);

  // Seconds after `now` until `cost` tokens will be available (0 when they
  // already are). Does not consume.
  double DelayUntilAvailable(double now, double cost);

  // Unconditionally removes `cost` tokens (may go negative): used when the
  // scheduler has already committed to running the op at a future time.
  void ConsumeAt(double now, double cost);

  double rate_per_sec() const { return rate_; }

 private:
  void RefillLocked(double now);

  std::mutex mu_;
  double rate_ = 0.0;   // tokens per second; <= 0 disables admission control
  double burst_ = 0.0;  // bucket capacity
  double tokens_ = 0.0;
  double last_ = 0.0;   // last refill time
};

// Static description of one tenant.
struct TenantConfig {
  std::string name;
  uint32_t volume = 0;  // index into the fleet's volume array

  // Quotas; 0 = unlimited.
  uint64_t max_blocks = 0;
  uint32_t max_inodes = 0;

  // Admission control; rate <= 0 = unlimited.
  double ops_per_sec = 0.0;
  double burst_ops = 32.0;

  // Backpressure bound: ops the tenant may have queued awaiting admission or
  // service. Past this the front door rejects with kBusy instead of queueing.
  uint32_t max_queue_depth = 256;
};

// Live accounting for one tenant: quota usage, admission counters, and the
// token bucket. Counters are relaxed atomics so the threaded front door and
// metric exporters never race; quota charge/credit uses a mutex so the
// check-and-update is atomic.
class TenantState {
 public:
  explicit TenantState(const TenantConfig& cfg)
      : cfg_(cfg), bucket_(cfg.ops_per_sec, cfg.burst_ops) {}

  const TenantConfig& config() const { return cfg_; }
  TokenBucket& bucket() { return bucket_; }

  // Quota gates. Charge fails with kNoSpace (blocks) / kNoInodes-style
  // kNoSpace (inodes) when the budget would be exceeded; credit never fails
  // and clamps at zero (defensive: double-credits indicate a bug upstream
  // but must not wrap the counter).
  Status ChargeBlocks(uint64_t blocks);
  void CreditBlocks(uint64_t blocks);
  Status ChargeInode();
  void CreditInode();

  uint64_t blocks_used() const { return blocks_used_.load(); }
  uint32_t inodes_used() const { return inodes_used_.load(); }

  // Counters, bumped by the front door / scheduler.
  Relaxed<uint64_t> ops_admitted{0};
  Relaxed<uint64_t> ops_completed{0};
  Relaxed<uint64_t> ops_rejected{0};      // backpressure (kBusy)
  Relaxed<uint64_t> ops_quota_denied{0};  // quota (kNoSpace)
  Relaxed<uint64_t> ops_failed{0};        // volume returned an error
  Relaxed<uint64_t> bytes_written{0};
  Relaxed<uint64_t> bytes_read{0};

  // In-flight + admission-queued ops (backpressure bookkeeping).
  Relaxed<uint64_t> queued{0};

 private:
  TenantConfig cfg_;
  TokenBucket bucket_;
  std::mutex quota_mu_;
  Relaxed<uint64_t> blocks_used_{0};
  Relaxed<uint32_t> inodes_used_{0};
};

}  // namespace lfs::fleet

#endif  // LFS_FLEET_TENANT_H_
