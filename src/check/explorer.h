// Exhaustive crash-point exploration of a workload trace.
//
// The workload runs ONCE against a recording CrashDisk, which journals every
// device edge (write with payload, flush, trim) tagged with the issuing op.
// The explorer then reconstructs every image a real crash could leave behind
// by replaying journal prefixes onto the post-mkfs base image:
//
//   - for a write edge of n blocks, torn prefixes t = 0..n (real disks
//     complete whole sectors; t = 0 is "crash before the write", t = n
//     "write done, everything after lost");
//   - for each flush and trim edge, the crash at that barrier.
//
// Equivalence pruning: surviving images are deduplicated by an incremental
// content hash (per-block hashes combined order-independently), so torn
// prefixes that coincide with neighbouring crash points, rewrites of
// identical content, and trims (no-ops on the memory platter) collapse into
// one checked state. Only unique images are driven through the full oracle:
//
//   1. pre-mount lfsck   — the surviving image itself must already be
//                          consistent from its newest durable checkpoint
//                          (the log tail may only add warnings);
//   2. mount             — roll-forward recovery must succeed;
//   3. reference model   — every name/content within its legal crash window
//                          (RefModel::VerifyRecovered);
//   4. usability probe   — the recovered filesystem must accept new work;
//   5. post-mount lfsck  — the image after recovery + clean unmount must be
//                          error-free.
//
// ExploreOptions::mutate_edges lets tests and the trace minimizer inject
// ordering bugs into the journal (e.g. SkippedCheckpointBarrierMutator) to
// prove the oracle detects them.

#ifndef LFS_CHECK_EXPLORER_H_
#define LFS_CHECK_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/check/ref_model.h"
#include "src/check/workload.h"
#include "src/disk/crash_disk.h"
#include "src/util/result.h"

namespace lfs::check {

// One recorded workload execution: everything needed to rebuild any crash
// image offline without re-running the filesystem.
struct Recording {
  Workload workload;
  LfsConfig config;
  std::vector<uint8_t> base_image;  // raw platter right after mkfs
  std::vector<CrashEdge> edges;     // device journal of the whole run
  RefModel model;                   // full op history + sync points
};

struct CrashFailure {
  size_t edge = 0;     // journal index of the crash point
  uint64_t torn = 0;   // persisted prefix blocks (write edges)
  int64_t op = -1;     // workload op in flight
  std::string phase;   // premount-lfsck | mount | oracle | probe | postmount-lfsck
  std::string detail;
  std::string Describe() const;
};

struct ExploreOptions {
  // Stop oracle-checking new unique states past this budget (0 = unlimited);
  // exceeding states are counted in skipped_budget, enumeration continues.
  uint64_t max_states = 0;
  bool premount_lfsck = true;
  bool postmount_lfsck = true;
  bool usability_probe = true;
  size_t max_failures = 8;  // stop collecting failures past this many
  // Journal mutation hook (ordering-bug injection; used by the teeth test
  // and carried by the minimizer).
  std::function<void(std::vector<CrashEdge>&)> mutate_edges;
};

struct ExploreReport {
  uint64_t edges = 0;           // journal edges enumerated
  uint64_t crash_points = 0;    // (edge, torn-prefix) pairs
  uint64_t unique_states = 0;   // distinct surviving images
  uint64_t pruned = 0;          // crash points deduplicated away
  uint64_t checked = 0;         // unique states driven through the oracle
  uint64_t skipped_budget = 0;  // unique states skipped by max_states
  std::vector<CrashFailure> failures;

  bool clean() const { return failures.empty(); }
  std::string Summary() const;
};

// Executes the workload once against a recording CrashDisk, checking every
// op's outcome against the reference model as it goes (a divergence fails
// the record itself).
Result<Recording> RecordWorkload(const Workload& workload);

// Enumerates and checks every crash point of a recording.
Result<ExploreReport> ExploreRecording(const Recording& recording,
                                       const ExploreOptions& options = {});

// RecordWorkload + ExploreRecording.
Result<ExploreReport> ExploreWorkload(const Workload& workload,
                                      const ExploreOptions& options = {});

// Seeded ordering bug for the oracle's regression test: reorders the final
// checkpoint-region write ahead of the data writes flushed by the same op —
// exactly the image sequence a missing pre-checkpoint write barrier would
// produce. Exploring a healthy recording under this mutator must fail.
Result<std::function<void(std::vector<CrashEdge>&)>> SkippedCheckpointBarrierMutator(
    const Recording& recording);

}  // namespace lfs::check

#endif  // LFS_CHECK_EXPLORER_H_
