// Workload scripts for the crash-consistency model checker.
//
// A Workload is a deterministic, replayable list of filesystem operations
// plus the geometry it runs under. Scripts serialize to a line-oriented text
// format so failing fuzzer seeds can be checked into tests/seeds/, attached
// to CI artifacts, and shrunk by the trace minimizer:
//
//   workload smallfiles
//   disk_blocks 2048
//   num_logs 1
//   write_buffer_blocks 16
//   op mkdir /d0
//   op create /d0/a
//   op write /d0/a off=0 len=3000 seed=7
//   op rename /d0/a /d0/b
//   op sync
//   op clean
//
// Content payloads are derived from (seed, size) so a script carries no
// bulk data; DeterministicContent regenerates the exact bytes everywhere
// (recorder, reference model, oracle).

#ifndef LFS_CHECK_WORKLOAD_H_
#define LFS_CHECK_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/lfs/config.h"
#include "src/util/result.h"

namespace lfs::check {

enum class OpKind : uint8_t {
  kCreate,
  kMkdir,
  kUnlink,
  kRmdir,
  kLink,     // a = existing, b = new link
  kRename,   // a = from, b = to (regular files only)
  kWrite,    // a = path, offset/length/seed
  kTruncate, // a = path, length = new size
  kSync,
  kClean,    // one forced cleaner pass
};

struct Op {
  OpKind kind = OpKind::kSync;
  std::string a;
  std::string b;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t seed = 0;
};

struct Workload {
  std::string name;
  uint64_t disk_blocks = 2048;
  uint32_t num_logs = 1;
  uint32_t write_buffer_blocks = 16;
  // When nonzero, `op clean` passes drain high-utilization victims
  // incrementally (cfg.partial_compaction with a small per-pass block budget)
  // so exploration covers crashes between drain slices.
  uint32_t partial_compaction = 0;
  std::vector<Op> ops;

  // Small geometry so exhaustive exploration stays tractable: 1-KB blocks,
  // 16-block segments, tight cleaning thresholds.
  LfsConfig Config() const;

  std::string ToText() const;
  static Result<Workload> FromText(std::string_view text);
};

// The byte content written by a kWrite op: reproducible from (seed, size).
std::vector<uint8_t> DeterministicContent(uint64_t seed, size_t size);

// Canonical traces the CI smoke job explores exhaustively. Names:
// "smallfiles" (create/write/overwrite/truncate/unlink mix, single log) and
// "namespace" (rename cycles, link webs, rmdir, cleaner pass, num_logs=2).
Result<Workload> CanonicalWorkload(std::string_view name);
std::vector<std::string> CanonicalWorkloadNames();

}  // namespace lfs::check

#endif  // LFS_CHECK_WORKLOAD_H_
