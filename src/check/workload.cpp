#include "src/check/workload.h"

#include <cstdio>
#include <sstream>

#include "src/util/rng.h"

namespace lfs::check {
namespace {

const char* KindName(OpKind kind) {
  switch (kind) {
    case OpKind::kCreate:
      return "create";
    case OpKind::kMkdir:
      return "mkdir";
    case OpKind::kUnlink:
      return "unlink";
    case OpKind::kRmdir:
      return "rmdir";
    case OpKind::kLink:
      return "link";
    case OpKind::kRename:
      return "rename";
    case OpKind::kWrite:
      return "write";
    case OpKind::kTruncate:
      return "truncate";
    case OpKind::kSync:
      return "sync";
    case OpKind::kClean:
      return "clean";
  }
  return "?";
}

Result<uint64_t> ParseU64(const std::string& tok) {
  if (tok.empty()) {
    return InvalidArgumentError("empty number");
  }
  uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("bad number '" + tok + "'");
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

// Parses "key=value" returning value, enforcing the expected key.
Result<uint64_t> ParseKeyed(const std::string& tok, std::string_view key) {
  size_t eq = tok.find('=');
  if (eq == std::string::npos || tok.substr(0, eq) != key) {
    return InvalidArgumentError("expected '" + std::string(key) + "=N', got '" + tok + "'");
  }
  return ParseU64(tok.substr(eq + 1));
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream in(line);
  std::string t;
  while (in >> t) {
    toks.push_back(t);
  }
  return toks;
}

}  // namespace

LfsConfig Workload::Config() const {
  // Matches the tests' SmallConfig spirit: tiny segments so a short script
  // crosses many partial-write and cleaning boundaries.
  LfsConfig cfg;
  cfg.block_size = 1024;
  cfg.segment_blocks = 16;
  cfg.max_inodes = 512;
  cfg.clean_lo = 4;
  cfg.clean_hi = 6;
  cfg.segments_per_pass = 4;
  cfg.reserve_segments = 3;
  cfg.write_buffer_blocks = write_buffer_blocks;
  cfg.num_logs = num_logs;
  cfg.read_cache_blocks = 256;
  if (partial_compaction != 0) {
    // A tiny drain budget relative to the 16-block segments forces multi-pass
    // drains, putting crash points between slices of the same victim.
    cfg.partial_compaction = true;
    cfg.partial_compaction_min_u = 0.3;
    cfg.partial_compaction_max_blocks = 4;
  }
  return cfg;
}

std::string Workload::ToText() const {
  std::string out;
  out += "workload " + (name.empty() ? std::string("unnamed") : name) + "\n";
  out += "disk_blocks " + std::to_string(disk_blocks) + "\n";
  out += "num_logs " + std::to_string(num_logs) + "\n";
  out += "write_buffer_blocks " + std::to_string(write_buffer_blocks) + "\n";
  if (partial_compaction != 0) {
    // Only emitted when set, so pre-existing seed scripts round-trip
    // unchanged.
    out += "partial_compaction " + std::to_string(partial_compaction) + "\n";
  }
  for (const Op& op : ops) {
    out += "op ";
    out += KindName(op.kind);
    switch (op.kind) {
      case OpKind::kCreate:
      case OpKind::kMkdir:
      case OpKind::kUnlink:
      case OpKind::kRmdir:
        out += " " + op.a;
        break;
      case OpKind::kLink:
      case OpKind::kRename:
        out += " " + op.a + " " + op.b;
        break;
      case OpKind::kWrite:
        out += " " + op.a + " off=" + std::to_string(op.offset) +
               " len=" + std::to_string(op.length) + " seed=" + std::to_string(op.seed);
        break;
      case OpKind::kTruncate:
        out += " " + op.a + " len=" + std::to_string(op.length);
        break;
      case OpKind::kSync:
      case OpKind::kClean:
        break;
    }
    out += "\n";
  }
  return out;
}

Result<Workload> Workload::FromText(std::string_view text) {
  Workload w;
  w.name = "unnamed";
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    std::vector<std::string> toks = Tokenize(line);
    if (toks.empty() || toks[0][0] == '#') {
      continue;
    }
    auto fail = [&](const std::string& msg) {
      return InvalidArgumentError("workload line " + std::to_string(lineno) + ": " + msg);
    };
    const std::string& kw = toks[0];
    if (kw == "workload") {
      if (toks.size() != 2) {
        return fail("expected 'workload <name>'");
      }
      w.name = toks[1];
    } else if (kw == "disk_blocks" || kw == "num_logs" || kw == "write_buffer_blocks" ||
               kw == "partial_compaction") {
      if (toks.size() != 2) {
        return fail("expected '" + kw + " <n>'");
      }
      LFS_ASSIGN_OR_RETURN(uint64_t v, ParseU64(toks[1]));
      if (kw == "disk_blocks") {
        w.disk_blocks = v;
      } else if (kw == "num_logs") {
        w.num_logs = static_cast<uint32_t>(v);
      } else if (kw == "partial_compaction") {
        w.partial_compaction = static_cast<uint32_t>(v);
      } else {
        w.write_buffer_blocks = static_cast<uint32_t>(v);
      }
    } else if (kw == "op") {
      if (toks.size() < 2) {
        return fail("missing op kind");
      }
      Op op;
      const std::string& k = toks[1];
      if (k == "create" || k == "mkdir" || k == "unlink" || k == "rmdir") {
        if (toks.size() != 3) {
          return fail("expected 'op " + k + " <path>'");
        }
        op.kind = k == "create"   ? OpKind::kCreate
                  : k == "mkdir"  ? OpKind::kMkdir
                  : k == "unlink" ? OpKind::kUnlink
                                  : OpKind::kRmdir;
        op.a = toks[2];
      } else if (k == "link" || k == "rename") {
        if (toks.size() != 4) {
          return fail("expected 'op " + k + " <a> <b>'");
        }
        op.kind = k == "link" ? OpKind::kLink : OpKind::kRename;
        op.a = toks[2];
        op.b = toks[3];
      } else if (k == "write") {
        if (toks.size() != 6) {
          return fail("expected 'op write <path> off=N len=N seed=N'");
        }
        op.kind = OpKind::kWrite;
        op.a = toks[2];
        LFS_ASSIGN_OR_RETURN(op.offset, ParseKeyed(toks[3], "off"));
        LFS_ASSIGN_OR_RETURN(op.length, ParseKeyed(toks[4], "len"));
        LFS_ASSIGN_OR_RETURN(op.seed, ParseKeyed(toks[5], "seed"));
      } else if (k == "truncate") {
        if (toks.size() != 4) {
          return fail("expected 'op truncate <path> len=N'");
        }
        op.kind = OpKind::kTruncate;
        op.a = toks[2];
        LFS_ASSIGN_OR_RETURN(op.length, ParseKeyed(toks[3], "len"));
      } else if (k == "sync" || k == "clean") {
        if (toks.size() != 2) {
          return fail("'op " + k + "' takes no arguments");
        }
        op.kind = k == "sync" ? OpKind::kSync : OpKind::kClean;
      } else {
        return fail("unknown op kind '" + k + "'");
      }
      if (op.kind != OpKind::kSync && op.kind != OpKind::kClean &&
          (op.a.empty() || op.a[0] != '/')) {
        return fail("paths must be absolute");
      }
      w.ops.push_back(std::move(op));
    } else {
      return fail("unknown keyword '" + kw + "'");
    }
  }
  return w;
}

std::vector<uint8_t> DeterministicContent(uint64_t seed, size_t size) {
  std::vector<uint8_t> out(size);
  Rng rng(seed * 1000003ull + size);
  size_t i = 0;
  while (i + 8 <= size) {
    uint64_t v = rng.NextU64();
    for (int b = 0; b < 8; b++) {
      out[i++] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  if (i < size) {
    uint64_t v = rng.NextU64();
    while (i < size) {
      out[i++] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

namespace {

Workload SmallFilesWorkload() {
  Workload w;
  w.name = "smallfiles";
  w.disk_blocks = 2048;
  w.num_logs = 1;
  w.write_buffer_blocks = 16;
  auto create = [&](const std::string& p) { w.ops.push_back({OpKind::kCreate, p}); };
  auto mkdir = [&](const std::string& p) { w.ops.push_back({OpKind::kMkdir, p}); };
  auto unlink = [&](const std::string& p) { w.ops.push_back({OpKind::kUnlink, p}); };
  auto write = [&](const std::string& p, uint64_t off, uint64_t len, uint64_t seed) {
    Op op;
    op.kind = OpKind::kWrite;
    op.a = p;
    op.offset = off;
    op.length = len;
    op.seed = seed;
    w.ops.push_back(std::move(op));
  };
  auto truncate = [&](const std::string& p, uint64_t len) {
    Op op;
    op.kind = OpKind::kTruncate;
    op.a = p;
    op.length = len;
    w.ops.push_back(std::move(op));
  };
  auto sync = [&] { w.ops.push_back({OpKind::kSync}); };

  mkdir("/d0");
  mkdir("/d1");
  create("/d0/a");
  write("/d0/a", 0, 2500, 11);
  create("/d0/b");
  write("/d0/b", 0, 900, 12);
  create("/d1/c");
  write("/d1/c", 0, 4000, 13);
  sync();
  write("/d0/a", 1024, 2048, 14);  // overwrite + extend
  create("/f0");
  write("/f0", 0, 1500, 15);
  truncate("/d1/c", 1000);
  sync();
  unlink("/d0/b");
  write("/f0", 3000, 1200, 16);  // hole + extend
  create("/d1/d");
  write("/d1/d", 0, 2200, 17);
  truncate("/d0/a", 0);
  write("/d0/a", 0, 800, 18);
  sync();
  w.ops.push_back({OpKind::kClean});
  write("/d1/d", 512, 3000, 19);
  unlink("/f0");
  create("/f1");
  write("/f1", 0, 600, 20);
  sync();
  write("/f1", 200, 2600, 21);  // tail past the last checkpoint, never synced
  return w;
}

Workload NamespaceWorkload() {
  Workload w;
  w.name = "namespace";
  w.disk_blocks = 2048;
  w.num_logs = 2;
  w.write_buffer_blocks = 12;
  auto op1 = [&](OpKind k, const std::string& a) { w.ops.push_back({k, a}); };
  auto op2 = [&](OpKind k, const std::string& a, const std::string& b) {
    w.ops.push_back({k, a, b});
  };
  auto write = [&](const std::string& p, uint64_t off, uint64_t len, uint64_t seed) {
    Op op;
    op.kind = OpKind::kWrite;
    op.a = p;
    op.offset = off;
    op.length = len;
    op.seed = seed;
    w.ops.push_back(std::move(op));
  };
  auto sync = [&] { w.ops.push_back({OpKind::kSync}); };

  op1(OpKind::kMkdir, "/a");
  op1(OpKind::kMkdir, "/a/sub");
  op1(OpKind::kMkdir, "/b");
  op1(OpKind::kCreate, "/a/f1");
  write("/a/f1", 0, 1800, 31);
  op1(OpKind::kCreate, "/a/f2");
  write("/a/f2", 0, 700, 32);
  op2(OpKind::kLink, "/a/f1", "/b/l1");
  sync();
  op2(OpKind::kRename, "/a/f1", "/a/f3");  // three-way rename cycle: swap f1/f2
  op2(OpKind::kRename, "/a/f2", "/a/f1");
  op2(OpKind::kRename, "/a/f3", "/a/f2");
  op2(OpKind::kLink, "/a/f1", "/a/sub/l2");
  write("/b/l1", 256, 1400, 33);  // write through the hard link
  sync();
  op1(OpKind::kCreate, "/b/g");
  write("/b/g", 0, 2600, 34);
  op2(OpKind::kRename, "/b/g", "/a/sub/g");  // cross-directory move
  op1(OpKind::kUnlink, "/b/l1");
  {
    Op t;
    t.kind = OpKind::kTruncate;
    t.a = "/a/f2";
    t.length = 300;
    w.ops.push_back(std::move(t));
  }
  sync();
  op1(OpKind::kUnlink, "/a/sub/l2");
  op1(OpKind::kUnlink, "/a/f1");
  op1(OpKind::kUnlink, "/a/sub/g");
  op1(OpKind::kRmdir, "/a/sub");
  w.ops.push_back({OpKind::kClean});
  op1(OpKind::kCreate, "/b/h");
  write("/b/h", 0, 1200, 35);
  op2(OpKind::kRename, "/b/h", "/b/h2");  // tail rename, never synced
  return w;
}

}  // namespace

Result<Workload> CanonicalWorkload(std::string_view name) {
  if (name == "smallfiles") {
    return SmallFilesWorkload();
  }
  if (name == "namespace") {
    return NamespaceWorkload();
  }
  return NotFoundError("unknown canonical workload '" + std::string(name) +
                       "' (try: smallfiles, namespace)");
}

std::vector<std::string> CanonicalWorkloadNames() { return {"smallfiles", "namespace"}; }

}  // namespace lfs::check
