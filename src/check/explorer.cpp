#include "src/check/explorer.h"

#include <algorithm>
#include <unordered_set>

#include "src/disk/mem_disk.h"
#include "src/lfs/check.h"
#include "src/lfs/layout.h"
#include "src/lfs/lfs.h"

namespace lfs::check {
namespace {

// splitmix64 finalizer: decorrelates block index from block content hash.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// FNV-1a over one block's bytes.
uint64_t HashBytes(const uint8_t* p, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; i++) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Executes one workload op against a live filesystem; returns success.
bool ExecuteOp(LfsFileSystem* fs, const Op& op) {
  switch (op.kind) {
    case OpKind::kCreate:
      return fs->Create(op.a).ok();
    case OpKind::kMkdir:
      return fs->Mkdir(op.a).ok();
    case OpKind::kUnlink:
      return fs->Unlink(op.a).ok();
    case OpKind::kRmdir:
      return fs->Rmdir(op.a).ok();
    case OpKind::kLink:
      return fs->Link(op.a, op.b).ok();
    case OpKind::kRename:
      return fs->Rename(op.a, op.b).ok();
    case OpKind::kWrite: {
      Result<InodeNum> ino = fs->Lookup(op.a);
      if (!ino.ok()) {
        return false;
      }
      Result<FileStat> st = fs->Stat(*ino);
      if (!st.ok() || st->type != FileType::kRegular) {
        return false;
      }
      std::vector<uint8_t> data = DeterministicContent(op.seed, op.length);
      return fs->WriteAt(*ino, op.offset, data).ok();
    }
    case OpKind::kTruncate: {
      Result<InodeNum> ino = fs->Lookup(op.a);
      if (!ino.ok()) {
        return false;
      }
      Result<FileStat> st = fs->Stat(*ino);
      if (!st.ok() || st->type != FileType::kRegular) {
        return false;
      }
      return fs->Truncate(*ino, op.length).ok();
    }
    case OpKind::kSync:
      return fs->Sync().ok();
    case OpKind::kClean:
      return fs->ForceClean().ok();
  }
  return false;
}

// Drives one surviving image through the full oracle; appends at most one
// failure describing the first phase that rejected it.
void CheckState(const Recording& rec, const ExploreOptions& opts,
                const std::vector<uint8_t>& img, size_t edge_idx, uint64_t torn, int64_t op,
                ExploreReport& rep) {
  auto fail = [&](const char* phase, const std::string& detail) {
    if (rep.failures.size() < opts.max_failures) {
      CrashFailure f;
      f.edge = edge_idx;
      f.torn = torn;
      f.op = op;
      f.phase = phase;
      f.detail = detail;
      rep.failures.push_back(std::move(f));
    }
  };
  const LfsConfig& cfg = rec.config;
  MemDisk disk(cfg.block_size, rec.base_image.size() / cfg.block_size);
  std::copy(img.begin(), img.end(), disk.raw().begin());

  // 1. The surviving image must already be consistent from its newest
  //    durable checkpoint; a crash may only add recoverable tail warnings.
  if (opts.premount_lfsck) {
    Result<CheckReport> r = CheckLfsImage(&disk);
    if (!r.ok()) {
      fail("premount-lfsck", r.status().ToString());
      return;
    }
    if (r->errors != 0) {
      fail("premount-lfsck", r->messages.empty() ? r->Summary() : r->messages[0]);
      return;
    }
  }

  // 2. Roll-forward recovery must succeed.
  MountOptions mopts;
  mopts.roll_forward = true;
  Result<std::unique_ptr<LfsFileSystem>> mounted = LfsFileSystem::Mount(&disk, cfg, mopts);
  if (!mounted.ok()) {
    fail("mount", mounted.status().ToString());
    return;
  }
  std::unique_ptr<LfsFileSystem> fs = std::move(mounted).value();

  // 3. Recovered namespace and contents inside their legal crash windows.
  Status oracle = rec.model.VerifyRecovered(fs.get(), op);
  if (!oracle.ok()) {
    fail("oracle", oracle.ToString());
    return;
  }

  // 4. The recovered filesystem must accept new work.
  if (opts.usability_probe) {
    const char* probe = "/__crashck_probe";
    Result<InodeNum> ino = fs->Create(probe);
    if (!ino.ok()) {
      fail("probe", "create: " + ino.status().ToString());
      return;
    }
    std::vector<uint8_t> data = DeterministicContent(0xC4A54ull, 1500);
    Status ws = fs->WriteAt(*ino, 0, data);
    Status ss = ws.ok() ? fs->Sync() : ws;
    if (!ss.ok()) {
      fail("probe", "write+sync: " + ss.ToString());
      return;
    }
    Result<std::vector<uint8_t>> back = fs->ReadFile(probe);
    if (!back.ok() || *back != data) {
      fail("probe", "readback mismatch after recovery");
      return;
    }
    Status us = fs->Unlink(probe);
    if (!us.ok()) {
      fail("probe", "unlink: " + us.ToString());
      return;
    }
  }

  // 5. Clean unmount, then the final image must check error-free.
  Status un = fs->Unmount();
  if (!un.ok()) {
    fail("postmount-lfsck", "unmount: " + un.ToString());
    return;
  }
  fs.reset();
  if (opts.postmount_lfsck) {
    Result<CheckReport> r = CheckLfsImage(&disk);
    if (!r.ok()) {
      fail("postmount-lfsck", r.status().ToString());
    } else if (r->errors != 0) {
      fail("postmount-lfsck", r->messages.empty() ? r->Summary() : r->messages[0]);
    }
  }
}

}  // namespace

std::string CrashFailure::Describe() const {
  return "edge " + std::to_string(edge) + " torn " + std::to_string(torn) + " (op " +
         std::to_string(op) + ") " + phase + ": " + detail;
}

std::string ExploreReport::Summary() const {
  std::string out = std::to_string(edges) + " edges, " + std::to_string(crash_points) +
                    " crash points -> " + std::to_string(unique_states) +
                    " unique states (" + std::to_string(pruned) + " pruned), " +
                    std::to_string(checked) + " checked";
  if (skipped_budget > 0) {
    out += ", " + std::to_string(skipped_budget) + " past budget";
  }
  out += "; " + std::to_string(failures.size()) + " failures";
  return out;
}

Result<Recording> RecordWorkload(const Workload& workload) {
  Recording rec;
  rec.workload = workload;
  rec.config = workload.Config();
  const LfsConfig& cfg = rec.config;
  if (workload.disk_blocks < 64) {
    return InvalidArgumentError("workload disk too small");
  }
  rec.model = RefModel(cfg.block_size);

  auto mem = std::make_unique<MemDisk>(cfg.block_size, workload.disk_blocks);
  MemDisk* platter = mem.get();
  CrashDisk disk(std::move(mem));
  LFS_ASSIGN_OR_RETURN(std::unique_ptr<LfsFileSystem> fs, LfsFileSystem::Mkfs(&disk, cfg));

  // Snapshot the platter after mkfs: crash images are reconstructed as
  // base + a journal prefix, so crashes inside mkfs itself are out of scope.
  rec.base_image.assign(platter->raw().begin(), platter->raw().end());
  disk.StartRecording();

  for (size_t i = 0; i < workload.ops.size(); i++) {
    const Op& op = workload.ops[i];
    disk.SetOpMarker(static_cast<int64_t>(i));
    bool model_ok = rec.model.Apply(op, static_cast<int64_t>(i));
    bool fs_ok = ExecuteOp(fs.get(), op);
    if (model_ok != fs_ok) {
      return InternalError("record divergence at op " + std::to_string(i) + " (" + op.a +
                           (op.b.empty() ? "" : " -> " + op.b) + "): model says " +
                           (model_ok ? "ok" : "fail") + ", filesystem says " +
                           (fs_ok ? "ok" : "fail"));
    }
  }
  rec.edges = disk.TakeRecording();
  return rec;
}

Result<ExploreReport> ExploreRecording(const Recording& recording,
                                       const ExploreOptions& options) {
  const LfsConfig& cfg = recording.config;
  const uint32_t bs = cfg.block_size;
  if (recording.base_image.empty() || recording.base_image.size() % bs != 0) {
    return InvalidArgumentError("recording has no usable base image");
  }
  std::vector<CrashEdge> edges = recording.edges;
  if (options.mutate_edges) {
    options.mutate_edges(edges);
  }

  ExploreReport rep;
  rep.edges = edges.size();

  // Running image with an incrementally maintained content hash: per-block
  // hashes combined order-independently, so applying one block of a torn
  // prefix updates the image hash in O(block).
  std::vector<uint8_t> img = recording.base_image;
  const uint64_t nblocks = img.size() / bs;
  std::vector<uint64_t> block_hash(nblocks);
  uint64_t total = 0;
  for (uint64_t b = 0; b < nblocks; b++) {
    block_hash[b] = HashBytes(img.data() + b * bs, bs);
    total ^= Mix(block_hash[b] ^ Mix(b));
  }
  auto apply_block = [&](uint64_t b, const uint8_t* data) {
    total ^= Mix(block_hash[b] ^ Mix(b));
    std::copy(data, data + bs, img.begin() + b * bs);
    block_hash[b] = HashBytes(data, bs);
    total ^= Mix(block_hash[b] ^ Mix(b));
  };

  std::unordered_set<uint64_t> seen;
  auto consider = [&](size_t edge_idx, uint64_t torn, int64_t op) {
    rep.crash_points++;
    if (!seen.insert(total).second) {
      rep.pruned++;
      return;
    }
    rep.unique_states++;
    // One budget covers both the explicit cap and the failure limit: once
    // either trips, new unique states are enumerated but not driven.
    if ((options.max_states != 0 && rep.checked >= options.max_states) ||
        rep.failures.size() >= options.max_failures) {
      rep.skipped_budget++;
      return;
    }
    rep.checked++;
    CheckState(recording, options, img, edge_idx, torn, op, rep);
  };

  for (size_t k = 0; k < edges.size(); k++) {
    const CrashEdge& e = edges[k];
    if (e.kind == CrashEdge::Kind::kWrite) {
      // torn = 0 (nothing persisted) .. count (write complete, rest lost);
      // applying block t-1 advances the running image to prefix t.
      consider(k, 0, e.op);
      for (uint64_t t = 1; t <= e.count; t++) {
        apply_block(e.block + t - 1, e.data.data() + (t - 1) * bs);
        consider(k, t, e.op);
      }
    } else {
      // Flush: a barrier that never happened — image unchanged.
      // Trim: dropped discard command; the memory platter ignores trims, so
      // the surviving image is likewise unchanged (dedupe collapses these).
      consider(k, 0, e.op);
    }
  }
  return rep;
}

Result<ExploreReport> ExploreWorkload(const Workload& workload, const ExploreOptions& options) {
  LFS_ASSIGN_OR_RETURN(Recording rec, RecordWorkload(workload));
  return ExploreRecording(rec, options);
}

Result<std::function<void(std::vector<CrashEdge>&)>> SkippedCheckpointBarrierMutator(
    const Recording& recording) {
  const uint32_t bs = recording.config.block_size;
  if (recording.base_image.size() < bs) {
    return InvalidArgumentError("recording base image too small for a superblock");
  }
  LFS_ASSIGN_OR_RETURN(
      Superblock sb,
      Superblock::DecodeFrom(std::span<const uint8_t>(recording.base_image).subspan(0, bs)));
  const BlockNo cr0 = sb.cr_base0;
  const BlockNo cr1 = sb.cr_base1;
  return std::function<void(std::vector<CrashEdge>&)>(
      [cr0, cr1](std::vector<CrashEdge>& edges) {
        auto is_cr_write = [&](const CrashEdge& e) {
          return e.kind == CrashEdge::Kind::kWrite && (e.block == cr0 || e.block == cr1);
        };
        // The last checkpoint-region write...
        size_t last = edges.size();
        for (size_t k = edges.size(); k-- > 0;) {
          if (is_cr_write(edges[k])) {
            last = k;
            break;
          }
        }
        if (last == edges.size()) {
          return;
        }
        // ...moves ahead of the same op's preceding data writes, as if the
        // barrier between flushing the data and stamping the checkpoint had
        // been skipped.
        size_t start = last;
        while (start > 0 && edges[start - 1].op == edges[last].op &&
               !is_cr_write(edges[start - 1])) {
          start--;
        }
        if (start == last) {
          return;
        }
        std::rotate(edges.begin() + start, edges.begin() + last, edges.begin() + last + 1);
      });
}

}  // namespace lfs::check
