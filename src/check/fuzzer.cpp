#include "src/check/fuzzer.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace lfs::check {
namespace {

// Generator-side view of the namespace. It mirrors the reference model's
// validity rules, so tracked updates stay exact and most emitted ops are
// valid — but every op is still adjudicated by the model during recording.
struct Tracker {
  std::set<std::string> files;
  std::set<std::string> dirs;  // excluding "/"

  bool DirLive(const std::string& d) const { return d == "/" || dirs.count(d) > 0; }
  bool NameFree(const std::string& p) const { return !files.count(p) && !dirs.count(p); }
  bool DirEmpty(const std::string& d) const {
    std::string prefix = d + "/";
    for (const auto& f : files) {
      if (f.compare(0, prefix.size(), prefix) == 0) {
        return false;
      }
    }
    for (const auto& s : dirs) {
      if (s.compare(0, prefix.size(), prefix) == 0) {
        return false;
      }
    }
    return true;
  }
  std::string Pick(Rng& rng, const std::set<std::string>& pool) const {
    uint64_t i = rng.NextBelow(pool.size());
    auto it = pool.begin();
    std::advance(it, i);
    return *it;
  }
};

std::string JoinName(const std::string& dir, const std::string& leaf) {
  return dir == "/" ? "/" + leaf : dir + "/" + leaf;
}

}  // namespace

Workload FuzzWorkload(uint64_t seed, const FuzzOptions& options) {
  Workload w;
  w.name = "fuzz-" + std::to_string(seed);
  w.disk_blocks = 2048;
  w.num_logs = seed % 3 == 2 ? 2 : 1;           // a third of the seeds: two logs
  w.write_buffer_blocks = seed % 2 == 0 ? 16 : 12;  // vary flush-edge density

  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC4A5Cull);
  Tracker t;

  auto emit1 = [&](OpKind k, const std::string& a) {
    Op op;
    op.kind = k;
    op.a = a;
    w.ops.push_back(std::move(op));
  };
  auto emit2 = [&](OpKind k, const std::string& a, const std::string& b) {
    Op op;
    op.kind = k;
    op.a = a;
    op.b = b;
    w.ops.push_back(std::move(op));
  };
  auto emit_write = [&](const std::string& p, uint64_t off, uint64_t len) {
    Op op;
    op.kind = OpKind::kWrite;
    op.a = p;
    op.offset = off;
    op.length = len;
    op.seed = rng.NextU64() & 0xFFFFFF;
    w.ops.push_back(std::move(op));
  };

  auto pick_dir = [&] {
    // Root plus the live directories, uniformly.
    uint64_t i = rng.NextBelow(t.dirs.size() + 1);
    if (i == 0) {
      return std::string("/");
    }
    auto it = t.dirs.begin();
    std::advance(it, i - 1);
    return *it;
  };
  auto fresh_name = [&]() -> std::string {
    for (int attempt = 0; attempt < 8; attempt++) {
      std::string cand = JoinName(pick_dir(), "f" + std::to_string(rng.NextBelow(8)));
      if (t.NameFree(cand)) {
        return cand;
      }
    }
    return "";  // pools saturated; caller skips or emits a failing op
  };

  auto do_create = [&] {
    std::string p = fresh_name();
    if (p.empty()) {
      return;
    }
    emit1(OpKind::kCreate, p);
    t.files.insert(p);
  };
  auto do_write = [&] {
    if (t.files.empty()) {
      do_create();
      return;
    }
    std::string p = t.Pick(rng, t.files);
    uint64_t off = rng.NextBelow(7) * 700;         // holes + unaligned offsets
    uint64_t len = 1 + rng.NextBelow(3500);
    emit_write(p, off, len);
  };

  while (w.ops.size() < options.num_ops) {
    uint64_t r = rng.NextBelow(100);
    if (r < 32) {
      do_write();
    } else if (r < 44) {
      do_create();
    } else if (r < 52) {
      if (!t.files.empty()) {
        std::string p = t.Pick(rng, t.files);
        emit1(OpKind::kUnlink, p);
        t.files.erase(p);
      }
    } else if (r < 58) {
      if (t.dirs.size() < 4) {
        std::string d = "/d" + std::to_string(rng.NextBelow(4));
        if (t.NameFree(d)) {
          emit1(OpKind::kMkdir, d);
          t.dirs.insert(d);
        }
      }
    } else if (r < 62) {
      if (!t.dirs.empty()) {
        std::string d = t.Pick(rng, t.dirs);
        // Emitted even when non-empty: the model and the filesystem must
        // both refuse it — a free differential probe.
        emit1(OpKind::kRmdir, d);
        if (t.DirEmpty(d)) {
          t.dirs.erase(d);
        }
      }
    } else if (r < 70) {
      if (!t.files.empty()) {
        std::string a = t.Pick(rng, t.files);
        std::string b = fresh_name();
        if (!b.empty()) {
          emit2(OpKind::kLink, a, b);  // hard-link web: b aliases a's node
          t.files.insert(b);
        }
      }
    } else if (r < 79) {
      if (t.files.size() >= 3 && rng.NextBool(0.25)) {
        // Three-way rename cycle through a temporary name.
        std::vector<std::string> picked;
        std::set<std::string> pool = t.files;
        for (int i = 0; i < 3; i++) {
          std::string p = t.Pick(rng, pool);
          pool.erase(p);
          picked.push_back(p);
        }
        std::string tmp = fresh_name();
        if (!tmp.empty()) {
          emit2(OpKind::kRename, picked[0], tmp);
          emit2(OpKind::kRename, picked[1], picked[0]);
          emit2(OpKind::kRename, picked[2], picked[1]);
          emit2(OpKind::kRename, tmp, picked[2]);
        }
      } else if (!t.files.empty()) {
        std::string a = t.Pick(rng, t.files);
        std::string b;
        if (t.files.size() >= 2 && rng.NextBool(0.4)) {
          do {
            b = t.Pick(rng, t.files);
          } while (b == a);
          t.files.erase(b);  // replaced target
        } else {
          b = fresh_name();
        }
        if (!b.empty() && b != a) {
          emit2(OpKind::kRename, a, b);
          t.files.erase(a);
          t.files.insert(b);
        }
      }
    } else if (r < 86) {
      if (!t.files.empty()) {
        Op op;
        op.kind = OpKind::kTruncate;
        op.a = t.Pick(rng, t.files);
        op.length = rng.NextBelow(5000);  // shrink-or-extend interleavings
        w.ops.push_back(std::move(op));
      }
    } else if (r < 94) {
      w.ops.push_back({OpKind::kSync});
    } else {
      w.ops.push_back({OpKind::kClean});  // cleaner activation mid-trace
    }
  }
  return w;
}

}  // namespace lfs::check
