// RefModel: in-memory reference filesystem with crash-window semantics.
//
// This is the differential-test model (tests/differential_test.cpp,
// tests/lfs_fault_test.cpp) extracted and extended for the crash-point
// explorer. It serves two roles:
//
//  1. Functional model: Apply() predicts whether each operation succeeds and
//     tracks the resulting namespace and file contents, so a live filesystem
//     can be checked op-by-op (the differential tests) or after a quiesce
//     (the fault matrix).
//
//  2. Crash oracle: the model keeps the *history* of every name binding and
//     every file-content version, tagged with the op index that produced it,
//     plus the indices of completed Sync()s. VerifyRecovered() then decides
//     whether a recovered image is legal for a crash during op i:
//
//     - committed floor: let c be the last Sync that completed strictly
//       before op i. Everything visible at op c is durable — recovery may
//       never regress below it.
//     - legally lost: effects of ops in (c, i] were not yet forced; recovery
//       may surface any prefix of them. Because inode blocks reach the log
//       in flush order, not op order, the window is judged *per name* and
//       *per file*: each name must hold one of its bindings from the window
//       [state-at-c .. state-after-i], and each recovered file's bytes must
//       equal one of the bound node's in-window versions — or a block-level
//       prefix of an in-window WriteAt (the segment writer flushes a write's
//       dirty blocks in ascending order, so a mid-write crash legally
//       serializes a block-aligned prefix with the matching intermediate
//       size).
//     - never allowed: names the model has never seen (phantoms), contents
//       matching no version, regressions below the committed floor.
//
// The model is deliberately independent of src/lfs internals: it speaks the
// FileSystem interface only, so it can adjudicate FFS in the differential
// tests and LFS in the crash explorer with the same code.

#ifndef LFS_CHECK_REF_MODEL_H_
#define LFS_CHECK_REF_MODEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/check/workload.h"
#include "src/fs/file_system.h"
#include "src/util/result.h"

namespace lfs::check {

class RefModel {
 public:
  // block_size governs the granularity of legal torn-write prefixes.
  explicit RefModel(uint32_t block_size = 1024) : block_size_(block_size) {}

  // --- functional model -----------------------------------------------------

  // Applies op #index. Returns whether the op should succeed on a real
  // filesystem; the model state changes only when it succeeds.
  bool Apply(const Op& op, int64_t index);

  bool Exists(const std::string& path) const;
  bool IsDirPath(const std::string& path) const;
  bool DirEmpty(const std::string& path) const;
  // Current bytes of a live regular file; nullptr otherwise.
  const std::vector<uint8_t>* Data(const std::string& path) const;
  // All live paths (files and directories), sorted.
  std::vector<std::string> LivePaths() const;

  // --- crash oracle ---------------------------------------------------------

  // Checks a recovered, mounted filesystem against the recorded histories.
  // crash_op is the index of the op in flight at the crash (-1: before any
  // op ran). Returns Ok when every name and every content is inside its
  // legal window; otherwise an error naming the first violation.
  Status VerifyRecovered(FileSystem* fs, int64_t crash_op) const;

 private:
  struct Version {
    int64_t op = -1;
    std::vector<uint8_t> data;
    // Set when this version came from a WriteAt; enables torn-prefix
    // acceptance against the previous version.
    bool from_write = false;
    uint64_t w_off = 0;
    uint64_t w_len = 0;
    uint64_t w_seed = 0;
  };
  struct Node {
    bool is_dir = false;
    std::vector<Version> versions;  // op-ordered; dirs keep none
  };
  struct BindEvent {
    int64_t op = -1;
    int node = -1;  // -1: the name became unbound
  };
  struct RecoveredNode {
    bool is_dir = false;
    std::vector<uint8_t> data;
  };

  std::string ParentOf(const std::string& path) const;
  void Bind(const std::string& path, int node, int64_t op);
  int LiveNode(const std::string& path) const;  // -1 when absent

  // True when `content` is a legal recovery of `node` for a crash at op i
  // with committed floor c.
  bool ContentAcceptable(const Node& node, const std::vector<uint8_t>& content, int64_t c,
                         int64_t i) const;

  uint32_t block_size_;
  std::vector<Node> nodes_;
  std::map<std::string, int> live_;                          // path -> node
  std::map<std::string, std::vector<BindEvent>> bindings_;   // full history
  std::vector<int64_t> syncs_;                               // completed Sync op indices
};

}  // namespace lfs::check

#endif  // LFS_CHECK_REF_MODEL_H_
