// Seeded workload fuzzer for the crash-point explorer.
//
// FuzzWorkload(seed) deterministically expands a 64-bit seed into an op
// script mixing the shapes that historically break crash consistency:
// rename cycles, hard-link webs, truncate/extend interleavings, holes,
// sync/no-sync stretches, forced cleaner passes mid-trace, and (for a third
// of the seeds) the two-log append path. The generator tracks its own view
// of the namespace so most ops are valid, while the reference model still
// adjudicates every op during recording — any divergence fails the run.
//
// CI smoke explores the seeds checked into tests/seeds/; a failing seed's
// script round-trips through Workload::ToText so it can be attached as an
// artifact and shrunk by the minimizer.

#ifndef LFS_CHECK_FUZZER_H_
#define LFS_CHECK_FUZZER_H_

#include <cstdint>

#include "src/check/workload.h"

namespace lfs::check {

struct FuzzOptions {
  uint32_t num_ops = 50;
};

Workload FuzzWorkload(uint64_t seed, const FuzzOptions& options = {});

}  // namespace lfs::check

#endif  // LFS_CHECK_FUZZER_H_
