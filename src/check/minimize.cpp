#include "src/check/minimize.h"

#include <algorithm>

namespace lfs::check {

Result<MinimizeResult> MinimizeWorkload(const Workload& workload,
                                        const MinimizeOptions& options) {
  MinimizeResult result;
  result.workload = workload;

  // A candidate "fails" when it records cleanly and exploration reports at
  // least one failure. A record divergence means the candidate is a
  // different bug (or an over-aggressive cut) — not kept.
  auto fails = [&](const Workload& cand, ExploreReport* out) {
    if (result.probes >= options.max_probes) {
      return false;
    }
    result.probes++;
    Result<ExploreReport> r = ExploreWorkload(cand, options.explore);
    if (!r.ok() || r->failures.empty()) {
      return false;
    }
    *out = std::move(*r);
    return true;
  };

  if (!fails(workload, &result.report)) {
    return InvalidArgumentError("workload does not fail exploration; nothing to minimize");
  }

  // ddmin over the op list: try dropping each of n chunks (complement kept);
  // on success restart coarse, otherwise refine granularity.
  size_t n = 2;
  while (result.workload.ops.size() >= 2 && result.probes < options.max_probes) {
    const std::vector<Op>& ops = result.workload.ops;
    size_t chunk = (ops.size() + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < ops.size(); start += chunk) {
      Workload cand = result.workload;
      cand.ops.erase(cand.ops.begin() + start,
                     cand.ops.begin() + std::min(ops.size(), start + chunk));
      if (cand.ops.empty()) {
        continue;
      }
      ExploreReport rep;
      if (fails(cand, &rep)) {
        result.workload = std::move(cand);
        result.report = std::move(rep);
        n = std::max<size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (reduced) {
      continue;
    }
    if (n >= result.workload.ops.size()) {
      break;  // singleton granularity exhausted: locally minimal
    }
    n = std::min(result.workload.ops.size(), n * 2);
  }
  return result;
}

}  // namespace lfs::check
