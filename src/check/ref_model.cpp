#include "src/check/ref_model.h"

#include <algorithm>

namespace lfs::check {

std::string RefModel::ParentOf(const std::string& path) const {
  size_t pos = path.rfind('/');
  if (pos == 0) {
    return "/";
  }
  return path.substr(0, pos);
}

void RefModel::Bind(const std::string& path, int node, int64_t op) {
  bindings_[path].push_back(BindEvent{op, node});
  if (node < 0) {
    live_.erase(path);
  } else {
    live_[path] = node;
  }
}

int RefModel::LiveNode(const std::string& path) const {
  auto it = live_.find(path);
  return it == live_.end() ? -1 : it->second;
}

bool RefModel::Exists(const std::string& path) const {
  return path == "/" || LiveNode(path) >= 0;
}

bool RefModel::IsDirPath(const std::string& path) const {
  if (path == "/") {
    return true;
  }
  int nd = LiveNode(path);
  return nd >= 0 && nodes_[nd].is_dir;
}

bool RefModel::DirEmpty(const std::string& path) const {
  std::string prefix = path == "/" ? "/" : path + "/";
  for (const auto& [p, nd] : live_) {
    if (p.size() > prefix.size() && p.compare(0, prefix.size(), prefix) == 0) {
      return false;
    }
  }
  return true;
}

const std::vector<uint8_t>* RefModel::Data(const std::string& path) const {
  int nd = LiveNode(path);
  if (nd < 0 || nodes_[nd].is_dir) {
    return nullptr;
  }
  return &nodes_[nd].versions.back().data;
}

std::vector<std::string> RefModel::LivePaths() const {
  std::vector<std::string> out;
  out.reserve(live_.size());
  for (const auto& [p, nd] : live_) {
    out.push_back(p);
  }
  return out;  // std::map iteration is already sorted
}

bool RefModel::Apply(const Op& op, int64_t index) {
  switch (op.kind) {
    case OpKind::kCreate:
    case OpKind::kMkdir: {
      const std::string& p = op.a;
      if (p == "/" || Exists(p) || !IsDirPath(ParentOf(p))) {
        return false;
      }
      int nd = static_cast<int>(nodes_.size());
      Node node;
      node.is_dir = op.kind == OpKind::kMkdir;
      if (!node.is_dir) {
        Version v;
        v.op = index;
        node.versions.push_back(std::move(v));
      }
      nodes_.push_back(std::move(node));
      Bind(p, nd, index);
      return true;
    }
    case OpKind::kUnlink: {
      int nd = LiveNode(op.a);
      if (nd < 0 || nodes_[nd].is_dir) {
        return false;
      }
      Bind(op.a, -1, index);
      return true;
    }
    case OpKind::kRmdir: {
      if (op.a == "/") {
        return false;
      }
      int nd = LiveNode(op.a);
      if (nd < 0 || !nodes_[nd].is_dir || !DirEmpty(op.a)) {
        return false;
      }
      Bind(op.a, -1, index);
      return true;
    }
    case OpKind::kLink: {
      int nd = LiveNode(op.a);
      if (nd < 0 || nodes_[nd].is_dir || op.b == "/" || Exists(op.b) ||
          !IsDirPath(ParentOf(op.b))) {
        return false;
      }
      Bind(op.b, nd, index);
      return true;
    }
    case OpKind::kRename: {
      // The model handles regular-file renames only (the FileSystem contract
      // replaces regular-file targets; directory renames are out of scope).
      if (op.a == op.b || op.b == "/") {
        return false;
      }
      int nd = LiveNode(op.a);
      if (nd < 0 || nodes_[nd].is_dir || !IsDirPath(ParentOf(op.b))) {
        return false;
      }
      int tgt = LiveNode(op.b);
      if (tgt >= 0 && nodes_[tgt].is_dir) {
        return false;
      }
      if (tgt >= 0) {
        // Record the replaced target's unbinding as its own event: a crash
        // mid-rename may legally surface the target-gone-new-not-yet-linked
        // intermediate (roll-forward then removes the dangling entry).
        Bind(op.b, -1, index);
      }
      Bind(op.b, nd, index);
      Bind(op.a, -1, index);
      return true;
    }
    case OpKind::kWrite: {
      int nd = LiveNode(op.a);
      if (nd < 0 || nodes_[nd].is_dir) {
        return false;
      }
      if (op.length == 0) {
        return true;
      }
      Node& node = nodes_[nd];
      std::vector<uint8_t> next = node.versions.back().data;
      if (next.size() < op.offset + op.length) {
        next.resize(op.offset + op.length, 0);
      }
      std::vector<uint8_t> payload = DeterministicContent(op.seed, op.length);
      std::copy(payload.begin(), payload.end(), next.begin() + op.offset);
      Version v;
      v.op = index;
      v.data = std::move(next);
      v.from_write = true;
      v.w_off = op.offset;
      v.w_len = op.length;
      v.w_seed = op.seed;
      node.versions.push_back(std::move(v));
      return true;
    }
    case OpKind::kTruncate: {
      int nd = LiveNode(op.a);
      if (nd < 0 || nodes_[nd].is_dir) {
        return false;
      }
      Node& node = nodes_[nd];
      std::vector<uint8_t> next = node.versions.back().data;
      next.resize(op.length, 0);
      Version v;
      v.op = index;
      v.data = std::move(next);
      node.versions.push_back(std::move(v));
      return true;
    }
    case OpKind::kSync:
      syncs_.push_back(index);
      return true;
    case OpKind::kClean:
      return true;
  }
  return false;
}

bool RefModel::ContentAcceptable(const Node& node, const std::vector<uint8_t>& content,
                                 int64_t c, int64_t i) const {
  const std::vector<Version>& vs = node.versions;
  if (vs.empty()) {
    return content.empty();
  }
  // The committed floor: the last version forced out by a completed Sync.
  // Older versions are not acceptable — recovery must never regress below
  // the last checkpoint.
  size_t lo = 0;
  for (size_t vi = 0; vi < vs.size(); vi++) {
    if (vs[vi].op <= c) {
      lo = vi;
    }
  }
  for (size_t vi = lo; vi < vs.size() && vs[vi].op <= i; vi++) {
    const Version& v = vs[vi];
    if (content == v.data) {
      return true;
    }
    // A crash mid-WriteAt legally serializes a block-aligned prefix of the
    // write applied to the previous version: the writer stages dirty blocks
    // in ascending file-block order, bumping the inode size as it goes, so
    // any buffer flush inside the loop snapshots exactly such a prefix.
    if (v.from_write && v.op > c && vi > 0 && v.w_len > 0) {
      const std::vector<uint8_t>& prev = vs[vi - 1].data;
      const uint64_t bs = block_size_;
      uint64_t first = v.w_off / bs;
      uint64_t last = (v.w_off + v.w_len - 1) / bs;
      uint64_t n = last - first + 1;
      std::vector<uint8_t> payload;
      for (uint64_t t = 1; t < n; t++) {
        uint64_t upto = std::min<uint64_t>(v.w_off + v.w_len, (first + t) * bs);
        uint64_t size = std::max<uint64_t>(prev.size(), upto);
        if (content.size() != size) {
          continue;
        }
        if (payload.empty()) {
          payload = DeterministicContent(v.w_seed, v.w_len);
        }
        std::vector<uint8_t> cand = prev;
        cand.resize(size, 0);
        std::copy(payload.begin(), payload.begin() + (upto - v.w_off),
                  cand.begin() + v.w_off);
        if (content == cand) {
          return true;
        }
      }
    }
  }
  return false;
}

Status RefModel::VerifyRecovered(FileSystem* fs, int64_t crash_op) const {
  // Walk the recovered namespace.
  std::map<std::string, RecoveredNode> recovered;
  std::vector<std::string> stack = {"/"};
  while (!stack.empty()) {
    std::string dir = std::move(stack.back());
    stack.pop_back();
    Result<std::vector<DirEntry>> entries = fs->ReadDir(dir);
    if (!entries.ok()) {
      return InternalError("recovered walk: ReadDir(" + dir +
                           "): " + entries.status().ToString());
    }
    for (const DirEntry& e : *entries) {
      if (e.name == "." || e.name == "..") {
        continue;
      }
      std::string full = (dir == "/" ? "/" : dir + "/") + e.name;
      RecoveredNode rn;
      rn.is_dir = e.type == FileType::kDirectory;
      if (rn.is_dir) {
        stack.push_back(full);
      } else {
        Result<std::vector<uint8_t>> data = fs->ReadFile(full);
        if (!data.ok()) {
          return InternalError("recovered walk: ReadFile(" + full +
                               "): " + data.status().ToString());
        }
        rn.data = std::move(*data);
      }
      recovered.emplace(std::move(full), std::move(rn));
    }
  }

  // Committed floor: the last Sync that completed strictly before the
  // crashing op (syncs_ is ascending).
  int64_t c = -1;
  for (int64_t s : syncs_) {
    if (s < crash_op) {
      c = s;
    }
  }

  // Every name the workload ever touched must be in its legal window.
  for (const auto& [name, events] : bindings_) {
    bool absent_ok = false;
    std::vector<int> cands;
    int floor_node = -1;
    bool have_floor = false;
    for (const BindEvent& e : events) {
      if (e.op <= c) {
        floor_node = e.node;
        have_floor = true;
      }
    }
    if (!have_floor || floor_node < 0) {
      absent_ok = true;  // unbound (or never bound) at the committed floor
    } else {
      cands.push_back(floor_node);
    }
    for (const BindEvent& e : events) {
      if (e.op > c && e.op <= crash_op) {
        if (e.node < 0) {
          absent_ok = true;
        } else {
          cands.push_back(e.node);
        }
      }
    }

    auto it = recovered.find(name);
    if (it == recovered.end()) {
      if (!absent_ok) {
        return InternalError("oracle: '" + name +
                             "' missing after recovery but durably committed "
                             "(crash op " + std::to_string(crash_op) +
                             ", floor op " + std::to_string(c) + ")");
      }
      continue;
    }
    bool ok = false;
    for (int nd : cands) {
      const Node& node = nodes_[nd];
      if (node.is_dir != it->second.is_dir) {
        continue;
      }
      if (node.is_dir || ContentAcceptable(node, it->second.data, c, crash_op)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      return InternalError("oracle: '" + name + "' recovered with " +
                           (it->second.is_dir
                                ? std::string("directory type")
                                : std::to_string(it->second.data.size()) + " bytes") +
                           " matching no legal version (crash op " +
                           std::to_string(crash_op) + ", floor op " + std::to_string(c) +
                           ", " + std::to_string(cands.size()) + " candidate bindings)");
    }
  }

  // No phantoms: recovery must not invent names the workload never created.
  for (const auto& [name, rn] : recovered) {
    if (bindings_.find(name) == bindings_.end()) {
      return InternalError("oracle: phantom name '" + name + "' after recovery");
    }
  }
  return OkStatus();
}

}  // namespace lfs::check
