// Trace minimization: shrink a failing workload to a minimal reproducer.
//
// Delta debugging (ddmin) over the op list: repeatedly re-record and
// re-explore candidate subsets, keeping any subset that still produces at
// least one oracle failure, until no single op can be removed. The explore
// options — including a journal mutator that induced the original failure —
// are carried through every probe, so mutation-seeded bugs shrink exactly
// like organic ones.

#ifndef LFS_CHECK_MINIMIZE_H_
#define LFS_CHECK_MINIMIZE_H_

#include <cstdint>

#include "src/check/explorer.h"
#include "src/check/workload.h"

namespace lfs::check {

struct MinimizeOptions {
  ExploreOptions explore;
  // Hard cap on record+explore probes; minimization returns the best
  // reduction found so far when it trips.
  uint32_t max_probes = 150;
};

struct MinimizeResult {
  Workload workload;     // the minimized failing script
  ExploreReport report;  // its exploration (failures describe the crash point)
  uint32_t probes = 0;   // explorations spent
};

// Fails with InvalidArgument when `workload` does not fail exploration under
// the given options in the first place.
Result<MinimizeResult> MinimizeWorkload(const Workload& workload,
                                        const MinimizeOptions& options = {});

}  // namespace lfs::check

#endif  // LFS_CHECK_MINIMIZE_H_
