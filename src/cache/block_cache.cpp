#include "src/cache/block_cache.h"

#include <algorithm>
#include <cstring>

namespace lfs::cache {

namespace {

// Mixes the block number before taking the shard index so sequential log
// addresses spread across shards instead of marching through one at a time
// (splitmix64 finalizer — fast, and uniform enough for a shard pick).
uint64_t MixBlock(BlockNo block) {
  uint64_t x = block + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BlockCache::BlockCache(const BlockCacheConfig& config, WritebackFn writeback,
                       obs::TraceBuffer* tracer)
    : capacity_(std::max<uint64_t>(1, config.capacity_blocks)),
      block_size_(config.block_size),
      writeback_(std::move(writeback)),
      tracer_(tracer) {
  uint32_t shards = std::max<uint32_t>(1, config.shards);
  shards = static_cast<uint32_t>(std::min<uint64_t>(shards, capacity_));
  shards_ = std::vector<Shard>(shards);
  shard_capacity_ = (capacity_ + shards - 1) / shards;
}

BlockCache::~BlockCache() = default;

uint32_t BlockCache::ShardOf(BlockNo block) const {
  return static_cast<uint32_t>(MixBlock(block) % shards_.size());
}

void BlockCache::Touch(Shard& shard, Frame& frame, BlockNo block) {
  if (frame.lru_it != shard.lru.begin()) {
    shard.lru.erase(frame.lru_it);
    shard.lru.push_front(block);
    frame.lru_it = shard.lru.begin();
  }
}

bool BlockCache::Get(BlockNo block, std::span<uint8_t> out) {
  Shard& shard = shards_[ShardOf(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(block);
  if (it == shard.frames.end()) {
    stats_.misses++;
    return false;
  }
  Frame& frame = it->second;
  std::memcpy(out.data(), frame.data.data(),
              std::min<size_t>(out.size(), frame.data.size()));
  Touch(shard, frame, block);
  stats_.hits++;
  return true;
}

void BlockCache::EvictIfFull(Shard& shard) {
  while (shard.frames.size() >= shard_capacity_) {
    // LRU-first scan for an unpinned victim.
    BlockNo victim = kNilBlock;
    bool found = false;
    for (auto rit = shard.lru.rbegin(); rit != shard.lru.rend(); ++rit) {
      Frame& f = shard.frames.at(*rit);
      if (f.refcount == 0) {
        if (f.dirty) {
          // Writeback-then-drop is atomic under the shard lock: no reader
          // can fetch the block from the device in the window where the
          // device copy is stale.
          Status st = writeback_(*rit, 1, f.data);
          if (!st.ok()) {
            continue;  // keep the dirty frame; try an older victim
          }
          stats_.dirty_evictions++;
          stats_.writebacks++;
          stats_.writeback_blocks++;
          LFS_TRACE(tracer_, obs::TraceEventType::kCacheWriteback, obs::OpType::kNone,
                    0, *rit, 1, 0.0);
        }
        victim = *rit;
        found = true;
        break;
      }
    }
    if (!found) {
      stats_.pin_overcommits++;
      return;  // every frame pinned (or unevictable): overcommit
    }
    Frame& f = shard.frames.at(victim);
    LFS_TRACE(tracer_, obs::TraceEventType::kCacheEvict, obs::OpType::kNone, 0,
              victim, f.dirty ? 1 : 0, 0.0);
    shard.lru.erase(f.lru_it);
    shard.frames.erase(victim);
    stats_.evictions++;
  }
}

BlockCache::Frame* BlockCache::Insert(Shard& shard, BlockNo block,
                                      std::span<const uint8_t> data, bool dirty) {
  EvictIfFull(shard);
  shard.lru.push_front(block);
  Frame frame;
  frame.data.assign(data.begin(), data.end());
  frame.data.resize(block_size_, 0);
  frame.dirty = dirty;
  frame.lru_it = shard.lru.begin();
  auto [it, inserted] = shard.frames.emplace(block, std::move(frame));
  stats_.insertions++;
  return &it->second;
}

void BlockCache::PutClean(BlockNo block, std::span<const uint8_t> data) {
  Shard& shard = shards_[ShardOf(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(block);
  if (it != shard.frames.end()) {
    // Resident already (racing fill or newer dirty contents): keep it.
    Touch(shard, it->second, block);
    return;
  }
  Insert(shard, block, data, /*dirty=*/false);
}

void BlockCache::PutDirty(BlockNo block, std::span<const uint8_t> data) {
  Shard& shard = shards_[ShardOf(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(block);
  if (it != shard.frames.end()) {
    Frame& frame = it->second;
    frame.data.assign(data.begin(), data.end());
    frame.data.resize(block_size_, 0);
    frame.dirty = true;
    Touch(shard, frame, block);
    return;
  }
  Insert(shard, block, data, /*dirty=*/true);
}

void BlockCache::PutThrough(BlockNo block, std::span<const uint8_t> data) {
  Shard& shard = shards_[ShardOf(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(block);
  if (it != shard.frames.end()) {
    Frame& frame = it->second;
    frame.data.assign(data.begin(), data.end());
    frame.data.resize(block_size_, 0);
    Touch(shard, frame, block);
    return;
  }
  Insert(shard, block, data, /*dirty=*/false);
}

bool BlockCache::Pin(BlockNo block) {
  Shard& shard = shards_[ShardOf(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(block);
  if (it == shard.frames.end()) {
    return false;
  }
  it->second.refcount++;
  return true;
}

void BlockCache::Unpin(BlockNo block) {
  Shard& shard = shards_[ShardOf(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(block);
  if (it != shard.frames.end() && it->second.refcount > 0) {
    it->second.refcount--;
  }
}

bool BlockCache::Contains(BlockNo block) const {
  const Shard& shard = shards_[ShardOf(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.frames.count(block) > 0;
}

bool BlockCache::IsDirty(BlockNo block) const {
  const Shard& shard = shards_[ShardOf(block)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(block);
  return it != shard.frames.end() && it->second.dirty;
}

Status BlockCache::FlushAll() {
  // Lock every shard in index order (a total order, so FlushAll never
  // deadlocks with itself) and hold them all: the flush must be a point-in-
  // time barrier — no new dirty frame can slip between collection and the
  // clean-bit reset.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& shard : shards_) {
    locks.emplace_back(shard.mu);
  }

  std::vector<BlockNo> dirty;
  for (Shard& shard : shards_) {
    for (auto& [block, frame] : shard.frames) {
      if (frame.dirty) {
        dirty.push_back(block);
      }
    }
  }
  std::sort(dirty.begin(), dirty.end());

  Status result = OkStatus();
  size_t total_frames = 0;
  for (const Shard& shard : shards_) {
    total_frames += shard.frames.size();
  }

  // Coalesce consecutively addressed dirty blocks into single writebacks —
  // the log-structured write pattern makes most flushes a handful of long
  // sequential runs.
  std::vector<uint8_t> run;
  size_t i = 0;
  while (i < dirty.size()) {
    size_t j = i + 1;
    while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1) {
      j++;
    }
    uint64_t count = j - i;
    run.clear();
    run.reserve(count * block_size_);
    for (size_t k = i; k < j; k++) {
      Frame& f = shards_[ShardOf(dirty[k])].frames.at(dirty[k]);
      run.insert(run.end(), f.data.begin(), f.data.end());
    }
    Status st = writeback_(dirty[i], count, run);
    if (st.ok()) {
      for (size_t k = i; k < j; k++) {
        shards_[ShardOf(dirty[k])].frames.at(dirty[k]).dirty = false;
      }
      stats_.writebacks++;
      stats_.writeback_blocks += count;
      LFS_TRACE(tracer_, obs::TraceEventType::kCacheWriteback, obs::OpType::kNone,
                0, dirty[i], count, 0.0);
    } else if (result.ok()) {
      result = st;  // keep flushing the rest; report the first failure
    }
    i = j;
  }
  LFS_TRACE(tracer_, obs::TraceEventType::kCacheFlush, obs::OpType::kNone, 0,
            dirty.size(), total_frames, 0.0);
  return result;
}

void BlockCache::Invalidate(BlockNo block, uint64_t count) {
  for (uint64_t i = 0; i < count; i++) {
    BlockNo b = block + i;
    Shard& shard = shards_[ShardOf(b)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.frames.find(b);
    if (it == shard.frames.end()) {
      continue;
    }
    if (it->second.refcount > 0) {
      it->second.dirty = false;  // dead contents must not be written back
      continue;
    }
    shard.lru.erase(it->second.lru_it);
    shard.frames.erase(it);
    stats_.evictions++;
  }
}

void BlockCache::DropClean() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      if (!it->second.dirty && it->second.refcount == 0) {
        shard.lru.erase(it->second.lru_it);
        it = shard.frames.erase(it);
        stats_.evictions++;
      } else {
        ++it;
      }
    }
  }
}

uint64_t BlockCache::size() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.frames.size();
  }
  return n;
}

uint64_t BlockCache::dirty_count() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [block, frame] : shard.frames) {
      n += frame.dirty ? 1 : 0;
    }
  }
  return n;
}

uint64_t BlockCache::shard_size(uint32_t shard) const {
  const Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.frames.size();
}

}  // namespace lfs::cache
