#include "src/cache/cached_device.h"

#include <vector>

namespace lfs::cache {

namespace {

BlockCacheConfig CacheConfigFor(BlockDevice* inner, const CachedDeviceOptions& options) {
  BlockCacheConfig cfg;
  cfg.capacity_blocks = options.capacity_blocks;
  cfg.shards = options.shards;
  cfg.block_size = inner->block_size();
  return cfg;
}

}  // namespace

CachedBlockDevice::CachedBlockDevice(BlockDevice* inner, const CachedDeviceOptions& options,
                                     obs::TraceBuffer* tracer)
    : inner_(inner),
      write_through_(options.write_through),
      cache_(CacheConfigFor(inner, options),
             [inner](BlockNo block, uint64_t count, std::span<const uint8_t> data) {
               return inner->Write(block, count, data);
             },
             tracer) {}

Status CachedBlockDevice::Read(BlockNo block, uint64_t count, std::span<uint8_t> out) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, out.size()));
  const uint32_t bs = block_size();
  // Serve hits per block; fetch each maximal run of misses with one inner
  // read (the inner device charges one seek + streaming transfer per run).
  uint64_t i = 0;
  while (i < count) {
    std::span<uint8_t> slot = out.subspan(i * bs, bs);
    if (cache_.Get(block + i, slot)) {
      i++;
      continue;
    }
    uint64_t run_end = i + 1;
    // A block might be admitted by a racing reader between our miss and the
    // inner read; that is harmless — PutClean keeps the resident frame.
    while (run_end < count && !cache_.Contains(block + run_end)) {
      run_end++;
    }
    std::span<uint8_t> run = out.subspan(i * bs, (run_end - i) * bs);
    cache_.NoteMisses(run_end - i - 1);  // Get already counted the run head
    LFS_RETURN_IF_ERROR(inner_->Read(block + i, run_end - i, run));
    for (uint64_t k = i; k < run_end; k++) {
      cache_.PutClean(block + k, out.subspan(k * bs, bs));
    }
    i = run_end;
  }
  return OkStatus();
}

Status CachedBlockDevice::Write(BlockNo block, uint64_t count,
                                std::span<const uint8_t> data) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, data.size()));
  const uint32_t bs = block_size();
  if (write_through_) {
    LFS_RETURN_IF_ERROR(inner_->Write(block, count, data));
    for (uint64_t i = 0; i < count; i++) {
      cache_.PutThrough(block + i, data.subspan(i * bs, bs));
    }
    return OkStatus();
  }
  for (uint64_t i = 0; i < count; i++) {
    cache_.PutDirty(block + i, data.subspan(i * bs, bs));
  }
  return OkStatus();
}

Status CachedBlockDevice::Flush() {
  LFS_RETURN_IF_ERROR(cache_.FlushAll());
  return inner_->Flush();
}

Status CachedBlockDevice::Trim(BlockNo block, uint64_t count) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, count * block_size()));
  cache_.Invalidate(block, count);
  return inner_->Trim(block, count);
}

}  // namespace lfs::cache
