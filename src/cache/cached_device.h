// CachedBlockDevice: a BlockDevice that interposes a BlockCache between a
// filesystem (LFS or FFS) and the real device — the repository's stand-in
// for the large main-memory file cache the paper assumes (Section 1).
//
// Reads are served per-block from the cache; the uncached stretches of a
// multi-block request are fetched with run-granular reads of the inner
// device and admitted as clean frames, so a re-read-heavy workload touches
// the modeled disk only on first access. Writes are write-back by default:
// blocks become dirty frames and reach the inner device on eviction or
// Flush(), coalesced into sorted sequential runs. Write-through mode
// forwards every write immediately (preserving the inner device's write
// ordering — required under crash/fault injection) and keeps the cache as a
// read accelerator only.
//
// ModeledTime() forwards to the inner device, so cache hits cost zero
// modeled disk time — exactly the paper's "reads that hit in the cache are
// free; the disk sees the writes" premise.
//
// Thread safety: all methods are safe to call concurrently (the cache
// shards its locks; the inner device must itself be thread-safe, which
// MemDisk/SimDisk are).

#ifndef LFS_CACHE_CACHED_DEVICE_H_
#define LFS_CACHE_CACHED_DEVICE_H_

#include <cstdint>
#include <span>

#include "src/cache/block_cache.h"
#include "src/disk/block_device.h"

namespace lfs::cache {

struct CachedDeviceOptions {
  uint64_t capacity_blocks = 4096;
  uint32_t shards = 8;
  bool write_through = false;
};

class CachedBlockDevice : public BlockDevice {
 public:
  // `inner` must outlive this device.
  CachedBlockDevice(BlockDevice* inner, const CachedDeviceOptions& options,
                    obs::TraceBuffer* tracer = nullptr);

  uint32_t block_size() const override { return inner_->block_size(); }
  uint64_t block_count() const override { return inner_->block_count(); }
  double ModeledTime() const override { return inner_->ModeledTime(); }

  Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) override;
  Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) override;

  // Writes back all dirty frames (sorted, run-coalesced), then flushes the
  // inner device.
  Status Flush() override;

  // Drops the range's frames (even dirty ones — the contents are declared
  // dead, writing them back would resurrect them) and forwards the trim.
  Status Trim(BlockNo block, uint64_t count) override;

  BlockCache& cache() { return cache_; }
  const BlockCache& cache() const { return cache_; }
  BlockDevice* inner() { return inner_; }

 private:
  BlockDevice* inner_;
  bool write_through_;
  BlockCache cache_;
};

}  // namespace lfs::cache

#endif  // LFS_CACHE_CACHED_DEVICE_H_
