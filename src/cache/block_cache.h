// BlockCache: a sharded, reference-counted, write-back block cache.
//
// The paper's premise (Section 1) is that growing main memories absorb an
// ever larger share of reads, leaving disks dominated by writes — which is
// what motivates a log layout in the first place. This cache is that main
// memory: interposed between a filesystem and its BlockDevice (see
// CachedBlockDevice), it serves re-reads from DRAM frames, absorbs
// overwrites, and emits dirty frames back to the device in sorted,
// run-coalesced batches.
//
// Structure: capacity is divided across N shards (block number hashed to a
// shard); each shard owns a mutex, an address->frame hash map, and an LRU
// list. All operations on one block touch exactly one shard, so disjoint
// traffic scales with the shard count while a single mutex acquisition
// bounds every path.
//
// Eviction: least-recently-used *unpinned* frame of the full shard. A dirty
// victim is written back through the writeback callback while the shard
// lock is held — the lock makes writeback-then-drop atomic, so a concurrent
// reader can never observe the device without the frame's latest contents
// (the reader either still hits the frame or misses after the device has
// them). Pinned frames (refcount > 0) are never evicted; if every frame in
// a shard is pinned the shard temporarily overcommits rather than fail.
//
// Thread safety: every public method is safe to call concurrently. The
// writeback callback runs under a shard lock (FlushAll: under all shard
// locks) and must not re-enter the cache.

#ifndef LFS_CACHE_BLOCK_CACHE_H_
#define LFS_CACHE_BLOCK_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/disk/block_device.h"
#include "src/obs/trace.h"
#include "src/util/relaxed.h"
#include "src/util/status.h"

namespace lfs::cache {

struct BlockCacheConfig {
  uint64_t capacity_blocks = 4096;  // total frames across all shards
  uint32_t shards = 8;              // clamped to [1, capacity_blocks]
  uint32_t block_size = 4096;       // bytes per frame
};

// Counter family exported via obs::BindBlockCache. Relaxed atomics: bumped
// from any thread, read by benchmarks after the workload quiesces.
struct BlockCacheStats {
  Relaxed<uint64_t> hits = 0;              // Get served from a frame
  Relaxed<uint64_t> misses = 0;            // Get found nothing
  Relaxed<uint64_t> insertions = 0;        // new frames admitted
  Relaxed<uint64_t> evictions = 0;         // frames dropped to make room
  Relaxed<uint64_t> dirty_evictions = 0;   // evictions that required writeback
  Relaxed<uint64_t> writebacks = 0;        // writeback callback invocations
  Relaxed<uint64_t> writeback_blocks = 0;  // blocks pushed through the callback
  Relaxed<uint64_t> pin_overcommits = 0;   // insertions past capacity (all pinned)
};

class BlockCache {
 public:
  // Writes `count` blocks starting at `block` back to stable storage.
  // `data` holds count * block_size bytes.
  using WritebackFn =
      std::function<Status(BlockNo block, uint64_t count, std::span<const uint8_t> data)>;

  // `tracer` (optional) receives kCacheEvict/kCacheWriteback/kCacheFlush
  // events; pass the filesystem's trace buffer to interleave cache activity
  // with op events.
  BlockCache(const BlockCacheConfig& config, WritebackFn writeback,
             obs::TraceBuffer* tracer = nullptr);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Copies the cached contents of `block` into `out` (block_size bytes) and
  // marks the frame most-recently-used. Returns false on miss.
  bool Get(BlockNo block, std::span<uint8_t> out);

  // Admits a clean frame for a block just read from the device. If the block
  // is already resident (a racing fill or a dirty frame), the existing frame
  // wins — a read fill must never clobber newer dirty contents.
  void PutClean(BlockNo block, std::span<const uint8_t> data);

  // Inserts or overwrites the frame and marks it dirty. The contents reach
  // the device on eviction or FlushAll.
  void PutDirty(BlockNo block, std::span<const uint8_t> data);

  // Overwrites the frame contents without changing its dirty bit, admitting
  // a clean frame if absent. For write-through callers that already sent the
  // data to the device.
  void PutThrough(BlockNo block, std::span<const uint8_t> data);

  // Reference counting: a pinned frame is never evicted. Pin fails (returns
  // false) if the block is not resident. Unpin of an unpinned or absent
  // block is a no-op.
  bool Pin(BlockNo block);
  void Unpin(BlockNo block);

  bool Contains(BlockNo block) const;
  bool IsDirty(BlockNo block) const;

  // Charges `n` extra misses to the hit-rate accounting. CachedBlockDevice
  // probes run extensions with Contains() (which is stat-silent) rather than
  // Get(), then reports the whole fetched run here so hits and misses stay
  // per-block commensurable.
  void NoteMisses(uint64_t n) { stats_.misses += n; }

  // Writes back every dirty frame, coalescing consecutively addressed blocks
  // into single writeback calls (sorted by address), and marks them clean.
  // Frames stay resident. Takes every shard lock for the duration.
  Status FlushAll();

  // Drops every clean, unpinned frame (tests and memory-pressure hooks).
  void DropClean();

  // Discards the frames of [block, block + count) without writeback — the
  // caller has declared the contents dead (TRIM path), so even dirty frames
  // are dropped rather than flushed. Pinned frames cannot vanish under their
  // holder; they are marked clean instead so the dead bytes never reach the
  // device, and evict normally once unpinned.
  void Invalidate(BlockNo block, uint64_t count);

  const BlockCacheStats& stats() const { return stats_; }
  uint64_t capacity_blocks() const { return capacity_; }
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  uint64_t size() const;             // resident frames, all shards
  uint64_t dirty_count() const;      // resident dirty frames, all shards
  uint64_t shard_size(uint32_t shard) const;
  uint32_t ShardOf(BlockNo block) const;

 private:
  struct Frame {
    std::vector<uint8_t> data;
    bool dirty = false;
    uint32_t refcount = 0;
    std::list<BlockNo>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<BlockNo, Frame> frames;
    std::list<BlockNo> lru;  // front = most recently used
  };

  // All helpers run with shard.mu held by the caller. Eviction is
  // best-effort: a victim whose writeback fails is kept (the next flush
  // retries) and the shard overcommits instead of losing dirty data.
  void Touch(Shard& shard, Frame& frame, BlockNo block);
  void EvictIfFull(Shard& shard);
  Frame* Insert(Shard& shard, BlockNo block, std::span<const uint8_t> data, bool dirty);

  uint64_t capacity_;
  uint64_t shard_capacity_;
  uint32_t block_size_;
  WritebackFn writeback_;
  obs::TraceBuffer* tracer_;
  std::vector<Shard> shards_;
  BlockCacheStats stats_;
};

}  // namespace lfs::cache

#endif  // LFS_CACHE_BLOCK_CACHE_H_
