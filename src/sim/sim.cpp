#include "src/sim/sim.h"

#include <algorithm>
#include <cassert>

namespace lfs::sim {

double FormulaWriteCost(double u) {
  if (u <= 0.0) {
    return 1.0;  // an empty segment need not be read at all
  }
  return 2.0 / (1.0 - u);
}

CleaningSimulator::CleaningSimulator(const SimConfig& config)
    : cfg_(config), rng_(config.seed) {
  uint64_t total_blocks = uint64_t{cfg_.nsegments} * cfg_.blocks_per_segment;
  nfiles_ = static_cast<uint32_t>(cfg_.disk_utilization * static_cast<double>(total_blocks));
  // Leave headroom so the cleaner can always make progress.
  uint32_t max_files = static_cast<uint32_t>(
      (uint64_t{cfg_.nsegments} - cfg_.clean_target - 2) * cfg_.blocks_per_segment);
  nfiles_ = std::min(nfiles_, max_files);
  assert(nfiles_ > 0);
  hot_files_ = static_cast<uint32_t>(cfg_.hot_file_fraction * nfiles_);
  hot_files_ = std::max<uint32_t>(hot_files_, 1);

  segments_.resize(cfg_.nsegments);
  for (Segment& s : segments_) {
    s.slots.reserve(cfg_.blocks_per_segment);
  }
  victim_index_.Reset(cfg_.nsegments, cfg_.blocks_per_segment);
  clean_count_ = cfg_.nsegments;
  file_seg_.resize(nfiles_);
  file_mtime_.assign(nfiles_, 0);
  file_slot_.resize(nfiles_);

  // Initial state: write every file once, sequentially.
  for (uint32_t f = 0; f < nfiles_; f++) {
    AppendFile(static_cast<int32_t>(f), /*cleaning=*/false);
  }
  // The initial fill is not part of any measurement.
  new_blocks_ = 0;
}

int32_t CleaningSimulator::PickFileToOverwrite() {
  if (cfg_.pattern == AccessPattern::kUniform) {
    return static_cast<int32_t>(rng_.NextBelow(nfiles_));
  }
  if (rng_.NextBool(cfg_.hot_access_fraction)) {
    return static_cast<int32_t>(rng_.NextBelow(hot_files_));
  }
  if (hot_files_ >= nfiles_) {
    return static_cast<int32_t>(rng_.NextBelow(nfiles_));
  }
  return static_cast<int32_t>(hot_files_ + rng_.NextBelow(nfiles_ - hot_files_));
}

void CleaningSimulator::EnsureWritableSegment(bool cleaning) {
  bool use_clean_cursor = cleaning && cfg_.separate_cleaning_cursor;
  uint32_t& cursor = use_clean_cursor ? clean_cursor_ : new_cursor_;
  if (cursor != UINT32_MAX && segments_[cursor].slots.size() < cfg_.blocks_per_segment) {
    return;
  }
  if (!cleaning && clean_count_ <= cfg_.clean_reserve) {
    RunCleaner();
  }
  for (uint32_t s = 0; s < segments_.size(); s++) {
    if (segments_[s].clean && s != new_cursor_ && s != clean_cursor_) {
      segments_[s].clean = false;
      segments_[s].slots.clear();
      segments_[s].live = 0;
      segments_[s].last_write = 0;
      victim_index_.Insert(s, 0, 0);
      clean_count_--;
      cursor = s;
      return;
    }
  }
  assert(false && "simulator ran out of segments; utilization too high");
}

void CleaningSimulator::AppendFile(int32_t file, bool cleaning) {
  EnsureWritableSegment(cleaning);
  uint32_t cursor =
      (cleaning && cfg_.separate_cleaning_cursor) ? clean_cursor_ : new_cursor_;
  Segment& seg = segments_[cursor];
  seg.slots.push_back(file);
  seg.live++;
  seg.last_write = std::max(seg.last_write, file_mtime_[file]);
  victim_index_.Update(cursor, seg.live, seg.last_write);
  file_seg_[file] = cursor;
  file_slot_[file] = static_cast<uint32_t>(seg.slots.size() - 1);
  if (cleaning) {
    copied_blocks_++;
  } else {
    new_blocks_++;
  }
}

uint32_t CleaningSimulator::PickVictim() {
  VictimIndex::Cursor cursor =
      victim_index_.Select(cfg_.policy == Policy::kGreedy, now_);
  uint32_t best = VictimIndex::kNone;
  for (uint32_t s = cursor.Next(); s != VictimIndex::kNone; s = cursor.Next()) {
    if (s == new_cursor_ || s == clean_cursor_) {
      continue;  // the write cursors are never victims
    }
    best = s;
    break;
  }
  if (cfg_.verify_selection && best != PickVictimReference()) {
    selection_mismatches_++;
  }
  return best;  // kNone == UINT32_MAX, the historical "no victim" value
}

uint32_t CleaningSimulator::PickVictimReference() const {
  uint32_t best = UINT32_MAX;
  double best_score = -1.0;
  for (uint32_t s = 0; s < segments_.size(); s++) {
    const Segment& seg = segments_[s];
    if (seg.clean || s == new_cursor_ || s == clean_cursor_) {
      continue;
    }
    double u = static_cast<double>(seg.live) / cfg_.blocks_per_segment;
    if (u >= 1.0) {
      continue;  // nothing to reclaim
    }
    double score;
    if (cfg_.policy == Policy::kGreedy) {
      score = 1.0 - u;
    } else {
      double age = static_cast<double>(now_ - std::min(now_, seg.last_write));
      score = (1.0 - u) * age / (1.0 + u);
    }
    if (score > best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

void CleaningSimulator::RunCleaner() {
  // Snapshot the utilization of every segment available to the cleaner at
  // the moment cleaning is initiated (the Figure 5/6 distributions).
  for (uint32_t s = 0; s < segments_.size(); s++) {
    if (!segments_[s].clean && s != new_cursor_ && s != clean_cursor_) {
      segment_distribution_.Add(static_cast<double>(segments_[s].live) /
                                cfg_.blocks_per_segment);
    }
  }

  while (clean_count_ < cfg_.clean_target) {
    uint32_t victim = PickVictim();
    if (victim == UINT32_MAX) {
      break;
    }
    Segment& seg = segments_[victim];
    double u = static_cast<double>(seg.live) / cfg_.blocks_per_segment;
    segments_cleaned_++;
    cleaned_distribution_.Add(u);
    if (seg.live == 0) {
      empty_cleaned_++;  // no read required (write cost contribution 1.0)
    } else {
      sum_cleaned_u_ += u;
      read_blocks_ += cfg_.blocks_per_segment;
    }

    std::vector<int32_t> live;
    live.reserve(seg.live);
    for (int32_t f : seg.slots) {
      if (f >= 0) {
        live.push_back(f);
      }
    }
    seg.slots.clear();
    seg.live = 0;
    seg.last_write = 0;
    seg.clean = true;
    victim_index_.Remove(victim);
    clean_count_++;

    if (cfg_.age_sort) {
      // Group blocks of similar age together (Section 3.4, policy 4).
      std::stable_sort(live.begin(), live.end(), [this](int32_t a, int32_t b) {
        return file_mtime_[a] < file_mtime_[b];
      });
    }
    for (int32_t f : live) {
      AppendFile(f, /*cleaning=*/true);
    }
  }
}

void CleaningSimulator::Step() {
  int32_t f = PickFileToOverwrite();
  now_++;
  steps_++;
  // Kill the old copy.
  Segment& old_seg = segments_[file_seg_[f]];
  old_seg.slots[file_slot_[f]] = -1;
  old_seg.live--;
  victim_index_.Update(file_seg_[f], old_seg.live, old_seg.last_write);
  file_mtime_[f] = now_;
  AppendFile(f, /*cleaning=*/false);
}

void CleaningSimulator::ResetMeasurement() {
  new_blocks_ = copied_blocks_ = read_blocks_ = 0;
  segments_cleaned_ = empty_cleaned_ = 0;
  sum_cleaned_u_ = 0.0;
  steps_ = 0;
  segment_distribution_ = Histogram(50);
  cleaned_distribution_ = Histogram(50);
}

SimResult CleaningSimulator::Snapshot() const {
  SimResult r;
  r.steps = steps_;
  r.segments_cleaned = segments_cleaned_;
  if (new_blocks_ > 0) {
    r.write_cost = static_cast<double>(read_blocks_ + copied_blocks_ + new_blocks_) /
                   static_cast<double>(new_blocks_);
  }
  uint64_t nonempty = segments_cleaned_ - empty_cleaned_;
  r.avg_cleaned_utilization =
      nonempty > 0 ? sum_cleaned_u_ / static_cast<double>(nonempty) : 0.0;
  r.empty_cleaned_fraction =
      segments_cleaned_ > 0
          ? static_cast<double>(empty_cleaned_) / static_cast<double>(segments_cleaned_)
          : 0.0;
  r.segment_distribution = segment_distribution_;
  r.cleaned_distribution = cleaned_distribution_;
  return r;
}

uint32_t CleaningSimulator::clean_segments() const { return clean_count_; }

double CleaningSimulator::ActualDiskUtilization() const {
  return static_cast<double>(nfiles_) /
         (static_cast<double>(cfg_.nsegments) * cfg_.blocks_per_segment);
}

SimResult CleaningSimulator::Run() {
  uint64_t warmup = cfg_.warmup_overwrites_per_file * nfiles_;
  for (uint64_t i = 0; i < warmup; i++) {
    Step();
  }
  ResetMeasurement();
  uint64_t measure = cfg_.measure_overwrites_per_file * nfiles_;
  for (uint64_t i = 0; i < measure; i++) {
    Step();
  }
  return Snapshot();
}

}  // namespace lfs::sim
