// The Section 3.5 cleaning-policy simulator.
//
// "The simulator models a file system as a fixed number of 4-kbyte files,
// with the number chosen to produce a particular overall disk capacity
// utilization. At each step, the simulator overwrites one of the files with
// new data, using one of two pseudo-random access patterns [uniform /
// hot-and-cold]. ... The simulator runs until all clean segments are
// exhausted, then simulates the actions of a cleaner until a threshold
// number of clean segments is available again."
//
// This module reproduces that model exactly — it is deliberately abstract
// (no real disk), because its purpose is to compare cleaning policies under
// controlled conditions (Figures 4-7). The real filesystem in src/lfs runs
// the same policies against real segments.

#ifndef LFS_SIM_SIM_H_
#define LFS_SIM_SIM_H_

#include <cstdint>
#include <vector>

#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/victim_index.h"

namespace lfs::sim {

enum class AccessPattern {
  kUniform,     // every file equally likely
  kHotAndCold,  // hot_file_fraction of files get hot_access_fraction of writes
};

enum class Policy {
  kGreedy,       // clean the least-utilized segments
  kCostBenefit,  // max (1-u)*age/(1+u)
};

struct SimConfig {
  uint32_t nsegments = 128;
  uint32_t blocks_per_segment = 128;  // 512-KB segments of 4-KB files
  double disk_utilization = 0.75;     // live blocks / total blocks

  AccessPattern pattern = AccessPattern::kUniform;
  double hot_file_fraction = 0.10;    // paper: 10% of files ...
  double hot_access_fraction = 0.90;  // ... receive 90% of writes

  Policy policy = Policy::kGreedy;
  bool age_sort = false;  // sort live blocks by age when rewriting

  // When false (the paper's simulator), cleaned live blocks are written to
  // the same log head as new data, so cold survivors from cleaning mix into
  // hot segments — the effect behind Figure 4's surprising result. When
  // true, the cleaner keeps its own output segments (an ablation showing
  // how much pure segregation alone is worth).
  bool separate_cleaning_cursor = false;

  // Cleaning runs when clean segments are exhausted (below `clean_reserve`)
  // and stops once `clean_target` segments are clean. Small episodes match
  // the paper's dynamics: cleaning only skims the least-utilized segments,
  // so under greedy the cold mass can linger just above the cleaning point
  // (Figure 5). Large values are an ablation: they harvest the cold pile
  // wholesale and make greedy look better than the paper found.
  uint32_t clean_reserve = 1;
  uint32_t clean_target = 4;

  // Steps are measured in file overwrites. Warmup removes cold-start
  // variance (paper: "allowed to run until the write cost stabilized").
  uint64_t warmup_overwrites_per_file = 40;
  uint64_t measure_overwrites_per_file = 40;

  // Cross-check every indexed victim pick against the reference full scan
  // (debug/test aid; divergences are counted in selection_mismatches()).
  bool verify_selection = false;

  uint64_t seed = 1;
};

struct SimResult {
  double write_cost = 0.0;            // (reads + live copies + new) / new
  double avg_cleaned_utilization = 0.0;
  double empty_cleaned_fraction = 0.0;
  uint64_t segments_cleaned = 0;
  uint64_t steps = 0;
  // Distribution of all segments' utilizations sampled at each cleaning
  // initiation during the measurement phase (Figures 5, 6).
  Histogram segment_distribution{50};
  // Distribution of the utilizations of the segments actually cleaned.
  Histogram cleaned_distribution{50};
};

// The analytic write cost of formula (1): 2/(1-u), with cost 1 at u=0.
double FormulaWriteCost(double u);

class CleaningSimulator {
 public:
  explicit CleaningSimulator(const SimConfig& config);

  // Runs warmup + measurement and returns the measured result.
  SimResult Run();

  // --- lower-level API (used by tests) ---------------------------------------

  void Step();                 // overwrite one file
  void ResetMeasurement();     // forget statistics (end of warmup)
  SimResult Snapshot() const;  // current measured statistics

  uint32_t clean_segments() const;
  uint32_t nfiles() const { return nfiles_; }
  double ActualDiskUtilization() const;
  uint64_t selection_mismatches() const { return selection_mismatches_; }

 private:
  struct Segment {
    std::vector<int32_t> slots;  // file occupying each written slot (-1 dead)
    uint32_t live = 0;
    uint64_t last_write = 0;  // newest mtime of data in the segment
    bool clean = true;
  };

  void AppendFile(int32_t file, bool cleaning);
  void EnsureWritableSegment(bool cleaning);
  void RunCleaner();
  uint32_t PickVictim();  // best segment per policy, or UINT32_MAX
  // The original O(n) full scan, kept as the selection oracle.
  uint32_t PickVictimReference() const;
  int32_t PickFileToOverwrite();

  SimConfig cfg_;
  Rng rng_;
  uint64_t now_ = 1;  // step counter = logical time

  uint32_t nfiles_;
  uint32_t hot_files_;
  std::vector<uint32_t> file_seg_;    // current segment of each file
  std::vector<uint32_t> file_slot_;   // slot index within that segment
  std::vector<uint64_t> file_mtime_;  // last overwrite time of each file
  std::vector<Segment> segments_;
  // All non-clean segments keyed by (live, last_write); PickVictim pops the
  // best-scoring one instead of rescanning the whole segment table.
  VictimIndex victim_index_;
  uint64_t selection_mismatches_ = 0;
  uint32_t new_cursor_ = UINT32_MAX;    // segment receiving new data
  uint32_t clean_cursor_ = UINT32_MAX;  // segment receiving cleaned data
  uint32_t clean_count_ = 0;

  // Measurement counters.
  uint64_t new_blocks_ = 0;
  uint64_t copied_blocks_ = 0;
  uint64_t read_blocks_ = 0;
  uint64_t segments_cleaned_ = 0;
  uint64_t empty_cleaned_ = 0;
  double sum_cleaned_u_ = 0.0;
  uint64_t steps_ = 0;
  Histogram segment_distribution_{50};
  Histogram cleaned_distribution_{50};
};

}  // namespace lfs::sim

#endif  // LFS_SIM_SIM_H_
