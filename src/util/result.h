// Result<T>: value-or-Status, the return type of fallible operations that
// produce a value. Modeled on absl::StatusOr but self-contained.

#ifndef LFS_UTIL_RESULT_H_
#define LFS_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace lfs {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversion from a value and from a non-OK Status keeps call
  // sites terse: `return value;` / `return NotFoundError(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // kOk iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace lfs

// Evaluate `expr` (a Result<T>); on error propagate its Status, otherwise
// bind the value to `lhs`. `lhs` may include a declaration:
//   LFS_ASSIGN_OR_RETURN(auto ino, AllocInode());
#define LFS_ASSIGN_OR_RETURN(lhs, expr)       \
  LFS_ASSIGN_OR_RETURN_IMPL_(                 \
      LFS_RESULT_CONCAT_(_lfs_result_, __LINE__), lhs, expr)

#define LFS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define LFS_RESULT_CONCAT_(a, b) LFS_RESULT_CONCAT_2_(a, b)
#define LFS_RESULT_CONCAT_2_(a, b) a##b

#endif  // LFS_UTIL_RESULT_H_
