#include "src/util/histogram.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace lfs {

void Histogram::Add(double value) {
  value = std::clamp(value, 0.0, 1.0);
  size_t bucket = static_cast<size_t>(value * static_cast<double>(counts_.size()));
  if (bucket == counts_.size()) {
    bucket--;  // value == 1.0 lands in the last bucket
  }
  counts_[bucket]++;
  total_++;
  sum_ += value;
}

double Histogram::Fraction(size_t bucket) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[bucket]) / static_cast<double>(total_);
}

double Histogram::BucketMid(size_t bucket) const {
  double w = 1.0 / static_cast<double>(counts_.size());
  return (static_cast<double>(bucket) + 0.5) * w;
}

double Histogram::Mean() const {
  if (total_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(total_);
}

std::string Histogram::ToAscii(const std::string& label, int width) const {
  std::string out = label + " (n=" + std::to_string(total_) + ")\n";
  double max_frac = 0;
  for (size_t i = 0; i < counts_.size(); i++) {
    max_frac = std::max(max_frac, Fraction(i));
  }
  char line[256];
  for (size_t i = 0; i < counts_.size(); i++) {
    double frac = Fraction(i);
    int bar = max_frac > 0 ? static_cast<int>(frac / max_frac * width) : 0;
    std::snprintf(line, sizeof(line), "  %4.2f |%-*s| %6.4f\n", BucketMid(i), width,
                  std::string(static_cast<size_t>(bar), '#').c_str(), frac);
    out += line;
  }
  return out;
}

std::string Histogram::ToCsv() const {
  std::string out = "utilization,fraction\n";
  char line[64];
  for (size_t i = 0; i < counts_.size(); i++) {
    std::snprintf(line, sizeof(line), "%.3f,%.6f\n", BucketMid(i), Fraction(i));
    out += line;
  }
  return out;
}

}  // namespace lfs
