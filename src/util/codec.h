// Little-endian byte-buffer encoder/decoder for the on-disk format.
//
// All on-disk structures in this repository are serialized explicitly through
// these helpers (never by memcpy of host structs), so the disk image format
// is independent of host endianness, padding, and ABI.

#ifndef LFS_UTIL_CODEC_H_
#define LFS_UTIL_CODEC_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lfs {

// Appends fixed-width little-endian integers and raw bytes to a buffer.
class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v, 2); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutBytes(std::span<const uint8_t> bytes) {
    out_->insert(out_->end(), bytes.begin(), bytes.end());
  }
  void PutString(std::string_view s) {
    out_->insert(out_->end(), s.begin(), s.end());
  }
  // Length-prefixed (u16) string, for names.
  void PutLengthPrefixedString(std::string_view s) {
    PutU16(static_cast<uint16_t>(s.size()));
    PutString(s);
  }
  // Pads with zero bytes up to `size` total buffer length.
  void PadTo(size_t size) {
    if (out_->size() < size) {
      out_->resize(size, 0);
    }
  }

  size_t size() const { return out_->size(); }

 private:
  void PutLittleEndian(uint64_t v, int width) {
    for (int i = 0; i < width; i++) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t>* out_;
};

// Reads fixed-width little-endian integers and raw bytes from a buffer.
// Over-reads set a sticky error flag instead of invoking UB; callers check
// ok() once after decoding a full structure.
class Decoder {
 public:
  explicit Decoder(std::span<const uint8_t> data) : data_(data) {}

  uint8_t GetU8() { return static_cast<uint8_t>(GetLittleEndian(1)); }
  uint16_t GetU16() { return static_cast<uint16_t>(GetLittleEndian(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetLittleEndian(4)); }
  uint64_t GetU64() { return GetLittleEndian(8); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }

  void GetBytes(std::span<uint8_t> out) {
    if (remaining() < out.size()) {
      failed_ = true;
      std::memset(out.data(), 0, out.size());
      return;
    }
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
  }

  std::string GetString(size_t n) {
    if (remaining() < n) {
      failed_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::string GetLengthPrefixedString() {
    uint16_t n = GetU16();
    return GetString(n);
  }

  void Skip(size_t n) {
    if (remaining() < n) {
      failed_ = true;
      pos_ = data_.size();
      return;
    }
    pos_ += n;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return !failed_; }

 private:
  uint64_t GetLittleEndian(int width) {
    if (remaining() < static_cast<size_t>(width)) {
      failed_ = true;
      pos_ = data_.size();
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < width; i++) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += width;
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace lfs

#endif  // LFS_UTIL_CODEC_H_
