// VictimIndex: an incrementally maintained segment-selection index for the
// cleaner (Section 3.6 keeps the segment usage table in memory precisely so
// victim selection never touches disk; this makes the in-memory side cheap
// as well).
//
// The old selection path re-scored and re-sorted every segment on each
// cleaning pass — O(n log n) per pass, quadratic across a simulation sweep.
// This index is updated in O(log n) whenever a segment's live-byte count,
// last-write time, or eligibility changes, and then yields victims in
// O(k log n) per pass through a cursor.
//
// Two structures are maintained side by side:
//
//  * by_live_: all eligible segments ordered by (live, seg). For the greedy
//    policy, score = 1 - u is a strictly decreasing function of live bytes,
//    so ascending live order IS descending score order, with ties (equal
//    live => bit-identical score) broken by segment number exactly as the
//    reference sort does.
//
//  * buckets_: eligible segments partitioned into utilization buckets, each
//    bucket ordered by (last_write, seg). Cost-benefit scores
//    (1-u)*age/(1+u) depend on the current time, so no static order exists;
//    instead selection runs lazy best-first expansion: each bucket enters a
//    max-heap under an upper bound computed from the bucket's lowest
//    possible utilization and oldest last-write time, and a bucket is
//    re-scored (its members pushed with exact scores) only when its bound
//    reaches the top of the heap. A segment is emitted only once it
//    outranks every unexpanded bucket's bound, so the emission order is
//    byte-identical to scoring everything and sorting — typically after
//    expanding only the few buckets that can contain winners.
//
// The caller owns eligibility (insert dirty segments, remove clean/active
// ones) and applies its own per-candidate filters (protected segments,
// checkpoint boundary, write budget) as it pops the cursor.

#ifndef LFS_UTIL_VICTIM_INDEX_H_
#define LFS_UTIL_VICTIM_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <set>
#include <utility>
#include <vector>

namespace lfs {

class VictimIndex {
 public:
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  VictimIndex() = default;
  VictimIndex(uint32_t nsegments, uint64_t capacity, uint32_t nbuckets = 64) {
    Reset(nsegments, capacity, nbuckets);
  }

  // Drops all members and re-dimensions the index. `capacity` is the
  // denominator of utilization: bytes per segment for the filesystem, blocks
  // per segment for the simulator.
  void Reset(uint32_t nsegments, uint64_t capacity, uint32_t nbuckets = 64) {
    capacity_ = std::max<uint64_t>(capacity, 1);
    entries_.assign(nsegments, Entry{});
    by_live_.clear();
    buckets_.assign(nbuckets, {});
  }

  bool contains(uint32_t seg) const { return entries_[seg].present; }
  uint32_t size() const { return static_cast<uint32_t>(by_live_.size()); }
  uint64_t live(uint32_t seg) const { return entries_[seg].live; }
  uint32_t bucket_count() const { return static_cast<uint32_t>(buckets_.size()); }

  // Member count per utilization bucket (bucket i covers u in
  // [i/n, (i+1)/n)) — the live-utilization histogram the adaptive cleaning
  // governor reads. Maintained as a byproduct of the cost-benefit buckets,
  // so the snapshot is O(buckets), not O(segments).
  std::vector<uint32_t> BucketHistogram() const {
    std::vector<uint32_t> h(buckets_.size(), 0);
    for (size_t b = 0; b < buckets_.size(); b++) {
      h[b] = static_cast<uint32_t>(buckets_[b].size());
    }
    return h;
  }

  void Insert(uint32_t seg, uint64_t live, uint64_t last_write) {
    Entry& e = entries_[seg];
    if (e.present) {
      Update(seg, live, last_write);
      return;
    }
    e.present = true;
    e.live = live;
    e.last_write = last_write;
    by_live_.insert({live, seg});
    buckets_[BucketOf(live)].insert({last_write, seg});
  }

  void Remove(uint32_t seg) {
    Entry& e = entries_[seg];
    if (!e.present) {
      return;
    }
    by_live_.erase({e.live, seg});
    buckets_[BucketOf(e.live)].erase({e.last_write, seg});
    e.present = false;
  }

  void Update(uint32_t seg, uint64_t live, uint64_t last_write) {
    Entry& e = entries_[seg];
    if (!e.present) {
      Insert(seg, live, last_write);
      return;
    }
    if (e.live != live) {
      by_live_.erase({e.live, seg});
      by_live_.insert({live, seg});
    }
    uint32_t old_bucket = BucketOf(e.live);
    uint32_t new_bucket = BucketOf(live);
    if (old_bucket != new_bucket || e.last_write != last_write) {
      buckets_[old_bucket].erase({e.last_write, seg});
      buckets_[new_bucket].insert({last_write, seg});
    }
    e.live = live;
    e.last_write = last_write;
  }

  // Pops eligible segments in exact score order for the given policy and
  // time: greedy score = 1-u, cost-benefit score = (1-u)*age/(1+u) with
  // age = now - min(now, last_write); ties broken by lower segment number;
  // segments at u >= 1.0 are never emitted. The index must not be mutated
  // while a cursor is live.
  class Cursor {
   public:
    // Next victim in score order, or kNone when exhausted.
    uint32_t Next() {
      if (greedy_) {
        if (it_ == owner_->by_live_.end() || it_->first >= owner_->capacity_) {
          return kNone;  // u >= 1.0 from here on: nothing reclaimable
        }
        return (it_++)->second;
      }
      while (!heap_.empty()) {
        Item top = heap_.top();
        heap_.pop();
        if (top.bucket >= 0) {
          ExpandBucket(top.bucket);
          continue;
        }
        return top.seg;
      }
      return kNone;
    }

   private:
    friend class VictimIndex;

    struct Item {
      double score;
      uint32_t seg;    // valid when bucket < 0
      int32_t bucket;  // >= 0: an unexpanded bucket under its upper bound
    };
    struct ItemLess {
      bool operator()(const Item& a, const Item& b) const {
        if (a.score != b.score) {
          return a.score < b.score;  // max-heap on score
        }
        bool a_bucket = a.bucket >= 0;
        bool b_bucket = b.bucket >= 0;
        if (a_bucket != b_bucket) {
          // A bucket whose bound ties a scored segment may still contain an
          // equal-score segment with a smaller number: expand it first.
          return b_bucket;
        }
        if (!a_bucket) {
          return a.seg > b.seg;  // equal score: lower segment number wins
        }
        return false;
      }
    };

    Cursor(const VictimIndex* owner, bool greedy, uint64_t now)
        : owner_(owner), greedy_(greedy), now_(now) {
      if (greedy_) {
        it_ = owner_->by_live_.begin();
        return;
      }
      for (int32_t b = 0; b < static_cast<int32_t>(owner_->buckets_.size()); b++) {
        const auto& bucket = owner_->buckets_[b];
        if (!bucket.empty()) {
          heap_.push(Item{owner_->BucketUpperBound(b, bucket.begin()->first, now_), 0, b});
        }
      }
    }

    void ExpandBucket(int32_t b) {
      for (const auto& [last_write, seg] : owner_->buckets_[b]) {
        uint64_t live = owner_->entries_[seg].live;
        if (live >= owner_->capacity_) {
          continue;  // u >= 1.0: nothing to reclaim, the reference skips it
        }
        heap_.push(Item{owner_->Score(live, last_write, now_), seg, -1});
      }
    }

    const VictimIndex* owner_;
    bool greedy_;
    uint64_t now_;
    std::set<std::pair<uint64_t, uint32_t>>::const_iterator it_;
    std::priority_queue<Item, std::vector<Item>, ItemLess> heap_;
  };

  Cursor Select(bool greedy, uint64_t now) const { return Cursor(this, greedy, now); }

  // The exact score expression of the reference implementations (the double
  // arithmetic must match bit for bit).
  double Score(uint64_t live, uint64_t last_write, uint64_t now) const {
    double u = static_cast<double>(live) / static_cast<double>(capacity_);
    double age = static_cast<double>(now - std::min(now, last_write));
    return (1.0 - u) * age / (1.0 + u);
  }

 private:
  struct Entry {
    uint64_t live = 0;
    uint64_t last_write = 0;
    bool present = false;
  };

  uint32_t BucketOf(uint64_t live) const {
    uint64_t b = live * buckets_.size() / capacity_;
    return static_cast<uint32_t>(std::min<uint64_t>(b, buckets_.size() - 1));
  }

  double BucketUpperBound(uint32_t bucket, uint64_t oldest_last_write, uint64_t now) const {
    double u_lo = static_cast<double>(bucket) / static_cast<double>(buckets_.size());
    double age = static_cast<double>(now - std::min(now, oldest_last_write));
    // Inflate so floating-point rounding can never drop the bound below a
    // member's exactly-computed score: over-expansion costs a little work,
    // under-expansion would break the exact-order guarantee.
    return (1.0 - u_lo) * age / (1.0 + u_lo) * (1.0 + 1e-12);
  }

  uint64_t capacity_ = 1;
  std::vector<Entry> entries_;
  // (live, seg), ascending: descending greedy score with seg-number ties.
  std::set<std::pair<uint64_t, uint32_t>> by_live_;
  // Per utilization bucket: (last_write, seg), ascending; begin() is the
  // bucket's oldest member, which caps every member's age.
  std::vector<std::set<std::pair<uint64_t, uint32_t>>> buckets_;
};

}  // namespace lfs

#endif  // LFS_UTIL_VICTIM_INDEX_H_
