#include "src/util/status.h"

namespace lfs {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotADirectory:
      return "NotADirectory";
    case StatusCode::kIsADirectory:
      return "IsADirectory";
    case StatusCode::kNotEmpty:
      return "NotEmpty";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kNoInodes:
      return "NoInodes";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCrashed:
      return "Crashed";
    case StatusCode::kNameTooLong:
      return "NameTooLong";
    case StatusCode::kCrossDevice:
      return "CrossDevice";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }

namespace {
Status Make(StatusCode code, std::string_view msg) { return Status(code, std::string(msg)); }
}  // namespace

Status NotFoundError(std::string_view msg) { return Make(StatusCode::kNotFound, msg); }
Status AlreadyExistsError(std::string_view msg) { return Make(StatusCode::kAlreadyExists, msg); }
Status NotADirectoryError(std::string_view msg) { return Make(StatusCode::kNotADirectory, msg); }
Status IsADirectoryError(std::string_view msg) { return Make(StatusCode::kIsADirectory, msg); }
Status NotEmptyError(std::string_view msg) { return Make(StatusCode::kNotEmpty, msg); }
Status NoSpaceError(std::string_view msg) { return Make(StatusCode::kNoSpace, msg); }
Status NoInodesError(std::string_view msg) { return Make(StatusCode::kNoInodes, msg); }
Status InvalidArgumentError(std::string_view msg) { return Make(StatusCode::kInvalidArgument, msg); }
Status OutOfRangeError(std::string_view msg) { return Make(StatusCode::kOutOfRange, msg); }
Status CorruptionError(std::string_view msg) { return Make(StatusCode::kCorruption, msg); }
Status IoError(std::string_view msg) { return Make(StatusCode::kIoError, msg); }
Status CrashedError(std::string_view msg) { return Make(StatusCode::kCrashed, msg); }
Status NameTooLongError(std::string_view msg) { return Make(StatusCode::kNameTooLong, msg); }
Status ReadOnlyError(std::string_view msg) { return Make(StatusCode::kReadOnly, msg); }
Status BusyError(std::string_view msg) { return Make(StatusCode::kBusy, msg); }
Status InternalError(std::string_view msg) { return Make(StatusCode::kInternal, msg); }

}  // namespace lfs
