// Minimal JSON document model and recursive-descent parser. Just enough to
// round-trip the repository's own machine-readable outputs (metrics exports,
// BENCH_*.json) in tests and tools — not a general-purpose library: numbers
// are doubles, objects preserve insertion order, no \uXXXX surrogate pairs.

#ifndef LFS_UTIL_JSON_H_
#define LFS_UTIL_JSON_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/result.h"

namespace lfs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;  // insertion order

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), num_(n) {}
  explicit Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Value(Array a) : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o) : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return *arr_; }
  const Object& as_object() const { return *obj_; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

// Parses one JSON document (surrounding whitespace allowed; trailing garbage
// is an error).
Result<Value> Parse(std::string_view text);

}  // namespace lfs::json

#endif  // LFS_UTIL_JSON_H_
