#include "src/util/rng.h"

#include <algorithm>
#include <cmath>

namespace lfs {

double Rng::NextExponential(double mean) {
  // Inverse-CDF; clamp u away from 0 to avoid log(0).
  double u = NextDouble();
  u = std::max(u, 1e-12);
  return -mean * std::log(u);
}

uint64_t Rng::NextFileSize(uint64_t mean_bytes, uint64_t max_bytes) {
  // Exponential body gives the small-file-dominated distribution the paper's
  // workload studies describe (mean of a few KB, occasional large files).
  double v = NextExponential(static_cast<double>(mean_bytes));
  uint64_t size = static_cast<uint64_t>(v) + 1;
  return std::min(size, max_bytes);
}

}  // namespace lfs
