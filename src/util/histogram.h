// Fixed-bucket histogram over [0, 1], used for the paper's segment-
// utilization distributions (Figures 5, 6, and 10).

#ifndef LFS_UTIL_HISTOGRAM_H_
#define LFS_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace lfs {

class Histogram {
 public:
  explicit Histogram(size_t buckets) : counts_(buckets, 0) {}

  // Records a sample in [0, 1]; values outside are clamped.
  void Add(double value);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t count(size_t bucket) const { return counts_[bucket]; }
  uint64_t total() const { return total_; }

  // Fraction of all samples in this bucket (0 if empty histogram).
  double Fraction(size_t bucket) const;

  // Midpoint of the bucket's value range.
  double BucketMid(size_t bucket) const;

  // Mean of the recorded samples.
  double Mean() const;

  // Renders an ASCII plot: one line per bucket, bar length proportional to
  // the bucket fraction. `label` names the series.
  std::string ToAscii(const std::string& label, int width = 60) const;

  // Two-column "x fraction" rows suitable for replotting.
  std::string ToCsv() const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  double sum_ = 0;
};

}  // namespace lfs

#endif  // LFS_UTIL_HISTOGRAM_H_
