#include "src/util/json.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace lfs::json {

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [k, v] : *obj_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Document() {
    LFS_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& why) const {
    return InvalidArgumentError("json: " + why + " at offset " +
                                std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      LFS_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value(std::move(s));
    }
    if (ConsumeWord("true")) {
      return Value(true);
    }
    if (ConsumeWord("false")) {
      return Value(false);
    }
    if (ConsumeWord("null")) {
      return Value();
    }
    return ParseNumber();
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      pos_++;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      pos_++;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    double out = 0.0;
    auto [ptr, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return Fail("malformed number");
    }
    return Value(out);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            unsigned code = std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                                         nullptr, 16);
            pos_ += 4;
            // Basic-plane only; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return Fail("unterminated string");
  }

  Result<Value> ParseArray() {
    Consume('[');
    Array items;
    SkipWs();
    if (Consume(']')) {
      return Value(std::move(items));
    }
    while (true) {
      LFS_ASSIGN_OR_RETURN(Value v, ParseValue());
      items.push_back(std::move(v));
      SkipWs();
      if (Consume(']')) {
        return Value(std::move(items));
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  Result<Value> ParseObject() {
    Consume('{');
    Object members;
    SkipWs();
    if (Consume('}')) {
      return Value(std::move(members));
    }
    while (true) {
      SkipWs();
      LFS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      LFS_ASSIGN_OR_RETURN(Value v, ParseValue());
      members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) {
        return Value(std::move(members));
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Document(); }

}  // namespace lfs::json
