// Lightweight error-handling vocabulary used throughout the library.
//
// The library does not throw exceptions on I/O or filesystem paths; fallible
// operations return a Status (or Result<T>, see result.h). Codes intentionally
// mirror the POSIX errors a filesystem surfaces to callers.

#ifndef LFS_UTIL_STATUS_H_
#define LFS_UTIL_STATUS_H_

#include <string>
#include <string_view>

namespace lfs {

enum class StatusCode {
  kOk = 0,
  kNotFound,          // ENOENT: file or directory does not exist
  kAlreadyExists,     // EEXIST: create of an existing name
  kNotADirectory,     // ENOTDIR: path component is not a directory
  kIsADirectory,      // EISDIR: file operation on a directory
  kNotEmpty,          // ENOTEMPTY: rmdir of a non-empty directory
  kNoSpace,           // ENOSPC: log full and cleaner cannot make progress
  kNoInodes,          // inode-number space exhausted
  kInvalidArgument,   // EINVAL: malformed request
  kOutOfRange,        // read/write beyond representable file size
  kCorruption,        // on-disk structure failed validation (bad magic/CRC)
  kIoError,           // the underlying device failed the request
  kCrashed,           // fault-injection device has "crashed"; writes discarded
  kNameTooLong,       // ENAMETOOLONG
  kCrossDevice,       // EXDEV (rename across filesystems)
  kReadOnly,          // filesystem mounted or forced read-only
  kBusy,              // EBUSY: object in use (e.g. unlink of open dir)
  kInternal,          // invariant violation; indicates a bug
};

// Human-readable name for a code ("NotFound", "NoSpace", ...).
std::string_view StatusCodeName(StatusCode code);

// A Status is a code plus an optional context message. The OK status carries
// no message and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}
  explicit Status(StatusCode code) : code_(code) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NotFound: no such file 'a/b'" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Constructors for the common codes; each accepts a context message.
Status OkStatus();
Status NotFoundError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status NotADirectoryError(std::string_view msg);
Status IsADirectoryError(std::string_view msg);
Status NotEmptyError(std::string_view msg);
Status NoSpaceError(std::string_view msg);
Status NoInodesError(std::string_view msg);
Status InvalidArgumentError(std::string_view msg);
Status OutOfRangeError(std::string_view msg);
Status CorruptionError(std::string_view msg);
Status IoError(std::string_view msg);
Status CrashedError(std::string_view msg);
Status NameTooLongError(std::string_view msg);
Status ReadOnlyError(std::string_view msg);
Status BusyError(std::string_view msg);
Status InternalError(std::string_view msg);

}  // namespace lfs

// Propagate a non-OK Status to the caller.
#define LFS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::lfs::Status _st = (expr);                     \
    if (!_st.ok()) {                                \
      return _st;                                   \
    }                                               \
  } while (0)

#endif  // LFS_UTIL_STATUS_H_
