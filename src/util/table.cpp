#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

namespace lfs {

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); c++) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); c++) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); c++) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (size_t w : widths) {
    sep += std::string(w + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += sep;
  return out;
}

std::string Table::Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Table::FmtPercent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace lfs
