// Relaxed<T>: a drop-in replacement for plain counter fields that makes
// concurrent increments race-free without changing single-threaded behaviour.
//
// The filesystem's statistics counters are mutated from whichever thread
// happens to run an operation (including const read paths) and read by
// benchmarks and tests after the workload quiesces. They carry no ordering
// obligations — each counter is independent — so relaxed atomics are exactly
// right: no fences, no cost on the single-threaded paths, and ThreadSanitizer
// stops flagging them.
//
// Unlike std::atomic<T>, Relaxed<T> is copyable (copies perform a relaxed
// load and store), so the stats structs that embed it keep their value
// semantics: tests snapshot them, benchmarks subtract them, and aggregate
// structs get compiler-generated copies.

#ifndef LFS_UTIL_RELAXED_H_
#define LFS_UTIL_RELAXED_H_

#include <atomic>

namespace lfs {

template <typename T>
class Relaxed {
 public:
  constexpr Relaxed(T v = T{}) : v_(v) {}  // NOLINT: implicit by design
  Relaxed(const Relaxed& o) : v_(o.load()) {}
  Relaxed& operator=(const Relaxed& o) {
    store(o.load());
    return *this;
  }
  Relaxed& operator=(T v) {
    store(v);
    return *this;
  }

  T load() const { return v_.load(std::memory_order_relaxed); }
  void store(T v) { v_.store(v, std::memory_order_relaxed); }
  operator T() const { return load(); }  // NOLINT: implicit by design

  Relaxed& operator+=(T d) {
    fetch_add(d);
    return *this;
  }
  Relaxed& operator-=(T d) {
    fetch_add(static_cast<T>(T{} - d));
    return *this;
  }
  Relaxed& operator++() {
    fetch_add(T{1});
    return *this;
  }
  T operator++(int) { return fetch_add(T{1}); }
  Relaxed& operator--() {
    fetch_add(static_cast<T>(T{} - T{1}));
    return *this;
  }
  T operator--(int) { return fetch_add(static_cast<T>(T{} - T{1})); }

  T fetch_add(T d) { return v_.fetch_add(d, std::memory_order_relaxed); }

  // Monotone max (used by clocks and high-water marks).
  void StoreMax(T v) {
    T cur = load();
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  // Monotone min (low-water marks; pair with a large sentinel initial value).
  void StoreMin(T v) {
    T cur = load();
    while (v < cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<T> v_;
};

// std::atomic<double> has no fetch_add until C++20 libstdc++ support is
// complete everywhere; accumulate via CAS.
template <>
inline double Relaxed<double>::fetch_add(double d) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
  return cur;
}

// RelaxedDelta<T>: snapshot a Relaxed counter and report how much it moved.
// Replaces the hand-rolled "uint64_t before = ctr; ... if (ctr != before)"
// idiom that grew a copy at every retry/trace site; one helper instead of a
// per-call-site variant.
template <typename T>
class RelaxedDelta {
 public:
  explicit RelaxedDelta(const Relaxed<T>& counter)
      : counter_(counter), before_(counter.load()) {}

  // Counter movement since construction (callers only ever bump forward).
  T delta() const { return static_cast<T>(counter_.load() - before_); }
  bool changed() const { return counter_.load() != before_; }

 private:
  const Relaxed<T>& counter_;
  T before_;
};

}  // namespace lfs

#endif  // LFS_UTIL_RELAXED_H_
