// Bounded retry with exponential backoff for transient device I/O errors.
//
// Only kIoError is retried: it is the one code a device reports for a fault
// that may clear on a later attempt. Everything else (corruption, bounds,
// logic errors) is deterministic and retrying would just repeat it.
//
// Backoff is modeled through the caller's logical clock rather than real
// sleeping, so simulated runs stay deterministic and fast. The clock type is
// a template parameter (anything with AdvanceTo/Now) to keep this header
// free of higher-layer includes.

#ifndef LFS_UTIL_RETRY_H_
#define LFS_UTIL_RETRY_H_

#include <cstdint>
#include <utility>

#include "src/util/status.h"

namespace lfs {

struct RetryPolicy {
  uint32_t max_attempts = 4;       // total attempts, including the first
  uint64_t backoff_ticks = 1;      // clock delay before the first retry
  uint64_t backoff_multiplier = 2; // delay growth per subsequent retry
};

// Runs fn() up to policy.max_attempts times, advancing `clock` by an
// exponentially growing delay between attempts. Returns the first
// non-kIoError status (usually OK), or the last error once attempts are
// exhausted. `retries`, if non-null, is incremented once per retry actually
// performed — wire it to a stats counter (plain uint64_t or Relaxed<uint64_t>;
// the counter type is a template parameter so atomic counters work too).
template <typename Clock, typename Counter, typename Fn>
Status RetryWithBackoff(const RetryPolicy& policy, Clock* clock, Counter* retries,
                        Fn&& fn) {
  uint32_t max_attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  uint64_t delay = policy.backoff_ticks;
  Status st = OkStatus();
  for (uint32_t attempt = 0; attempt < max_attempts; attempt++) {
    if (attempt > 0) {
      if (clock != nullptr && delay > 0) {
        clock->AdvanceTo(clock->Now() + delay);
      }
      delay *= policy.backoff_multiplier;
      if (retries != nullptr) {
        (*retries)++;
      }
    }
    st = fn();
    if (st.code() != StatusCode::kIoError) {
      return st;
    }
  }
  return st;
}

}  // namespace lfs

#endif  // LFS_UTIL_RETRY_H_
