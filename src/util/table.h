// Minimal fixed-width ASCII table renderer used by the benchmark harnesses to
// print paper-style tables (Table 2, Table 3, Table 4).

#ifndef LFS_UTIL_TABLE_H_
#define LFS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace lfs {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  std::string ToString() const;

  // Formatting helpers for cells.
  static std::string Fmt(double v, int decimals);
  static std::string FmtPercent(double fraction, int decimals = 0);  // 0.65 -> "65%"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lfs

#endif  // LFS_UTIL_TABLE_H_
