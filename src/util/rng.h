// Deterministic pseudo-random number generation for workloads and tests.
//
// Everything in this repository that needs randomness takes an explicit Rng
// so experiments are reproducible bit-for-bit across runs and machines.
// The generator is xoshiro256**, seeded via splitmix64.

#ifndef LFS_UTIL_RNG_H_
#define LFS_UTIL_RNG_H_

#include <array>
#include <cassert>
#include <cstdint>

namespace lfs {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool(double probability_true) { return NextDouble() < probability_true; }

  // Exponentially distributed with the given mean (for file-size and
  // inter-arrival modeling).
  double NextExponential(double mean);

  // A value from a bounded, discretized log-normal-ish distribution useful
  // for file sizes: most values small, a long tail. Returns a byte count in
  // [1, max_bytes] with the requested mean (approximately).
  uint64_t NextFileSize(uint64_t mean_bytes, uint64_t max_bytes);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

}  // namespace lfs

#endif  // LFS_UTIL_RNG_H_
