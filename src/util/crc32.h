// CRC-32 (IEEE 802.3 polynomial, reflected) used to validate on-disk
// structures: segment summary blocks and checkpoint regions.

#ifndef LFS_UTIL_CRC32_H_
#define LFS_UTIL_CRC32_H_

#include <cstdint>
#include <span>

namespace lfs {

// One-shot CRC of a byte span.
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental form: crc = Crc32Update(crc, chunk) starting from
// Crc32Init() and finished with Crc32Finish(crc).
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data);
uint32_t Crc32Finish(uint32_t state);

}  // namespace lfs

#endif  // LFS_UTIL_CRC32_H_
