// CrashDisk: fault-injection wrapper that models a machine crash.
//
// Before the crash point, writes pass through. At the crash point the
// in-flight write may be torn (a prefix of its blocks persist — real disks
// complete sectors, not whole multi-block I/Os). After the crash every write
// is silently discarded (the CPU is "dead"); reads keep working so recovery
// code can be driven against the surviving image after ClearCrash().
//
// Flush() is a crash-point boundary too: each flush consumes one unit of the
// armed countdown, so a sweep over CrashAfterWrites(n) also lands crashes
// *between* a write and its barrier — the window where an I/O is issued but
// not yet durable. A crash at a flush tears nothing (no blocks in flight).
//
// Two facilities serve the exhaustive crash-point explorer (src/check/):
//
//  - Recording mode journals every edge that reaches the device — writes
//    (with payload), flushes, and trims — tagged with a caller-provided op
//    marker, so a workload can be executed once and every surviving crash
//    image reconstructed offline by replaying a journal prefix.
//
//  - Capture mode (CrashAfterWritesCapture) holds the in-flight write at the
//    crash point instead of persisting a fixed torn prefix; ApplyTornPrefix()
//    then persists any prefix length on demand, so a sweep over every torn
//    prefix of one write needs one armed run instead of one per prefix.
//
// Used by recovery tests (crash-point sweeps), the crash-consistency model
// checker, and the Table 3 benchmark.

#ifndef LFS_DISK_CRASH_DISK_H_
#define LFS_DISK_CRASH_DISK_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "src/disk/block_device.h"

namespace lfs {

// One journaled device operation from CrashDisk's recording mode.
struct CrashEdge {
  enum class Kind : uint8_t { kWrite, kFlush, kTrim };
  Kind kind = Kind::kWrite;
  BlockNo block = 0;          // write/trim target
  uint64_t count = 0;         // write/trim block count
  int64_t op = -1;            // SetOpMarker() value when the edge was issued
  std::vector<uint8_t> data;  // write payload (empty for flush/trim)
};

class CrashDisk : public BlockDevice {
 public:
  explicit CrashDisk(std::unique_ptr<BlockDevice> backing) : backing_(std::move(backing)) {}

  uint32_t block_size() const override { return backing_->block_size(); }
  uint64_t block_count() const override { return backing_->block_count(); }

  Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) override {
    return backing_->Read(block, count, out);
  }
  Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) override;
  Status Flush() override;

  // Trims pass through before the crash and are silently discarded after it
  // (the dead machine's discard commands never reach the device). Trims do
  // not consume the armed countdown: crash points are counted in writes and
  // flushes so existing crash-sweep tests keep their meaning.
  Status Trim(BlockNo block, uint64_t count) override;

  double ModeledTime() const override { return backing_->ModeledTime(); }

  // Crashes after `n` more write or flush operations complete; the (n+1)-th
  // operation is the crash point — a write is torn (its first `torn_blocks`
  // blocks persist, the rest do not), a flush simply never happens.
  void CrashAfterWrites(uint64_t n, uint64_t torn_blocks = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    writes_until_crash_ = n;
    torn_blocks_ = torn_blocks;
    capture_ = false;
    armed_ = true;
  }

  // Like CrashAfterWrites, but when the crash point lands on a write, no
  // torn prefix is persisted; the in-flight payload is captured instead.
  // ApplyTornPrefix(t) then persists the first t blocks to the backing
  // store — callable repeatedly with increasing t, so one armed run serves
  // an exhaustive sweep over every torn-prefix length of that write.
  void CrashAfterWritesCapture(uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    writes_until_crash_ = n;
    torn_blocks_ = 0;
    capture_ = true;
    armed_ = true;
    in_flight_valid_ = false;
  }

  // True if the crash point landed on a write (not a flush) while capture
  // mode was armed; its geometry is then available below.
  bool has_in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_valid_;
  }
  BlockNo in_flight_block() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_block_;
  }
  uint64_t in_flight_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_count_;
  }

  // Persists the first `blocks` blocks of the captured in-flight write.
  // Because a longer prefix strictly extends a shorter one, calling with
  // t = 1, 2, ... n walks every torn image without re-running the workload.
  Status ApplyTornPrefix(uint64_t blocks);

  // Immediate crash: all future writes discarded.
  void CrashNow() {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = true;
    armed_ = false;
  }

  // "Reboot": the machine is back; subsequent writes go through again.
  void ClearCrash() {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = false;
    armed_ = false;
  }

  // --- recording mode (crash-point explorer) -------------------------------

  // Begins journaling every edge that reaches the backing device. Edges
  // issued while crashed are not recorded (they never reach the platter).
  void StartRecording() {
    std::lock_guard<std::mutex> lock(mu_);
    recording_ = true;
    journal_.clear();
  }

  // Stops recording and hands the journal to the caller.
  std::vector<CrashEdge> TakeRecording() {
    std::lock_guard<std::mutex> lock(mu_);
    recording_ = false;
    return std::move(journal_);
  }

  bool recording() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recording_;
  }

  // Tags subsequent journaled edges with the caller's operation index so a
  // crash point can be attributed to the workload op that issued it.
  void SetOpMarker(int64_t op) {
    std::lock_guard<std::mutex> lock(mu_);
    op_marker_ = op;
  }

  // Zeroes the writes/flushes/trims counters (crash state is untouched), so
  // sweeps can measure per-phase edge counts without rebuilding the device.
  void ResetCounters() {
    std::lock_guard<std::mutex> lock(mu_);
    writes_seen_ = 0;
    writes_dropped_ = 0;
    flushes_seen_ = 0;
    trims_seen_ = 0;
    trims_dropped_ = 0;
  }

  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }
  uint64_t writes_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_seen_;
  }
  uint64_t writes_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_dropped_;
  }
  uint64_t flushes_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flushes_seen_;
  }
  uint64_t trims_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trims_seen_;
  }
  uint64_t trims_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trims_dropped_;
  }

  BlockDevice* backing() { return backing_.get(); }

 private:
  std::unique_ptr<BlockDevice> backing_;
  // The concurrent crash tests drive one CrashDisk from many filesystem
  // threads; the countdown/crash state and the counters serialize here.
  // Reads pass through unlocked (the backing device orders them itself).
  mutable std::mutex mu_;
  bool armed_ = false;
  bool crashed_ = false;
  bool capture_ = false;
  uint64_t writes_until_crash_ = 0;
  uint64_t torn_blocks_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t writes_dropped_ = 0;
  uint64_t flushes_seen_ = 0;
  uint64_t trims_seen_ = 0;
  uint64_t trims_dropped_ = 0;

  bool recording_ = false;
  int64_t op_marker_ = -1;
  std::vector<CrashEdge> journal_;

  bool in_flight_valid_ = false;
  BlockNo in_flight_block_ = 0;
  uint64_t in_flight_count_ = 0;
  std::vector<uint8_t> in_flight_data_;
};

}  // namespace lfs

#endif  // LFS_DISK_CRASH_DISK_H_
