// CrashDisk: fault-injection wrapper that models a machine crash.
//
// Before the crash point, writes pass through. At the crash point the
// in-flight write may be torn (a prefix of its blocks persist — real disks
// complete sectors, not whole multi-block I/Os). After the crash every write
// is silently discarded (the CPU is "dead"); reads keep working so recovery
// code can be driven against the surviving image after ClearCrash().
//
// Flush() is a crash-point boundary too: each flush consumes one unit of the
// armed countdown, so a sweep over CrashAfterWrites(n) also lands crashes
// *between* a write and its barrier — the window where an I/O is issued but
// not yet durable. A crash at a flush tears nothing (no blocks in flight).
//
// Used by recovery tests (crash-point sweeps) and the Table 3 benchmark.

#ifndef LFS_DISK_CRASH_DISK_H_
#define LFS_DISK_CRASH_DISK_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>

#include "src/disk/block_device.h"

namespace lfs {

class CrashDisk : public BlockDevice {
 public:
  explicit CrashDisk(std::unique_ptr<BlockDevice> backing) : backing_(std::move(backing)) {}

  uint32_t block_size() const override { return backing_->block_size(); }
  uint64_t block_count() const override { return backing_->block_count(); }

  Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) override {
    return backing_->Read(block, count, out);
  }
  Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) override;
  Status Flush() override;

  // Trims pass through before the crash and are silently discarded after it
  // (the dead machine's discard commands never reach the device). Trims do
  // not consume the armed countdown: crash points are counted in writes and
  // flushes so existing crash-sweep tests keep their meaning.
  Status Trim(BlockNo block, uint64_t count) override {
    std::lock_guard<std::mutex> lock(mu_);
    trims_seen_++;
    if (crashed_) {
      trims_dropped_++;
      return OkStatus();
    }
    return backing_->Trim(block, count);
  }

  double ModeledTime() const override { return backing_->ModeledTime(); }

  // Crashes after `n` more write or flush operations complete; the (n+1)-th
  // operation is the crash point — a write is torn (its first `torn_blocks`
  // blocks persist, the rest do not), a flush simply never happens.
  void CrashAfterWrites(uint64_t n, uint64_t torn_blocks = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    writes_until_crash_ = n;
    torn_blocks_ = torn_blocks;
    armed_ = true;
  }

  // Immediate crash: all future writes discarded.
  void CrashNow() {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = true;
    armed_ = false;
  }

  // "Reboot": the machine is back; subsequent writes go through again.
  void ClearCrash() {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = false;
    armed_ = false;
  }

  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }
  uint64_t writes_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_seen_;
  }
  uint64_t writes_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writes_dropped_;
  }
  uint64_t flushes_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flushes_seen_;
  }
  uint64_t trims_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trims_seen_;
  }
  uint64_t trims_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trims_dropped_;
  }

  BlockDevice* backing() { return backing_.get(); }

 private:
  std::unique_ptr<BlockDevice> backing_;
  // The concurrent crash tests drive one CrashDisk from many filesystem
  // threads; the countdown/crash state and the counters serialize here.
  // Reads pass through unlocked (the backing device orders them itself).
  mutable std::mutex mu_;
  bool armed_ = false;
  bool crashed_ = false;
  uint64_t writes_until_crash_ = 0;
  uint64_t torn_blocks_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t writes_dropped_ = 0;
  uint64_t flushes_seen_ = 0;
  uint64_t trims_seen_ = 0;
  uint64_t trims_dropped_ = 0;
};

}  // namespace lfs

#endif  // LFS_DISK_CRASH_DISK_H_
