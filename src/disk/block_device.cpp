#include "src/disk/block_device.h"

#include <string>

namespace lfs {

Status BlockDevice::CheckRange(BlockNo block, uint64_t count, size_t span_bytes) const {
  if (count == 0) {
    return InvalidArgumentError("zero-length I/O");
  }
  if (block >= block_count() || count > block_count() - block) {
    return OutOfRangeError("I/O beyond device: block " + std::to_string(block) + " count " +
                           std::to_string(count) + " of " + std::to_string(block_count()));
  }
  if (span_bytes != count * block_size()) {
    return InvalidArgumentError("buffer size " + std::to_string(span_bytes) +
                                " != count*block_size " + std::to_string(count * block_size()));
  }
  return OkStatus();
}

}  // namespace lfs
