#include "src/disk/crash_disk.h"

#include <algorithm>

namespace lfs {

Status CrashDisk::Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, data.size()));
  std::lock_guard<std::mutex> lock(mu_);
  writes_seen_++;

  if (crashed_) {
    // The machine is down: the write never reaches the platter. We report
    // success so the filesystem under test keeps issuing its normal write
    // sequence; the test harness then abandons it and remounts.
    writes_dropped_++;
    return OkStatus();
  }

  if (armed_) {
    if (writes_until_crash_ == 0) {
      // The torn write: a prefix of whole blocks persists.
      uint64_t keep = std::min(torn_blocks_, count);
      crashed_ = true;
      armed_ = false;
      if (keep > 0) {
        LFS_RETURN_IF_ERROR(
            backing_->Write(block, keep, data.subspan(0, keep * block_size())));
      }
      writes_dropped_++;
      return OkStatus();
    }
    writes_until_crash_--;
  }

  return backing_->Write(block, count, data);
}

Status CrashDisk::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flushes_seen_++;
  if (crashed_) {
    return OkStatus();  // the machine is down; the barrier never happens
  }
  if (armed_) {
    if (writes_until_crash_ == 0) {
      // Crash at the barrier itself: every completed write already reached
      // the backing store, but the flush is lost. Nothing to tear.
      crashed_ = true;
      armed_ = false;
      return OkStatus();
    }
    writes_until_crash_--;
  }
  return backing_->Flush();
}

}  // namespace lfs
