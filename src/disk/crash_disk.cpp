#include "src/disk/crash_disk.h"

#include <algorithm>

namespace lfs {

Status CrashDisk::Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, data.size()));
  std::lock_guard<std::mutex> lock(mu_);
  writes_seen_++;

  if (crashed_) {
    // The machine is down: the write never reaches the platter. We report
    // success so the filesystem under test keeps issuing its normal write
    // sequence; the test harness then abandons it and remounts.
    writes_dropped_++;
    return OkStatus();
  }

  if (armed_) {
    if (writes_until_crash_ == 0) {
      crashed_ = true;
      armed_ = false;
      writes_dropped_++;
      if (capture_) {
        // Hold the in-flight payload; ApplyTornPrefix() persists prefixes on
        // demand so a sweep reuses this one armed run for every torn length.
        in_flight_valid_ = true;
        in_flight_block_ = block;
        in_flight_count_ = count;
        in_flight_data_.assign(data.begin(), data.end());
        return OkStatus();
      }
      // The torn write: a prefix of whole blocks persists.
      uint64_t keep = std::min(torn_blocks_, count);
      if (keep > 0) {
        LFS_RETURN_IF_ERROR(
            backing_->Write(block, keep, data.subspan(0, keep * block_size())));
      }
      return OkStatus();
    }
    writes_until_crash_--;
  }

  if (recording_) {
    CrashEdge edge;
    edge.kind = CrashEdge::Kind::kWrite;
    edge.block = block;
    edge.count = count;
    edge.op = op_marker_;
    edge.data.assign(data.begin(), data.end());
    journal_.push_back(std::move(edge));
  }
  return backing_->Write(block, count, data);
}

Status CrashDisk::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flushes_seen_++;
  if (crashed_) {
    return OkStatus();  // the machine is down; the barrier never happens
  }
  if (armed_) {
    if (writes_until_crash_ == 0) {
      // Crash at the barrier itself: every completed write already reached
      // the backing store, but the flush is lost. Nothing to tear (and in
      // capture mode nothing to capture).
      crashed_ = true;
      armed_ = false;
      return OkStatus();
    }
    writes_until_crash_--;
  }
  if (recording_) {
    CrashEdge edge;
    edge.kind = CrashEdge::Kind::kFlush;
    edge.op = op_marker_;
    journal_.push_back(std::move(edge));
  }
  return backing_->Flush();
}

Status CrashDisk::Trim(BlockNo block, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  trims_seen_++;
  if (crashed_) {
    trims_dropped_++;
    return OkStatus();
  }
  if (recording_) {
    CrashEdge edge;
    edge.kind = CrashEdge::Kind::kTrim;
    edge.block = block;
    edge.count = count;
    edge.op = op_marker_;
    journal_.push_back(std::move(edge));
  }
  return backing_->Trim(block, count);
}

Status CrashDisk::ApplyTornPrefix(uint64_t blocks) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!in_flight_valid_) {
    return InvalidArgumentError("no captured in-flight write to tear");
  }
  uint64_t keep = std::min(blocks, in_flight_count_);
  if (keep == 0) {
    return OkStatus();
  }
  return backing_->Write(in_flight_block_, keep,
                         std::span<const uint8_t>(in_flight_data_)
                             .subspan(0, keep * block_size()));
}

}  // namespace lfs
