#include "src/disk/mem_disk.h"

#include <cstring>

namespace lfs {

Status MemDisk::Read(BlockNo block, uint64_t count, std::span<uint8_t> out) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, out.size()));
  std::lock_guard<std::mutex> lock(mu_);
  std::memcpy(out.data(), data_.data() + block * block_size_, out.size());
  return OkStatus();
}

Status MemDisk::Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, data.size()));
  std::lock_guard<std::mutex> lock(mu_);
  std::memcpy(data_.data() + block * block_size_, data.data(), data.size());
  return OkStatus();
}

}  // namespace lfs
