// SsdDisk: a flash SSD BlockDevice — the device the paper could not buy in
// 1991. Where DiskModel charges seek + rotation + transfer, flash charges
// none of that: reads and programs cost fixed per-page latencies, requests
// spread across independent channels, and the real cost structure lives in
// the erase-block granularity — pages program once, whole erase blocks
// erase, and the FTL's garbage collection relocates still-valid pages,
// multiplying every host write (write amplification).
//
// The model is a page-mapped FTL:
//   - One logical block = one flash page. The device advertises
//     `logical_pages` blocks; physically it holds more (over-provisioning),
//     rounded up to whole erase blocks.
//   - Writes append into one of `open_erase_blocks` concurrently open erase
//     blocks, routed by sequential-stream detection: a write whose logical
//     address continues a stream keeps filling that stream's block, so
//     distinct sequential streams (e.g. an LFS's hot and cold logs) land in
//     distinct erase blocks instead of interleaving. The old physical page
//     of an overwritten logical block is invalidated in place.
//   - When the free-erase-block pool drops below a reserve, greedy GC picks
//     the closed erase block with the fewest valid pages (lowest index on
//     ties), relocates the survivors into GC's own dedicated open block
//     (host and GC streams never mix), and erases it.
//   - Trim unmaps the logical range, turning future overwrites of those
//     blocks free for GC. Reads of unmapped pages return zeros (OkStatus).
//
// Timing is deterministic off a modeled clock: each page operation queues on
// the channel its erase block stripes to (per-channel busy-until clocks), so
// an n-page request over k channels takes ~n/k page times plus a fixed
// per-request overhead. Erases queue on the victim's channel. All counters
// (host/GC programs, erases per block, write amplification) are exported via
// obs::BindSsdDisk.

#ifndef LFS_DISK_SSD_DISK_H_
#define LFS_DISK_SSD_DISK_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/disk/block_device.h"

namespace lfs {

struct SsdModelParams {
  uint32_t channels = 4;             // independent flash channels
  uint32_t erase_block_pages = 64;   // pages per erase block
  double read_page_sec = 50e-6;      // flash page read
  double program_page_sec = 200e-6;  // flash page program
  double erase_block_sec = 2e-3;     // whole erase-block erase
  double per_request_overhead_sec = 20e-6;  // controller/command cost
  // Physical capacity = logical * (1 + over_provision), rounded up to whole
  // erase blocks and never less than logical + gc_reserve + 1 blocks — the
  // slack GC converts into relocation headroom.
  double over_provision = 0.15;
  uint32_t gc_reserve_erase_blocks = 2;  // GC runs below this free pool
  // Concurrently open erase blocks for host writes (GC always has one more
  // of its own). Each open block tracks the sequential stream feeding it;
  // a write that continues no stream takes an idle slot, or evicts the
  // least-recently-used one. Multi-stream writing is what lets a flash
  // device keep independent host write streams physically separated.
  uint32_t open_erase_blocks = 4;

  // A mid-range SATA drive circa 2010: the default parameter set.
  static SsdModelParams Sata2010() { return SsdModelParams{}; }
};

// Counter family for the flash backend. Snapshot under the device mutex via
// stats(); quiesce before walking it from another thread.
struct SsdStats {
  uint64_t reads = 0;   // read requests
  uint64_t writes = 0;  // write requests
  uint64_t trims = 0;   // trim requests
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t pages_programmed_host = 0;  // programs on behalf of host writes
  uint64_t pages_programmed_gc = 0;    // programs relocating GC survivors
  uint64_t pages_trimmed = 0;          // mapped pages invalidated by Trim
  uint64_t erases = 0;                 // erase-block erases
  double busy_sec = 0.0;               // total modeled service time

  // (host + GC programs) / host programs; 1.0 before any host write. The
  // Lomet & Luo first-class metric for log-store space reclamation.
  double WriteAmplification() const {
    return pages_programmed_host == 0
               ? 1.0
               : static_cast<double>(pages_programmed_host + pages_programmed_gc) /
                     static_cast<double>(pages_programmed_host);
  }
};

class SsdDisk : public BlockDevice {
 public:
  SsdDisk(uint32_t page_size, uint64_t logical_pages,
          SsdModelParams params = SsdModelParams::Sata2010());

  uint32_t block_size() const override { return page_size_; }
  uint64_t block_count() const override { return logical_pages_; }

  Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) override;
  Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) override;
  Status Trim(BlockNo block, uint64_t count) override;
  Status Flush() override { return OkStatus(); }

  double ModeledTime() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.busy_sec;
  }

  // Quiesced snapshot access (the device serializes internally; read these
  // only after the workload settles).
  SsdStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  // Zeroes the counters (per-block erase wear is kept): benches reset after
  // their fill phase so the numbers cover steady-state churn only.
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = SsdStats{};
  }
  const SsdModelParams& params() const { return params_; }

  uint32_t erase_block_count() const { return static_cast<uint32_t>(erase_blocks_.size()); }
  uint32_t erase_count(uint32_t erase_block) const;
  uint32_t min_erase_count() const;
  uint32_t max_erase_count() const;
  uint64_t free_pages() const;    // unwritten pages in free + open erase blocks
  uint64_t mapped_pages() const;  // logical pages currently holding data

 private:
  enum class EbState : uint8_t { kFree, kOpen, kClosed };

  struct EraseBlock {
    EbState state = EbState::kFree;
    uint32_t valid = 0;        // mapped pages inside
    uint32_t erase_count = 0;  // wear
  };

  static constexpr uint64_t kUnmapped = UINT64_MAX;

  uint32_t ChannelOf(uint64_t erase_block) const {
    return static_cast<uint32_t>(erase_block % params_.channels);
  }
  // Queues one page operation of `sec` on the page's channel starting no
  // earlier than `start`; returns that channel's new completion time.
  double QueuePageOp(uint64_t phys_page, double start, double sec);
  // Finishes a request that dispatched work up to `done`: charges service
  // time, advances the modeled clock.
  void CloseRequest(double start, double done);

  // One write frontier: an open erase block plus the sequential stream
  // feeding it (`expect_lpn` is the logical page that would continue it).
  struct OpenBlock {
    uint32_t eb = UINT32_MAX;       // open erase block (UINT32_MAX = none)
    uint32_t next_page = 0;         // next unwritten page index within it
    uint64_t expect_lpn = UINT64_MAX;  // lpn continuing this stream
    uint64_t last_use = 0;          // LRU stamp for slot eviction
  };

  void InvalidatePage(uint64_t logical);   // drop the l2p/p2l mapping
  // Next physical page for host write `lpn` on the stream it matches;
  // triggers GC as needed. kUnmapped when out of erasable space.
  uint64_t AllocPage(uint64_t lpn, double start, double* done);
  // Opens a fresh erase block in `slot` (closing its current one), running
  // GC first when the free pool is at reserve. False if none is available.
  bool OpenFresh(OpenBlock* slot, bool is_gc, double start, double* done);
  void RunGc(double start, double* done);
  uint64_t OpenSlack() const;  // unwritten pages across all open blocks

  mutable std::mutex mu_;
  SsdModelParams params_;
  uint32_t page_size_;
  uint64_t logical_pages_;
  uint64_t physical_pages_;

  std::vector<uint8_t> flash_;    // physical page contents
  std::vector<uint64_t> l2p_;     // logical page -> physical page (kUnmapped)
  std::vector<uint64_t> p2l_;     // physical page -> logical page (kUnmapped)
  std::vector<EraseBlock> erase_blocks_;
  std::deque<uint32_t> free_ebs_;  // FIFO of erased erase blocks
  std::vector<OpenBlock> host_open_;  // host write streams
  OpenBlock gc_open_;                 // GC relocation stream
  uint64_t stream_clock_ = 0;         // LRU counter for stream slots

  std::vector<double> channel_free_;  // per-channel busy-until clocks
  double now_ = 0.0;                  // modeled request-arrival clock
  SsdStats stats_;
};

}  // namespace lfs

#endif  // LFS_DISK_SSD_DISK_H_
