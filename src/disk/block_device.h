// BlockDevice: the storage abstraction every filesystem in this repository
// sits on. Fixed-size blocks, addressed by 64-bit block number.
//
// Implementations:
//   MemDisk    - flat in-memory store (the "platter")
//   SimDisk    - wraps another device with a disk timing model + I/O stats
//   CrashDisk  - wraps another device with crash/torn-write fault injection

#ifndef LFS_DISK_BLOCK_DEVICE_H_
#define LFS_DISK_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>

#include "src/obs/modeled_time.h"
#include "src/util/status.h"

namespace lfs {

// Block numbers are absolute device addresses. kNilBlock (0) is never a valid
// target for file data in either filesystem (block 0 holds a superblock), so
// it doubles as the "no block / hole" sentinel in index structures.
using BlockNo = uint64_t;
inline constexpr BlockNo kNilBlock = 0;

// Every device doubles as a ModeledTimeSource: SimDisk reports its
// accumulated service time (the deterministic clock behind the obs layer's
// latency histograms); wrappers forward to their backing; raw stores stay at
// the default 0.
class BlockDevice : public obs::ModeledTimeSource {
 public:
  ~BlockDevice() override = default;

  virtual uint32_t block_size() const = 0;
  virtual uint64_t block_count() const = 0;

  // Reads/writes `count` consecutive blocks starting at `block`. The span
  // must be exactly count * block_size() bytes. Multi-block calls represent
  // one sequential I/O to the timing model (one seek, streaming transfer) —
  // the LFS issues whole partial-segment writes through a single call.
  virtual Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) = 0;
  virtual Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) = 0;

  // Ensures previously written data is durable. MemDisk is a no-op; fault-
  // injection devices use this as a barrier marker.
  virtual Status Flush() = 0;

  // TRIM/discard: declares `count` consecutive blocks starting at `block`
  // dead — the filesystem no longer cares about their contents. Devices that
  // can exploit the hint (SsdDisk invalidates the mapped flash pages, caches
  // drop the frames) do so; everything else validates the range and ignores
  // it. After a Trim the contents of the range are unspecified: a device may
  // preserve them (MemDisk) or return zeros (SsdDisk). Never an error to
  // trim blocks that were never written.
  virtual Status Trim(BlockNo block, uint64_t count) {
    return CheckRange(block, count, count * block_size());
  }

  // Convenience single-block forms.
  Status ReadBlock(BlockNo block, std::span<uint8_t> out) { return Read(block, 1, out); }
  Status WriteBlock(BlockNo block, std::span<const uint8_t> data) {
    return Write(block, 1, data);
  }

  uint64_t size_bytes() const { return block_count() * block_size(); }

 protected:
  // Validates a request against the device geometry.
  Status CheckRange(BlockNo block, uint64_t count, size_t span_bytes) const;
};

}  // namespace lfs

#endif  // LFS_DISK_BLOCK_DEVICE_H_
