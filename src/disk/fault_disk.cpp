#include "src/disk/fault_disk.h"

#include <string>

namespace lfs {

bool FaultDisk::ConsumeTransient(std::map<BlockNo, uint32_t>* script, BlockNo block,
                                 uint64_t count) {
  bool faulted = false;
  auto it = script->lower_bound(block);
  while (it != script->end() && it->first < block + count) {
    faulted = true;
    if (--it->second == 0) {
      it = script->erase(it);
    } else {
      ++it;
    }
  }
  return faulted;
}

bool FaultDisk::TouchesLatent(BlockNo block, uint64_t count) const {
  auto it = latent_.lower_bound(block);
  return it != latent_.end() && *it < block + count;
}

Status FaultDisk::Read(BlockNo block, uint64_t count, std::span<uint8_t> out) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, out.size()));
  counters_.reads++;

  if (TouchesLatent(block, count)) {
    counters_.latent_read_faults++;
    return IoError("latent sector error reading blocks [" + std::to_string(block) +
                   ", " + std::to_string(block + count) + ")");
  }
  if (ConsumeTransient(&transient_read_, block, count)) {
    counters_.transient_read_faults++;
    return IoError("transient read error at block " + std::to_string(block));
  }
  if (read_fault_rate_ > 0.0 && rng_.NextBool(read_fault_rate_)) {
    counters_.transient_read_faults++;
    return IoError("transient read error at block " + std::to_string(block));
  }

  LFS_RETURN_IF_ERROR(backing_->Read(block, count, out));

  if (!corrupt_.empty()) {
    auto it = corrupt_.lower_bound(block);
    for (; it != corrupt_.end() && *it < block + count; ++it) {
      // Deterministic single-bit flip, silent: the caller sees OkStatus and
      // must rely on its own checksums to notice.
      uint64_t off = (*it - block) * block_size() + (*it % block_size());
      out[off] ^= static_cast<uint8_t>(1u << (*it % 8));
      counters_.corrupted_reads++;
    }
  }
  return OkStatus();
}

Status FaultDisk::Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, data.size()));
  counters_.writes++;

  if (TouchesLatent(block, count)) {
    counters_.latent_write_faults++;
    return IoError("latent sector error writing blocks [" + std::to_string(block) +
                   ", " + std::to_string(block + count) + ")");
  }
  if (ConsumeTransient(&transient_write_, block, count)) {
    counters_.transient_write_faults++;
    return IoError("transient write error at block " + std::to_string(block));
  }
  if (write_fault_rate_ > 0.0 && rng_.NextBool(write_fault_rate_)) {
    counters_.transient_write_faults++;
    return IoError("transient write error at block " + std::to_string(block));
  }

  LFS_RETURN_IF_ERROR(backing_->Write(block, count, data));

  // A sector rewrite replaces any silently-corrupt contents.
  if (!corrupt_.empty()) {
    auto it = corrupt_.lower_bound(block);
    while (it != corrupt_.end() && *it < block + count) {
      it = corrupt_.erase(it);
    }
  }
  return OkStatus();
}

Status FaultDisk::Trim(BlockNo block, uint64_t count) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, count * block_size()));
  counters_.trims++;

  // A controller with failing media may reject the discard command too; a
  // latent range keeps failing, a scripted fault fails the next attempts.
  if (TouchesLatent(block, count)) {
    counters_.trim_faults++;
    return IoError("latent sector error trimming blocks [" + std::to_string(block) + ", " +
                   std::to_string(block + count) + ")");
  }
  if (ConsumeTransient(&transient_trim_, block, count)) {
    counters_.trim_faults++;
    return IoError("transient trim error at block " + std::to_string(block));
  }
  return backing_->Trim(block, count);
}

}  // namespace lfs
