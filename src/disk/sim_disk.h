// SimDisk: wraps a backing BlockDevice with a DiskModel and accumulates I/O
// statistics. All of the paper's performance claims are ratios of disk-time
// quantities (write cost, fraction of bandwidth used for new data, disk %
// busy), which these counters reproduce directly.

#ifndef LFS_DISK_SIM_DISK_H_
#define LFS_DISK_SIM_DISK_H_

#include <memory>
#include <mutex>

#include "src/disk/block_device.h"
#include "src/disk/disk_model.h"
#include "src/obs/latency.h"

namespace lfs {

struct DiskStats {
  uint64_t reads = 0;           // read operations
  uint64_t writes = 0;          // write operations
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t seeks = 0;           // I/Os that required head movement
  double busy_sec = 0.0;        // total modeled service time
  double seek_sec = 0.0;        // time spent seeking + in rotational latency

  DiskStats operator-(const DiskStats& other) const;
  uint64_t total_bytes() const { return bytes_read + bytes_written; }
};

class SimDisk : public BlockDevice {
 public:
  SimDisk(std::unique_ptr<BlockDevice> backing, DiskModelParams params)
      : backing_(std::move(backing)),
        model_(params, backing_->size_bytes()) {}

  uint32_t block_size() const override { return backing_->block_size(); }
  uint64_t block_count() const override { return backing_->block_count(); }

  Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) override;
  Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) override;
  Status Flush() override { return backing_->Flush(); }
  // Trims are free on the timing model (a queued command, no data transfer)
  // and forward to the backing so an SSD backing can invalidate pages.
  Status Trim(BlockNo block, uint64_t count) override {
    return backing_->Trim(block, count);
  }

  // Quiesced snapshot access; concurrent readers should use ModeledTime().
  const DiskStats& stats() const { return stats_; }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DiskStats{};
    read_latency_.Clear();
    write_latency_.Clear();
  }

  // Accumulated modeled service time: the deterministic clock the obs layer
  // derives per-operation latencies from. Thread-safe: the model and stats
  // are charged under the same mutex this read takes.
  double ModeledTime() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.busy_sec;
  }

  // Per-request service-time distributions (log2 buckets, microseconds).
  const obs::LatencyHistogram& read_latency() const { return read_latency_; }
  const obs::LatencyHistogram& write_latency() const { return write_latency_; }

  // Full-stream sequential bandwidth of the modeled device (bytes/sec); the
  // denominator in "fraction of raw bandwidth" metrics.
  double raw_bandwidth() const { return model_.params().transfer_bandwidth_bytes_per_sec; }

  BlockDevice* backing() { return backing_.get(); }

 private:
  void Charge(BlockNo block, uint64_t count, bool is_write);

  // Serializes model head movement + stats accumulation so concurrent
  // requests charge deterministic-per-request service times without racing.
  mutable std::mutex mu_;
  std::unique_ptr<BlockDevice> backing_;
  DiskModel model_;
  DiskStats stats_;
  obs::LatencyHistogram read_latency_;
  obs::LatencyHistogram write_latency_;
};

}  // namespace lfs

#endif  // LFS_DISK_SIM_DISK_H_
