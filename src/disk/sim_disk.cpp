#include "src/disk/sim_disk.h"

namespace lfs {

DiskStats DiskStats::operator-(const DiskStats& other) const {
  DiskStats d;
  d.reads = reads - other.reads;
  d.writes = writes - other.writes;
  d.bytes_read = bytes_read - other.bytes_read;
  d.bytes_written = bytes_written - other.bytes_written;
  d.seeks = seeks - other.seeks;
  d.busy_sec = busy_sec - other.busy_sec;
  d.seek_sec = seek_sec - other.seek_sec;
  return d;
}

void SimDisk::Charge(BlockNo block, uint64_t count, bool is_write) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t offset = block * block_size();
  uint64_t bytes = count * block_size();
  bool seeked = offset != model_.head_position();
  double service = model_.Access(offset, bytes);
  stats_.busy_sec += service;
  if (seeked) {
    stats_.seeks++;
    stats_.seek_sec += service - model_.TransferTime(bytes);
  }
  if (is_write) {
    stats_.writes++;
    stats_.bytes_written += bytes;
    write_latency_.Record(service);
  } else {
    stats_.reads++;
    stats_.bytes_read += bytes;
    read_latency_.Record(service);
  }
}

Status SimDisk::Read(BlockNo block, uint64_t count, std::span<uint8_t> out) {
  LFS_RETURN_IF_ERROR(backing_->Read(block, count, out));
  Charge(block, count, /*is_write=*/false);
  return OkStatus();
}

Status SimDisk::Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) {
  LFS_RETURN_IF_ERROR(backing_->Write(block, count, data));
  Charge(block, count, /*is_write=*/true);
  return OkStatus();
}

}  // namespace lfs
