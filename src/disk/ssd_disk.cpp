#include "src/disk/ssd_disk.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace lfs {

SsdDisk::SsdDisk(uint32_t page_size, uint64_t logical_pages, SsdModelParams params)
    : params_(params), page_size_(page_size), logical_pages_(logical_pages) {
  params_.channels = std::max<uint32_t>(1, params_.channels);
  params_.erase_block_pages = std::max<uint32_t>(1, params_.erase_block_pages);
  params_.gc_reserve_erase_blocks = std::max<uint32_t>(1, params_.gc_reserve_erase_blocks);
  params_.open_erase_blocks = std::max<uint32_t>(1, params_.open_erase_blocks);

  const uint64_t ebp = params_.erase_block_pages;
  uint64_t logical_ebs = (logical_pages_ + ebp - 1) / ebp;
  uint64_t target =
      static_cast<uint64_t>(static_cast<double>(logical_pages_) * (1.0 + params_.over_provision));
  // Floor: every logical page mapped, the GC reserve intact, and one block
  // per concurrently open frontier (host streams + GC's own).
  uint64_t physical_ebs = std::max(
      (target + ebp - 1) / ebp,
      logical_ebs + params_.gc_reserve_erase_blocks + params_.open_erase_blocks + 1);
  physical_pages_ = physical_ebs * ebp;

  flash_.assign(physical_pages_ * size_t{page_size_}, 0);
  l2p_.assign(logical_pages_, kUnmapped);
  p2l_.assign(physical_pages_, kUnmapped);
  erase_blocks_.assign(physical_ebs, EraseBlock{});
  for (uint32_t eb = 0; eb < physical_ebs; eb++) {
    free_ebs_.push_back(eb);
  }
  channel_free_.assign(params_.channels, 0.0);
  host_open_.assign(params_.open_erase_blocks, OpenBlock{});
}

double SsdDisk::QueuePageOp(uint64_t phys_page, double start, double sec) {
  uint32_t ch = ChannelOf(phys_page / params_.erase_block_pages);
  channel_free_[ch] = std::max(channel_free_[ch], start) + sec;
  return channel_free_[ch];
}

void SsdDisk::CloseRequest(double start, double done) {
  double service = params_.per_request_overhead_sec + (done - start);
  stats_.busy_sec += service;
  now_ = start + service;
}

void SsdDisk::InvalidatePage(uint64_t logical) {
  uint64_t phys = l2p_[logical];
  if (phys == kUnmapped) {
    return;
  }
  l2p_[logical] = kUnmapped;
  p2l_[phys] = kUnmapped;
  erase_blocks_[phys / params_.erase_block_pages].valid--;
}

uint64_t SsdDisk::OpenSlack() const {
  const uint32_t ebp = params_.erase_block_pages;
  uint64_t slack = gc_open_.eb != UINT32_MAX ? ebp - gc_open_.next_page : 0;
  for (const OpenBlock& slot : host_open_) {
    if (slot.eb != UINT32_MAX) {
      slack += ebp - slot.next_page;
    }
  }
  return slack;
}

void SsdDisk::RunGc(double start, double* done) {
  const uint32_t ebp = params_.erase_block_pages;
  // Bounded: each pass erases one block, and the pool cannot need more
  // passes than blocks exist (the cap guards a mis-parameterized device).
  for (size_t pass = 0; pass < 2 * erase_blocks_.size(); pass++) {
    if (free_ebs_.size() >= params_.gc_reserve_erase_blocks) {
      return;
    }
    // Greedy victim: the closed erase block with the fewest valid pages
    // (lowest index on ties, for determinism).
    uint32_t victim = UINT32_MAX;
    for (uint32_t eb = 0; eb < erase_blocks_.size(); eb++) {
      if (erase_blocks_[eb].state == EbState::kClosed &&
          (victim == UINT32_MAX || erase_blocks_[eb].valid < erase_blocks_[victim].valid)) {
        victim = eb;
      }
    }
    if (victim == UINT32_MAX || erase_blocks_[victim].valid >= ebp) {
      return;  // nothing reclaimable: erasing would free no net space
    }
    // Relocation must not strand the victim half-emptied: require room for
    // every survivor before starting (GC writes only into its own stream).
    uint64_t room = free_ebs_.size() * uint64_t{ebp} +
                    (gc_open_.eb != UINT32_MAX ? ebp - gc_open_.next_page : 0);
    if (room < erase_blocks_[victim].valid) {
      return;
    }
    for (uint32_t i = 0; i < ebp; i++) {
      uint64_t src = uint64_t{victim} * ebp + i;
      uint64_t logical = p2l_[src];
      if (logical == kUnmapped) {
        continue;
      }
      // Open the next free erase block directly — GC never re-enters itself.
      if (gc_open_.eb == UINT32_MAX || gc_open_.next_page == ebp) {
        if (gc_open_.eb != UINT32_MAX) {
          erase_blocks_[gc_open_.eb].state = EbState::kClosed;
        }
        gc_open_.eb = free_ebs_.front();
        free_ebs_.pop_front();
        erase_blocks_[gc_open_.eb].state = EbState::kOpen;
        gc_open_.next_page = 0;
      }
      uint64_t dst = uint64_t{gc_open_.eb} * ebp + gc_open_.next_page++;
      *done = std::max(*done, QueuePageOp(src, start, params_.read_page_sec));
      *done = std::max(*done, QueuePageOp(dst, start, params_.program_page_sec));
      std::memcpy(&flash_[dst * page_size_], &flash_[src * page_size_], page_size_);
      l2p_[logical] = dst;
      p2l_[dst] = logical;
      p2l_[src] = kUnmapped;
      erase_blocks_[victim].valid--;
      erase_blocks_[gc_open_.eb].valid++;
      stats_.pages_programmed_gc++;
    }
    *done = std::max(*done, QueuePageOp(uint64_t{victim} * ebp, start, params_.erase_block_sec));
    erase_blocks_[victim].state = EbState::kFree;
    erase_blocks_[victim].erase_count++;
    stats_.erases++;
    free_ebs_.push_back(victim);
  }
}

bool SsdDisk::OpenFresh(OpenBlock* slot, bool is_gc, double start, double* done) {
  if (slot->eb != UINT32_MAX) {
    erase_blocks_[slot->eb].state = EbState::kClosed;
    slot->eb = UINT32_MAX;
  }
  if (!is_gc && free_ebs_.size() < params_.gc_reserve_erase_blocks) {
    RunGc(start, done);
  }
  if (free_ebs_.empty()) {
    return false;
  }
  slot->eb = free_ebs_.front();
  free_ebs_.pop_front();
  erase_blocks_[slot->eb].state = EbState::kOpen;
  slot->next_page = 0;
  return true;
}

uint64_t SsdDisk::AllocPage(uint64_t lpn, double start, double* done) {
  const uint32_t ebp = params_.erase_block_pages;
  // Sequential-stream detection: a write continuing a stream keeps filling
  // that stream's open block, so independent sequential streams (an LFS's
  // hot and cold logs, say) stay in separate erase blocks. Non-continuing
  // writes take an idle slot, else evict the least-recently-used stream.
  OpenBlock* slot = nullptr;
  for (OpenBlock& s : host_open_) {
    if (s.eb != UINT32_MAX && s.expect_lpn == lpn) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) {
    for (OpenBlock& s : host_open_) {
      if (s.eb == UINT32_MAX) {
        slot = &s;
        break;
      }
    }
  }
  if (slot == nullptr) {
    slot = &host_open_[0];
    for (OpenBlock& s : host_open_) {
      if (s.last_use < slot->last_use) {
        slot = &s;
      }
    }
  }
  if (slot->eb == UINT32_MAX || slot->next_page == ebp) {
    if (!OpenFresh(slot, /*is_gc=*/false, start, done)) {
      return kUnmapped;
    }
  }
  slot->expect_lpn = lpn + 1;
  slot->last_use = ++stream_clock_;
  return uint64_t{slot->eb} * ebp + slot->next_page++;
}

Status SsdDisk::Read(BlockNo block, uint64_t count, std::span<uint8_t> out) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, out.size()));
  std::lock_guard<std::mutex> lock(mu_);
  double start = now_;
  double done = start;
  for (uint64_t i = 0; i < count; i++) {
    std::span<uint8_t> slot = out.subspan(i * page_size_, page_size_);
    uint64_t phys = l2p_[block + i];
    if (phys == kUnmapped) {
      // Never written (or trimmed): flash has no mapping, the controller
      // synthesizes zeros without touching a channel.
      std::memset(slot.data(), 0, slot.size());
      continue;
    }
    done = std::max(done, QueuePageOp(phys, start, params_.read_page_sec));
    std::memcpy(slot.data(), &flash_[phys * page_size_], page_size_);
  }
  stats_.reads++;
  stats_.bytes_read += count * page_size_;
  CloseRequest(start, done);
  return OkStatus();
}

Status SsdDisk::Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, data.size()));
  std::lock_guard<std::mutex> lock(mu_);
  double start = now_;
  double done = start;
  for (uint64_t i = 0; i < count; i++) {
    InvalidatePage(block + i);
    uint64_t phys = AllocPage(block + i, start, &done);
    if (phys == kUnmapped) {
      uint64_t mapped = 0;
      for (uint64_t p : l2p_) {
        mapped += p != kUnmapped;
      }
      uint64_t closed = 0, closed_valid = 0, full = 0;
      for (const EraseBlock& eb : erase_blocks_) {
        if (eb.state == EbState::kClosed) {
          closed++;
          closed_valid += eb.valid;
          full += eb.valid >= params_.erase_block_pages;
        }
      }
      return IoError("ssd: no erasable space for write at block " +
                     std::to_string(block + i) + " (mapped " + std::to_string(mapped) +
                     "/" + std::to_string(logical_pages_) + " logical, " +
                     std::to_string(physical_pages_) + " physical, " +
                     std::to_string(free_ebs_.size()) + " free ebs, " +
                     std::to_string(closed) + " closed holding " +
                     std::to_string(closed_valid) + " valid, " + std::to_string(full) +
                     " full)");
    }
    std::memcpy(&flash_[phys * page_size_], data.subspan(i * page_size_, page_size_).data(),
                page_size_);
    l2p_[block + i] = phys;
    p2l_[phys] = block + i;
    erase_blocks_[phys / params_.erase_block_pages].valid++;
    done = std::max(done, QueuePageOp(phys, start, params_.program_page_sec));
    stats_.pages_programmed_host++;
  }
  stats_.writes++;
  stats_.bytes_written += count * page_size_;
  CloseRequest(start, done);
  return OkStatus();
}

Status SsdDisk::Trim(BlockNo block, uint64_t count) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, count * block_size()));
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t i = 0; i < count; i++) {
    if (l2p_[block + i] != kUnmapped) {
      stats_.pages_trimmed++;
    }
    InvalidatePage(block + i);
  }
  stats_.trims++;
  // A discard is a queued command with no data transfer: overhead only.
  CloseRequest(now_, now_);
  return OkStatus();
}

uint32_t SsdDisk::erase_count(uint32_t erase_block) const {
  std::lock_guard<std::mutex> lock(mu_);
  return erase_block < erase_blocks_.size() ? erase_blocks_[erase_block].erase_count : 0;
}

uint32_t SsdDisk::min_erase_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t m = UINT32_MAX;
  for (const EraseBlock& eb : erase_blocks_) {
    m = std::min(m, eb.erase_count);
  }
  return erase_blocks_.empty() ? 0 : m;
}

uint32_t SsdDisk::max_erase_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t m = 0;
  for (const EraseBlock& eb : erase_blocks_) {
    m = std::max(m, eb.erase_count);
  }
  return m;
}

uint64_t SsdDisk::free_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_ebs_.size() * uint64_t{params_.erase_block_pages} + OpenSlack();
}

uint64_t SsdDisk::mapped_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (uint64_t p : l2p_) {
    n += p != kUnmapped ? 1 : 0;
  }
  return n;
}

}  // namespace lfs
