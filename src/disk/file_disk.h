// FileDisk: a BlockDevice backed by a file on the host filesystem, so the
// example programs can keep a persistent LFS image across runs. Not used by
// benchmarks (they need the deterministic timing model over MemDisk).

#ifndef LFS_DISK_FILE_DISK_H_
#define LFS_DISK_FILE_DISK_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/disk/block_device.h"
#include "src/util/result.h"

namespace lfs {

class FileDisk : public BlockDevice {
 public:
  // Opens (or creates, zero-filled) an image of exactly
  // block_count * block_size bytes.
  static Result<std::unique_ptr<FileDisk>> Open(const std::string& path, uint32_t block_size,
                                                uint64_t block_count);
  ~FileDisk() override;
  FileDisk(const FileDisk&) = delete;
  FileDisk& operator=(const FileDisk&) = delete;

  uint32_t block_size() const override { return block_size_; }
  uint64_t block_count() const override { return block_count_; }

  Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) override;
  Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) override;
  Status Flush() override;

 private:
  FileDisk(std::FILE* file, uint32_t block_size, uint64_t block_count)
      : file_(file), block_size_(block_size), block_count_(block_count) {}

  std::FILE* file_;
  uint32_t block_size_;
  uint64_t block_count_;
};

}  // namespace lfs

#endif  // LFS_DISK_FILE_DISK_H_
