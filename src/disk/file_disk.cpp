#include "src/disk/file_disk.h"

#include <vector>

namespace lfs {

Result<std::unique_ptr<FileDisk>> FileDisk::Open(const std::string& path, uint32_t block_size,
                                                 uint64_t block_count) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");  // create a fresh image
  }
  if (file == nullptr) {
    return IoError("cannot open image file '" + path + "'");
  }
  uint64_t want = block_count * uint64_t{block_size};
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return IoError("seek failed on '" + path + "'");
  }
  uint64_t have = static_cast<uint64_t>(std::ftell(file));
  if (have < want) {
    // Extend with zeros (fresh image, or a truncated one).
    std::vector<uint8_t> zeros(64 * 1024, 0);
    std::fseek(file, 0, SEEK_END);
    while (have < want) {
      size_t chunk = static_cast<size_t>(std::min<uint64_t>(zeros.size(), want - have));
      if (std::fwrite(zeros.data(), 1, chunk, file) != chunk) {
        std::fclose(file);
        return IoError("cannot extend image file '" + path + "'");
      }
      have += chunk;
    }
  }
  // An image larger than requested is fine: callers that probe with a small
  // bootstrap geometry (lfsck, lfsdump) reopen with the real size later, and
  // reads/writes are bounds-checked against the requested size regardless.
  return std::unique_ptr<FileDisk>(new FileDisk(file, block_size, block_count));
}

FileDisk::~FileDisk() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status FileDisk::Read(BlockNo block, uint64_t count, std::span<uint8_t> out) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, out.size()));
  if (std::fseek(file_, static_cast<long>(block * block_size_), SEEK_SET) != 0) {
    return IoError("seek failed");
  }
  if (std::fread(out.data(), 1, out.size(), file_) != out.size()) {
    return IoError("short read from image file");
  }
  return OkStatus();
}

Status FileDisk::Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) {
  LFS_RETURN_IF_ERROR(CheckRange(block, count, data.size()));
  if (std::fseek(file_, static_cast<long>(block * block_size_), SEEK_SET) != 0) {
    return IoError("seek failed");
  }
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return IoError("short write to image file");
  }
  return OkStatus();
}

Status FileDisk::Flush() {
  if (std::fflush(file_) != 0) {
    return IoError("fflush failed");
  }
  return OkStatus();
}

}  // namespace lfs
