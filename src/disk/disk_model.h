// DiskModel: service-time model for a rotating disk, parameterized to the
// paper's testbed (Wren IV: 1.3 MB/s maximum transfer bandwidth, 17.5 ms
// average seek). The model charges
//
//   service(io) = seek(distance from previous head position)
//               + rotational latency (half a revolution, when a seek occurred)
//               + transfer (bytes / bandwidth)
//
// Sequential I/O that continues exactly where the head left off pays neither
// seek nor rotational latency, which is the physical fact the whole LFS
// design exploits: the paper's segment size is chosen so that whole-segment
// transfers amortize one seek over ~a second of streaming.

#ifndef LFS_DISK_DISK_MODEL_H_
#define LFS_DISK_DISK_MODEL_H_

#include <cstdint>

namespace lfs {

struct DiskModelParams {
  double transfer_bandwidth_bytes_per_sec = 1.3e6;  // Wren IV max transfer rate
  double avg_seek_sec = 0.0175;                     // Wren IV average seek
  double track_to_track_seek_sec = 0.004;           // short-seek floor
  double rotational_latency_sec = 0.00832;          // half-rev at 3600 RPM
  // Fixed cost charged to every request (controller/command overhead and
  // missed-rotation effects). Large sequential I/Os amortize it; the
  // per-block I/O style of the baseline FFS does not — this is the effect
  // behind Figure 9's caption ("SunOS performs individual disk operations
  // for each block").
  double per_request_overhead_sec = 0.002;

  // Returns the Wren IV parameter set (the default).
  static DiskModelParams WrenIV() { return DiskModelParams{}; }

  // A modern-ish device for ablations: fast transfers, seeks still costly
  // relative to bandwidth (the trend the paper's Section 2.1 extrapolates).
  static DiskModelParams Disk1999() {
    DiskModelParams p;
    p.transfer_bandwidth_bytes_per_sec = 20e6;
    p.avg_seek_sec = 0.008;
    p.track_to_track_seek_sec = 0.001;
    p.rotational_latency_sec = 0.004;
    p.per_request_overhead_sec = 0.0005;
    return p;
  }
};

class DiskModel {
 public:
  DiskModel(DiskModelParams params, uint64_t total_bytes)
      : params_(params), total_bytes_(total_bytes) {}

  // Charges one I/O of `bytes` at byte offset `offset`; advances the modeled
  // head position and returns the service time in seconds.
  double Access(uint64_t offset, uint64_t bytes);

  // Seek time for a head movement of `distance` bytes (0 => 0). Uses the
  // standard concave (square-root) seek curve scaled so that the average
  // over uniformly random seeks equals avg_seek_sec.
  double SeekTime(uint64_t distance) const;

  double TransferTime(uint64_t bytes) const {
    return static_cast<double>(bytes) / params_.transfer_bandwidth_bytes_per_sec;
  }

  const DiskModelParams& params() const { return params_; }
  uint64_t head_position() const { return head_; }
  void set_head_position(uint64_t pos) { head_ = pos; }

 private:
  DiskModelParams params_;
  uint64_t total_bytes_;
  uint64_t head_ = 0;  // byte offset the head is parked at (end of last I/O)
};

}  // namespace lfs

#endif  // LFS_DISK_DISK_MODEL_H_
