#include "src/disk/disk_model.h"

#include <cmath>
#include <cstdlib>

namespace lfs {

double DiskModel::SeekTime(uint64_t distance) const {
  if (distance == 0) {
    return 0.0;
  }
  // Concave seek curve: t2t + c*sqrt(d/D). For uniformly random head moves,
  // E[sqrt(|x-y|)] with x,y ~ U[0,1] is 8/15, so choosing
  // c = (avg - t2t) * 15/8 makes the uniform-random average equal
  // avg_seek_sec, anchoring the model to the Wren IV spec sheet.
  double frac = static_cast<double>(distance) / static_cast<double>(total_bytes_);
  double c = (params_.avg_seek_sec - params_.track_to_track_seek_sec) * 15.0 / 8.0;
  return params_.track_to_track_seek_sec + c * std::sqrt(frac);
}

double DiskModel::Access(uint64_t offset, uint64_t bytes) {
  double time = params_.per_request_overhead_sec;
  if (offset != head_) {
    uint64_t distance = offset > head_ ? offset - head_ : head_ - offset;
    time += SeekTime(distance);
    time += params_.rotational_latency_sec;
  }
  time += TransferTime(bytes);
  head_ = offset + bytes;
  return time;
}

}  // namespace lfs
