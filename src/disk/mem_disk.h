// MemDisk: flat in-memory block store. This is the "platter"; timing and
// fault behaviour are layered on top by SimDisk / CrashDisk wrappers.

#ifndef LFS_DISK_MEM_DISK_H_
#define LFS_DISK_MEM_DISK_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/disk/block_device.h"

namespace lfs {

// Thread safety: Read/Write serialize on an internal mutex so concurrent
// front-end threads (and the background cleaner) can share one platter.
// raw() stays unsynchronized — it is for quiesced test inspection only.
class MemDisk : public BlockDevice {
 public:
  MemDisk(uint32_t block_size, uint64_t block_count)
      : block_size_(block_size), block_count_(block_count), data_(block_size * block_count, 0) {}

  uint32_t block_size() const override { return block_size_; }
  uint64_t block_count() const override { return block_count_; }

  Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) override;
  Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) override;
  Status Flush() override { return OkStatus(); }

  // Test/fault-injection access to raw contents.
  std::span<uint8_t> raw() { return data_; }
  std::span<const uint8_t> raw() const { return data_; }

 private:
  std::mutex mu_;
  uint32_t block_size_;
  uint64_t block_count_;
  std::vector<uint8_t> data_;
};

}  // namespace lfs

#endif  // LFS_DISK_MEM_DISK_H_
