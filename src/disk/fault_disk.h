// FaultDisk: fault-injection wrapper that models media failures between
// crashes — the failure modes CrashDisk does not cover.
//
// Three fault classes, all deterministic under a fixed seed and script:
//  - Transient errors: a scripted block fails its next `fail_count` read (or
//    write) attempts with kIoError, then recovers — the model for the
//    retry-with-backoff path. A probabilistic mode flips a seeded coin per
//    request instead, failing that single attempt.
//  - Latent sector errors: a block range fails every access permanently
//    until ClearLatentError — the model for cleaner quarantine and the
//    checkpoint-region fallback / degraded-read-only ladder.
//  - Silent corruption: reads of a marked block return bit-flipped data with
//    OkStatus — the model for CRC-verified read paths. A successful write to
//    the block rewrites the sector and clears the corruption.
//
// A multi-block request fails whole if any covered block faults, matching
// how a real controller reports a failed transfer.

#ifndef LFS_DISK_FAULT_DISK_H_
#define LFS_DISK_FAULT_DISK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "src/disk/block_device.h"
#include "src/util/rng.h"

namespace lfs {

class FaultDisk : public BlockDevice {
 public:
  struct FaultCounters {
    uint64_t reads = 0;                  // read requests seen
    uint64_t writes = 0;                 // write requests seen
    uint64_t transient_read_faults = 0;  // scripted + probabilistic
    uint64_t transient_write_faults = 0;
    uint64_t latent_read_faults = 0;
    uint64_t latent_write_faults = 0;
    uint64_t corrupted_reads = 0;        // blocks returned with flipped bits
    uint64_t trims = 0;                  // trim requests seen
    uint64_t trim_faults = 0;            // trims failed (scripted or latent)
  };

  explicit FaultDisk(std::unique_ptr<BlockDevice> backing, uint64_t seed = 1)
      : backing_(std::move(backing)), rng_(seed) {}

  uint32_t block_size() const override { return backing_->block_size(); }
  uint64_t block_count() const override { return backing_->block_count(); }

  Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) override;
  Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) override;
  Status Flush() override { return backing_->Flush(); }
  Status Trim(BlockNo block, uint64_t count) override;

  double ModeledTime() const override { return backing_->ModeledTime(); }

  // The next `fail_count` read (write) attempts touching `block` fail with
  // kIoError; the attempt after that succeeds.
  void AddTransientReadFault(BlockNo block, uint32_t fail_count = 1) {
    transient_read_[block] += fail_count;
  }
  void AddTransientWriteFault(BlockNo block, uint32_t fail_count = 1) {
    transient_write_[block] += fail_count;
  }
  // The next `fail_count` trims touching `block` fail with kIoError.
  void AddTransientTrimFault(BlockNo block, uint32_t fail_count = 1) {
    transient_trim_[block] += fail_count;
  }

  // Permanent latent sector errors over [block, block + count): every read
  // and write of the range fails until cleared.
  void AddLatentError(BlockNo block, uint64_t count = 1) {
    for (uint64_t i = 0; i < count; i++) {
      latent_.insert(block + i);
    }
  }
  void ClearLatentError(BlockNo block, uint64_t count = 1) {
    for (uint64_t i = 0; i < count; i++) {
      latent_.erase(block + i);
    }
  }

  // Reads of `block` silently return corrupted bytes (one bit flipped,
  // deterministic per block number). A successful write clears it.
  void CorruptOnRead(BlockNo block) { corrupt_.insert(block); }

  // Probabilistic mode: each request independently fails (one attempt) with
  // probability p, drawn from the seeded generator. 0 disables.
  void SetTransientReadFaultRate(double p) { read_fault_rate_ = p; }
  void SetTransientWriteFaultRate(double p) { write_fault_rate_ = p; }

  void ClearAllFaults() {
    transient_read_.clear();
    transient_write_.clear();
    transient_trim_.clear();
    latent_.clear();
    corrupt_.clear();
    read_fault_rate_ = 0.0;
    write_fault_rate_ = 0.0;
  }

  const FaultCounters& counters() const { return counters_; }
  BlockDevice* backing() { return backing_.get(); }

 private:
  // True (and decrements the script) when any block of [block, block+count)
  // has a pending scripted transient fault.
  static bool ConsumeTransient(std::map<BlockNo, uint32_t>* script, BlockNo block,
                               uint64_t count);
  bool TouchesLatent(BlockNo block, uint64_t count) const;

  std::unique_ptr<BlockDevice> backing_;
  Rng rng_;
  std::map<BlockNo, uint32_t> transient_read_;   // block -> remaining failures
  std::map<BlockNo, uint32_t> transient_write_;
  std::map<BlockNo, uint32_t> transient_trim_;
  std::set<BlockNo> latent_;
  std::set<BlockNo> corrupt_;
  double read_fault_rate_ = 0.0;
  double write_fault_rate_ = 0.0;
  FaultCounters counters_;
};

}  // namespace lfs

#endif  // LFS_DISK_FAULT_DISK_H_
