#include "src/ffs/ffs_layout.h"

#include <cstring>

#include "src/util/codec.h"
#include "src/util/crc32.h"

namespace lfs::ffs {

void FfsSuperblock::EncodeTo(std::span<uint8_t> block) const {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU32(kFfsMagic);
  enc.PutU32(block_size);
  enc.PutU64(total_blocks);
  enc.PutU32(ngroups);
  enc.PutU32(blocks_per_group);
  enc.PutU32(inodes_per_group);
  enc.PutU32(inode_table_blocks);
  enc.PutU32(data_start);
  enc.PutU32(Crc32(buf));
  enc.PadTo(block.size());
  std::memcpy(block.data(), buf.data(), block.size());
}

Result<FfsSuperblock> FfsSuperblock::DecodeFrom(std::span<const uint8_t> block) {
  Decoder dec(block);
  if (dec.GetU32() != kFfsMagic) {
    return CorruptionError("ffs superblock: bad magic");
  }
  FfsSuperblock sb;
  sb.block_size = dec.GetU32();
  sb.total_blocks = dec.GetU64();
  sb.ngroups = dec.GetU32();
  sb.blocks_per_group = dec.GetU32();
  sb.inodes_per_group = dec.GetU32();
  sb.inode_table_blocks = dec.GetU32();
  sb.data_start = dec.GetU32();
  uint32_t crc = dec.GetU32();
  if (!dec.ok() || crc != Crc32(block.subspan(0, dec.pos() - 4))) {
    return CorruptionError("ffs superblock: bad CRC");
  }
  return sb;
}

Result<FfsSuperblock> FfsSuperblock::Compute(uint32_t block_size, uint64_t total_blocks) {
  if (block_size < 512 || (block_size & (block_size - 1)) != 0) {
    return InvalidArgumentError("block_size must be a power of two >= 512");
  }
  FfsSuperblock sb;
  sb.block_size = block_size;
  sb.total_blocks = total_blocks;
  // Groups of ~2K blocks (8 MB at 4-KB blocks), like FFS cylinder groups.
  sb.blocks_per_group = 2048;
  if (total_blocks < sb.blocks_per_group + 1) {
    sb.blocks_per_group = static_cast<uint32_t>(total_blocks > 64 ? total_blocks - 1 : 0);
  }
  if (sb.blocks_per_group < 64) {
    return InvalidArgumentError("device too small for an FFS layout");
  }
  sb.ngroups = static_cast<uint32_t>((total_blocks - 1) / sb.blocks_per_group);
  if (sb.ngroups == 0) {
    return InvalidArgumentError("device too small: no complete block group fits");
  }
  // One inode per 4 data blocks, a classic FFS density.
  uint32_t ipb = block_size / kFfsInodeSize;
  sb.inodes_per_group = (sb.blocks_per_group / 4 + ipb - 1) / ipb * ipb;
  sb.inode_table_blocks = sb.inodes_per_group / ipb;
  sb.data_start = 2 + sb.inode_table_blocks;
  if (sb.data_start >= sb.blocks_per_group) {
    return InvalidArgumentError("block group too small for its inode table");
  }
  return sb;
}

void FfsInode::EncodeTo(std::span<uint8_t> slot) const {
  std::vector<uint8_t> buf;
  buf.reserve(kFfsInodeSize);
  Encoder enc(&buf);
  enc.PutU32(ino);
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutU16(nlink);
  enc.PutU64(size);
  enc.PutU64(mtime);
  for (BlockNo b : direct) {
    enc.PutU64(b);
  }
  enc.PutU64(single_indirect);
  enc.PutU64(double_indirect);
  enc.PadTo(kFfsInodeSize);
  std::memcpy(slot.data(), buf.data(), kFfsInodeSize);
}

Result<FfsInode> FfsInode::DecodeFrom(std::span<const uint8_t> slot) {
  Decoder dec(slot);
  FfsInode ino;
  ino.ino = dec.GetU32();
  ino.type = static_cast<FileType>(dec.GetU8());
  ino.nlink = dec.GetU16();
  ino.size = dec.GetU64();
  ino.mtime = dec.GetU64();
  for (auto& b : ino.direct) {
    b = dec.GetU64();
  }
  ino.single_indirect = dec.GetU64();
  ino.double_indirect = dec.GetU64();
  if (!dec.ok()) {
    return CorruptionError("ffs inode: truncated");
  }
  return ino;
}

size_t FfsDirEntrySize(const DirEntry& e) { return 4 + 1 + 2 + e.name.size(); }

std::vector<uint8_t> FfsEncodeDirBlock(const std::vector<DirEntry>& entries,
                                       uint32_t block_size) {
  std::vector<uint8_t> buf;
  buf.reserve(block_size);
  Encoder enc(&buf);
  enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const DirEntry& e : entries) {
    enc.PutU32(e.ino);
    enc.PutU8(static_cast<uint8_t>(e.type));
    enc.PutLengthPrefixedString(e.name);
  }
  enc.PadTo(block_size);
  return buf;
}

Result<std::vector<DirEntry>> FfsDecodeDirBlock(std::span<const uint8_t> block) {
  Decoder dec(block);
  uint32_t count = dec.GetU32();
  std::vector<DirEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    DirEntry e;
    e.ino = dec.GetU32();
    e.type = static_cast<FileType>(dec.GetU8());
    e.name = dec.GetLengthPrefixedString();
    if (!dec.ok()) {
      return CorruptionError("ffs directory block: truncated entry");
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace lfs::ffs
