#include "src/ffs/ffs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/util/codec.h"

namespace lfs::ffs {

FfsFileSystem::FfsFileSystem(BlockDevice* device, const FfsSuperblock& sb)
    : device_(device), sb_(sb) {
  for (uint32_t g = 0; g < sb_.ngroups; g++) {
    inode_bitmaps_.emplace_back(sb_.inodes_per_group);
    block_bitmaps_.emplace_back(sb_.data_blocks_per_group());
  }
  free_data_blocks_ = uint64_t{sb_.ngroups} * sb_.data_blocks_per_group();
}

Result<std::unique_ptr<FfsFileSystem>> FfsFileSystem::Mkfs(BlockDevice* device,
                                                           uint32_t block_size) {
  if (device->block_size() != block_size) {
    return InvalidArgumentError("device block size mismatch");
  }
  LFS_ASSIGN_OR_RETURN(FfsSuperblock sb,
                       FfsSuperblock::Compute(block_size, device->block_count()));
  std::vector<uint8_t> block(block_size, 0);
  sb.EncodeTo(block);
  LFS_RETURN_IF_ERROR(device->WriteBlock(0, block));

  // newfs: zero the bitmaps and inode tables of every group.
  std::vector<uint8_t> zero(block_size, 0);
  for (uint32_t g = 0; g < sb.ngroups; g++) {
    LFS_RETURN_IF_ERROR(device->WriteBlock(sb.InodeBitmapBlock(g), zero));
    LFS_RETURN_IF_ERROR(device->WriteBlock(sb.BlockBitmapBlock(g), zero));
    for (uint32_t b = 0; b < sb.inode_table_blocks; b++) {
      LFS_RETURN_IF_ERROR(device->WriteBlock(sb.InodeTableBlock(g) + b, zero));
    }
  }

  auto fs = std::unique_ptr<FfsFileSystem>(new FfsFileSystem(device, sb));
  LFS_ASSIGN_OR_RETURN(InodeNum root, fs->AllocInode(0));
  if (root != kRootInode) {
    return InternalError("ffs mkfs: root inode is not 1");
  }
  FfsInode inode;
  inode.ino = root;
  inode.type = FileType::kDirectory;
  inode.nlink = 1;
  inode.mtime = fs->clock_.Tick();
  LFS_RETURN_IF_ERROR(fs->WriteInodeSync(inode));
  fs->dirs_[root] = DirCache{};
  LFS_RETURN_IF_ERROR(fs->WriteBitmapsSync());
  return fs;
}

Result<std::unique_ptr<FfsFileSystem>> FfsFileSystem::Mount(BlockDevice* device) {
  std::vector<uint8_t> block(device->block_size());
  LFS_RETURN_IF_ERROR(device->ReadBlock(0, block));
  LFS_ASSIGN_OR_RETURN(FfsSuperblock sb, FfsSuperblock::DecodeFrom(block));
  auto fs = std::unique_ptr<FfsFileSystem>(new FfsFileSystem(device, sb));
  fs->free_data_blocks_ = 0;
  for (uint32_t g = 0; g < sb.ngroups; g++) {
    LFS_RETURN_IF_ERROR(device->ReadBlock(sb.InodeBitmapBlock(g), block));
    fs->inode_bitmaps_[g].CopyFrom(block);
    LFS_RETURN_IF_ERROR(device->ReadBlock(sb.BlockBitmapBlock(g), block));
    fs->block_bitmaps_[g].CopyFrom(block);
    fs->free_data_blocks_ +=
        sb.data_blocks_per_group() - fs->block_bitmaps_[g].CountSet();
  }
  return fs;
}

// --- allocation -----------------------------------------------------------------

Result<InodeNum> FfsFileSystem::AllocInode(uint32_t group_hint) {
  for (uint32_t n = 0; n < sb_.ngroups; n++) {
    uint32_t g = (group_hint + n) % sb_.ngroups;
    uint32_t idx = inode_bitmaps_[g].FindFree();
    if (idx == UINT32_MAX) {
      continue;
    }
    inode_bitmaps_[g].Set(idx);
    return static_cast<InodeNum>(g * sb_.inodes_per_group + idx + 1);
  }
  return NoInodesError("ffs: all inodes in use");
}

void FfsFileSystem::FreeInode(InodeNum ino) {
  uint32_t g = GroupOfInode(ino);
  inode_bitmaps_[g].Clear((ino - 1) % sb_.inodes_per_group);
}

Result<BlockNo> FfsFileSystem::AllocBlock(uint32_t group_hint, BlockNo prev) {
  uint64_t reserve = static_cast<uint64_t>(
      kFfsReserveFraction * sb_.ngroups * sb_.data_blocks_per_group());
  if (free_data_blocks_ <= reserve) {
    return NoSpaceError("ffs: file system is above the 90% capacity limit");
  }
  // Prefer the block right after the file's previous block (contiguity,
  // FFS's rotational layout idealized), then anywhere in the hinted group,
  // then other groups.
  if (prev != kNilBlock) {
    uint32_t g = GroupOfBlock(prev);
    uint64_t within = prev - sb_.DataBase(g);
    if (within + 1 < sb_.data_blocks_per_group() &&
        !block_bitmaps_[g].Get(static_cast<uint32_t>(within + 1))) {
      block_bitmaps_[g].Set(static_cast<uint32_t>(within + 1));
      free_data_blocks_--;
      return prev + 1;
    }
    group_hint = g;
  }
  for (uint32_t n = 0; n < sb_.ngroups; n++) {
    uint32_t g = (group_hint + n) % sb_.ngroups;
    uint32_t idx = block_bitmaps_[g].FindFree();
    if (idx == UINT32_MAX) {
      continue;
    }
    block_bitmaps_[g].Set(idx);
    free_data_blocks_--;
    return sb_.DataBase(g) + idx;
  }
  return NoSpaceError("ffs: no free blocks");
}

void FfsFileSystem::FreeBlock(BlockNo block) {
  uint32_t g = GroupOfBlock(block);
  uint64_t within = block - sb_.DataBase(g);
  if (within < sb_.data_blocks_per_group() &&
      block_bitmaps_[g].Get(static_cast<uint32_t>(within))) {
    block_bitmaps_[g].Clear(static_cast<uint32_t>(within));
    free_data_blocks_++;
  }
}

Status FfsFileSystem::WriteBitmapsSync() {
  std::vector<uint8_t> block(sb_.block_size);
  for (uint32_t g = 0; g < sb_.ngroups; g++) {
    inode_bitmaps_[g].CopyTo(block);
    LFS_RETURN_IF_ERROR(device_->WriteBlock(sb_.InodeBitmapBlock(g), block));
    block_bitmaps_[g].CopyTo(block);
    LFS_RETURN_IF_ERROR(device_->WriteBlock(sb_.BlockBitmapBlock(g), block));
    stats_.metadata_writes += 2;
  }
  return OkStatus();
}

// --- inode I/O ---------------------------------------------------------------------

Result<std::vector<uint8_t>*> FfsFileSystem::InodeTableBlockCached(uint64_t block) {
  auto it = itable_cache_.find(block);
  if (it != itable_cache_.end()) {
    return &it->second;
  }
  std::vector<uint8_t> data(sb_.block_size);
  LFS_RETURN_IF_ERROR(device_->ReadBlock(block, data));
  auto [pos, inserted] = itable_cache_.emplace(block, std::move(data));
  (void)inserted;
  return &pos->second;
}

Status FfsFileSystem::WriteInodeSync(const FfsInode& inode, int times) {
  uint64_t block = sb_.InodeBlockOf(inode.ino);
  uint32_t slot = sb_.InodeSlotOf(inode.ino);
  LFS_ASSIGN_OR_RETURN(std::vector<uint8_t>* cached, InodeTableBlockCached(block));
  inode.EncodeTo(std::span<uint8_t>(*cached).subspan(size_t{slot} * kFfsInodeSize,
                                                     kFfsInodeSize));
  // Synchronous, possibly repeated (new-file inodes are written twice).
  for (int i = 0; i < times; i++) {
    LFS_RETURN_IF_ERROR(device_->WriteBlock(block, *cached));
    stats_.metadata_writes++;
  }
  return OkStatus();
}

Result<FfsInode> FfsFileSystem::ReadInode(InodeNum ino) {
  if (ino == kNilInode || ino > sb_.max_inodes()) {
    return NotFoundError("ffs: inode number out of range");
  }
  uint32_t g = GroupOfInode(ino);
  if (!inode_bitmaps_[g].Get((ino - 1) % sb_.inodes_per_group)) {
    return NotFoundError("ffs: inode " + std::to_string(ino) + " not allocated");
  }
  uint64_t block = sb_.InodeBlockOf(ino);
  uint32_t slot = sb_.InodeSlotOf(ino);
  LFS_ASSIGN_OR_RETURN(std::vector<uint8_t>* cached, InodeTableBlockCached(block));
  return FfsInode::DecodeFrom(std::span<const uint8_t>(*cached).subspan(
      size_t{slot} * kFfsInodeSize, kFfsInodeSize));
}

// --- file maps -----------------------------------------------------------------------

Result<FfsFileSystem::FileMap*> FfsFileSystem::GetFileMap(InodeNum ino) {
  auto it = files_.find(ino);
  if (it != files_.end()) {
    return &it->second;
  }
  LFS_ASSIGN_OR_RETURN(FfsInode inode, ReadInode(ino));
  FileMap fm;
  fm.inode = inode;
  const uint32_t bs = sb_.block_size;
  uint64_t nblocks = (inode.size + bs - 1) / bs;
  fm.blocks.assign(nblocks, kNilBlock);
  for (uint64_t i = 0; i < std::min<uint64_t>(kFfsNumDirect, nblocks); i++) {
    fm.blocks[i] = inode.direct[i];
  }
  if (nblocks > kFfsNumDirect) {
    const uint32_t ppb = sb_.pointers_per_block();
    uint64_t ind_count = (nblocks - kFfsNumDirect + ppb - 1) / ppb;
    fm.ind_addrs.assign(ind_count, kNilBlock);
    fm.ind_addrs[0] = inode.single_indirect;
    std::vector<uint8_t> block(bs);
    if (ind_count > 1) {
      fm.dind_addr = inode.double_indirect;
      if (fm.dind_addr != kNilBlock) {
        LFS_RETURN_IF_ERROR(device_->ReadBlock(fm.dind_addr, block));
        Decoder dec(block);
        for (uint64_t j = 1; j < ind_count; j++) {
          fm.ind_addrs[j] = dec.GetU64();
        }
      }
    }
    for (uint64_t i = 0; i < ind_count; i++) {
      if (fm.ind_addrs[i] == kNilBlock) {
        continue;
      }
      LFS_RETURN_IF_ERROR(device_->ReadBlock(fm.ind_addrs[i], block));
      Decoder dec(block);
      for (uint32_t j = 0; j < ppb; j++) {
        uint64_t fbn = kFfsNumDirect + i * ppb + j;
        BlockNo addr = dec.GetU64();
        if (fbn < nblocks) {
          fm.blocks[fbn] = addr;
        }
      }
    }
  }
  auto [pos, inserted] = files_.emplace(ino, std::move(fm));
  (void)inserted;
  return &pos->second;
}

void FfsFileSystem::MarkPointersDirty(FileMap* fm, uint64_t fbn) {
  fm->pointers_dirty = true;
  if (fbn >= kFfsNumDirect) {
    fm->dirty_ind.insert(
        static_cast<uint32_t>((fbn - kFfsNumDirect) / sb_.pointers_per_block()));
  }
}

Status FfsFileSystem::FlushAllPointers() {
  for (auto& [ino, fm] : files_) {
    if (fm.pointers_dirty) {
      LFS_RETURN_IF_ERROR(FlushPointers(&fm));
    }
  }
  data_blocks_since_pointer_flush_ = 0;
  return OkStatus();
}

Status FfsFileSystem::FlushPointers(FileMap* fm) {
  const uint32_t bs = sb_.block_size;
  const uint32_t ppb = sb_.pointers_per_block();
  uint64_t nblocks = fm->blocks.size();
  uint32_t group = GroupOfInode(fm->inode.ino);

  // Write back the indirect blocks whose pointers changed; allocate on
  // demand. Indirect blocks live at stable addresses, so these are in-place
  // updates — exactly the metadata traffic FFS pays.
  if (nblocks > kFfsNumDirect) {
    uint64_t ind_count = (nblocks - kFfsNumDirect + ppb - 1) / ppb;
    if (fm->ind_addrs.size() < ind_count) {
      fm->ind_addrs.resize(ind_count, kNilBlock);
    }
    for (uint32_t i : fm->dirty_ind) {
      if (i >= ind_count) {
        continue;
      }
      if (fm->ind_addrs[i] == kNilBlock) {
        LFS_ASSIGN_OR_RETURN(fm->ind_addrs[i], AllocBlock(group, kNilBlock));
      }
      std::vector<uint8_t> block;
      block.reserve(bs);
      Encoder enc(&block);
      for (uint32_t j = 0; j < ppb; j++) {
        uint64_t fbn = kFfsNumDirect + uint64_t{i} * ppb + j;
        enc.PutU64(fbn < nblocks ? fm->blocks[fbn] : kNilBlock);
      }
      LFS_RETURN_IF_ERROR(device_->WriteBlock(fm->ind_addrs[i], block));
      stats_.metadata_writes++;
    }
    if (ind_count > 1) {
      if (fm->dind_addr == kNilBlock) {
        LFS_ASSIGN_OR_RETURN(fm->dind_addr, AllocBlock(group, kNilBlock));
      }
      std::vector<uint8_t> block;
      block.reserve(bs);
      Encoder enc(&block);
      for (uint32_t j = 0; j < ppb; j++) {
        uint64_t idx = uint64_t{j} + 1;
        enc.PutU64(idx < fm->ind_addrs.size() ? fm->ind_addrs[idx] : kNilBlock);
      }
      LFS_RETURN_IF_ERROR(device_->WriteBlock(fm->dind_addr, block));
      stats_.metadata_writes++;
    }
  }
  for (uint32_t i = 0; i < kFfsNumDirect; i++) {
    fm->inode.direct[i] = i < fm->blocks.size() ? fm->blocks[i] : kNilBlock;
  }
  fm->inode.single_indirect = fm->ind_addrs.empty() ? kNilBlock : fm->ind_addrs[0];
  fm->inode.double_indirect = fm->dind_addr;
  fm->dirty_ind.clear();
  fm->pointers_dirty = false;
  return WriteInodeSync(fm->inode);
}

Status FfsFileSystem::GrowFile(FileMap* fm, uint64_t new_block_count) {
  if (new_block_count > fm->blocks.size()) {
    fm->blocks.resize(new_block_count, kNilBlock);
  }
  return OkStatus();
}

Status FfsFileSystem::ShrinkFile(FileMap* fm, uint64_t new_block_count) {
  for (uint64_t fbn = new_block_count; fbn < fm->blocks.size(); fbn++) {
    if (fm->blocks[fbn] != kNilBlock) {
      FreeBlock(fm->blocks[fbn]);
    }
  }
  fm->blocks.resize(new_block_count);
  const uint32_t ppb = sb_.pointers_per_block();
  uint64_t new_ind =
      new_block_count > kFfsNumDirect ? (new_block_count - kFfsNumDirect + ppb - 1) / ppb : 0;
  for (uint64_t i = new_ind; i < fm->ind_addrs.size(); i++) {
    if (fm->ind_addrs[i] != kNilBlock) {
      FreeBlock(fm->ind_addrs[i]);
    }
  }
  fm->ind_addrs.resize(new_ind, kNilBlock);
  if (new_ind <= 1 && fm->dind_addr != kNilBlock) {
    FreeBlock(fm->dind_addr);
    fm->dind_addr = kNilBlock;
  }
  if (new_ind > 0) {
    fm->dirty_ind.insert(static_cast<uint32_t>(new_ind - 1));  // boundary rewrite
  }
  fm->pointers_dirty = true;
  return OkStatus();
}

// --- data I/O ----------------------------------------------------------------------

Status FfsFileSystem::WriteAt(InodeNum ino, uint64_t offset, std::span<const uint8_t> data) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kWrite, device_, &clock_, ino);
  if (data.empty()) {
    return OkStatus();
  }
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError("cannot write directly to a directory");
  }
  const uint32_t bs = sb_.block_size;
  uint64_t end = offset + data.size();
  LFS_RETURN_IF_ERROR(GrowFile(fm, std::max<uint64_t>(fm->blocks.size(),
                                                      (end + bs - 1) / bs)));
  uint32_t group = GroupOfInode(ino);
  uint64_t pos = offset;
  size_t src = 0;
  BlockNo prev = kNilBlock;
  while (pos < end) {
    uint64_t fbn = pos / bs;
    uint32_t in_block = static_cast<uint32_t>(pos % bs);
    uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(bs - in_block, end - pos));
    std::vector<uint8_t> block(bs, 0);
    if (chunk != bs && fbn < fm->blocks.size() && fm->blocks[fbn] != kNilBlock) {
      LFS_RETURN_IF_ERROR(device_->ReadBlock(fm->blocks[fbn], block));
    }
    std::memcpy(block.data() + in_block, data.data() + src, chunk);
    if (fm->blocks[fbn] == kNilBlock) {
      BlockNo hint = prev != kNilBlock ? prev
                     : fbn > 0 && fm->blocks[fbn - 1] != kNilBlock ? fm->blocks[fbn - 1]
                                                                   : kNilBlock;
      LFS_ASSIGN_OR_RETURN(fm->blocks[fbn], AllocBlock(group, hint));
      MarkPointersDirty(fm, fbn);
    }
    // One individual disk operation per block (pre-4.1.1 SunOS behaviour the
    // paper measured; Figure 9's caption).
    LFS_RETURN_IF_ERROR(device_->WriteBlock(fm->blocks[fbn], block));
    stats_.data_writes++;
    stats_.data_bytes_written += bs;
    prev = fm->blocks[fbn];
    data_blocks_since_pointer_flush_++;
    pos += chunk;
    src += chunk;
  }
  if (fm->inode.size < end) {
    fm->inode.size = end;
    fm->pointers_dirty = true;
  }
  fm->inode.mtime = clock_.Tick();
  fm->pointers_dirty = true;
  // Inode and indirect updates for the DATA path are asynchronous in SunOS
  // (the update daemon writes them back periodically); only namespace
  // operations write metadata synchronously.
  if (data_blocks_since_pointer_flush_ >= 128) {
    return FlushAllPointers();
  }
  return OkStatus();
}

Result<uint64_t> FfsFileSystem::ReadAt(InodeNum ino, uint64_t offset, std::span<uint8_t> out) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kRead, device_, &clock_, ino);
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (offset >= fm->inode.size || out.empty()) {
    return uint64_t{0};
  }
  const uint32_t bs = sb_.block_size;
  uint64_t want = std::min<uint64_t>(out.size(), fm->inode.size - offset);
  uint64_t done = 0;
  while (done < want) {
    uint64_t pos = offset + done;
    uint64_t fbn = pos / bs;
    uint32_t in_block = static_cast<uint32_t>(pos % bs);
    uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(bs - in_block, want - done));
    if (in_block == 0 && chunk == bs && fm->blocks[fbn] != kNilBlock) {
      // Coalesce contiguous allocations into one sequential read.
      uint64_t run = 1;
      while (done + run * bs + bs <= want && fbn + run < fm->blocks.size() &&
             fm->blocks[fbn + run] == fm->blocks[fbn] + run) {
        run++;
      }
      LFS_RETURN_IF_ERROR(device_->Read(fm->blocks[fbn], run, out.subspan(done, run * bs)));
      done += run * bs;
      continue;
    }
    std::vector<uint8_t> block(bs, 0);
    if (fbn < fm->blocks.size() && fm->blocks[fbn] != kNilBlock) {
      LFS_RETURN_IF_ERROR(device_->ReadBlock(fm->blocks[fbn], block));
    }
    std::memcpy(out.data() + done, block.data() + in_block, chunk);
    done += chunk;
  }
  return want;
}

Status FfsFileSystem::Truncate(InodeNum ino, uint64_t new_size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError("cannot truncate a directory");
  }
  const uint32_t bs = sb_.block_size;
  if (new_size < fm->inode.size) {
    LFS_RETURN_IF_ERROR(ShrinkFile(fm, (new_size + bs - 1) / bs));
    if (new_size % bs != 0 && fm->blocks[new_size / bs] != kNilBlock) {
      std::vector<uint8_t> block(bs);
      LFS_RETURN_IF_ERROR(device_->ReadBlock(fm->blocks[new_size / bs], block));
      std::memset(block.data() + new_size % bs, 0, bs - new_size % bs);
      LFS_RETURN_IF_ERROR(device_->WriteBlock(fm->blocks[new_size / bs], block));
      stats_.data_writes++;
    }
  } else {
    LFS_RETURN_IF_ERROR(GrowFile(fm, (new_size + bs - 1) / bs));
  }
  fm->inode.size = new_size;
  fm->inode.mtime = clock_.Tick();
  return FlushPointers(fm);
}

Status FfsFileSystem::Sync() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kSync, device_, &clock_);
  LFS_RETURN_IF_ERROR(FlushAllPointers());
  return WriteBitmapsSync();
}

Status FfsFileSystem::Unmount() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  LFS_RETURN_IF_ERROR(FlushAllPointers());
  LFS_RETURN_IF_ERROR(WriteBitmapsSync());
  files_.clear();
  dirs_.clear();
  itable_cache_.clear();
  return OkStatus();
}

Result<FileStat> FfsFileSystem::Stat(InodeNum ino) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  FileStat st;
  st.ino = ino;
  st.type = fm->inode.type;
  st.size = fm->inode.size;
  st.nlink = fm->inode.nlink;
  st.mtime = fm->inode.mtime;
  return st;
}

// --- directories ----------------------------------------------------------------------

Result<FfsFileSystem::DirCache*> FfsFileSystem::GetDirCache(InodeNum dir_ino) {
  auto it = dirs_.find(dir_ino);
  if (it != dirs_.end()) {
    return &it->second;
  }
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(dir_ino));
  if (fm->inode.type != FileType::kDirectory) {
    return NotADirectoryError("ffs: inode " + std::to_string(dir_ino) +
                              " is not a directory");
  }
  DirCache cache;
  const uint32_t bs = sb_.block_size;
  std::vector<uint8_t> block(bs);
  for (uint64_t b = 0; b < fm->blocks.size(); b++) {
    if (fm->blocks[b] == kNilBlock) {
      cache.blocks.emplace_back();
      cache.used_bytes.push_back(0);
      continue;
    }
    LFS_RETURN_IF_ERROR(device_->ReadBlock(fm->blocks[b], block));
    LFS_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, FfsDecodeDirBlock(block));
    size_t used = 0;
    for (const DirEntry& e : entries) {
      used += FfsDirEntrySize(e);
    }
    cache.blocks.push_back(std::move(entries));
    cache.used_bytes.push_back(used);
  }
  auto [pos, inserted] = dirs_.emplace(dir_ino, std::move(cache));
  (void)inserted;
  return &pos->second;
}

Result<InodeNum> FfsFileSystem::LookupInDir(InodeNum dir_ino, std::string_view name) {
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(dir_ino));
  for (const auto& entries : cache->blocks) {
    for (const DirEntry& e : entries) {
      if (e.name == name) {
        return e.ino;
      }
    }
  }
  return NotFoundError("ffs: no entry '" + std::string(name) + "'");
}

Status FfsFileSystem::WriteDirBlockSync(InodeNum dir_ino, uint64_t fbn) {
  DirCache& cache = dirs_.at(dir_ino);
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(dir_ino));
  LFS_RETURN_IF_ERROR(GrowFile(fm, cache.blocks.size()));
  if (fm->blocks[fbn] == kNilBlock) {
    LFS_ASSIGN_OR_RETURN(fm->blocks[fbn], AllocBlock(GroupOfInode(dir_ino), kNilBlock));
  }
  std::vector<uint8_t> block = FfsEncodeDirBlock(cache.blocks[fbn], sb_.block_size);
  // Directory data is metadata for crash purposes: synchronous write.
  LFS_RETURN_IF_ERROR(device_->WriteBlock(fm->blocks[fbn], block));
  stats_.metadata_writes++;
  fm->inode.size = std::max<uint64_t>(fm->inode.size,
                                      uint64_t{cache.blocks.size()} * sb_.block_size);
  fm->inode.mtime = clock_.Tick();
  // ... followed by the directory's inode, also synchronous.
  return FlushPointers(fm);
}

Status FfsFileSystem::AddDirEntry(InodeNum dir_ino, const DirEntry& entry) {
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(dir_ino));
  size_t need = FfsDirEntrySize(entry);
  size_t capacity = sb_.block_size - 4;
  for (size_t b = 0; b < cache->blocks.size(); b++) {
    if (cache->used_bytes[b] + need <= capacity) {
      cache->blocks[b].push_back(entry);
      cache->used_bytes[b] += need;
      return WriteDirBlockSync(dir_ino, b);
    }
  }
  cache->blocks.push_back({entry});
  cache->used_bytes.push_back(need);
  return WriteDirBlockSync(dir_ino, cache->blocks.size() - 1);
}

Status FfsFileSystem::RemoveDirEntry(InodeNum dir_ino, std::string_view name) {
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(dir_ino));
  for (size_t b = 0; b < cache->blocks.size(); b++) {
    auto& entries = cache->blocks[b];
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->name == name) {
        cache->used_bytes[b] -= FfsDirEntrySize(*it);
        entries.erase(it);
        return WriteDirBlockSync(dir_ino, b);
      }
    }
  }
  return NotFoundError("ffs: no entry '" + std::string(name) + "' to remove");
}

Result<InodeNum> FfsFileSystem::ResolveDir(std::string_view path) {
  LFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  InodeNum ino = kRootInode;
  for (const std::string& comp : parts) {
    LFS_ASSIGN_OR_RETURN(ino, LookupInDir(ino, comp));
  }
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type != FileType::kDirectory) {
    return NotADirectoryError(std::string(path));
  }
  return ino;
}

Result<std::pair<InodeNum, std::string>> FfsFileSystem::ResolveParent(std::string_view path) {
  LFS_ASSIGN_OR_RETURN(auto split, SplitParent(path));
  LFS_ASSIGN_OR_RETURN(InodeNum parent, ResolveDir(split.first));
  return std::make_pair(parent, split.second);
}

Result<InodeNum> FfsFileSystem::Lookup(std::string_view path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kLookup, device_, &clock_);
  LFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  InodeNum ino = kRootInode;
  for (const std::string& comp : parts) {
    LFS_ASSIGN_OR_RETURN(ino, LookupInDir(ino, comp));
  }
  return ino;
}

Result<InodeNum> FfsFileSystem::Create(std::string_view path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kCreate, device_, &clock_);
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  auto [dir_ino, name] = parent;
  if (LookupInDir(dir_ino, name).ok()) {
    return AlreadyExistsError(std::string(path));
  }
  LFS_ASSIGN_OR_RETURN(InodeNum ino, AllocInode(GroupOfInode(dir_ino)));
  FileMap fm;
  fm.inode.ino = ino;
  fm.inode.type = FileType::kRegular;
  fm.inode.nlink = 1;
  fm.inode.mtime = clock_.Tick();
  // The new inode is written twice (crash-recovery hardening the paper
  // counts among FFS's five small I/Os per create).
  LFS_RETURN_IF_ERROR(WriteInodeSync(fm.inode, /*times=*/2));
  files_[ino] = std::move(fm);
  LFS_RETURN_IF_ERROR(AddDirEntry(dir_ino, DirEntry{name, ino, FileType::kRegular}));
  return ino;
}

Status FfsFileSystem::Mkdir(std::string_view path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kMkdir, device_, &clock_);
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  auto [dir_ino, name] = parent;
  if (LookupInDir(dir_ino, name).ok()) {
    return AlreadyExistsError(std::string(path));
  }
  // Directories rotate across block groups to spread load (the FFS policy
  // that physically separates files in different directories).
  LFS_ASSIGN_OR_RETURN(InodeNum ino, AllocInode(next_dir_group_));
  next_dir_group_ = (next_dir_group_ + 1) % sb_.ngroups;
  FileMap fm;
  fm.inode.ino = ino;
  fm.inode.type = FileType::kDirectory;
  fm.inode.nlink = 1;
  fm.inode.mtime = clock_.Tick();
  LFS_RETURN_IF_ERROR(WriteInodeSync(fm.inode, /*times=*/2));
  files_[ino] = std::move(fm);
  dirs_[ino] = DirCache{};
  return AddDirEntry(dir_ino, DirEntry{name, ino, FileType::kDirectory});
}

Status FfsFileSystem::DeleteFileContents(InodeNum ino) {
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  LFS_RETURN_IF_ERROR(ShrinkFile(fm, 0));
  FfsInode dead;
  dead.ino = ino;  // type kNone marks the slot free for fsck
  LFS_RETURN_IF_ERROR(WriteInodeSync(dead));
  FreeInode(ino);
  files_.erase(ino);
  dirs_.erase(ino);
  return OkStatus();
}

Status FfsFileSystem::Unlink(std::string_view path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kUnlink, device_, &clock_);
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  auto [dir_ino, name] = parent;
  LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupInDir(dir_ino, name));
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError(std::string(path) + " (use Rmdir)");
  }
  LFS_RETURN_IF_ERROR(RemoveDirEntry(dir_ino, name));
  fm->inode.nlink--;
  if (fm->inode.nlink == 0) {
    return DeleteFileContents(ino);
  }
  fm->inode.mtime = clock_.Tick();
  return WriteInodeSync(fm->inode);
}

Status FfsFileSystem::Rmdir(std::string_view path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  auto [dir_ino, name] = parent;
  LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupInDir(dir_ino, name));
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type != FileType::kDirectory) {
    return NotADirectoryError(std::string(path));
  }
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(ino));
  for (const auto& entries : cache->blocks) {
    if (!entries.empty()) {
      return NotEmptyError(std::string(path));
    }
  }
  LFS_RETURN_IF_ERROR(RemoveDirEntry(dir_ino, name));
  // Free the directory's blocks and inode.
  LFS_ASSIGN_OR_RETURN(FileMap * dfm, GetFileMap(ino));
  LFS_RETURN_IF_ERROR(ShrinkFile(dfm, 0));
  FfsInode dead;
  dead.ino = ino;
  LFS_RETURN_IF_ERROR(WriteInodeSync(dead));
  FreeInode(ino);
  files_.erase(ino);
  dirs_.erase(ino);
  return OkStatus();
}

Status FfsFileSystem::Link(std::string_view existing, std::string_view link_path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  LFS_ASSIGN_OR_RETURN(InodeNum ino, Lookup(existing));
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError("hard links to directories are not allowed");
  }
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(link_path));
  auto [dir_ino, name] = parent;
  if (LookupInDir(dir_ino, name).ok()) {
    return AlreadyExistsError(std::string(link_path));
  }
  LFS_RETURN_IF_ERROR(AddDirEntry(dir_ino, DirEntry{name, ino, FileType::kRegular}));
  fm->inode.nlink++;
  fm->inode.mtime = clock_.Tick();
  return WriteInodeSync(fm->inode);
}

Status FfsFileSystem::Rename(std::string_view from, std::string_view to) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (from == to) {
    return OkStatus();
  }
  if (to.size() > from.size() && to.substr(0, from.size()) == from &&
      to[from.size()] == '/') {
    return InvalidArgumentError("cannot move a directory into itself");
  }
  LFS_ASSIGN_OR_RETURN(auto src, ResolveParent(from));
  auto [from_dir, from_name] = src;
  LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupInDir(from_dir, from_name));
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  FileType type = fm->inode.type;
  LFS_ASSIGN_OR_RETURN(auto dst, ResolveParent(to));
  auto [to_dir, to_name] = dst;

  Result<InodeNum> existing = LookupInDir(to_dir, to_name);
  if (existing.ok()) {
    LFS_ASSIGN_OR_RETURN(FileMap * rfm, GetFileMap(existing.value()));
    if (rfm->inode.type == FileType::kDirectory) {
      return IsADirectoryError("rename target is a directory");
    }
    LFS_RETURN_IF_ERROR(RemoveDirEntry(to_dir, to_name));
    rfm->inode.nlink--;
    if (rfm->inode.nlink == 0) {
      LFS_RETURN_IF_ERROR(DeleteFileContents(existing.value()));
    } else {
      LFS_RETURN_IF_ERROR(WriteInodeSync(rfm->inode));
    }
  }
  LFS_RETURN_IF_ERROR(RemoveDirEntry(from_dir, from_name));
  LFS_RETURN_IF_ERROR(AddDirEntry(to_dir, DirEntry{to_name, ino, type}));
  return OkStatus();
}

Result<std::vector<DirEntry>> FfsFileSystem::ReadDir(std::string_view path) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  LFS_ASSIGN_OR_RETURN(InodeNum ino, ResolveDir(path));
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(ino));
  std::vector<DirEntry> out;
  for (const auto& entries : cache->blocks) {
    out.insert(out.end(), entries.begin(), entries.end());
  }
  std::sort(out.begin(), out.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return out;
}

// --- fsck ---------------------------------------------------------------------------

Result<FsckReport> FfsFileSystem::Fsck() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  FsckReport report;
  const uint32_t bs = sb_.block_size;
  files_.clear();
  dirs_.clear();
  itable_cache_.clear();

  // Phase 1: scan EVERY inode table block on the disk (this is the cost the
  // paper contrasts with LFS recovery: the filesystem cannot know where the
  // last changes were).
  std::vector<Bitmap> inode_seen;
  std::vector<Bitmap> blocks_seen;
  for (uint32_t g = 0; g < sb_.ngroups; g++) {
    inode_seen.emplace_back(sb_.inodes_per_group);
    blocks_seen.emplace_back(sb_.data_blocks_per_group());
  }
  std::map<InodeNum, FfsInode> alive;
  std::vector<uint8_t> block(bs);
  for (uint32_t g = 0; g < sb_.ngroups; g++) {
    for (uint32_t b = 0; b < sb_.inode_table_blocks; b++) {
      LFS_RETURN_IF_ERROR(device_->ReadBlock(sb_.InodeTableBlock(g) + b, block));
      for (uint32_t s = 0; s < sb_.inodes_per_block(); s++) {
        report.inodes_scanned++;
        Result<FfsInode> ino = FfsInode::DecodeFrom(std::span<const uint8_t>(block).subspan(
            size_t{s} * kFfsInodeSize, kFfsInodeSize));
        if (!ino.ok() || ino->type == FileType::kNone) {
          continue;
        }
        InodeNum num = static_cast<InodeNum>(
            g * sb_.inodes_per_group + b * sb_.inodes_per_block() + s + 1);
        inode_seen[g].Set((num - 1) % sb_.inodes_per_group);
        alive[num] = std::move(ino).value();
      }
    }
  }

  // Phase 2: mark all referenced blocks by walking every live file's block
  // tree, and recount directory references by walking every directory.
  std::map<InodeNum, uint32_t> nlink_count;
  for (auto& [num, inode] : alive) {
    uint32_t bit = (num - 1) % sb_.inodes_per_group;
    if (!inode_bitmaps_[GroupOfInode(num)].Get(bit)) {
      report.fixes++;  // allocated inode missing from the on-disk bitmap
    }
    inode_bitmaps_[GroupOfInode(num)].Set(bit);
    Result<FileMap*> fm = GetFileMap(num);
    if (!fm.ok()) {
      continue;
    }
    auto mark = [&](BlockNo addr) {
      if (addr == kNilBlock) {
        return;
      }
      uint32_t g = GroupOfBlock(addr);
      uint64_t within = addr - sb_.DataBase(g);
      if (g < sb_.ngroups && within < sb_.data_blocks_per_group()) {
        blocks_seen[g].Set(static_cast<uint32_t>(within));
        report.blocks_referenced++;
      }
    };
    for (BlockNo a : (*fm)->blocks) {
      mark(a);
    }
    for (BlockNo a : (*fm)->ind_addrs) {
      mark(a);
    }
    mark((*fm)->dind_addr);
    if (inode.type == FileType::kDirectory) {
      report.directories_walked++;
      Result<DirCache*> cache = GetDirCache(num);
      if (cache.ok()) {
        for (const auto& entries : (*cache)->blocks) {
          for (const DirEntry& e : entries) {
            nlink_count[e.ino]++;
          }
        }
      }
    }
  }
  nlink_count[kRootInode]++;  // the root is its own reference

  // Phase 3: repair — fix link counts, free orphans, rebuild bitmaps.
  for (auto& [num, inode] : alive) {
    uint32_t expected = nlink_count.count(num) ? nlink_count[num] : 0;
    if (expected == 0) {
      FfsInode dead;
      dead.ino = num;
      LFS_RETURN_IF_ERROR(WriteInodeSync(dead));
      inode_bitmaps_[GroupOfInode(num)].Clear((num - 1) % sb_.inodes_per_group);
      report.fixes++;
      continue;
    }
    if (inode.nlink != expected) {
      inode.nlink = static_cast<uint16_t>(expected);
      LFS_RETURN_IF_ERROR(WriteInodeSync(inode));
      report.fixes++;
    }
  }
  free_data_blocks_ = 0;
  for (uint32_t g = 0; g < sb_.ngroups; g++) {
    for (uint32_t i = 0; i < sb_.data_blocks_per_group(); i++) {
      bool want = blocks_seen[g].Get(i);
      if (block_bitmaps_[g].Get(i) != want) {
        report.fixes++;
      }
      if (want) {
        block_bitmaps_[g].Set(i);
      } else {
        block_bitmaps_[g].Clear(i);
      }
    }
    free_data_blocks_ += sb_.data_blocks_per_group() - block_bitmaps_[g].CountSet();
  }
  LFS_RETURN_IF_ERROR(WriteBitmapsSync());
  files_.clear();
  dirs_.clear();
  return report;
}

}  // namespace lfs::ffs
