// On-disk format of the baseline Unix-FFS-style filesystem (McKusick et al.,
// "A Fast File System for UNIX" — the paper's comparison system).
//
// Layout:
//   block 0                          superblock
//   per block group g (cylinder-group analogue):
//     inode bitmap | block bitmap | inode table | data blocks
//
// The behaviours the LFS paper attributes to FFS are reproduced faithfully:
//   - inodes live at fixed disk addresses computed from the inode number;
//   - metadata (inodes, directory blocks) is written SYNCHRONOUSLY, one
//     small seek-paying I/O at a time; new-file inodes are written twice
//     (Figure 1's caption: "...written twice to ease recovery from crashes");
//   - files are spread across block groups (directories round-robin into
//     groups; file data stays near its inode), giving logical locality at
//     the cost of inter-file seeks;
//   - 10% of capacity is reserved so the allocator keeps working well;
//   - crash recovery is an fsck-style full metadata scan.

#ifndef LFS_FFS_FFS_LAYOUT_H_
#define LFS_FFS_FFS_LAYOUT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/disk/block_device.h"
#include "src/fs/file_system.h"
#include "src/util/result.h"

namespace lfs::ffs {

inline constexpr uint32_t kFfsMagic = 0x46465331;  // "FFS1"
inline constexpr uint32_t kFfsInodeSize = 160;
inline constexpr uint32_t kFfsNumDirect = 12;
inline constexpr double kFfsReserveFraction = 0.10;  // the classic 90% limit

struct FfsSuperblock {
  uint32_t block_size = 0;
  uint64_t total_blocks = 0;
  uint32_t ngroups = 0;
  uint32_t blocks_per_group = 0;
  uint32_t inodes_per_group = 0;
  uint32_t inode_table_blocks = 0;  // per group
  uint32_t data_start = 0;          // first data block index within a group

  uint64_t GroupBase(uint32_t group) const {
    return 1 + uint64_t{group} * blocks_per_group;
  }
  uint64_t InodeBitmapBlock(uint32_t group) const { return GroupBase(group); }
  uint64_t BlockBitmapBlock(uint32_t group) const { return GroupBase(group) + 1; }
  uint64_t InodeTableBlock(uint32_t group) const { return GroupBase(group) + 2; }
  uint64_t DataBase(uint32_t group) const { return GroupBase(group) + data_start; }
  uint32_t data_blocks_per_group() const { return blocks_per_group - data_start; }
  uint32_t inodes_per_block() const { return block_size / kFfsInodeSize; }
  uint32_t max_inodes() const { return ngroups * inodes_per_group; }
  uint32_t pointers_per_block() const { return block_size / 8; }

  // Fixed disk location of an inode (the calculation Section 3.1 contrasts
  // with the LFS inode map).
  uint64_t InodeBlockOf(InodeNum ino) const {
    uint32_t idx = ino - 1;
    uint32_t group = idx / inodes_per_group;
    uint32_t within = idx % inodes_per_group;
    return InodeTableBlock(group) + within / inodes_per_block();
  }
  uint32_t InodeSlotOf(InodeNum ino) const {
    return ((ino - 1) % inodes_per_group) % inodes_per_block();
  }

  void EncodeTo(std::span<uint8_t> block) const;
  static Result<FfsSuperblock> DecodeFrom(std::span<const uint8_t> block);
  static Result<FfsSuperblock> Compute(uint32_t block_size, uint64_t total_blocks);
};

// Same field set as the LFS inode, serialized independently so the two
// filesystems share no on-disk code.
struct FfsInode {
  InodeNum ino = kNilInode;
  FileType type = FileType::kNone;
  uint16_t nlink = 0;
  uint64_t size = 0;
  uint64_t mtime = 0;
  BlockNo direct[kFfsNumDirect] = {};
  BlockNo single_indirect = kNilBlock;
  BlockNo double_indirect = kNilBlock;

  void EncodeTo(std::span<uint8_t> slot) const;
  static Result<FfsInode> DecodeFrom(std::span<const uint8_t> slot);
};

// Directory blocks: identical packed-entry format as the LFS (u32 count,
// then {ino, type, name}), re-implemented here for independence.
std::vector<uint8_t> FfsEncodeDirBlock(const std::vector<DirEntry>& entries,
                                       uint32_t block_size);
Result<std::vector<DirEntry>> FfsDecodeDirBlock(std::span<const uint8_t> block);
size_t FfsDirEntrySize(const DirEntry& e);

}  // namespace lfs::ffs

#endif  // LFS_FFS_FFS_LAYOUT_H_
