// FfsFileSystem: the baseline Unix-FFS-style filesystem the paper compares
// against (SunOS 4.0.3's filesystem). See ffs_layout.h for the behavioural
// contract. The important properties for the paper's experiments:
//
//   - every metadata update (inode, directory block) is one synchronous
//     small write at a fixed location — small seek-paying I/Os dominate
//     small-file workloads (<5% of disk bandwidth doing useful work);
//   - data blocks are written individually, block at a time (pre-McVoy
//     SunOS: "individual disk operations for each block");
//   - reads and sequential layout are good: logical locality.

#ifndef LFS_FFS_FFS_H_
#define LFS_FFS_FFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/disk/block_device.h"
#include "src/ffs/bitmap.h"
#include "src/ffs/ffs_layout.h"
#include "src/fs/clock.h"
#include "src/fs/file_system.h"
#include "src/obs/obs.h"

namespace lfs::ffs {

struct FfsStats {
  uint64_t metadata_writes = 0;  // synchronous inode/dir/bitmap writes
  uint64_t data_writes = 0;      // individual data block writes
  uint64_t data_bytes_written = 0;
};

struct FsckReport {
  uint64_t inodes_scanned = 0;
  uint64_t directories_walked = 0;
  uint64_t blocks_referenced = 0;
  uint64_t fixes = 0;  // nlink corrections, orphan frees, bitmap repairs
};

class FfsFileSystem : public FileSystem {
 public:
  static Result<std::unique_ptr<FfsFileSystem>> Mkfs(BlockDevice* device, uint32_t block_size);
  static Result<std::unique_ptr<FfsFileSystem>> Mount(BlockDevice* device);

  ~FfsFileSystem() override = default;
  FfsFileSystem(const FfsFileSystem&) = delete;
  FfsFileSystem& operator=(const FfsFileSystem&) = delete;

  // --- FileSystem interface ---------------------------------------------------

  Result<InodeNum> Create(std::string_view path) override;
  Status Mkdir(std::string_view path) override;
  Status Unlink(std::string_view path) override;
  Status Rmdir(std::string_view path) override;
  Status Link(std::string_view existing, std::string_view link_path) override;
  Status Rename(std::string_view from, std::string_view to) override;
  Result<InodeNum> Lookup(std::string_view path) override;
  Result<FileStat> Stat(InodeNum ino) override;
  Result<std::vector<DirEntry>> ReadDir(std::string_view path) override;
  Status WriteAt(InodeNum ino, uint64_t offset, std::span<const uint8_t> data) override;
  Result<uint64_t> ReadAt(InodeNum ino, uint64_t offset, std::span<uint8_t> out) override;
  Status Truncate(InodeNum ino, uint64_t new_size) override;
  Status Sync() override;

  // --- FFS-specific ---------------------------------------------------------------

  // Full-scan consistency check and repair (the recovery story the paper's
  // Section 4 contrasts with LFS roll-forward: "the system cannot determine
  // where the last changes were made, so it must scan all of the metadata").
  Result<FsckReport> Fsck();

  Status Unmount();

  const FfsSuperblock& superblock() const { return sb_; }
  const FfsStats& stats() const { return stats_; }
  const obs::FsObs& obs() const { return obs_; }
  obs::FsObs& mutable_obs() { return obs_; }
  LogicalClock& clock() { return clock_; }
  uint64_t free_data_blocks() const { return free_data_blocks_; }

 private:
  FfsFileSystem(BlockDevice* device, const FfsSuperblock& sb);

  struct FileMap {
    FfsInode inode;
    std::vector<BlockNo> blocks;
    std::vector<BlockNo> ind_addrs;  // [0] = single indirect root
    BlockNo dind_addr = kNilBlock;
    std::set<uint32_t> dirty_ind;    // indirect blocks needing write-back
    bool pointers_dirty = false;     // inode/indirects differ from disk
  };
  struct DirCache {
    std::vector<std::vector<DirEntry>> blocks;
    std::vector<size_t> used_bytes;
  };

  // Allocation (cylinder-group policies).
  Result<InodeNum> AllocInode(uint32_t group_hint);
  void FreeInode(InodeNum ino);
  Result<BlockNo> AllocBlock(uint32_t group_hint, BlockNo prev);
  void FreeBlock(BlockNo block);
  uint32_t GroupOfInode(InodeNum ino) const { return (ino - 1) / sb_.inodes_per_group; }
  uint32_t GroupOfBlock(BlockNo block) const {
    return static_cast<uint32_t>((block - 1) / sb_.blocks_per_group);
  }

  // Synchronous metadata I/O.
  Status WriteInodeSync(const FfsInode& inode, int times = 1);
  Result<FfsInode> ReadInode(InodeNum ino);
  Result<std::vector<uint8_t>*> InodeTableBlockCached(uint64_t block);

  // File maps and data I/O.
  Result<FileMap*> GetFileMap(InodeNum ino);
  Status FlushPointers(FileMap* fm);  // write dirty indirect blocks + inode
  // Data-path pointer updates are asynchronous (SunOS's update daemon):
  // they accumulate and are written back periodically or on Sync.
  void MarkPointersDirty(FileMap* fm, uint64_t fbn);
  Status FlushAllPointers();
  Status GrowFile(FileMap* fm, uint64_t new_block_count);
  Status ShrinkFile(FileMap* fm, uint64_t new_block_count);

  // Directories.
  Result<DirCache*> GetDirCache(InodeNum dir_ino);
  Result<InodeNum> LookupInDir(InodeNum dir_ino, std::string_view name);
  Status AddDirEntry(InodeNum dir_ino, const DirEntry& entry);
  Status RemoveDirEntry(InodeNum dir_ino, std::string_view name);
  Status WriteDirBlockSync(InodeNum dir_ino, uint64_t fbn);
  Result<InodeNum> ResolveDir(std::string_view path);
  Result<std::pair<InodeNum, std::string>> ResolveParent(std::string_view path);
  Status DeleteFileContents(InodeNum ino);
  Status WriteBitmapsSync();

  // Coarse serialization of the public interface, so the FFS baseline is
  // safe to drive from multi-threaded benchmarks (e.g. through a shared
  // CachedBlockDevice). FFS is the paper's comparison point, not the
  // contribution, so a single recursive mutex — reentrancy covers the
  // public-calls-public paths like Link -> Lookup — is deliberate; the LFS
  // front-end gets the real reader-writer regime.
  mutable std::recursive_mutex mu_;

  BlockDevice* device_;
  FfsSuperblock sb_;
  LogicalClock clock_;
  FfsStats stats_;
  mutable obs::FsObs obs_;

  std::vector<Bitmap> inode_bitmaps_;  // one per group
  std::vector<Bitmap> block_bitmaps_;  // one per group, data region only
  uint64_t free_data_blocks_ = 0;
  uint32_t next_dir_group_ = 0;  // round-robin directory placement

  std::map<InodeNum, FileMap> files_;
  std::map<InodeNum, DirCache> dirs_;
  uint64_t data_blocks_since_pointer_flush_ = 0;
  std::map<uint64_t, std::vector<uint8_t>> itable_cache_;  // inode table blocks
};

}  // namespace lfs::ffs

#endif  // LFS_FFS_FFS_H_
