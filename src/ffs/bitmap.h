// In-memory bitmap backed by one disk block per block group. FFS keeps
// bitmaps cached and writes them back on sync; fsck rebuilds them after a
// crash (which is exactly why fsck has to scan everything — Section 4).

#ifndef LFS_FFS_BITMAP_H_
#define LFS_FFS_BITMAP_H_

#include <cstdint>
#include <span>
#include <vector>

namespace lfs::ffs {

class Bitmap {
 public:
  explicit Bitmap(uint32_t nbits) : bits_((nbits + 7) / 8, 0), nbits_(nbits) {}

  bool Get(uint32_t i) const { return (bits_[i / 8] >> (i % 8)) & 1; }
  void Set(uint32_t i) { bits_[i / 8] |= uint8_t{1} << (i % 8); }
  void Clear(uint32_t i) { bits_[i / 8] &= static_cast<uint8_t>(~(uint8_t{1} << (i % 8))); }

  // First clear bit at or after `from` (wrapping), or UINT32_MAX if full.
  uint32_t FindFree(uint32_t from = 0) const;

  uint32_t CountSet() const;
  uint32_t size() const { return nbits_; }

  // Raw (de)serialization into a block-sized buffer.
  void CopyTo(std::span<uint8_t> out) const;
  void CopyFrom(std::span<const uint8_t> in);

 private:
  std::vector<uint8_t> bits_;
  uint32_t nbits_;
};

}  // namespace lfs::ffs

#endif  // LFS_FFS_BITMAP_H_
