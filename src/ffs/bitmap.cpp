#include "src/ffs/bitmap.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace lfs::ffs {

uint32_t Bitmap::FindFree(uint32_t from) const {
  if (nbits_ == 0) {
    return UINT32_MAX;
  }
  from %= nbits_;
  for (uint32_t n = 0; n < nbits_; n++) {
    uint32_t i = (from + n) % nbits_;
    if (!Get(i)) {
      return i;
    }
  }
  return UINT32_MAX;
}

uint32_t Bitmap::CountSet() const {
  uint32_t count = 0;
  for (uint32_t i = 0; i < nbits_; i++) {
    count += Get(i) ? 1 : 0;
  }
  return count;
}

void Bitmap::CopyTo(std::span<uint8_t> out) const {
  std::memset(out.data(), 0, out.size());
  std::memcpy(out.data(), bits_.data(), std::min(out.size(), bits_.size()));
}

void Bitmap::CopyFrom(std::span<const uint8_t> in) {
  std::memcpy(bits_.data(), in.data(), std::min(in.size(), bits_.size()));
}

}  // namespace lfs::ffs
