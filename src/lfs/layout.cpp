#include "src/lfs/layout.h"

#include <cstring>
#include <string>

#include "src/util/codec.h"
#include "src/util/crc32.h"

namespace lfs {

// --- superblock --------------------------------------------------------------

void Superblock::EncodeTo(std::span<uint8_t> block) const {
  std::vector<uint8_t> buf;
  Encoder enc(&buf);
  enc.PutU32(kSuperMagic);
  enc.PutU32(block_size);
  enc.PutU32(segment_blocks);
  enc.PutU32(nsegments);
  enc.PutU64(seg_start);
  enc.PutU32(cr_blocks);
  enc.PutU64(cr_base0);
  enc.PutU64(cr_base1);
  enc.PutU32(max_inodes);
  enc.PutU32(imap_chunks);
  enc.PutU32(usage_chunks);
  enc.PutU64(total_blocks);
  enc.PutU32(Crc32(buf));
  enc.PadTo(block.size());
  std::memcpy(block.data(), buf.data(), block.size());
}

Result<Superblock> Superblock::DecodeFrom(std::span<const uint8_t> block) {
  Decoder dec(block);
  if (dec.GetU32() != kSuperMagic) {
    return CorruptionError("superblock: bad magic");
  }
  Superblock sb;
  sb.block_size = dec.GetU32();
  sb.segment_blocks = dec.GetU32();
  sb.nsegments = dec.GetU32();
  sb.seg_start = dec.GetU64();
  sb.cr_blocks = dec.GetU32();
  sb.cr_base0 = dec.GetU64();
  sb.cr_base1 = dec.GetU64();
  sb.max_inodes = dec.GetU32();
  sb.imap_chunks = dec.GetU32();
  sb.usage_chunks = dec.GetU32();
  sb.total_blocks = dec.GetU64();
  uint32_t crc = dec.GetU32();
  if (!dec.ok()) {
    return CorruptionError("superblock: truncated");
  }
  if (crc != Crc32(block.subspan(0, dec.pos() - 4))) {
    return CorruptionError("superblock: bad CRC");
  }
  if (sb.block_size == 0 || sb.segment_blocks == 0 || sb.nsegments == 0) {
    return CorruptionError("superblock: zero geometry");
  }
  return sb;
}

Result<Superblock> Superblock::Compute(uint32_t block_size, uint64_t total_blocks,
                                       uint32_t segment_blocks, uint32_t max_inodes) {
  if (block_size < 512 || (block_size & (block_size - 1)) != 0) {
    return InvalidArgumentError("block_size must be a power of two >= 512");
  }
  if (segment_blocks < 8) {
    return InvalidArgumentError("segment_blocks must be >= 8");
  }
  Superblock sb;
  sb.block_size = block_size;
  sb.segment_blocks = segment_blocks;
  sb.max_inodes = max_inodes;
  sb.total_blocks = total_blocks;
  sb.imap_chunks =
      (max_inodes + sb.imap_entries_per_chunk() - 1) / sb.imap_entries_per_chunk();
  // Usage chunk count depends on nsegments which depends on the fixed-area
  // size; compute with a generous first estimate then settle.
  uint64_t est_segments = total_blocks / segment_blocks;
  sb.usage_chunks = static_cast<uint32_t>(
      (est_segments + sb.usage_entries_per_chunk() - 1) / sb.usage_entries_per_chunk());
  sb.cr_blocks = Checkpoint::RegionBlocks(block_size, sb.imap_chunks, sb.usage_chunks);
  sb.cr_base0 = 1;
  sb.cr_base1 = 1 + sb.cr_blocks;
  sb.seg_start = 1 + 2ull * sb.cr_blocks;
  // The final device block is reserved for the backup superblock copy and
  // never belongs to a segment.
  if (total_blocks <= sb.seg_start + 1) {
    return InvalidArgumentError("device too small for fixed area");
  }
  sb.nsegments =
      static_cast<uint32_t>((total_blocks - sb.seg_start - 1) / segment_blocks);
  if (sb.nsegments < 8) {
    return InvalidArgumentError("device too small: fewer than 8 segments");
  }
  sb.usage_chunks =
      (sb.nsegments + sb.usage_entries_per_chunk() - 1) / sb.usage_entries_per_chunk();
  return sb;
}

// --- inode -------------------------------------------------------------------

void Inode::EncodeTo(std::span<uint8_t> slot) const {
  std::vector<uint8_t> buf;
  buf.reserve(kInodeSlotSize);
  Encoder enc(&buf);
  enc.PutU32(ino);
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutU16(nlink);
  enc.PutU32(version);
  enc.PutU64(size);
  enc.PutU64(mtime);
  for (BlockNo b : direct) {
    enc.PutU64(b);
  }
  enc.PutU64(single_indirect);
  enc.PutU64(double_indirect);
  enc.PadTo(kInodeSlotSize);
  std::memcpy(slot.data(), buf.data(), kInodeSlotSize);
}

Result<Inode> Inode::DecodeFrom(std::span<const uint8_t> slot) {
  Decoder dec(slot);
  Inode ino;
  ino.ino = dec.GetU32();
  ino.type = static_cast<FileType>(dec.GetU8());
  ino.nlink = dec.GetU16();
  ino.version = dec.GetU32();
  ino.size = dec.GetU64();
  ino.mtime = dec.GetU64();
  for (auto& b : ino.direct) {
    b = dec.GetU64();
  }
  ino.single_indirect = dec.GetU64();
  ino.double_indirect = dec.GetU64();
  if (!dec.ok()) {
    return CorruptionError("inode slot: truncated");
  }
  return ino;
}

// --- segment summary ---------------------------------------------------------

void SegmentSummary::EncodeTo(std::span<uint8_t> block) const {
  std::vector<uint8_t> buf;
  buf.reserve(block.size());
  Encoder enc(&buf);
  enc.PutU32(kSummaryMagic);
  enc.PutU64(seq);
  enc.PutU64(timestamp);
  enc.PutU64(youngest_mtime);
  enc.PutU32(static_cast<uint32_t>(entries.size()));
  enc.PutU32(payload_crc);
  // Header CRC goes here (offset 36); fill after encoding entries.
  enc.PutU32(0);
  for (const SummaryEntry& e : entries) {
    enc.PutU8(static_cast<uint8_t>(e.kind));
    enc.PutU32(e.ino);
    enc.PutU64(e.fbn);
    enc.PutU32(e.version);
    enc.PutU64(e.mtime);
  }
  enc.PadTo(block.size());
  // CRC over everything except the CRC field itself: zeroed during compute.
  uint32_t crc = Crc32(buf);
  buf[36] = static_cast<uint8_t>(crc);
  buf[37] = static_cast<uint8_t>(crc >> 8);
  buf[38] = static_cast<uint8_t>(crc >> 16);
  buf[39] = static_cast<uint8_t>(crc >> 24);
  std::memcpy(block.data(), buf.data(), block.size());
}

Result<SegmentSummary> SegmentSummary::DecodeFrom(std::span<const uint8_t> block) {
  Decoder dec(block);
  if (dec.GetU32() != kSummaryMagic) {
    return CorruptionError("segment summary: bad magic");
  }
  SegmentSummary sum;
  sum.seq = dec.GetU64();
  sum.timestamp = dec.GetU64();
  sum.youngest_mtime = dec.GetU64();
  uint32_t nblocks = dec.GetU32();
  sum.payload_crc = dec.GetU32();
  uint32_t stored_crc = dec.GetU32();
  if (!dec.ok()) {
    return CorruptionError("segment summary: truncated header");
  }
  // Verify the block CRC with the CRC field zeroed.
  std::vector<uint8_t> copy(block.begin(), block.end());
  copy[36] = copy[37] = copy[38] = copy[39] = 0;
  if (stored_crc != Crc32(copy)) {
    return CorruptionError("segment summary: bad CRC");
  }
  uint32_t max_entries = static_cast<uint32_t>((block.size() - kSummaryHeaderSize) /
                                               kSummaryEntrySize);
  if (nblocks > max_entries) {
    return CorruptionError("segment summary: entry count too large");
  }
  sum.entries.reserve(nblocks);
  for (uint32_t i = 0; i < nblocks; i++) {
    SummaryEntry e;
    e.kind = static_cast<BlockKind>(dec.GetU8());
    e.ino = dec.GetU32();
    e.fbn = dec.GetU64();
    e.version = dec.GetU32();
    e.mtime = dec.GetU64();
    sum.entries.push_back(e);
  }
  if (!dec.ok()) {
    return CorruptionError("segment summary: truncated entries");
  }
  return sum;
}

// --- imap / usage entries ------------------------------------------------------

void ImapEntry::EncodeTo(std::span<uint8_t> out) const {
  std::vector<uint8_t> buf;
  buf.reserve(kImapEntrySize);
  Encoder enc(&buf);
  enc.PutU64(inode_block);
  enc.PutU16(slot);
  enc.PutU32(version);
  enc.PutU64(atime);
  enc.PadTo(kImapEntrySize);
  std::memcpy(out.data(), buf.data(), kImapEntrySize);
}

ImapEntry ImapEntry::DecodeFrom(std::span<const uint8_t> in) {
  Decoder dec(in);
  ImapEntry e;
  e.inode_block = dec.GetU64();
  e.slot = dec.GetU16();
  e.version = dec.GetU32();
  e.atime = dec.GetU64();
  return e;
}

void SegUsageEntry::EncodeTo(std::span<uint8_t> out) const {
  std::vector<uint8_t> buf;
  buf.reserve(kUsageEntrySize);
  Encoder enc(&buf);
  enc.PutU32(live_bytes);
  enc.PutU64(last_write);
  enc.PutU8(static_cast<uint8_t>(state));
  enc.PutU8(log_id);
  enc.PutU16(reuse_count);
  enc.PadTo(kUsageEntrySize);
  std::memcpy(out.data(), buf.data(), kUsageEntrySize);
}

SegUsageEntry SegUsageEntry::DecodeFrom(std::span<const uint8_t> in) {
  Decoder dec(in);
  SegUsageEntry e;
  e.live_bytes = dec.GetU32();
  e.last_write = dec.GetU64();
  e.state = static_cast<SegState>(dec.GetU8());
  e.log_id = dec.GetU8();
  e.reuse_count = dec.GetU16();
  return e;
}

// --- checkpoint region ----------------------------------------------------------

namespace {
constexpr uint32_t kCheckpointHeaderSize = 4 + 8 + 8 + 8 + 4 + 4 + 4 + 8 + 4 + 4;
constexpr uint32_t kCheckpointTrailerSize = 8 + 4;  // ckpt_seq echo + CRC
}  // namespace

uint32_t Checkpoint::RegionBlocks(uint32_t block_size, uint32_t imap_chunks,
                                  uint32_t usage_chunks) {
  uint64_t bytes = kCheckpointHeaderSize + 8ull * (imap_chunks + usage_chunks) +
                   kCheckpointTrailerSize;
  return static_cast<uint32_t>((bytes + block_size - 1) / block_size);
}

void Checkpoint::EncodeTo(std::span<uint8_t> region) const {
  std::vector<uint8_t> buf;
  buf.reserve(region.size());
  Encoder enc(&buf);
  enc.PutU32(kCheckpointMagic);
  enc.PutU64(ckpt_seq);
  enc.PutU64(timestamp);
  enc.PutU64(next_summary_seq);
  enc.PutU32(cur_segment);
  enc.PutU32(cur_offset);
  enc.PutU32(ninodes);
  enc.PutU64(clock);
  enc.PutU32(static_cast<uint32_t>(imap_chunk_addr.size()));
  enc.PutU32(static_cast<uint32_t>(usage_chunk_addr.size()));
  for (BlockNo b : imap_chunk_addr) {
    enc.PutU64(b);
  }
  for (BlockNo b : usage_chunk_addr) {
    enc.PutU64(b);
  }
  // Multi-log extension: only emitted when extra logs exist (single-log
  // checkpoints keep their exact legacy bytes) and only when the region's
  // rounding slack can hold it — if not, the records are dropped and mount
  // simply re-acquires clean segments for the extra logs.
  if (!extra_logs.empty() &&
      buf.size() + 8 + 8ull * extra_logs.size() <= region.size() - kCheckpointTrailerSize) {
    enc.PutU32(kMultiLogMagic);
    enc.PutU32(static_cast<uint32_t>(extra_logs.size()));
    for (const auto& [seg, off] : extra_logs) {
      enc.PutU32(seg);
      enc.PutU32(off);
    }
  }
  enc.PadTo(region.size() - kCheckpointTrailerSize);
  // Trailer: the checkpoint sequence again plus a CRC over the body. A torn
  // region write leaves a stale or mismatching trailer, which mount rejects
  // (the paper's "time is in the last block" trick, hardened with a CRC).
  uint32_t crc = Crc32(std::span<const uint8_t>(buf.data(), buf.size()));
  enc.PutU64(ckpt_seq);
  enc.PutU32(crc);
  std::memcpy(region.data(), buf.data(), region.size());
}

Result<Checkpoint> Checkpoint::DecodeFrom(std::span<const uint8_t> region) {
  Decoder dec(region);
  if (dec.GetU32() != kCheckpointMagic) {
    return CorruptionError("checkpoint: bad magic");
  }
  Checkpoint ck;
  ck.ckpt_seq = dec.GetU64();
  ck.timestamp = dec.GetU64();
  ck.next_summary_seq = dec.GetU64();
  ck.cur_segment = dec.GetU32();
  ck.cur_offset = dec.GetU32();
  ck.ninodes = dec.GetU32();
  ck.clock = dec.GetU64();
  uint32_t n_imap = dec.GetU32();
  uint32_t n_usage = dec.GetU32();
  if (!dec.ok()) {
    return CorruptionError("checkpoint: truncated header");
  }
  uint64_t body_size = region.size() - kCheckpointTrailerSize;
  if (kCheckpointHeaderSize + 8ull * (n_imap + n_usage) > body_size) {
    return CorruptionError("checkpoint: chunk table overflows region");
  }
  ck.imap_chunk_addr.reserve(n_imap);
  for (uint32_t i = 0; i < n_imap; i++) {
    ck.imap_chunk_addr.push_back(dec.GetU64());
  }
  ck.usage_chunk_addr.reserve(n_usage);
  for (uint32_t i = 0; i < n_usage; i++) {
    ck.usage_chunk_addr.push_back(dec.GetU64());
  }
  // Optional multi-log extension behind a sub-magic; the padding after the
  // chunk tables is zero otherwise, so a legacy region can never match.
  if (body_size - dec.pos() >= 8) {
    Decoder peek(region.subspan(dec.pos(), body_size - dec.pos()));
    if (peek.GetU32() == kMultiLogMagic) {
      uint32_t n_extra = peek.GetU32();
      if (peek.ok() && 8ull * n_extra <= peek.remaining()) {
        for (uint32_t i = 0; i < n_extra; i++) {
          SegNo seg = peek.GetU32();
          uint32_t off = peek.GetU32();
          ck.extra_logs.emplace_back(seg, off);
        }
      }
    }
  }
  Decoder trailer(region.subspan(body_size));
  uint64_t seq_echo = trailer.GetU64();
  uint32_t crc = trailer.GetU32();
  if (seq_echo != ck.ckpt_seq) {
    return CorruptionError("checkpoint: trailer sequence mismatch (torn write)");
  }
  if (crc != Crc32(region.subspan(0, body_size))) {
    return CorruptionError("checkpoint: bad CRC");
  }
  return ck;
}

// --- directory file format -------------------------------------------------------

size_t DirEntryEncodedSize(const DirEntry& entry) {
  return 4 + 1 + 2 + entry.name.size();
}

size_t DirBlockCapacity(uint32_t block_size) {
  return block_size - 4;  // u32 entry count header
}

std::vector<uint8_t> EncodeDirBlock(const std::vector<DirEntry>& entries, uint32_t block_size) {
  std::vector<uint8_t> buf;
  buf.reserve(block_size);
  Encoder enc(&buf);
  enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const DirEntry& e : entries) {
    enc.PutU32(e.ino);
    enc.PutU8(static_cast<uint8_t>(e.type));
    enc.PutLengthPrefixedString(e.name);
  }
  enc.PadTo(block_size);
  return buf;
}

Result<std::vector<DirEntry>> DecodeDirBlock(std::span<const uint8_t> block) {
  Decoder dec(block);
  uint32_t count = dec.GetU32();
  std::vector<DirEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    DirEntry e;
    e.ino = dec.GetU32();
    e.type = static_cast<FileType>(dec.GetU8());
    e.name = dec.GetLengthPrefixedString();
    if (!dec.ok()) {
      return CorruptionError("directory block: truncated entry");
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

// --- directory operation log --------------------------------------------------------

size_t DirLogRecordEncodedSize(const DirLogRecord& rec) {
  return 1 + 4 + (2 + rec.name.size()) + 4 + 4 + 2 + 1 + 4 + (2 + rec.name2.size()) + 4 + 4 + 2;
}

std::vector<uint8_t> EncodeDirLogBlock(const std::vector<DirLogRecord>& records,
                                       uint32_t block_size) {
  std::vector<uint8_t> buf;
  buf.reserve(block_size);
  Encoder enc(&buf);
  enc.PutU32(kDirLogMagic);
  enc.PutU16(static_cast<uint16_t>(records.size()));
  for (const DirLogRecord& r : records) {
    enc.PutU8(static_cast<uint8_t>(r.op));
    enc.PutU32(r.dir_ino);
    enc.PutLengthPrefixedString(r.name);
    enc.PutU32(r.target_ino);
    enc.PutU32(r.target_version);
    enc.PutU16(r.new_nlink);
    enc.PutU8(static_cast<uint8_t>(r.target_type));
    enc.PutU32(r.dir2_ino);
    enc.PutLengthPrefixedString(r.name2);
    enc.PutU32(r.replaced_ino);
    enc.PutU32(r.replaced_version);
    enc.PutU16(r.replaced_nlink);
  }
  enc.PadTo(block_size);
  return buf;
}

Result<std::vector<DirLogRecord>> DecodeDirLogBlock(std::span<const uint8_t> block) {
  Decoder dec(block);
  if (dec.GetU32() != kDirLogMagic) {
    return CorruptionError("dirlog block: bad magic");
  }
  uint16_t count = dec.GetU16();
  std::vector<DirLogRecord> records;
  records.reserve(count);
  for (uint16_t i = 0; i < count; i++) {
    DirLogRecord r;
    r.op = static_cast<DirOp>(dec.GetU8());
    r.dir_ino = dec.GetU32();
    r.name = dec.GetLengthPrefixedString();
    r.target_ino = dec.GetU32();
    r.target_version = dec.GetU32();
    r.new_nlink = dec.GetU16();
    r.target_type = static_cast<FileType>(dec.GetU8());
    r.dir2_ino = dec.GetU32();
    r.name2 = dec.GetLengthPrefixedString();
    r.replaced_ino = dec.GetU32();
    r.replaced_version = dec.GetU32();
    r.replaced_nlink = dec.GetU16();
    if (!dec.ok()) {
      return CorruptionError("dirlog block: truncated record");
    }
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace lfs
