#include "src/lfs/segment_writer.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "src/util/crc32.h"

namespace lfs {

void SegmentWriter::Init(SegNo segment, uint32_t offset, uint64_t next_seq) {
  for (Log& log : logs_) {
    std::lock_guard<std::mutex> lk(log.mu);
    log.cur_seg = kNilSeg;
    log.cur_offset = 0;
    log.pending.clear();
    log.partial_youngest = 0;
  }
  {
    std::lock_guard<std::mutex> lk(logs_[0].mu);
    logs_[0].cur_seg = segment;
    logs_[0].cur_offset = offset;
  }
  next_seq_ = next_seq;
  age_ewma_ = 0.0;
}

void SegmentWriter::InitLog(uint32_t log, SegNo segment, uint32_t offset) {
  Log& l = logs_[log];
  std::lock_guard<std::mutex> lk(l.mu);
  l.cur_seg = segment;
  l.cur_offset = offset;
  l.pending.clear();
  l.partial_youngest = 0;
}

Status SegmentWriter::AdvanceSegment(Log& log, uint32_t log_index) {
  if (log.cur_seg != kNilSeg) {
    usage_->SetState(log.cur_seg, SegState::kDirty);
  }
  if (!cleaning_ && !privileged_ && usable_clean_segments() == 0) {
    return NoSpaceError("no clean segments available to the write path (clean=" +
                        std::to_string(usage_->clean_count()) + " reserve=" +
                        std::to_string(reserve_segments_) + ")");
  }
  SegNo next = usage_->PickClean(/*include_pending=*/privileged_);
  if (next == kNilSeg) {
    return NoSpaceError("no clean segments at all; log is full");
  }
  usage_->SetState(next, SegState::kActive);
  usage_->SetLogId(next, static_cast<uint8_t>(log_index));
  log.cur_seg = next;
  log.cur_offset = 0;
  return OkStatus();
}

Status SegmentWriter::EnsureRoom(Log& log, uint32_t log_index) {
  if (!log.pending.empty()) {
    // Room inside the open partial: segment space and summary entry space.
    uint32_t used = log.cur_offset + 1 + static_cast<uint32_t>(log.pending.size());
    bool segment_full = used >= sb_->segment_blocks;
    bool summary_full = log.pending.size() >= sb_->max_summary_entries();
    if (!segment_full && !summary_full) {
      return OkStatus();
    }
    LFS_RETURN_IF_ERROR(FlushLog(log));
  }
  // Open a new partial: need space for a summary block plus one payload
  // block in the current segment.
  if (log.cur_seg == kNilSeg || log.cur_offset + 2 > sb_->segment_blocks) {
    LFS_RETURN_IF_ERROR(AdvanceSegment(log, log_index));
  }
  return OkStatus();
}

uint32_t SegmentWriter::ClassifyLog(const SummaryEntry& entry, uint64_t mtime,
                                    uint32_t cold_hint) {
  if (logs_.size() == 1) {
    return 0;
  }
  // Metadata churns fast and dies fast: it always rides the hot log.
  if (entry.kind != BlockKind::kData) {
    return 0;
  }
  // Migration ladder: the cleaner has already decided where a migrated
  // block belongs (cold_hint = 1 + target log); just clamp to the logs we
  // actually have.
  if (cold_hint > 0) {
    return std::min(cold_hint - 1, static_cast<uint32_t>(logs_.size() - 1));
  }
  // Direct writes: an age heuristic against the live clock (timestamp_ only
  // refreshes at mount and checkpoint, which would make everything look
  // brand-new in between). The boundary adapts to the workload via a slow
  // EWMA of observed data ages; fresh writes (age 0) keep it near zero, so
  // demand a 4x margin over the mean before calling anything cold.
  uint64_t now = clock_ != nullptr ? clock_->Now() : timestamp_.load();
  uint64_t age = now > mtime ? now - mtime : 0;
  age_ewma_ += (static_cast<double>(age) - age_ewma_) / 16.0;
  uint32_t idx = 0;
  double bound = std::max(age_ewma_.load(), 1.0) * 4.0;
  while (idx + 1 < logs_.size() && static_cast<double>(age) > bound) {
    idx++;
    bound *= 4.0;
  }
  return idx;
}

Result<BlockNo> SegmentWriter::Append(const SummaryEntry& entry, std::vector<uint8_t> data,
                                      uint64_t mtime, uint32_t live_bytes,
                                      uint32_t cold_hint) {
  if (data.size() != sb_->block_size) {
    return InvalidArgumentError("Append: payload must be exactly one block");
  }
  uint32_t log_index = ClassifyLog(entry, mtime, cold_hint);
  // Log-order barrier for recovery: a metadata block (inode, imap/usage
  // chunk, dirlog) incorporates every data block flushed before it, so the
  // partial carrying it must carry a HIGHER sequence number than any partial
  // holding data it references. Metadata rides log 0; data buffered in the
  // cold logs would otherwise flush after it (and with a higher seq) at the
  // batch-closing Flush. Push the cold logs out first so their data
  // sequences below the metadata — then a crash between the two makes
  // roll-forward's contiguous-prefix rule drop the metadata, not the data.
  if (log_index == 0 && entry.kind != BlockKind::kData && logs_.size() > 1) {
    for (size_t i = 1; i < logs_.size(); i++) {
      std::lock_guard<std::mutex> cold_lk(logs_[i].mu);
      LFS_RETURN_IF_ERROR(FlushLog(logs_[i]));
    }
  }
  Log& log = logs_[log_index];
  // Per-log append lock: concurrent appends to distinct logs stay safe with
  // respect to each other (multi-log under the concurrent front-end).
  std::lock_guard<std::mutex> lk(log.mu);
  LFS_RETURN_IF_ERROR(EnsureRoom(log, log_index));
  BlockNo summary_addr = sb_->SegmentBase(log.cur_seg) + log.cur_offset;
  BlockNo addr = summary_addr + 1 + log.pending.size();
  if (log.pending.empty()) {
    log.partial_youngest = 0;
  }
  log.partial_youngest = std::max(log.partial_youngest, mtime);
  Pending pending{entry, std::move(data)};
  pending.entry.mtime = mtime;  // per-block age travels in the summary
  log.pending.push_back(std::move(pending));
  usage_->AddLive(log.cur_seg, live_bytes, mtime);
  usage_->SetWriteSeq(log.cur_seg, next_seq_.load());

  // Traffic accounting (Table 4 composition; write-cost numerator).
  const uint32_t bs = sb_->block_size;
  stats_->log_bytes_by_kind[static_cast<size_t>(entry.kind)] += bs;
  if (cleaning_) {
    stats_->clean_write_bytes += bs;
  } else {
    stats_->new_payload_bytes += bs;
    if (entry.kind == BlockKind::kData) {
      stats_->new_data_bytes += bs;
    }
  }
  return addr;
}

Status SegmentWriter::FlushLog(Log& log) {
  if (log.pending.empty()) {
    return OkStatus();
  }
  const uint32_t bs = sb_->block_size;
  const uint32_t n = static_cast<uint32_t>(log.pending.size());

  // Assemble [summary | payload...] and issue as one sequential write.
  std::vector<uint8_t> io(size_t{1 + n} * bs);
  uint32_t crc = Crc32Init();
  for (uint32_t i = 0; i < n; i++) {
    std::memcpy(io.data() + size_t{1 + i} * bs, log.pending[i].data.data(), bs);
    crc = Crc32Update(crc, log.pending[i].data);
  }
  SegmentSummary summary;
  summary.seq = next_seq_++;
  summary.timestamp = timestamp_;
  summary.youngest_mtime = log.partial_youngest;
  summary.payload_crc = Crc32Finish(crc);
  summary.entries.reserve(n);
  for (const Pending& p : log.pending) {
    summary.entries.push_back(p.entry);
  }
  summary.EncodeTo(std::span<uint8_t>(io.data(), bs));

  BlockNo start = sb_->SegmentBase(log.cur_seg) + log.cur_offset;
  Status write_st = RetryWithBackoff(retry_, clock_, &stats_->io_retries,
                                     [&] { return device_->Write(start, 1 + n, io); });
  if (!write_st.ok()) {
    if (write_st.code() == StatusCode::kIoError) {
      stats_->io_retry_failures++;
    }
    // The partial was never durable; roll the sequence number back so the
    // caller can re-drive the flush (possibly into a different segment)
    // without leaving a gap that would end roll-forward early.
    next_seq_--;
    return write_st;
  }
  stats_->summary_bytes += bs;
  usage_->SetWriteSeq(log.cur_seg, summary.seq);
  LFS_TRACE(obs_ != nullptr ? obs_->tracer() : nullptr, obs::TraceEventType::kSegmentWrite,
            obs::OpType::kNone, clock_ != nullptr ? clock_->Now() : 0, log.cur_seg, 1 + n,
            device_->ModeledTime());

  log.cur_offset += 1 + n;
  log.pending.clear();
  log.partial_youngest = 0;
  return OkStatus();
}

Status SegmentWriter::Flush() {
  // Cold logs first, the metadata log (0) last: log 0's open partial may end
  // with inode/imap blocks that reference data buffered in the cold logs,
  // and recovery only accepts a contiguous sequence prefix — the metadata
  // must take the highest sequence number of the batch.
  for (size_t i = logs_.size(); i-- > 0;) {
    Log& log = logs_[i];
    std::lock_guard<std::mutex> lk(log.mu);
    LFS_RETURN_IF_ERROR(FlushLog(log));
  }
  return OkStatus();
}

bool SegmentWriter::ReadBuffered(BlockNo addr, std::span<uint8_t> out) const {
  for (const Log& log : logs_) {
    if (log.pending.empty() || log.cur_seg == kNilSeg) {
      continue;
    }
    BlockNo first = sb_->SegmentBase(log.cur_seg) + log.cur_offset + 1;
    if (addr < first || addr >= first + log.pending.size()) {
      continue;
    }
    const std::vector<uint8_t>& data = log.pending[addr - first].data;
    std::memcpy(out.data(), data.data(), out.size());
    return true;
  }
  return false;
}

}  // namespace lfs
