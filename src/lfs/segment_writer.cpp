#include "src/lfs/segment_writer.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "src/util/crc32.h"

namespace lfs {

void SegmentWriter::Init(SegNo segment, uint32_t offset, uint64_t next_seq) {
  cur_seg_ = segment;
  cur_offset_ = offset;
  next_seq_ = next_seq;
  pending_.clear();
  partial_youngest_ = 0;
}

Status SegmentWriter::AdvanceSegment() {
  if (cur_seg_ != kNilSeg) {
    usage_->SetState(cur_seg_, SegState::kDirty);
  }
  if (!cleaning_ && !privileged_ && usable_clean_segments() == 0) {
    return NoSpaceError("no clean segments available to the write path (clean=" +
                        std::to_string(usage_->clean_count()) + " reserve=" +
                        std::to_string(reserve_segments_) + ")");
  }
  SegNo next = usage_->PickClean();
  if (next == kNilSeg) {
    return NoSpaceError("no clean segments at all; log is full");
  }
  usage_->SetState(next, SegState::kActive);
  cur_seg_ = next;
  cur_offset_ = 0;
  return OkStatus();
}

Status SegmentWriter::EnsureRoom() {
  const uint32_t bs = sb_->block_size;
  (void)bs;
  if (!pending_.empty()) {
    // Room inside the open partial: segment space and summary entry space.
    uint32_t used = cur_offset_ + 1 + static_cast<uint32_t>(pending_.size());
    bool segment_full = used >= sb_->segment_blocks;
    bool summary_full = pending_.size() >= sb_->max_summary_entries();
    if (!segment_full && !summary_full) {
      return OkStatus();
    }
    LFS_RETURN_IF_ERROR(Flush());
  }
  // Open a new partial: need space for a summary block plus one payload
  // block in the current segment.
  if (cur_seg_ == kNilSeg || cur_offset_ + 2 > sb_->segment_blocks) {
    LFS_RETURN_IF_ERROR(AdvanceSegment());
  }
  return OkStatus();
}

Result<BlockNo> SegmentWriter::Append(const SummaryEntry& entry, std::vector<uint8_t> data,
                                      uint64_t mtime, uint32_t live_bytes) {
  if (data.size() != sb_->block_size) {
    return InvalidArgumentError("Append: payload must be exactly one block");
  }
  LFS_RETURN_IF_ERROR(EnsureRoom());
  BlockNo summary_addr = sb_->SegmentBase(cur_seg_) + cur_offset_;
  BlockNo addr = summary_addr + 1 + pending_.size();
  if (pending_.empty()) {
    partial_youngest_ = 0;
  }
  partial_youngest_ = std::max(partial_youngest_, mtime);
  Pending pending{entry, std::move(data)};
  pending.entry.mtime = mtime;  // per-block age travels in the summary
  pending_.push_back(std::move(pending));
  usage_->AddLive(cur_seg_, live_bytes, mtime);
  usage_->SetWriteSeq(cur_seg_, next_seq_);

  // Traffic accounting (Table 4 composition; write-cost numerator).
  const uint32_t bs = sb_->block_size;
  stats_->log_bytes_by_kind[static_cast<size_t>(entry.kind)] += bs;
  if (cleaning_) {
    stats_->clean_write_bytes += bs;
  } else {
    stats_->new_payload_bytes += bs;
    if (entry.kind == BlockKind::kData) {
      stats_->new_data_bytes += bs;
    }
  }
  return addr;
}

Status SegmentWriter::Flush() {
  if (pending_.empty()) {
    return OkStatus();
  }
  const uint32_t bs = sb_->block_size;
  const uint32_t n = static_cast<uint32_t>(pending_.size());

  // Assemble [summary | payload...] and issue as one sequential write.
  std::vector<uint8_t> io(size_t{1 + n} * bs);
  uint32_t crc = Crc32Init();
  for (uint32_t i = 0; i < n; i++) {
    std::memcpy(io.data() + size_t{1 + i} * bs, pending_[i].data.data(), bs);
    crc = Crc32Update(crc, pending_[i].data);
  }
  SegmentSummary summary;
  summary.seq = next_seq_++;
  summary.timestamp = timestamp_;
  summary.youngest_mtime = partial_youngest_;
  summary.payload_crc = Crc32Finish(crc);
  summary.entries.reserve(n);
  for (const Pending& p : pending_) {
    summary.entries.push_back(p.entry);
  }
  summary.EncodeTo(std::span<uint8_t>(io.data(), bs));

  BlockNo start = sb_->SegmentBase(cur_seg_) + cur_offset_;
  Status write_st = RetryWithBackoff(retry_, clock_, &stats_->io_retries,
                                     [&] { return device_->Write(start, 1 + n, io); });
  if (!write_st.ok()) {
    if (write_st.code() == StatusCode::kIoError) {
      stats_->io_retry_failures++;
    }
    // The partial was never durable; roll the sequence number back so the
    // caller can re-drive the flush (possibly into a different segment)
    // without leaving a gap that would end roll-forward early.
    next_seq_--;
    return write_st;
  }
  stats_->summary_bytes += bs;
  usage_->SetWriteSeq(cur_seg_, summary.seq);
  LFS_TRACE(obs_ != nullptr ? obs_->tracer() : nullptr, obs::TraceEventType::kSegmentWrite,
            obs::OpType::kNone, clock_ != nullptr ? clock_->Now() : 0, cur_seg_, 1 + n,
            device_->ModeledTime());

  cur_offset_ += 1 + n;
  pending_.clear();
  partial_youngest_ = 0;
  return OkStatus();
}

bool SegmentWriter::ReadBuffered(BlockNo addr, std::span<uint8_t> out) const {
  if (pending_.empty() || cur_seg_ == kNilSeg) {
    return false;
  }
  BlockNo first = sb_->SegmentBase(cur_seg_) + cur_offset_ + 1;
  if (addr < first || addr >= first + pending_.size()) {
    return false;
  }
  const std::vector<uint8_t>& data = pending_[addr - first].data;
  std::memcpy(out.data(), data.data(), out.size());
  return true;
}

}  // namespace lfs
