// Offline consistency checking of an LFS disk image ("lfsck").
//
// The checker reads an image through the BlockDevice interface only — it
// shares the serialization code with the filesystem but none of the runtime
// paths, so it can act as an independent oracle in tests and as a repair-
// free fsck for operators. It validates, from the newest checkpoint:
//
//   - superblock and checkpoint regions (magic, CRCs, geometry);
//   - the inode map: every allocated entry resolves to a self-describing
//     inode slot with matching inode number and version;
//   - every file's block tree: addresses in range, no block claimed twice,
//     no live block inside a segment the usage table calls clean;
//   - the directory tree: entries resolve, types match, link counts agree,
//     every allocated inode is reachable;
//   - the segment usage table against a recomputed per-segment live count;
//   - every segment's summary chain (header CRCs, payload CRCs, monotone
//     sequence numbers).
//
// Errors are definite corruption; warnings are tolerated imprecision (e.g.
// usage-table counts for the post-checkpoint tail, or damage confined to
// segments the filesystem has already quarantined).

#ifndef LFS_LFS_CHECK_H_
#define LFS_LFS_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/disk/block_device.h"
#include "src/util/result.h"

namespace lfs {

// One finding, tagged with a stable invariant slug (e.g. "segchain.payload_crc")
// so machine consumers — the crash-point explorer, CI — can match on the
// violated invariant instead of scraping message text.
struct CheckFinding {
  std::string invariant;
  bool error = false;  // otherwise a warning
  std::string message;
};

struct CheckReport {
  uint64_t errors = 0;
  uint64_t warnings = 0;
  std::vector<std::string> messages;           // first max_messages findings, rendered
  std::vector<CheckFinding> findings;          // same findings, structured

  // Inventory.
  uint64_t files = 0;
  uint64_t directories = 0;
  uint64_t live_data_blocks = 0;
  uint64_t segments_scanned = 0;
  uint64_t partial_writes = 0;
  uint64_t clean_segments = 0;
  uint64_t quarantined_segments = 0;

  bool ok() const { return errors == 0; }
  std::string Summary() const;
  // Machine-readable report: counters, inventory, and per-invariant findings.
  std::string ToJson() const;
};

struct CheckOptions {
  // Also verify every partial write's payload CRC (reads the whole log).
  bool verify_payload_crcs = true;
  size_t max_messages = 64;
};

// Runs all checks; fails with a Status only if the image is unreadable or
// has no valid superblock/checkpoint at all (inconsistencies inside an
// otherwise readable image are reported in the CheckReport).
Result<CheckReport> CheckLfsImage(BlockDevice* device, const CheckOptions& options = {});

}  // namespace lfs

#endif  // LFS_LFS_CHECK_H_
