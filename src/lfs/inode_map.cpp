#include "src/lfs/inode_map.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <string>

namespace lfs {

void InodeMap::EnsureSize(InodeNum ino) {
  if (entries_.size() <= ino) {
    entries_.resize(ino + 1);
  }
}

Result<InodeNum> InodeMap::Allocate() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  InodeNum ino;
  if (!free_list_.empty()) {
    ino = free_list_.back();
    free_list_.pop_back();
  } else {
    // High-water growth. Inode 0 is the nil sentinel and never allocated.
    InodeNum next = std::max<InodeNum>(1, static_cast<InodeNum>(entries_.size()));
    if (next >= max_inodes_) {
      return NoInodesError("inode numbers exhausted (max " + std::to_string(max_inodes_) + ")");
    }
    ino = next;
  }
  EnsureSize(ino);
  entries_[ino].version++;
  // Location is set by the first inode flush; mark allocated immediately so
  // concurrent allocations do not reuse the number. A placeholder non-nil
  // block would lie, so allocation state is tracked via the free list and
  // high-water mark; allocated() remains false until SetLocation.
  allocated_count_++;
  MarkDirty(ino);
  return ino;
}

void InodeMap::Free(InodeNum ino) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  EnsureSize(ino);
  entries_[ino].inode_block = kNilBlock;
  entries_[ino].slot = 0;
  entries_[ino].version++;  // uid changes; old log blocks are now dead on sight
  free_list_.push_back(ino);
  if (allocated_count_ > 0) {
    allocated_count_--;
  }
  MarkDirty(ino);
}

void InodeMap::SetLocation(InodeNum ino, BlockNo inode_block, uint16_t slot) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  EnsureSize(ino);
  entries_[ino].inode_block = inode_block;
  entries_[ino].slot = slot;
  MarkDirty(ino);
}

void InodeMap::SetAtime(InodeNum ino, uint64_t atime) {
  // Shared: the entry array may be growing under a concurrent Allocate, but
  // the entry itself exists (the caller is reading an allocated inode). The
  // store is a relaxed atomic, so concurrent readers of the same entry are
  // race-free.
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ino >= entries_.size()) {
    return;
  }
  entries_[ino].atime = atime;  // relaxed atomic store
  MarkDirty(ino);
}

void InodeMap::Restore(InodeNum ino, const ImapEntry& entry) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  EnsureSize(ino);
  entries_[ino] = entry;
  MarkDirty(ino);
}

void InodeMap::EncodeChunk(uint32_t chunk, std::span<uint8_t> block) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::memset(block.data(), 0, block.size());
  InodeNum base = chunk * entries_per_chunk_;
  for (uint32_t i = 0; i < entries_per_chunk_; i++) {
    InodeNum ino = base + i;
    if (ino >= entries_.size()) {
      break;
    }
    entries_[ino].EncodeTo(block.subspan(size_t{i} * kImapEntrySize, kImapEntrySize));
  }
}

void InodeMap::LoadChunk(uint32_t chunk, std::span<const uint8_t> block,
                         uint32_t ninodes_limit) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  InodeNum base = chunk * entries_per_chunk_;
  for (uint32_t i = 0; i < entries_per_chunk_; i++) {
    InodeNum ino = base + i;
    if (ino >= ninodes_limit) {
      break;
    }
    EnsureSize(ino);
    entries_[ino] = ImapEntry::DecodeFrom(block.subspan(size_t{i} * kImapEntrySize,
                                                        kImapEntrySize));
  }
}

void InodeMap::RebuildFreeList() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  free_list_.clear();
  allocated_count_ = 0;
  for (InodeNum ino = 1; ino < entries_.size(); ino++) {
    if (entries_[ino].allocated()) {
      allocated_count_++;
    } else {
      free_list_.push_back(ino);
    }
  }
  // Allocate low numbers first for deterministic behaviour.
  std::sort(free_list_.rbegin(), free_list_.rend());
}

}  // namespace lfs
