// File maps, data read/write paths, and the write-behind flush machinery.
//
// Dirty file blocks accumulate in memory (the paper's file-cache write
// buffering, Section 2.1) and are written in large sequential batches:
// dirlog records first, then data blocks, then the indirect blocks and
// inodes that point at them. That ordering is what makes roll-forward sound:
// an inode found in the log always describes data already in the log.
//
// Two mutation front-ends share that machinery (see the threading-model note
// in lfs.h): the single-threaded regime stages and flushes inline under the
// exclusive filesystem lock, while the concurrent regime stages under the
// shared lock + per-inode stripes inside a group-commit transaction and
// leaves flushing to the batch committer (CommitBatch).

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>

#include "src/lfs/lfs.h"
#include "src/util/codec.h"
#include "src/util/crc32.h"

namespace lfs {

namespace {
// FileMap/DirCache entries kept before MaybeFlush starts evicting clean ones.
constexpr size_t kFileCacheCap = 16384;
}  // namespace

bool LfsFileSystem::ReadCacheGet(BlockNo addr, std::span<uint8_t> out) const {
  // Called under the shared fs lock too (reads populate the cache), so the
  // LRU bookkeeping is serialized by the stripe's own leaf mutex.
  ReadCacheShard& shard = ReadCacheShardFor(addr);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(addr);
  if (it == shard.map.end()) {
    return false;
  }
  SegNo seg = sb_.SegOf(addr);
  if (seg == kNilSeg || usage_.write_seq(seg) != it->second.gen) {
    // The segment was recycled (or appended to) since caching: drop.
    shard.lru.erase(it->second.lru_it);
    shard.map.erase(it);
    return false;
  }
  std::memcpy(out.data(), it->second.data.data(), out.size());
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return true;
}

void LfsFileSystem::ReadCachePut(BlockNo addr, std::span<const uint8_t> data) const {
  if (cfg_.read_cache_blocks == 0) {
    return;
  }
  SegNo seg = sb_.SegOf(addr);
  if (seg == kNilSeg) {
    return;  // fixed-area blocks are not cached
  }
  ReadCacheShard& shard = ReadCacheShardFor(addr);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.count(addr) != 0) {
    return;
  }
  while (shard.map.size() >= rc_shard_cap_ && !shard.lru.empty()) {
    BlockNo victim = shard.lru.back();
    shard.lru.pop_back();
    shard.map.erase(victim);
  }
  shard.lru.push_front(addr);
  ReadCacheEntry entry;
  entry.data.assign(data.begin(), data.end());
  entry.gen = usage_.write_seq(seg);
  entry.lru_it = shard.lru.begin();
  shard.map.emplace(addr, std::move(entry));
}

Status LfsFileSystem::ReadLogBlock(BlockNo addr, std::span<uint8_t> out) const {
  if (writer_.ReadBuffered(addr, out)) {
    return OkStatus();
  }
  if (ReadCacheGet(addr, out)) {
    return OkStatus();
  }
  if (cfg_.verify_read_crcs) {
    LFS_RETURN_IF_ERROR(VerifyLogBlockCrcs(addr, 1));
  }
  LFS_RETURN_IF_ERROR(DeviceRead(addr, 1, out));
  ReadCachePut(addr, out);
  return OkStatus();
}

Status LfsFileSystem::VerifyLogBlockCrcs(BlockNo addr, uint64_t count) const {
  SegNo seg = sb_.SegOf(addr);
  if (seg == kNilSeg) {
    return OkStatus();  // fixed-area blocks carry their own CRCs
  }
  const uint32_t bs = sb_.block_size;
  const BlockNo base = sb_.SegmentBase(seg);
  const BlockNo lo = addr;
  const BlockNo hi = addr + count;
  uint32_t stop = SegmentStopOffset(seg);
  // Walk the partial-write chain until it covers [lo, hi). Reads go straight
  // to the device (ReadLogBlock would recurse). If the chain is unreadable
  // or ends before reaching the target, nothing can be proven here — the
  // caller's own read will surface any I/O error.
  uint32_t off = 0;
  uint64_t prev_seq = 0;
  std::vector<uint8_t> sblock(bs);
  while (off + 1 < stop) {
    if (!device_->Read(base + off, 1, sblock).ok()) {
      break;
    }
    Result<SegmentSummary> sum = SegmentSummary::DecodeFrom(sblock);
    if (!sum.ok() || sum->seq <= prev_seq) {
      break;
    }
    uint32_t n = static_cast<uint32_t>(sum->entries.size());
    if (n == 0 || off + 1 + n > sb_.segment_blocks) {
      break;
    }
    BlockNo pstart = base + off + 1;
    BlockNo pend = pstart + n;
    if (pstart >= hi) {
      break;  // chain is past the target range
    }
    if (pend > lo) {
      // This partial covers part of the target: check its payload CRC.
      std::vector<uint8_t> payload(size_t{n} * bs);
      LFS_RETURN_IF_ERROR(DeviceRead(pstart, n, payload));
      if (Crc32(payload) != sum->payload_crc) {
        stats_.read_crc_failures++;
        return CorruptionError(
            "payload CRC mismatch reading block " + std::to_string(addr) +
            " (segment " + std::to_string(seg) + ", partial at offset " +
            std::to_string(off) + " covering blocks [" + std::to_string(pstart) +
            ", " + std::to_string(pend) + "))");
      }
    }
    prev_seq = sum->seq;
    off += 1 + n;
  }
  return OkStatus();
}

Status LfsFileSystem::ReadLogRun(BlockNo addr, uint64_t count, std::span<uint8_t> out) const {
  const uint32_t bs = sb_.block_size;
  uint64_t i = 0;
  while (i < count) {
    // Serve writer-buffered and cached blocks individually; everything
    // between them is fetched in one device read per contiguous stretch.
    uint64_t j = i;
    while (j < count) {
      std::span<uint8_t> block = out.subspan(j * bs, bs);
      if (writer_.ReadBuffered(addr + j, block) || ReadCacheGet(addr + j, block)) {
        break;  // block j is already filled
      }
      j++;
    }
    if (j > i) {
      if (cfg_.verify_read_crcs) {
        LFS_RETURN_IF_ERROR(VerifyLogBlockCrcs(addr + i, j - i));
      }
      LFS_RETURN_IF_ERROR(DeviceRead(addr + i, j - i, out.subspan(i * bs, (j - i) * bs)));
      for (uint64_t k = i; k < j; k++) {
        ReadCachePut(addr + k, out.subspan(k * bs, bs));
      }
    }
    i = j < count ? j + 1 : j;
  }
  return OkStatus();
}

Result<Inode> LfsFileSystem::ReadInodeFromDisk(InodeNum ino) const {
  ImapEntry e = imap_.Get(ino);
  if (!e.allocated()) {
    return NotFoundError("inode " + std::to_string(ino) + " not allocated");
  }
  std::vector<uint8_t> block(sb_.block_size);
  LFS_RETURN_IF_ERROR(ReadLogBlock(e.inode_block, block));
  if ((e.slot + 1u) * kInodeSlotSize > sb_.block_size) {
    return CorruptionError("imap slot out of range for inode " + std::to_string(ino));
  }
  LFS_ASSIGN_OR_RETURN(
      Inode inode,
      Inode::DecodeFrom(std::span<const uint8_t>(block).subspan(
          size_t{e.slot} * kInodeSlotSize, kInodeSlotSize)));
  if (inode.ino != ino) {
    return CorruptionError("inode block slot holds inode " + std::to_string(inode.ino) +
                           ", expected " + std::to_string(ino));
  }
  return inode;
}

// --- sharded in-memory tables --------------------------------------------------

LfsFileSystem::FileMap* LfsFileSystem::FindFileMap(InodeNum ino) {
  InodeTableShard& shard = TableShard(ino);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.files.find(ino);
  return it == shard.files.end() ? nullptr : &it->second;
}

LfsFileSystem::DirCache* LfsFileSystem::FindDirCache(InodeNum ino) {
  InodeTableShard& shard = TableShard(ino);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.dirs.find(ino);
  return it == shard.dirs.end() ? nullptr : &it->second;
}

void LfsFileSystem::EraseInodeState(InodeNum ino) {
  InodeTableShard& shard = TableShard(ino);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.files.erase(ino);
  shard.dirs.erase(ino);
}

void LfsFileSystem::ClearInodeTables() {
  for (InodeTableShard& shard : itable_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.files.clear();
    shard.dirs.clear();
  }
}

size_t LfsFileSystem::LoadedFileMapCount() const {
  size_t total = 0;
  for (const InodeTableShard& shard : itable_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.files.size();
  }
  return total;
}

bool LfsFileSystem::HaveDirtyBlock(InodeNum ino, uint64_t fbn) const {
  if (dirty_count_.load() == 0) {
    return false;  // nothing staged anywhere
  }
  const DirtyShard& shard = dirty_shards_[ShardOf(ino)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.blocks.count({ino, fbn}) != 0;
}

bool LfsFileSystem::CopyDirtyBlock(InodeNum ino, uint64_t fbn, std::span<uint8_t> out) const {
  if (dirty_count_.load() == 0) {
    return false;
  }
  const DirtyShard& shard = dirty_shards_[ShardOf(ino)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.blocks.find({ino, fbn});
  if (it == shard.blocks.end()) {
    return false;
  }
  std::memcpy(out.data(), it->second.data(), out.size());
  return true;
}

void LfsFileSystem::EraseDirtyBlock(InodeNum ino, uint64_t fbn) {
  DirtyShard& shard = dirty_shards_[ShardOf(ino)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.blocks.erase({ino, fbn}) != 0) {
    dirty_count_--;
  }
}

void LfsFileSystem::StoreDirtyBlock(InodeNum ino, uint64_t fbn, std::vector<uint8_t> data) {
  assert(data.size() == sb_.block_size);
  DirtyShard& shard = dirty_shards_[ShardOf(ino)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.blocks.find({ino, fbn});
  if (it == shard.blocks.end()) {
    shard.blocks.emplace(std::make_pair(ino, fbn), std::move(data));
    dirty_count_++;
  } else {
    it->second = std::move(data);
  }
}

std::map<std::pair<InodeNum, uint64_t>, std::vector<uint8_t>>
LfsFileSystem::TakeDirtyBatch() {
  // Merging the per-shard maps into one std::map restores the exact global
  // (ino, fbn) iteration order the unsharded buffer used to flush in, so the
  // log layout (and the paper's temporal locality) is unchanged by sharding.
  std::map<std::pair<InodeNum, uint64_t>, std::vector<uint8_t>> out;
  for (DirtyShard& shard : dirty_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (out.empty()) {
      out = std::move(shard.blocks);
    } else {
      out.merge(shard.blocks);
    }
    shard.blocks.clear();
  }
  dirty_count_.store(0);
  return out;
}

void LfsFileSystem::MarkInodeDirty(InodeNum ino) {
  std::lock_guard<std::mutex> lock(dirty_inodes_mu_);
  dirty_inodes_.insert(ino);
}

std::set<InodeNum> LfsFileSystem::TakeDirtyInodes() {
  std::lock_guard<std::mutex> lock(dirty_inodes_mu_);
  std::set<InodeNum> out;
  out.swap(dirty_inodes_);
  return out;
}

Result<LfsFileSystem::FileMap*> LfsFileSystem::GetFileMap(InodeNum ino) {
  // May run under the shared fs lock (ReadAt, Stat, lookups), so structural
  // access to the shard map is serialized by the shard mutex; std::map node
  // stability keeps the returned pointer valid after the mutex drops. Two
  // shared holders may both load the map from disk; emplace keeps the first.
  InodeTableShard& shard = TableShard(ino);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.files.find(ino);
    if (it != shard.files.end()) {
      return &it->second;
    }
  }
  LFS_ASSIGN_OR_RETURN(Inode inode, ReadInodeFromDisk(ino));
  LFS_ASSIGN_OR_RETURN(FileMap fm, LoadFileMap(inode));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [pos, inserted] = shard.files.emplace(ino, std::move(fm));
  (void)inserted;
  return &pos->second;
}

Result<LfsFileSystem::FileMap> LfsFileSystem::LoadFileMap(const Inode& inode) const {
  FileMap fm;
  fm.inode = inode;
  uint64_t nblocks = BlockCountFor(inode.size);
  fm.blocks.assign(nblocks, kNilBlock);
  for (uint64_t i = 0; i < std::min<uint64_t>(kNumDirect, nblocks); i++) {
    fm.blocks[i] = inode.direct[i];
  }
  if (nblocks > kNumDirect) {
    const uint32_t ppb = sb_.pointers_per_block();
    uint64_t ind_count = (nblocks - kNumDirect + ppb - 1) / ppb;
    fm.ind_addrs.assign(ind_count, kNilBlock);
    fm.ind_addrs[0] = inode.single_indirect;
    std::vector<uint8_t> block(sb_.block_size);
    if (ind_count > 1) {
      fm.dind_addr = inode.double_indirect;
      if (fm.dind_addr != kNilBlock) {
        LFS_RETURN_IF_ERROR(ReadLogBlock(fm.dind_addr, block));
        Decoder dec(block);
        for (uint64_t j = 1; j < ind_count; j++) {
          fm.ind_addrs[j] = dec.GetU64();
        }
      }
    }
    for (uint64_t i = 0; i < ind_count; i++) {
      if (fm.ind_addrs[i] == kNilBlock) {
        continue;  // a hole spanning a whole indirect range
      }
      LFS_RETURN_IF_ERROR(ReadLogBlock(fm.ind_addrs[i], block));
      Decoder dec(block);
      for (uint32_t j = 0; j < ppb; j++) {
        uint64_t fbn = kNumDirect + i * ppb + j;
        BlockNo addr = dec.GetU64();
        if (fbn < nblocks) {
          fm.blocks[fbn] = addr;
        }
      }
    }
  }
  return fm;
}

void LfsFileSystem::MarkIndirectDirty(FileMap* fm, uint64_t fbn) {
  if (fbn < kNumDirect) {
    fm->inode_dirty = true;  // direct pointers live in the inode itself
    return;
  }
  uint32_t ind = static_cast<uint32_t>((fbn - kNumDirect) / sb_.pointers_per_block());
  fm->dirty_ind.insert(ind);
  if (ind >= 1) {
    fm->dind_dirty = true;  // the double-indirect root must name the new copy
  }
  fm->inode_dirty = true;
}

Status LfsFileSystem::GrowFileMap(FileMap* fm, uint64_t new_block_count) {
  if (new_block_count <= fm->blocks.size()) {
    return OkStatus();
  }
  fm->blocks.resize(new_block_count, kNilBlock);
  if (new_block_count > kNumDirect) {
    const uint32_t ppb = sb_.pointers_per_block();
    uint64_t ind_count = (new_block_count - kNumDirect + ppb - 1) / ppb;
    if (ind_count > fm->ind_addrs.size()) {
      fm->ind_addrs.resize(ind_count, kNilBlock);
    }
  }
  return OkStatus();
}

Status LfsFileSystem::ShrinkFileMap(InodeNum ino, FileMap* fm, uint64_t new_block_count) {
  const uint32_t bs = sb_.block_size;
  for (uint64_t fbn = new_block_count; fbn < fm->blocks.size(); fbn++) {
    BlockNo addr = fm->blocks[fbn];
    SegNo seg = sb_.SegOf(addr);
    if (addr != kNilBlock && seg != kNilSeg) {
      usage_.SubLive(seg, bs);
    }
    EraseDirtyBlock(ino, fbn);
  }
  fm->blocks.resize(new_block_count);

  const uint32_t ppb = sb_.pointers_per_block();
  uint64_t new_ind =
      new_block_count > kNumDirect ? (new_block_count - kNumDirect + ppb - 1) / ppb : 0;
  for (uint64_t i = new_ind; i < fm->ind_addrs.size(); i++) {
    BlockNo addr = fm->ind_addrs[i];
    SegNo seg = sb_.SegOf(addr);
    if (addr != kNilBlock && seg != kNilSeg) {
      usage_.SubLive(seg, bs);
    }
    fm->dirty_ind.erase(static_cast<uint32_t>(i));
  }
  fm->ind_addrs.resize(new_ind, kNilBlock);
  if (new_ind <= 1 && fm->dind_addr != kNilBlock) {
    SegNo seg = sb_.SegOf(fm->dind_addr);
    if (seg != kNilSeg) {
      usage_.SubLive(seg, bs);
    }
    fm->dind_addr = kNilBlock;
    fm->dind_dirty = false;
  } else if (new_ind > 1) {
    fm->dind_dirty = true;
  }
  if (new_ind > 0) {
    fm->dirty_ind.insert(static_cast<uint32_t>(new_ind - 1));  // boundary re-serialize
  }
  fm->inode_dirty = true;
  return OkStatus();
}

Status LfsFileSystem::ReadFileBlock(FileMap* fm, InodeNum ino, uint64_t fbn,
                                    std::span<uint8_t> out) {
  if (CopyDirtyBlock(ino, fbn, out)) {
    return OkStatus();
  }
  if (fbn >= fm->blocks.size() || fm->blocks[fbn] == kNilBlock) {
    std::memset(out.data(), 0, out.size());  // hole
    return OkStatus();
  }
  return ReadLogBlock(fm->blocks[fbn], out);
}

Status LfsFileSystem::EnsureSpaceForWrite(uint64_t new_blocks) {
  // The log needs clean segments to make progress; refuse growth that would
  // leave the cleaner unable to regenerate them. This is the LFS analogue of
  // FFS's 90%-capacity limit (Section 3.5's cost/performance tradeoff): past
  // ~80% utilization with little variance, a cleaning pass's fixed overhead
  // (summaries, rewritten inodes and indirect blocks, the interleaved write
  // buffer) can exceed what it reclaims, so allocation stops before the
  // cleaner's profitable regime ends. The paper's production systems ran at
  // 11-75% utilization.
  uint64_t usable_segments = sb_.nsegments > cfg_.reserve_segments + 2
                                 ? sb_.nsegments - cfg_.reserve_segments - 2
                                 : 0;
  usable_segments = std::min<uint64_t>(usable_segments, sb_.nsegments * 4 / 5);
  uint64_t usable_bytes = usable_segments * uint64_t{sb_.segment_bytes()};
  uint64_t committed = usage_.TotalLiveBytes() +
                       (dirty_count_.load() + new_blocks) * uint64_t{sb_.block_size};
  if (committed > usable_bytes) {
    return NoSpaceError("filesystem full: " + std::to_string(committed) + " of " +
                        std::to_string(usable_bytes) + " usable bytes committed");
  }
  return OkStatus();
}

Status LfsFileSystem::CheckWritable() const {
  if (degraded_) {
    return ReadOnlyError(
        "filesystem is in degraded read-only mode (checkpoint media failure)");
  }
  if (read_only_) {
    return ReadOnlyError("filesystem is mounted read-only");
  }
  return OkStatus();
}

Status LfsFileSystem::WriteAt(InodeNum ino, uint64_t offset, std::span<const uint8_t> data) {
  if (cfg_.concurrent) {
    return WriteAtConcurrent(ino, offset, data);
  }
  std::unique_lock<std::shared_mutex> lock(fs_mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kWrite, device_, &clock_, ino);
  LFS_RETURN_IF_ERROR(CheckWritable());
  if (data.empty()) {
    return OkStatus();
  }
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError("cannot write directly to a directory");
  }
  const uint32_t bs = sb_.block_size;
  uint64_t end = offset + data.size();
  uint64_t old_blocks = fm->blocks.size();
  uint64_t new_blocks_total = std::max(old_blocks, BlockCountFor(end));
  LFS_RETURN_IF_ERROR(EnsureSpaceForWrite(new_blocks_total - old_blocks));
  LFS_RETURN_IF_ERROR(GrowFileMap(fm, new_blocks_total));

  // Mark the inode dirty up front: the incremental flushes below must never
  // consider this file clean (and thus evictable) mid-write.
  fm->inode.mtime = clock_.Tick();
  fm->inode_dirty = true;
  MarkInodeDirty(ino);

  uint64_t pos = offset;
  size_t src = 0;
  while (pos < end) {
    uint64_t fbn = pos / bs;
    uint32_t in_block = static_cast<uint32_t>(pos % bs);
    uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(bs - in_block, end - pos));
    std::vector<uint8_t> block(bs);
    if (chunk != bs) {
      // Partial-block write: read-modify-write against cache or disk.
      LFS_RETURN_IF_ERROR(ReadFileBlock(fm, ino, fbn, block));
    }
    std::memcpy(block.data() + in_block, data.data() + src, chunk);
    StoreDirtyBlock(ino, fbn, std::move(block));
    pos += chunk;
    src += chunk;
    fm->inode.size = std::max(fm->inode.size, pos);
    // Flush as the write buffer fills, so a single large write streams
    // through segment-sized batches (and the cleaner can keep pace) instead
    // of accumulating the whole request in memory.
    LFS_RETURN_IF_ERROR(MaybeFlush());
  }
  return OkStatus();
}

// Stages one bounded slice of a write. Caller holds fs_mu_ shared, the
// inode's stripe exclusive, and an open transaction (BeginOp).
Status LfsFileSystem::WriteAtSlice(InodeNum ino, uint64_t offset,
                                   std::span<const uint8_t> data) {
  LFS_RETURN_IF_ERROR(CheckWritable());
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError("cannot write directly to a directory");
  }
  const uint32_t bs = sb_.block_size;
  uint64_t end = offset + data.size();
  uint64_t old_blocks = fm->blocks.size();
  uint64_t new_blocks_total = std::max(old_blocks, BlockCountFor(end));
  LFS_RETURN_IF_ERROR(EnsureSpaceForWrite(new_blocks_total - old_blocks));
  LFS_RETURN_IF_ERROR(GrowFileMap(fm, new_blocks_total));

  fm->inode.mtime = clock_.Tick();
  fm->inode_dirty = true;
  MarkInodeDirty(ino);

  uint64_t pos = offset;
  size_t src = 0;
  while (pos < end) {
    uint64_t fbn = pos / bs;
    uint32_t in_block = static_cast<uint32_t>(pos % bs);
    uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(bs - in_block, end - pos));
    std::vector<uint8_t> block(bs);
    if (chunk != bs) {
      LFS_RETURN_IF_ERROR(ReadFileBlock(fm, ino, fbn, block));
    }
    std::memcpy(block.data() + in_block, data.data() + src, chunk);
    StoreDirtyBlock(ino, fbn, std::move(block));
    pos += chunk;
    src += chunk;
    fm->inode.size = std::max(fm->inode.size, pos);
  }
  return OkStatus();
}

Status LfsFileSystem::WriteAtConcurrent(InodeNum ino, uint64_t offset,
                                        std::span<const uint8_t> data) {
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kWrite, device_, &clock_, ino);
  if (data.empty()) {
    txn_.WaitNotCommitting();
    std::shared_lock<std::shared_mutex> lock(fs_mu_);
    return CheckWritable();
  }
  const uint32_t bs = sb_.block_size;
  // Slice large writes so one request never stages more than a buffer's
  // worth of blocks while holding a transaction open; the group commit
  // between slices is what lets a huge write stream through segment-sized
  // batches, exactly like the single-threaded MaybeFlush cadence.
  const uint64_t slice_bytes =
      std::max<uint64_t>(uint64_t{cfg_.write_buffer_blocks} * bs, bs);
  uint64_t pos = offset;
  size_t src = 0;
  while (src < data.size()) {
    uint64_t chunk = std::min<uint64_t>(slice_bytes, data.size() - src);
    // Worst-case log reservation: the slice's data blocks plus the indirect/
    // inode touch-up the flush will add for them.
    uint64_t reserve = ((pos % bs) + chunk + bs - 1) / bs + 2;
    txn_.WaitNotCommitting();
    txn_.BeginOp(reserve);
    Status st;
    {
      std::shared_lock<std::shared_mutex> lock(fs_mu_);
      InodeLockSet il(LockTable(), {ino}, /*exclusive=*/true);
      st = WriteAtSlice(ino, pos, data.subspan(src, chunk));
    }
    LFS_RETURN_IF_ERROR(EndMutation(st));
    pos += chunk;
    src += chunk;
  }
  return OkStatus();
}

Result<uint64_t> LfsFileSystem::ReadAt(InodeNum ino, uint64_t offset, std::span<uint8_t> out) {
  if (cfg_.concurrent) {
    // Lock-free committer gate: keeps a continuous reader stream from
    // starving a committer's exclusive acquisition.
    txn_.WaitNotCommitting();
  }
  std::shared_lock<std::shared_mutex> lock(fs_mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kRead, device_, &clock_, ino);
  InodeLockSet il(LockTable(), {ino}, /*exclusive=*/false);
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (offset >= fm->inode.size || out.empty()) {
    return uint64_t{0};
  }
  const uint32_t bs = sb_.block_size;
  uint64_t want = std::min<uint64_t>(out.size(), fm->inode.size - offset);

  // Fast path for block-aligned bulk reads: coalesce runs of consecutively
  // placed blocks into single sequential device I/Os. Files written
  // sequentially sit contiguously in the log, so this is where LFS gets its
  // FFS-matching sequential read bandwidth (Figure 9).
  uint64_t done = 0;
  while (done < want) {
    uint64_t pos = offset + done;
    uint64_t fbn = pos / bs;
    uint32_t in_block = static_cast<uint32_t>(pos % bs);
    uint32_t chunk = static_cast<uint32_t>(std::min<uint64_t>(bs - in_block, want - done));
    bool plain_disk_block = in_block == 0 && chunk == bs && !HaveDirtyBlock(ino, fbn) &&
                            fbn < fm->blocks.size() && fm->blocks[fbn] != kNilBlock;
    if (plain_disk_block) {
      // Extend the run of contiguous disk blocks.
      uint64_t run = 1;
      while (done + run * bs + bs <= want) {
        uint64_t next_fbn = fbn + run;
        if (next_fbn >= fm->blocks.size() || fm->blocks[next_fbn] != fm->blocks[fbn] + run ||
            HaveDirtyBlock(ino, next_fbn)) {
          break;
        }
        run++;
      }
      // One coalesced fetch for the whole run; blocks still sitting in the
      // writer buffer or the read cache are served in place, so the device
      // sees only the uncached stretches (each as a single sequential read).
      LFS_RETURN_IF_ERROR(ReadLogRun(fm->blocks[fbn], run, out.subspan(done, run * bs)));
      done += run * bs;
      continue;
    }
    std::vector<uint8_t> block(bs);
    LFS_RETURN_IF_ERROR(ReadFileBlock(fm, ino, fbn, block));
    std::memcpy(out.data() + done, block.data() + in_block, chunk);
    done += chunk;
  }
  imap_.SetAtime(ino, clock_.Tick());
  return want;
}

// Truncate body shared by both regimes. Single-threaded: caller holds fs_mu_
// exclusive. Concurrent: caller holds fs_mu_ shared, the inode's stripe
// exclusive, and an open transaction.
Status LfsFileSystem::TruncateLocked(InodeNum ino, uint64_t new_size) {
  LFS_RETURN_IF_ERROR(CheckWritable());
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError("cannot truncate a directory");
  }
  if (new_size == fm->inode.size) {
    return OkStatus();
  }
  const uint32_t bs = sb_.block_size;
  if (new_size < fm->inode.size) {
    LFS_RETURN_IF_ERROR(ShrinkFileMap(ino, fm, BlockCountFor(new_size)));
    if (new_size % bs != 0) {
      // Zero the tail of the boundary block so later extensions read zeros.
      uint64_t fbn = new_size / bs;
      std::vector<uint8_t> block(bs);
      LFS_RETURN_IF_ERROR(ReadFileBlock(fm, ino, fbn, block));
      std::memset(block.data() + new_size % bs, 0, bs - new_size % bs);
      StoreDirtyBlock(ino, fbn, std::move(block));
    }
    if (new_size == 0) {
      // Truncation to zero bumps the file version (Section 3.3): all old log
      // blocks of this file become recognizably dead to the cleaner.
      imap_.Restore(ino, [&] {
        ImapEntry e = imap_.Get(ino);
        e.version++;
        return e;
      }());
      fm->inode.version = imap_.Get(ino).version;
    }
  } else {
    LFS_RETURN_IF_ERROR(EnsureSpaceForWrite(0));
    LFS_RETURN_IF_ERROR(GrowFileMap(fm, BlockCountFor(new_size)));  // a hole
  }
  fm->inode.size = new_size;
  fm->inode.mtime = clock_.Tick();
  fm->inode_dirty = true;
  MarkInodeDirty(ino);
  return OkStatus();
}

Status LfsFileSystem::Truncate(InodeNum ino, uint64_t new_size) {
  if (cfg_.concurrent) {
    obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kTruncate, device_, &clock_, ino);
    txn_.WaitNotCommitting();
    txn_.BeginOp(4);  // at most the boundary block + metadata touch-up
    Status st;
    {
      std::shared_lock<std::shared_mutex> lock(fs_mu_);
      InodeLockSet il(LockTable(), {ino}, /*exclusive=*/true);
      st = TruncateLocked(ino, new_size);
    }
    return EndMutation(st);
  }
  std::unique_lock<std::shared_mutex> lock(fs_mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kTruncate, device_, &clock_, ino);
  Status st = TruncateLocked(ino, new_size);
  if (!st.ok()) {
    return st;
  }
  return MaybeFlush();
}

// --- flush machinery -----------------------------------------------------------

Status LfsFileSystem::FlushDirLog() {
  std::vector<DirLogRecord> records;
  {
    std::lock_guard<std::mutex> lk(dirlog_mu_);
    records.swap(pending_dirlog_);
  }
  if (records.empty()) {
    return OkStatus();
  }
  const uint32_t bs = sb_.block_size;
  const size_t header = 6;  // magic + count
  std::vector<DirLogRecord> batch;
  size_t batch_bytes = header;
  auto emit = [&]() -> Status {
    if (batch.empty()) {
      return OkStatus();
    }
    std::vector<uint8_t> block = EncodeDirLogBlock(batch, bs);
    SummaryEntry entry{BlockKind::kDirLog, kNilInode, 0, 0};
    // Dirlog blocks are never live for the cleaner: they only matter during
    // roll-forward over the post-checkpoint log tail.
    LFS_RETURN_IF_ERROR(writer_.Append(entry, std::move(block), clock_.Now(),
                                       /*live_bytes=*/0).status());
    batch.clear();
    batch_bytes = header;
    return OkStatus();
  };
  for (DirLogRecord& rec : records) {
    size_t rs = DirLogRecordEncodedSize(rec);
    if (batch_bytes + rs > bs) {
      LFS_RETURN_IF_ERROR(emit());
    }
    batch_bytes += rs;
    batch.push_back(std::move(rec));
  }
  return emit();
}

Status LfsFileSystem::FlushFileMetadata() {
  const uint32_t bs = sb_.block_size;
  const uint32_t ppb = sb_.pointers_per_block();
  const std::set<InodeNum> dirty = TakeDirtyInodes();

  // Pass 1: indirect blocks (and double-indirect roots), so the inodes
  // written in pass 2 carry final pointers.
  for (InodeNum ino : dirty) {
    FileMap* fmp = FindFileMap(ino);
    if (fmp == nullptr) {
      continue;  // deleted before the flush
    }
    FileMap& fm = *fmp;
    for (uint32_t ind : fm.dirty_ind) {
      std::vector<uint8_t> block;
      block.reserve(bs);
      Encoder enc(&block);
      for (uint32_t j = 0; j < ppb; j++) {
        uint64_t fbn = kNumDirect + uint64_t{ind} * ppb + j;
        enc.PutU64(fbn < fm.blocks.size() ? fm.blocks[fbn] : kNilBlock);
      }
      SummaryEntry entry{BlockKind::kIndirect, ino, ind, fm.inode.version};
      LFS_ASSIGN_OR_RETURN(BlockNo addr,
                           writer_.Append(entry, std::move(block), fm.inode.mtime, bs));
      BlockNo old = fm.ind_addrs[ind];
      SegNo old_seg = sb_.SegOf(old);
      if (old != kNilBlock && old_seg != kNilSeg) {
        usage_.SubLive(old_seg, bs);
      }
      fm.ind_addrs[ind] = addr;
    }
    fm.dirty_ind.clear();
    if (fm.dind_dirty && fm.ind_addrs.size() > 1) {
      std::vector<uint8_t> block;
      block.reserve(bs);
      Encoder enc(&block);
      for (uint32_t j = 0; j < ppb; j++) {
        uint64_t idx = uint64_t{j} + 1;
        enc.PutU64(idx < fm.ind_addrs.size() ? fm.ind_addrs[idx] : kNilBlock);
      }
      SummaryEntry entry{BlockKind::kDoubleIndirect, ino, 0, fm.inode.version};
      LFS_ASSIGN_OR_RETURN(BlockNo addr,
                           writer_.Append(entry, std::move(block), fm.inode.mtime, bs));
      BlockNo old = fm.dind_addr;
      SegNo old_seg = sb_.SegOf(old);
      if (old != kNilBlock && old_seg != kNilSeg) {
        usage_.SubLive(old_seg, bs);
      }
      fm.dind_addr = addr;
    }
    fm.dind_dirty = false;
    // Final pointers into the inode.
    for (uint32_t i = 0; i < kNumDirect; i++) {
      fm.inode.direct[i] = i < fm.blocks.size() ? fm.blocks[i] : kNilBlock;
    }
    fm.inode.single_indirect = fm.ind_addrs.empty() ? kNilBlock : fm.ind_addrs[0];
    fm.inode.double_indirect = fm.dind_addr;
  }

  // Pass 2: pack dirty inodes into inode blocks (several per block; Figure 1
  // shows inodes written adjacent to the data they describe).
  std::vector<InodeNum> todo;
  todo.reserve(dirty.size());
  for (InodeNum ino : dirty) {
    if (FindFileMap(ino) != nullptr) {
      todo.push_back(ino);
    }
  }
  const uint32_t per_block = sb_.inodes_per_block();
  for (size_t i = 0; i < todo.size(); i += per_block) {
    size_t group = std::min<size_t>(per_block, todo.size() - i);
    std::vector<uint8_t> block(bs, 0);
    uint64_t mtime = 0;
    for (size_t s = 0; s < group; s++) {
      FileMap& fm = *FindFileMap(todo[i + s]);
      fm.inode.EncodeTo(std::span<uint8_t>(block).subspan(s * kInodeSlotSize, kInodeSlotSize));
      mtime = std::max(mtime, fm.inode.mtime);
    }
    SummaryEntry entry{BlockKind::kInodeBlock, todo[i], 0, 0};
    LFS_ASSIGN_OR_RETURN(
        BlockNo addr,
        writer_.Append(entry, std::move(block), mtime,
                       static_cast<uint32_t>(group * kInodeSlotSize)));
    for (size_t s = 0; s < group; s++) {
      InodeNum ino = todo[i + s];
      ImapEntry old = imap_.Get(ino);
      SegNo old_seg = sb_.SegOf(old.inode_block);
      if (old.allocated() && old_seg != kNilSeg) {
        usage_.SubLive(old_seg, kInodeSlotSize);
      }
      imap_.SetLocation(ino, addr, static_cast<uint16_t>(s));
      FindFileMap(ino)->inode_dirty = false;
    }
  }
  return OkStatus();
}

Status LfsFileSystem::FlushDirtyData() {
  LFS_RETURN_IF_ERROR(MaybeClean());
  return FlushDirtyDataInner();
}

Status LfsFileSystem::FlushDirtyDataInner() {
  // Directory-operation-log records must reach the log before the directory
  // blocks and inodes they describe (Section 4.2).
  LFS_RETURN_IF_ERROR(FlushDirLog());

  const uint32_t bs = sb_.block_size;
  uint64_t flushed = 0;
  // Snapshot the batch so nothing that re-enters (checkpoints, cleaning) can
  // invalidate the iteration.
  auto batch = TakeDirtyBatch();
  // std::map ordering gives (ino, fbn) order: blocks of a file, and files
  // created together, land adjacently in the log — the paper's temporal
  // locality.
  for (auto& [key, data] : batch) {
    auto [ino, fbn] = key;
    LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
    SummaryEntry entry{BlockKind::kData, ino, fbn, fm->inode.version};
    LFS_ASSIGN_OR_RETURN(BlockNo addr,
                         writer_.Append(entry, std::move(data), fm->inode.mtime, bs));
    BlockNo old = fbn < fm->blocks.size() ? fm->blocks[fbn] : kNilBlock;
    SegNo old_seg = sb_.SegOf(old);
    if (old != kNilBlock && old_seg != kNilSeg) {
      usage_.SubLive(old_seg, bs);
    }
    fm->blocks[fbn] = addr;
    MarkIndirectDirty(fm, fbn);
    MarkInodeDirty(ino);
    flushed++;
  }
  LFS_RETURN_IF_ERROR(FlushFileMetadata());
  LFS_RETURN_IF_ERROR(writer_.Flush());
  bytes_since_checkpoint_ += flushed * bs;
  return OkStatus();
}

Status LfsFileSystem::MaybeFlush() {
  if (dirty_count_.load() < cfg_.write_buffer_blocks) {
    return OkStatus();
  }
  LFS_RETURN_IF_ERROR(FlushDirtyData());
  LFS_RETURN_IF_ERROR(MaybeAutoCheckpoint());
  TrimFileCache();
  return OkStatus();
}

void LfsFileSystem::TrimFileCache() {
  // Trim clean cached file maps and directories; dirty state always stays.
  // Candidates are visited in ascending inode order across shards — the
  // iteration order of the old unsharded map. Caller holds fs_mu_ exclusive.
  size_t total = LoadedFileMapCount();
  if (total <= kFileCacheCap) {
    return;
  }
  std::vector<InodeNum> inos;
  inos.reserve(total);
  for (InodeTableShard& shard : itable_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [ino, fm] : shard.files) {
      inos.push_back(ino);
    }
  }
  std::sort(inos.begin(), inos.end());
  for (InodeNum ino : inos) {
    InodeTableShard& shard = TableShard(ino);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.files.find(ino);
    if (it == shard.files.end()) {
      continue;
    }
    const FileMap& fm = it->second;
    bool clean = !fm.inode_dirty && fm.dirty_ind.empty() && !fm.dind_dirty &&
                 dirty_inodes_.count(ino) == 0 && ino != kRootInode &&
                 shard.dirs.find(ino) == shard.dirs.end();
    if (clean) {
      shard.files.erase(it);
      total--;
    }
    if (total <= kFileCacheCap / 2) {
      break;
    }
  }
}

Status LfsFileSystem::CommitBatch() {
  // Caller holds the committer token (txn_.EndOp returned true, or an
  // equivalent external BeginCommit): new BeginOp/reader arrivals are gated,
  // so the exclusive acquisition below only waits for in-flight shared
  // holders to drain.
  Status st;
  {
    std::unique_lock<std::shared_mutex> lock(fs_mu_);
    st = FlushDirtyData();
    if (st.ok()) {
      st = MaybeAutoCheckpoint();
    }
    TrimFileCache();
  }
  txn_.EndCommit();
  return st;
}

Status LfsFileSystem::EndMutation(Status st) {
  // The commit trigger is the staged-block count crossing the same
  // threshold the single-threaded MaybeFlush uses; EndOp also latches a
  // commit when the transaction's own space budget is exhausted.
  if (txn_.EndOp(dirty_count_.load() >= cfg_.write_buffer_blocks)) {
    Status cst = CommitBatch();
    if (st.ok()) {
      st = cst;
    }
  }
  MaybeKickCleaner();
  return st;
}

void LfsFileSystem::MaybeKickCleaner() {
  if (!cfg_.concurrent || !cleaner_running_.load()) {
    return;
  }
  // Lock-free peek at the clean-segment count; the cleaner thread re-checks
  // thresholds under the exclusive lock, so a stale read only costs a kick.
  if (usage_.clean_count() < EffectiveCleanLo()) {
    KickCleaner();
  }
}

Status LfsFileSystem::MaybeAutoCheckpoint() {
  if (cfg_.checkpoint_interval_bytes == 0 ||
      bytes_since_checkpoint_ < cfg_.checkpoint_interval_bytes) {
    return OkStatus();
  }
  return WriteCheckpointImpl();
}

}  // namespace lfs
