// The segment cleaner: mechanism (Section 3.3) and policies (Sections
// 3.4-3.6).
//
// Mechanism: read segments, identify live blocks via the segment summary +
// inode map version (the uid fast path) + inode pointers, and rewrite the
// live data to the head of the log. Policy: segments are chosen either
// greedily (least utilized first) or by cost-benefit
//
//     benefit/cost = (1-u) * age / (1+u)
//
// and live blocks are optionally sorted by age before rewriting, which
// segregates cold data into its own segments and produces the bimodal
// utilization distribution of Figure 6.

#include <algorithm>
#include <cassert>

#include "src/lfs/lfs.h"

namespace lfs {

std::vector<SegNo> LfsFileSystem::SelectSegmentsToClean(uint32_t max_segments) {
  uint64_t now = clock_.Now();
  std::vector<uint8_t> off_limits = ProtectedSegmentBitmap();

  // Bound the pass so the rewritten live data — plus the buffered user data
  // the pass's final flush will push out — is guaranteed to fit in the clean
  // segments we currently have (the cleaner must never wedge itself).
  uint64_t buffered = dirty_count_.load() * uint64_t{sb_.block_size};
  uint64_t budget = usage_.clean_count() > 1
                        ? (uint64_t{usage_.clean_count()} - 1) * sb_.segment_bytes()
                        : 0;
  budget = budget > buffered ? budget - buffered : 0;

  // Pop candidates from the selection index in exact score order; it holds
  // every kDirty segment, so only the per-candidate filters remain here.
  //
  // In multi-log mode nearly full victims are declined (see
  // multilog_victim_max_u) — with a no-wedge fallback: if the bar filtered
  // everything out, re-select without it rather than refuse to clean while
  // dead bytes exist.
  std::vector<SegNo> chosen;
  bool decline_full = writer_.num_logs() > 1 && cfg_.multilog_victim_max_u < 1.0;
  for (int attempt = 0; attempt < 2 && chosen.empty(); attempt++) {
    bool bar_active = decline_full && attempt == 0;
    uint64_t planned_live = 0;
    VictimIndex::Cursor cursor =
        usage_.SelectVictims(cfg_.policy == CleaningPolicy::kGreedy, now);
    for (SegNo seg = cursor.Next();
         seg != VictimIndex::kNone && chosen.size() < max_segments; seg = cursor.Next()) {
      if (off_limits[seg]) {
        continue;
      }
      // Never touch segments written after the last checkpoint: they are the
      // roll-forward log tail and must survive until the next checkpoint.
      if (usage_.write_seq(seg) >= ckpt_boundary_seq_) {
        continue;
      }
      if (bar_active && usage_.Utilization(seg) >= cfg_.multilog_victim_max_u) {
        continue;  // segregated-and-still-live: not worth re-copying
      }
      uint64_t live = usage_.Get(seg).live_bytes;
      if (planned_live + live > budget) {
        continue;  // try a smaller (likely emptier) candidate
      }
      planned_live += live;
      chosen.push_back(seg);
    }
    if (!bar_active) {
      break;
    }
  }

  if (cfg_.verify_selection &&
      chosen != SelectSegmentsToCleanReference(max_segments, now)) {
    stats_.selection_mismatches++;
  }
  return chosen;
}

std::vector<SegNo> LfsFileSystem::SelectSegmentsToCleanReference(uint32_t max_segments,
                                                                 uint64_t now) {
  std::vector<uint8_t> off_limits = ProtectedSegmentBitmap();
  struct Scored {
    SegNo seg;
    double score;
  };
  std::vector<Scored> scored;
  for (SegNo seg = 0; seg < sb_.nsegments; seg++) {
    const SegUsageEntry& e = usage_.Get(seg);
    if (e.state != SegState::kDirty || off_limits[seg]) {
      continue;
    }
    if (usage_.write_seq(seg) >= ckpt_boundary_seq_) {
      continue;
    }
    double u = usage_.Utilization(seg);
    if (u >= 1.0) {
      continue;  // nothing to reclaim
    }
    double score;
    if (cfg_.policy == CleaningPolicy::kGreedy) {
      score = 1.0 - u;  // least utilized first
    } else {
      double age = static_cast<double>(now - std::min(now, e.last_write));
      score = (1.0 - u) * age / (1.0 + u);
    }
    scored.push_back({seg, score});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.seg < b.seg;
  });

  uint64_t buffered = dirty_count_.load() * uint64_t{sb_.block_size};
  uint64_t budget = usage_.clean_count() > 1
                        ? (uint64_t{usage_.clean_count()} - 1) * sb_.segment_bytes()
                        : 0;
  budget = budget > buffered ? budget - buffered : 0;
  std::vector<SegNo> chosen;
  bool decline_full = writer_.num_logs() > 1 && cfg_.multilog_victim_max_u < 1.0;
  for (int attempt = 0; attempt < 2 && chosen.empty(); attempt++) {
    bool bar_active = decline_full && attempt == 0;
    uint64_t planned_live = 0;
    for (const Scored& s : scored) {
      if (chosen.size() >= max_segments) {
        break;
      }
      if (bar_active && usage_.Utilization(s.seg) >= cfg_.multilog_victim_max_u) {
        continue;
      }
      uint64_t live = usage_.Get(s.seg).live_bytes;
      if (planned_live + live > budget) {
        continue;  // try a smaller (likely emptier) candidate
      }
      planned_live += live;
      chosen.push_back(s.seg);
    }
    if (!bar_active) {
      break;
    }
  }
  return chosen;
}

Result<bool> LfsFileSystem::IsLiveBlock(const SummaryEntry& entry, BlockNo addr,
                                        std::span<const uint8_t> content) {
  switch (entry.kind) {
    case BlockKind::kData:
    case BlockKind::kIndirect:
    case BlockKind::kDoubleIndirect: {
      ImapEntry e = imap_.Get(entry.ino);
      // The uid fast path (Section 3.3): a version mismatch means the file
      // was deleted or truncated; the block is dead without reading inodes.
      if (!e.allocated() || e.version != entry.version) {
        return false;
      }
      LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(entry.ino));
      if (entry.kind == BlockKind::kData) {
        return entry.fbn < fm->blocks.size() && fm->blocks[entry.fbn] == addr;
      }
      if (entry.kind == BlockKind::kIndirect) {
        return entry.fbn < fm->ind_addrs.size() && fm->ind_addrs[entry.fbn] == addr;
      }
      return fm->dind_addr == addr;
    }
    case BlockKind::kInodeBlock: {
      for (uint32_t s = 0; s < sb_.inodes_per_block(); s++) {
        Result<Inode> ino = Inode::DecodeFrom(content.subspan(size_t{s} * kInodeSlotSize,
                                                              kInodeSlotSize));
        if (!ino.ok() || ino->ino == kNilInode) {
          continue;
        }
        ImapEntry e = imap_.Get(ino->ino);
        if (e.allocated() && e.inode_block == addr && e.slot == s) {
          return true;
        }
      }
      return false;
    }
    case BlockKind::kImapChunk:
      return entry.fbn < imap_.chunk_count() && imap_.chunk_addr(entry.fbn) == addr;
    case BlockKind::kUsageChunk:
      return entry.fbn < usage_.chunk_count() && usage_.chunk_addr(entry.fbn) == addr;
    case BlockKind::kDirLog:
      return false;  // only meaningful during roll-forward over the log tail
  }
  return false;
}

Status LfsFileSystem::MigrateLiveBlock(const SummaryEntry& entry, BlockNo addr,
                                       std::vector<uint8_t> content, SegNo drain_src) {
  const uint32_t bs = sb_.block_size;
  switch (entry.kind) {
    case BlockKind::kData: {
      LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(entry.ino));
      // The block keeps its original age so the age-sort and the segment's
      // last-write time continue to reflect the data's coldness. Surviving a
      // cleaning pass also moves it one log colder than its source segment
      // (the multi-log migration ladder; no-op with a single log): by being
      // alive when its segment was reclaimed the block has proven itself
      // longer-lived than its neighbors, and genuinely hot data dies before
      // it can ratchet twice.
      SegNo src_seg = static_cast<SegNo>((addr - sb_.seg_start) / sb_.segment_blocks);
      uint32_t cold_hint = 2 + usage_.Get(src_seg).log_id;
      LFS_ASSIGN_OR_RETURN(BlockNo new_addr, writer_.Append(entry, std::move(content),
                                                            entry.mtime, bs, cold_hint));
      fm->blocks[entry.fbn] = new_addr;
      MarkIndirectDirty(fm, entry.fbn);
      MarkInodeDirty(entry.ino);
      if (drain_src != kNilSeg) {
        // Partial compaction: the victim stays kDirty, so debit the moved
        // bytes now instead of relying on a wholesale clean transition.
        usage_.SubLive(drain_src, bs);
      }
      return OkStatus();
    }
    // Indirect, double-indirect, and inode blocks are rewritten by the
    // deferred FlushFileMetadata path, which debits their OLD addresses as it
    // appends the fresh copies — so a partial-compaction drain needs no extra
    // accounting for these kinds; drain_src is intentionally unused.
    case BlockKind::kIndirect: {
      LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(entry.ino));
      fm->dirty_ind.insert(static_cast<uint32_t>(entry.fbn));
      if (entry.fbn >= 1) {
        fm->dind_dirty = true;
      }
      fm->inode_dirty = true;
      MarkInodeDirty(entry.ino);
      return OkStatus();
    }
    case BlockKind::kDoubleIndirect: {
      LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(entry.ino));
      fm->dind_dirty = true;
      fm->inode_dirty = true;
      MarkInodeDirty(entry.ino);
      return OkStatus();
    }
    case BlockKind::kInodeBlock: {
      for (uint32_t s = 0; s < sb_.inodes_per_block(); s++) {
        Result<Inode> ino =
            Inode::DecodeFrom(std::span<const uint8_t>(content).subspan(
                size_t{s} * kInodeSlotSize, kInodeSlotSize));
        if (!ino.ok() || ino->ino == kNilInode) {
          continue;
        }
        ImapEntry e = imap_.Get(ino->ino);
        if (e.allocated() && e.inode_block == addr && e.slot == s) {
          LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino->ino));
          fm->inode_dirty = true;
          MarkInodeDirty(ino->ino);
        }
      }
      return OkStatus();
    }
    case BlockKind::kImapChunk: {
      uint32_t chunk = static_cast<uint32_t>(entry.fbn);
      std::vector<uint8_t> fresh(bs);
      imap_.EncodeChunk(chunk, fresh);
      SummaryEntry e{BlockKind::kImapChunk, kNilInode, chunk, 0};
      LFS_ASSIGN_OR_RETURN(BlockNo new_addr,
                           writer_.Append(e, std::move(fresh), clock_.Now(), bs));
      imap_.set_chunk_addr(chunk, new_addr);
      if (drain_src != kNilSeg) {
        usage_.SubLive(drain_src, bs);
      }
      return OkStatus();
    }
    case BlockKind::kUsageChunk: {
      uint32_t chunk = static_cast<uint32_t>(entry.fbn);
      // Partial compaction debits the victim BEFORE serializing, so if this
      // chunk covers the victim the logged copy carries the drained count.
      if (drain_src != kNilSeg) {
        usage_.SubLive(drain_src, bs);
      }
      // Pre-account the new copy so the serialized contents include it (see
      // FlushMetadataChunks).
      LFS_RETURN_IF_ERROR(writer_.PrepareAppend());
      usage_.AddLive(writer_.current_segment(), bs, clock_.Now());
      std::vector<uint8_t> fresh(bs);
      usage_.EncodeChunk(chunk, fresh);
      SummaryEntry e{BlockKind::kUsageChunk, kNilInode, chunk, 0};
      LFS_ASSIGN_OR_RETURN(BlockNo new_addr,
                           writer_.Append(e, std::move(fresh), clock_.Now(), /*live_bytes=*/0));
      usage_.set_chunk_addr(chunk, new_addr);
      usage_.MarkChunkDirty(chunk);
      return OkStatus();
    }
    case BlockKind::kDirLog:
      return OkStatus();
  }
  return OkStatus();
}

Status LfsFileSystem::CollectLiveBlocksWhole(SegNo seg, std::vector<LiveBlock>* out,
                                             bool* media_damage) {
  // The paper's conservative mechanism: read the segment in its entirety
  // (the chain of partial writes covers everything ever written to it).
  // Victims are always fully checkpointed, so a chain that stops at an
  // unreadable or CRC-failing block is media damage, not a torn log tail.
  ChainStatus chain_status;
  LFS_ASSIGN_OR_RETURN(std::vector<ParsedPartial> chain,
                       ParseSegmentChain(seg, 0, sb_.segment_blocks, /*min_seq=*/0,
                                         &chain_status));
  if (chain_status.io_error || chain_status.crc_error) {
    *media_damage = true;
  }
  for (ParsedPartial& p : chain) {
    stats_.clean_read_bytes += (1 + p.summary.entries.size()) * uint64_t{sb_.block_size};
    for (size_t i = 0; i < p.summary.entries.size(); i++) {
      const SummaryEntry& entry = p.summary.entries[i];
      BlockNo addr = sb_.SegmentBase(seg) + p.offset + 1 + i;
      std::span<const uint8_t> content(p.payload.data() + i * sb_.block_size, sb_.block_size);
      if (entry.kind == BlockKind::kDirLog) {
        continue;
      }
      LFS_ASSIGN_OR_RETURN(bool live, IsLiveBlock(entry, addr, content));
      if (live) {
        out->push_back(
            LiveBlock{entry, addr, std::vector<uint8_t>(content.begin(), content.end())});
      }
    }
  }
  return OkStatus();
}

Status LfsFileSystem::CollectLiveBlocksSparse(SegNo seg, std::vector<LiveBlock>* out,
                                              bool* media_damage) {
  // The paper's untried variant: read only the summary blocks, decide
  // liveness from the in-memory tables, then fetch just the live block runs.
  // Pays off when utilization is low; no payload-CRC validation is possible,
  // which is fine here because the cleaner only touches segments fully
  // written before the last checkpoint.
  const uint32_t bs = sb_.block_size;
  const BlockNo base = sb_.SegmentBase(seg);
  std::vector<uint8_t> sum_block(bs);
  std::vector<LiveBlock> candidates;  // content filled after the batched reads
  std::vector<size_t> inode_block_idx;  // candidates needing a content check

  uint32_t offset = 0;
  uint64_t prev_seq = 0;
  while (offset + 1 < sb_.segment_blocks) {
    if (!DeviceRead(base + offset, 1, sum_block).ok()) {
      // Unreadable summary: the rest of the chain is unreachable. Report
      // damage and let the caller quarantine; what was collected so far
      // still migrates.
      *media_damage = true;
      break;
    }
    stats_.clean_read_bytes += bs;
    Result<SegmentSummary> sum = SegmentSummary::DecodeFrom(sum_block);
    if (!sum.ok() || (prev_seq != 0 && sum->seq <= prev_seq) || sum->entries.empty() ||
        offset + 1 + sum->entries.size() > sb_.segment_blocks) {
      break;
    }
    prev_seq = sum->seq;
    for (size_t i = 0; i < sum->entries.size(); i++) {
      const SummaryEntry& entry = sum->entries[i];
      BlockNo addr = base + offset + 1 + i;
      if (entry.kind == BlockKind::kDirLog) {
        continue;
      }
      if (entry.kind == BlockKind::kInodeBlock) {
        // Liveness of an inode block is per-slot and needs the contents;
        // read it optimistically and re-check below.
        inode_block_idx.push_back(candidates.size());
        candidates.push_back(LiveBlock{entry, addr, {}});
        continue;
      }
      LFS_ASSIGN_OR_RETURN(bool live, IsLiveBlock(entry, addr, {}));
      if (live) {
        candidates.push_back(LiveBlock{entry, addr, {}});
      }
    }
    offset += 1 + static_cast<uint32_t>(sum->entries.size());
  }

  // Fetch the candidates in coalesced address runs (candidates are already
  // in ascending address order). A run that cannot be read even with retries
  // is media damage: drop those candidates (their blocks stay in place in
  // the soon-to-be-quarantined segment) and keep going.
  std::vector<uint8_t> drop(candidates.size(), 0);
  for (size_t i = 0; i < candidates.size();) {
    size_t j = i + 1;
    while (j < candidates.size() && candidates[j].addr == candidates[j - 1].addr + 1) {
      j++;
    }
    uint64_t run = j - i;
    std::vector<uint8_t> buf(run * bs);
    if (!DeviceRead(candidates[i].addr, run, buf).ok()) {
      *media_damage = true;
      for (size_t k = i; k < j; k++) {
        drop[k] = 1;
      }
      i = j;
      continue;
    }
    stats_.clean_read_bytes += run * bs;
    for (size_t k = i; k < j; k++) {
      candidates[k].content.assign(buf.begin() + static_cast<long>((k - i) * bs),
                                   buf.begin() + static_cast<long>((k - i + 1) * bs));
    }
    i = j;
  }

  // Resolve the deferred inode-block liveness checks now that we have data.
  for (size_t idx : inode_block_idx) {
    if (drop[idx]) {
      continue;  // unreadable; stays behind in the quarantined segment
    }
    LFS_ASSIGN_OR_RETURN(
        bool live, IsLiveBlock(candidates[idx].entry, candidates[idx].addr,
                               candidates[idx].content));
    if (!live) {
      drop[idx] = 1;
    }
  }
  for (size_t i = 0; i < candidates.size(); i++) {
    if (!drop[i]) {
      out->push_back(std::move(candidates[i]));
    }
  }
  return OkStatus();
}

Status LfsFileSystem::CollectLiveBlocksPartial(SegNo seg, uint32_t max_blocks,
                                               std::vector<LiveBlock>* out,
                                               bool* media_damage, bool* exhausted) {
  // Partial-segment compaction (Lomet & Luo): drain a high-utilization victim
  // a bounded slice at a time instead of round-tripping it. The walk is the
  // sparse path's summary-chain scan, but it resumes at the victim's compact
  // cursor, stops once ~max_blocks live blocks are gathered (rounding up to a
  // partial-write boundary so the cursor always lands between partials), and
  // tags every candidate with drain_src so migration debits the victim
  // exactly as bytes move. A fully walked chain (*exhausted) means every
  // remaining live block is in `out`; anything less leaves the victim kDirty
  // with its cursor advanced for the next pass.
  const uint32_t bs = sb_.block_size;
  const BlockNo base = sb_.SegmentBase(seg);
  std::vector<uint8_t> sum_block(bs);
  std::vector<LiveBlock> candidates;
  std::vector<size_t> inode_block_idx;  // candidates needing a content check
  *exhausted = false;

  uint32_t offset = usage_.compact_cursor(seg);
  uint64_t prev_seq = 0;
  while (offset + 1 < sb_.segment_blocks) {
    if (candidates.size() >= max_blocks) {
      break;  // slice full; cursor stays at this partial boundary
    }
    if (!DeviceRead(base + offset, 1, sum_block).ok()) {
      *media_damage = true;
      break;
    }
    stats_.clean_read_bytes += bs;
    Result<SegmentSummary> sum = SegmentSummary::DecodeFrom(sum_block);
    if (!sum.ok() || (prev_seq != 0 && sum->seq <= prev_seq) || sum->entries.empty() ||
        offset + 1 + sum->entries.size() > sb_.segment_blocks) {
      *exhausted = true;  // legitimate chain end
      break;
    }
    prev_seq = sum->seq;
    for (size_t i = 0; i < sum->entries.size(); i++) {
      const SummaryEntry& entry = sum->entries[i];
      BlockNo addr = base + offset + 1 + i;
      if (entry.kind == BlockKind::kDirLog) {
        continue;
      }
      if (entry.kind == BlockKind::kInodeBlock) {
        inode_block_idx.push_back(candidates.size());
        candidates.push_back(LiveBlock{entry, addr, {}, seg});
        continue;
      }
      LFS_ASSIGN_OR_RETURN(bool live, IsLiveBlock(entry, addr, {}));
      if (live) {
        candidates.push_back(LiveBlock{entry, addr, {}, seg});
      }
    }
    offset += 1 + static_cast<uint32_t>(sum->entries.size());
    if (offset + 1 >= sb_.segment_blocks) {
      *exhausted = true;
    }
  }
  // Remember where to resume. An exhausted walk resets to 0: if the victim
  // drains fully the clean transition clears the cursor anyway, and if it
  // somehow retains live bytes a future pass must rescan rather than skip
  // them forever.
  usage_.set_compact_cursor(seg, *exhausted ? 0 : offset);

  // Fetch the slice in coalesced address runs, exactly as the sparse path;
  // unreadable runs are media damage — those blocks stay behind in the
  // soon-to-be-quarantined victim.
  std::vector<uint8_t> drop(candidates.size(), 0);
  for (size_t i = 0; i < candidates.size();) {
    size_t j = i + 1;
    while (j < candidates.size() && candidates[j].addr == candidates[j - 1].addr + 1) {
      j++;
    }
    uint64_t run = j - i;
    std::vector<uint8_t> buf(run * bs);
    if (!DeviceRead(candidates[i].addr, run, buf).ok()) {
      *media_damage = true;
      for (size_t k = i; k < j; k++) {
        drop[k] = 1;
      }
      i = j;
      continue;
    }
    stats_.clean_read_bytes += run * bs;
    for (size_t k = i; k < j; k++) {
      candidates[k].content.assign(buf.begin() + static_cast<long>((k - i) * bs),
                                   buf.begin() + static_cast<long>((k - i + 1) * bs));
    }
    i = j;
  }

  for (size_t idx : inode_block_idx) {
    if (drop[idx]) {
      continue;
    }
    LFS_ASSIGN_OR_RETURN(
        bool live, IsLiveBlock(candidates[idx].entry, candidates[idx].addr,
                               candidates[idx].content));
    if (!live) {
      drop[idx] = 1;
    }
  }
  for (size_t i = 0; i < candidates.size(); i++) {
    if (!drop[i]) {
      out->push_back(std::move(candidates[i]));
    }
  }
  return OkStatus();
}

std::vector<SegNo> LfsFileSystem::SelectSegmentsToCleanAdaptive(
    uint32_t max_segments, uint64_t now, const GovernorDecision& decision) {
  std::vector<uint8_t> off_limits = ProtectedSegmentBitmap();
  uint64_t buffered = dirty_count_.load() * uint64_t{sb_.block_size};
  uint64_t budget = usage_.clean_count() > 1
                        ? (uint64_t{usage_.clean_count()} - 1) * sb_.segment_bytes()
                        : 0;
  budget = budget > buffered ? budget - buffered : 0;

  const uint32_t nlogs = writer_.num_logs();
  std::vector<SegNo> chosen;
  bool decline_full = nlogs > 1 && cfg_.multilog_victim_max_u < 1.0;
  for (int attempt = 0; attempt < 2 && chosen.empty(); attempt++) {
    bool bar_active = decline_full && attempt == 0;
    uint64_t planned_live = 0;
    // One cursor per log, each under that log's policy; candidates pop
    // round-robin across the logs so no population starves. A cursor walks
    // the whole index, so each log filters down to its own segments by the
    // persisted log_id tag. With one log this is exactly one cursor under
    // the governor's hot policy.
    std::vector<VictimIndex::Cursor> cursors;
    cursors.reserve(nlogs);
    for (uint32_t log = 0; log < nlogs; log++) {
      CleaningPolicy pol = log == 0 ? decision.hot_policy : decision.cold_policy;
      cursors.push_back(usage_.SelectVictims(pol == CleaningPolicy::kGreedy, now));
    }
    std::vector<uint8_t> done(nlogs, 0);
    uint32_t remaining = nlogs;
    while (remaining > 0 && chosen.size() < max_segments) {
      for (uint32_t log = 0; log < nlogs && chosen.size() < max_segments; log++) {
        if (done[log]) {
          continue;
        }
        for (;;) {
          SegNo seg = cursors[log].Next();
          if (seg == VictimIndex::kNone) {
            done[log] = 1;
            remaining--;
            break;
          }
          if (usage_.Get(seg).log_id != log || off_limits[seg]) {
            continue;
          }
          if (usage_.write_seq(seg) >= ckpt_boundary_seq_) {
            continue;
          }
          if (bar_active && usage_.Utilization(seg) >= cfg_.multilog_victim_max_u) {
            continue;
          }
          uint64_t live = usage_.Get(seg).live_bytes;
          if (planned_live + live > budget) {
            continue;  // try a smaller (likely emptier) candidate
          }
          planned_live += live;
          chosen.push_back(seg);
          break;
        }
      }
    }
    if (!bar_active) {
      break;
    }
  }
  return chosen;
}

Result<uint32_t> LfsFileSystem::CleanerPass() {
  if (in_cleaner_) {
    return uint32_t{0};
  }
  in_cleaner_ = true;
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kCleanerPass, device_, &clock_);
  auto cleanup = [this](auto status_or) {
    in_cleaner_ = false;
    writer_.set_cleaning(false);
    writer_.set_privileged(false);
    return status_or;
  };
  // The whole pass may dip into the reserve: it has to write out both the
  // migrated live data and the buffered user data that its inode flush
  // forces out (see below) before the sources are reclaimed.
  writer_.set_privileged(true);

  Status st = writer_.Flush();
  if (!st.ok()) {
    return cleanup(Result<uint32_t>(st));
  }

  // Cleaner QoS (ISSUE 10): meter cleaner copy I/O against a token bucket
  // refilled on the modeled disk clock. A discretionary pass (clean pool
  // above the critical floor) defers when the bucket is dry — foreground
  // writes keep the disk — but once the pool reaches the floor the pass runs
  // anyway and drives the bucket into deficit (paid off by future refills),
  // so throttling can never wedge the filesystem.
  if (qos_.enabled()) {
    qos_.Refill(device_->ModeledTime());
    if (!qos_.HasTokens()) {
      if (writer_.usable_clean_segments() > CriticalCleanFloor()) {
        stats_.qos_deferrals++;
        return cleanup(Result<uint32_t>(uint32_t{0}));
      }
      stats_.qos_escalations++;
    }
  }
  RelaxedDelta<uint64_t> qos_reads(stats_.clean_read_bytes);
  RelaxedDelta<uint64_t> qos_writes(stats_.clean_write_bytes);

  // Adaptive policy + partial compaction only engage when configured; the
  // legacy selection and accounting below are byte-for-byte unchanged
  // otherwise.
  GovernorDecision decision;
  const bool fine_grained = governor_.enabled() || cfg_.partial_compaction;
  if (fine_grained) {
    decision = governor_.Decide(usage_.UtilizationHistogram());
    stats_.governor_switches = governor_.switches();
  }
  std::vector<SegNo> chosen =
      governor_.enabled()
          ? SelectSegmentsToCleanAdaptive(cfg_.segments_per_pass, clock_.Now(), decision)
          : SelectSegmentsToClean(cfg_.segments_per_pass);
  if (chosen.empty()) {
    return cleanup(Result<uint32_t>(uint32_t{0}));
  }
  stats_.cleaner_passes++;
  LFS_TRACE(obs_.tracer(), obs::TraceEventType::kCleanerPassBegin, obs::OpType::kCleanerPass,
            clock_.Now(), chosen.size(), 0, device_->ModeledTime());
  writer_.set_cleaning(true);
  // Everything the cleaner (or anyone) writes from here on carries a
  // sequence number >= pass_start_seq; used below to detect source segments
  // that were recycled as cleaning output mid-pass.
  const uint64_t pass_start_seq = writer_.next_seq();

  // Per-victim plan: which ordering policy picked it (for the per-policy
  // Table 2 columns) and whether it is drained incrementally (partial) or
  // round-tripped whole.
  struct VictimPlan {
    SegNo seg = 0;
    uint64_t live_before = 0;
    double u_before = 0.0;
    CleaningPolicy policy = CleaningPolicy::kCostBenefit;
    bool partial = false;
    bool quarantined = false;
    uint64_t blocks_moved = 0;  // partial only: live blocks drained this pass
  };
  std::vector<VictimPlan> plans;
  plans.reserve(chosen.size());

  std::vector<LiveBlock> live_blocks;
  uint32_t quarantined_this_pass = 0;
  for (SegNo seg : chosen) {
    VictimPlan plan;
    plan.seg = seg;
    plan.live_before = usage_.Get(seg).live_bytes;
    plan.u_before = usage_.Utilization(seg);
    plan.policy = governor_.enabled()
                      ? (usage_.Get(seg).log_id == 0 ? decision.hot_policy
                                                     : decision.cold_policy)
                      : cfg_.policy;
    // Drain high-utilization victims incrementally: relocating a bounded run
    // of live blocks costs a fraction of a full round-trip, and the freed
    // bytes raise (1-u) for the next selection instead of being hostage to a
    // whole-segment copy.
    plan.partial = decision.partial && plan.live_before > 0 &&
                   plan.u_before >= cfg_.partial_compaction_min_u;
    if (plan.partial) {
      size_t before = live_blocks.size();
      bool media_damage = false;
      bool exhausted = false;
      Status collect = CollectLiveBlocksPartial(seg, cfg_.partial_compaction_max_blocks,
                                                &live_blocks, &media_damage, &exhausted);
      if (!collect.ok()) {
        return cleanup(Result<uint32_t>(collect));
      }
      plan.blocks_moved = live_blocks.size() - before;
      if (media_damage) {
        usage_.SetState(seg, SegState::kQuarantined);
        LFS_TRACE(obs_.tracer(), obs::TraceEventType::kQuarantine, obs::OpType::kCleanerPass,
                  clock_.Now(), seg, plan.live_before, device_->ModeledTime());
        stats_.segments_quarantined++;
        quarantined_this_pass++;
        plan.quarantined = true;
      }
      plans.push_back(plan);
      continue;
    }
    stats_.segments_cleaned++;
    if (plan.live_before == 0) {
      // An empty segment need not be read at all (Section 3.4: u=0 gives
      // write cost 1.0). Table 2 found more than half of cleaned segments
      // empty in production.
      stats_.segments_cleaned_empty++;
      stats_.segments_cleaned_by_policy[static_cast<size_t>(plan.policy)]++;
      usage_.SetState(seg, SegState::kClean);
      plans.push_back(plan);
      continue;
    }
    stats_.sum_cleaned_utilization += usage_.Utilization(seg);
    bool media_damage = false;
    Status collect = cfg_.cleaner_read_live_blocks_only
                         ? CollectLiveBlocksSparse(seg, &live_blocks, &media_damage)
                         : CollectLiveBlocksWhole(seg, &live_blocks, &media_damage);
    if (!collect.ok()) {
      return cleanup(Result<uint32_t>(collect));
    }
    if (media_damage) {
      // The victim has unreadable or corrupt blocks. Quarantine it: never
      // allocated, never picked again, its surviving live blocks left in
      // place. Whatever was collected before the damage still migrates, and
      // the pass continues with the remaining victims.
      usage_.SetState(seg, SegState::kQuarantined);
      LFS_TRACE(obs_.tracer(), obs::TraceEventType::kQuarantine, obs::OpType::kCleanerPass,
                clock_.Now(), seg, plan.live_before, device_->ModeledTime());
      stats_.segments_quarantined++;
      quarantined_this_pass++;
      plan.quarantined = true;
      stats_.segments_cleaned--;  // it was not reclaimed
      stats_.sum_cleaned_utilization -= usage_.Utilization(seg);
    }
    plans.push_back(plan);
  }

  // Migrate metadata blocks first (their order is irrelevant), then the data
  // blocks grouped by age (Section 3.4 policy question 4: "age sort") — this
  // is what segregates cold from hot data.
  std::stable_partition(live_blocks.begin(), live_blocks.end(), [](const LiveBlock& b) {
    return b.entry.kind != BlockKind::kData;
  });
  if (cfg_.age_sort) {
    std::stable_sort(live_blocks.begin(), live_blocks.end(),
                     [](const LiveBlock& a, const LiveBlock& b) {
                       bool a_data = a.entry.kind == BlockKind::kData;
                       bool b_data = b.entry.kind == BlockKind::kData;
                       if (a_data != b_data) {
                         return !a_data;  // keep metadata first
                       }
                       if (!a_data) {
                         return false;
                       }
                       return a.entry.mtime < b.entry.mtime;
                     });
  }
  for (LiveBlock& lb : live_blocks) {
    Status mig = MigrateLiveBlock(lb.entry, lb.addr, std::move(lb.content), lb.drain_src);
    if (!mig.ok()) {
      return cleanup(Result<uint32_t>(mig));
    }
  }

  // Rewrite the inodes and indirect blocks whose pointers moved (this also
  // covers migrated inode blocks) — via the FULL flush body, so any user
  // data still buffered for those files reaches the log BEFORE the inodes
  // that point at it. Writing just the inodes here would let a crash recover
  // files with their new size but nil block pointers (silent zeros). The
  // flush itself is ordinary traffic, not cleaning, for the write-cost
  // accounting.
  writer_.set_cleaning(false);
  st = FlushDirtyDataInner();
  if (!st.ok()) {
    return cleanup(Result<uint32_t>(st));
  }

  uint32_t reclaimed = 0;
  const uint64_t bs = sb_.block_size;
  for (const VictimPlan& plan : plans) {
    SegNo seg = plan.seg;
    // Mark a source segment clean only if nothing was written into it during
    // this pass: a source emptied early in the pass may already have been
    // recycled as the cleaner's own output segment, and marking it clean
    // again would discard the freshly migrated live data. Quarantined
    // sources are no longer kDirty, so they naturally stay quarantined.
    const bool untouched_since = usage_.Get(seg).state == SegState::kDirty &&
                                 usage_.write_seq(seg) < pass_start_seq;
    if (!plan.partial) {
      if (untouched_since) {
        usage_.SetState(seg, SegState::kClean);
      }
      if (!plan.quarantined) {
        reclaimed++;
        if (plan.live_before > 0) {
          stats_.full_compactions++;
          stats_.segments_cleaned_by_policy[static_cast<size_t>(plan.policy)]++;
          stats_.copy_bytes_by_policy[static_cast<size_t>(plan.policy)] +=
              plan.live_before;
        }
      }
      continue;
    }
    // Partial victim: account the drain, and reclaim it only if this pass's
    // slice emptied it (the deferred metadata debits from FlushDirtyDataInner
    // above have already landed, so live_bytes is exact here). A victim that
    // still holds live bytes stays kDirty — with its compact cursor advanced —
    // and remains selectable; a drained-but-rewritten victim is harvested by
    // the zero-live sweep at the next checkpoint instead.
    if (plan.quarantined) {
      continue;
    }
    stats_.partial_compactions++;
    stats_.partial_blocks_moved += plan.blocks_moved;
    stats_.copy_bytes_by_policy[static_cast<size_t>(plan.policy)] +=
        plan.blocks_moved * bs;
    if (untouched_since && usage_.Get(seg).live_bytes == 0) {
      usage_.SetState(seg, SegState::kClean);
      stats_.segments_cleaned++;
      stats_.segments_cleaned_by_policy[static_cast<size_t>(plan.policy)]++;
      stats_.sum_cleaned_utilization += plan.u_before;
      reclaimed++;
    }
  }
  // Charge the bucket with what this pass actually moved (summary + live
  // reads, migrated writes). Charging after the fact rather than reserving
  // up front keeps the mechanism simple; the deficit carries the error.
  if (qos_.enabled()) {
    uint64_t moved_bytes = qos_reads.delta() + qos_writes.delta();
    qos_.Charge(moved_bytes);
    stats_.qos_charged_bytes += moved_bytes;
  }
  LFS_TRACE(obs_.tracer(), obs::TraceEventType::kCleanerPassEnd, obs::OpType::kCleanerPass,
            clock_.Now(), reclaimed, live_blocks.size(), device_->ModeledTime());
  return cleanup(Result<uint32_t>(reclaimed));
}

uint32_t LfsFileSystem::EffectiveCleanLo() const {
  uint32_t cap = std::max<uint32_t>(2, sb_.nsegments / 16);
  return std::min(cfg_.clean_lo, cap);
}

uint32_t LfsFileSystem::EffectiveCleanHi() const {
  uint32_t cap = std::max<uint32_t>(EffectiveCleanLo() + 2, sb_.nsegments / 8);
  return std::min(cfg_.clean_hi, cap);
}

Status LfsFileSystem::MaybeClean() {
  if (debug_cleaner_) {
    fprintf(stderr, "[MaybeClean] in_cleaner=%d usable=%u lo=%u clean=%u zero_dirty=%u\n",
            (int)in_cleaner_, writer_.usable_clean_segments(), EffectiveCleanLo(),
            usage_.clean_count(), usage_.zero_live_dirty_count());
  }
  if (in_cleaner_ || writer_.usable_clean_segments() >= EffectiveCleanLo()) {
    return OkStatus();
  }
  // With a background cleaner running, the foreground write path only cleans
  // synchronously once clean segments fall to the critical floor; above it,
  // wake the cleaner thread and keep going (it will grab the exclusive lock
  // as soon as this operation releases it).
  if (cleaner_running_.load(std::memory_order_relaxed) &&
      std::this_thread::get_id() != cleaner_thread_.get_id() &&
      writer_.usable_clean_segments() >= CriticalCleanFloor()) {
    KickCleaner();
    return OkStatus();
  }
  // Harvest first: segments whose data has entirely died since the last
  // checkpoint can be reclaimed for free (no copying) once a checkpoint
  // advances the roll-forward boundary. A checkpoint costs a few blocks;
  // cleaning a half-live segment costs megabytes of copying — so when dead
  // segments exist, checkpoint before reaching for the expensive ones. The
  // incrementally maintained zero-live count makes this an O(1) check
  // (discounting the current segment, which is never harvestable).
  bool checkpointed = false;
  if (!in_checkpoint_ && !in_recovery_) {
    uint32_t harvestable = usage_.zero_live_dirty_count();
    for (uint32_t log = 0; log < writer_.num_logs(); log++) {
      SegNo seg = writer_.log_segment(log);
      if (seg == kNilSeg) {
        continue;
      }
      const SegUsageEntry& cur = usage_.Get(seg);
      if (cur.state == SegState::kDirty && cur.live_bytes == 0) {
        harvestable--;
      }
    }
    if (harvestable > 0) {
      checkpointed = true;
      LFS_RETURN_IF_ERROR(LightCheckpointImpl());
    }
    if (writer_.usable_clean_segments() >= EffectiveCleanLo()) {
      return OkStatus();
    }
  }
  // Clean until the high-water mark of clean segments is restored
  // (Section 3.4: start at a few tens, stop at 50-100).
  bool reclaimed_any = false;
  while (writer_.usable_clean_segments() < EffectiveCleanHi()) {
    LFS_ASSIGN_OR_RETURN(uint32_t reclaimed, CleanerPass());
    reclaimed_any = reclaimed_any || reclaimed > 0;
    if (reclaimed == 0) {
      if (debug_cleaner_) {
        uint32_t dirty_pre = 0, dirty_post = 0, zero = 0;
        for (SegNo seg = 0; seg < sb_.nsegments; seg++) {
          const SegUsageEntry& e = usage_.Get(seg);
          if (e.state != SegState::kDirty) continue;
          if (e.live_bytes == 0) zero++;
          if (usage_.write_seq(seg) >= ckpt_boundary_seq_) dirty_post++; else dirty_pre++;
        }
        fprintf(stderr, "[cleaner stuck] clean=%u usable=%u dirty_pre=%u dirty_post=%u zero=%u util=%.3f ckpted=%d\n",
                usage_.clean_count(), writer_.usable_clean_segments(), dirty_pre, dirty_post,
                zero, usage_.DiskUtilization(), (int)checkpointed);
      }
      // Segments written since the last checkpoint are off-limits to the
      // cleaner (they are the roll-forward tail). If that is all that is
      // left, take a checkpoint to advance the boundary and retry once.
      if (!checkpointed && !in_checkpoint_ && !in_recovery_) {
        checkpointed = true;
        LFS_RETURN_IF_ERROR(LightCheckpointImpl());
        continue;
      }
      break;  // nothing cleanable right now; let the writer use what exists
    }
  }
  // Checkpoint after a cleaning burst: it makes the reclaimed segments
  // durable as clean and keeps the recovery scan filter sound (post-
  // checkpoint writes only ever land in checkpoint-clean segments or the
  // active segment).
  if (reclaimed_any && !in_checkpoint_ && !in_recovery_) {
    LFS_RETURN_IF_ERROR(LightCheckpointImpl());
  }
  return OkStatus();
}

// --- background cleaner thread (cfg_.concurrent) -------------------------------
//
// The paper ran the Sprite LFS cleaner "in the background when the disk is
// idle"; here the thread sleeps until a foreground flush notices the clean
// pool dropping below the low watermark and kicks it. All actual cleaning
// runs under the exclusive fs lock, so the thread is a scheduler, not a new
// concurrency domain: the segment writer, usage table, and inode map see
// exactly one cleaner at a time.

uint32_t LfsFileSystem::CriticalCleanFloor() const {
  return std::max<uint32_t>(2, EffectiveCleanLo() / 2);
}

void LfsFileSystem::StartCleanerThread() {
  if (cleaner_running_.load()) {
    return;
  }
  cleaner_stop_ = false;
  cleaner_kick_ = false;
  cleaner_thread_ = std::thread([this] { CleanerThreadMain(); });
  cleaner_running_.store(true);
}

void LfsFileSystem::StopCleanerThread() {
  if (!cleaner_running_.exchange(false)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(cleaner_mu_);
    cleaner_stop_ = true;
  }
  cleaner_cv_.notify_one();
  cleaner_thread_.join();
}

void LfsFileSystem::KickCleaner() {
  if (!cleaner_running_.load(std::memory_order_relaxed)) {
    return;
  }
  // cleaner_mu_ is only ever held momentarily here and around the condition
  // flags in CleanerThreadMain — never while fs_mu_ is being acquired — so
  // kicking from under the exclusive fs lock cannot deadlock.
  {
    std::lock_guard<std::mutex> lock(cleaner_mu_);
    cleaner_kick_ = true;
  }
  cleaner_cv_.notify_one();
}

void LfsFileSystem::CleanerThreadMain() {
  std::unique_lock<std::mutex> lk(cleaner_mu_);
  for (;;) {
    cleaner_cv_.wait(lk, [this] { return cleaner_stop_ || cleaner_kick_; });
    if (cleaner_stop_) {
      return;
    }
    cleaner_kick_ = false;
    lk.unlock();  // released before fs_mu_: see the lock-order note in lfs.h
    {
      // Enter through the transaction gate so the pass never interleaves
      // with a half-staged batch (and cannot be starved by shared holders).
      ExclusiveSection sec(this);
      if (!read_only_ && !degraded_ &&
          writer_.usable_clean_segments() < EffectiveCleanLo()) {
        // Failures flip the filesystem into degraded read-only inside the
        // cleaning machinery itself; there is no caller to report to here.
        Status st = MaybeClean();
        if (!st.ok() && debug_cleaner_) {
          fprintf(stderr, "[cleaner thread] MaybeClean: %s\n",
                  st.ToString().c_str());
        }
      }
    }
    lk.lock();
  }
}

}  // namespace lfs
