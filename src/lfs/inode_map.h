// InodeMap: maps inode numbers to the current log location of each inode
// (Table 1 "Inode map", Section 3.1).
//
// The map is an array of ImapEntry indexed by inode number, divided into
// fixed-size chunks. The active portion is kept entirely in memory (the
// paper: "inode maps are compact enough to keep the active portions cached
// in main memory"); dirty chunks are written to the log at checkpoint time
// and the checkpoint region records every chunk's disk address.
//
// Entry versions implement the paper's file uid: the version is incremented
// whenever the file is deleted or truncated to length zero, so (ino,
// version) uniquely identifies file contents and lets the cleaner discard
// dead blocks without reading the inode (Section 3.3).
//
// Concurrency: the map synchronizes itself so the concurrent front-end can
// call it under the filesystem's *shared* lock. An internal reader-writer
// lock guards the entry array's structure (it grows with the allocation
// high-water mark); lookups and the atime bump take it shared, every
// structural mutator (Allocate/Free/SetLocation/Restore/LoadChunk) takes it
// exclusive. Dirty-chunk tracking is a lock-free relaxed bitmap — hot read
// paths mark atime chunks dirty without any mutex — harvested into an
// ordered list by the checkpoint path, which runs under the filesystem's
// exclusive lock.

#ifndef LFS_LFS_INODE_MAP_H_
#define LFS_LFS_INODE_MAP_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/lfs/layout.h"
#include "src/util/relaxed.h"
#include "src/util/result.h"

namespace lfs {

class InodeMap {
 public:
  InodeMap(uint32_t max_inodes, uint32_t entries_per_chunk)
      : max_inodes_(max_inodes),
        entries_per_chunk_(entries_per_chunk),
        chunk_addrs_((max_inodes + entries_per_chunk - 1) / entries_per_chunk, kNilBlock),
        chunk_dirty_(chunk_addrs_.size()) {}

  // --- lookups ---------------------------------------------------------------

  bool IsAllocated(InodeNum ino) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return ino < entries_.size() && entries_[ino].allocated();
  }
  // Entry for an inode (zero entry for never-allocated numbers).
  ImapEntry Get(InodeNum ino) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return ino < entries_.size() ? entries_[ino] : ImapEntry{};
  }
  uint32_t ninodes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return static_cast<uint32_t>(entries_.size());
  }
  uint32_t max_inodes() const { return max_inodes_; }
  uint64_t allocated_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return allocated_count_;
  }

  // --- mutation ----------------------------------------------------------------

  // Allocates a fresh inode number (reusing freed numbers first) and bumps
  // its version. Fails with NoInodes when the number space is exhausted.
  Result<InodeNum> Allocate();

  // Frees an inode number and bumps the version so stale log blocks carrying
  // the old (ino, version) uid are recognizably dead.
  void Free(InodeNum ino);

  // Records the new log location of an inode.
  void SetLocation(InodeNum ino, BlockNo inode_block, uint16_t slot);

  // Thread-safe under the filesystem's *shared* lock: the atime store is a
  // relaxed atomic into an entry that structurally exists (the caller just
  // read the inode), and the dirty mark is a relaxed bitmap store.
  void SetAtime(InodeNum ino, uint64_t atime);

  // Used by roll-forward: force an entry to a recovered state.
  void Restore(InodeNum ino, const ImapEntry& entry);

  // --- chunk persistence ---------------------------------------------------------
  //
  // The chunk-address table and dirty harvest are checkpoint-path state,
  // called under the filesystem's exclusive lock (or a quiesced mount path).

  uint32_t chunk_count() const { return static_cast<uint32_t>(chunk_addrs_.size()); }
  uint32_t chunk_of(InodeNum ino) const { return ino / entries_per_chunk_; }
  BlockNo chunk_addr(uint32_t chunk) const { return chunk_addrs_[chunk]; }
  void set_chunk_addr(uint32_t chunk, BlockNo addr) { chunk_addrs_[chunk] = addr; }

  // Chunks marked dirty since the last harvest, in ascending order.
  std::vector<uint32_t> dirty_chunks() const {
    std::vector<uint32_t> out;
    for (uint32_t c = 0; c < chunk_dirty_.size(); c++) {
      if (chunk_dirty_[c].load() != 0) {
        out.push_back(c);
      }
    }
    return out;
  }
  void ClearDirty() {
    for (auto& d : chunk_dirty_) {
      d.store(0);
    }
  }
  void ClearDirtyChunk(uint32_t chunk) { chunk_dirty_[chunk].store(0); }

  // Serializes one chunk into a block-sized buffer.
  void EncodeChunk(uint32_t chunk, std::span<uint8_t> block) const;
  // Loads one chunk from disk contents; extends the in-memory array.
  void LoadChunk(uint32_t chunk, std::span<const uint8_t> block, uint32_t ninodes_limit);

  // Rebuilds the free list after loading chunks (mount / recovery).
  void RebuildFreeList();

 private:
  void EnsureSize(InodeNum ino);  // caller holds mu_ exclusive
  void MarkDirty(InodeNum ino) { chunk_dirty_[chunk_of(ino)].store(1); }

  uint32_t max_inodes_;
  uint32_t entries_per_chunk_;
  mutable std::shared_mutex mu_;        // entry-array structure + free list
  std::vector<ImapEntry> entries_;      // grows to the high-water mark
  std::vector<InodeNum> free_list_;     // freed numbers below the high-water mark
  std::vector<BlockNo> chunk_addrs_;    // current log address of each chunk
  std::vector<Relaxed<uint8_t>> chunk_dirty_;  // lock-free dirty bitmap
  uint64_t allocated_count_ = 0;
};

// InodeLockTable: striped per-inode reader-writer locks for the concurrent
// front-end. The stripe for an inode is ino % nstripes; colliding inodes
// simply share a stripe (serialization, never incorrectness). Operations
// that need several inodes (rename, link, unlink-into, ...) must acquire
// stripes in ascending stripe order — InodeLockSet does exactly that — so
// two ops locking overlapping inode sets can never deadlock.
class InodeLockTable {
 public:
  explicit InodeLockTable(uint32_t stripes) {
    // Power-of-two stripe count so StripeOf is a mask.
    nstripes_ = 1;
    while (nstripes_ < stripes && nstripes_ < (1u << 16)) {
      nstripes_ <<= 1;
    }
    stripes_ = std::make_unique<std::shared_mutex[]>(nstripes_);
  }

  uint32_t StripeOf(InodeNum ino) const { return static_cast<uint32_t>(ino) & (nstripes_ - 1); }
  std::shared_mutex& Stripe(uint32_t s) { return stripes_[s]; }
  uint32_t nstripes() const { return nstripes_; }

 private:
  uint32_t nstripes_;
  std::unique_ptr<std::shared_mutex[]> stripes_;
};

// RAII guard over up to four inode stripes (rename touches at most
// from-dir, to-dir, the moved inode, and a replaced target). Stripes are
// deduplicated and locked in ascending index order; all shared or all
// exclusive. A null table makes the guard a no-op, which is how the
// single-threaded regime compiles the locking out of its paths.
class InodeLockSet {
 public:
  InodeLockSet() = default;
  InodeLockSet(InodeLockTable* table, std::initializer_list<InodeNum> inos, bool exclusive)
      : table_(table), exclusive_(exclusive) {
    if (table_ == nullptr) {
      return;
    }
    for (InodeNum ino : inos) {
      uint32_t s = table_->StripeOf(ino);
      bool dup = false;
      for (int i = 0; i < n_; i++) {
        dup = dup || stripes_[i] == s;
      }
      if (!dup) {
        stripes_[n_++] = s;
      }
    }
    std::sort(stripes_, stripes_ + n_);
    for (int i = 0; i < n_; i++) {
      if (exclusive_) {
        table_->Stripe(stripes_[i]).lock();
      } else {
        table_->Stripe(stripes_[i]).lock_shared();
      }
    }
    locked_ = true;
  }

  InodeLockSet(InodeLockSet&& o) noexcept { *this = std::move(o); }
  InodeLockSet& operator=(InodeLockSet&& o) noexcept {
    Release();
    table_ = o.table_;
    exclusive_ = o.exclusive_;
    n_ = o.n_;
    locked_ = o.locked_;
    for (int i = 0; i < n_; i++) {
      stripes_[i] = o.stripes_[i];
    }
    o.table_ = nullptr;
    o.locked_ = false;
    o.n_ = 0;
    return *this;
  }
  InodeLockSet(const InodeLockSet&) = delete;
  InodeLockSet& operator=(const InodeLockSet&) = delete;

  ~InodeLockSet() { Release(); }

  void Release() {
    if (table_ == nullptr || !locked_) {
      return;
    }
    for (int i = n_ - 1; i >= 0; i--) {
      if (exclusive_) {
        table_->Stripe(stripes_[i]).unlock();
      } else {
        table_->Stripe(stripes_[i]).unlock_shared();
      }
    }
    locked_ = false;
  }

 private:
  InodeLockTable* table_ = nullptr;
  bool exclusive_ = false;
  bool locked_ = false;
  int n_ = 0;
  uint32_t stripes_[4] = {0, 0, 0, 0};
};

}  // namespace lfs

#endif  // LFS_LFS_INODE_MAP_H_
