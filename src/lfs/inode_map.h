// InodeMap: maps inode numbers to the current log location of each inode
// (Table 1 "Inode map", Section 3.1).
//
// The map is an array of ImapEntry indexed by inode number, divided into
// fixed-size chunks. The active portion is kept entirely in memory (the
// paper: "inode maps are compact enough to keep the active portions cached
// in main memory"); dirty chunks are written to the log at checkpoint time
// and the checkpoint region records every chunk's disk address.
//
// Entry versions implement the paper's file uid: the version is incremented
// whenever the file is deleted or truncated to length zero, so (ino,
// version) uniquely identifies file contents and lets the cleaner discard
// dead blocks without reading the inode (Section 3.3).

#ifndef LFS_LFS_INODE_MAP_H_
#define LFS_LFS_INODE_MAP_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "src/lfs/layout.h"
#include "src/util/result.h"

namespace lfs {

class InodeMap {
 public:
  InodeMap(uint32_t max_inodes, uint32_t entries_per_chunk)
      : max_inodes_(max_inodes),
        entries_per_chunk_(entries_per_chunk),
        chunk_addrs_((max_inodes + entries_per_chunk - 1) / entries_per_chunk, kNilBlock) {}

  // --- lookups ---------------------------------------------------------------

  bool IsAllocated(InodeNum ino) const {
    return ino < entries_.size() && entries_[ino].allocated();
  }
  // Entry for an inode (zero entry for never-allocated numbers).
  ImapEntry Get(InodeNum ino) const {
    return ino < entries_.size() ? entries_[ino] : ImapEntry{};
  }
  uint32_t ninodes() const { return static_cast<uint32_t>(entries_.size()); }
  uint32_t max_inodes() const { return max_inodes_; }
  uint64_t allocated_count() const { return allocated_count_; }

  // --- mutation ----------------------------------------------------------------

  // Allocates a fresh inode number (reusing freed numbers first) and bumps
  // its version. Fails with NoInodes when the number space is exhausted.
  Result<InodeNum> Allocate();

  // Frees an inode number and bumps the version so stale log blocks carrying
  // the old (ino, version) uid are recognizably dead.
  void Free(InodeNum ino);

  // Records the new log location of an inode.
  void SetLocation(InodeNum ino, BlockNo inode_block, uint16_t slot);

  // Thread-safe under the filesystem's *shared* lock: the atime store is a
  // relaxed atomic and the dirty-chunk insert is serialized by atime_mu_, so
  // concurrent readers may bump access times without the exclusive lock.
  // Every other mutator still requires exclusive ownership.
  void SetAtime(InodeNum ino, uint64_t atime);

  // Used by roll-forward: force an entry to a recovered state.
  void Restore(InodeNum ino, const ImapEntry& entry);

  // --- chunk persistence ---------------------------------------------------------

  uint32_t chunk_count() const { return static_cast<uint32_t>(chunk_addrs_.size()); }
  uint32_t chunk_of(InodeNum ino) const { return ino / entries_per_chunk_; }
  BlockNo chunk_addr(uint32_t chunk) const { return chunk_addrs_[chunk]; }
  void set_chunk_addr(uint32_t chunk, BlockNo addr) { chunk_addrs_[chunk] = addr; }

  const std::set<uint32_t>& dirty_chunks() const { return dirty_chunks_; }
  void ClearDirty() { dirty_chunks_.clear(); }
  void ClearDirtyChunk(uint32_t chunk) { dirty_chunks_.erase(chunk); }

  // Serializes one chunk into a block-sized buffer.
  void EncodeChunk(uint32_t chunk, std::span<uint8_t> block) const;
  // Loads one chunk from disk contents; extends the in-memory array.
  void LoadChunk(uint32_t chunk, std::span<const uint8_t> block, uint32_t ninodes_limit);

  // Rebuilds the free list after loading chunks (mount / recovery).
  void RebuildFreeList();

 private:
  void EnsureSize(InodeNum ino);
  void MarkDirty(InodeNum ino) { dirty_chunks_.insert(chunk_of(ino)); }

  uint32_t max_inodes_;
  uint32_t entries_per_chunk_;
  std::vector<ImapEntry> entries_;      // grows to the high-water mark
  std::vector<InodeNum> free_list_;     // freed numbers below the high-water mark
  std::vector<BlockNo> chunk_addrs_;    // current log address of each chunk
  std::set<uint32_t> dirty_chunks_;
  std::mutex atime_mu_;  // orders concurrent SetAtime dirty-chunk inserts
  uint64_t allocated_count_ = 0;
};

}  // namespace lfs

#endif  // LFS_LFS_INODE_MAP_H_
