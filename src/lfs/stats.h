// Statistics the filesystem keeps about its own log traffic and cleaning
// activity. These counters are the direct source of the paper's evaluation
// numbers: write cost (formula (1) measured, Table 2), the fraction of
// cleaned segments that were empty, the average utilization of cleaned
// segments, and the log-bandwidth composition by block type (Table 4).

#ifndef LFS_LFS_STATS_H_
#define LFS_LFS_STATS_H_

#include <array>
#include <cstdint>

#include "src/util/relaxed.h"

namespace lfs {

// Counters are Relaxed<> atomics so concurrent front-end threads (and the
// background cleaner) can bump them without data races; the struct keeps
// value semantics (tests snapshot and subtract it) via Relaxed's copyability.
struct LfsStats {
  // Payload bytes appended to the log, by BlockKind (index = kind value).
  std::array<Relaxed<uint64_t>, 8> log_bytes_by_kind{};
  Relaxed<uint64_t> summary_bytes = 0;        // segment summary blocks written
  Relaxed<uint64_t> checkpoint_bytes = 0;     // checkpoint region writes (fixed area)

  // New data vs cleaning traffic. "New" is everything appended outside a
  // cleaning pass (file data, indirect blocks, inodes, imap/usage chunks,
  // dirlog); "clean" is live data rewritten by the cleaner.
  Relaxed<uint64_t> new_payload_bytes = 0;
  Relaxed<uint64_t> new_data_bytes = 0;       // kData subset of new_payload_bytes
  Relaxed<uint64_t> clean_write_bytes = 0;
  Relaxed<uint64_t> clean_read_bytes = 0;     // whole segments read by the cleaner

  // Cleaning pass statistics (Table 2 columns).
  Relaxed<uint64_t> cleaner_passes = 0;
  Relaxed<uint64_t> segments_cleaned = 0;
  Relaxed<uint64_t> segments_cleaned_empty = 0;  // reclaimed with zero live bytes
  Relaxed<double> sum_cleaned_utilization = 0.0; // over non-empty cleaned segments
  Relaxed<uint64_t> checkpoints = 0;
  Relaxed<uint64_t> rollforward_partials = 0;    // partial writes replayed at recovery
  Relaxed<uint64_t> rollforward_scrubbed = 0;    // stale summaries zeroed at recovery
  Relaxed<uint64_t> selection_mismatches = 0;    // indexed vs reference victim order
                                                 // divergences (verify_selection)

  // Media-fault handling (robustness pass).
  Relaxed<uint64_t> io_retries = 0;             // device I/O attempts beyond the first
  Relaxed<uint64_t> io_retry_failures = 0;      // I/Os that failed even after retries
  Relaxed<uint64_t> read_crc_failures = 0;      // corrupt blocks caught on the read path
  Relaxed<uint64_t> segments_quarantined = 0;   // victims abandoned to kQuarantined
  Relaxed<uint64_t> checkpoint_fallbacks = 0;   // CR writes diverted to the alternate region
  Relaxed<uint64_t> superblock_fallbacks = 0;   // mounts served by the backup superblock
  Relaxed<uint64_t> degraded_entries = 0;       // transitions into degraded read-only mode

  // Flash-era backend. Segments whose free was made durable by a checkpoint
  // and then discarded via BlockDevice::Trim (cfg.trim_on_free).
  Relaxed<uint64_t> segments_trimmed = 0;

  // Fine-grained reclamation (adaptive governor + partial compaction + QoS).
  // Victims reclaimed under each ordering policy (index = CleaningPolicy
  // value: 0 greedy, 1 cost-benefit), and the live bytes rewritten on their
  // behalf — the per-policy Table 2 columns.
  std::array<Relaxed<uint64_t>, 2> segments_cleaned_by_policy{};
  std::array<Relaxed<uint64_t>, 2> copy_bytes_by_policy{};
  Relaxed<uint64_t> partial_compactions = 0;   // victims drained incrementally
  Relaxed<uint64_t> full_compactions = 0;      // victims round-tripped whole
  Relaxed<uint64_t> partial_blocks_moved = 0;  // live blocks relocated by drains
  Relaxed<uint64_t> governor_switches = 0;     // hot-policy changes (adaptive)
  Relaxed<uint64_t> qos_deferrals = 0;         // passes deferred on an empty bucket
  Relaxed<uint64_t> qos_escalations = 0;       // passes run in deficit (critical floor)
  Relaxed<uint64_t> qos_charged_bytes = 0;     // cleaner copy bytes metered

  uint64_t total_log_written() const {
    uint64_t payload = 0;
    for (uint64_t b : log_bytes_by_kind) {
      payload += b;
    }
    return payload + summary_bytes;
  }

  // The paper's write cost: total bytes moved to and from the disk divided
  // by the bytes of new data written (Section 3.4). 0 when nothing written.
  double WriteCost() const {
    uint64_t new_bytes = new_payload_bytes;
    if (new_bytes == 0) {
      return 0.0;
    }
    uint64_t moved = total_log_written() + clean_read_bytes;
    return static_cast<double>(moved) / static_cast<double>(new_bytes);
  }

  // Average utilization of non-empty cleaned segments (Table 2 "u Avg").
  double AvgCleanedUtilization() const {
    uint64_t nonempty = segments_cleaned - segments_cleaned_empty;
    return nonempty == 0 ? 0.0 : sum_cleaned_utilization / static_cast<double>(nonempty);
  }

  double EmptyCleanedFraction() const {
    return segments_cleaned == 0
               ? 0.0
               : static_cast<double>(segments_cleaned_empty) /
                     static_cast<double>(segments_cleaned);
  }
};

}  // namespace lfs

#endif  // LFS_LFS_STATS_H_
