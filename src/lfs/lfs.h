// LfsFileSystem: the log-structured filesystem (the paper's contribution).
//
// All modifications — file data, indirect blocks, inodes, directory data,
// inode-map and segment-usage chunks, and directory-operation-log records —
// are appended to a segmented log through SegmentWriter. Reading uses the
// inode map to locate inodes and ordinary FFS-style inode/indirect indexing
// from there (Section 3.1), so read cost matches a conventional filesystem.
//
// Dirty data is buffered in memory and written in large batches (Section 2);
// the segment cleaner (Sections 3.3-3.6) regenerates clean segments using a
// pluggable policy (greedy or cost-benefit with age-sorting); crash recovery
// (Section 4) uses alternating checkpoint regions plus roll-forward over the
// log tail, with a directory operation log restoring directory/inode
// consistency.
//
// Implementation is split across:
//   lfs.cpp            construction, mkfs/mount/unmount, checkpointing
//   lfs_io.cpp         file maps, read/write/truncate, flush machinery
//   lfs_namespace.cpp  directories: lookup/create/unlink/rename/readdir
//   lfs_cleaner.cpp    segment cleaning mechanism and policies
//   lfs_recovery.cpp   roll-forward and log-tail scanning

#ifndef LFS_LFS_LFS_H_
#define LFS_LFS_LFS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/disk/block_device.h"
#include "src/fs/clock.h"
#include "src/fs/file_system.h"
#include "src/lfs/cleaner_governor.h"
#include "src/lfs/cleaner_qos.h"
#include "src/lfs/config.h"
#include "src/lfs/inode_map.h"
#include "src/lfs/layout.h"
#include "src/lfs/seg_usage.h"
#include "src/lfs/segment_writer.h"
#include "src/lfs/stats.h"
#include "src/obs/obs.h"
#include "src/util/relaxed.h"
#include "src/util/retry.h"

namespace lfs {

struct MountOptions {
  // Scan the log tail after the last checkpoint and recover recently written
  // data (Section 4.2). With false, data after the last checkpoint is
  // discarded, as on the paper's production systems.
  bool roll_forward = true;

  // Refuse every mutation (forensics / inspection mounts). Roll-forward is
  // still performed in memory so reads see the recovered state, but nothing
  // is written back until a read-write mount.
  bool read_only = false;
};

// How writable the filesystem currently is. kDegradedReadOnly is entered at
// runtime when the media can no longer persist a checkpoint (both regions
// failing); reads keep working but every mutation is refused, so the
// on-disk image stays exactly as of the last successful checkpoint.
enum class MountState {
  kReadWrite,
  kReadOnly,          // requested via MountOptions
  kDegradedReadOnly,  // forced by media failure
};

// Snapshot of filesystem-wide health/capacity (statfs analogue).
struct LfsStatFs {
  uint64_t total_bytes = 0;        // capacity of the segment area
  uint64_t live_bytes = 0;
  uint32_t nsegments = 0;
  uint32_t clean_segments = 0;
  uint32_t quarantined_segments = 0;
  MountState state = MountState::kReadWrite;
};

class LfsFileSystem : public FileSystem {
 public:
  // Formats the device and returns a mounted filesystem with an empty root
  // directory.
  static Result<std::unique_ptr<LfsFileSystem>> Mkfs(BlockDevice* device, const LfsConfig& cfg);

  // Mounts an existing filesystem; runs crash recovery if the log tail
  // extends past the newest checkpoint.
  static Result<std::unique_ptr<LfsFileSystem>> Mount(BlockDevice* device, const LfsConfig& cfg,
                                                      const MountOptions& opts = MountOptions{});

  // Stops the background cleaner thread (if running) before tearing down.
  ~LfsFileSystem() override;
  LfsFileSystem(const LfsFileSystem&) = delete;
  LfsFileSystem& operator=(const LfsFileSystem&) = delete;

  // --- threading model -----------------------------------------------------------
  //
  // Two regimes, selected by cfg.concurrent:
  //
  // Single-threaded (concurrent == false): mutations take fs_mu_ exclusive,
  // reads shared, exactly as before the group-commit work — every path,
  // flush cadence, and on-disk byte is unchanged, keeping the figure
  // benches deterministic. The per-inode lock guards compile to no-ops.
  //
  // Concurrent (concurrent == true): fs_mu_ is demoted to protecting only
  // truly global transitions — batch commit, checkpointing, segment
  // allocation/cleaning, mount/unmount — and *every* file operation runs
  // under it SHARED. Isolation between operations comes from striped
  // per-inode reader-writer locks (ilocks_): readers take their inode's
  // stripe shared, mutators exclusive, and multi-inode ops (rename, link)
  // acquire all involved stripes in ascending stripe order (InodeLockSet)
  // so overlapping ops cannot deadlock. Mutators additionally join the open
  // group-commit transaction (txn_, xv6-style BeginOp/EndOp): they reserve
  // worst-case log space, stage dirty blocks into sharded write buffers,
  // and the last op out of a transaction whose buffer crossed the flush
  // threshold becomes the committer — CommitBatch() takes fs_mu_ exclusive
  // and flushes the whole batch while the next transaction opens. Readers
  // poll txn_.WaitNotCommitting() before locking so a committer is never
  // starved. Shared in-memory state is sharded or internally synchronized:
  // the inode table (loaded FileMaps/DirCaches) and the dirty-block buffer
  // are sharded by inode, the inode map and segment-usage table carry
  // internal locks, and counters are relaxed atomics. Lock order:
  //
  //   txn_ gate (never waited on while holding any lock below)
  //   cleaner_mu_ (never held while acquiring fs_mu_)
  //   fs_mu_  ->  inode stripes (ascending) ->  itable/dirty shard mu |
  //               dirty_inodes_mu_ | dirlog_mu_ | read-cache shard mu |
  //               InodeMap::mu_ | SegUsage::mu_ | SegmentWriter log mu
  //           ->  device mutexes (SimDisk / MemDisk / BlockCache shards)
  //
  // Path resolution in concurrent mode locks one directory stripe (shared)
  // at a time and re-verifies the final components under the op's inode
  // locks, retrying if a concurrent rename/unlink moved them — whole-path
  // races keep POSIX last-writer-wins semantics.
  //
  // With cfg.concurrent set, Mkfs/Mount also start a background cleaner
  // thread; MaybeClean then only cleans synchronously below the critical
  // floor and otherwise kicks the thread (the paper's background cleaning
  // "when the disk is idle", Section 4). The cleaner thread and every other
  // exclusive section enter through the transaction gate (ExclusiveSection),
  // so relocation never interleaves with a half-staged batch.

  // --- FileSystem interface ----------------------------------------------------

  Result<InodeNum> Create(std::string_view path) override;
  Status Mkdir(std::string_view path) override;
  Status Unlink(std::string_view path) override;
  Status Rmdir(std::string_view path) override;
  Status Link(std::string_view existing, std::string_view link_path) override;
  Status Rename(std::string_view from, std::string_view to) override;
  Result<InodeNum> Lookup(std::string_view path) override;
  Result<FileStat> Stat(InodeNum ino) override;
  Result<std::vector<DirEntry>> ReadDir(std::string_view path) override;
  Status WriteAt(InodeNum ino, uint64_t offset, std::span<const uint8_t> data) override;
  Result<uint64_t> ReadAt(InodeNum ino, uint64_t offset, std::span<uint8_t> out) override;
  Status Truncate(InodeNum ino, uint64_t new_size) override;
  Status Sync() override;

  // --- LFS-specific operations ---------------------------------------------------

  // Flushes everything and writes a checkpoint region (Section 4.1).
  Status WriteCheckpoint();

  // Writes a checkpoint region covering only what is already in the log
  // (no data/dirlog flush). Used by the cleaner to advance the roll-forward
  // boundary so post-checkpoint segments become cleanable; buffered state
  // stays buffered and its dirlog records stay pending, so a crash after
  // this checkpoint still recovers consistently.
  Status LightCheckpoint();

  // Clean unmount: checkpoint, after which remount needs no roll-forward.
  Status Unmount();

  // Runs one cleaning pass regardless of thresholds (reads up to
  // config.segments_per_pass segments). Returns segments reclaimed.
  Result<uint32_t> ForceClean();

  // Introspection for tests and consistency checks: the current disk
  // addresses of a file's data blocks (kNilBlock for holes).
  Result<std::vector<BlockNo>> FileBlockAddresses(InodeNum ino);

  // Scans the log and returns live bytes attributable to each BlockKind
  // (index = kind value) — Table 4's "Live data" column. Expensive: reads
  // every dirty segment's summaries and payloads.
  Result<std::array<uint64_t, 8>> LiveBytesByKind();

  // --- introspection (tests, benchmarks, examples) --------------------------------

  // Victim selection, exposed for the differential selection test and the
  // hot-path benchmark. SelectSegmentsToClean pops candidates from the
  // incrementally maintained index in SegUsage (O(k log n));
  // SelectSegmentsToCleanReference is the original scan-and-sort
  // implementation (O(n log n)) kept as the behavioral oracle — both must
  // return identical victims in identical order for any state and `now`.
  // Neither mutates filesystem state.
  std::vector<SegNo> SelectSegmentsToClean(uint32_t max_segments);
  std::vector<SegNo> SelectSegmentsToCleanReference(uint32_t max_segments, uint64_t now);

  // Fine-grained reclamation introspection (tests/benches).
  const CleanerGovernor& cleaner_governor() const { return governor_; }
  const CleanerQos& cleaner_qos() const { return qos_; }

  const Superblock& superblock() const { return sb_; }
  const LfsConfig& config() const { return cfg_; }
  const SegUsage& seg_usage() const { return usage_; }
  const InodeMap& inode_map() const { return imap_; }
  const LfsStats& stats() const { return stats_; }
  LfsStats& mutable_stats() { return stats_; }
  // Observability: per-op latency histograms + (when compiled in) the event
  // trace. Latencies are modeled-disk-time deltas; see src/obs/obs.h.
  const obs::FsObs& obs() const { return obs_; }
  obs::FsObs& mutable_obs() { return obs_; }
  LogicalClock& clock() { return clock_; }
  // Current writability ladder position and capacity/health snapshot.
  MountState mount_state() const {
    if (degraded_) {
      return MountState::kDegradedReadOnly;
    }
    return read_only_ ? MountState::kReadOnly : MountState::kReadWrite;
  }
  bool degraded() const { return degraded_; }
  LfsStatFs StatFs() const;
  uint32_t clean_segments() const { return usage_.clean_count(); }
  double disk_utilization() const { return usage_.DiskUtilization(); }
  uint64_t dirty_buffered_blocks() const { return dirty_count_.load(); }

 private:
  LfsFileSystem(BlockDevice* device, const LfsConfig& cfg, const Superblock& sb);

  // In-memory index state of one file: the inode plus a flat fbn->address
  // array materialized from the direct/indirect pointers. Indirect block
  // addresses are tracked so the cleaner can liveness-check them; dirty
  // indices are re-serialized to the log when the inode is flushed.
  struct FileMap {
    Inode inode;
    std::vector<BlockNo> blocks;     // fbn -> disk address (kNilBlock = hole)
    std::vector<BlockNo> ind_addrs;  // [i] = indirect block covering fbns
                                     // [kNumDirect + i*ppb, +ppb); [0] is the
                                     // inode's single-indirect pointer
    BlockNo dind_addr = kNilBlock;   // double-indirect root
    std::set<uint32_t> dirty_ind;
    bool dind_dirty = false;
    bool inode_dirty = false;
  };

  // Parsed contents of a directory, one entry list per directory block,
  // plus a name index for O(1) lookups.
  struct DirCache {
    std::vector<std::vector<DirEntry>> blocks;
    std::vector<size_t> used_bytes;  // payload bytes used per block
    std::unordered_map<std::string, InodeNum> index;
  };

  // One partial-segment write parsed back from the log.
  struct ParsedPartial {
    SegNo seg = 0;
    uint32_t offset = 0;  // block index of the summary within the segment
    SegmentSummary summary;
    std::vector<uint8_t> payload;  // entries.size() blocks
  };

  // --- shared helpers (lfs.cpp) ---

  // All device I/O from the filesystem goes through these: transient
  // kIoError failures are retried per cfg_ with exponential backoff modeled
  // on the logical clock; exhausting the attempts bumps io_retry_failures.
  Status DeviceRead(BlockNo block, uint64_t count, std::span<uint8_t> out) const;
  Status DeviceWrite(BlockNo block, uint64_t count, std::span<const uint8_t> data);
  // Irreversibly flips the filesystem into degraded read-only mode (media
  // can no longer persist a checkpoint); every later mutation is refused.
  void EnterDegradedReadOnly(const char* why);

  // Lock-free bodies of the public checkpoint/lookup entry points, for
  // internal callers that already hold fs_mu_ (fs_mu_ is not recursive).
  Status WriteCheckpointImpl();
  Status LightCheckpointImpl();
  Result<InodeNum> LookupImpl(std::string_view path);

  Status LoadFromCheckpoint(const Checkpoint& ck);
  Status WriteCheckpointRegion();
  Status FlushMetadataChunks();      // dirty imap + usage chunks to the log
  void SweepZeroLiveSegments();      // dirty && live==0 -> clean (post-checkpoint)
  Status RecomputeSegmentUsage(SegNo seg, uint32_t stop_offset);
  // How far into `seg` the written chain can extend: the append point when
  // the segment is some log's active segment, else the whole segment. Scans
  // every log, so multi-log mounts bound chain walks correctly.
  uint32_t SegmentStopOffset(SegNo seg) const;
  // Issues TRIM for segments freed since the last drain (cfg_.trim_on_free),
  // called only after a checkpoint region made the frees durable. Failures
  // are ignored: trim is advisory.
  void TrimFreedSegments();
  std::set<SegNo> ChunkHostSegments() const;
  // Segments that must never be recycled right now: the active segment, the
  // hosts of current in-memory metadata chunks, and the hosts of chunks
  // referenced by either on-disk checkpoint region (a torn checkpoint write
  // falls back to the older region, so both must stay readable). Returned as
  // a per-segment bitmap so the cleaner's hot path does no ordered-set
  // lookups or node allocations.
  std::vector<uint8_t> ProtectedSegmentBitmap() const;

  // --- I/O core (lfs_io.cpp) ---

  Result<FileMap*> GetFileMap(InodeNum ino);
  Result<FileMap> LoadFileMap(const Inode& inode) const;  // materialize pointers
  Result<Inode> ReadInodeFromDisk(InodeNum ino) const;
  // Optional clean-block read cache. Entries are validated against the
  // segment's write sequence number, which changes whenever a segment is
  // recycled, so no explicit invalidation hooks are needed.
  bool ReadCacheGet(BlockNo addr, std::span<uint8_t> out) const;
  void ReadCachePut(BlockNo addr, std::span<const uint8_t> data) const;
  Status ReadLogBlock(BlockNo addr, std::span<uint8_t> out) const;
  // cfg_.verify_read_crcs support: walks the summary chain of addr's segment
  // and checks the payload CRC of every partial covering [addr, addr+count),
  // returning a pinpointed kCorruption on mismatch. Blocks still in the
  // writer buffer or past the written chain verify trivially.
  Status VerifyLogBlockCrcs(BlockNo addr, uint64_t count) const;
  // Reads `count` consecutively addressed blocks into `out`, serving each
  // from the writer buffer or read cache when possible and fetching the
  // uncached stretches with single run-granular device reads that also
  // populate the read cache.
  Status ReadLogRun(BlockNo addr, uint64_t count, std::span<uint8_t> out) const;
  void StoreDirtyBlock(InodeNum ino, uint64_t fbn, std::vector<uint8_t> data);
  Status ReadFileBlock(FileMap* fm, InodeNum ino, uint64_t fbn, std::span<uint8_t> out);
  void MarkIndirectDirty(FileMap* fm, uint64_t fbn);
  Status GrowFileMap(FileMap* fm, uint64_t new_block_count);
  Status ShrinkFileMap(InodeNum ino, FileMap* fm, uint64_t new_block_count);
  Status FlushDirtyData();           // MaybeClean + FlushDirtyDataInner
  // The flush body: dirlog records, data blocks, indirect blocks, inodes —
  // in that order, with no cleaning trigger. The cleaner calls this directly
  // before writing inodes so an inode never reaches the log ahead of data it
  // points to (a crash would otherwise recover the file as silent zeros).
  Status FlushDirtyDataInner();
  Status FlushDirLog();
  Status FlushFileMetadata();        // dirty indirect blocks + inode blocks
  Status MaybeFlush();               // flush when the write buffer fills
  Status CheckWritable() const;      // kReadOnly on read-only mounts
  Status MaybeAutoCheckpoint();
  Status EnsureSpaceForWrite(uint64_t new_blocks);
  uint64_t BlockCountFor(uint64_t size) const {
    return (size + sb_.block_size - 1) / sb_.block_size;
  }

  // --- group commit / concurrent front-end (lfs_io.cpp) ---

  // The per-inode lock table, compiled out of the single-threaded regime by
  // handing InodeLockSet a null table.
  InodeLockTable* LockTable() { return cfg_.concurrent ? &ilocks_ : nullptr; }
  // The ISSUE's two-inode ordering helper: both stripes exclusive, ascending
  // stripe order (rename/link paths; same-stripe pairs collapse to one).
  InodeLockSet LockInodePair(InodeNum a, InodeNum b) {
    return InodeLockSet(LockTable(), {a, b}, /*exclusive=*/true);
  }
  // RAII for global exclusive sections (commit, checkpoint, cleaner pass,
  // unmount): closes the group-commit transaction gate — draining in-flight
  // mutators and stopping new ones — before taking fs_mu_ exclusive, so the
  // acquisition cannot be starved by the shared-mode operation stream.
  class ExclusiveSection {
   public:
    explicit ExclusiveSection(LfsFileSystem* fs) : fs_(fs) {
      if (fs_->cfg_.concurrent) {
        fs_->txn_.BeginCommit();
      }
      lock_ = std::unique_lock<std::shared_mutex>(fs_->fs_mu_);
    }
    ~ExclusiveSection() {
      lock_.unlock();
      if (fs_->cfg_.concurrent) {
        fs_->txn_.EndCommit();
      }
    }
    ExclusiveSection(const ExclusiveSection&) = delete;
    ExclusiveSection& operator=(const ExclusiveSection&) = delete;

   private:
    LfsFileSystem* fs_;
    std::unique_lock<std::shared_mutex> lock_;
  };
  // The committer side of a transaction: called by the op that won the
  // token from txn_.EndOp(). Flushes the staged batch (and possibly an
  // automatic checkpoint) under fs_mu_ exclusive, then reopens the gate.
  Status CommitBatch();
  // Evicts clean FileMaps past the cache cap (caller holds fs_mu_ exclusive).
  void TrimFileCache();
  // Lock-free cleaner nudge for the concurrent mutation path (EndOp sites).
  void MaybeKickCleaner();
  // Stages one bounded slice of a write under fs_mu_ shared + the inode's
  // stripe exclusive; never flushes (the group commit does).
  Status WriteAtSlice(InodeNum ino, uint64_t offset, std::span<const uint8_t> data);
  Status WriteAtConcurrent(InodeNum ino, uint64_t offset, std::span<const uint8_t> data);
  // Truncate body without the flush tail, shared by both regimes.
  Status TruncateLocked(InodeNum ino, uint64_t new_size);

  // --- sharded in-memory tables ---

  // Shard of the in-memory inode tables (loaded FileMaps + parsed
  // directories). std::map nodes are stable, so handed-out pointers survive
  // unrelated inserts/erases in the same shard; erasure of an inode's own
  // state only happens under its stripe lock (or fs_mu_ exclusive).
  struct InodeTableShard {
    mutable std::mutex mu;
    std::map<InodeNum, FileMap> files;
    std::map<InodeNum, DirCache> dirs;
  };
  // Shard of the write buffer: staged dirty data blocks keyed (ino, fbn).
  struct DirtyShard {
    mutable std::mutex mu;
    std::map<std::pair<InodeNum, uint64_t>, std::vector<uint8_t>> blocks;
  };

  uint32_t ShardOf(InodeNum ino) const { return static_cast<uint32_t>(ino) & shard_mask_; }
  InodeTableShard& TableShard(InodeNum ino) { return itable_[ShardOf(ino)]; }
  const InodeTableShard& TableShard(InodeNum ino) const { return itable_[ShardOf(ino)]; }
  // Loaded-FileMap lookup without loading (nullptr if absent).
  FileMap* FindFileMap(InodeNum ino);
  DirCache* FindDirCache(InodeNum ino);
  void EraseInodeState(InodeNum ino);  // drops files+dirs entries for ino
  void ClearInodeTables();             // unmount/recovery reset
  size_t LoadedFileMapCount() const;
  // Dirty write-buffer accessors (shard mutex inside; dirty_count_ tracks
  // the total so hot paths never sum shards).
  bool CopyDirtyBlock(InodeNum ino, uint64_t fbn, std::span<uint8_t> out) const;
  bool HaveDirtyBlock(InodeNum ino, uint64_t fbn) const;
  void EraseDirtyBlock(InodeNum ino, uint64_t fbn);
  // Merges all shards into one (ino, fbn)-ordered batch and empties them —
  // the exact iteration order the unsharded buffer used to flush in.
  std::map<std::pair<InodeNum, uint64_t>, std::vector<uint8_t>> TakeDirtyBatch();
  void MarkInodeDirty(InodeNum ino);
  // Snapshots-and-clears the dirty-inode set (flush path, fs_mu_ exclusive).
  std::set<InodeNum> TakeDirtyInodes();

  // Closes out a concurrent mutation: drops the op from the open transaction
  // (EndOp), runs CommitBatch if this op drew the committer token, and nudges
  // the background cleaner. Returns `st` unless the commit itself failed.
  Status EndMutation(Status st);

  // --- namespace (lfs_namespace.cpp) ---

  Result<DirCache*> GetDirCache(InodeNum dir_ino);
  Result<InodeNum> LookupInDir(InodeNum dir_ino, std::string_view name);
  // Concurrent-regime path resolution: walks one component at a time taking
  // only that directory's stripe (shared) for the lookup, holding zero
  // stripes between components — so resolution can never deadlock with an
  // op's ordered multi-stripe acquisition. Callers re-verify the final
  // component under their op's locks and retry if it moved (POSIX
  // last-writer-wins for whole-path races).
  Result<InodeNum> LookupInDirTransient(InodeNum dir_ino, std::string_view name);
  Result<InodeNum> WalkPathConcurrent(std::string_view path);
  Result<InodeNum> ResolveDirConcurrent(std::string_view path);
  Result<std::pair<InodeNum, std::string>> ResolveParentConcurrent(std::string_view path);
  // Namespace op tails, shared by both regimes. Single-threaded: caller
  // holds fs_mu_ exclusive. Concurrent: caller holds fs_mu_ shared plus the
  // involved inode stripes exclusive (ascending order), with the final
  // path components re-verified under those stripes.
  Result<InodeNum> CreateLocked(InodeNum dir_ino, const std::string& name,
                                std::string_view path);
  Status MkdirLocked(InodeNum dir_ino, const std::string& name, std::string_view path);
  Status UnlinkLocked(InodeNum dir_ino, const std::string& name, InodeNum ino,
                      std::string_view path);
  Status RmdirLocked(InodeNum dir_ino, const std::string& name, InodeNum ino,
                     std::string_view path);
  Status LinkLocked(InodeNum ino, InodeNum dir_ino, const std::string& name,
                    std::string_view link_path);
  Status RenameLocked(InodeNum from_dir, const std::string& from_name, InodeNum ino,
                      InodeNum to_dir, const std::string& to_name, std::string_view to);
  Status AddDirEntry(InodeNum dir_ino, const DirEntry& entry);
  Status RemoveDirEntry(InodeNum dir_ino, std::string_view name);
  Status WriteDirBlock(InodeNum dir_ino, uint64_t fbn);
  Result<InodeNum> ResolveDir(std::string_view path);  // path must be a directory
  Result<std::pair<InodeNum, std::string>> ResolveParent(std::string_view path);
  Status DeleteFileContents(InodeNum ino);  // frees all blocks + the inode
  void LogDirOp(DirLogRecord record);

  // --- cleaner (lfs_cleaner.cpp) ---

  Status MaybeClean();               // run passes while below clean_lo
  // Background cleaner thread (cfg_.concurrent). The thread sleeps on
  // cleaner_cv_ and, when kicked, takes fs_mu_ exclusively and runs
  // MaybeClean. It releases cleaner_mu_ before touching fs_mu_, and
  // KickCleaner only takes cleaner_mu_ momentarily, so the two mutexes are
  // never held across each other in conflicting order.
  void StartCleanerThread();
  void StopCleanerThread();   // idempotent; joins the thread
  void CleanerThreadMain();
  void KickCleaner();
  // Below this many usable clean segments the foreground write path cleans
  // synchronously instead of delegating, so a burst cannot outrun the
  // background thread and hit the writer's hard reserve.
  uint32_t CriticalCleanFloor() const;
  // Thresholds clamped so small filesystems do not demand an impossible
  // fraction of clean segments (Sprite's "few tens" presumes >1000 segments).
  uint32_t EffectiveCleanLo() const;
  uint32_t EffectiveCleanHi() const;
  Result<uint32_t> CleanerPass();    // returns source segments reclaimed
  // Adaptive victim selection (governor-driven): one cursor per log, each
  // using that log's policy, candidates interleaved round-robin across logs
  // (deterministically). num_logs == 1 degenerates to a single cursor under
  // the governor's hot policy. Same per-candidate filters and no-wedge
  // fallback as SelectSegmentsToClean.
  std::vector<SegNo> SelectSegmentsToCleanAdaptive(uint32_t max_segments, uint64_t now,
                                                   const GovernorDecision& decision);
  Result<bool> IsLiveBlock(const SummaryEntry& entry, BlockNo addr,
                           std::span<const uint8_t> content);
  // `drain_src` != kNilSeg marks a partial-compaction relocation: the moved
  // bytes are debited off that victim immediately (kData and the metadata
  // chunks; indirect/inode rewrites already debit their old addresses in
  // FlushFileMetadata), since the victim stays kDirty instead of being
  // zeroed wholesale by a clean transition.
  Status MigrateLiveBlock(const SummaryEntry& entry, BlockNo addr,
                          std::vector<uint8_t> content, SegNo drain_src = kNilSeg);
  // One live block queued for rewriting at the log head.
  struct LiveBlock {
    SummaryEntry entry;
    BlockNo addr = kNilBlock;
    std::vector<uint8_t> content;
    SegNo drain_src = kNilSeg;  // partial compaction: debit this victim on move
  };
  // Collects a segment's live blocks, either by reading the whole segment
  // (the paper's conservative default) or by reading summaries first and
  // then only the live block runs (cleaner_read_live_blocks_only).
  // `media_damage` is set when the segment could not be fully collected
  // because of unreadable or CRC-failing blocks; whatever live blocks were
  // recovered before the damage are still appended to `out`.
  Status CollectLiveBlocksWhole(SegNo seg, std::vector<LiveBlock>* out, bool* media_damage);
  Status CollectLiveBlocksSparse(SegNo seg, std::vector<LiveBlock>* out, bool* media_damage);
  // Partial compaction: resumes the summary-chain walk at the victim's
  // compact cursor, collects at most `max_blocks` live blocks (coalesced run
  // reads, as the sparse path), advances the cursor, and reports whether the
  // chain was fully walked (`exhausted`).
  Status CollectLiveBlocksPartial(SegNo seg, uint32_t max_blocks,
                                  std::vector<LiveBlock>* out, bool* media_damage,
                                  bool* exhausted);

  // --- recovery (lfs_recovery.cpp) ---

  // Why a segment-chain parse stopped where it did. A chain ending at an
  // unreadable or CRC-failing block is indistinguishable from a legitimate
  // log-tail end without this; the cleaner uses it to decide quarantine.
  struct ChainStatus {
    bool io_error = false;   // a summary or payload read failed
    bool crc_error = false;  // a payload CRC mismatched
    BlockNo error_block = kNilBlock;  // first block implicated
  };
  // Parses the partial-write chain of one segment starting at start_offset.
  // Stops at an invalid summary, a non-increasing sequence number, a payload
  // CRC mismatch, or stop_offset.
  Result<std::vector<ParsedPartial>> ParseSegmentChain(SegNo seg, uint32_t start_offset,
                                                       uint32_t stop_offset,
                                                       uint64_t min_seq,
                                                       ChainStatus* chain_status = nullptr);
  Status RollForward(const Checkpoint& ck);
  // alloc_versions: per-inode versions observed at allocation (kCreate
  // records) within the replay window, used to tell apart generations of a
  // reused inode number.
  Status ApplyDirLogFix(const DirLogRecord& rec,
                        const std::map<InodeNum, std::vector<uint32_t>>& alloc_versions);

  // --- state ---

  BlockDevice* device_;
  LfsConfig cfg_;
  Superblock sb_;
  // Mutable: retried device reads on const paths advance the backoff clock
  // and bump retry counters (and emit trace records).
  mutable LogicalClock clock_;
  mutable LfsStats stats_;
  mutable obs::FsObs obs_;
  RetryPolicy retry_policy_;
  InodeMap imap_;
  SegUsage usage_;
  SegmentWriter writer_;
  CleanerGovernor governor_;  // adaptive policy switching (cfg.adaptive_cleaning)
  CleanerQos qos_;            // cleaner copy-I/O token bucket (cfg.cleaner_qos_*)

  // Group-commit transaction gate + striped per-inode locks (concurrent
  // regime; the gate is configured but unused when concurrent == false).
  GroupCommit txn_;
  InodeLockTable ilocks_;
  uint32_t shard_mask_ = 0;  // itable_/dirty_shards_ size - 1 (power of two)
  std::vector<InodeTableShard> itable_;        // loaded file maps + directories
  std::vector<DirtyShard> dirty_shards_;       // buffered dirty data blocks
  Relaxed<uint64_t> dirty_count_{0};           // total staged blocks, all shards
  std::set<InodeNum> dirty_inodes_;            // guarded by dirty_inodes_mu_
  mutable std::mutex dirty_inodes_mu_;
  std::vector<DirLogRecord> pending_dirlog_;   // guarded by dirlog_mu_
  std::mutex dirlog_mu_;

  struct ReadCacheEntry {
    std::vector<uint8_t> data;
    uint64_t gen = 0;  // usage_.write_seq of the segment at insert time
    std::list<BlockNo>::iterator lru_it;
  };
  // The clean-block read cache is striped: each shard is an independent
  // LRU (map + recency list) behind its own leaf mutex, selected by block
  // address, so concurrent readers on different stripes never contend on
  // one cache lock. The single-threaded regime uses exactly one shard with
  // the full capacity — the identical map, identical eviction order, and
  // identical device-read sequence as the pre-sharding cache.
  struct ReadCacheShard {
    mutable std::mutex mu;
    std::unordered_map<BlockNo, ReadCacheEntry> map;
    std::list<BlockNo> lru;  // front = most recent
  };
  ReadCacheShard& ReadCacheShardFor(BlockNo addr) const {
    return read_cache_shards_[static_cast<uint32_t>(addr) & rc_shard_mask_];
  }
  mutable std::vector<ReadCacheShard> read_cache_shards_;
  uint32_t rc_shard_mask_ = 0;  // shard count - 1 (power of two)
  uint32_t rc_shard_cap_ = 0;   // per-shard block capacity

  // Reader-writer regime over all filesystem state (see the threading-model
  // note above); const read paths lock it shared, hence mutable.
  mutable std::shared_mutex fs_mu_;

  // Background cleaner thread state (cfg_.concurrent only).
  std::thread cleaner_thread_;
  std::mutex cleaner_mu_;
  std::condition_variable cleaner_cv_;
  bool cleaner_stop_ = false;   // guarded by cleaner_mu_
  bool cleaner_kick_ = false;   // guarded by cleaner_mu_
  std::atomic<bool> cleaner_running_{false};

  uint32_t cr_next_ = 0;            // which checkpoint region to write next
  std::set<SegNo> cr_hosts_[2];     // chunk-host segments referenced by each CR
  uint64_t ckpt_seq_ = 0;           // last checkpoint's sequence number
  uint64_t ckpt_boundary_seq_ = 1;  // summaries >= this were written post-checkpoint
  uint64_t bytes_since_checkpoint_ = 0;
  bool in_cleaner_ = false;
  bool in_recovery_ = false;
  bool in_checkpoint_ = false;
  bool read_only_ = false;
  bool degraded_ = false;       // media forced us read-only (sticky)
  bool debug_cleaner_ = false;  // LFS_DEBUG_CLEANER, looked up once at mount
};

}  // namespace lfs

#endif  // LFS_LFS_LFS_H_
