#include "src/lfs/check.h"

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "src/lfs/layout.h"
#include "src/util/codec.h"
#include "src/util/crc32.h"

namespace lfs {
namespace {

class Checker {
 public:
  Checker(BlockDevice* device, const CheckOptions& options)
      : device_(device), options_(options) {}

  Result<CheckReport> Run();

 private:
  void Error(const std::string& invariant, const std::string& msg) {
    report_.errors++;
    if (report_.messages.size() < options_.max_messages) {
      report_.messages.push_back("ERROR: " + msg);
      report_.findings.push_back({invariant, /*error=*/true, msg});
    }
  }
  void Warn(const std::string& invariant, const std::string& msg) {
    report_.warnings++;
    if (report_.messages.size() < options_.max_messages) {
      report_.messages.push_back("warning: " + msg);
      report_.findings.push_back({invariant, /*error=*/false, msg});
    }
  }

  Status ReadBlock(BlockNo addr, std::vector<uint8_t>* out) {
    // device block size, not sb_: the first read fetches the superblock
    // itself, before sb_ is decoded.
    out->resize(device_->block_size());
    return device_->Read(addr, 1, *out);
  }

  Status LoadCheckpoint();
  Status LoadTables();
  Status CheckInodesAndFiles();
  Status CheckDirectoryTree();
  Status CheckSegmentChains();
  void CheckUsageTable();

  // Claims a block for an owner; detects double-claims and clean-segment
  // violations.
  void Claim(BlockNo addr, const std::string& owner);

  // Reads an inode via the imap; nullopt-style via Result.
  Result<Inode> ReadInode(InodeNum ino);

  BlockDevice* device_;
  CheckOptions options_;
  CheckReport report_;

  Superblock sb_;
  Checkpoint ck_;
  // Is `seg` a recorded append point (log 0's tail or any multi-log extra
  // tail)? Tail segments may legitimately end in a torn partial and carry an
  // approximate usage count.
  bool IsTailSegment(SegNo seg) const {
    if (seg == ck_.cur_segment) {
      return true;
    }
    for (const auto& [tseg, toff] : ck_.extra_logs) {
      if (tseg == seg) {
        return true;
      }
    }
    return false;
  }
  // The recorded append offset for a tail segment (segment_blocks otherwise).
  uint32_t TailOffset(SegNo seg) const {
    if (seg == ck_.cur_segment) {
      return ck_.cur_offset;
    }
    for (const auto& [tseg, toff] : ck_.extra_logs) {
      if (tseg == seg) {
        return toff;
      }
    }
    return sb_.segment_blocks;
  }
  std::vector<ImapEntry> imap_;
  std::vector<SegUsageEntry> usage_;
  std::map<BlockNo, std::string> claimed_;
  std::vector<uint64_t> recomputed_live_;  // per segment, bytes
};

Status Checker::LoadCheckpoint() {
  // Like mount: if the primary superblock is unreadable or undecodable,
  // fall back to the backup copy in the device's last block.
  std::vector<uint8_t> block;
  Status primary_read = ReadBlock(0, &block);
  Result<Superblock> primary =
      primary_read.ok() ? Superblock::DecodeFrom(block) : Result<Superblock>(primary_read);
  if (primary.ok()) {
    sb_ = std::move(primary).value();
  } else {
    LFS_RETURN_IF_ERROR(ReadBlock(device_->block_count() - 1, &block));
    LFS_ASSIGN_OR_RETURN(sb_, Superblock::DecodeFrom(block));
    Warn("superblock.backup_used", "primary superblock bad (" + primary.status().ToString() +
         "); using the backup copy");
  }
  if (sb_.total_blocks > device_->block_count() || sb_.block_size != device_->block_size()) {
    return CorruptionError("superblock geometry does not match the device");
  }

  std::vector<uint8_t> region(size_t{sb_.cr_blocks} * sb_.block_size);
  bool have = false;
  int valid_regions = 0;
  for (int i = 0; i < 2; i++) {
    BlockNo base = i == 0 ? sb_.cr_base0 : sb_.cr_base1;
    if (!device_->Read(base, sb_.cr_blocks, region).ok()) {
      continue;
    }
    Result<Checkpoint> r = Checkpoint::DecodeFrom(region);
    if (!r.ok()) {
      continue;
    }
    valid_regions++;
    if (!have || r->ckpt_seq > ck_.ckpt_seq) {
      ck_ = std::move(r).value();
      have = true;
    }
  }
  if (!have) {
    return CorruptionError("no valid checkpoint region");
  }
  if (valid_regions == 1) {
    Warn("checkpoint.single_region", "only one checkpoint region is valid (normal right after mkfs, "
         "suspicious otherwise)");
  }
  if (ck_.cur_segment >= sb_.nsegments || ck_.cur_offset > sb_.segment_blocks) {
    Error("checkpoint.tail_range", "checkpoint log tail out of range: segment " + std::to_string(ck_.cur_segment));
  }
  for (const auto& [seg, off] : ck_.extra_logs) {
    if (seg == kNilSeg) {
      continue;  // the log had not opened a segment yet
    }
    if (seg >= sb_.nsegments || off > sb_.segment_blocks) {
      Error("checkpoint.tail_range", "checkpoint extra log tail out of range: segment " + std::to_string(seg));
    }
  }
  return OkStatus();
}

Status Checker::LoadTables() {
  std::vector<uint8_t> block;
  usage_.resize(sb_.nsegments);
  if (ck_.usage_chunk_addr.size() * sb_.usage_entries_per_chunk() < sb_.nsegments) {
    return CorruptionError("checkpoint usage chunk table too small");
  }
  for (uint32_t c = 0; c < ck_.usage_chunk_addr.size(); c++) {
    BlockNo addr = ck_.usage_chunk_addr[c];
    if (addr == kNilBlock || addr >= device_->block_count()) {
      return CorruptionError("usage chunk " + std::to_string(c) + " address invalid");
    }
    LFS_RETURN_IF_ERROR(ReadBlock(addr, &block));
    for (uint32_t i = 0; i < sb_.usage_entries_per_chunk(); i++) {
      SegNo seg = c * sb_.usage_entries_per_chunk() + i;
      if (seg >= sb_.nsegments) {
        break;
      }
      usage_[seg] = SegUsageEntry::DecodeFrom(
          std::span<const uint8_t>(block).subspan(size_t{i} * kUsageEntrySize,
                                                  kUsageEntrySize));
      if (usage_[seg].state == SegState::kClean) {
        report_.clean_segments++;
      } else if (usage_[seg].state == SegState::kQuarantined) {
        report_.quarantined_segments++;
      }
    }
  }
  // Claim the chunk blocks only after the whole table is loaded: a chunk's
  // hosting segment may be covered by a chunk that loads later, and judging
  // it against the default-initialized entry (state 0 = clean) would report
  // phantom "chunk lives in a clean segment" corruption.
  for (uint32_t c = 0; c < ck_.usage_chunk_addr.size(); c++) {
    Claim(ck_.usage_chunk_addr[c], "usage chunk " + std::to_string(c));
  }

  imap_.resize(ck_.ninodes);
  uint32_t epc = sb_.imap_entries_per_chunk();
  for (uint32_t c = 0; c < ck_.imap_chunk_addr.size(); c++) {
    if (uint64_t{c} * epc >= ck_.ninodes) {
      break;
    }
    BlockNo addr = ck_.imap_chunk_addr[c];
    if (addr == kNilBlock || addr >= device_->block_count()) {
      Error("imap.chunk_addr", "imap chunk " + std::to_string(c) + " address invalid");
      continue;
    }
    LFS_RETURN_IF_ERROR(ReadBlock(addr, &block));
    for (uint32_t i = 0; i < epc; i++) {
      InodeNum ino = c * epc + i;
      if (ino >= ck_.ninodes) {
        break;
      }
      imap_[ino] = ImapEntry::DecodeFrom(std::span<const uint8_t>(block).subspan(
          size_t{i} * kImapEntrySize, kImapEntrySize));
    }
    Claim(addr, "imap chunk " + std::to_string(c));
  }
  // Current metadata chunks are live data in their segments; account them so
  // the usage-table cross-check balances.
  recomputed_live_.assign(sb_.nsegments, 0);
  for (BlockNo addr : ck_.usage_chunk_addr) {
    SegNo seg = sb_.SegOf(addr);
    if (seg != kNilSeg) {
      recomputed_live_[seg] += sb_.block_size;
    }
  }
  uint32_t epc2 = sb_.imap_entries_per_chunk();
  for (uint32_t c = 0; c < ck_.imap_chunk_addr.size(); c++) {
    if (uint64_t{c} * epc2 >= ck_.ninodes) {
      break;
    }
    SegNo seg = sb_.SegOf(ck_.imap_chunk_addr[c]);
    if (seg != kNilSeg) {
      recomputed_live_[seg] += sb_.block_size;
    }
  }
  return OkStatus();
}

void Checker::Claim(BlockNo addr, const std::string& owner) {
  if (addr == kNilBlock) {
    return;
  }
  if (addr >= device_->block_count()) {
    Error("blocktree.out_of_range", owner + " points past the device: block " + std::to_string(addr));
    return;
  }
  SegNo seg = sb_.SegOf(addr);
  if (seg == kNilSeg) {
    Error("blocktree.fixed_area", owner + " points into the fixed area: block " + std::to_string(addr));
    return;
  }
  if (usage_[seg].state == SegState::kClean) {
    Error("blocktree.clean_segment", owner + " lives in segment " + std::to_string(seg) +
          " which the usage table marks CLEAN");
  }
  auto [it, inserted] = claimed_.emplace(addr, owner);
  if (!inserted) {
    Error("blocktree.double_claim", "block " + std::to_string(addr) + " claimed twice: by " + it->second + " and " +
          owner);
  }
}

Result<Inode> Checker::ReadInode(InodeNum ino) {
  const ImapEntry& e = imap_[ino];
  std::vector<uint8_t> block;
  LFS_RETURN_IF_ERROR(ReadBlock(e.inode_block, &block));
  if ((e.slot + 1u) * kInodeSlotSize > sb_.block_size) {
    return CorruptionError("imap slot out of range");
  }
  return Inode::DecodeFrom(std::span<const uint8_t>(block).subspan(
      size_t{e.slot} * kInodeSlotSize, kInodeSlotSize));
}

Status Checker::CheckInodesAndFiles() {
  const uint32_t ppb = sb_.pointers_per_block();
  for (InodeNum ino = 1; ino < imap_.size(); ino++) {
    const ImapEntry& e = imap_[ino];
    if (!e.allocated()) {
      continue;
    }
    std::string who = "inode " + std::to_string(ino);
    SegNo iseg = sb_.SegOf(e.inode_block);
    if (iseg == kNilSeg) {
      Error("inode.imap_outside", who + ": imap points outside the segment area");
      continue;
    }
    if (usage_[iseg].state == SegState::kClean) {
      Error("inode.clean_segment", who + ": inode block is in a CLEAN segment");
    }
    Result<Inode> inode_r = ReadInode(ino);
    if (!inode_r.ok()) {
      Error("inode.unreadable", who + ": unreadable (" + inode_r.status().ToString() + ")");
      continue;
    }
    const Inode& inode = *inode_r;
    if (inode.ino != ino) {
      Error("inode.slot_mismatch", who + ": slot holds inode " + std::to_string(inode.ino));
      continue;
    }
    if (inode.version != e.version) {
      Error("inode.version_mismatch", who + ": version " + std::to_string(inode.version) + " != imap version " +
            std::to_string(e.version));
    }
    if (inode.type != FileType::kRegular && inode.type != FileType::kDirectory) {
      Error("inode.bad_type", who + ": invalid type " + std::to_string(static_cast<int>(inode.type)));
      continue;
    }
    recomputed_live_[iseg] += kInodeSlotSize;
    if (inode.type == FileType::kDirectory) {
      report_.directories++;
    } else {
      report_.files++;
    }

    // Walk the block tree.
    uint64_t nblocks = (inode.size + sb_.block_size - 1) / sb_.block_size;
    std::vector<BlockNo> ind_addrs;
    if (nblocks > kNumDirect) {
      uint64_t ind_count = (nblocks - kNumDirect + ppb - 1) / ppb;
      ind_addrs.assign(ind_count, kNilBlock);
      ind_addrs[0] = inode.single_indirect;
      if (ind_count > 1) {
        if (inode.double_indirect != kNilBlock) {
          Claim(inode.double_indirect, who + " double-indirect");
          SegNo dseg = sb_.SegOf(inode.double_indirect);
          if (dseg != kNilSeg) {
            recomputed_live_[dseg] += sb_.block_size;
          }
          std::vector<uint8_t> block;
          LFS_RETURN_IF_ERROR(ReadBlock(inode.double_indirect, &block));
          Decoder dec(block);
          for (uint64_t j = 1; j < ind_count; j++) {
            ind_addrs[j] = dec.GetU64();
          }
        }
      }
    }
    auto data_addr = [&](uint64_t fbn, std::vector<std::vector<uint8_t>>& ind_cache)
        -> Result<BlockNo> {
      if (fbn < kNumDirect) {
        return inode.direct[fbn];
      }
      uint64_t idx = (fbn - kNumDirect) / ppb;
      if (idx >= ind_addrs.size() || ind_addrs[idx] == kNilBlock) {
        return kNilBlock;
      }
      if (ind_cache[idx].empty()) {
        LFS_RETURN_IF_ERROR(ReadBlock(ind_addrs[idx], &ind_cache[idx]));
      }
      Decoder dec(ind_cache[idx]);
      dec.Skip(((fbn - kNumDirect) % ppb) * 8);
      return dec.GetU64();
    };
    for (uint64_t i = 0; i < ind_addrs.size(); i++) {
      if (ind_addrs[i] != kNilBlock) {
        Claim(ind_addrs[i], who + " indirect " + std::to_string(i));
        SegNo s = sb_.SegOf(ind_addrs[i]);
        if (s != kNilSeg) {
          recomputed_live_[s] += sb_.block_size;
        }
      }
    }
    std::vector<std::vector<uint8_t>> ind_cache(ind_addrs.size());
    for (uint64_t fbn = 0; fbn < nblocks; fbn++) {
      Result<BlockNo> addr = data_addr(fbn, ind_cache);
      if (!addr.ok()) {
        Error("inode.indirect_unreadable", who + ": unreadable indirect block");
        break;
      }
      if (*addr == kNilBlock) {
        continue;  // hole
      }
      Claim(*addr, who + " fbn " + std::to_string(fbn));
      SegNo s = sb_.SegOf(*addr);
      if (s != kNilSeg) {
        recomputed_live_[s] += sb_.block_size;
      }
      report_.live_data_blocks++;
    }
  }
  return OkStatus();
}

Status Checker::CheckDirectoryTree() {
  // Breadth-first walk from the root; count references per inode.
  std::vector<uint32_t> refs(imap_.size(), 0);
  std::set<InodeNum> visited;
  std::vector<InodeNum> queue = {kRootInode};
  if (imap_.size() <= kRootInode || !imap_[kRootInode].allocated()) {
    Error("dirtree.root_missing", "root inode is not allocated");
    return OkStatus();
  }
  refs[kRootInode]++;  // the root references itself
  while (!queue.empty()) {
    InodeNum dir = queue.back();
    queue.pop_back();
    if (!visited.insert(dir).second) {
      Error("dirtree.cycle", "directory cycle involving inode " + std::to_string(dir));
      continue;
    }
    Result<Inode> inode = ReadInode(dir);
    if (!inode.ok() || inode->type != FileType::kDirectory) {
      continue;  // already reported by CheckInodesAndFiles
    }
    // Read the directory contents block by block through the inode tree.
    uint64_t nblocks = (inode->size + sb_.block_size - 1) / sb_.block_size;
    const uint32_t ppb = sb_.pointers_per_block();
    std::vector<uint8_t> ind;
    if (nblocks > kNumDirect && inode->single_indirect != kNilBlock) {
      LFS_RETURN_IF_ERROR(ReadBlock(inode->single_indirect, &ind));
    }
    for (uint64_t fbn = 0; fbn < nblocks; fbn++) {
      BlockNo addr = kNilBlock;
      if (fbn < kNumDirect) {
        addr = inode->direct[fbn];
      } else if (!ind.empty() && fbn - kNumDirect < ppb) {
        Decoder dec(ind);
        dec.Skip((fbn - kNumDirect) * 8);
        addr = dec.GetU64();
      } else {
        Warn("dirtree.oversize", "directory " + std::to_string(dir) + " larger than checker walks");
        break;
      }
      if (addr == kNilBlock) {
        continue;
      }
      std::vector<uint8_t> block;
      LFS_RETURN_IF_ERROR(ReadBlock(addr, &block));
      Result<std::vector<DirEntry>> entries = DecodeDirBlock(block);
      if (!entries.ok()) {
        Error("dirtree.block_undecodable", "directory " + std::to_string(dir) + " block " + std::to_string(fbn) +
              " undecodable");
        continue;
      }
      for (const DirEntry& e : *entries) {
        if (e.ino >= imap_.size() || !imap_[e.ino].allocated()) {
          Error("dirtree.dangling_entry", "dangling entry '" + e.name + "' in directory " + std::to_string(dir));
          continue;
        }
        refs[e.ino]++;
        Result<Inode> target = ReadInode(e.ino);
        if (target.ok() && target->type != e.type) {
          Error("dirtree.type_mismatch", "entry '" + e.name + "' type disagrees with inode " + std::to_string(e.ino));
        }
        if (e.type == FileType::kDirectory) {
          queue.push_back(e.ino);
        }
      }
    }
  }
  // Link counts and reachability.
  for (InodeNum ino = 1; ino < imap_.size(); ino++) {
    if (!imap_[ino].allocated()) {
      continue;
    }
    Result<Inode> inode = ReadInode(ino);
    if (!inode.ok()) {
      continue;
    }
    if (refs[ino] == 0) {
      Warn("dirtree.orphan", "inode " + std::to_string(ino) + " is allocated but unreachable (orphan)");
      continue;
    }
    if (inode->nlink != refs[ino]) {
      Error("dirtree.nlink", "inode " + std::to_string(ino) + " nlink " + std::to_string(inode->nlink) +
            " != directory references " + std::to_string(refs[ino]));
    }
  }
  return OkStatus();
}

Status Checker::CheckSegmentChains() {
  const uint32_t bs = sb_.block_size;
  std::vector<uint8_t> sum_block(bs);
  for (SegNo seg = 0; seg < sb_.nsegments; seg++) {
    report_.segments_scanned++;
    if (usage_[seg].state == SegState::kClean) {
      continue;
    }
    // The active segment is scanned past the checkpoint offset too, so a
    // crashed image's log tail gets its CRCs looked at (torn tail partials
    // are recoverable and only warned about).
    uint32_t stop = sb_.segment_blocks;
    uint32_t offset = 0;
    uint64_t prev_seq = 0;
    while (offset + 1 < stop) {
      if (!device_->Read(sb_.SegmentBase(seg) + offset, 1, sum_block).ok()) {
        break;
      }
      Result<SegmentSummary> sum = SegmentSummary::DecodeFrom(sum_block);
      if (!sum.ok() || (prev_seq != 0 && sum->seq <= prev_seq) || sum->entries.empty() ||
          offset + 1 + sum->entries.size() > stop) {
        break;  // end of the live chain (stale generations are expected)
      }
      prev_seq = sum->seq;
      report_.partial_writes++;
      if (options_.verify_payload_crcs) {
        // Damage inside a quarantined segment is known and contained: the
        // filesystem has already fenced it off, so report it as a warning.
        bool quarantined = usage_[seg].state == SegState::kQuarantined;
        std::vector<uint8_t> payload(sum->entries.size() * size_t{bs});
        if (!device_->Read(sb_.SegmentBase(seg) + offset + 1, sum->entries.size(), payload)
                 .ok()) {
          if (quarantined) {
            Warn("segchain.quarantined", "quarantined segment " + std::to_string(seg) +
                 ": unreadable payload at offset " + std::to_string(offset));
          } else {
            Error("segchain.payload_unreadable", "segment " + std::to_string(seg) + ": unreadable payload at offset " +
                  std::to_string(offset));
          }
          break;
        }
        if (Crc32(payload) != sum->payload_crc) {
          // Only the log tail may legitimately hold a torn partial write.
          if (IsTailSegment(seg) && offset >= TailOffset(seg)) {
            Warn("segchain.torn_tail", "torn partial write in the log tail (recoverable)");
          } else if (sum->seq >= ck_.next_summary_seq) {
            // A post-checkpoint sequence number marks an in-flight write the
            // crash tore — e.g. a checkpoint's own chunk appends into a
            // swept segment whose region write never landed. Roll-forward
            // rejects the partial at the sequence gap, so the state is
            // recoverable by contract; only pre-checkpoint payloads are held
            // to the hard corruption standard.
            Warn("segchain.torn_inflight", "segment " + std::to_string(seg) +
                 ": torn in-flight write at offset " + std::to_string(offset) +
                 " (recoverable)");
          } else if (quarantined) {
            Warn("segchain.quarantined", "quarantined segment " + std::to_string(seg) +
                 ": payload CRC mismatch at offset " + std::to_string(offset));
          } else {
            Error("segchain.payload_crc", "segment " + std::to_string(seg) + ": payload CRC mismatch at offset " +
                  std::to_string(offset));
          }
          break;
        }
      }
      offset += 1 + static_cast<uint32_t>(sum->entries.size());
    }
  }
  return OkStatus();
}

void Checker::CheckUsageTable() {
  for (SegNo seg = 0; seg < sb_.nsegments; seg++) {
    if (usage_[seg].state == SegState::kClean) {
      if (recomputed_live_[seg] != 0) {
        // Already reported block-by-block via Claim(); summarize anyway.
        Error("usage.clean_live", "segment " + std::to_string(seg) + " is CLEAN but holds " +
              std::to_string(recomputed_live_[seg]) + " live bytes");
      }
      continue;
    }
    uint64_t table = usage_[seg].live_bytes;
    uint64_t actual = recomputed_live_[seg];
    if (table != actual) {
      // Post-checkpoint tail activity legitimately drifts; metadata chunk
      // self-reference makes the active segment approximate; a quarantined
      // segment's count reflects blocks the checker may not have been able
      // to walk. Everything else should match what the checkpoint recorded.
      if (IsTailSegment(seg) || usage_[seg].state == SegState::kQuarantined) {
        const char* kind = IsTailSegment(seg) ? "active" : "quarantined";
        Warn("usage.tail_drift", std::string(kind) + " segment " + std::to_string(seg) +
             " live bytes: table " + std::to_string(table) + " vs actual " +
             std::to_string(actual));
      } else {
        Error("usage.mismatch", "segment " + std::to_string(seg) + " live bytes: table " +
              std::to_string(table) + " vs recomputed " + std::to_string(actual));
      }
    }
  }
}

Result<CheckReport> Checker::Run() {
  LFS_RETURN_IF_ERROR(LoadCheckpoint());
  LFS_RETURN_IF_ERROR(LoadTables());
  LFS_RETURN_IF_ERROR(CheckInodesAndFiles());
  LFS_RETURN_IF_ERROR(CheckDirectoryTree());
  LFS_RETURN_IF_ERROR(CheckSegmentChains());
  CheckUsageTable();
  return report_;
}

}  // namespace

std::string CheckReport::Summary() const {
  std::string out = ok() ? "CLEAN" : "CORRUPT";
  out += ": " + std::to_string(errors) + " errors, " + std::to_string(warnings) +
         " warnings; " + std::to_string(files) + " files, " + std::to_string(directories) +
         " directories, " + std::to_string(live_data_blocks) + " live data blocks, " +
         std::to_string(partial_writes) + " partial writes in " +
         std::to_string(segments_scanned) + " segments (" + std::to_string(clean_segments) +
         " clean";
  if (quarantined_segments > 0) {
    out += ", " + std::to_string(quarantined_segments) + " quarantined";
  }
  out += ")";
  return out;
}

std::string CheckReport::ToJson() const {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::string out = "{";
  out += "\"ok\":" + std::string(ok() ? "true" : "false");
  out += ",\"errors\":" + std::to_string(errors);
  out += ",\"warnings\":" + std::to_string(warnings);
  out += ",\"files\":" + std::to_string(files);
  out += ",\"directories\":" + std::to_string(directories);
  out += ",\"live_data_blocks\":" + std::to_string(live_data_blocks);
  out += ",\"segments_scanned\":" + std::to_string(segments_scanned);
  out += ",\"partial_writes\":" + std::to_string(partial_writes);
  out += ",\"clean_segments\":" + std::to_string(clean_segments);
  out += ",\"quarantined_segments\":" + std::to_string(quarantined_segments);
  out += ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); i++) {
    if (i > 0) {
      out += ",";
    }
    out += "{\"invariant\":\"" + escape(findings[i].invariant) + "\",\"severity\":\"" +
           (findings[i].error ? "error" : "warning") + "\",\"message\":\"" +
           escape(findings[i].message) + "\"}";
  }
  out += "]}";
  return out;
}

Result<CheckReport> CheckLfsImage(BlockDevice* device, const CheckOptions& options) {
  Checker checker(device, options);
  return checker.Run();
}

}  // namespace lfs
