// Crash recovery: roll-forward over the post-checkpoint log tail (Section 4.2).
//
// The checkpoint gives a consistent base state. Roll-forward then:
//   1. collects every valid partial-segment write with a sequence number at
//      or after the checkpoint boundary (summary + payload CRCs make a
//      partial write the atomic logging unit: torn writes are ignored);
//   2. replays inode blocks in sequence order, updating the inode map — an
//      inode in the log always post-dates its file's data and indirect
//      blocks, so accepting an inode automatically incorporates its data
//      ("data blocks without a new copy of the inode are ignored");
//   3. adjusts the segment usage table: post-checkpoint segments gain the
//      blocks that are live in the recovered state, and segments holding
//      superseded pre-checkpoint copies are decremented;
//   4. replays the directory operation log to restore consistency between
//      directory entries and inode reference counts, completing or undoing
//      half-finished create/link/unlink/rename operations.
//
// The changed directories, inodes, and table chunks are then written back to
// the log by the checkpoint the caller takes after mount.

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "src/lfs/lfs.h"
#include "src/util/crc32.h"

namespace lfs {

Result<std::vector<LfsFileSystem::ParsedPartial>> LfsFileSystem::ParseSegmentChain(
    SegNo seg, uint32_t start_offset, uint32_t stop_offset, uint64_t min_seq,
    ChainStatus* chain_status) {
  std::vector<ParsedPartial> out;
  const uint32_t bs = sb_.block_size;
  const BlockNo base = sb_.SegmentBase(seg);
  uint32_t offset = start_offset;
  uint64_t prev_seq = 0;
  std::vector<uint8_t> sum_block(bs);

  while (offset + 1 < stop_offset) {
    if (!DeviceRead(base + offset, 1, sum_block).ok()) {
      if (chain_status != nullptr) {
        chain_status->io_error = true;
        chain_status->error_block = base + offset;
      }
      break;
    }
    Result<SegmentSummary> sum = SegmentSummary::DecodeFrom(sum_block);
    if (!sum.ok()) {
      break;  // end of the written chain (or garbage from a prior generation)
    }
    // Sequence numbers increase strictly along a segment's chain; a drop
    // means we have walked into a previous generation's leftovers.
    if (prev_seq != 0 && sum->seq <= prev_seq) {
      break;
    }
    uint32_t n = static_cast<uint32_t>(sum->entries.size());
    if (n == 0 || offset + 1 + n > stop_offset) {
      break;
    }
    ParsedPartial p;
    p.seg = seg;
    p.offset = offset;
    p.payload.resize(size_t{n} * bs);
    if (!DeviceRead(base + offset + 1, n, p.payload).ok()) {
      if (chain_status != nullptr) {
        chain_status->io_error = true;
        chain_status->error_block = base + offset + 1;
      }
      break;
    }
    if (Crc32(p.payload) != sum->payload_crc) {
      if (chain_status != nullptr) {
        chain_status->crc_error = true;
        chain_status->error_block = base + offset + 1;
      }
      break;  // torn partial write: ignore it and everything after
    }
    prev_seq = sum->seq;
    uint32_t next = offset + 1 + n;
    p.summary = std::move(sum).value();
    if (p.summary.seq >= min_seq) {
      out.push_back(std::move(p));
    }
    offset = next;
  }
  return out;
}

Status LfsFileSystem::RollForward(const Checkpoint& ck) {
  in_recovery_ = true;
  const uint64_t start_seq = ck.next_summary_seq;
  const uint32_t bs = sb_.block_size;

  // --- 1. collect the post-checkpoint log tail --------------------------------
  // The writer only appends to the checkpoint's active segment or to
  // segments the checkpoint recorded as clean (cleaning bursts and dead-
  // segment sweeps are immediately covered by a checkpoint). Clean segments
  // are furthermore consumed in ascending index order (PickClean), so the
  // scan probes them in that order and stops at the first one never used —
  // recovery cost is proportional to the data written since the checkpoint,
  // not to the disk size (the property behind Table 3).
  std::vector<ParsedPartial> replay;
  std::vector<uint8_t> sum_block(bs);
  // Every append point the checkpoint recorded can have a post-checkpoint
  // tail: log 0 (cur_segment/cur_offset) and, in multi-log mode, each extra
  // log's position.
  std::vector<std::pair<SegNo, uint32_t>> tails;
  tails.emplace_back(ck.cur_segment, ck.cur_offset);
  for (const auto& [seg, off] : ck.extra_logs) {
    if (seg != kNilSeg && seg < sb_.nsegments && off <= sb_.segment_blocks) {
      tails.emplace_back(seg, off);
    }
  }
  // Every segment the scan touches, with its scan-start offset: used below to
  // scrub stale chain remnants out of segments that stop being append points.
  std::vector<std::pair<SegNo, uint32_t>> scanned = tails;
  for (const auto& [seg, off] : tails) {
    LFS_ASSIGN_OR_RETURN(std::vector<ParsedPartial> chain,
                         ParseSegmentChain(seg, off, sb_.segment_blocks, start_seq));
    for (ParsedPartial& p : chain) {
      replay.push_back(std::move(p));
    }
  }
  auto is_tail_segment = [&](SegNo seg) {
    for (const auto& [tseg, toff] : tails) {
      if (tseg == seg) {
        return true;
      }
    }
    return false;
  };
  for (SegNo seg = 0; seg < sb_.nsegments; seg++) {
    if (is_tail_segment(seg) || usage_.Get(seg).state != SegState::kClean) {
      continue;
    }
    if (!DeviceRead(sb_.SegmentBase(seg), 1, sum_block).ok()) {
      break;
    }
    Result<SegmentSummary> first = SegmentSummary::DecodeFrom(sum_block);
    if (!first.ok() || first->seq < start_seq) {
      break;  // first clean segment never reused; later ones cannot be either
    }
    LFS_ASSIGN_OR_RETURN(std::vector<ParsedPartial> chain,
                         ParseSegmentChain(seg, 0, sb_.segment_blocks, start_seq));
    scanned.emplace_back(seg, 0);
    for (ParsedPartial& p : chain) {
      replay.push_back(std::move(p));
    }
  }
  std::sort(replay.begin(), replay.end(), [](const ParsedPartial& a, const ParsedPartial& b) {
    return a.summary.seq < b.summary.seq;
  });
  // Keep only the contiguous run starting at the checkpoint boundary.
  uint64_t expected = start_seq;
  size_t keep = 0;
  while (keep < replay.size() && replay[keep].summary.seq == expected) {
    keep++;
    expected++;
  }
  replay.resize(keep);
  if (replay.empty()) {
    in_recovery_ = false;
    return OkStatus();
  }
  stats_.rollforward_partials += replay.size();
  LFS_TRACE(obs_.tracer(), obs::TraceEventType::kRollForward, obs::OpType::kNone, clock_.Now(),
            replay.size(), start_seq, device_->ModeledTime());

  // Advance the log tail past everything we are about to accept, so new
  // writes append after the recovered data instead of overwriting it.
  const ParsedPartial& last = replay.back();
  uint32_t tail_offset =
      last.offset + 1 + static_cast<uint32_t>(last.summary.entries.size());
  // Recovery collapses every append point onto a single tail at the globally
  // newest accepted partial. The other logs' abandoned segments become
  // ordinary dirty segments; in multi-log mode the logs re-acquire clean
  // segments on their next append.
  for (uint32_t log = 0; log < writer_.num_logs(); log++) {
    SegNo seg = writer_.log_segment(log);
    if (seg != kNilSeg && seg != last.seg &&
        usage_.Get(seg).state == SegState::kActive) {
      usage_.SetState(seg, SegState::kDirty);
    }
  }
  if (usage_.Get(last.seg).state != SegState::kActive) {
    usage_.SetState(last.seg, SegState::kActive);
  }
  writer_.Init(last.seg, tail_offset, last.summary.seq + 1);

  // Segments other than the surviving tail stop being append points, so
  // nothing will ever overwrite what sits past their accepted records — but a
  // torn partial (or a valid record rejected for a sequence gap) may have
  // left a decodable post-checkpoint summary there, dangling beyond the
  // recovered chain of an ordinary dirty segment. Zero that one summary block
  // so the chain ends cleanly. Idempotent across a crash during recovery: the
  // scrubbed record was rejected by this scan and would be again.
  for (const auto& [seg, scan_start] : scanned) {
    if (seg == last.seg) {
      continue;  // the resumed tail; new appends overwrite it
    }
    uint32_t acc_end = scan_start;
    for (const ParsedPartial& p : replay) {
      if (p.seg == seg) {
        acc_end = std::max(
            acc_end, p.offset + 1 + static_cast<uint32_t>(p.summary.entries.size()));
      }
    }
    if (acc_end + 1 >= sb_.segment_blocks) {
      continue;
    }
    if (!DeviceRead(sb_.SegmentBase(seg) + acc_end, 1, sum_block).ok()) {
      continue;
    }
    Result<SegmentSummary> stale = SegmentSummary::DecodeFrom(sum_block);
    if (stale.ok() && stale->seq >= start_seq) {
      std::fill(sum_block.begin(), sum_block.end(), uint8_t{0});
      LFS_RETURN_IF_ERROR(DeviceWrite(sb_.SegmentBase(seg) + acc_end, 1, sum_block));
      stats_.rollforward_scrubbed++;
    }
  }

  // --- 2. structural replay: newest inode copies win ---------------------------
  ClearInodeTables();
  std::map<InodeNum, ImapEntry> first_touch;  // pre-replay imap state per inode
  std::vector<DirLogRecord> dirops;
  for (const ParsedPartial& p : replay) {
    if (usage_.Get(p.seg).state == SegState::kClean) {
      usage_.SetState(p.seg, SegState::kDirty);
    }
    usage_.SetWriteSeq(p.seg, p.summary.seq);
    for (size_t i = 0; i < p.summary.entries.size(); i++) {
      const SummaryEntry& entry = p.summary.entries[i];
      BlockNo addr = sb_.SegmentBase(p.seg) + p.offset + 1 + i;
      std::span<const uint8_t> content(p.payload.data() + i * bs, bs);
      switch (entry.kind) {
        case BlockKind::kInodeBlock: {
          for (uint32_t s = 0; s < sb_.inodes_per_block(); s++) {
            Result<Inode> ino = Inode::DecodeFrom(content.subspan(size_t{s} * kInodeSlotSize,
                                                                  kInodeSlotSize));
            if (!ino.ok() || ino->ino == kNilInode) {
              continue;
            }
            first_touch.emplace(ino->ino, imap_.Get(ino->ino));
            ImapEntry e = imap_.Get(ino->ino);
            e.inode_block = addr;
            e.slot = static_cast<uint16_t>(s);
            e.version = ino->version;
            imap_.Restore(ino->ino, e);
            EraseInodeState(ino->ino);
          }
          break;
        }
        case BlockKind::kDirLog: {
          LFS_ASSIGN_OR_RETURN(std::vector<DirLogRecord> records, DecodeDirLogBlock(content));
          for (DirLogRecord& r : records) {
            dirops.push_back(std::move(r));
          }
          break;
        }
        default:
          break;  // data/indirect blocks are incorporated via their inode;
                  // imap/usage chunks in the tail are superseded by recovery
      }
    }
  }
  imap_.RebuildFreeList();

  // --- 3a. usage: credit post-checkpoint segments with their live blocks -------
  for (const ParsedPartial& p : replay) {
    for (size_t i = 0; i < p.summary.entries.size(); i++) {
      const SummaryEntry& entry = p.summary.entries[i];
      BlockNo addr = sb_.SegmentBase(p.seg) + p.offset + 1 + i;
      std::span<const uint8_t> content(p.payload.data() + i * bs, bs);
      if (entry.kind == BlockKind::kInodeBlock) {
        uint32_t live_slots = 0;
        for (uint32_t s = 0; s < sb_.inodes_per_block(); s++) {
          Result<Inode> ino = Inode::DecodeFrom(content.subspan(size_t{s} * kInodeSlotSize,
                                                                kInodeSlotSize));
          if (!ino.ok() || ino->ino == kNilInode) {
            continue;
          }
          ImapEntry e = imap_.Get(ino->ino);
          if (e.allocated() && e.inode_block == addr && e.slot == s) {
            live_slots++;
          }
        }
        if (live_slots > 0) {
          usage_.AddLive(p.seg, live_slots * kInodeSlotSize, p.summary.youngest_mtime);
        }
        continue;
      }
      LFS_ASSIGN_OR_RETURN(bool live, IsLiveBlock(entry, addr, content));
      if (live) {
        usage_.AddLive(p.seg, bs, p.summary.youngest_mtime);
      }
    }
  }

  // --- 3b. usage: debit pre-checkpoint copies superseded by the replay ---------
  for (const auto& [ino, old] : first_touch) {
    if (!old.allocated()) {
      continue;  // inode was new; nothing pre-checkpoint to supersede
    }
    SegNo old_seg = sb_.SegOf(old.inode_block);
    if (old_seg != kNilSeg) {
      usage_.SubLive(old_seg, kInodeSlotSize);  // the old inode slot is dead
    }
    // Compare the old file image against the recovered one and free blocks
    // that moved or disappeared ("utilizations of older segments must be
    // adjusted to reflect deletions and overwrites").
    std::vector<uint8_t> block(bs);
    if (!DeviceRead(old.inode_block, 1, block).ok()) {
      continue;
    }
    Result<Inode> old_inode_r = Inode::DecodeFrom(std::span<const uint8_t>(block).subspan(
        size_t{old.slot} * kInodeSlotSize, kInodeSlotSize));
    if (!old_inode_r.ok() || old_inode_r->ino != ino) {
      continue;
    }
    LFS_ASSIGN_OR_RETURN(FileMap old_fm, LoadFileMap(*old_inode_r));

    ImapEntry now = imap_.Get(ino);
    const FileMap* new_fm = nullptr;
    if (now.allocated() && now.version == old.version) {
      LFS_ASSIGN_OR_RETURN(FileMap * fmp, GetFileMap(ino));
      new_fm = fmp;
    }
    auto sub_if_gone = [&](BlockNo old_addr, bool still_there) {
      SegNo s = sb_.SegOf(old_addr);
      if (old_addr != kNilBlock && s != kNilSeg && !still_there) {
        usage_.SubLive(s, bs);
      }
    };
    for (uint64_t fbn = 0; fbn < old_fm.blocks.size(); fbn++) {
      bool kept = new_fm != nullptr && fbn < new_fm->blocks.size() &&
                  new_fm->blocks[fbn] == old_fm.blocks[fbn];
      sub_if_gone(old_fm.blocks[fbn], kept);
    }
    for (uint64_t i = 0; i < old_fm.ind_addrs.size(); i++) {
      bool kept = new_fm != nullptr && i < new_fm->ind_addrs.size() &&
                  new_fm->ind_addrs[i] == old_fm.ind_addrs[i];
      sub_if_gone(old_fm.ind_addrs[i], kept);
    }
    sub_if_gone(old_fm.dind_addr, new_fm != nullptr && new_fm->dind_addr == old_fm.dind_addr);
  }

  // --- 4. directory operation log: restore entry/refcount consistency ----------
  // Pre-scan for allocation events: every create/mkdir logs the version the
  // inode number carried at allocation. These versions partition the replay
  // window into generations of a reused inode number, letting the replay
  // tell "this record talks about the file that currently owns ino" from
  // "this record talks about a predecessor that was freed and reused".
  std::map<InodeNum, std::vector<uint32_t>> alloc_versions;
  for (const DirLogRecord& rec : dirops) {
    if (rec.op == DirOp::kCreate) {
      alloc_versions[rec.target_ino].push_back(rec.target_version);
    }
  }
  for (const DirLogRecord& rec : dirops) {
    LFS_RETURN_IF_ERROR(ApplyDirLogFix(rec, alloc_versions));
  }

  // --- 5. reconcile link counts for inodes the dirlog touched ------------------
  // Per-record fixes assert each operation's logged final state, but compound
  // outcomes — a rename whose destination directory never survived, a link
  // chain where only some entries landed — can leave nlink out of step with
  // the entries that actually exist. Ground truth is the directory tree
  // itself: recount references and make nlink match. A touched file with no
  // surviving entry is an orphan (e.g. moved into a directory that was never
  // durably created) and is removed, completing the "entry will be removed"
  // rule transitively.
  std::set<InodeNum> touched;
  for (const DirLogRecord& rec : dirops) {
    if (rec.target_ino != kNilInode) {
      touched.insert(rec.target_ino);
    }
    if (rec.replaced_ino != kNilInode) {
      touched.insert(rec.replaced_ino);
    }
  }
  touched.erase(kRootInode);
  if (!touched.empty()) {
    std::map<InodeNum, uint32_t> refs;
    std::set<InodeNum> visited;
    std::vector<InodeNum> dir_queue = {kRootInode};
    while (!dir_queue.empty()) {
      InodeNum dir = dir_queue.back();
      dir_queue.pop_back();
      if (!visited.insert(dir).second || !imap_.IsAllocated(dir)) {
        continue;
      }
      Result<DirCache*> cache = GetDirCache(dir);
      if (!cache.ok()) {
        continue;
      }
      for (const std::vector<DirEntry>& blk : (*cache)->blocks) {
        for (const DirEntry& e : blk) {
          refs[e.ino]++;
          if (e.type == FileType::kDirectory) {
            dir_queue.push_back(e.ino);
          }
        }
      }
    }
    for (InodeNum ino : touched) {
      if (!imap_.IsAllocated(ino)) {
        continue;
      }
      Result<FileMap*> fm = GetFileMap(ino);
      if (!fm.ok()) {
        continue;
      }
      auto it = refs.find(ino);
      uint32_t n = it == refs.end() ? 0 : it->second;
      if (n == 0) {
        if ((*fm)->inode.type == FileType::kRegular) {
          LFS_RETURN_IF_ERROR(DeleteFileContents(ino));
        }
        continue;
      }
      if ((*fm)->inode.nlink != n) {
        (*fm)->inode.nlink = static_cast<uint16_t>(n);
        (*fm)->inode_dirty = true;
        MarkInodeDirty(ino);
      }
    }
  }

  in_recovery_ = false;
  // "The recovery program appends the changed directories, inodes, inode
  // map, and segment usage table blocks to the log and writes a new
  // checkpoint region to include them." Without this, the repairs (applied
  // without directory-log records) would sit as ordinary dirty state, and a
  // SECOND crash after a partial flush could leave inconsistencies that
  // nothing can replay. Read-only mounts keep the repairs in memory only.
  if (!read_only_) {
    LFS_RETURN_IF_ERROR(WriteCheckpointImpl());
  }
  return OkStatus();
}

Status LfsFileSystem::ApplyDirLogFix(
    const DirLogRecord& rec,
    const std::map<InodeNum, std::vector<uint32_t>>& alloc_versions) {
  // All fixes are defensive: they assert the operation's final state on
  // whatever survived, and skip when the containing directory itself did not
  // survive.
  auto dir_ok = [&](InodeNum dir_ino) {
    if (!imap_.IsAllocated(dir_ino)) {
      return false;
    }
    Result<FileMap*> fm = GetFileMap(dir_ino);
    return fm.ok() && (*fm)->inode.type == FileType::kDirectory;
  };
  auto ensure_absent = [&](InodeNum dir_ino, const std::string& name) -> Status {
    Result<InodeNum> hit = LookupInDir(dir_ino, name);
    if (hit.ok()) {
      return RemoveDirEntry(dir_ino, name);
    }
    return OkStatus();
  };
  auto ensure_present = [&](InodeNum dir_ino, const std::string& name, InodeNum ino,
                            FileType type) -> Status {
    Result<InodeNum> hit = LookupInDir(dir_ino, name);
    if (hit.ok() && hit.value() == ino) {
      return OkStatus();
    }
    if (hit.ok()) {
      LFS_RETURN_IF_ERROR(RemoveDirEntry(dir_ino, name));
    }
    return AddDirEntry(dir_ino, DirEntry{name, ino, type});
  };
  auto set_nlink = [&](InodeNum ino, uint16_t nlink) -> Status {
    LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
    if (fm->inode.nlink != nlink) {
      fm->inode.nlink = nlink;
      fm->inode_dirty = true;
      MarkInodeDirty(ino);
    }
    return OkStatus();
  };

  // "Alive" means: the inode is allocated AND the record speaks about the
  // generation of the inode number that currently owns the slot. A plain
  // allocation check is not enough — an inode number freed and reused inside
  // the replay window leaves stale records from the dead predecessor, and
  // completing one of them (worst case: an unlink's DeleteFileContents)
  // would destroy the successor. Exact version equality is too strict the
  // other way: truncate-to-zero bumps the version without changing identity,
  // so a create whose inode flushed after an in-window truncate would be
  // orphaned. The dividing events are allocations; every allocation in the
  // window logged its version via kCreate (dirlog records flush with the
  // batch, so if a stale record made it into the window, the successor's
  // create record did too). Two versions denote the same generation iff no
  // logged allocation version lies strictly between them (half-open toward
  // the newer side: the allocation version itself starts the new
  // generation).
  auto same_gen = [&](InodeNum ino, uint32_t v_rec) {
    uint32_t v_slot = imap_.Get(ino).version;
    if (v_rec == v_slot) {
      return true;
    }
    auto it = alloc_versions.find(ino);
    if (it == alloc_versions.end()) {
      return true;
    }
    uint32_t lo = std::min(v_rec, v_slot);
    uint32_t hi = std::max(v_rec, v_slot);
    for (uint32_t v_alloc : it->second) {
      if (v_alloc > lo && v_alloc <= hi) {
        return false;
      }
    }
    return true;
  };
  bool target_alive =
      imap_.IsAllocated(rec.target_ino) && same_gen(rec.target_ino, rec.target_version);

  switch (rec.op) {
    case DirOp::kCreate:
    case DirOp::kLink: {
      if (!dir_ok(rec.dir_ino)) {
        return OkStatus();
      }
      if (target_alive) {
        // Complete the operation (Section 4.2).
        LFS_RETURN_IF_ERROR(ensure_present(rec.dir_ino, rec.name, rec.target_ino,
                                           rec.target_type));
        LFS_RETURN_IF_ERROR(set_nlink(rec.target_ino, rec.new_nlink));
      } else {
        // "The only operation that can't be completed is the creation of a
        // new file for which the inode is never written; the directory entry
        // will be removed."
        LFS_RETURN_IF_ERROR(ensure_absent(rec.dir_ino, rec.name));
      }
      return OkStatus();
    }
    case DirOp::kUnlink: {
      if (dir_ok(rec.dir_ino)) {
        LFS_RETURN_IF_ERROR(ensure_absent(rec.dir_ino, rec.name));
      }
      if (target_alive) {
        if (rec.new_nlink == 0) {
          return DeleteFileContents(rec.target_ino);
        }
        return set_nlink(rec.target_ino, rec.new_nlink);
      }
      return OkStatus();
    }
    case DirOp::kRename: {
      if (dir_ok(rec.dir_ino)) {
        LFS_RETURN_IF_ERROR(ensure_absent(rec.dir_ino, rec.name));
      }
      if (rec.replaced_ino != kNilInode && imap_.IsAllocated(rec.replaced_ino) &&
          rec.replaced_ino != rec.target_ino &&
          same_gen(rec.replaced_ino, rec.replaced_version)) {
        if (rec.replaced_nlink == 0) {
          LFS_RETURN_IF_ERROR(DeleteFileContents(rec.replaced_ino));
        } else {
          LFS_RETURN_IF_ERROR(set_nlink(rec.replaced_ino, rec.replaced_nlink));
        }
      }
      if (dir_ok(rec.dir2_ino)) {
        if (target_alive) {
          LFS_RETURN_IF_ERROR(ensure_present(rec.dir2_ino, rec.name2, rec.target_ino,
                                             rec.target_type));
          LFS_RETURN_IF_ERROR(set_nlink(rec.target_ino, rec.new_nlink));
        } else {
          // The rename can't be completed (the moved inode never reached the
          // log, or its number now belongs to a successor generation), so the
          // destination name must not keep ANY binding this record made
          // obsolete: the dead target itself, or the replaced file whose
          // unlink-half was already asserted above. Records are replayed in
          // log order, so a later operation that rebinds the name re-asserts
          // it afterwards — removal here is always safe.
          LFS_RETURN_IF_ERROR(ensure_absent(rec.dir2_ino, rec.name2));
        }
      }
      return OkStatus();
    }
  }
  return OkStatus();
}

}  // namespace lfs
