// On-disk format of the log-structured filesystem.
//
// Disk layout (block addresses):
//
//   block 0                superblock (fixed; Table 1 "Superblock")
//   blocks 1 .. cr         checkpoint region 0 (fixed; Table 1, Section 4.1)
//   blocks 1+cr .. 1+2cr   checkpoint region 1
//   seg_start ...          segments 0..nsegments-1, each segment_blocks long
//
// Everything else — file data, indirect blocks, inode blocks, inode-map
// chunks, segment-usage chunks, and directory-operation-log blocks — lives
// in the log, i.e. inside segments. There is no free-block bitmap or free
// list anywhere (Section 3.3).
//
// A segment is filled by one or more *partial-segment writes*. Each partial
// write is a single sequential device I/O laid out as
//
//   [ segment summary block | payload block 0 | ... | payload block n-1 ]
//
// The summary identifies every payload block (kind + inode + file block
// number + version) and carries a sequence number and CRCs, which makes a
// partial write the atomic unit of logging: a torn partial write fails its
// payload CRC and is ignored by roll-forward.
//
// All structures are serialized explicitly in little-endian form via
// Encoder/Decoder; no host struct is ever memcpy'd to disk.

#ifndef LFS_LFS_LAYOUT_H_
#define LFS_LFS_LAYOUT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/disk/block_device.h"
#include "src/fs/file_system.h"
#include "src/util/relaxed.h"
#include "src/util/result.h"

namespace lfs {

using SegNo = uint32_t;
inline constexpr SegNo kNilSeg = 0xFFFFFFFFu;

inline constexpr uint32_t kSuperMagic = 0x4C465331;       // "LFS1"
inline constexpr uint32_t kSummaryMagic = 0x53554D31;     // "SUM1"
inline constexpr uint32_t kCheckpointMagic = 0x434B5031;  // "CKP1"
inline constexpr uint32_t kDirLogMagic = 0x444C4F31;      // "DLO1"
inline constexpr uint32_t kMultiLogMagic = 0x4D4C4731;    // "MLG1" (checkpoint extension)

// Serialized sizes.
inline constexpr uint32_t kInodeSlotSize = 160;       // bytes per inode in an inode block
inline constexpr uint32_t kImapEntrySize = 24;        // per-inode entry in an imap chunk
inline constexpr uint32_t kUsageEntrySize = 16;       // per-segment entry in a usage chunk
inline constexpr uint32_t kSummaryHeaderSize = 40;
inline constexpr uint32_t kSummaryEntrySize = 25;
inline constexpr uint32_t kNumDirect = 12;            // direct block pointers per inode

// What a payload block in the log contains; recorded in the summary entry
// for the block and used for liveness checks (cleaning) and roll-forward.
enum class BlockKind : uint8_t {
  kData = 1,            // file data; fbn = file block number
  kIndirect = 2,        // single-indirect pointer block; fbn = indirect index
  kDoubleIndirect = 3,  // double-indirect root; fbn = 0
  kInodeBlock = 4,      // packed inodes (self-describing slots)
  kImapChunk = 5,       // inode-map chunk; fbn = chunk index
  kUsageChunk = 6,      // segment-usage-table chunk; fbn = chunk index
  kDirLog = 7,          // directory-operation-log records (Section 4.2)
};

// --- superblock --------------------------------------------------------------

struct Superblock {
  uint32_t block_size = 0;
  uint32_t segment_blocks = 0;
  uint32_t nsegments = 0;
  uint64_t seg_start = 0;      // first block of segment 0
  uint32_t cr_blocks = 0;      // blocks per checkpoint region
  uint64_t cr_base0 = 0;       // first block of checkpoint region 0
  uint64_t cr_base1 = 0;
  uint32_t max_inodes = 0;
  uint32_t imap_chunks = 0;    // chunks covering max_inodes
  uint32_t usage_chunks = 0;   // chunks covering nsegments
  uint64_t total_blocks = 0;

  // Derived geometry helpers.
  BlockNo SegmentBase(SegNo seg) const { return seg_start + uint64_t{seg} * segment_blocks; }
  // Segment containing a block, or kNilSeg for the fixed area.
  SegNo SegOf(BlockNo block) const {
    if (block < seg_start) {
      return kNilSeg;
    }
    uint64_t seg = (block - seg_start) / segment_blocks;
    return seg < nsegments ? static_cast<SegNo>(seg) : kNilSeg;
  }
  uint32_t segment_bytes() const { return segment_blocks * block_size; }
  uint32_t inodes_per_block() const { return block_size / kInodeSlotSize; }
  uint32_t imap_entries_per_chunk() const { return block_size / kImapEntrySize; }
  uint32_t usage_entries_per_chunk() const { return block_size / kUsageEntrySize; }
  uint32_t pointers_per_block() const { return block_size / 8; }
  // Maximum payload blocks a single partial-segment write can describe.
  uint32_t max_summary_entries() const {
    return (block_size - kSummaryHeaderSize) / kSummaryEntrySize;
  }

  void EncodeTo(std::span<uint8_t> block) const;  // block.size() == block_size
  static Result<Superblock> DecodeFrom(std::span<const uint8_t> block);

  // Computes the full geometry for a device. Fails if the device is too
  // small to hold the fixed area plus at least `reserve+4` segments.
  static Result<Superblock> Compute(uint32_t block_size, uint64_t total_blocks,
                                    uint32_t segment_blocks, uint32_t max_inodes);
};

// --- inode -------------------------------------------------------------------

// File index structure (Table 1 "Inode"): attributes plus the disk addresses
// of the first kNumDirect blocks; larger files use a single- and a
// double-indirect block (Section 3.1). Inodes are written to the log packed
// into inode blocks; each slot is self-describing (carries its own inode
// number) so the cleaner and roll-forward can interpret inode blocks without
// outside context.
struct Inode {
  InodeNum ino = kNilInode;
  FileType type = FileType::kNone;
  uint16_t nlink = 0;
  uint32_t version = 0;  // matches the imap entry; bumped on delete/truncate-to-0
  uint64_t size = 0;
  uint64_t mtime = 0;
  BlockNo direct[kNumDirect] = {};
  BlockNo single_indirect = kNilBlock;
  BlockNo double_indirect = kNilBlock;

  void EncodeTo(std::span<uint8_t> slot) const;  // slot.size() == kInodeSlotSize
  static Result<Inode> DecodeFrom(std::span<const uint8_t> slot);
};

// --- segment summary ---------------------------------------------------------

struct SummaryEntry {
  BlockKind kind = BlockKind::kData;
  InodeNum ino = kNilInode;  // owning file (kData/kIndirect/kDoubleIndirect)
  uint64_t fbn = 0;          // file block number / indirect index / chunk index
  uint32_t version = 0;      // file uid = (ino, version); Section 3.3
  // Per-block modification time. The paper's Sprite LFS kept only one mtime
  // per file and called the per-block version out as planned work ("We plan
  // to modify the segment summary information to include modified times for
  // each block"); this implementation carries it, so age-sorting during
  // cleaning uses exact block ages even for partially rewritten files.
  uint64_t mtime = 0;
};

// Summary block for one partial-segment write (Table 1 "Segment summary").
struct SegmentSummary {
  uint64_t seq = 0;        // monotone log sequence number; orders roll-forward
  uint64_t timestamp = 0;  // logical clock at write time
  uint64_t youngest_mtime = 0;  // age of youngest block written (Section 3.6)
  uint32_t payload_crc = 0;     // CRC over all payload blocks; detects torn writes
  std::vector<SummaryEntry> entries;  // one per payload block, in order

  void EncodeTo(std::span<uint8_t> block) const;
  // Fails with Corruption for bad magic or a corrupted header.
  static Result<SegmentSummary> DecodeFrom(std::span<const uint8_t> block);
};

// --- inode map / segment usage table entries ---------------------------------

// In-memory and on-chunk entry of the inode map (Table 1 "Inode map").
struct ImapEntry {
  BlockNo inode_block = kNilBlock;  // block holding the inode; kNilBlock = free
  uint16_t slot = 0;                // inode slot within that block
  uint32_t version = 0;             // survives free/reuse so uids stay unique
  // Time of last access (the paper keeps access times in the inode map).
  // Relaxed so ReadAt, which runs under the shared filesystem lock, can bump
  // it while concurrent readers copy the entry.
  Relaxed<uint64_t> atime = 0;

  bool allocated() const { return inode_block != kNilBlock; }
  void EncodeTo(std::span<uint8_t> out) const;  // kImapEntrySize bytes
  static ImapEntry DecodeFrom(std::span<const uint8_t> in);
};

enum class SegState : uint8_t {
  kClean = 0,        // fully reusable; the writer may claim it
  kDirty = 1,        // contains log data (possibly all dead, awaiting checkpoint)
  kActive = 2,       // the segment currently being filled by the writer
  kQuarantined = 3,  // media damage detected; never allocated, never cleaned
};

// Per-segment entry of the segment usage table (Table 1, Section 3.6).
// log_id and reuse_count live in previously zero spare bytes of the 16-byte
// slot, so legacy images decode to the (0, 0) defaults and single-log images
// stay byte-identical.
struct SegUsageEntry {
  uint32_t live_bytes = 0;
  uint64_t last_write = 0;  // most recent mtime of data written to the segment
  SegState state = SegState::kClean;
  uint8_t log_id = 0;        // append point that last filled the segment
                             // (0 = metadata/hot, higher = colder)
  uint16_t reuse_count = 0;  // clean->active cycles: the filesystem-level
                             // erase count (wear proxy on flash)

  void EncodeTo(std::span<uint8_t> out) const;  // kUsageEntrySize bytes
  static SegUsageEntry DecodeFrom(std::span<const uint8_t> in);
};

// --- checkpoint region --------------------------------------------------------

// Contents of a checkpoint region (Section 4.1): the addresses of all inode
// map and segment usage table chunks, the log tail position, and allocation
// high-water marks. Two regions alternate; the one with the newest valid
// (CRC-checked) trailer wins at mount.
struct Checkpoint {
  uint64_t ckpt_seq = 0;         // monotone checkpoint counter
  uint64_t timestamp = 0;        // logical clock at checkpoint
  uint64_t next_summary_seq = 1; // next partial-write sequence number
  SegNo cur_segment = 0;         // segment the log tail is in
  uint32_t cur_offset = 0;       // next free block index within cur_segment
  uint32_t ninodes = 0;          // imap high-water mark (chunks beyond are empty)
  uint64_t clock = 1;            // logical clock restore value
  std::vector<BlockNo> imap_chunk_addr;   // imap_chunks entries (kNilBlock = none)
  std::vector<BlockNo> usage_chunk_addr;  // usage_chunks entries

  // Append points of the extra logs (logs 1..N-1) in multi-log mode, as
  // (segment, next free offset) pairs. Encoded after the chunk tables behind
  // a sub-magic, only when non-empty — a single-log checkpoint's bytes are
  // unchanged, and legacy regions (zero padding there) decode to empty.
  std::vector<std::pair<SegNo, uint32_t>> extra_logs;

  // Encodes into a whole checkpoint region (cr_blocks * block_size bytes).
  void EncodeTo(std::span<uint8_t> region) const;
  static Result<Checkpoint> DecodeFrom(std::span<const uint8_t> region);

  // Region size needed for the given chunk counts.
  static uint32_t RegionBlocks(uint32_t block_size, uint32_t imap_chunks, uint32_t usage_chunks);
};

// --- directory file format ----------------------------------------------------

// Directories are regular files in the log whose data blocks each hold an
// independent packed list of entries. Keeping blocks self-contained means an
// entry add/remove dirties one directory block, not the whole file.
std::vector<uint8_t> EncodeDirBlock(const std::vector<DirEntry>& entries, uint32_t block_size);
Result<std::vector<DirEntry>> DecodeDirBlock(std::span<const uint8_t> block);
// Bytes an entry occupies inside a directory block.
size_t DirEntryEncodedSize(const DirEntry& entry);
// Payload bytes available for entries in one directory block.
size_t DirBlockCapacity(uint32_t block_size);

// --- directory operation log ---------------------------------------------------

enum class DirOp : uint8_t {
  kCreate = 1,  // create file or directory: add entry, target nlink set
  kLink = 2,    // add entry for existing inode
  kUnlink = 3,  // remove entry (also rmdir)
  kRename = 4,  // atomically move an entry, possibly replacing the target
};

// One record of the directory operation log (Section 4.2). For kRename,
// (dir_ino, name) is the source entry and (dir2_ino, name2) the destination;
// replaced_ino is the inode displaced at the destination (kNilInode if none).
struct DirLogRecord {
  DirOp op = DirOp::kCreate;
  InodeNum dir_ino = kNilInode;
  std::string name;
  InodeNum target_ino = kNilInode;
  uint32_t target_version = 0;
  uint16_t new_nlink = 0;       // target's reference count after the operation
  FileType target_type = FileType::kNone;
  InodeNum dir2_ino = kNilInode;   // rename only
  std::string name2;               // rename only
  InodeNum replaced_ino = kNilInode;  // rename only
  uint32_t replaced_version = 0;      // replaced target's version at log time
  uint16_t replaced_nlink = 0;        // replaced target's count after rename
};

// Packs records into one dirlog block / parses a dirlog block.
std::vector<uint8_t> EncodeDirLogBlock(const std::vector<DirLogRecord>& records,
                                       uint32_t block_size);
Result<std::vector<DirLogRecord>> DecodeDirLogBlock(std::span<const uint8_t> block);
// Upper bound on records that fit given total name bytes; callers split
// batches conservatively.
size_t DirLogRecordEncodedSize(const DirLogRecord& rec);

}  // namespace lfs

#endif  // LFS_LFS_LAYOUT_H_
