// Tunable parameters of the log-structured filesystem.
//
// Defaults follow the paper's Sprite LFS configuration: 4-KB blocks and
// 1-MB segments (Sprite used 512 KB or 1 MB), cost-benefit cleaning with
// age-sorted rewrites, cleaning triggered when clean segments fall below a
// few tens and continuing until 50-100 are clean (Section 3.4).

#ifndef LFS_LFS_CONFIG_H_
#define LFS_LFS_CONFIG_H_

#include <cstdint>

namespace lfs {

enum class CleaningPolicy {
  kGreedy,       // clean the least-utilized segments (Section 3.5, Figure 4)
  kCostBenefit,  // maximize (1-u)*age/(1+u)          (Section 3.5, Figure 6-7)
};

struct LfsConfig {
  uint32_t block_size = 4096;
  uint32_t segment_blocks = 256;  // 1-MB segments at 4-KB blocks
  uint32_t max_inodes = 65536;

  // Cleaning policy (Section 3.4 issues 3 and 4).
  CleaningPolicy policy = CleaningPolicy::kCostBenefit;
  bool age_sort = true;  // group live blocks by age when rewriting them

  // Cleaning thresholds (Section 3.4 issues 1 and 2). Cleaning starts when
  // the number of clean segments drops below `clean_lo` and continues until
  // it reaches `clean_hi`; at most `segments_per_pass` segments are read per
  // cleaning pass.
  uint32_t clean_lo = 16;
  uint32_t clean_hi = 24;
  uint32_t segments_per_pass = 16;

  // Read strategy for cleaning. The paper assumed whole-segment reads
  // ("conservative assumption that a segment must be read in its entirety to
  // recover the live blocks") but noted "in practice it may be faster to
  // read just the live blocks, particularly if the utilization is very low
  // (we haven't tried this in Sprite LFS)". true enables that untried
  // variant: the cleaner reads the summary chain, liveness-checks from the
  // in-memory tables, and then reads only the live block runs.
  bool cleaner_read_live_blocks_only = false;

  // Segments the ordinary write path may never consume, so the cleaner
  // always has space to compact into.
  uint32_t reserve_segments = 4;

  // Log append points (flash-era hot/cold segregation). 1 = the classic
  // single log, byte-identical to the original layout. With N > 1 the
  // segment writer classifies blocks at write time: metadata and young data
  // fill log 0, progressively older data fills logs 1..N-1, so cleaner
  // survivors stop remixing into hot segments and per-temperature segment
  // populations emerge (SSDFS's multi-head argument; shrinks both LFS write
  // cost and device-level write amplification on SSDs).
  uint32_t num_logs = 1;

  // Multi-log only (ignored when num_logs == 1): the cleaner declines
  // victims whose live fraction is at or above this bar, unless nothing
  // else is cleanable. Under the classic single log, compacting a nearly
  // full old segment still pays — it sorts cold data together so future
  // cleanings skip it. With write-time segregation that sorting already
  // happened, so re-copying a nearly full cold segment buys almost no free
  // space and no better layout; worse, the copy keeps the blocks' old
  // mtimes, so cost-benefit's age term would pick the freshly compacted
  // segment again and again (a cold-data copy storm). 1.0 disables the bar.
  double multilog_victim_max_u = 0.85;

  // Issue BlockDevice::Trim for segments that turn clean, after the next
  // checkpoint makes the free durable. Free on devices that ignore it;
  // lets an SSD backend drop dead flash pages instead of copying them in GC.
  bool trim_on_free = true;

  // --- fine-grained reclamation (all off by default: the legacy whole-
  // segment cost-benefit cleaner stays byte-identical) ------------------------

  // Adaptive policy switching: a governor watches the live-utilization
  // histogram the selection index maintains and picks greedy vs cost-benefit
  // per pass (and per log with num_logs > 1: the hot log follows the
  // histogram, colder logs always use cost-benefit, whose age term is what
  // makes cold-segment cleaning rational). Overrides `policy`; disables the
  // verify_selection cross-check (the reference implements a fixed policy).
  bool adaptive_cleaning = false;

  // The governor calls a dirty population "emptied out" when at least this
  // fraction of dirty segments sits below `governor_low_u` utilization; an
  // emptied-out population makes greedy optimal (the cheapest victims are
  // nearly free and age adds nothing), anything else keeps cost-benefit.
  double governor_greedy_fraction = 0.35;
  double governor_low_u = 0.25;

  // Partial-segment compaction (Lomet & Luo): victims at or above
  // `partial_compaction_min_u` utilization are drained incrementally — at
  // most `partial_compaction_max_blocks` live blocks relocated per victim
  // per pass, with a per-segment resume cursor — instead of round-tripping
  // the whole segment. Live bytes are debited off the victim exactly as
  // blocks move, so a fully drained victim is reclaimed either at pass end
  // or for free by the zero-live checkpoint sweep.
  bool partial_compaction = false;
  double partial_compaction_min_u = 0.5;
  uint32_t partial_compaction_max_blocks = 64;

  // Cleaner QoS: a token bucket over the modeled disk clock bounding the
  // cleaner's copy I/O (read + write bytes per cleaning pass). 0 disables
  // throttling. When the bucket is empty a discretionary pass defers;
  // below the critical clean floor the cleaner escalates and overdraws the
  // bucket (deficit), repaying it before discretionary cleaning resumes —
  // the no-wedge guarantee is never traded for smoothness.
  double cleaner_qos_bytes_per_sec = 0.0;
  double cleaner_qos_burst_sec = 0.25;

  // Dirty file data is buffered in memory and written in segment-sized
  // batches (Section 2.1's write buffering). A flush is forced once this
  // many dirty blocks accumulate.
  uint32_t write_buffer_blocks = 256;

  // Automatic checkpoint after this many bytes of new log data (Section 4.1
  // suggests data-driven checkpointing); 0 disables automatic checkpoints,
  // leaving only Sync()/unmount checkpoints.
  uint64_t checkpoint_interval_bytes = 0;

  // Cross-check every victim selection against the reference O(n log n)
  // scan-and-sort and count divergences in stats.selection_mismatches.
  // Debug/test aid for the incremental selection index; off in production.
  bool verify_selection = false;

  // Device I/O retry policy for transient media errors: each log read/write
  // is attempted up to `io_max_attempts` times, with an exponential backoff
  // (starting at `io_backoff_ticks` logical-clock ticks) between attempts.
  // 1 attempt means no retries.
  uint32_t io_max_attempts = 4;
  uint64_t io_backoff_ticks = 1;

  // Verify payload CRCs on every cache-missing log read by walking the
  // segment's summary chain, so silent media corruption surfaces as a
  // pinpointed kCorruption instead of garbage data. Costs extra reads per
  // miss; meant for paranoid/diagnostic mounts and fault testing.
  bool verify_read_crcs = false;

  // Clean-block read cache (block count; 0 disables). Sprite kept inodes
  // and hot file blocks in its file cache; recovery in particular depends on
  // cached inode blocks (each holds ~25 inodes that roll-forward revisits).
  uint32_t read_cache_blocks = 2048;

  // Concurrent front-end (off by default so single-threaded runs stay
  // byte-for-byte deterministic). When true the filesystem may be called
  // from multiple threads: operations run under a *shared* filesystem lock
  // plus striped per-inode locks, mutators join an open group-commit
  // transaction (xv6-style BeginOp/EndOp counting), and a single committer
  // per batch takes the filesystem lock exclusively to flush the staged
  // blocks to the segment writer. A background cleaner thread handles the
  // clean-segment watermark instead of the foreground write path, which
  // only cleans synchronously once clean segments fall to the critical
  // floor (Section 4's sketch of Sprite LFS's kernel cleaner running "in
  // the background when the disk is idle").
  bool concurrent = false;

  // Concurrent-mode tunables (ignored when concurrent == false).
  //
  // Stripe count for the per-inode lock table and the in-memory inode-table
  // / dirty-block shards (rounded up to a power of two). More stripes means
  // fewer false lock collisions between unrelated inodes at the cost of a
  // few KB of mutexes.
  uint32_t inode_shards = 64;

  // Group commit: at most this many mutators may join one open transaction
  // before BeginOp blocks; bounds both the commit batch and how long the
  // committer waits for stragglers to drain.
  uint32_t txn_max_ops = 64;

  // Worst-case staged log blocks one open transaction may reserve before
  // further BeginOp calls wait for a commit. 0 means 4 * write_buffer_blocks.
  uint32_t txn_max_staged_blocks = 0;

  // Stripe count for the clean-block read cache (rounded up to a power of
  // two). Each stripe is an independent LRU behind its own mutex, selected
  // by block address, so concurrent read traffic doesn't funnel through one
  // cache lock. The single-threaded regime always uses one stripe, keeping
  // its lookup and eviction order byte-identical to the unsharded cache.
  uint32_t read_cache_shards = 16;
};

}  // namespace lfs

#endif  // LFS_LFS_CONFIG_H_
