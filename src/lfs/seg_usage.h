// SegUsage: the segment usage table (Table 1, Section 3.6).
//
// For each segment it records the number of live bytes and the most recent
// modified time of any block in the segment — exactly the two inputs of the
// cost-benefit cleaning policy. Values are maintained incrementally: the
// segment writer adds live bytes as blocks are appended, and the filesystem
// subtracts them as blocks are overwritten, deleted, or migrated by the
// cleaner. If a segment's count falls to zero it can be reused without
// cleaning (after the next checkpoint covers the fact).
//
// Like the inode map, the table lives in memory, is chunked, and dirty
// chunks are logged at checkpoint time with their addresses recorded in the
// checkpoint region.
//
// Concurrency: mutators (AddLive/SubLive/SetState/...) serialize on an
// internal mutex so the concurrent front-end may call them under the
// filesystem's *shared* lock (truncate and unlink subtract live bytes while
// other ops run). The hot read-path fields are lock-free relaxed atomics:
// per-segment write sequences (checked on every cached read) and the
// aggregate counters (clean/quarantined/total-live, read by space checks and
// StatFs). Everything that returns references into the table — Get,
// victim-selection cursors, chunk encode/dirty harvest — is checkpoint- or
// cleaner-path state and requires the filesystem's exclusive lock (or a
// quiesced mount path).

#ifndef LFS_LFS_SEG_USAGE_H_
#define LFS_LFS_SEG_USAGE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "src/lfs/layout.h"
#include "src/util/relaxed.h"
#include "src/util/victim_index.h"

namespace lfs {

class SegUsage {
 public:
  SegUsage(uint32_t nsegments, uint32_t segment_bytes, uint32_t entries_per_chunk)
      : segment_bytes_(segment_bytes),
        entries_per_chunk_(entries_per_chunk),
        entries_(nsegments),
        write_seq_(nsegments, 0),
        chunk_addrs_((nsegments + entries_per_chunk - 1) / entries_per_chunk, kNilBlock),
        victim_index_(nsegments, segment_bytes),
        zero_live_words_((nsegments + 63) / 64, 0) {
    clean_count_ = nsegments;
  }

  uint32_t nsegments() const { return static_cast<uint32_t>(entries_.size()); }
  const SegUsageEntry& Get(SegNo seg) const { return entries_[seg]; }
  double Utilization(SegNo seg) const {
    return static_cast<double>(entries_[seg].live_bytes) / segment_bytes_;
  }
  uint32_t clean_count() const { return clean_count_; }
  uint32_t quarantined_count() const { return quarantined_count_; }
  uint32_t segment_bytes() const { return segment_bytes_; }

  // Live-byte accounting. AddLive also refreshes the segment's last-write
  // time when `mtime` is newer.
  void AddLive(SegNo seg, uint32_t bytes, uint64_t mtime);
  void SubLive(SegNo seg, uint32_t bytes);

  void SetState(SegNo seg, SegState state);

  // Tags the segment with the append point (log) that fills it — the
  // persisted temperature label. Dirties the chunk only on change, so
  // single-log filesystems (always log 0, the default) stay byte-identical.
  void SetLogId(SegNo seg, uint8_t log_id);

  // Segments that transitioned into kClean since the last TakeFreed() — the
  // filesystem's TRIM feed. Drained after a checkpoint makes the frees
  // durable; a segment reused (kClean -> kActive) before the drain is simply
  // skipped by the caller's state re-check.
  std::vector<SegNo> TakeFreed() {
    std::vector<SegNo> out;
    out.swap(freed_);
    return out;
  }

  // In-memory only: the newest log sequence number written to the segment.
  // The cleaner refuses to touch segments written after the last checkpoint
  // so that roll-forward's log tail can never be recycled underneath it.
  // Relaxed atomics: the read-cache validity check loads these on every
  // cached read, concurrently with appends.
  void SetWriteSeq(SegNo seg, uint64_t seq) { write_seq_[seg] = seq; }
  uint64_t write_seq(SegNo seg) const { return write_seq_[seg]; }

  // Next clean segment to fill (lowest-numbered), or kNilSeg if none.
  // Segments freed since the last checkpoint are held back: recovery only
  // scans checkpoint-clean segments (plus the recorded append points) for
  // the post-crash log tail, so a write into a checkpoint-dirty segment
  // would be invisible to roll-forward and read as corruption by the
  // checker. The barrier lifts when a checkpoint records the free. The
  // checkpoint's own appends (include_pending) are exempt: a swept segment's
  // clean state becomes durable with the very CR write those appends
  // precede, and if that write tears, roll-forward stops at the sequence
  // gap before the first append into the still-dirty segment — everything
  // flushed earlier is already in scannable territory.
  SegNo PickClean(bool include_pending = false) const;

  // Lifts the reuse barrier: every segment freed so far is now recorded
  // clean by a durable checkpoint and may be picked for new writes.
  void MarkFreesDurable();

  // --- victim selection --------------------------------------------------------

  // The selection index holds exactly the kDirty segments, keyed by their
  // current (live_bytes, last_write); it is kept in sync by AddLive/SubLive/
  // SetState/LoadChunk. Victims pop in exact reference-sort order.
  const VictimIndex& victim_index() const { return victim_index_; }
  VictimIndex::Cursor SelectVictims(bool greedy, uint64_t now) const {
    return victim_index_.Select(greedy, now);
  }

  // Dirty segments whose data has entirely died: reclaimable for free after
  // a checkpoint. Maintained incrementally so the cleaner's harvest check is
  // O(1) instead of a full-table scan.
  uint32_t zero_live_dirty_count() const { return zero_live_dirty_count_; }
  // Appends the zero-live dirty segments in ascending order.
  void AppendZeroLiveDirty(std::vector<SegNo>* out) const;

  // The live-utilization histogram over dirty segments (bucket i covers u in
  // [i/n, (i+1)/n)): the adaptive cleaning governor's input.
  std::vector<uint32_t> UtilizationHistogram() const {
    return victim_index_.BucketHistogram();
  }

  // --- partial-compaction resume cursors ---------------------------------------
  //
  // A partially drained victim keeps, in memory only, the summary-chain
  // offset where the last drain stopped, so the next pass resumes there
  // instead of re-reading the already-relocated prefix. Reset whenever the
  // segment leaves kDirty (reclaimed or recycled); lost on remount, which
  // merely costs a rescan (relocated blocks re-check as dead).
  uint32_t compact_cursor(SegNo seg) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = compact_cursors_.find(seg);
    return it == compact_cursors_.end() ? 0 : it->second;
  }
  void set_compact_cursor(SegNo seg, uint32_t offset) {
    std::lock_guard<std::mutex> lock(mu_);
    if (offset == 0) {
      compact_cursors_.erase(seg);
    } else {
      compact_cursors_[seg] = offset;
    }
  }

  // Overall disk capacity utilization: live bytes / total segment bytes.
  double DiskUtilization() const;
  uint64_t TotalLiveBytes() const { return total_live_; }

  // --- chunk persistence -------------------------------------------------------

  uint32_t chunk_count() const { return static_cast<uint32_t>(chunk_addrs_.size()); }
  uint32_t chunk_of(SegNo seg) const { return seg / entries_per_chunk_; }
  uint32_t entries_per_chunk() const { return entries_per_chunk_; }
  BlockNo chunk_addr(uint32_t chunk) const { return chunk_addrs_[chunk]; }
  void set_chunk_addr(uint32_t chunk, BlockNo addr) { chunk_addrs_[chunk] = addr; }

  // Read under the filesystem's exclusive lock: shared-mode mutators insert
  // via MarkDirty under mu_, and the rwlock hand-off orders those inserts
  // before the checkpoint's harvest.
  const std::set<uint32_t>& dirty_chunks() const { return dirty_chunks_; }
  void MarkChunkDirty(uint32_t chunk) {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_chunks_.insert(chunk);
  }
  void ClearDirty() {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_chunks_.clear();
  }
  // Clears one chunk's dirty flag. Checkpointing must use this (not
  // ClearDirty): serializing chunks itself dirties entries, and wiping the
  // whole set would lose that dirtiness and leave stale values on disk
  // forever.
  void ClearDirtyChunk(uint32_t chunk) {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_chunks_.erase(chunk);
  }

  void EncodeChunk(uint32_t chunk, std::span<uint8_t> block) const;
  void LoadChunk(uint32_t chunk, std::span<const uint8_t> block);

  // Recomputes clean_count_ and quarantined_count_ after loading chunks.
  void RecountClean();

 private:
  void MarkDirty(SegNo seg) { dirty_chunks_.insert(chunk_of(seg)); }  // caller holds mu_
  // Re-syncs the selection index and zero-live set with entries_[seg]; must
  // run after every mutation of a segment's state or live-byte count.
  // Caller holds mu_.
  void SyncIndex(SegNo seg);

  uint32_t segment_bytes_;
  uint32_t entries_per_chunk_;
  mutable std::mutex mu_;  // serializes mutators called under the shared fs lock
  std::vector<SegUsageEntry> entries_;
  std::vector<Relaxed<uint64_t>> write_seq_;
  std::vector<BlockNo> chunk_addrs_;
  std::set<uint32_t> dirty_chunks_;
  std::vector<SegNo> freed_;      // became kClean since last TakeFreed()
  std::set<SegNo> pending_reuse_; // became kClean since last checkpoint
  std::map<SegNo, uint32_t> compact_cursors_;  // partial-drain resume offsets
  Relaxed<uint32_t> clean_count_{0};
  Relaxed<uint32_t> quarantined_count_{0};
  Relaxed<uint64_t> total_live_{0};  // sum of live_bytes, maintained incrementally

  VictimIndex victim_index_;               // kDirty segments only
  std::vector<uint64_t> zero_live_words_;  // bitmap: kDirty && live_bytes == 0
  Relaxed<uint32_t> zero_live_dirty_count_{0};
};

}  // namespace lfs

#endif  // LFS_LFS_SEG_USAGE_H_
