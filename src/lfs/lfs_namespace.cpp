// Directories and the namespace operations.
//
// Directories are ordinary files in the log whose blocks each hold an
// independent packed entry list; a parsed DirCache (with a name index) backs
// lookups. Every namespace mutation appends a directory-operation-log record
// (Section 4.2) before the affected directory block and inodes reach the
// log, which is what lets roll-forward restore entry/refcount consistency.
//
// Each public operation has two front-ends (threading-model note in lfs.h):
// the single-threaded regime resolves and mutates under the exclusive
// filesystem lock exactly as before; the concurrent regime resolves with
// transient per-directory stripe locks, then acquires every involved inode's
// stripe in ascending order (InodeLockSet), re-verifies the final
// components under those locks — retrying if a concurrent rename/unlink
// moved them — and runs the same *Locked tail inside a group-commit
// transaction.

#include <algorithm>
#include <cassert>
#include <string>

#include "src/lfs/lfs.h"

namespace lfs {

namespace {
// Worst-case log-space reservation (blocks) for one namespace mutation: a
// dirlog block, a directory data block, an indirect touch-up, and an inode
// block for each of the up-to-two affected inodes.
constexpr uint64_t kNamespaceOpReserve = 8;
// Lock-and-verify retry cap; exceeding it means a racing writer kept moving
// the entry, and the freshest lookup outcome is returned instead.
constexpr int kVerifyRetries = 64;
}  // namespace

Result<LfsFileSystem::DirCache*> LfsFileSystem::GetDirCache(InodeNum dir_ino) {
  // May run under the shared fs lock (lookups, ReadDir), so structural
  // access to the shard goes through its mutex. std::map nodes are stable:
  // the returned pointer outlives the lock. Two shared holders may both
  // parse the directory; emplace keeps the first copy.
  InodeTableShard& shard = TableShard(dir_ino);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.dirs.find(dir_ino);
    if (it != shard.dirs.end()) {
      return &it->second;
    }
  }
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(dir_ino));
  if (fm->inode.type != FileType::kDirectory) {
    return NotADirectoryError("inode " + std::to_string(dir_ino) + " is not a directory");
  }
  DirCache cache;
  uint64_t nblocks = BlockCountFor(fm->inode.size);
  std::vector<uint8_t> block(sb_.block_size);
  for (uint64_t b = 0; b < nblocks; b++) {
    LFS_RETURN_IF_ERROR(ReadFileBlock(fm, dir_ino, b, block));
    LFS_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, DecodeDirBlock(block));
    size_t used = 0;
    for (const DirEntry& e : entries) {
      used += DirEntryEncodedSize(e);
      cache.index.emplace(e.name, e.ino);
    }
    cache.blocks.push_back(std::move(entries));
    cache.used_bytes.push_back(used);
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [pos, inserted] = shard.dirs.emplace(dir_ino, std::move(cache));
  (void)inserted;
  return &pos->second;
}

Result<InodeNum> LfsFileSystem::LookupInDir(InodeNum dir_ino, std::string_view name) {
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(dir_ino));
  auto it = cache->index.find(std::string(name));
  if (it != cache->index.end()) {
    return it->second;
  }
  return NotFoundError("no entry '" + std::string(name) + "' in directory " +
                       std::to_string(dir_ino));
}

Result<InodeNum> LfsFileSystem::LookupInDirTransient(InodeNum dir_ino, std::string_view name) {
  InodeLockSet il(LockTable(), {dir_ino}, /*exclusive=*/false);
  return LookupInDir(dir_ino, name);
}

Result<InodeNum> LfsFileSystem::WalkPathConcurrent(std::string_view path) {
  LFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  InodeNum ino = kRootInode;
  for (const std::string& comp : parts) {
    LFS_ASSIGN_OR_RETURN(ino, LookupInDirTransient(ino, comp));
  }
  return ino;
}

Result<InodeNum> LfsFileSystem::ResolveDirConcurrent(std::string_view path) {
  LFS_ASSIGN_OR_RETURN(InodeNum ino, WalkPathConcurrent(path));
  InodeLockSet il(LockTable(), {ino}, /*exclusive=*/false);
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type != FileType::kDirectory) {
    return NotADirectoryError(std::string(path));
  }
  return ino;
}

Result<std::pair<InodeNum, std::string>> LfsFileSystem::ResolveParentConcurrent(
    std::string_view path) {
  LFS_ASSIGN_OR_RETURN(auto split, SplitParent(path));
  LFS_ASSIGN_OR_RETURN(InodeNum parent, ResolveDirConcurrent(split.first));
  return std::make_pair(parent, split.second);
}

Status LfsFileSystem::WriteDirBlock(InodeNum dir_ino, uint64_t fbn) {
  DirCache& cache = *FindDirCache(dir_ino);
  StoreDirtyBlock(dir_ino, fbn, EncodeDirBlock(cache.blocks[fbn], sb_.block_size));
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(dir_ino));
  uint64_t new_size = uint64_t{cache.blocks.size()} * sb_.block_size;
  LFS_RETURN_IF_ERROR(GrowFileMap(fm, cache.blocks.size()));
  fm->inode.size = std::max(fm->inode.size, new_size);
  fm->inode.mtime = clock_.Tick();
  fm->inode_dirty = true;
  MarkInodeDirty(dir_ino);
  return OkStatus();
}

Status LfsFileSystem::AddDirEntry(InodeNum dir_ino, const DirEntry& entry) {
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(dir_ino));
  size_t need = DirEntryEncodedSize(entry);
  size_t capacity = DirBlockCapacity(sb_.block_size);
  for (size_t b = 0; b < cache->blocks.size(); b++) {
    if (cache->used_bytes[b] + need <= capacity) {
      cache->blocks[b].push_back(entry);
      cache->used_bytes[b] += need;
      cache->index.emplace(entry.name, entry.ino);
      return WriteDirBlock(dir_ino, b);
    }
  }
  LFS_RETURN_IF_ERROR(EnsureSpaceForWrite(1));
  cache->blocks.push_back({entry});
  cache->used_bytes.push_back(need);
  cache->index.emplace(entry.name, entry.ino);
  return WriteDirBlock(dir_ino, cache->blocks.size() - 1);
}

Status LfsFileSystem::RemoveDirEntry(InodeNum dir_ino, std::string_view name) {
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(dir_ino));
  for (size_t b = 0; b < cache->blocks.size(); b++) {
    auto& entries = cache->blocks[b];
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->name == name) {
        cache->used_bytes[b] -= DirEntryEncodedSize(*it);
        cache->index.erase(it->name);
        entries.erase(it);
        return WriteDirBlock(dir_ino, b);
      }
    }
  }
  return NotFoundError("no entry '" + std::string(name) + "' to remove");
}

Result<InodeNum> LfsFileSystem::ResolveDir(std::string_view path) {
  LFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  InodeNum ino = kRootInode;
  for (const std::string& comp : parts) {
    LFS_ASSIGN_OR_RETURN(ino, LookupInDir(ino, comp));
  }
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type != FileType::kDirectory) {
    return NotADirectoryError(std::string(path));
  }
  return ino;
}

Result<std::pair<InodeNum, std::string>> LfsFileSystem::ResolveParent(std::string_view path) {
  LFS_ASSIGN_OR_RETURN(auto split, SplitParent(path));
  LFS_ASSIGN_OR_RETURN(InodeNum parent, ResolveDir(split.first));
  return std::make_pair(parent, split.second);
}

Result<InodeNum> LfsFileSystem::Lookup(std::string_view path) {
  if (cfg_.concurrent) {
    txn_.WaitNotCommitting();
    std::shared_lock<std::shared_mutex> lock(fs_mu_);
    obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kLookup, device_, &clock_);
    return WalkPathConcurrent(path);
  }
  std::shared_lock<std::shared_mutex> lock(fs_mu_);
  return LookupImpl(path);
}

Result<InodeNum> LfsFileSystem::LookupImpl(std::string_view path) {
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kLookup, device_, &clock_);
  LFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  InodeNum ino = kRootInode;
  for (const std::string& comp : parts) {
    LFS_ASSIGN_OR_RETURN(ino, LookupInDir(ino, comp));
  }
  return ino;
}

void LfsFileSystem::LogDirOp(DirLogRecord record) {
  if (in_recovery_) {
    return;  // recovery repairs are themselves checkpointed, not re-logged
  }
  std::lock_guard<std::mutex> lock(dirlog_mu_);
  pending_dirlog_.push_back(std::move(record));
}

// --- create / mkdir ------------------------------------------------------------

Result<InodeNum> LfsFileSystem::CreateLocked(InodeNum dir_ino, const std::string& name,
                                             std::string_view path) {
  if (LookupInDir(dir_ino, name).ok()) {
    return AlreadyExistsError(std::string(path));
  }
  LFS_RETURN_IF_ERROR(EnsureSpaceForWrite(1));
  LFS_ASSIGN_OR_RETURN(InodeNum ino, imap_.Allocate());

  FileMap fm;
  fm.inode.ino = ino;
  fm.inode.type = FileType::kRegular;
  fm.inode.nlink = 1;
  fm.inode.version = imap_.Get(ino).version;
  fm.inode.mtime = clock_.Tick();
  fm.inode_dirty = true;
  {
    InodeTableShard& shard = TableShard(ino);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.files[ino] = std::move(fm);
  }
  MarkInodeDirty(ino);

  DirLogRecord rec;
  rec.op = DirOp::kCreate;
  rec.dir_ino = dir_ino;
  rec.name = name;
  rec.target_ino = ino;
  rec.target_version = imap_.Get(ino).version;
  rec.new_nlink = 1;
  rec.target_type = FileType::kRegular;
  LogDirOp(std::move(rec));

  LFS_RETURN_IF_ERROR(AddDirEntry(dir_ino, DirEntry{name, ino, FileType::kRegular}));
  return ino;
}

Result<InodeNum> LfsFileSystem::Create(std::string_view path) {
  if (cfg_.concurrent) {
    obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kCreate, device_, &clock_);
    txn_.WaitNotCommitting();
    txn_.BeginOp(kNamespaceOpReserve);
    Result<InodeNum> result = [&]() -> Result<InodeNum> {
      std::shared_lock<std::shared_mutex> lock(fs_mu_);
      LFS_RETURN_IF_ERROR(CheckWritable());
      LFS_ASSIGN_OR_RETURN(auto parent, ResolveParentConcurrent(path));
      auto [dir_ino, name] = parent;
      InodeLockSet il(LockTable(), {dir_ino}, /*exclusive=*/true);
      return CreateLocked(dir_ino, name, path);
    }();
    Status st = EndMutation(result.status());
    if (!st.ok()) {
      return st;
    }
    return result;
  }
  std::unique_lock<std::shared_mutex> lock(fs_mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kCreate, device_, &clock_);
  LFS_RETURN_IF_ERROR(CheckWritable());
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  auto [dir_ino, name] = parent;
  LFS_ASSIGN_OR_RETURN(InodeNum ino, CreateLocked(dir_ino, name, path));
  LFS_RETURN_IF_ERROR(MaybeFlush());
  return ino;
}

Status LfsFileSystem::MkdirLocked(InodeNum dir_ino, const std::string& name,
                                  std::string_view path) {
  if (LookupInDir(dir_ino, name).ok()) {
    return AlreadyExistsError(std::string(path));
  }
  LFS_RETURN_IF_ERROR(EnsureSpaceForWrite(1));
  LFS_ASSIGN_OR_RETURN(InodeNum ino, imap_.Allocate());

  FileMap fm;
  fm.inode.ino = ino;
  fm.inode.type = FileType::kDirectory;
  fm.inode.nlink = 1;
  fm.inode.version = imap_.Get(ino).version;
  fm.inode.mtime = clock_.Tick();
  fm.inode_dirty = true;
  {
    InodeTableShard& shard = TableShard(ino);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.files[ino] = std::move(fm);
    shard.dirs[ino] = DirCache{};
  }
  MarkInodeDirty(ino);

  DirLogRecord rec;
  rec.op = DirOp::kCreate;
  rec.dir_ino = dir_ino;
  rec.name = name;
  rec.target_ino = ino;
  rec.target_version = imap_.Get(ino).version;
  rec.new_nlink = 1;
  rec.target_type = FileType::kDirectory;
  LogDirOp(std::move(rec));

  return AddDirEntry(dir_ino, DirEntry{name, ino, FileType::kDirectory});
}

Status LfsFileSystem::Mkdir(std::string_view path) {
  if (cfg_.concurrent) {
    obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kMkdir, device_, &clock_);
    txn_.WaitNotCommitting();
    txn_.BeginOp(kNamespaceOpReserve);
    Status st = [&]() -> Status {
      std::shared_lock<std::shared_mutex> lock(fs_mu_);
      LFS_RETURN_IF_ERROR(CheckWritable());
      LFS_ASSIGN_OR_RETURN(auto parent, ResolveParentConcurrent(path));
      auto [dir_ino, name] = parent;
      InodeLockSet il(LockTable(), {dir_ino}, /*exclusive=*/true);
      return MkdirLocked(dir_ino, name, path);
    }();
    return EndMutation(st);
  }
  std::unique_lock<std::shared_mutex> lock(fs_mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kMkdir, device_, &clock_);
  LFS_RETURN_IF_ERROR(CheckWritable());
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  auto [dir_ino, name] = parent;
  LFS_RETURN_IF_ERROR(MkdirLocked(dir_ino, name, path));
  return MaybeFlush();
}

// --- unlink / rmdir ------------------------------------------------------------

Status LfsFileSystem::DeleteFileContents(InodeNum ino) {
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  LFS_RETURN_IF_ERROR(ShrinkFileMap(ino, fm, 0));  // frees data + indirect blocks
  ImapEntry old = imap_.Get(ino);
  SegNo old_seg = sb_.SegOf(old.inode_block);
  if (old.allocated() && old_seg != kNilSeg) {
    usage_.SubLive(old_seg, kInodeSlotSize);
  }
  {
    std::lock_guard<std::mutex> lock(dirty_inodes_mu_);
    dirty_inodes_.erase(ino);
  }
  EraseInodeState(ino);
  // Free the number strictly last: Free makes it immediately reusable by a
  // concurrent Create on another stripe, and the teardown above must not be
  // able to destroy the new owner's freshly inserted state.
  imap_.Free(ino);
  return OkStatus();
}

Status LfsFileSystem::UnlinkLocked(InodeNum dir_ino, const std::string& name, InodeNum ino,
                                   std::string_view path) {
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError(std::string(path) + " (use Rmdir)");
  }

  DirLogRecord rec;
  rec.op = DirOp::kUnlink;
  rec.dir_ino = dir_ino;
  rec.name = name;
  rec.target_ino = ino;
  rec.target_version = fm->inode.version;
  rec.new_nlink = static_cast<uint16_t>(fm->inode.nlink - 1);
  rec.target_type = FileType::kRegular;
  LogDirOp(std::move(rec));

  LFS_RETURN_IF_ERROR(RemoveDirEntry(dir_ino, name));
  fm->inode.nlink--;
  if (fm->inode.nlink == 0) {
    LFS_RETURN_IF_ERROR(DeleteFileContents(ino));
  } else {
    fm->inode.mtime = clock_.Tick();
    fm->inode_dirty = true;
    MarkInodeDirty(ino);
  }
  return OkStatus();
}

Status LfsFileSystem::Unlink(std::string_view path) {
  if (cfg_.concurrent) {
    obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kUnlink, device_, &clock_);
    txn_.WaitNotCommitting();
    txn_.BeginOp(kNamespaceOpReserve);
    Status st = [&]() -> Status {
      std::shared_lock<std::shared_mutex> lock(fs_mu_);
      LFS_RETURN_IF_ERROR(CheckWritable());
      LFS_ASSIGN_OR_RETURN(auto parent, ResolveParentConcurrent(path));
      auto [dir_ino, name] = parent;
      // Lock-and-verify: the target's stripe can only be chosen after the
      // lookup, so lock {dir, target} in order and re-check the entry still
      // names that target; retry if a racing op moved it.
      for (int attempt = 0; attempt < kVerifyRetries; attempt++) {
        LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupInDirTransient(dir_ino, name));
        InodeLockSet il = LockInodePair(dir_ino, ino);
        Result<InodeNum> now = LookupInDir(dir_ino, name);
        if (!now.ok()) {
          return now.status();
        }
        if (now.value() != ino) {
          continue;
        }
        return UnlinkLocked(dir_ino, name, ino, path);
      }
      return NotFoundError("unlink '" + std::string(path) + "' kept racing with renames");
    }();
    return EndMutation(st);
  }
  std::unique_lock<std::shared_mutex> lock(fs_mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kUnlink, device_, &clock_);
  LFS_RETURN_IF_ERROR(CheckWritable());
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  auto [dir_ino, name] = parent;
  LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupInDir(dir_ino, name));
  LFS_RETURN_IF_ERROR(UnlinkLocked(dir_ino, name, ino, path));
  return MaybeFlush();
}

Status LfsFileSystem::RmdirLocked(InodeNum dir_ino, const std::string& name, InodeNum ino,
                                  std::string_view path) {
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type != FileType::kDirectory) {
    return NotADirectoryError(std::string(path));
  }
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(ino));
  for (const auto& entries : cache->blocks) {
    if (!entries.empty()) {
      return NotEmptyError(std::string(path));
    }
  }

  DirLogRecord rec;
  rec.op = DirOp::kUnlink;
  rec.dir_ino = dir_ino;
  rec.name = name;
  rec.target_ino = ino;
  rec.target_version = fm->inode.version;
  rec.new_nlink = 0;
  rec.target_type = FileType::kDirectory;
  LogDirOp(std::move(rec));

  LFS_RETURN_IF_ERROR(RemoveDirEntry(dir_ino, name));
  return DeleteFileContents(ino);
}

Status LfsFileSystem::Rmdir(std::string_view path) {
  if (cfg_.concurrent) {
    txn_.WaitNotCommitting();
    txn_.BeginOp(kNamespaceOpReserve);
    Status st = [&]() -> Status {
      std::shared_lock<std::shared_mutex> lock(fs_mu_);
      LFS_RETURN_IF_ERROR(CheckWritable());
      LFS_ASSIGN_OR_RETURN(auto parent, ResolveParentConcurrent(path));
      auto [dir_ino, name] = parent;
      for (int attempt = 0; attempt < kVerifyRetries; attempt++) {
        LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupInDirTransient(dir_ino, name));
        InodeLockSet il = LockInodePair(dir_ino, ino);
        Result<InodeNum> now = LookupInDir(dir_ino, name);
        if (!now.ok()) {
          return now.status();
        }
        if (now.value() != ino) {
          continue;
        }
        return RmdirLocked(dir_ino, name, ino, path);
      }
      return NotFoundError("rmdir '" + std::string(path) + "' kept racing with renames");
    }();
    return EndMutation(st);
  }
  std::unique_lock<std::shared_mutex> lock(fs_mu_);
  LFS_RETURN_IF_ERROR(CheckWritable());
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  auto [dir_ino, name] = parent;
  LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupInDir(dir_ino, name));
  LFS_RETURN_IF_ERROR(RmdirLocked(dir_ino, name, ino, path));
  return MaybeFlush();
}

// --- link / rename -------------------------------------------------------------

Status LfsFileSystem::LinkLocked(InodeNum ino, InodeNum dir_ino, const std::string& name,
                                 std::string_view link_path) {
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError("hard links to directories are not allowed");
  }
  if (LookupInDir(dir_ino, name).ok()) {
    return AlreadyExistsError(std::string(link_path));
  }

  DirLogRecord rec;
  rec.op = DirOp::kLink;
  rec.dir_ino = dir_ino;
  rec.name = name;
  rec.target_ino = ino;
  rec.target_version = fm->inode.version;
  rec.new_nlink = static_cast<uint16_t>(fm->inode.nlink + 1);
  rec.target_type = FileType::kRegular;
  LogDirOp(std::move(rec));

  LFS_RETURN_IF_ERROR(AddDirEntry(dir_ino, DirEntry{name, ino, FileType::kRegular}));
  fm->inode.nlink++;
  fm->inode.mtime = clock_.Tick();
  fm->inode_dirty = true;
  MarkInodeDirty(ino);
  return OkStatus();
}

Status LfsFileSystem::Link(std::string_view existing, std::string_view link_path) {
  if (cfg_.concurrent) {
    txn_.WaitNotCommitting();
    txn_.BeginOp(kNamespaceOpReserve);
    Status st = [&]() -> Status {
      std::shared_lock<std::shared_mutex> lock(fs_mu_);
      LFS_RETURN_IF_ERROR(CheckWritable());
      LFS_ASSIGN_OR_RETURN(InodeNum ino, WalkPathConcurrent(existing));
      LFS_ASSIGN_OR_RETURN(auto parent, ResolveParentConcurrent(link_path));
      auto [dir_ino, name] = parent;
      // Two-inode ordering helper (ISSUE): target + destination directory,
      // both exclusive, ascending stripe order.
      InodeLockSet il = LockInodePair(ino, dir_ino);
      return LinkLocked(ino, dir_ino, name, link_path);
    }();
    return EndMutation(st);
  }
  std::unique_lock<std::shared_mutex> lock(fs_mu_);
  LFS_RETURN_IF_ERROR(CheckWritable());
  LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupImpl(existing));
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  if (fm->inode.type == FileType::kDirectory) {
    return IsADirectoryError("hard links to directories are not allowed");
  }
  LFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(link_path));
  auto [dir_ino, name] = parent;
  LFS_RETURN_IF_ERROR(LinkLocked(ino, dir_ino, name, link_path));
  return MaybeFlush();
}

Status LfsFileSystem::RenameLocked(InodeNum from_dir, const std::string& from_name,
                                   InodeNum ino, InodeNum to_dir, const std::string& to_name,
                                   std::string_view to) {
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  FileType type = fm->inode.type;

  InodeNum replaced = kNilInode;
  uint32_t replaced_version = 0;
  uint16_t replaced_nlink = 0;
  Result<InodeNum> existing = LookupInDir(to_dir, to_name);
  if (existing.ok()) {
    replaced = existing.value();
    LFS_ASSIGN_OR_RETURN(FileMap * rfm, GetFileMap(replaced));
    if (rfm->inode.type == FileType::kDirectory) {
      return IsADirectoryError("rename target '" + std::string(to) + "' is a directory");
    }
    replaced_version = rfm->inode.version;
    replaced_nlink = static_cast<uint16_t>(rfm->inode.nlink - 1);
  }

  DirLogRecord rec;
  rec.op = DirOp::kRename;
  rec.dir_ino = from_dir;
  rec.name = from_name;
  rec.target_ino = ino;
  rec.target_version = fm->inode.version;
  // Post-operation link count: replacing a name that already pointed at the
  // moved inode itself (rename onto one's own hard link) drops one of its
  // own links, and replay asserts this value as the final state.
  rec.new_nlink = replaced == ino ? static_cast<uint16_t>(fm->inode.nlink - 1)
                                  : fm->inode.nlink;
  rec.target_type = type;
  rec.dir2_ino = to_dir;
  rec.name2 = to_name;
  rec.replaced_ino = replaced;
  rec.replaced_version = replaced_version;
  rec.replaced_nlink = replaced_nlink;
  LogDirOp(std::move(rec));

  if (replaced != kNilInode) {
    LFS_RETURN_IF_ERROR(RemoveDirEntry(to_dir, to_name));
    FileMap* rfm = FindFileMap(replaced);
    if (rfm != nullptr) {
      rfm->inode.nlink--;
      if (rfm->inode.nlink == 0) {
        LFS_RETURN_IF_ERROR(DeleteFileContents(replaced));
      } else {
        rfm->inode_dirty = true;
        MarkInodeDirty(replaced);
      }
    }
  }
  LFS_RETURN_IF_ERROR(RemoveDirEntry(from_dir, from_name));
  LFS_RETURN_IF_ERROR(AddDirEntry(to_dir, DirEntry{to_name, ino, type}));
  fm = FindFileMap(ino);  // re-fetch: DeleteFileContents may have touched maps
  fm->inode.mtime = clock_.Tick();
  fm->inode_dirty = true;
  MarkInodeDirty(ino);
  return OkStatus();
}

Status LfsFileSystem::Rename(std::string_view from, std::string_view to) {
  if (cfg_.concurrent) {
    obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kRename, device_, &clock_);
    if (from == to) {
      return OkStatus();
    }
    if (to.size() > from.size() && to.substr(0, from.size()) == from &&
        to[from.size()] == '/') {
      return InvalidArgumentError("cannot move a directory into itself");
    }
    txn_.WaitNotCommitting();
    txn_.BeginOp(kNamespaceOpReserve);
    Status st = [&]() -> Status {
      std::shared_lock<std::shared_mutex> lock(fs_mu_);
      LFS_RETURN_IF_ERROR(CheckWritable());
      LFS_ASSIGN_OR_RETURN(auto src, ResolveParentConcurrent(from));
      auto [from_dir, from_name] = src;
      LFS_ASSIGN_OR_RETURN(auto dst, ResolveParentConcurrent(to));
      auto [to_dir, to_name] = dst;
      // Lock-and-verify over up to four stripes: both directories, the moved
      // inode, and any replaced target — all exclusive, ascending stripe
      // order (InodeLockSet), so crossing renames cannot deadlock.
      for (int attempt = 0; attempt < kVerifyRetries; attempt++) {
        LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupInDirTransient(from_dir, from_name));
        Result<InodeNum> target = LookupInDirTransient(to_dir, to_name);
        InodeNum replaced = target.ok() ? target.value() : kNilInode;
        InodeLockSet il(LockTable(),
                        {from_dir, to_dir, ino, replaced != kNilInode ? replaced : ino},
                        /*exclusive=*/true);
        Result<InodeNum> now_src = LookupInDir(from_dir, from_name);
        if (!now_src.ok()) {
          return now_src.status();
        }
        Result<InodeNum> now_dst = LookupInDir(to_dir, to_name);
        InodeNum now_replaced = now_dst.ok() ? now_dst.value() : kNilInode;
        if (now_src.value() != ino || now_replaced != replaced) {
          continue;
        }
        return RenameLocked(from_dir, from_name, ino, to_dir, to_name, to);
      }
      return NotFoundError("rename '" + std::string(from) + "' kept racing with renames");
    }();
    return EndMutation(st);
  }
  std::unique_lock<std::shared_mutex> lock(fs_mu_);
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kRename, device_, &clock_);
  LFS_RETURN_IF_ERROR(CheckWritable());
  if (from == to) {
    return OkStatus();
  }
  // Reject moving a directory into its own subtree.
  if (to.size() > from.size() && to.substr(0, from.size()) == from &&
      to[from.size()] == '/') {
    return InvalidArgumentError("cannot move a directory into itself");
  }
  LFS_ASSIGN_OR_RETURN(auto src, ResolveParent(from));
  auto [from_dir, from_name] = src;
  LFS_ASSIGN_OR_RETURN(InodeNum ino, LookupInDir(from_dir, from_name));
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  (void)fm;  // type and replaced-target checks run in RenameLocked
  LFS_ASSIGN_OR_RETURN(auto dst, ResolveParent(to));
  auto [to_dir, to_name] = dst;
  LFS_RETURN_IF_ERROR(RenameLocked(from_dir, from_name, ino, to_dir, to_name, to));
  return MaybeFlush();
}

Result<std::vector<DirEntry>> LfsFileSystem::ReadDir(std::string_view path) {
  if (cfg_.concurrent) {
    txn_.WaitNotCommitting();
  }
  std::shared_lock<std::shared_mutex> lock(fs_mu_);
  InodeNum ino;
  if (cfg_.concurrent) {
    LFS_ASSIGN_OR_RETURN(ino, WalkPathConcurrent(path));
  } else {
    LFS_ASSIGN_OR_RETURN(ino, ResolveDir(path));
  }
  InodeLockSet il(LockTable(), {ino}, /*exclusive=*/false);
  if (cfg_.concurrent) {
    LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
    if (fm->inode.type != FileType::kDirectory) {
      return NotADirectoryError(std::string(path));
    }
  }
  LFS_ASSIGN_OR_RETURN(DirCache * cache, GetDirCache(ino));
  std::vector<DirEntry> out;
  for (const auto& entries : cache->blocks) {
    out.insert(out.end(), entries.begin(), entries.end());
  }
  std::sort(out.begin(), out.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return out;
}

}  // namespace lfs
