// Construction, mkfs/mount, and checkpointing (Section 4.1).

#include "src/lfs/lfs.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace lfs {

LfsFileSystem::LfsFileSystem(BlockDevice* device, const LfsConfig& cfg, const Superblock& sb)
    : device_(device),
      cfg_(cfg),
      sb_(sb),
      retry_policy_{cfg.io_max_attempts, cfg.io_backoff_ticks, 2},
      imap_(sb.max_inodes, sb.imap_entries_per_chunk()),
      usage_(sb.nsegments, sb.segment_bytes(), sb.usage_entries_per_chunk()),
      writer_(device, &sb_, &usage_, &stats_, cfg.reserve_segments, &clock_,
              retry_policy_, &obs_, cfg.num_logs),
      ilocks_(cfg.inode_shards),
      debug_cleaner_(getenv("LFS_DEBUG_CLEANER") != nullptr) {
  // The in-memory tables shard to the stripe count in the concurrent regime;
  // the single-threaded regime keeps one shard, i.e. the same two maps as
  // before the sharding work.
  uint32_t nshards = cfg_.concurrent ? ilocks_.nstripes() : 1;
  shard_mask_ = nshards - 1;
  itable_ = std::vector<InodeTableShard>(nshards);
  dirty_shards_ = std::vector<DirtyShard>(nshards);
  uint32_t rc_nshards = 1;
  if (cfg_.concurrent) {
    rc_nshards = std::max<uint32_t>(1, cfg_.read_cache_shards);
    while (rc_nshards & (rc_nshards - 1)) ++rc_nshards;
  }
  rc_shard_mask_ = rc_nshards - 1;
  rc_shard_cap_ = cfg_.read_cache_blocks == 0
                      ? 0
                      : std::max<uint32_t>(1, cfg_.read_cache_blocks / rc_nshards);
  read_cache_shards_ = std::vector<ReadCacheShard>(rc_nshards);
  txn_.Configure(cfg_.txn_max_ops, cfg_.txn_max_staged_blocks != 0
                                       ? cfg_.txn_max_staged_blocks
                                       : 4 * cfg_.write_buffer_blocks);
  governor_.Configure(cfg_);
  qos_.Configure(cfg_.cleaner_qos_bytes_per_sec, cfg_.cleaner_qos_burst_sec);
}

LfsFileSystem::~LfsFileSystem() { StopCleanerThread(); }

Status LfsFileSystem::DeviceRead(BlockNo block, uint64_t count,
                                 std::span<uint8_t> out) const {
  RelaxedDelta<uint64_t> retries(stats_.io_retries);
  Status st = RetryWithBackoff(retry_policy_, &clock_, &stats_.io_retries,
                               [&] { return device_->Read(block, count, out); });
  if (retries.changed()) {
    LFS_TRACE(obs_.tracer(), obs::TraceEventType::kIoRetry, obs::OpType::kNone,
              clock_.Now(), block, retries.delta(), device_->ModeledTime());
  }
  if (!st.ok() && st.code() == StatusCode::kIoError) {
    stats_.io_retry_failures++;
    LFS_TRACE(obs_.tracer(), obs::TraceEventType::kMediaFault, obs::OpType::kNone,
              clock_.Now(), block, static_cast<uint64_t>(st.code()),
              device_->ModeledTime());
  }
  return st;
}

Status LfsFileSystem::DeviceWrite(BlockNo block, uint64_t count,
                                  std::span<const uint8_t> data) {
  RelaxedDelta<uint64_t> retries(stats_.io_retries);
  Status st = RetryWithBackoff(retry_policy_, &clock_, &stats_.io_retries,
                               [&] { return device_->Write(block, count, data); });
  if (retries.changed()) {
    LFS_TRACE(obs_.tracer(), obs::TraceEventType::kIoRetry, obs::OpType::kNone,
              clock_.Now(), block, retries.delta(), device_->ModeledTime());
  }
  if (!st.ok() && st.code() == StatusCode::kIoError) {
    stats_.io_retry_failures++;
    LFS_TRACE(obs_.tracer(), obs::TraceEventType::kMediaFault, obs::OpType::kNone,
              clock_.Now(), block, static_cast<uint64_t>(st.code()),
              device_->ModeledTime());
  }
  return st;
}

void LfsFileSystem::EnterDegradedReadOnly(const char* why) {
  if (degraded_) {
    return;
  }
  degraded_ = true;
  read_only_ = true;
  stats_.degraded_entries++;
  LFS_TRACE(obs_.tracer(), obs::TraceEventType::kDegraded, obs::OpType::kNone,
            clock_.Now(), 0, 0, device_->ModeledTime());
  if (debug_cleaner_ || getenv("LFS_DEBUG_FAULTS") != nullptr) {
    std::fprintf(stderr, "lfs: entering degraded read-only mode: %s\n", why);
  }
}

LfsStatFs LfsFileSystem::StatFs() const {
  if (cfg_.concurrent) {
    txn_.WaitNotCommitting();
  }
  std::shared_lock<std::shared_mutex> lock(fs_mu_);
  LfsStatFs out;
  out.total_bytes = uint64_t{sb_.nsegments} * sb_.segment_bytes();
  out.live_bytes = usage_.TotalLiveBytes();
  out.nsegments = sb_.nsegments;
  out.clean_segments = usage_.clean_count();
  out.quarantined_segments = usage_.quarantined_count();
  out.state = mount_state();
  return out;
}

Result<std::unique_ptr<LfsFileSystem>> LfsFileSystem::Mkfs(BlockDevice* device,
                                                           const LfsConfig& cfg) {
  LFS_ASSIGN_OR_RETURN(
      Superblock sb,
      Superblock::Compute(cfg.block_size, device->block_count(), cfg.segment_blocks,
                          cfg.max_inodes));
  if (device->block_size() != cfg.block_size) {
    return InvalidArgumentError("device block size does not match config block size");
  }
  if (sb.nsegments <= cfg.reserve_segments + 2) {
    return InvalidArgumentError("device too small for the configured segment reserve");
  }

  std::vector<uint8_t> block(sb.block_size);
  sb.EncodeTo(block);
  LFS_RETURN_IF_ERROR(device->WriteBlock(0, block));
  // Redundant copy at the last device block (reserved by Compute); mount
  // falls back to it when the primary is unreadable or fails its CRC.
  LFS_RETURN_IF_ERROR(device->WriteBlock(device->block_count() - 1, block));

  auto fs = std::unique_ptr<LfsFileSystem>(new LfsFileSystem(device, cfg, sb));
  // Open the log at segment 0.
  fs->usage_.SetState(0, SegState::kActive);
  fs->writer_.Init(0, 0, /*next_seq=*/1);
  fs->writer_.set_timestamp(fs->clock_.Now());

  // Root directory: empty, no data blocks yet.
  LFS_ASSIGN_OR_RETURN(InodeNum root, fs->imap_.Allocate());
  if (root != kRootInode) {
    return InternalError("mkfs: root inode did not get number 1");
  }
  FileMap root_fm;
  root_fm.inode.ino = kRootInode;
  root_fm.inode.type = FileType::kDirectory;
  root_fm.inode.nlink = 1;
  root_fm.inode.version = fs->imap_.Get(kRootInode).version;
  root_fm.inode.mtime = fs->clock_.Tick();
  root_fm.inode_dirty = true;
  InodeTableShard& root_shard = fs->TableShard(kRootInode);
  root_shard.files[kRootInode] = std::move(root_fm);
  root_shard.dirs[kRootInode] = DirCache{};
  fs->MarkInodeDirty(kRootInode);

  // Every usage chunk must exist on disk so the checkpoint region is fully
  // populated from the start.
  for (uint32_t c = 0; c < fs->usage_.chunk_count(); c++) {
    fs->usage_.MarkChunkDirty(c);
  }
  LFS_RETURN_IF_ERROR(fs->WriteCheckpointImpl());
  if (cfg.concurrent) {
    fs->StartCleanerThread();
  }
  return fs;
}

Result<std::unique_ptr<LfsFileSystem>> LfsFileSystem::Mount(BlockDevice* device,
                                                            const LfsConfig& cfg,
                                                            const MountOptions& opts) {
  std::vector<uint8_t> block(device->block_size());
  bool used_backup_superblock = false;
  Superblock sb;
  {
    Status primary_read = device->ReadBlock(0, block);
    Result<Superblock> primary =
        primary_read.ok() ? Superblock::DecodeFrom(block)
                          : Result<Superblock>(primary_read);
    if (primary.ok()) {
      sb = std::move(primary).value();
    } else {
      // Primary unreadable or CRC-bad: try the backup copy at the last
      // device block.
      LFS_RETURN_IF_ERROR(device->ReadBlock(device->block_count() - 1, block));
      LFS_ASSIGN_OR_RETURN(sb, Superblock::DecodeFrom(block));
      used_backup_superblock = true;
    }
  }
  if (sb.block_size != device->block_size() || sb.total_blocks > device->block_count()) {
    return CorruptionError("superblock geometry does not match device");
  }

  // Read both checkpoint regions; the newest valid one wins (Section 4.1).
  std::vector<uint8_t> region(size_t{sb.cr_blocks} * sb.block_size);
  bool have_ck = false;
  Checkpoint ck;
  int ck_region = 0;
  std::set<SegNo> regions_hosts[2];
  for (int i = 0; i < 2; i++) {
    BlockNo base = i == 0 ? sb.cr_base0 : sb.cr_base1;
    if (!device->Read(base, sb.cr_blocks, region).ok()) {
      continue;
    }
    Result<Checkpoint> r = Checkpoint::DecodeFrom(region);
    if (r.ok() && (!have_ck || r->ckpt_seq > ck.ckpt_seq)) {
      ck = std::move(r).value();
      ck_region = i;
      have_ck = true;
    }
    if (r.ok()) {
      for (BlockNo b : r->imap_chunk_addr) {
        SegNo s = sb.SegOf(b);
        if (s != kNilSeg) {
          regions_hosts[i].insert(s);
        }
      }
      for (BlockNo b : r->usage_chunk_addr) {
        SegNo s = sb.SegOf(b);
        if (s != kNilSeg) {
          regions_hosts[i].insert(s);
        }
      }
    }
  }
  if (!have_ck) {
    return CorruptionError("no valid checkpoint region; not an LFS filesystem?");
  }

  auto fs = std::unique_ptr<LfsFileSystem>(new LfsFileSystem(device, cfg, sb));
  if (used_backup_superblock) {
    fs->stats_.superblock_fallbacks++;
  }
  fs->cr_next_ = 1 - ck_region;  // alternate away from the surviving region
  fs->cr_hosts_[0] = std::move(regions_hosts[0]);
  fs->cr_hosts_[1] = std::move(regions_hosts[1]);
  LFS_RETURN_IF_ERROR(fs->LoadFromCheckpoint(ck));

  fs->read_only_ = opts.read_only;
  if (opts.roll_forward) {
    LFS_RETURN_IF_ERROR(fs->RollForward(ck));
  }

  // The persisted usage count for the active segment can be slightly stale:
  // the usage chunks were serialized while the checkpoint itself was still
  // appending to it. Recompute it exactly by scanning. (Older chunk-host
  // segments can at worst UNDERcount their own chunk blocks, which is safe:
  // they are in the protected-segment set, so neither the zero-live sweep nor
  // segment reuse can touch them, and the cleaner verifies liveness block by
  // block anyway.)
  for (uint32_t log = 0; log < fs->writer_.num_logs(); log++) {
    SegNo seg = fs->writer_.log_segment(log);
    if (seg == kNilSeg) {
      continue;
    }
    LFS_RETURN_IF_ERROR(fs->RecomputeSegmentUsage(seg, fs->writer_.log_offset(log)));
  }
  if (cfg.concurrent && !fs->read_only_) {
    fs->StartCleanerThread();
  }
  return fs;
}

Status LfsFileSystem::LoadFromCheckpoint(const Checkpoint& ck) {
  clock_.AdvanceTo(ck.clock);
  ckpt_seq_ = ck.ckpt_seq;
  ckpt_boundary_seq_ = ck.next_summary_seq;

  std::vector<uint8_t> block(sb_.block_size);
  // Segment usage table first (needed before any liveness reasoning).
  if (ck.usage_chunk_addr.size() != usage_.chunk_count()) {
    return CorruptionError("checkpoint: wrong usage chunk count");
  }
  for (uint32_t c = 0; c < usage_.chunk_count(); c++) {
    BlockNo addr = ck.usage_chunk_addr[c];
    if (addr == kNilBlock) {
      return CorruptionError("checkpoint: missing usage chunk " + std::to_string(c));
    }
    LFS_RETURN_IF_ERROR(DeviceRead(addr, 1, block));
    usage_.LoadChunk(c, block);
    usage_.set_chunk_addr(c, addr);
  }
  usage_.RecountClean();
  usage_.ClearDirty();

  // Inode map chunks covering the allocated range.
  if (ck.imap_chunk_addr.size() != imap_.chunk_count()) {
    return CorruptionError("checkpoint: wrong imap chunk count");
  }
  uint32_t epc = sb_.imap_entries_per_chunk();
  for (uint32_t c = 0; c < imap_.chunk_count(); c++) {
    BlockNo addr = ck.imap_chunk_addr[c];
    if (uint64_t{c} * epc >= ck.ninodes) {
      break;  // beyond the high-water mark; chunks do not exist yet
    }
    if (addr == kNilBlock) {
      return CorruptionError("checkpoint: missing imap chunk " + std::to_string(c));
    }
    LFS_RETURN_IF_ERROR(DeviceRead(addr, 1, block));
    imap_.LoadChunk(c, block, ck.ninodes);
    imap_.set_chunk_addr(c, addr);
  }
  imap_.RebuildFreeList();
  imap_.ClearDirty();

  if (ck.cur_segment >= sb_.nsegments || ck.cur_offset > sb_.segment_blocks) {
    return CorruptionError("checkpoint: log tail out of range");
  }
  writer_.Init(ck.cur_segment, ck.cur_offset, ck.next_summary_seq);
  writer_.set_timestamp(clock_.Now());
  if (usage_.Get(ck.cur_segment).state != SegState::kActive) {
    usage_.SetState(ck.cur_segment, SegState::kActive);
  }
  // Extra append points (multi-log checkpoints). Entry i belongs to log i+1.
  // Entries beyond the mounted num_logs — or recorded as nil — have no
  // writer position; if the usage table still calls such a segment active
  // (it was an append point when the checkpoint was taken), demote it to
  // dirty so the cleaner can eventually reclaim it.
  for (size_t i = 0; i < ck.extra_logs.size(); i++) {
    auto [seg, off] = ck.extra_logs[i];
    uint32_t log = static_cast<uint32_t>(i) + 1;
    if (seg == kNilSeg || seg >= sb_.nsegments) {
      continue;
    }
    if (off > sb_.segment_blocks) {
      return CorruptionError("checkpoint: log tail out of range");
    }
    if (log < writer_.num_logs()) {
      writer_.InitLog(log, seg, off);
      if (usage_.Get(seg).state != SegState::kActive) {
        usage_.SetState(seg, SegState::kActive);
      }
    } else if (usage_.Get(seg).state == SegState::kActive) {
      usage_.SetState(seg, SegState::kDirty);
    }
  }
  return OkStatus();
}

std::set<SegNo> LfsFileSystem::ChunkHostSegments() const {
  std::set<SegNo> segs;
  for (uint32_t c = 0; c < imap_.chunk_count(); c++) {
    SegNo s = sb_.SegOf(imap_.chunk_addr(c));
    if (s != kNilSeg) {
      segs.insert(s);
    }
  }
  for (uint32_t c = 0; c < usage_.chunk_count(); c++) {
    SegNo s = sb_.SegOf(usage_.chunk_addr(c));
    if (s != kNilSeg) {
      segs.insert(s);
    }
  }
  return segs;
}

Status LfsFileSystem::FlushMetadataChunks() {
  std::vector<uint8_t> block(sb_.block_size);

  // Inode map chunks (Table 1 "Inode map"; Table 4 shows these dominate
  // metadata log bandwidth).
  std::vector<uint32_t> imap_dirty = imap_.dirty_chunks();
  for (uint32_t c : imap_dirty) {
    BlockNo old = imap_.chunk_addr(c);
    imap_.EncodeChunk(c, block);
    SummaryEntry entry{BlockKind::kImapChunk, kNilInode, c, 0};
    LFS_ASSIGN_OR_RETURN(BlockNo addr,
                         writer_.Append(entry, std::vector<uint8_t>(block), clock_.Now(),
                                        sb_.block_size));
    SegNo old_seg = sb_.SegOf(old);
    if (old != kNilBlock && old_seg != kNilSeg) {
      usage_.SubLive(old_seg, sb_.block_size);
    }
    imap_.set_chunk_addr(c, addr);
    imap_.ClearDirtyChunk(c);
  }

  // Segment usage chunks. Writing a chunk changes usage (the old chunk's
  // segment loses live bytes, the active segment gains them), so first
  // settle all old-address decrements to a fixpoint, then serialize. The
  // residual imprecision (the active segment's own count growing while its
  // chunk is serialized) is repaired at mount by RecomputeSegmentUsage.
  for (uint32_t log = 0; log < writer_.num_logs(); log++) {
    SegNo seg = writer_.log_segment(log);
    if (seg != kNilSeg) {
      usage_.MarkChunkDirty(usage_.chunk_of(seg));
    }
  }

  // States each usage chunk's latest serialized copy recorded this flush.
  // Empty = not serialized this flush. Such a chunk was necessarily clean
  // when the dirty set was harvested (every chunk dirty at that point gets
  // encoded), so its on-disk copy records exactly the states captured in
  // start_state below — any later transition would have dirtied it.
  std::vector<std::vector<SegState>> enc_state(usage_.chunk_count());
  std::vector<SegState> start_state(sb_.nsegments);
  for (uint32_t s = 0; s < sb_.nsegments; s++) {
    start_state[s] = usage_.Get(s).state;
  }

  auto serialize_dirty = [&]() -> Status {
    std::set<uint32_t> subbed;
    for (;;) {
      bool progress = false;
      std::vector<uint32_t> dirty(usage_.dirty_chunks().begin(), usage_.dirty_chunks().end());
      for (uint32_t c : dirty) {
        if (subbed.count(c) != 0) {
          continue;
        }
        subbed.insert(c);
        progress = true;
        BlockNo old = usage_.chunk_addr(c);
        SegNo old_seg = sb_.SegOf(old);
        if (old != kNilBlock && old_seg != kNilSeg) {
          usage_.SubLive(old_seg, sb_.block_size);
        }
      }
      if (!progress) {
        break;
      }
    }
    // Serialize the chunk covering the active segment last so its contents
    // are as fresh as possible.
    std::vector<uint32_t> order(usage_.dirty_chunks().begin(), usage_.dirty_chunks().end());
    uint32_t active_chunk = usage_.chunk_of(writer_.current_segment());
    std::stable_partition(order.begin(), order.end(),
                          [active_chunk](uint32_t c) { return c != active_chunk; });
    for (uint32_t c : order) {
      // Pre-account the chunk block itself at its (reserved) destination, so
      // the serialized contents already include it — without this, the chunk
      // covering the active segment would always under-report by its own
      // pending append and the on-disk count could never converge.
      LFS_RETURN_IF_ERROR(writer_.PrepareAppend());
      usage_.AddLive(writer_.current_segment(), sb_.block_size, clock_.Now());
      // Clear the flag before serializing: dirtiness created after this point
      // (by later chunks' appends) must survive into the next checkpoint.
      usage_.ClearDirtyChunk(c);
      usage_.EncodeChunk(c, block);
      uint32_t lo = c * usage_.entries_per_chunk();
      uint32_t hi = std::min<uint32_t>(lo + usage_.entries_per_chunk(), sb_.nsegments);
      enc_state[c].resize(hi - lo);
      for (uint32_t s = lo; s < hi; s++) {
        enc_state[c][s - lo] = usage_.Get(s).state;
      }
      SummaryEntry entry{BlockKind::kUsageChunk, kNilInode, c, 0};
      LFS_ASSIGN_OR_RETURN(BlockNo addr,
                           writer_.Append(entry, std::vector<uint8_t>(block), clock_.Now(),
                                          /*live_bytes=*/0));
      usage_.set_chunk_addr(c, addr);
    }
    return OkStatus();
  };
  LFS_RETURN_IF_ERROR(serialize_dirty());

  // A serialization append can cross into a fresh segment AFTER that
  // segment's covering chunk was already encoded. The persisted table would
  // then call a chunk-hosting (or log-head) segment clean — mount trusts
  // clean states enough never to repair them (RecomputeSegmentUsage skips
  // clean segments), a later allocation could overwrite the live chunks, and
  // the offline checker rightly calls the image corrupt. Detect exactly that
  // staleness and re-serialize the affected chunks; a round whose appends
  // stay within the active segment leaves nothing stale, so this converges
  // in one or two extra rounds (each a handful of blocks) in the rare
  // checkpoints that straddle a segment boundary.
  for (int round = 0; round < 8; round++) {
    std::vector<SegNo> hosts;
    for (uint32_t c = 0; c < imap_.chunk_count(); c++) {
      if (imap_.chunk_addr(c) != kNilBlock) {
        hosts.push_back(sb_.SegOf(imap_.chunk_addr(c)));
      }
    }
    for (uint32_t c = 0; c < usage_.chunk_count(); c++) {
      if (usage_.chunk_addr(c) != kNilBlock) {
        hosts.push_back(sb_.SegOf(usage_.chunk_addr(c)));
      }
    }
    for (uint32_t log = 0; log < writer_.num_logs(); log++) {
      hosts.push_back(writer_.log_segment(log));
    }
    bool stale = false;
    for (SegNo s : hosts) {
      if (s == kNilSeg || s >= sb_.nsegments) {
        continue;
      }
      uint32_t cs = usage_.chunk_of(s);
      const std::vector<SegState>& st = enc_state[cs];
      if (st.empty()) {
        // The covering chunk was not serialized this flush, so its on-disk
        // copy records start_state. If that says clean, one of this flush's
        // own appends rolled into the fresh segment afterwards and made it a
        // host — the persisted "clean" would license reuse of a segment
        // holding live metadata. Re-serialize the covering chunk.
        if (start_state[s] == SegState::kClean) {
          usage_.MarkChunkDirty(cs);
          stale = true;
        }
      } else if (st[s - cs * usage_.entries_per_chunk()] == SegState::kClean) {
        usage_.MarkChunkDirty(cs);
        stale = true;
      }
    }
    if (!stale) {
      break;
    }
    LFS_RETURN_IF_ERROR(serialize_dirty());
  }
  return OkStatus();
}

Status LfsFileSystem::WriteCheckpointRegion() {
  LFS_TRACE(obs_.tracer(), obs::TraceEventType::kCheckpointBegin, obs::OpType::kNone,
            clock_.Now(), cr_next_, 0, device_->ModeledTime());
  Checkpoint ck;
  ck.ckpt_seq = ++ckpt_seq_;
  ck.timestamp = clock_.Tick();
  ck.next_summary_seq = writer_.next_seq();
  ck.cur_segment = writer_.current_segment();
  ck.cur_offset = writer_.current_offset();
  ck.ninodes = imap_.ninodes();
  ck.clock = clock_.Now();
  ck.imap_chunk_addr.resize(imap_.chunk_count());
  for (uint32_t c = 0; c < imap_.chunk_count(); c++) {
    ck.imap_chunk_addr[c] = imap_.chunk_addr(c);
  }
  ck.usage_chunk_addr.resize(usage_.chunk_count());
  for (uint32_t c = 0; c < usage_.chunk_count(); c++) {
    ck.usage_chunk_addr[c] = usage_.chunk_addr(c);
  }
  // Multi-log append points (logs 1..N-1; log 0 is cur_segment/cur_offset).
  // Single-log filesystems record nothing, keeping the region byte-identical
  // to the legacy layout.
  for (uint32_t log = 1; log < writer_.num_logs(); log++) {
    ck.extra_logs.emplace_back(writer_.log_segment(log), writer_.log_offset(log));
  }

  std::vector<uint8_t> region(size_t{sb_.cr_blocks} * sb_.block_size);
  ck.EncodeTo(region);
  // Try the preferred (older) region first; if its media has failed, fall
  // back to the alternate. Overwriting the alternate — the currently-newest
  // valid region — is safe because this checkpoint carries a higher
  // ckpt_seq, so whichever write completes wins at mount. Only when BOTH
  // regions refuse the write is a checkpoint impossible: then nothing may
  // mutate the log further (half of this checkpoint's chunks are already
  // appended), so the filesystem drops to degraded read-only mode.
  Status write_st;
  uint32_t wrote_region = cr_next_;
  for (uint32_t attempt = 0; attempt < 2; attempt++) {
    uint32_t r = attempt == 0 ? cr_next_ : 1 - cr_next_;
    BlockNo base = r == 0 ? sb_.cr_base0 : sb_.cr_base1;
    write_st = DeviceWrite(base, sb_.cr_blocks, region);
    if (write_st.ok()) {
      wrote_region = r;
      if (attempt > 0) {
        stats_.checkpoint_fallbacks++;
      }
      break;
    }
  }
  if (!write_st.ok()) {
    LFS_TRACE(obs_.tracer(), obs::TraceEventType::kCheckpointEnd, obs::OpType::kNone,
              clock_.Now(), wrote_region, 0, device_->ModeledTime());
    EnterDegradedReadOnly(write_st.ToString().c_str());
    return write_st;
  }
  LFS_RETURN_IF_ERROR(device_->Flush());
  stats_.checkpoint_bytes += region.size();
  cr_hosts_[wrote_region] = ChunkHostSegments();
  cr_next_ = 1 - wrote_region;
  ckpt_boundary_seq_ = ck.next_summary_seq;
  usage_.MarkFreesDurable();  // freed segments become pickable again
  TrimFreedSegments();        // the frees are durable now
  LFS_TRACE(obs_.tracer(), obs::TraceEventType::kCheckpointEnd, obs::OpType::kNone,
            clock_.Now(), wrote_region, 1, device_->ModeledTime());
  return OkStatus();
}

void LfsFileSystem::TrimFreedSegments() {
  // Drain unconditionally so the freed list cannot grow without bound; only
  // issue the trims when configured. A segment must still be clean at drain
  // time — one reused since it was freed carries live data again.
  std::vector<SegNo> freed = usage_.TakeFreed();
  if (!cfg_.trim_on_free) {
    return;
  }
  for (SegNo seg : freed) {
    if (usage_.Get(seg).state != SegState::kClean) {
      continue;
    }
    Status st = device_->Trim(sb_.SegmentBase(seg), sb_.segment_blocks);
    if (st.ok()) {
      stats_.segments_trimmed++;
    }
    // Trim is advisory: a device that cannot discard (or faults doing so)
    // simply keeps the stale data, which is always safe.
  }
}

std::vector<uint8_t> LfsFileSystem::ProtectedSegmentBitmap() const {
  std::vector<uint8_t> keep(sb_.nsegments, 0);
  auto mark = [&](SegNo s) {
    if (s != kNilSeg && s < sb_.nsegments) {
      keep[s] = 1;
    }
  };
  for (uint32_t c = 0; c < imap_.chunk_count(); c++) {
    mark(sb_.SegOf(imap_.chunk_addr(c)));
  }
  for (uint32_t c = 0; c < usage_.chunk_count(); c++) {
    mark(sb_.SegOf(usage_.chunk_addr(c)));
  }
  for (SegNo s : cr_hosts_[0]) {
    mark(s);
  }
  for (SegNo s : cr_hosts_[1]) {
    mark(s);
  }
  for (uint32_t log = 0; log < writer_.num_logs(); log++) {
    mark(writer_.log_segment(log));
  }
  return keep;
}

void LfsFileSystem::SweepZeroLiveSegments() {
  // A dirty segment with no live bytes can be reused without cleaning
  // (Section 3.6). The sweep runs as part of a checkpoint, BEFORE the usage
  // chunks are serialized, so the checkpoint region itself records the
  // segments as clean — which is what lets the recovery scan skip
  // everything the checkpoint calls dirty. Sweeping segments written since
  // the previous checkpoint is safe: their data is dead, and if this
  // checkpoint's region write tears, the fallback to the older region can
  // at worst lose part of the (already-dead-dominated) post-crash replay
  // tail via a sequence gap — a bounded truncation, never corruption.
  // Segments referenced by the on-disk checkpoint regions stay protected.
  if (usage_.zero_live_dirty_count() == 0) {
    return;
  }
  std::vector<uint8_t> keep = ProtectedSegmentBitmap();
  std::vector<SegNo> zeros;
  usage_.AppendZeroLiveDirty(&zeros);
  for (SegNo seg : zeros) {
    if (keep[seg]) {
      continue;
    }
    usage_.SetState(seg, SegState::kClean);
    // This is the cleaner's u=0 fast path (Section 3.4: an empty segment
    // need not be read at all); count it in the Table 2 statistics.
    stats_.segments_cleaned++;
    stats_.segments_cleaned_empty++;
  }
}

Status LfsFileSystem::WriteCheckpoint() {
  ExclusiveSection sec(this);
  return WriteCheckpointImpl();
}

Status LfsFileSystem::WriteCheckpointImpl() {
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kCheckpoint, device_, &clock_);
  // Checkpoints run privileged: they may consume reserve segments, because
  // completing a checkpoint is what returns dead segments to the clean pool.
  in_checkpoint_ = true;
  writer_.set_privileged(true);
  auto done = [this](Status st) {
    writer_.set_privileged(false);
    in_checkpoint_ = false;
    return st;
  };
  // Phase 1: write out all modified information to the log (Section 4.1).
  Status st = FlushDirtyData();
  if (!st.ok()) {
    return done(st);
  }
  // Sweep dead segments before the usage chunks are serialized, so the
  // checkpoint region records them as clean. Recovery scans only segments
  // the checkpoint says are clean (plus the active one), so reusable
  // segments must be declared in the region itself. If the region write
  // tears, mount falls back to the older region, where they are still
  // dirty — the sweep only ever takes effect together with its checkpoint.
  SweepZeroLiveSegments();
  st = FlushMetadataChunks();
  if (!st.ok()) {
    return done(st);
  }
  st = writer_.Flush();
  if (!st.ok()) {
    return done(st);
  }
  // Phase 2: write the checkpoint region at a fixed position.
  st = WriteCheckpointRegion();
  if (!st.ok()) {
    return done(st);
  }
  stats_.checkpoints++;
  bytes_since_checkpoint_ = 0;
  return done(OkStatus());
}

Status LfsFileSystem::LightCheckpoint() {
  ExclusiveSection sec(this);
  return LightCheckpointImpl();
}

Status LfsFileSystem::LightCheckpointImpl() {
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kCheckpoint, device_, &clock_);
  in_checkpoint_ = true;
  writer_.set_privileged(true);
  auto done = [this](Status st) {
    writer_.set_privileged(false);
    in_checkpoint_ = false;
    return st;
  };
  Status st = writer_.Flush();
  if (!st.ok()) {
    return done(st);
  }
  SweepZeroLiveSegments();  // before chunk serialization; see WriteCheckpoint
  st = FlushMetadataChunks();
  if (!st.ok()) {
    return done(st);
  }
  st = writer_.Flush();
  if (!st.ok()) {
    return done(st);
  }
  st = WriteCheckpointRegion();
  if (!st.ok()) {
    return done(st);
  }
  stats_.checkpoints++;
  return done(OkStatus());
}

uint32_t LfsFileSystem::SegmentStopOffset(SegNo seg) const {
  for (uint32_t log = 0; log < writer_.num_logs(); log++) {
    if (writer_.log_segment(log) == seg) {
      return writer_.log_offset(log);
    }
  }
  return sb_.segment_blocks;
}

Status LfsFileSystem::RecomputeSegmentUsage(SegNo seg, uint32_t stop_offset) {
  if (usage_.Get(seg).state == SegState::kClean) {
    return OkStatus();
  }
  LFS_ASSIGN_OR_RETURN(std::vector<ParsedPartial> chain,
                       ParseSegmentChain(seg, 0, stop_offset, /*min_seq=*/0));
  uint32_t live = 0;
  uint64_t last_write = 0;
  for (const ParsedPartial& p : chain) {
    for (size_t i = 0; i < p.summary.entries.size(); i++) {
      const SummaryEntry& e = p.summary.entries[i];
      BlockNo addr = sb_.SegmentBase(seg) + p.offset + 1 + i;
      std::span<const uint8_t> content(p.payload.data() + i * sb_.block_size, sb_.block_size);
      if (e.kind == BlockKind::kInodeBlock) {
        // Count live inode slots individually.
        for (uint32_t s = 0; s < sb_.inodes_per_block(); s++) {
          Result<Inode> ino = Inode::DecodeFrom(content.subspan(size_t{s} * kInodeSlotSize,
                                                                kInodeSlotSize));
          if (!ino.ok() || ino->ino == kNilInode) {
            continue;
          }
          ImapEntry ie = imap_.Get(ino->ino);
          if (ie.allocated() && ie.inode_block == addr && ie.slot == s) {
            live += kInodeSlotSize;
            last_write = std::max(last_write, ino->mtime);
          }
        }
        continue;
      }
      LFS_ASSIGN_OR_RETURN(bool is_live, IsLiveBlock(e, addr, content));
      if (is_live) {
        live += sb_.block_size;
        last_write = std::max(last_write, p.summary.youngest_mtime);
      }
    }
  }
  // Overwrite the persisted estimate with the exact scan result, preserving
  // a non-zero last-write time if the scan found nothing newer.
  SegUsageEntry fixed = usage_.Get(seg);
  uint32_t old_live = fixed.live_bytes;
  if (live > old_live) {
    usage_.AddLive(seg, live - old_live, last_write);
  } else if (live < old_live) {
    usage_.SubLive(seg, old_live - live);
  }
  return OkStatus();
}

Status LfsFileSystem::Sync() {
  ExclusiveSection sec(this);
  if (read_only_) {
    return OkStatus();  // nothing can be dirty
  }
  obs::ScopedOpTimer op_timer(&obs_, obs::OpType::kSync, device_, &clock_);
  return WriteCheckpointImpl();
}

Status LfsFileSystem::Unmount() {
  // Stop the background cleaner before taking fs_mu_: the thread acquires
  // fs_mu_ to clean, so joining while holding it would deadlock.
  StopCleanerThread();
  ExclusiveSection sec(this);
  if (read_only_) {
    ClearInodeTables();
    return OkStatus();
  }
  LFS_RETURN_IF_ERROR(WriteCheckpointImpl());
  ClearInodeTables();
  return OkStatus();
}

Result<FileStat> LfsFileSystem::Stat(InodeNum ino) {
  if (cfg_.concurrent) {
    txn_.WaitNotCommitting();
  }
  std::shared_lock<std::shared_mutex> lock(fs_mu_);
  InodeLockSet il(LockTable(), {ino}, /*exclusive=*/false);
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  FileStat st;
  st.ino = ino;
  st.type = fm->inode.type;
  st.size = fm->inode.size;
  st.nlink = fm->inode.nlink;
  st.mtime = fm->inode.mtime;
  st.version = fm->inode.version;
  return st;
}

Result<uint32_t> LfsFileSystem::ForceClean() {
  ExclusiveSection sec(this);
  LFS_RETURN_IF_ERROR(writer_.Flush());
  LFS_ASSIGN_OR_RETURN(uint32_t reclaimed, CleanerPass());
  // Checkpoint after reclaiming so the recovery scan filter (which probes
  // only checkpoint-clean segments) covers any reuse of the sources.
  if (reclaimed > 0 && !in_checkpoint_ && !in_recovery_) {
    LFS_RETURN_IF_ERROR(LightCheckpointImpl());
  }
  return reclaimed;
}

Result<std::vector<BlockNo>> LfsFileSystem::FileBlockAddresses(InodeNum ino) {
  if (cfg_.concurrent) {
    txn_.WaitNotCommitting();
  }
  std::shared_lock<std::shared_mutex> lock(fs_mu_);
  InodeLockSet il(LockTable(), {ino}, /*exclusive=*/false);
  LFS_ASSIGN_OR_RETURN(FileMap * fm, GetFileMap(ino));
  return fm->blocks;
}

Result<std::array<uint64_t, 8>> LfsFileSystem::LiveBytesByKind() {
  ExclusiveSection sec(this);
  LFS_RETURN_IF_ERROR(FlushDirtyData());
  LFS_RETURN_IF_ERROR(writer_.Flush());
  std::array<uint64_t, 8> live{};
  for (SegNo seg = 0; seg < sb_.nsegments; seg++) {
    if (usage_.Get(seg).state == SegState::kClean) {
      continue;
    }
    uint32_t stop = SegmentStopOffset(seg);
    LFS_ASSIGN_OR_RETURN(std::vector<ParsedPartial> chain,
                         ParseSegmentChain(seg, 0, stop, /*min_seq=*/0));
    for (const ParsedPartial& p : chain) {
      for (size_t i = 0; i < p.summary.entries.size(); i++) {
        const SummaryEntry& e = p.summary.entries[i];
        BlockNo addr = sb_.SegmentBase(seg) + p.offset + 1 + i;
        std::span<const uint8_t> content(p.payload.data() + i * sb_.block_size,
                                         sb_.block_size);
        if (e.kind == BlockKind::kInodeBlock) {
          for (uint32_t slot = 0; slot < sb_.inodes_per_block(); slot++) {
            Result<Inode> ino = Inode::DecodeFrom(
                content.subspan(size_t{slot} * kInodeSlotSize, kInodeSlotSize));
            if (!ino.ok() || ino->ino == kNilInode) {
              continue;
            }
            ImapEntry ie = imap_.Get(ino->ino);
            if (ie.allocated() && ie.inode_block == addr && ie.slot == slot) {
              live[static_cast<size_t>(BlockKind::kInodeBlock)] += kInodeSlotSize;
            }
          }
          continue;
        }
        LFS_ASSIGN_OR_RETURN(bool is_live, IsLiveBlock(e, addr, content));
        if (is_live) {
          live[static_cast<size_t>(e.kind)] += sb_.block_size;
        }
      }
    }
  }
  return live;
}

}  // namespace lfs
