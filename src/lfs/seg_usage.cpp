#include "src/lfs/seg_usage.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace lfs {

void SegUsage::SyncIndex(SegNo seg) {
  const SegUsageEntry& e = entries_[seg];
  if (e.state == SegState::kDirty) {
    victim_index_.Insert(seg, e.live_bytes, e.last_write);  // insert-or-update
  } else {
    victim_index_.Remove(seg);
  }
  bool zero = e.state == SegState::kDirty && e.live_bytes == 0;
  uint64_t& word = zero_live_words_[seg >> 6];
  uint64_t bit = uint64_t{1} << (seg & 63);
  if (zero && (word & bit) == 0) {
    word |= bit;
    zero_live_dirty_count_++;
  } else if (!zero && (word & bit) != 0) {
    word &= ~bit;
    zero_live_dirty_count_--;
  }
}

void SegUsage::AppendZeroLiveDirty(std::vector<SegNo>* out) const {
  for (size_t w = 0; w < zero_live_words_.size(); w++) {
    uint64_t word = zero_live_words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      word &= word - 1;
      out->push_back(static_cast<SegNo>(w * 64 + bit));
    }
  }
}

void SegUsage::AddLive(SegNo seg, uint32_t bytes, uint64_t mtime) {
  assert(seg < entries_.size());
  std::lock_guard<std::mutex> lock(mu_);
  SegUsageEntry& e = entries_[seg];
  e.live_bytes += bytes;
  total_live_ += bytes;
  assert(e.live_bytes <= segment_bytes_);
  e.last_write = std::max(e.last_write, mtime);
  MarkDirty(seg);
  SyncIndex(seg);
}

void SegUsage::SubLive(SegNo seg, uint32_t bytes) {
  assert(seg < entries_.size());
  std::lock_guard<std::mutex> lock(mu_);
  SegUsageEntry& e = entries_[seg];
  // Clamp rather than assert: after crash recovery the counts for pre-crash
  // segments are best-effort (Section 4.2's adjustments), so a decrement can
  // race a conservative recomputation.
  uint32_t sub = e.live_bytes >= bytes ? bytes : e.live_bytes;
  e.live_bytes -= sub;
  total_live_ -= sub;
  MarkDirty(seg);
  SyncIndex(seg);
}

void SegUsage::SetState(SegNo seg, SegState state) {
  assert(seg < entries_.size());
  std::lock_guard<std::mutex> lock(mu_);
  SegUsageEntry& e = entries_[seg];
  if (e.state == SegState::kClean && state != SegState::kClean) {
    clean_count_--;
    pending_reuse_.erase(seg);
    if (state == SegState::kActive) {
      e.reuse_count++;  // one fill cycle: the segment's wear counter
    }
  } else if (e.state != SegState::kClean && state == SegState::kClean) {
    clean_count_++;
    total_live_ -= e.live_bytes;
    e.live_bytes = 0;
    e.last_write = 0;
    freed_.push_back(seg);        // TRIM candidate once a checkpoint covers the free
    pending_reuse_.insert(seg);   // unpickable until then (see PickClean)
  }
  if (e.state != SegState::kQuarantined && state == SegState::kQuarantined) {
    quarantined_count_++;
  } else if (e.state == SegState::kQuarantined && state != SegState::kQuarantined) {
    quarantined_count_--;
  }
  if (state != SegState::kDirty) {
    compact_cursors_.erase(seg);  // a drain in progress ends with the segment
  }
  e.state = state;
  MarkDirty(seg);
  SyncIndex(seg);
}

void SegUsage::SetLogId(SegNo seg, uint8_t log_id) {
  assert(seg < entries_.size());
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_[seg].log_id == log_id) {
    return;
  }
  entries_[seg].log_id = log_id;
  MarkDirty(seg);
}

SegNo SegUsage::PickClean(bool include_pending) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (SegNo seg = 0; seg < entries_.size(); seg++) {
    if (entries_[seg].state == SegState::kClean &&
        (include_pending || pending_reuse_.count(seg) == 0)) {
      return seg;
    }
  }
  return kNilSeg;
}

void SegUsage::MarkFreesDurable() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_reuse_.clear();
}

double SegUsage::DiskUtilization() const {
  return static_cast<double>(total_live_) /
         (static_cast<double>(entries_.size()) * segment_bytes_);
}

void SegUsage::EncodeChunk(uint32_t chunk, std::span<uint8_t> block) const {
  std::memset(block.data(), 0, block.size());
  SegNo base = chunk * entries_per_chunk_;
  for (uint32_t i = 0; i < entries_per_chunk_; i++) {
    SegNo seg = base + i;
    if (seg >= entries_.size()) {
      break;
    }
    entries_[seg].EncodeTo(block.subspan(size_t{i} * kUsageEntrySize, kUsageEntrySize));
  }
}

void SegUsage::LoadChunk(uint32_t chunk, std::span<const uint8_t> block) {
  std::lock_guard<std::mutex> lock(mu_);
  SegNo base = chunk * entries_per_chunk_;
  for (uint32_t i = 0; i < entries_per_chunk_; i++) {
    SegNo seg = base + i;
    if (seg >= entries_.size()) {
      break;
    }
    total_live_ -= entries_[seg].live_bytes;
    entries_[seg] = SegUsageEntry::DecodeFrom(block.subspan(size_t{i} * kUsageEntrySize,
                                                            kUsageEntrySize));
    total_live_ += entries_[seg].live_bytes;
    SyncIndex(seg);
  }
}

void SegUsage::RecountClean() {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t clean = 0;
  uint32_t quarantined = 0;
  for (const SegUsageEntry& e : entries_) {
    if (e.state == SegState::kClean) {
      clean++;
    } else if (e.state == SegState::kQuarantined) {
      quarantined++;
    }
  }
  clean_count_ = clean;
  quarantined_count_ = quarantined;
}

}  // namespace lfs
