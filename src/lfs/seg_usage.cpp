#include "src/lfs/seg_usage.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace lfs {

void SegUsage::AddLive(SegNo seg, uint32_t bytes, uint64_t mtime) {
  assert(seg < entries_.size());
  SegUsageEntry& e = entries_[seg];
  e.live_bytes += bytes;
  total_live_ += bytes;
  assert(e.live_bytes <= segment_bytes_);
  e.last_write = std::max(e.last_write, mtime);
  MarkDirty(seg);
}

void SegUsage::SubLive(SegNo seg, uint32_t bytes) {
  assert(seg < entries_.size());
  SegUsageEntry& e = entries_[seg];
  // Clamp rather than assert: after crash recovery the counts for pre-crash
  // segments are best-effort (Section 4.2's adjustments), so a decrement can
  // race a conservative recomputation.
  uint32_t sub = e.live_bytes >= bytes ? bytes : e.live_bytes;
  e.live_bytes -= sub;
  total_live_ -= sub;
  MarkDirty(seg);
}

void SegUsage::SetState(SegNo seg, SegState state) {
  assert(seg < entries_.size());
  SegUsageEntry& e = entries_[seg];
  if (e.state == SegState::kClean && state != SegState::kClean) {
    clean_count_--;
  } else if (e.state != SegState::kClean && state == SegState::kClean) {
    clean_count_++;
    total_live_ -= e.live_bytes;
    e.live_bytes = 0;
    e.last_write = 0;
  }
  e.state = state;
  MarkDirty(seg);
}

SegNo SegUsage::PickClean() const {
  for (SegNo seg = 0; seg < entries_.size(); seg++) {
    if (entries_[seg].state == SegState::kClean) {
      return seg;
    }
  }
  return kNilSeg;
}

double SegUsage::DiskUtilization() const {
  return static_cast<double>(total_live_) /
         (static_cast<double>(entries_.size()) * segment_bytes_);
}

void SegUsage::EncodeChunk(uint32_t chunk, std::span<uint8_t> block) const {
  std::memset(block.data(), 0, block.size());
  SegNo base = chunk * entries_per_chunk_;
  for (uint32_t i = 0; i < entries_per_chunk_; i++) {
    SegNo seg = base + i;
    if (seg >= entries_.size()) {
      break;
    }
    entries_[seg].EncodeTo(block.subspan(size_t{i} * kUsageEntrySize, kUsageEntrySize));
  }
}

void SegUsage::LoadChunk(uint32_t chunk, std::span<const uint8_t> block) {
  SegNo base = chunk * entries_per_chunk_;
  for (uint32_t i = 0; i < entries_per_chunk_; i++) {
    SegNo seg = base + i;
    if (seg >= entries_.size()) {
      break;
    }
    total_live_ -= entries_[seg].live_bytes;
    entries_[seg] = SegUsageEntry::DecodeFrom(block.subspan(size_t{i} * kUsageEntrySize,
                                                            kUsageEntrySize));
    total_live_ += entries_[seg].live_bytes;
  }
}

void SegUsage::RecountClean() {
  clean_count_ = 0;
  for (const SegUsageEntry& e : entries_) {
    if (e.state == SegState::kClean) {
      clean_count_++;
    }
  }
}

}  // namespace lfs
