// CleanerGovernor: adaptive cleaning-policy selection (ROADMAP item 4;
// Lomet & Luo's observation that the right reclamation policy is a function
// of the observed utilization histogram, not a mount-time constant).
//
// The governor reads the live-utilization histogram the selection index
// already maintains (SegUsage::UtilizationHistogram) and decides, per pass
// and per log, which victim-ordering policy to use:
//
//  * An "emptied-out" dirty population — a large fraction of dirty segments
//    nearly empty — makes greedy optimal: the cheapest victims cost almost
//    nothing to drain, and cost-benefit's age term can only deprioritize
//    them in favor of older-but-fuller segments (more copying for the same
//    space). Hot logs under overwrite-heavy traffic look like this.
//
//  * A mid-utilization population (the bimodal distribution's expensive
//    middle) keeps cost-benefit: paying more copy I/O now for old stable
//    segments buys segments that stay clean, which greedy never learns.
//
//  * With num_logs > 1 the decision is per log: log 0 (metadata + young
//    data) follows the histogram, colder logs always use cost-benefit —
//    their populations age slowly, which is exactly the regime the age term
//    exists for.
//
// The governor also decides whether partial-segment compaction applies this
// pass (cfg.partial_compaction and victims above the utilization bar; see
// LfsFileSystem::CleanerPass). Decisions are pure functions of the inputs,
// so single-threaded runs stay byte-deterministic.

#ifndef LFS_LFS_CLEANER_GOVERNOR_H_
#define LFS_LFS_CLEANER_GOVERNOR_H_

#include <cstdint>
#include <vector>

#include "src/lfs/config.h"

namespace lfs {

struct GovernorDecision {
  CleaningPolicy hot_policy = CleaningPolicy::kCostBenefit;   // log 0
  CleaningPolicy cold_policy = CleaningPolicy::kCostBenefit;  // logs 1..N-1
  bool partial = false;  // drain high-u victims incrementally this pass
};

class CleanerGovernor {
 public:
  void Configure(const LfsConfig& cfg) {
    enabled_ = cfg.adaptive_cleaning;
    fixed_policy_ = cfg.policy;
    greedy_fraction_ = cfg.governor_greedy_fraction;
    low_u_ = cfg.governor_low_u;
    partial_ = cfg.partial_compaction;
  }

  bool enabled() const { return enabled_; }

  // `histogram` is the dirty-segment count per utilization bucket (bucket i
  // covers u in [i/n, (i+1)/n)). Counts a policy switch whenever the hot
  // policy differs from the previous decision's.
  GovernorDecision Decide(const std::vector<uint32_t>& histogram) {
    GovernorDecision d;
    d.partial = partial_;
    if (!enabled_) {
      d.hot_policy = fixed_policy_;
      d.cold_policy = fixed_policy_;
      return d;
    }
    uint64_t total = 0;
    uint64_t low = 0;
    const size_t n = histogram.size();
    for (size_t b = 0; b < n; b++) {
      total += histogram[b];
      // Bucket b holds u < (b+1)/n; count it "low" if that bound stays
      // within low_u_, so the classification is exact at bucket granularity.
      if (n > 0 && static_cast<double>(b + 1) / static_cast<double>(n) <= low_u_) {
        low += histogram[b];
      }
    }
    bool emptied_out =
        total > 0 && static_cast<double>(low) >=
                         greedy_fraction_ * static_cast<double>(total);
    d.hot_policy = emptied_out ? CleaningPolicy::kGreedy : CleaningPolicy::kCostBenefit;
    d.cold_policy = CleaningPolicy::kCostBenefit;
    if (has_last_ && d.hot_policy != last_hot_) {
      switches_++;
    }
    has_last_ = true;
    last_hot_ = d.hot_policy;
    return d;
  }

  uint64_t switches() const { return switches_; }

 private:
  bool enabled_ = false;
  CleaningPolicy fixed_policy_ = CleaningPolicy::kCostBenefit;
  double greedy_fraction_ = 0.35;
  double low_u_ = 0.25;
  bool partial_ = false;

  CleaningPolicy last_hot_ = CleaningPolicy::kCostBenefit;
  bool has_last_ = false;
  uint64_t switches_ = 0;
};

}  // namespace lfs

#endif  // LFS_LFS_CLEANER_GOVERNOR_H_
