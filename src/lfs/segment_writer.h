// SegmentWriter: the log append path (Sections 3.2-3.3).
//
// Callers Append() blocks; the writer assigns each a disk address inside an
// active segment, buffers it, and emits *partial-segment writes* — one
// summary block followed by the payload blocks, issued as a single
// sequential device I/O. A partial write is emitted when the buffered batch
// reaches the segment end, when the summary block's entry capacity is
// reached, or when the caller flushes.
//
// The writer never overwrites anything: when a segment fills it advances to
// the next clean segment (taken from the segment usage table). The ordinary
// write path may not consume the last `reserve` clean segments; only the
// cleaner (set_cleaning(true)) may, which guarantees the cleaner always has
// room to compact into.
//
// Multi-log mode (num_logs > 1, the SSDFS-style flash optimization): the
// writer keeps N independent append points and classifies each block by
// temperature at write time — metadata and freshly written data go to log 0,
// older data (whose age says it will live a while) to the cold logs. The
// cleaner passes blocks through with their original mtimes, so survivors of
// cleaning land in cold segments instead of remixing into hot ones; segment
// populations separate by temperature and both the LFS cleaner and a flash
// device's internal GC find near-uniform segments to reclaim. One global
// summary sequence spans all logs, so roll-forward's contiguous-prefix rule
// is unchanged. num_logs == 1 is byte-identical to the classic single-log
// writer.

#ifndef LFS_LFS_SEGMENT_WRITER_H_
#define LFS_LFS_SEGMENT_WRITER_H_

#include <cstdint>
#include <vector>

#include "src/disk/block_device.h"
#include "src/fs/clock.h"
#include "src/lfs/layout.h"
#include "src/lfs/seg_usage.h"
#include "src/lfs/stats.h"
#include "src/obs/obs.h"
#include "src/util/retry.h"

namespace lfs {

class SegmentWriter {
 public:
  // `clock` and `retry` govern transient-write-error handling of the
  // partial-segment device write: retried with backoff modeled on the clock.
  SegmentWriter(BlockDevice* device, const Superblock* sb, SegUsage* usage, LfsStats* stats,
                uint32_t reserve_segments, LogicalClock* clock = nullptr,
                RetryPolicy retry = RetryPolicy{}, obs::FsObs* obs = nullptr,
                uint32_t num_logs = 1)
      : device_(device),
        sb_(sb),
        usage_(usage),
        stats_(stats),
        reserve_segments_(reserve_segments),
        clock_(clock),
        retry_(retry),
        obs_(obs),
        logs_(num_logs == 0 ? 1 : num_logs) {}

  // Positions the log tail (mkfs / mount / recovery). The segment must
  // already be marked kActive in the usage table. Resets every other log to
  // "no segment" — they re-acquire clean segments on first use (or are
  // re-positioned with InitLog from the checkpoint's per-log records).
  void Init(SegNo segment, uint32_t offset, uint64_t next_seq);

  // Positions one of the extra logs (mount path, from the checkpoint's
  // per-log append-point records). The segment must be kActive.
  void InitLog(uint32_t log, SegNo segment, uint32_t offset);

  // Appends one block to the log. `entry` identifies the block for the
  // summary; `mtime` is the modification time used for segment age tracking
  // (the cleaner passes the block's original age through so cold data keeps
  // looking cold); `live_bytes` is the amount this block adds to its
  // segment's live count (block size for most kinds, the used slot bytes for
  // inode blocks, 0 for dirlog blocks which are dead once checkpointed).
  // Returns the assigned disk address. The data is buffered; it is durable
  // only after the enclosing partial write is emitted.
  //
  // `cold_hint` (multi-log only) is the migration-ladder directive: the
  // cleaner passes 1 + the log it wants the block in (clamped to the coldest
  // log that exists). 0 means no hint — the age heuristic decides.
  Result<BlockNo> Append(const SummaryEntry& entry, std::vector<uint8_t> data, uint64_t mtime,
                         uint32_t live_bytes, uint32_t cold_hint = 0);

  // Emits the buffered partial writes of every log, if any.
  Status Flush();

  // Ensures the next metadata Append has a destination (flushing/advancing
  // segments as needed) WITHOUT appending anything. Afterwards
  // current_segment() is where that append will land — callers that must
  // account a block's effects in the block's own serialized contents (the
  // segment-usage chunk covering the active segment) use this to pre-account
  // before serializing. Metadata always routes to log 0.
  Status PrepareAppend() { return EnsureRoom(logs_[0], 0); }

  // Reads a not-yet-flushed block back by address (the read path must see
  // buffered log blocks). Returns false if the address is not buffered.
  bool ReadBuffered(BlockNo addr, std::span<uint8_t> out) const;

  // Cleaning mode: appended bytes count as cleaning traffic and the reserve
  // segments become usable.
  void set_cleaning(bool cleaning) { cleaning_ = cleaning; }
  bool cleaning() const { return cleaning_; }

  // Privileged mode (checkpointing): may dip into the reserve so a
  // checkpoint can always complete — checkpoints are what turn dead
  // segments back into clean ones, so refusing them would deadlock the log.
  void set_privileged(bool privileged) { privileged_ = privileged; }

  // The metadata log's append point (log 0) — the position checkpoints and
  // pre-accounting reason about.
  SegNo current_segment() const { return logs_[0].cur_seg; }
  uint32_t current_offset() const {
    return logs_[0].cur_offset + PendingBlocks(logs_[0]);
  }

  // Per-log append points (log 0 == current_segment()/current_offset()).
  uint32_t num_logs() const { return static_cast<uint32_t>(logs_.size()); }
  SegNo log_segment(uint32_t log) const { return logs_[log].cur_seg; }
  uint32_t log_offset(uint32_t log) const {
    return logs_[log].cur_offset + PendingBlocks(logs_[log]);
  }

  uint64_t next_seq() const { return next_seq_; }
  uint64_t timestamp() const { return timestamp_; }
  void set_timestamp(uint64_t t) { timestamp_ = t; }

  // Clean segments still usable by the ordinary (non-cleaning) write path.
  uint32_t usable_clean_segments() const {
    uint32_t n = usage_->clean_count();
    return n > reserve_segments_ ? n - reserve_segments_ : 0;
  }

 private:
  struct Pending {
    SummaryEntry entry;
    std::vector<uint8_t> data;
  };

  // One append point: an active segment plus the open partial buffered into
  // it. Log 0 carries metadata (and, in multi-log mode, hot data); higher
  // logs carry progressively colder data.
  struct Log {
    SegNo cur_seg = kNilSeg;
    uint32_t cur_offset = 0;  // next free block index within cur_seg
    std::vector<Pending> pending;  // payload of the open partial (may be empty)
    uint64_t partial_youngest = 0;
  };

  static uint32_t PendingBlocks(const Log& log) {
    return log.pending.empty() ? 0 : static_cast<uint32_t>(log.pending.size()) + 1;
  }

  // Write-time temperature classification: which log should hold this block.
  uint32_t ClassifyLog(const SummaryEntry& entry, uint64_t mtime, uint32_t cold_hint);

  // Ensures an open partial with room for one more block; may flush and/or
  // advance to a new segment.
  Status EnsureRoom(Log& log, uint32_t log_index);
  Status AdvanceSegment(Log& log, uint32_t log_index);
  Status FlushLog(Log& log);

  BlockDevice* device_;
  const Superblock* sb_;
  SegUsage* usage_;
  LfsStats* stats_;
  uint32_t reserve_segments_;
  LogicalClock* clock_;  // may be null: retries still happen, delays are not modeled
  RetryPolicy retry_;
  obs::FsObs* obs_;      // may be null: no trace events from the writer

  std::vector<Log> logs_;
  uint64_t next_seq_ = 1;   // ONE sequence across all logs (roll-forward order)
  uint64_t timestamp_ = 0;  // logical time stamped into summaries
  bool cleaning_ = false;
  bool privileged_ = false;

  // Running mean of data-block ages seen at Append (logical-clock units);
  // the hot/cold boundary. Freshly written data has age ~0 (hot); blocks the
  // cleaner migrates keep their original mtime and look old (cold).
  double age_ewma_ = 0.0;
};

}  // namespace lfs

#endif  // LFS_LFS_SEGMENT_WRITER_H_
