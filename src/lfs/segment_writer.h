// SegmentWriter: the log append path (Sections 3.2-3.3).
//
// Callers Append() blocks; the writer assigns each a disk address inside an
// active segment, buffers it, and emits *partial-segment writes* — one
// summary block followed by the payload blocks, issued as a single
// sequential device I/O. A partial write is emitted when the buffered batch
// reaches the segment end, when the summary block's entry capacity is
// reached, or when the caller flushes.
//
// The writer never overwrites anything: when a segment fills it advances to
// the next clean segment (taken from the segment usage table). The ordinary
// write path may not consume the last `reserve` clean segments; only the
// cleaner (set_cleaning(true)) may, which guarantees the cleaner always has
// room to compact into.
//
// Multi-log mode (num_logs > 1, the SSDFS-style flash optimization): the
// writer keeps N independent append points and classifies each block by
// temperature at write time — metadata and freshly written data go to log 0,
// older data (whose age says it will live a while) to the cold logs. The
// cleaner passes blocks through with their original mtimes, so survivors of
// cleaning land in cold segments instead of remixing into hot ones; segment
// populations separate by temperature and both the LFS cleaner and a flash
// device's internal GC find near-uniform segments to reclaim. One global
// summary sequence spans all logs, so roll-forward's contiguous-prefix rule
// is unchanged. num_logs == 1 is byte-identical to the classic single-log
// writer.

#ifndef LFS_LFS_SEGMENT_WRITER_H_
#define LFS_LFS_SEGMENT_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/disk/block_device.h"
#include "src/fs/clock.h"
#include "src/lfs/layout.h"
#include "src/lfs/seg_usage.h"
#include "src/lfs/stats.h"
#include "src/obs/obs.h"
#include "src/util/relaxed.h"
#include "src/util/retry.h"

namespace lfs {

// GroupCommit: xv6-style transaction counting (kernel/log.c begin_op/end_op)
// for the concurrent front-end. Mutators join the open transaction with
// BeginOp(), reserving their worst-case staged log blocks, stage their dirty
// blocks under the filesystem's *shared* lock, and leave with EndOp(). When a
// leaving op asks for a commit (write buffer full) the *last op out* of the
// transaction wins the committer token: EndOp returns true exactly once, the
// winner flushes the whole batch to the segment writer under the exclusive
// filesystem lock, and EndCommit() opens the next transaction. While a commit
// is in flight BeginOp blocks, so relocation/checkpointing never interleaves
// with a half-staged batch; readers poll WaitNotCommitting() before taking
// the shared lock so the committer's exclusive acquisition cannot be starved
// by a continuous reader stream.
//
// External exclusive sections (checkpoint, cleaner pass, unmount) use
// BeginCommit()/EndCommit() directly: BeginCommit closes the transaction to
// new ops and waits for in-flight ones to drain before the caller takes the
// filesystem lock exclusively.
class GroupCommit {
 public:
  // `max_ops` bounds how many mutators share one open transaction;
  // `max_staged_blocks` bounds the transaction's total worst-case reserved
  // log blocks before further BeginOps wait for a commit.
  void Configure(uint32_t max_ops, uint64_t max_staged_blocks) {
    max_ops_ = max_ops == 0 ? 1 : max_ops;
    max_staged_ = max_staged_blocks == 0 ? 1 : max_staged_blocks;
  }

  // Joins the open transaction, reserving `blocks` worst-case staged blocks.
  // Blocks while a commit is in flight, the transaction is at its op cap, or
  // the reservation budget is exhausted (a lone op is always admitted so an
  // oversized reservation cannot deadlock).
  void BeginOp(uint64_t blocks) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return !committing_ && outstanding_ < max_ops_ &&
             (outstanding_ == 0 || reserved_ + blocks <= max_staged_);
    });
    outstanding_++;
    reserved_ += blocks;
  }

  // Leaves the transaction. `want_commit` requests a batch commit (typically:
  // the write buffer crossed its flush threshold); the request is sticky and
  // the last op out of the transaction wins the committer token. Returns true
  // iff the caller became the committer and MUST call Commit-flush work
  // followed by EndCommit().
  bool EndOp(bool want_commit) {
    std::lock_guard<std::mutex> lk(mu_);
    outstanding_--;
    if (want_commit || reserved_ >= max_staged_) {
      commit_requested_ = true;
    }
    if (outstanding_ == 0 && commit_requested_ && !committing_) {
      set_committing(true);  // token handed to this caller atomically
      commit_requested_ = false;
      return true;
    }
    cv_.notify_all();
    return false;
  }

  // Claims the committer token from outside the op path (checkpoint, sync,
  // cleaner thread, unmount): waits out any in-flight commit, closes the
  // transaction to new ops, and drains the in-flight ones.
  void BeginCommit() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !committing_; });
    set_committing(true);
    cv_.wait(lk, [&] { return outstanding_ == 0; });
  }

  // Releases the committer token and opens the next transaction. The staged
  // reservation resets: every exclusive section flushes the staged batch.
  void EndCommit() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      set_committing(false);
      commit_requested_ = false;
      reserved_ = 0;
    }
    cv_.notify_all();
  }

  // Cheap reader-side gate (lock-free fast path): spins down into a cv wait
  // only while a commit is in flight. Readers call this *before* taking the
  // filesystem shared lock, never while holding it.
  void WaitNotCommitting() const {
    if (!committing_flag_.load()) {
      return;
    }
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !committing_; });
  }

 private:
  // committing_ is authoritative under mu_; committing_flag_ mirrors it for
  // the lock-free reader gate.
  void set_committing(bool v) {
    committing_ = v;
    committing_flag_.store(v);
  }

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  uint32_t max_ops_ = 64;
  uint64_t max_staged_ = 1024;
  uint32_t outstanding_ = 0;   // ops inside the open transaction
  uint64_t reserved_ = 0;      // worst-case staged blocks of the transaction
  bool committing_ = false;
  bool commit_requested_ = false;
  Relaxed<bool> committing_flag_{false};
};

class SegmentWriter {
 public:
  // `clock` and `retry` govern transient-write-error handling of the
  // partial-segment device write: retried with backoff modeled on the clock.
  SegmentWriter(BlockDevice* device, const Superblock* sb, SegUsage* usage, LfsStats* stats,
                uint32_t reserve_segments, LogicalClock* clock = nullptr,
                RetryPolicy retry = RetryPolicy{}, obs::FsObs* obs = nullptr,
                uint32_t num_logs = 1)
      : device_(device),
        sb_(sb),
        usage_(usage),
        stats_(stats),
        reserve_segments_(reserve_segments),
        clock_(clock),
        retry_(retry),
        obs_(obs),
        logs_(num_logs == 0 ? 1 : num_logs) {}

  // Positions the log tail (mkfs / mount / recovery). The segment must
  // already be marked kActive in the usage table. Resets every other log to
  // "no segment" — they re-acquire clean segments on first use (or are
  // re-positioned with InitLog from the checkpoint's per-log records).
  void Init(SegNo segment, uint32_t offset, uint64_t next_seq);

  // Positions one of the extra logs (mount path, from the checkpoint's
  // per-log append-point records). The segment must be kActive.
  void InitLog(uint32_t log, SegNo segment, uint32_t offset);

  // Appends one block to the log. `entry` identifies the block for the
  // summary; `mtime` is the modification time used for segment age tracking
  // (the cleaner passes the block's original age through so cold data keeps
  // looking cold); `live_bytes` is the amount this block adds to its
  // segment's live count (block size for most kinds, the used slot bytes for
  // inode blocks, 0 for dirlog blocks which are dead once checkpointed).
  // Returns the assigned disk address. The data is buffered; it is durable
  // only after the enclosing partial write is emitted.
  //
  // `cold_hint` (multi-log only) is the migration-ladder directive: the
  // cleaner passes 1 + the log it wants the block in (clamped to the coldest
  // log that exists). 0 means no hint — the age heuristic decides.
  Result<BlockNo> Append(const SummaryEntry& entry, std::vector<uint8_t> data, uint64_t mtime,
                         uint32_t live_bytes, uint32_t cold_hint = 0);

  // Emits the buffered partial writes of every log, if any.
  Status Flush();

  // Ensures the next metadata Append has a destination (flushing/advancing
  // segments as needed) WITHOUT appending anything. Afterwards
  // current_segment() is where that append will land — callers that must
  // account a block's effects in the block's own serialized contents (the
  // segment-usage chunk covering the active segment) use this to pre-account
  // before serializing. Metadata always routes to log 0.
  Status PrepareAppend() {
    std::lock_guard<std::mutex> lk(logs_[0].mu);
    return EnsureRoom(logs_[0], 0);
  }

  // Reads a not-yet-flushed block back by address (the read path must see
  // buffered log blocks). Returns false if the address is not buffered.
  bool ReadBuffered(BlockNo addr, std::span<uint8_t> out) const;

  // Cleaning mode: appended bytes count as cleaning traffic and the reserve
  // segments become usable.
  void set_cleaning(bool cleaning) { cleaning_ = cleaning; }
  bool cleaning() const { return cleaning_; }

  // Privileged mode (checkpointing): may dip into the reserve so a
  // checkpoint can always complete — checkpoints are what turn dead
  // segments back into clean ones, so refusing them would deadlock the log.
  void set_privileged(bool privileged) { privileged_ = privileged; }

  // The metadata log's append point (log 0) — the position checkpoints and
  // pre-accounting reason about.
  SegNo current_segment() const { return logs_[0].cur_seg; }
  uint32_t current_offset() const {
    return logs_[0].cur_offset + PendingBlocks(logs_[0]);
  }

  // Per-log append points (log 0 == current_segment()/current_offset()).
  uint32_t num_logs() const { return static_cast<uint32_t>(logs_.size()); }
  SegNo log_segment(uint32_t log) const { return logs_[log].cur_seg; }
  uint32_t log_offset(uint32_t log) const {
    return logs_[log].cur_offset + PendingBlocks(logs_[log]);
  }

  uint64_t next_seq() const { return next_seq_; }
  uint64_t timestamp() const { return timestamp_; }
  void set_timestamp(uint64_t t) { timestamp_ = t; }

  // Clean segments still usable by the ordinary (non-cleaning) write path.
  uint32_t usable_clean_segments() const {
    uint32_t n = usage_->clean_count();
    return n > reserve_segments_ ? n - reserve_segments_ : 0;
  }

 private:
  struct Pending {
    SummaryEntry entry;
    std::vector<uint8_t> data;
  };

  // One append point: an active segment plus the open partial buffered into
  // it. Log 0 carries metadata (and, in multi-log mode, hot data); higher
  // logs carry progressively colder data.
  //
  // Concurrency: `mu` is the per-log append lock — Append/Flush serialize on
  // the log they touch, so concurrent appends to *distinct* logs are safe
  // with respect to each other (num_logs > 1 under LfsConfig::concurrent).
  // Lock-free readers of the append point (ReadBuffered, log_offset) are
  // instead fenced by the filesystem rwlock: appends only ever run under the
  // exclusive filesystem lock (group commit, cleaner, checkpoint), readers
  // under the shared one.
  struct Log {
    SegNo cur_seg = kNilSeg;
    uint32_t cur_offset = 0;  // next free block index within cur_seg
    std::vector<Pending> pending;  // payload of the open partial (may be empty)
    uint64_t partial_youngest = 0;
    mutable std::mutex mu;
  };

  static uint32_t PendingBlocks(const Log& log) {
    return log.pending.empty() ? 0 : static_cast<uint32_t>(log.pending.size()) + 1;
  }

  // Write-time temperature classification: which log should hold this block.
  uint32_t ClassifyLog(const SummaryEntry& entry, uint64_t mtime, uint32_t cold_hint);

  // Ensures an open partial with room for one more block; may flush and/or
  // advance to a new segment. These three run with the log's append lock
  // (log.mu) held by the caller.
  Status EnsureRoom(Log& log, uint32_t log_index);
  Status AdvanceSegment(Log& log, uint32_t log_index);
  Status FlushLog(Log& log);

  BlockDevice* device_;
  const Superblock* sb_;
  SegUsage* usage_;
  LfsStats* stats_;
  uint32_t reserve_segments_;
  LogicalClock* clock_;  // may be null: retries still happen, delays are not modeled
  RetryPolicy retry_;
  obs::FsObs* obs_;      // may be null: no trace events from the writer

  std::vector<Log> logs_;
  // ONE sequence across all logs (roll-forward order); atomic so concurrent
  // flushes of distinct logs draw unique seqs. FlushLog rolls it back on a
  // failed device write while still holding that log's append lock.
  std::atomic<uint64_t> next_seq_{1};
  Relaxed<uint64_t> timestamp_{0};  // logical time stamped into summaries
  Relaxed<bool> cleaning_{false};
  Relaxed<bool> privileged_{false};

  // Running mean of data-block ages seen at Append (logical-clock units);
  // the hot/cold boundary. Freshly written data has age ~0 (hot); blocks the
  // cleaner migrates keep their original mtime and look old (cold). Updated
  // with plain relaxed load/store — a lost update under concurrent appends
  // only nudges a heuristic.
  Relaxed<double> age_ewma_{0.0};
};

}  // namespace lfs

#endif  // LFS_LFS_SEGMENT_WRITER_H_
