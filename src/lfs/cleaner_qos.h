// CleanerQos: a token bucket bounding the cleaner's copy I/O against the
// modeled disk clock.
//
// The cleaner's cost is the bytes it moves (segment reads + live-block
// rewrites). Foreground latency at high utilization is dominated by cleaning
// passes that run synchronously inside a write's flush, so the bucket meters
// those bytes: tokens accrue at `bytes_per_sec` of modeled device time, a
// pass charges what it actually moved, and a discretionary pass defers when
// the bucket is dry. The one exception is wedge avoidance: when clean
// segments fall to the critical floor the cleaner runs anyway and the bucket
// goes negative (a deficit, "borrowed" from foreground traffic); refills pay
// the deficit back before discretionary cleaning resumes, so a burst of
// emergency copying is followed by an enforced quiet period rather than by
// more discretionary copying on top.
//
// Charging happens after the pass (the cost is only known then); the deficit
// semantics make that sound — an over-budget pass just pushes the bucket
// further negative. All arithmetic is plain doubles off the deterministic
// modeled clock: single-threaded runs stay byte-reproducible. Calls are made
// under the filesystem's exclusive lock (cleaner paths only), so no internal
// synchronization is needed.

#ifndef LFS_LFS_CLEANER_QOS_H_
#define LFS_LFS_CLEANER_QOS_H_

#include <algorithm>
#include <cstdint>

namespace lfs {

class CleanerQos {
 public:
  void Configure(double bytes_per_sec, double burst_sec) {
    rate_ = bytes_per_sec > 0.0 ? bytes_per_sec : 0.0;
    burst_bytes_ = rate_ * std::max(burst_sec, 0.0);
    tokens_ = burst_bytes_;  // start full: mount-time cleaning is never penalized
    primed_ = false;
  }

  bool enabled() const { return rate_ > 0.0; }

  // Accrues tokens for the modeled time elapsed since the last refill. The
  // first call only anchors the clock (mount may start at an arbitrary
  // modeled time).
  void Refill(double now_sec) {
    if (!enabled()) {
      return;
    }
    if (!primed_) {
      primed_ = true;
      last_refill_sec_ = now_sec;
      return;
    }
    if (now_sec > last_refill_sec_) {
      tokens_ = std::min(tokens_ + (now_sec - last_refill_sec_) * rate_, burst_bytes_);
      last_refill_sec_ = now_sec;
    }
  }

  // May a discretionary pass run? (Escalated passes ignore this.)
  bool HasTokens() const { return !enabled() || tokens_ > 0.0; }

  // Debits the copy bytes a pass actually moved; may push the bucket
  // negative (deficit) when the pass was escalated or ran over.
  void Charge(uint64_t bytes) {
    if (enabled()) {
      tokens_ -= static_cast<double>(bytes);
    }
  }

  double tokens() const { return tokens_; }
  double deficit_bytes() const { return tokens_ < 0.0 ? -tokens_ : 0.0; }

 private:
  double rate_ = 0.0;         // bytes of cleaner I/O per modeled second
  double burst_bytes_ = 0.0;  // bucket capacity
  double tokens_ = 0.0;
  double last_refill_sec_ = 0.0;
  bool primed_ = false;
};

}  // namespace lfs

#endif  // LFS_LFS_CLEANER_QOS_H_
