// FileSystem: the filesystem-neutral public API. Both the log-structured
// filesystem (src/lfs) and the Unix-FFS-style baseline (src/ffs) implement
// this interface, so benchmarks, examples, and differential tests can drive
// either system through identical code.
//
// Paths are '/'-separated, absolute ("/a/b/c"); "/" names the root
// directory. Namespace operations take paths; data I/O takes the inode
// number returned by Create/Lookup (there is no open-file-descriptor table —
// callers that want one can layer it trivially).

#ifndef LFS_FS_FILE_SYSTEM_H_
#define LFS_FS_FILE_SYSTEM_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace lfs {

using InodeNum = uint32_t;
inline constexpr InodeNum kNilInode = 0;   // never a valid file
inline constexpr InodeNum kRootInode = 1;  // the root directory

enum class FileType : uint8_t {
  kNone = 0,
  kRegular = 1,
  kDirectory = 2,
};

struct FileStat {
  InodeNum ino = kNilInode;
  FileType type = FileType::kNone;
  uint64_t size = 0;      // bytes
  uint32_t nlink = 0;     // directory entries referring to this inode
  uint64_t mtime = 0;     // logical-clock time of last modification
  uint32_t version = 0;   // LFS inode-map version (0 for FFS)
};

struct DirEntry {
  std::string name;
  InodeNum ino = kNilInode;
  FileType type = FileType::kNone;
};

inline constexpr size_t kMaxNameLen = 255;

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // --- namespace operations -------------------------------------------------

  // Creates a regular file; fails with AlreadyExists if the name is taken.
  virtual Result<InodeNum> Create(std::string_view path) = 0;
  virtual Status Mkdir(std::string_view path) = 0;
  // Removes a name; deletes the file when its link count reaches zero.
  virtual Status Unlink(std::string_view path) = 0;
  virtual Status Rmdir(std::string_view path) = 0;
  // Adds a hard link to an existing regular file.
  virtual Status Link(std::string_view existing, std::string_view link_path) = 0;
  // Atomic rename; replaces an existing regular-file target.
  virtual Status Rename(std::string_view from, std::string_view to) = 0;
  virtual Result<InodeNum> Lookup(std::string_view path) = 0;
  virtual Result<FileStat> Stat(InodeNum ino) = 0;
  virtual Result<std::vector<DirEntry>> ReadDir(std::string_view path) = 0;

  // --- data operations -------------------------------------------------------

  // Writes data at the byte offset, extending the file as needed.
  virtual Status WriteAt(InodeNum ino, uint64_t offset, std::span<const uint8_t> data) = 0;
  // Reads up to out.size() bytes; returns the byte count actually read
  // (short at EOF; holes read as zeros).
  virtual Result<uint64_t> ReadAt(InodeNum ino, uint64_t offset, std::span<uint8_t> out) = 0;
  virtual Status Truncate(InodeNum ino, uint64_t new_size) = 0;

  // Forces all buffered modifications to disk (LFS: writes the dirty block
  // queue and takes a checkpoint; FFS: flushes the block cache).
  virtual Status Sync() = 0;

  // --- convenience helpers (implemented on the virtuals) ---------------------

  // Create + write entire contents.
  Status WriteFile(std::string_view path, std::span<const uint8_t> data);
  // Lookup + read entire contents.
  Result<std::vector<uint8_t>> ReadFile(std::string_view path);
  Result<FileStat> StatPath(std::string_view path);
  bool Exists(std::string_view path);
};

// Splits "/a/b/c" into {"a","b","c"}. Rejects empty components, relative
// paths, and components longer than kMaxNameLen.
Result<std::vector<std::string>> SplitPath(std::string_view path);

// Splits a path into (parent path, final component): "/a/b/c" -> ("/a/b", "c").
// Fails for "/" (the root has no parent entry).
Result<std::pair<std::string, std::string>> SplitParent(std::string_view path);

}  // namespace lfs

#endif  // LFS_FS_FILE_SYSTEM_H_
