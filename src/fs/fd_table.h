// FdTable: a POSIX-flavored open-file layer over any FileSystem.
//
// Gives adopting applications the familiar open/read/write/lseek/close
// surface (with O_CREAT / O_TRUNC / O_APPEND / O_EXCL semantics and
// per-descriptor offsets) without the FileSystem interface having to know
// about descriptors. Descriptors are small integers, lowest-free-first, as
// POSIX requires.

#ifndef LFS_FS_FD_TABLE_H_
#define LFS_FS_FD_TABLE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/fs/file_system.h"

namespace lfs {

// Open flags (combine with |).
enum OpenFlags : uint32_t {
  kRdOnly = 0x0,
  kWrOnly = 0x1,
  kRdWr = 0x2,
  kCreate = 0x40,    // O_CREAT
  kExclusive = 0x80, // O_EXCL (with kCreate: fail if the file exists)
  kTruncate = 0x200, // O_TRUNC
  kAppend = 0x400,   // O_APPEND: every write goes to end-of-file
};

enum class Whence { kSet, kCur, kEnd };

class FdTable {
 public:
  explicit FdTable(FileSystem* fs) : fs_(fs) {}

  // POSIX-style calls; errors map to the library's Status codes.
  Result<int> Open(std::string_view path, uint32_t flags);
  Status Close(int fd);
  // Reads from the descriptor's offset, advancing it; short reads at EOF.
  Result<uint64_t> Read(int fd, std::span<uint8_t> out);
  // Writes at the descriptor's offset (or EOF with kAppend), advancing it.
  Result<uint64_t> Write(int fd, std::span<const uint8_t> data);
  // Positional forms; do not move the descriptor offset.
  Result<uint64_t> Pread(int fd, uint64_t offset, std::span<uint8_t> out);
  Result<uint64_t> Pwrite(int fd, uint64_t offset, std::span<const uint8_t> data);
  Result<uint64_t> Seek(int fd, int64_t offset, Whence whence);
  Result<FileStat> Fstat(int fd);
  Status Ftruncate(int fd, uint64_t size);

  // Open descriptor count (for tests and leak checks).
  size_t open_count() const;

 private:
  struct OpenFile {
    bool in_use = false;
    InodeNum ino = kNilInode;
    uint64_t offset = 0;
    uint32_t flags = 0;
  };

  Result<OpenFile*> Get(int fd);
  bool Writable(const OpenFile& f) const {
    return (f.flags & 0x3) == kWrOnly || (f.flags & 0x3) == kRdWr;
  }
  bool Readable(const OpenFile& f) const { return (f.flags & 0x3) != kWrOnly; }

  FileSystem* fs_;
  std::vector<OpenFile> table_;
};

}  // namespace lfs

#endif  // LFS_FS_FD_TABLE_H_
