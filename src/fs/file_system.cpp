#include "src/fs/file_system.h"

namespace lfs {

Status FileSystem::WriteFile(std::string_view path, std::span<const uint8_t> data) {
  LFS_ASSIGN_OR_RETURN(InodeNum ino, Create(path));
  return WriteAt(ino, 0, data);
}

Result<std::vector<uint8_t>> FileSystem::ReadFile(std::string_view path) {
  LFS_ASSIGN_OR_RETURN(InodeNum ino, Lookup(path));
  LFS_ASSIGN_OR_RETURN(FileStat st, Stat(ino));
  std::vector<uint8_t> data(st.size);
  if (st.size > 0) {
    LFS_ASSIGN_OR_RETURN(uint64_t n, ReadAt(ino, 0, data));
    data.resize(n);
  }
  return data;
}

Result<FileStat> FileSystem::StatPath(std::string_view path) {
  LFS_ASSIGN_OR_RETURN(InodeNum ino, Lookup(path));
  return Stat(ino);
}

bool FileSystem::Exists(std::string_view path) {
  Result<InodeNum> r = Lookup(path);
  return r.ok();
}

Result<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("path must be absolute: '" + std::string(path) + "'");
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string_view::npos) {
      j = path.size();
    }
    if (j == i) {
      return InvalidArgumentError("empty path component in '" + std::string(path) + "'");
    }
    std::string_view comp = path.substr(i, j - i);
    if (comp.size() > kMaxNameLen) {
      return NameTooLongError(std::string(comp));
    }
    if (comp == "." || comp == "..") {
      return InvalidArgumentError("'.'/'..' components are not supported in paths");
    }
    parts.emplace_back(comp);
    i = j + 1;
  }
  return parts;
}

Result<std::pair<std::string, std::string>> SplitParent(std::string_view path) {
  LFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return InvalidArgumentError("the root directory has no parent entry");
  }
  std::string leaf = parts.back();
  parts.pop_back();
  std::string parent = "/";
  for (size_t i = 0; i < parts.size(); i++) {
    if (i > 0) {
      parent += "/";
    }
    parent += parts[i];
  }
  return std::make_pair(parent, leaf);
}

}  // namespace lfs
