#include "src/fs/fd_table.h"

#include <string>

namespace lfs {

Result<int> FdTable::Open(std::string_view path, uint32_t flags) {
  Result<InodeNum> ino = fs_->Lookup(path);
  if (!ino.ok()) {
    if (ino.status().code() != StatusCode::kNotFound || (flags & kCreate) == 0) {
      return ino.status();
    }
    ino = fs_->Create(path);
    if (!ino.ok()) {
      return ino.status();
    }
  } else if ((flags & kCreate) != 0 && (flags & kExclusive) != 0) {
    return AlreadyExistsError(std::string(path));
  }

  LFS_ASSIGN_OR_RETURN(FileStat st, fs_->Stat(*ino));
  if (st.type == FileType::kDirectory && ((flags & 0x3) != kRdOnly)) {
    return IsADirectoryError(std::string(path));
  }
  if ((flags & kTruncate) != 0 && st.type == FileType::kRegular && st.size > 0) {
    LFS_RETURN_IF_ERROR(fs_->Truncate(*ino, 0));
  }

  // Lowest free descriptor, POSIX style.
  int fd = -1;
  for (size_t i = 0; i < table_.size(); i++) {
    if (!table_[i].in_use) {
      fd = static_cast<int>(i);
      break;
    }
  }
  if (fd < 0) {
    fd = static_cast<int>(table_.size());
    table_.emplace_back();
  }
  table_[fd] = OpenFile{true, *ino, 0, flags};
  return fd;
}

Result<FdTable::OpenFile*> FdTable::Get(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= table_.size() || !table_[fd].in_use) {
    return InvalidArgumentError("bad file descriptor " + std::to_string(fd));
  }
  return &table_[fd];
}

Status FdTable::Close(int fd) {
  LFS_ASSIGN_OR_RETURN(OpenFile * f, Get(fd));
  f->in_use = false;
  return OkStatus();
}

Result<uint64_t> FdTable::Read(int fd, std::span<uint8_t> out) {
  LFS_ASSIGN_OR_RETURN(OpenFile * f, Get(fd));
  if (!Readable(*f)) {
    return InvalidArgumentError("descriptor is write-only");
  }
  LFS_ASSIGN_OR_RETURN(uint64_t n, fs_->ReadAt(f->ino, f->offset, out));
  f->offset += n;
  return n;
}

Result<uint64_t> FdTable::Write(int fd, std::span<const uint8_t> data) {
  LFS_ASSIGN_OR_RETURN(OpenFile * f, Get(fd));
  if (!Writable(*f)) {
    return InvalidArgumentError("descriptor is read-only");
  }
  if ((f->flags & kAppend) != 0) {
    LFS_ASSIGN_OR_RETURN(FileStat st, fs_->Stat(f->ino));
    f->offset = st.size;
  }
  LFS_RETURN_IF_ERROR(fs_->WriteAt(f->ino, f->offset, data));
  f->offset += data.size();
  return static_cast<uint64_t>(data.size());
}

Result<uint64_t> FdTable::Pread(int fd, uint64_t offset, std::span<uint8_t> out) {
  LFS_ASSIGN_OR_RETURN(OpenFile * f, Get(fd));
  if (!Readable(*f)) {
    return InvalidArgumentError("descriptor is write-only");
  }
  return fs_->ReadAt(f->ino, offset, out);
}

Result<uint64_t> FdTable::Pwrite(int fd, uint64_t offset, std::span<const uint8_t> data) {
  LFS_ASSIGN_OR_RETURN(OpenFile * f, Get(fd));
  if (!Writable(*f)) {
    return InvalidArgumentError("descriptor is read-only");
  }
  LFS_RETURN_IF_ERROR(fs_->WriteAt(f->ino, offset, data));
  return static_cast<uint64_t>(data.size());
}

Result<uint64_t> FdTable::Seek(int fd, int64_t offset, Whence whence) {
  LFS_ASSIGN_OR_RETURN(OpenFile * f, Get(fd));
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = static_cast<int64_t>(f->offset);
      break;
    case Whence::kEnd: {
      LFS_ASSIGN_OR_RETURN(FileStat st, fs_->Stat(f->ino));
      base = static_cast<int64_t>(st.size);
      break;
    }
  }
  int64_t target = base + offset;
  if (target < 0) {
    return InvalidArgumentError("seek before start of file");
  }
  f->offset = static_cast<uint64_t>(target);  // seeking past EOF is allowed
  return f->offset;
}

Result<FileStat> FdTable::Fstat(int fd) {
  LFS_ASSIGN_OR_RETURN(OpenFile * f, Get(fd));
  return fs_->Stat(f->ino);
}

Status FdTable::Ftruncate(int fd, uint64_t size) {
  LFS_ASSIGN_OR_RETURN(OpenFile * f, Get(fd));
  if (!Writable(*f)) {
    return InvalidArgumentError("descriptor is read-only");
  }
  return fs_->Truncate(f->ino, size);
}

size_t FdTable::open_count() const {
  size_t n = 0;
  for (const OpenFile& f : table_) {
    n += f.in_use ? 1 : 0;
  }
  return n;
}

}  // namespace lfs
