// LogicalClock: monotone time source for file mtimes and segment ages.
//
// The paper's cost-benefit policy depends only on the *ordering* of
// modification times, so a logical tick counter is sufficient and keeps
// every experiment deterministic. Benchmarks that model elapsed wall time
// (e.g. Table 2's MB/hour traffic rates) advance the clock explicitly.

#ifndef LFS_FS_CLOCK_H_
#define LFS_FS_CLOCK_H_

#include <cstdint>

namespace lfs {

class LogicalClock {
 public:
  // Returns the current time and advances it by one tick.
  uint64_t Tick() { return now_++; }

  uint64_t Now() const { return now_; }
  void AdvanceTo(uint64_t t) {
    if (t > now_) {
      now_ = t;
    }
  }

 private:
  uint64_t now_ = 1;  // 0 is reserved as "never"
};

}  // namespace lfs

#endif  // LFS_FS_CLOCK_H_
