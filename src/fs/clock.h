// LogicalClock: monotone time source for file mtimes and segment ages.
//
// The paper's cost-benefit policy depends only on the *ordering* of
// modification times, so a logical tick counter is sufficient and keeps
// every experiment deterministic. Benchmarks that model elapsed wall time
// (e.g. Table 2's MB/hour traffic rates) advance the clock explicitly.
//
// The counter is a relaxed atomic so concurrent front-end threads can stamp
// mtimes without a data race; single-threaded runs see the identical tick
// sequence as before.

#ifndef LFS_FS_CLOCK_H_
#define LFS_FS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace lfs {

class LogicalClock {
 public:
  // Returns the current time and advances it by one tick.
  uint64_t Tick() { return now_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t Now() const { return now_.load(std::memory_order_relaxed); }
  void AdvanceTo(uint64_t t) {
    uint64_t cur = now_.load(std::memory_order_relaxed);
    while (t > cur && !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<uint64_t> now_{1};  // 0 is reserved as "never"
};

}  // namespace lfs

#endif  // LFS_FS_CLOCK_H_
