// lfstrace: dump, filter, and summarize binary trace files written by
// TraceBuffer::WriteFile ("LFSTRC01" format).
//
//   lfstrace dump <file.trc> [--type=NAME] [--op=NAME] [--limit=N] [--json]
//   lfstrace summary <file.trc>
//   lfstrace demo <out.trc>
//
// `demo` runs a small in-memory LFS workload with tracing enabled and writes
// its trace to <out.trc>, so the dump/summary paths can be exercised without
// a separate benchmark run. In an -DLFS_TRACE=OFF build, demo reports that
// tracing is compiled out and writes an empty (but valid) trace file.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/disk/mem_disk.h"
#include "src/disk/sim_disk.h"
#include "src/lfs/lfs.h"
#include "src/obs/trace.h"

namespace lfs {
namespace {

using obs::OpType;
using obs::TraceEventType;
using obs::TraceRecord;

int Usage() {
  std::fprintf(stderr,
               "usage: lfstrace dump <file.trc> [--type=NAME] [--op=NAME] "
               "[--limit=N] [--json]\n"
               "       lfstrace summary <file.trc>\n"
               "       lfstrace demo <out.trc>\n");
  return 2;
}

// Name -> enum lookups, inverse of TraceEventTypeName / OpTypeName.
bool ParseEventType(const std::string& name, TraceEventType* out) {
  for (uint16_t v = 1; v <= static_cast<uint16_t>(TraceEventType::kDegraded); v++) {
    TraceEventType t = static_cast<TraceEventType>(v);
    if (name == obs::TraceEventTypeName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

bool ParseOpType(const std::string& name, OpType* out) {
  for (uint16_t v = 0; v < static_cast<uint16_t>(OpType::kCount); v++) {
    OpType op = static_cast<OpType>(v);
    if (name == obs::OpTypeName(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

void PrintJson(const TraceRecord& r, bool last) {
  std::printf(
      "  {\"seq\": %llu, \"ts\": %llu, \"type\": \"%s\", \"op\": \"%s\", "
      "\"a\": %llu, \"b\": %llu, \"t_model\": %.9f}%s\n",
      static_cast<unsigned long long>(r.seq), static_cast<unsigned long long>(r.ts),
      obs::TraceEventTypeName(static_cast<TraceEventType>(r.type)),
      obs::OpTypeName(static_cast<OpType>(r.op)), static_cast<unsigned long long>(r.a),
      static_cast<unsigned long long>(r.b), r.t_model, last ? "" : ",");
}

int Dump(const std::string& path, const std::vector<std::string>& opts) {
  bool have_type = false, have_op = false, json = false;
  TraceEventType want_type{};
  OpType want_op{};
  uint64_t limit = UINT64_MAX;
  for (const std::string& opt : opts) {
    if (opt.rfind("--type=", 0) == 0) {
      if (!ParseEventType(opt.substr(7), &want_type)) {
        std::fprintf(stderr, "lfstrace: unknown event type '%s'\n", opt.substr(7).c_str());
        return 2;
      }
      have_type = true;
    } else if (opt.rfind("--op=", 0) == 0) {
      if (!ParseOpType(opt.substr(5), &want_op)) {
        std::fprintf(stderr, "lfstrace: unknown op '%s'\n", opt.substr(5).c_str());
        return 2;
      }
      have_op = true;
    } else if (opt.rfind("--limit=", 0) == 0) {
      limit = std::strtoull(opt.c_str() + 8, nullptr, 10);
    } else if (opt == "--json") {
      json = true;
    } else {
      return Usage();
    }
  }

  auto records = obs::TraceBuffer::ReadFile(path);
  if (!records.ok()) {
    std::fprintf(stderr, "lfstrace: %s\n", records.status().ToString().c_str());
    return 1;
  }
  std::vector<TraceRecord> kept;
  for (const TraceRecord& r : *records) {
    if (have_type && r.type != static_cast<uint16_t>(want_type)) {
      continue;
    }
    if (have_op && r.op != static_cast<uint16_t>(want_op)) {
      continue;
    }
    kept.push_back(r);
    if (kept.size() >= limit) {
      break;
    }
  }
  if (json) {
    std::printf("[\n");
    for (size_t i = 0; i < kept.size(); i++) {
      PrintJson(kept[i], i + 1 == kept.size());
    }
    std::printf("]\n");
  } else {
    for (const TraceRecord& r : kept) {
      std::printf("%s\n", r.ToString().c_str());
    }
  }
  return 0;
}

int Summary(const std::string& path) {
  auto records = obs::TraceBuffer::ReadFile(path);
  if (!records.ok()) {
    std::fprintf(stderr, "lfstrace: %s\n", records.status().ToString().c_str());
    return 1;
  }
  const std::vector<TraceRecord>& recs = *records;
  std::printf("%zu records", recs.size());
  if (recs.empty()) {
    std::printf("\n");
    return 0;
  }
  std::printf(" (seq %llu..%llu, ts %llu..%llu, modeled time %.6f s)\n",
              static_cast<unsigned long long>(recs.front().seq),
              static_cast<unsigned long long>(recs.back().seq),
              static_cast<unsigned long long>(recs.front().ts),
              static_cast<unsigned long long>(recs.back().ts), recs.back().t_model);
  uint64_t by_type[32] = {};
  uint64_t by_op[static_cast<size_t>(OpType::kCount)] = {};
  for (const TraceRecord& r : recs) {
    if (r.type < 32) {
      by_type[r.type]++;
    }
    if (r.type == static_cast<uint16_t>(TraceEventType::kOpEnd) &&
        r.op < static_cast<uint16_t>(OpType::kCount)) {
      by_op[r.op]++;
    }
  }
  std::printf("\nby event type:\n");
  for (uint16_t v = 1; v <= static_cast<uint16_t>(TraceEventType::kDegraded); v++) {
    if (by_type[v] != 0) {
      std::printf("  %-20s %10llu\n",
                  obs::TraceEventTypeName(static_cast<TraceEventType>(v)),
                  static_cast<unsigned long long>(by_type[v]));
    }
  }
  std::printf("\ncompleted ops:\n");
  for (uint16_t v = 0; v < static_cast<uint16_t>(OpType::kCount); v++) {
    if (by_op[v] != 0) {
      std::printf("  %-20s %10llu\n", obs::OpTypeName(static_cast<OpType>(v)),
                  static_cast<unsigned long long>(by_op[v]));
    }
  }
  return 0;
}

int Demo(const std::string& out_path) {
#if !LFS_TRACE_ENABLED
  std::fprintf(stderr,
               "lfstrace: tracing compiled out (-DLFS_TRACE=OFF); writing an "
               "empty trace\n");
#endif
  LfsConfig cfg;
  cfg.block_size = 4096;
  cfg.segment_blocks = 64;
  SimDisk disk(std::make_unique<MemDisk>(cfg.block_size, 4096), DiskModelParams::WrenIV());
  auto fs_r = LfsFileSystem::Mkfs(&disk, cfg);
  if (!fs_r.ok()) {
    std::fprintf(stderr, "lfstrace: mkfs: %s\n", fs_r.status().ToString().c_str());
    return 1;
  }
  auto fs = std::move(fs_r).value();
  std::vector<uint8_t> content(24 * 1024, 0x5A);
  (void)fs->Mkdir("/d");
  for (int i = 0; i < 40; i++) {
    (void)fs->WriteFile("/d/f" + std::to_string(i), content);
  }
  for (int i = 0; i < 40; i += 2) {
    (void)fs->Unlink("/d/f" + std::to_string(i));
  }
  (void)fs->Sync();
  (void)fs->ForceClean();
  (void)fs->WriteCheckpoint();

#if LFS_TRACE_ENABLED
  Status st = fs->obs().trace.WriteFile(out_path);
#else
  Status st = obs::TraceBuffer(1).WriteFile(out_path);
#endif
  if (!st.ok()) {
    std::fprintf(stderr, "lfstrace: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  std::string cmd = argv[1];
  std::string path = argv[2];
  std::vector<std::string> opts(argv + 3, argv + argc);
  if (cmd == "dump") {
    return Dump(path, opts);
  }
  if (cmd == "summary" && opts.empty()) {
    return Summary(path);
  }
  if (cmd == "demo" && opts.empty()) {
    return Demo(path);
  }
  return Usage();
}

}  // namespace
}  // namespace lfs

int main(int argc, char** argv) { return lfs::Main(argc, argv); }
