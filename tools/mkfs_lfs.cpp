// mkfs.lfs: format a disk image as a log-structured filesystem.
//
//   usage: mkfs_lfs <image> <size-MB> [--block-size N] [--segment-kb N]
//                   [--policy greedy|cost-benefit]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/disk/file_disk.h"
#include "src/lfs/lfs.h"

using namespace lfs;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <image> <size-MB> [--block-size N] [--segment-kb N]\n"
                 "       [--policy greedy|cost-benefit]\n",
                 argv[0]);
    return 2;
  }
  std::string path = argv[1];
  uint64_t size_mb = std::strtoull(argv[2], nullptr, 10);
  LfsConfig cfg;
  for (int i = 3; i < argc - 1; i++) {
    if (std::strcmp(argv[i], "--block-size") == 0) {
      cfg.block_size = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--segment-kb") == 0) {
      cfg.segment_blocks = static_cast<uint32_t>(std::atoi(argv[++i])) * 1024 / cfg.block_size;
    } else if (std::strcmp(argv[i], "--policy") == 0) {
      std::string p = argv[++i];
      if (p == "greedy") {
        cfg.policy = CleaningPolicy::kGreedy;
      } else if (p == "cost-benefit") {
        cfg.policy = CleaningPolicy::kCostBenefit;
      } else {
        std::fprintf(stderr, "unknown policy '%s'\n", p.c_str());
        return 2;
      }
    }
  }
  if (size_mb < 1) {
    std::fprintf(stderr, "size must be at least 1 MB\n");
    return 2;
  }

  uint64_t blocks = size_mb * 1024 * 1024 / cfg.block_size;
  auto disk = FileDisk::Open(path, cfg.block_size, blocks);
  if (!disk.ok()) {
    std::fprintf(stderr, "mkfs.lfs: %s\n", disk.status().ToString().c_str());
    return 2;
  }
  auto fs = LfsFileSystem::Mkfs(disk->get(), cfg);
  if (!fs.ok()) {
    std::fprintf(stderr, "mkfs.lfs: %s\n", fs.status().ToString().c_str());
    return 1;
  }
  Status st = (*fs)->Unmount();
  if (!st.ok()) {
    std::fprintf(stderr, "mkfs.lfs: unmount: %s\n", st.ToString().c_str());
    return 1;
  }
  const Superblock& sb = (*fs)->superblock();
  std::printf("%s: %llu MB, %u-byte blocks, %u segments of %u KB\n", path.c_str(),
              static_cast<unsigned long long>(size_mb), sb.block_size, sb.nsegments,
              sb.segment_bytes() / 1024);
  return 0;
}
