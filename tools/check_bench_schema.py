#!/usr/bin/env python3
"""Validate (and optionally diff) BENCH_<name>.json benchmark reports.

Every benchmark binary emits a machine-readable report through
lfs::bench::BenchReport (see bench/bench_common.h). This script is the CI
gate on that contract:

  check_bench_schema.py validate FILE...
      Exit non-zero unless every FILE is a well-formed report:
      schema_version == 1, string "bench" name, boolean "smoke", a "metrics"
      object of finite numbers, and a "histograms" object whose entries each
      carry count/mean_us/min_us/max_us and the p50/p90/p95/p99 percentile
      fields as finite numbers.

  check_bench_schema.py compare BASELINE CURRENT [--tolerance=0.05]
      Compare two reports for the same benchmark. Metrics prefixed "wall."
      are host wall-clock measurements and are skipped (they vary run to
      run); all other metrics are modeled/deterministic and must agree
      within the relative tolerance. Keys present on only one side are
      reported. Reports with different "smoke" flags refuse to compare.

Only the Python standard library is used.
"""

import json
import math
import sys

HIST_FIELDS = ("count", "mean_us", "p50_us", "p90_us", "p95_us", "p99_us",
               "min_us", "max_us")


def fail(msg):
    print(f"check_bench_schema: {msg}", file=sys.stderr)
    return False


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def validate_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: {e}")
    ok = True
    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not an object")
    if doc.get("schema_version") != 1:
        ok = fail(f"{path}: schema_version != 1")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        ok = fail(f"{path}: missing/empty \"bench\" name")
    if not isinstance(doc.get("smoke"), bool):
        ok = fail(f"{path}: \"smoke\" must be a boolean")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return fail(f"{path}: missing \"metrics\" object")
    for key, value in metrics.items():
        if not is_num(value):
            ok = fail(f"{path}: metric {key!r} is not a finite number")
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        return fail(f"{path}: missing \"histograms\" object")
    for name, h in hists.items():
        if not isinstance(h, dict):
            ok = fail(f"{path}: histogram {name!r} is not an object")
            continue
        for field in HIST_FIELDS:
            if not is_num(h.get(field)):
                ok = fail(f"{path}: histogram {name!r} missing numeric {field!r}")
    return ok


def compare_reports(baseline_path, current_path, tolerance):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(current_path) as f:
        current = json.load(f)
    if baseline.get("bench") != current.get("bench"):
        return fail(f"bench name mismatch: {baseline.get('bench')!r} vs "
                    f"{current.get('bench')!r}")
    if baseline.get("smoke") != current.get("smoke"):
        return fail("refusing to compare: one report is a smoke run and the "
                    "other is not")
    base = {k: v for k, v in baseline["metrics"].items()
            if not k.startswith("wall.")}
    cur = {k: v for k, v in current["metrics"].items()
           if not k.startswith("wall.")}
    ok = True
    for key in sorted(base.keys() - cur.keys()):
        ok = fail(f"metric {key!r} missing from {current_path}")
    for key in sorted(cur.keys() - base.keys()):
        print(f"check_bench_schema: note: new metric {key!r} in {current_path}",
              file=sys.stderr)
    worst = 0.0
    for key in sorted(base.keys() & cur.keys()):
        b, c = base[key], cur[key]
        denom = max(abs(b), abs(c), 1e-12)
        rel = abs(b - c) / denom
        worst = max(worst, rel)
        if rel > tolerance:
            ok = fail(f"metric {key!r}: baseline {b} vs current {c} "
                      f"(rel diff {rel:.4f} > {tolerance})")
    status = "OK" if ok else "FAIL"
    print(f"check_bench_schema: compare {status}: {len(base.keys() & cur.keys())} "
          f"deterministic metrics, worst rel diff {worst:.4f}")
    return ok


def main(argv):
    if len(argv) >= 3 and argv[1] == "validate":
        ok = all([validate_report(p) for p in argv[2:]])
        if ok:
            print(f"check_bench_schema: {len(argv) - 2} report(s) valid")
        return 0 if ok else 1
    if len(argv) >= 4 and argv[1] == "compare":
        tolerance = 0.05
        rest = []
        for a in argv[2:]:
            if a.startswith("--tolerance="):
                tolerance = float(a.split("=", 1)[1])
            else:
                rest.append(a)
        if len(rest) != 2:
            print(__doc__, file=sys.stderr)
            return 2
        return 0 if compare_reports(rest[0], rest[1], tolerance) else 1
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
