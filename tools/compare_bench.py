#!/usr/bin/env python3
"""Benchmark-regression gate: diff a directory of BENCH_<name>.json reports
against checked-in baselines.

    compare_bench.py BASELINE_DIR CURRENT_DIR [--tolerance=0.05]
                     [--require=bench1,bench2,...]
                     [--ratio=bench:metricA/metricB>=MIN ...]

For every BENCH_*.json in BASELINE_DIR, the same file must exist in
CURRENT_DIR and agree on every metric within the relative tolerance.
Rules, matching the BenchReport contract (bench/bench_common.h):

  - Metrics prefixed "wall." are host wall-clock measurements; they vary
    run to run and machine to machine, so they are never compared.
  - All other metrics come from the modeled clock / deterministic counters
    and must satisfy |cur - base| <= tolerance * max(|base|, 1e-12).
  - Histograms are modeled-time too: the same fields are compared with the
    same tolerance.
  - A metric present on only one side is a failure (schema drift is a
    regression: silently dropped metrics hide silently dropped coverage).
  - Reports whose "smoke" flags differ refuse to compare: smoke numbers
    must never be judged against full-run numbers.

--require lists bench names that must be present in CURRENT_DIR even if no
baseline exists yet (so adding a bench to CI without a baseline is loud).

--ratio asserts metricA / metricB >= MIN inside CURRENT_DIR's report for
`bench` (repeatable). Unlike the baseline diff, a ratio gate MAY reference
"wall." metrics: a ratio of two wall-clock numbers measured in the same run
on the same machine cancels out absolute machine speed, which is exactly how
the multi-thread scaling gate works (wall.threads_4.ops_per_sec vs
wall.threads_1.ops_per_sec). Both metrics must exist and the denominator
must be positive.

Exit status:
  0  clean
  1  numeric regression / malformed report / failed ratio gate
  2  usage error
  3  schema drift: a key (metric, histogram, or whole report) present in the
     baseline is missing from the current report, or present in the current
     report with no baseline. Drift is distinct from a regression because the
     fix is different: regenerate the checked-in baseline rather than chase a
     performance delta. Drift and regressions together still exit 3.
Only the Python standard library is used.
"""

import glob
import json
import math
import os
import sys

HIST_FIELDS = ("count", "mean_us", "p50_us", "p90_us", "p95_us", "p99_us",
               "min_us", "max_us")


def load(path):
    with open(path) as f:
        return json.load(f)


def close(base, cur, tol):
    return abs(cur - base) <= tol * max(abs(base), 1e-12)


def compare_reports(base_path, cur_path, tol):
    """Returns (problems, drift): human-readable problem strings (empty =
    clean) and whether any problem is schema drift (a key present on only
    one side) rather than a numeric regression."""
    problems = []
    drift = False
    try:
        base = load(base_path)
    except (OSError, json.JSONDecodeError) as e:
        return [f"baseline unreadable: {e}"], False
    try:
        cur = load(cur_path)
    except (OSError, json.JSONDecodeError) as e:
        return [f"current unreadable: {e}"], False

    if base.get("smoke") != cur.get("smoke"):
        return [f"smoke flag mismatch (baseline={base.get('smoke')}, "
                f"current={cur.get('smoke')}): refusing to compare"], False

    bm = base.get("metrics", {})
    cm = cur.get("metrics", {})
    gated = lambda k: not k.startswith("wall.")
    for key in sorted(set(bm) | set(cm)):
        if not gated(key):
            continue
        if key not in cm:
            problems.append(f"schema drift: metric missing from current "
                            f"report: {key} (baseline {bm[key]})")
            drift = True
        elif key not in bm:
            problems.append(f"schema drift: metric added without baseline: "
                            f"{key} = {cm[key]} (regenerate the baseline)")
            drift = True
        elif not (isinstance(bm[key], (int, float)) and isinstance(cm[key], (int, float))
                  and math.isfinite(bm[key]) and math.isfinite(cm[key])):
            problems.append(f"non-finite metric: {key}")
        elif not close(bm[key], cm[key], tol):
            problems.append(f"metric regressed: {key} baseline={bm[key]} "
                            f"current={cm[key]} (tolerance {tol:.1%})")

    bh = base.get("histograms", {})
    ch = cur.get("histograms", {})
    for name in sorted(set(bh) | set(ch)):
        if name not in ch:
            problems.append(f"schema drift: histogram missing from current "
                            f"report: {name}")
            drift = True
            continue
        if name not in bh:
            problems.append(f"schema drift: histogram added without "
                            f"baseline: {name} (regenerate the baseline)")
            drift = True
            continue
        for field in HIST_FIELDS:
            b, c = bh[name].get(field), ch[name].get(field)
            if b is None or c is None or not close(b, c, tol):
                problems.append(f"histogram regressed: {name}.{field} "
                                f"baseline={b} current={c}")
    return problems, drift


def parse_ratio(spec):
    """'bench:metA/metB>=MIN' -> (bench, metA, metB, MIN); raises ValueError."""
    bench, rest = spec.split(":", 1)
    expr, minimum = rest.split(">=", 1)
    num, den = expr.split("/", 1)
    if not (bench and num and den):
        raise ValueError(f"malformed ratio spec: {spec}")
    return bench, num, den, float(minimum)


def check_ratio(current_dir, bench, num, den, minimum):
    """Returns a problem string, or None if the ratio gate holds."""
    path = os.path.join(current_dir, f"BENCH_{bench}.json")
    try:
        metrics = load(path).get("metrics", {})
    except (OSError, json.JSONDecodeError) as e:
        return f"ratio {bench}: report unreadable: {e}"
    for key in (num, den):
        if not isinstance(metrics.get(key), (int, float)):
            return f"ratio {bench}: metric missing or non-numeric: {key}"
    if not metrics[den] > 0:
        return f"ratio {bench}: denominator {den} = {metrics[den]} (not positive)"
    ratio = metrics[num] / metrics[den]
    if ratio < minimum:
        return (f"ratio {bench}: {num}/{den} = {ratio:.3f} < required {minimum}"
                f" ({num}={metrics[num]}, {den}={metrics[den]})")
    print(f"OK   ratio {bench}: {num}/{den} = {ratio:.3f} >= {minimum}")
    return None


def main(argv):
    tol = 0.05
    require = []
    ratios = []
    dirs = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tol = float(arg.split("=", 1)[1])
        elif arg.startswith("--require="):
            require = [b for b in arg.split("=", 1)[1].split(",") if b]
        elif arg.startswith("--ratio="):
            try:
                ratios.append(parse_ratio(arg.split("=", 1)[1]))
            except ValueError as e:
                print(f"compare_bench: {e}", file=sys.stderr)
                return 2
        else:
            dirs.append(arg)
    if len(dirs) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_dir, current_dir = dirs

    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if not baselines and not require:
        print(f"compare_bench: no baselines in {baseline_dir}", file=sys.stderr)
        return 1

    failed = False
    drifted = False
    for base_path in baselines:
        name = os.path.basename(base_path)
        cur_path = os.path.join(current_dir, name)
        if not os.path.exists(cur_path):
            print(f"FAIL {name}: schema drift: baseline report missing from "
                  f"{current_dir} (bench not run, or renamed without "
                  f"updating the baseline)")
            failed = True
            drifted = True
            continue
        problems, drift = compare_reports(base_path, cur_path, tol)
        if problems:
            failed = True
            drifted = drifted or drift
            print(f"FAIL {name}:")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"OK   {name}")

    for bench in require:
        name = f"BENCH_{bench}.json"
        if not os.path.exists(os.path.join(current_dir, name)):
            print(f"FAIL {name}: required bench report missing from {current_dir}")
            failed = True

    for bench, num, den, minimum in ratios:
        problem = check_ratio(current_dir, bench, num, den, minimum)
        if problem is not None:
            print(f"FAIL {problem}")
            failed = True

    if drifted:
        print("compare_bench: schema drift detected — baseline and current "
              "reports disagree on which keys exist; regenerate the "
              "checked-in baseline if the change is intentional",
              file=sys.stderr)
        return 3
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
