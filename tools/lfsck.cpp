// lfsck: offline consistency check of an LFS disk image.
//
//   usage: lfsck <image> [--fast] [--json]
//
// Exit code 0 if the image is consistent (warnings allowed), 1 on
// corruption, 2 if the image cannot be understood at all. --fast skips
// payload CRC verification (reads only metadata instead of the whole log).
// --json prints a machine-readable report (counters plus per-invariant
// findings) on stdout instead of the human-readable rendering; exit codes
// are unchanged.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/disk/file_disk.h"
#include "src/lfs/check.h"
#include "src/lfs/layout.h"

using namespace lfs;

namespace {

// Opens an image file of unknown size: reads the superblock first to learn
// the geometry, then reopens with the right block count.
Result<std::unique_ptr<FileDisk>> OpenImage(const std::string& path) {
  // Bootstrap with a minimal device big enough for a superblock probe.
  LFS_ASSIGN_OR_RETURN(std::unique_ptr<FileDisk> probe, FileDisk::Open(path, 512, 8));
  std::vector<uint8_t> sector(512);
  LFS_RETURN_IF_ERROR(probe->Read(0, 1, sector));
  probe.reset();
  // The superblock's block_size field is at a fixed offset; decode leniently.
  // (A full decode needs a whole block, whose size we do not know yet.)
  uint32_t magic = sector[0] | sector[1] << 8 | sector[2] << 16 | uint32_t{sector[3]} << 24;
  if (magic != kSuperMagic) {
    return CorruptionError("'" + path + "' does not start with an LFS superblock");
  }
  uint32_t bs = sector[4] | sector[5] << 8 | sector[6] << 16 | uint32_t{sector[7]} << 24;
  if (bs < 512 || bs > (1u << 20) || (bs & (bs - 1)) != 0) {
    return CorruptionError("implausible block size in superblock");
  }
  LFS_ASSIGN_OR_RETURN(std::unique_ptr<FileDisk> full, FileDisk::Open(path, bs, 1));
  std::vector<uint8_t> block(bs);
  LFS_RETURN_IF_ERROR(full->Read(0, 1, block));
  LFS_ASSIGN_OR_RETURN(Superblock sb, Superblock::DecodeFrom(block));
  full.reset();
  return FileDisk::Open(path, bs, sb.total_blocks);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <image> [--fast] [--json]\n", argv[0]);
    return 2;
  }
  CheckOptions options;
  bool json = false;
  for (int i = 2; i < argc; i++) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      options.verify_payload_crcs = false;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  auto disk = OpenImage(argv[1]);
  if (!disk.ok()) {
    std::fprintf(stderr, "lfsck: %s\n", disk.status().ToString().c_str());
    return 2;
  }
  auto report = CheckLfsImage(disk->get(), options);
  if (!report.ok()) {
    std::fprintf(stderr, "lfsck: %s\n", report.status().ToString().c_str());
    return 2;
  }
  if (json) {
    std::printf("%s\n", report->ToJson().c_str());
  } else {
    for (const std::string& msg : report->messages) {
      std::printf("%s\n", msg.c_str());
    }
    std::printf("%s\n", report->Summary().c_str());
  }
  return report->ok() ? 0 : 1;
}
