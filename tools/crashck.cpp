// crashck: exhaustive crash-point model checking of LFS workloads.
//
//   crashck list
//       Print the canonical workload names.
//
//   crashck explore (--workload NAME | --script FILE | --fuzz-seed N)
//                   [--max-states N] [--bug reorder-cr] [--expect-fail]
//                   [--json FILE] [--print-script]
//       Record the workload once, then enumerate every crash point — each
//       write edge at every torn-prefix length, plus flush/trim barriers —
//       deduplicate surviving images by content hash, and drive each unique
//       state through the recovery oracle (lfsck, remount, reference model,
//       usability probe). --bug reorder-cr injects a skipped checkpoint
//       write barrier into the recorded journal; with --expect-fail the exit
//       code is inverted, so CI can assert the oracle still has teeth.
//
//   crashck fuzz (--seeds FILE | --range LO HI)
//                [--max-states N] [--artifact-dir DIR] [--json FILE]
//       Explore one generated workload per seed (seed file: one integer per
//       line, '#' comments). On failure, minimize the trace and write the
//       shrunk script to --artifact-dir, then continue with the remaining
//       seeds.
//
// Exit code 0 on success, 1 if any exploration failed (inverted by
// --expect-fail), 2 on usage or setup errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/explorer.h"
#include "src/check/fuzzer.h"
#include "src/check/minimize.h"
#include "src/check/workload.h"

using namespace lfs;
using namespace lfs::check;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: crashck list\n"
               "       crashck explore (--workload NAME | --script FILE | --fuzz-seed N)\n"
               "                       [--max-states N] [--bug reorder-cr] [--expect-fail]\n"
               "                       [--json FILE] [--print-script]\n"
               "       crashck fuzz (--seeds FILE | --range LO HI)\n"
               "                    [--max-states N] [--artifact-dir DIR] [--json FILE]\n");
  return 2;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ReportJson(const std::string& name, const ExploreReport& r) {
  std::string out = "{\"workload\":\"" + JsonEscape(name) + "\"";
  out += ",\"clean\":" + std::string(r.clean() ? "true" : "false");
  out += ",\"edges\":" + std::to_string(r.edges);
  out += ",\"crash_points\":" + std::to_string(r.crash_points);
  out += ",\"unique_states\":" + std::to_string(r.unique_states);
  out += ",\"pruned\":" + std::to_string(r.pruned);
  out += ",\"checked\":" + std::to_string(r.checked);
  out += ",\"skipped_budget\":" + std::to_string(r.skipped_budget);
  out += ",\"failures\":[";
  for (size_t i = 0; i < r.failures.size(); i++) {
    const CrashFailure& f = r.failures[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"edge\":" + std::to_string(f.edge) + ",\"torn\":" + std::to_string(f.torn) +
           ",\"op\":" + std::to_string(f.op) + ",\"phase\":\"" + JsonEscape(f.phase) +
           "\",\"detail\":\"" + JsonEscape(f.detail) + "\"}";
  }
  out += "]}";
  return out;
}

bool WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "crashck: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return out.good();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Result<std::vector<uint64_t>> ReadSeedFile(const std::string& path) {
  LFS_ASSIGN_OR_RETURN(std::string text, ReadWholeFile(path));
  std::vector<uint64_t> seeds;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    seeds.push_back(std::stoull(line.substr(start)));
  }
  return seeds;
}

int RunExplore(int argc, char** argv) {
  std::string workload_name, script_path, bug, json_path;
  bool have_seed = false, expect_fail = false, print_script = false;
  uint64_t fuzz_seed = 0;
  ExploreOptions options;
  for (int i = 2; i < argc; i++) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--workload") {
      if (const char* v = next()) workload_name = v; else return Usage();
    } else if (arg == "--script") {
      if (const char* v = next()) script_path = v; else return Usage();
    } else if (arg == "--fuzz-seed") {
      if (const char* v = next()) { fuzz_seed = std::stoull(v); have_seed = true; }
      else return Usage();
    } else if (arg == "--max-states") {
      if (const char* v = next()) options.max_states = std::stoull(v); else return Usage();
    } else if (arg == "--bug") {
      if (const char* v = next()) bug = v; else return Usage();
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v; else return Usage();
    } else if (arg == "--expect-fail") {
      expect_fail = true;
    } else if (arg == "--print-script") {
      print_script = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return Usage();
    }
  }
  int sources = !workload_name.empty() + !script_path.empty() + (have_seed ? 1 : 0);
  if (sources != 1) {
    std::fprintf(stderr, "explore needs exactly one of --workload/--script/--fuzz-seed\n");
    return Usage();
  }
  if (!bug.empty() && bug != "reorder-cr") {
    std::fprintf(stderr, "unknown --bug '%s' (known: reorder-cr)\n", bug.c_str());
    return Usage();
  }

  Workload workload;
  if (!workload_name.empty()) {
    Result<Workload> w = CanonicalWorkload(workload_name);
    if (!w.ok()) {
      std::fprintf(stderr, "crashck: %s\n", w.status().ToString().c_str());
      return 2;
    }
    workload = std::move(*w);
  } else if (!script_path.empty()) {
    Result<std::string> text = ReadWholeFile(script_path);
    Result<Workload> w = text.ok() ? Workload::FromText(*text) : Result<Workload>(text.status());
    if (!w.ok()) {
      std::fprintf(stderr, "crashck: %s\n", w.status().ToString().c_str());
      return 2;
    }
    workload = std::move(*w);
  } else {
    workload = FuzzWorkload(fuzz_seed);
  }
  if (print_script) {
    std::printf("%s", workload.ToText().c_str());
  }

  Result<Recording> recording = RecordWorkload(workload);
  if (!recording.ok()) {
    std::fprintf(stderr, "crashck: record failed: %s\n",
                 recording.status().ToString().c_str());
    return 2;
  }
  if (bug == "reorder-cr") {
    Result<std::function<void(std::vector<CrashEdge>&)>> mut =
        SkippedCheckpointBarrierMutator(*recording);
    if (!mut.ok()) {
      std::fprintf(stderr, "crashck: %s\n", mut.status().ToString().c_str());
      return 2;
    }
    options.mutate_edges = std::move(*mut);
  }
  Result<ExploreReport> report = ExploreRecording(*recording, options);
  if (!report.ok()) {
    std::fprintf(stderr, "crashck: explore failed: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", report->Summary().c_str());
  for (const CrashFailure& f : report->failures) {
    std::printf("  %s\n", f.Describe().c_str());
  }
  if (!json_path.empty() &&
      !WriteFileOrWarn(json_path, ReportJson(workload.name, *report) + "\n")) {
    return 2;
  }
  bool failed = !report->clean();
  if (expect_fail) {
    if (!failed) {
      std::fprintf(stderr, "crashck: expected failures, found none (oracle lost its teeth?)\n");
    }
    return failed ? 0 : 1;
  }
  return failed ? 1 : 0;
}

int RunFuzz(int argc, char** argv) {
  std::string seeds_path, artifact_dir, json_path;
  bool have_range = false;
  uint64_t range_lo = 0, range_hi = 0;
  ExploreOptions options;
  for (int i = 2; i < argc; i++) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--seeds") {
      if (const char* v = next()) seeds_path = v; else return Usage();
    } else if (arg == "--range") {
      const char* lo = next();
      const char* hi = next();
      if (!lo || !hi) return Usage();
      range_lo = std::stoull(lo);
      range_hi = std::stoull(hi);
      have_range = true;
    } else if (arg == "--max-states") {
      if (const char* v = next()) options.max_states = std::stoull(v); else return Usage();
    } else if (arg == "--artifact-dir") {
      if (const char* v = next()) artifact_dir = v; else return Usage();
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v; else return Usage();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (seeds_path.empty() == !have_range) {
    std::fprintf(stderr, "fuzz needs exactly one of --seeds/--range\n");
    return Usage();
  }

  std::vector<uint64_t> seeds;
  if (!seeds_path.empty()) {
    Result<std::vector<uint64_t>> r = ReadSeedFile(seeds_path);
    if (!r.ok()) {
      std::fprintf(stderr, "crashck: %s\n", r.status().ToString().c_str());
      return 2;
    }
    seeds = std::move(*r);
  } else {
    for (uint64_t s = range_lo; s < range_hi; s++) {
      seeds.push_back(s);
    }
  }

  uint64_t failed_seeds = 0;
  std::string json = "[";
  for (size_t idx = 0; idx < seeds.size(); idx++) {
    uint64_t seed = seeds[idx];
    Workload workload = FuzzWorkload(seed);
    Result<ExploreReport> report = ExploreWorkload(workload, options);
    if (!report.ok()) {
      // A record failure (model/filesystem divergence) is as much a finding
      // as an oracle failure; surface it the same way, minus minimization.
      std::fprintf(stderr, "seed %llu: record/explore failed: %s\n",
                   static_cast<unsigned long long>(seed),
                   report.status().ToString().c_str());
      failed_seeds++;
      if (!artifact_dir.empty()) {
        WriteFileOrWarn(artifact_dir + "/seed-" + std::to_string(seed) + ".txt",
                        workload.ToText());
      }
      continue;
    }
    std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
                report->Summary().c_str());
    if (idx > 0) {
      json += ",";
    }
    json += ReportJson(workload.name, *report);
    if (report->clean()) {
      continue;
    }
    failed_seeds++;
    for (const CrashFailure& f : report->failures) {
      std::printf("  %s\n", f.Describe().c_str());
    }
    if (!artifact_dir.empty()) {
      // Shrink before archiving; fall back to the full script if ddmin can't
      // reproduce (flaky or budget-limited failures).
      MinimizeOptions mopts;
      mopts.explore = options;
      Result<MinimizeResult> min = MinimizeWorkload(workload, mopts);
      const Workload& out = min.ok() ? min->workload : workload;
      std::string path = artifact_dir + "/seed-" + std::to_string(seed) + ".txt";
      if (WriteFileOrWarn(path, out.ToText())) {
        std::printf("  reproducer (%zu ops) written to %s\n", out.ops.size(),
                    path.c_str());
      }
    }
  }
  json += "]";
  if (!json_path.empty() && !WriteFileOrWarn(json_path, json + "\n")) {
    return 2;
  }
  std::printf("%zu seeds, %llu failed\n", seeds.size(),
              static_cast<unsigned long long>(failed_seeds));
  return failed_seeds == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string cmd = argv[1];
  if (cmd == "list") {
    for (const std::string& name : CanonicalWorkloadNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (cmd == "explore") {
    return RunExplore(argc, argv);
  }
  if (cmd == "fuzz") {
    return RunFuzz(argc, argv);
  }
  return Usage();
}
