// lfsdump: inspect the on-disk structures of an LFS image.
//
//   usage: lfsdump <image> <command>
//     super              the superblock / geometry
//     checkpoints        both checkpoint regions
//     segments           one line per segment (state, live bytes, age)
//     logs               per-log append points, segment temperature tags,
//                        and per-segment fill (reuse) counts
//     segment <N>        the partial-write chain of segment N (with CRCs)
//     crcs               per-segment summary/payload CRC validity + quarantine
//     imap               allocated inode-map entries
//     inode <INO>        one inode in full detail
//
// Read-only; works on live, crashed, and corrupt images (it prints whatever
// can be decoded and says so where it cannot).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/disk/file_disk.h"
#include "src/lfs/layout.h"
#include "src/util/crc32.h"

using namespace lfs;

namespace {

struct Image {
  std::unique_ptr<FileDisk> disk;
  Superblock sb;
  bool have_ck = false;
  Checkpoint ck;
};

Result<Image> OpenImage(const std::string& path) {
  LFS_ASSIGN_OR_RETURN(std::unique_ptr<FileDisk> probe, FileDisk::Open(path, 512, 8));
  std::vector<uint8_t> sector(512);
  LFS_RETURN_IF_ERROR(probe->Read(0, 1, sector));
  probe.reset();
  uint32_t bs = sector[4] | sector[5] << 8 | sector[6] << 16 | uint32_t{sector[7]} << 24;
  if (bs < 512 || bs > (1u << 20) || (bs & (bs - 1)) != 0) {
    return CorruptionError("no plausible superblock in '" + path + "'");
  }
  LFS_ASSIGN_OR_RETURN(std::unique_ptr<FileDisk> one, FileDisk::Open(path, bs, 1));
  std::vector<uint8_t> block(bs);
  LFS_RETURN_IF_ERROR(one->Read(0, 1, block));
  LFS_ASSIGN_OR_RETURN(Superblock sb, Superblock::DecodeFrom(block));
  one.reset();
  Image img;
  img.sb = sb;
  LFS_ASSIGN_OR_RETURN(img.disk, FileDisk::Open(path, bs, sb.total_blocks));
  std::vector<uint8_t> region(size_t{sb.cr_blocks} * bs);
  for (int i = 0; i < 2; i++) {
    if (!img.disk->Read(i == 0 ? sb.cr_base0 : sb.cr_base1, sb.cr_blocks, region).ok()) {
      continue;
    }
    Result<Checkpoint> r = Checkpoint::DecodeFrom(region);
    if (r.ok() && (!img.have_ck || r->ckpt_seq > img.ck.ckpt_seq)) {
      img.ck = std::move(r).value();
      img.have_ck = true;
    }
  }
  return img;
}

const char* StateName(SegState state) {
  switch (state) {
    case SegState::kClean:
      return "clean";
    case SegState::kActive:
      return "ACTIVE";
    case SegState::kDirty:
      return "dirty";
    case SegState::kQuarantined:
      return "QUARANTINED";
  }
  return "?";
}

// Reads the per-segment usage entries from the newest checkpoint; entries
// for segments whose usage chunk is unreadable stay default (kClean, 0).
std::vector<SegUsageEntry> LoadUsageEntries(const Image& img) {
  std::vector<SegUsageEntry> usage(img.sb.nsegments);
  std::vector<uint8_t> block(img.sb.block_size);
  for (uint32_t c = 0; c < img.ck.usage_chunk_addr.size(); c++) {
    if (!img.disk->Read(img.ck.usage_chunk_addr[c], 1, block).ok()) {
      continue;
    }
    for (uint32_t i = 0; i < img.sb.usage_entries_per_chunk(); i++) {
      SegNo seg = c * img.sb.usage_entries_per_chunk() + i;
      if (seg >= img.sb.nsegments) {
        break;
      }
      usage[seg] = SegUsageEntry::DecodeFrom(std::span<const uint8_t>(block).subspan(
          size_t{i} * kUsageEntrySize, kUsageEntrySize));
    }
  }
  return usage;
}

const char* KindName(BlockKind kind) {
  switch (kind) {
    case BlockKind::kData:
      return "data";
    case BlockKind::kIndirect:
      return "indirect";
    case BlockKind::kDoubleIndirect:
      return "dindirect";
    case BlockKind::kInodeBlock:
      return "inodes";
    case BlockKind::kImapChunk:
      return "imap";
    case BlockKind::kUsageChunk:
      return "usage";
    case BlockKind::kDirLog:
      return "dirlog";
  }
  return "?";
}

void DumpSuper(const Image& img) {
  const Superblock& sb = img.sb;
  std::printf("block size        %u\n", sb.block_size);
  std::printf("segment size      %u blocks (%u KB)\n", sb.segment_blocks,
              sb.segment_bytes() / 1024);
  std::printf("segments          %u (first at block %llu)\n", sb.nsegments,
              static_cast<unsigned long long>(sb.seg_start));
  std::printf("total blocks      %llu (%.1f MB)\n",
              static_cast<unsigned long long>(sb.total_blocks),
              static_cast<double>(sb.total_blocks) * sb.block_size / (1024.0 * 1024));
  std::printf("checkpoint blocks %u at %llu / %llu\n", sb.cr_blocks,
              static_cast<unsigned long long>(sb.cr_base0),
              static_cast<unsigned long long>(sb.cr_base1));
  std::printf("max inodes        %u (%u imap chunks, %u usage chunks)\n", sb.max_inodes,
              sb.imap_chunks, sb.usage_chunks);
}

void DumpCheckpoints(const Image& img) {
  std::vector<uint8_t> region(size_t{img.sb.cr_blocks} * img.sb.block_size);
  for (int i = 0; i < 2; i++) {
    BlockNo base = i == 0 ? img.sb.cr_base0 : img.sb.cr_base1;
    std::printf("region %d (block %llu): ", i, static_cast<unsigned long long>(base));
    if (!img.disk->Read(base, img.sb.cr_blocks, region).ok()) {
      std::printf("unreadable\n");
      continue;
    }
    Result<Checkpoint> r = Checkpoint::DecodeFrom(region);
    if (!r.ok()) {
      std::printf("invalid (%s)\n", r.status().ToString().c_str());
      continue;
    }
    std::printf("seq %llu, clock %llu, tail seg %u offset %u, %u inodes\n",
                static_cast<unsigned long long>(r->ckpt_seq),
                static_cast<unsigned long long>(r->clock), r->cur_segment, r->cur_offset,
                r->ninodes);
  }
}

void DumpSegments(const Image& img) {
  if (!img.have_ck) {
    std::printf("no valid checkpoint; cannot locate the usage table\n");
    return;
  }
  std::vector<uint8_t> block(img.sb.block_size);
  std::printf("%-6s %-11s %12s %12s\n", "seg", "state", "live bytes", "last write");
  for (uint32_t c = 0; c < img.ck.usage_chunk_addr.size(); c++) {
    if (!img.disk->Read(img.ck.usage_chunk_addr[c], 1, block).ok()) {
      continue;
    }
    for (uint32_t i = 0; i < img.sb.usage_entries_per_chunk(); i++) {
      SegNo seg = c * img.sb.usage_entries_per_chunk() + i;
      if (seg >= img.sb.nsegments) {
        break;
      }
      SegUsageEntry e = SegUsageEntry::DecodeFrom(std::span<const uint8_t>(block).subspan(
          size_t{i} * kUsageEntrySize, kUsageEntrySize));
      std::printf("%-6u %-11s %12u %12llu\n", seg, StateName(e.state), e.live_bytes,
                  static_cast<unsigned long long>(e.last_write));
    }
  }
}

void DumpLogs(const Image& img) {
  if (!img.have_ck) {
    std::printf("no valid checkpoint; cannot locate append points\n");
    return;
  }
  std::printf("append points (checkpoint seq %llu):\n",
              static_cast<unsigned long long>(img.ck.ckpt_seq));
  std::printf("  log 0 (hot+metadata): seg %u offset %u\n", img.ck.cur_segment,
              img.ck.cur_offset);
  for (size_t i = 0; i < img.ck.extra_logs.size(); i++) {
    auto [seg, off] = img.ck.extra_logs[i];
    if (seg == kNilSeg) {
      std::printf("  log %zu (cold x%zu):      never opened\n", i + 1, i + 1);
    } else {
      std::printf("  log %zu (cold x%zu):      seg %u offset %u\n", i + 1, i + 1, seg, off);
    }
  }
  if (img.ck.extra_logs.empty()) {
    std::printf("  (single-log image: no multi-log checkpoint extension)\n");
  }

  std::vector<SegUsageEntry> usage = LoadUsageEntries(img);
  std::printf("\n%-6s %-11s %5s %12s %8s\n", "seg", "state", "log", "live bytes", "fills");
  struct PerLog {
    uint32_t segments = 0;
    uint64_t live = 0;
  };
  std::vector<PerLog> per_log;
  for (SegNo seg = 0; seg < img.sb.nsegments; seg++) {
    const SegUsageEntry& e = usage[seg];
    if (e.state == SegState::kClean) {
      continue;
    }
    std::printf("%-6u %-11s %5u %12u %8u\n", seg, StateName(e.state), e.log_id, e.live_bytes,
                e.reuse_count);
    if (per_log.size() <= e.log_id) {
      per_log.resize(size_t{e.log_id} + 1);
    }
    per_log[e.log_id].segments++;
    per_log[e.log_id].live += e.live_bytes;
  }
  std::printf("\nper-log populations (non-clean segments):\n");
  for (size_t log = 0; log < per_log.size(); log++) {
    std::printf("  log %zu: %u segments, %llu live bytes\n", log, per_log[log].segments,
                static_cast<unsigned long long>(per_log[log].live));
  }
}

void DumpSegmentChain(const Image& img, SegNo seg) {
  const uint32_t bs = img.sb.block_size;
  std::vector<uint8_t> block(bs);
  uint32_t offset = 0;
  uint64_t prev_seq = 0;
  while (offset + 1 < img.sb.segment_blocks) {
    if (!img.disk->Read(img.sb.SegmentBase(seg) + offset, 1, block).ok()) {
      break;
    }
    Result<SegmentSummary> sum = SegmentSummary::DecodeFrom(block);
    if (!sum.ok()) {
      std::printf("offset %4u: no valid summary (%s) — end of chain\n", offset,
                  sum.status().ToString().c_str());
      break;
    }
    if (prev_seq != 0 && sum->seq <= prev_seq) {
      std::printf("offset %4u: seq %llu <= previous — stale generation, end of chain\n",
                  offset, static_cast<unsigned long long>(sum->seq));
      break;
    }
    prev_seq = sum->seq;
    const char* crc_state = "payload crc ok";
    std::vector<uint8_t> payload(sum->entries.size() * size_t{bs});
    if (!img.disk->Read(img.sb.SegmentBase(seg) + offset + 1, sum->entries.size(), payload)
             .ok()) {
      crc_state = "payload UNREADABLE";
    } else if (Crc32(payload) != sum->payload_crc) {
      crc_state = "payload crc BAD";
    }
    std::printf("offset %4u: partial write seq %llu, %zu blocks, time %llu, %s\n", offset,
                static_cast<unsigned long long>(sum->seq), sum->entries.size(),
                static_cast<unsigned long long>(sum->timestamp), crc_state);
    for (size_t i = 0; i < sum->entries.size(); i++) {
      const SummaryEntry& e = sum->entries[i];
      std::printf("    +%-4zu %-9s ino %-6u fbn %-8llu ver %-4u mtime %llu\n", i + 1,
                  KindName(e.kind), e.ino, static_cast<unsigned long long>(e.fbn), e.version,
                  static_cast<unsigned long long>(e.mtime));
    }
    offset += 1 + static_cast<uint32_t>(sum->entries.size());
  }
}

void DumpCrcs(const Image& img) {
  if (!img.have_ck) {
    std::printf("no valid checkpoint; cannot locate the usage table\n");
    return;
  }
  const uint32_t bs = img.sb.block_size;
  std::vector<SegUsageEntry> usage = LoadUsageEntries(img);
  std::vector<uint8_t> sum_block(bs);
  std::printf("%-6s %-11s %8s %8s %8s  %s\n", "seg", "state", "partials", "crc ok",
              "crc bad", "notes");
  for (SegNo seg = 0; seg < img.sb.nsegments; seg++) {
    if (usage[seg].state == SegState::kClean) {
      continue;
    }
    uint32_t partials = 0, ok = 0, bad = 0;
    std::string notes;
    uint32_t offset = 0;
    uint64_t prev_seq = 0;
    while (offset + 1 < img.sb.segment_blocks) {
      if (!img.disk->Read(img.sb.SegmentBase(seg) + offset, 1, sum_block).ok()) {
        notes = "summary unreadable at offset " + std::to_string(offset);
        break;
      }
      Result<SegmentSummary> sum = SegmentSummary::DecodeFrom(sum_block);
      if (!sum.ok() || (prev_seq != 0 && sum->seq <= prev_seq) || sum->entries.empty() ||
          offset + 1 + sum->entries.size() > img.sb.segment_blocks) {
        break;  // end of the live chain
      }
      prev_seq = sum->seq;
      partials++;
      std::vector<uint8_t> payload(sum->entries.size() * size_t{bs});
      if (!img.disk->Read(img.sb.SegmentBase(seg) + offset + 1, sum->entries.size(), payload)
               .ok()) {
        bad++;
        notes = "payload unreadable at offset " + std::to_string(offset);
        break;
      }
      if (Crc32(payload) == sum->payload_crc) {
        ok++;
      } else {
        bad++;
      }
      offset += 1 + static_cast<uint32_t>(sum->entries.size());
    }
    std::printf("%-6u %-11s %8u %8u %8u  %s\n", seg, StateName(usage[seg].state), partials,
                ok, bad, notes.c_str());
  }
}

void DumpImap(const Image& img) {
  if (!img.have_ck) {
    std::printf("no valid checkpoint\n");
    return;
  }
  std::vector<uint8_t> block(img.sb.block_size);
  std::printf("%-8s %-12s %-5s %-8s\n", "inode", "block", "slot", "version");
  uint32_t epc = img.sb.imap_entries_per_chunk();
  for (uint32_t c = 0; c < img.ck.imap_chunk_addr.size(); c++) {
    if (uint64_t{c} * epc >= img.ck.ninodes || img.ck.imap_chunk_addr[c] == kNilBlock) {
      break;
    }
    if (!img.disk->Read(img.ck.imap_chunk_addr[c], 1, block).ok()) {
      continue;
    }
    for (uint32_t i = 0; i < epc; i++) {
      InodeNum ino = c * epc + i;
      if (ino >= img.ck.ninodes) {
        break;
      }
      ImapEntry e = ImapEntry::DecodeFrom(std::span<const uint8_t>(block).subspan(
          size_t{i} * kImapEntrySize, kImapEntrySize));
      if (e.allocated()) {
        std::printf("%-8u %-12llu %-5u %-8u\n", ino,
                    static_cast<unsigned long long>(e.inode_block), e.slot, e.version);
      }
    }
  }
}

void DumpInode(const Image& img, InodeNum ino) {
  if (!img.have_ck) {
    std::printf("no valid checkpoint\n");
    return;
  }
  uint32_t epc = img.sb.imap_entries_per_chunk();
  uint32_t chunk = ino / epc;
  if (ino >= img.ck.ninodes || chunk >= img.ck.imap_chunk_addr.size()) {
    std::printf("inode %u is beyond the allocated range\n", ino);
    return;
  }
  std::vector<uint8_t> block(img.sb.block_size);
  if (!img.disk->Read(img.ck.imap_chunk_addr[chunk], 1, block).ok()) {
    std::printf("cannot read imap chunk %u\n", chunk);
    return;
  }
  ImapEntry e = ImapEntry::DecodeFrom(std::span<const uint8_t>(block).subspan(
      size_t{ino % epc} * kImapEntrySize, kImapEntrySize));
  if (!e.allocated()) {
    std::printf("inode %u is not allocated\n", ino);
    return;
  }
  if (!img.disk->Read(e.inode_block, 1, block).ok()) {
    std::printf("cannot read inode block %llu\n",
                static_cast<unsigned long long>(e.inode_block));
    return;
  }
  Result<Inode> inode = Inode::DecodeFrom(std::span<const uint8_t>(block).subspan(
      size_t{e.slot} * kInodeSlotSize, kInodeSlotSize));
  if (!inode.ok()) {
    std::printf("inode slot undecodable: %s\n", inode.status().ToString().c_str());
    return;
  }
  std::printf("inode %u at block %llu slot %u\n", ino,
              static_cast<unsigned long long>(e.inode_block), e.slot);
  std::printf("  type    %s\n", inode->type == FileType::kDirectory ? "directory" : "file");
  std::printf("  size    %llu bytes\n", static_cast<unsigned long long>(inode->size));
  std::printf("  nlink   %u   version %u   mtime %llu\n", inode->nlink, inode->version,
              static_cast<unsigned long long>(inode->mtime));
  std::printf("  direct ");
  for (BlockNo b : inode->direct) {
    std::printf(" %llu", static_cast<unsigned long long>(b));
  }
  std::printf("\n  indirect %llu   double %llu\n",
              static_cast<unsigned long long>(inode->single_indirect),
              static_cast<unsigned long long>(inode->double_indirect));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <image> super|checkpoints|segments|logs|segment <N>|crcs|imap|inode <INO>\n",
                 argv[0]);
    return 2;
  }
  auto img = OpenImage(argv[1]);
  if (!img.ok()) {
    std::fprintf(stderr, "lfsdump: %s\n", img.status().ToString().c_str());
    return 2;
  }
  std::string cmd = argv[2];
  if (cmd == "super") {
    DumpSuper(*img);
  } else if (cmd == "checkpoints") {
    DumpCheckpoints(*img);
  } else if (cmd == "segments") {
    DumpSegments(*img);
  } else if (cmd == "logs") {
    DumpLogs(*img);
  } else if (cmd == "segment" && argc >= 4) {
    SegNo seg = static_cast<SegNo>(std::atoi(argv[3]));
    if (seg >= img->sb.nsegments) {
      std::fprintf(stderr, "segment %u out of range (0..%u)\n", seg, img->sb.nsegments - 1);
      return 2;
    }
    DumpSegmentChain(*img, seg);
  } else if (cmd == "crcs") {
    DumpCrcs(*img);
  } else if (cmd == "imap") {
    DumpImap(*img);
  } else if (cmd == "inode" && argc >= 4) {
    DumpInode(*img, static_cast<InodeNum>(std::atoi(argv[3])));
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
  }
  return 0;
}
