#!/usr/bin/env python3
"""Self-test for compare_bench.py's exit-code contract.

CI runs this before trusting the regression gate: a gate whose failure modes
are themselves untested can silently pass regressions (exit 0 on a diff) or
mislabel them (schema drift reported as a numeric regression, sending the
investigator chasing a performance delta that is actually a renamed metric).

Covers:  0 = clean,  1 = numeric regression / failed ratio,  2 = usage,
         3 = schema drift (key present on only one side).

Only the Python standard library is used.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)), "compare_bench.py")

REPORT = {
    "schema_version": 1,
    "bench": "selftest",
    "smoke": True,
    "metrics": {
        "ops": 1000,
        "elapsed_sec": 2.5,
        "wall.run_sec": 0.1,
    },
    "histograms": {
        "op": {"count": 1000, "mean_us": 10.0, "p50_us": 8.0, "p90_us": 20.0,
               "p95_us": 30.0, "p99_us": 50.0, "min_us": 1, "max_us": 80},
    },
}


def write_report(directory, report):
    path = os.path.join(directory, f"BENCH_{report['bench']}.json")
    with open(path, "w") as f:
        json.dump(report, f)
    return path


def run(args):
    proc = subprocess.run([sys.executable, TOOL] + args,
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def expect(name, got_code, want_code, output, want_substr=None):
    ok = got_code == want_code and (want_substr is None or want_substr in output)
    status = "ok" if ok else "FAIL"
    print(f"{status:4} {name}: exit {got_code} (want {want_code})")
    if not ok:
        print(output)
    return ok


def main():
    results = []
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        cur_dir = os.path.join(tmp, "cur")
        os.makedirs(base_dir)
        os.makedirs(cur_dir)
        write_report(base_dir, REPORT)

        # Identical reports (modulo wall.*, which must be ignored): clean.
        cur = copy.deepcopy(REPORT)
        cur["metrics"]["wall.run_sec"] = 99.0
        write_report(cur_dir, cur)
        code, out = run([base_dir, cur_dir])
        results.append(expect("identical (wall.* ignored)", code, 0, out))

        # Numeric regression beyond tolerance: exit 1.
        cur = copy.deepcopy(REPORT)
        cur["metrics"]["ops"] = 800
        write_report(cur_dir, cur)
        code, out = run([base_dir, cur_dir])
        results.append(expect("metric regressed", code, 1, out,
                              "metric regressed"))

        # Baseline metric missing from the current report: schema drift, 3.
        cur = copy.deepcopy(REPORT)
        del cur["metrics"]["ops"]
        write_report(cur_dir, cur)
        code, out = run([base_dir, cur_dir])
        results.append(expect("metric dropped", code, 3, out,
                              "metric missing from current report"))

        # New metric with no baseline: drift in the other direction, 3.
        cur = copy.deepcopy(REPORT)
        cur["metrics"]["new_metric"] = 7
        write_report(cur_dir, cur)
        code, out = run([base_dir, cur_dir])
        results.append(expect("metric added", code, 3, out,
                              "regenerate the baseline"))

        # Baseline histogram missing from the current report: drift, 3.
        cur = copy.deepcopy(REPORT)
        del cur["histograms"]["op"]
        write_report(cur_dir, cur)
        code, out = run([base_dir, cur_dir])
        results.append(expect("histogram dropped", code, 3, out,
                              "histogram missing from current report"))

        # Drift wins over a co-occurring numeric regression (the fix for
        # drift — regenerate the baseline — subsumes re-judging the number).
        cur = copy.deepcopy(REPORT)
        del cur["metrics"]["ops"]
        cur["metrics"]["elapsed_sec"] = 100.0
        write_report(cur_dir, cur)
        code, out = run([base_dir, cur_dir])
        results.append(expect("drift + regression", code, 3, out))

        # Whole report missing from the current dir: drift, 3.
        empty = os.path.join(tmp, "empty")
        os.makedirs(empty)
        code, out = run([base_dir, empty])
        results.append(expect("report missing", code, 3, out,
                              "baseline report missing"))

        # Smoke-flag mismatch refuses to compare: exit 1, not drift.
        cur = copy.deepcopy(REPORT)
        cur["smoke"] = False
        write_report(cur_dir, cur)
        code, out = run([base_dir, cur_dir])
        results.append(expect("smoke mismatch", code, 1, out,
                              "refusing to compare"))

        # Ratio gate failure: exit 1.
        write_report(cur_dir, copy.deepcopy(REPORT))
        code, out = run([base_dir, cur_dir,
                         "--ratio=selftest:ops/elapsed_sec>=1000"])
        results.append(expect("ratio violated", code, 1, out, "ratio"))

        # Ratio gate holds: exit 0.
        code, out = run([base_dir, cur_dir,
                         "--ratio=selftest:ops/elapsed_sec>=100"])
        results.append(expect("ratio holds", code, 0, out))

        # Usage error: exit 2.
        code, out = run([base_dir])
        results.append(expect("usage error", code, 2, out))

        # --require for a bench that was never run: exit 1.
        code, out = run([base_dir, cur_dir, "--require=not_a_bench"])
        results.append(expect("required bench missing", code, 1, out,
                              "required bench report missing"))

    if not all(results):
        print("test_compare_bench: FAILED")
        return 1
    print(f"test_compare_bench: all {len(results)} cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
