// Ablation: cleaning-episode granularity in the Section 3.5 simulator — the
// root cause of our one deviation from Figure 4 (see EXPERIMENTS.md).
//
// The paper found that locality makes greedy cleaning WORSE: cold segments
// linger just above the cleaning point and trap free space. That result
// depends on the cleaner skimming only the least-utilized segments per
// episode. If each episode instead harvests MANY segments (a large
// clean-target), it sweeps up the lingering cold band wholesale and greedy
// suddenly benefits from locality. A second knob with the same flavor:
// giving the cleaner its own output cursor (perfect hot/cold segregation for
// free) instead of sharing the log head.
//
// Expected: at small episode sizes, hot-and-cold greedy is worse than
// uniform (the paper's Figure 4); at large episodes the ordering inverts.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/sim.h"

using lfs::sim::AccessPattern;
using lfs::sim::CleaningSimulator;
using lfs::sim::Policy;
using lfs::sim::SimConfig;
using lfs::sim::SimResult;

namespace {

SimConfig Base(double util) {
  SimConfig cfg;
  cfg.nsegments = 100;
  cfg.blocks_per_segment = 64;
  cfg.disk_utilization = util;
  cfg.policy = Policy::kGreedy;
  cfg.warmup_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(120, 20));
  cfg.measure_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(60, 10));
  cfg.seed = 7;
  return cfg;
}

}  // namespace

int main() {
  lfs::bench::BenchReport report("ablation_sim_episodes");
  std::printf("=== Ablation: cleaning-episode size vs the Figure 4 result ===\n\n");
  std::printf("(write cost at 75%% utilization, greedy policy)\n\n");
  std::printf("%-14s %12s %18s %12s\n", "clean-target", "uniform", "hot-and-cold",
              "locality hurts?");
  for (uint32_t target : {2u, 4u, 8u, 16u, 40u}) {
    SimConfig uni = Base(0.75);
    uni.clean_target = target;
    uni.clean_reserve = 1;
    SimResult r_uni = CleaningSimulator(uni).Run();

    SimConfig hc = uni;
    hc.pattern = AccessPattern::kHotAndCold;
    hc.age_sort = true;
    SimResult r_hc = CleaningSimulator(hc).Run();

    std::printf("%-14u %12.2f %18.2f %12s\n", target, r_uni.write_cost, r_hc.write_cost,
                r_hc.write_cost > r_uni.write_cost ? "yes (paper)" : "no");
    char key[64];
    std::snprintf(key, sizeof(key), "uniform.write_cost.target%u", target);
    report.AddScalar(key, r_uni.write_cost);
    std::snprintf(key, sizeof(key), "hotcold.write_cost.target%u", target);
    report.AddScalar(key, r_hc.write_cost);
  }

  std::printf("\nSeparate cleaning-output cursor (perfect segregation for free):\n\n");
  for (bool separate : {false, true}) {
    SimConfig hc = Base(0.75);
    hc.pattern = AccessPattern::kHotAndCold;
    hc.age_sort = true;
    hc.separate_cleaning_cursor = separate;
    SimResult r = CleaningSimulator(hc).Run();
    std::printf("  %-24s write cost %.2f, avg cleaned u %.3f\n",
                separate ? "separate cursor" : "shared log head (paper)", r.write_cost,
                r.avg_cleaned_utilization);
    report.AddScalar(separate ? "separate_cursor.write_cost" : "shared_head.write_cost",
                     r.write_cost);
  }
  std::printf("\nTakeaway: the paper's 'locality makes greedy worse' result is real\n");
  std::printf("but fragile — it hinges on the cleaner skimming a few segments at a\n");
  std::printf("time. Cost-benefit (Figure 7) is the robust answer either way.\n");
  report.Write();
  return 0;
}
