// Figure 3: write cost as a function of u (the utilization of cleaned
// segments), from formula (1): write cost = 2/(1-u). Also prints the two
// reference points the paper plots: "FFS today" (5-10% of bandwidth => cost
// 10-20) and "FFS improved" (~25% of bandwidth => cost 4).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/sim/sim.h"

int main() {
  lfs::bench::BenchReport report("fig3_write_cost");
  std::printf("=== Figure 3: write cost as a function of u (formula 1) ===\n");
  std::printf("write cost = (read segs + write live + write new) / new = 2/(1-u)\n\n");
  std::printf("%-28s %12s\n", "fraction alive (u)", "write cost");
  for (int i = 0; i <= 18; i++) {
    double u = i * 0.05;
    std::printf("%-28.2f %12.2f\n", u, lfs::sim::FormulaWriteCost(u));
    char key[32];
    std::snprintf(key, sizeof(key), "write_cost.u%02d", i * 5);
    report.AddScalar(key, lfs::sim::FormulaWriteCost(u));
  }
  std::printf("\nReference points (horizontal lines in the paper's figure):\n");
  std::printf("  FFS today:    write cost 10-20 (5-10%% of disk bandwidth for new data)\n");
  std::printf("  FFS improved: write cost ~4    (~25%% of bandwidth with logging+sorting)\n");
  std::printf("\nCrossovers (paper, Section 3.4): LFS beats FFS today when cleaned\n");
  std::printf("segments have u < 0.8; beats improved FFS when u < 0.5.\n");
  std::printf("  2/(1-0.8) = %.1f  (= FFS today's 10)\n", lfs::sim::FormulaWriteCost(0.8));
  std::printf("  2/(1-0.5) = %.1f  (= FFS improved's 4)\n", lfs::sim::FormulaWriteCost(0.5));
  report.Write();
  return 0;
}
