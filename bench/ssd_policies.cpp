// Figures 4-7 revisited on flash: do the paper's cleaning-policy
// conclusions survive the move from a seek-dominated Wren IV to an SSD?
//
// On the Wren model, cost-benefit beats greedy because paying extra seeks
// to clean colder, fuller segments earns a long-lived bimodal distribution.
// On flash the currency changes — there are no seeks, only erases and page
// programs — but the economics are the same: every page the cleaner copies
// is a page the FTL must program (and eventually erase again), so policies
// that copy cold data less often amplify less and wear the device less.
//
// Emits BENCH_ssd_policies.json with, per (policy, utilization) cell, the
// paper's write cost, end-to-end write amplification, erase count, and
// modeled device time for an identical hot-and-cold churn workload.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/disk/ssd_disk.h"
#include "src/util/rng.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "ssd_policies: %s\n", st.ToString().c_str());
    std::abort();
  }
}

struct CellResult {
  double write_cost = 0;
  double wa_e2e = 0;
  double erases = 0;
  double device_sec = 0;
};

CellResult RunOne(CleaningPolicy policy, bool age_sort, double utilization) {
  LfsConfig cfg;
  cfg.block_size = 4096;
  cfg.segment_blocks = 64;
  cfg.policy = policy;
  cfg.age_sort = age_sort;
  cfg.clean_lo = 8;
  cfg.clean_hi = 12;
  cfg.segments_per_pass = 4;
  cfg.reserve_segments = 3;
  cfg.checkpoint_interval_bytes = 4 * 1024 * 1024;

  const uint64_t disk_bytes = 48ull * 1024 * 1024;
  SsdModelParams params = SsdModelParams::Sata2010();
  params.erase_block_pages = cfg.segment_blocks;
  SsdDisk ssd(cfg.block_size, disk_bytes / cfg.block_size, params);
  auto fs = std::move(LfsFileSystem::Mkfs(&ssd, cfg)).value();

  // `utilization` is measured against the allocator's usable capacity: the
  // FS refuses growth past ~80% of raw space (its analogue of FFS's 90%
  // limit), so raw-disk fractions above that are unreachable by design.
  LfsStatFs stfs = fs->StatFs();
  uint64_t seg_bytes = stfs.total_bytes / stfs.nsegments;
  uint64_t usable_segs = std::min<uint64_t>(stfs.nsegments - cfg.reserve_segments - 2,
                                            uint64_t{stfs.nsegments} * 4 / 5);
  uint64_t usable = usable_segs * seg_bytes;

  Rng rng(99);
  const uint64_t file_bytes = 32 * 1024;
  int nfiles = static_cast<int>(utilization * usable / file_bytes);
  std::vector<uint8_t> content(file_bytes, 0x11);
  Check(fs->Mkdir("/d"));
  for (int i = 0; i < nfiles; i++) {
    fs->clock().Tick();
    Check(fs->WriteFile("/d/f" + std::to_string(i), content));
  }
  Check(fs->Sync());
  fs->mutable_stats() = LfsStats{};
  ssd.ResetStats();

  int hot = std::max(1, nfiles / 10);
  const int churn_steps = nfiles * static_cast<int>(SmokePick(12, 3));
  uint64_t app_payload = 0;
  for (int step = 0; step < churn_steps; step++) {
    fs->clock().Tick();
    int idx = rng.NextBool(0.9) ? static_cast<int>(rng.NextBelow(hot))
                                : static_cast<int>(hot + rng.NextBelow(nfiles - hot));
    std::string path = "/d/f" + std::to_string(idx);
    Check(fs->Unlink(path));
    Check(fs->WriteFile(path, content));
    app_payload += file_bytes;
  }
  Check(fs->Sync());

  SsdStats s = ssd.stats();
  CellResult r;
  double programmed =
      static_cast<double>(s.pages_programmed_host + s.pages_programmed_gc) * cfg.block_size;
  r.wa_e2e = app_payload > 0 ? programmed / static_cast<double>(app_payload) : 0;
  r.write_cost = fs->stats().WriteCost();
  r.erases = static_cast<double>(s.erases);
  r.device_sec = ssd.ModeledTime();
  Check(fs->Unmount());
  return r;
}

}  // namespace

int main() {
  BenchReport report("ssd_policies");
  std::printf("=== Cleaning policies on the SSD model (Fig. 4-7 revisited) ===\n\n");
  std::printf("(write cost / end-to-end write amplification; lower is better)\n\n");
  std::printf("%-6s %22s %22s\n", "util", "greedy", "cost-benefit+sort");
  for (double util : {0.60, 0.80, 0.90}) {
    CellResult g = RunOne(CleaningPolicy::kGreedy, false, util);
    CellResult cb = RunOne(CleaningPolicy::kCostBenefit, true, util);
    std::printf("%-6.2f %10.2f / %8.3f %10.2f / %8.3f\n", util, g.write_cost, g.wa_e2e,
                cb.write_cost, cb.wa_e2e);
    char key[64];
    int u = static_cast<int>(util * 100);
    std::snprintf(key, sizeof(key), "greedy.u%02d.write_cost", u);
    report.AddScalar(key, g.write_cost);
    std::snprintf(key, sizeof(key), "greedy.u%02d.wa_e2e", u);
    report.AddScalar(key, g.wa_e2e);
    std::snprintf(key, sizeof(key), "greedy.u%02d.erases", u);
    report.AddScalar(key, g.erases);
    std::snprintf(key, sizeof(key), "costbenefit_sort.u%02d.write_cost", u);
    report.AddScalar(key, cb.write_cost);
    std::snprintf(key, sizeof(key), "costbenefit_sort.u%02d.wa_e2e", u);
    report.AddScalar(key, cb.wa_e2e);
    std::snprintf(key, sizeof(key), "costbenefit_sort.u%02d.erases", u);
    report.AddScalar(key, cb.erases);
  }
  std::printf("\nExpected: the Wren-era policy ranking carries over — fewer cleaner\n");
  std::printf("copies mean fewer programs and erases, so cost-benefit still wins at\n");
  std::printf("high utilization even with seeks priced at zero.\n");
  report.Write();
  return 0;
}
