// Cleaner QoS benchmark: foreground tail latency under sustained overwrite
// at high disk utilization, with and without fine-grained reclamation.
//
// The paper's Figure 3 story is about *write cost*; this bench is about the
// other casualty of high utilization: foreground p99. At 90% utilization the
// cleaner must run often and every pass it takes synchronously inside a
// write's flush shows up as a latency spike. Three instances run the same
// skewed overwrite stream over the modeled Wren IV disk:
//
//   u70          - 70% utilization, fixed cost-benefit cleaning (the
//                  comfortable baseline the acceptance ratio compares against)
//   u90_fixed    - 90% utilization, fixed cost-benefit, whole-segment
//                  copying, no throttle (the regression this PR attacks)
//   u90_adaptive - 90% utilization with the full ISSUE-10 stack: adaptive
//                  policy governor + partial-segment compaction + cleaner
//                  QoS token bucket
//
// Partial compaction caps how many live blocks one pass may relocate, so the
// burst a foreground op can get stuck behind is bounded; the QoS bucket
// defers discretionary passes when the cleaner has outrun its budget; the
// governor picks greedy ordering whenever the overwrite stream has emptied
// out enough victims. CI gates two ratios on this report:
//
//   p99_us_70 / p99_us_90_adaptive   >= 0.5   (p99 within 2x of the 70% run)
//   copy_bytes_fixed / copy_bytes_adaptive >= 1.0   (adaptive moves no more)
//
// Everything runs off the modeled clock with a fixed RNG seed, so the JSON
// is byte-stable and diffed against bench/baselines/smoke/.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/latency.h"
#include "src/util/table.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

const uint64_t kDiskBytes = SmokePick(64, 16) * 1024 * 1024;
const uint64_t kOverwriteOps = SmokePick(4000, 600);
constexpr uint32_t kFileBlocks = 8;  // 32-KB files
constexpr uint32_t kSyncEvery = 8;
// 80% of overwrites hit the hottest 20% of files: the skew that makes the
// dirty population bimodal (hot segments empty out fast, cold ones sit at
// high utilization) — the regime the adaptive governor is built for.
constexpr double kHotFraction = 0.2;
constexpr double kHotProbability = 0.8;

// Smaller segments than PaperLfsConfig so even the smoke disk holds enough
// of them (64 at 16 MB) for selection pressure to be real.
LfsConfig BenchConfig() {
  LfsConfig cfg;
  cfg.block_size = 4096;
  cfg.segment_blocks = 64;  // 256-KB segments
  cfg.max_inodes = 8192;
  cfg.clean_lo = 4;
  cfg.clean_hi = 8;
  cfg.segments_per_pass = 4;
  cfg.reserve_segments = 4;
  cfg.write_buffer_blocks = 64;
  return cfg;
}

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "cleaner_qos %s: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

struct InstanceResult {
  uint64_t files = 0;
  double fill_utilization = 0.0;
  obs::LatencyHistogram latency;  // one sample per overwrite op (modeled time)
  LfsStats stats;
  uint64_t copy_bytes = 0;  // clean_read_bytes + clean_write_bytes
  double write_cost = 0.0;
};

InstanceResult RunInstance(const char* name, double target_utilization,
                           bool fine_grained) {
  LfsConfig cfg = BenchConfig();
  if (fine_grained) {
    cfg.adaptive_cleaning = true;
    cfg.partial_compaction = true;
    // A quarter segment per drain slice: the largest copy burst one
    // foreground flush can get stuck behind.
    cfg.partial_compaction_max_blocks = 16;
    cfg.cleaner_qos_bytes_per_sec = 512.0 * 1024;  // ~40% of Wren IV bandwidth
    cfg.cleaner_qos_burst_sec = 0.5;
  }
  LfsInstance inst = MakeLfs(kDiskBytes, cfg);
  InstanceResult res;

  // --- fill to the target utilization with whole files ---------------------------
  const uint64_t file_bytes = uint64_t{kFileBlocks} * cfg.block_size;
  std::vector<uint8_t> buf(file_bytes);
  for (size_t i = 0; i < buf.size(); i++) {
    buf[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  // "Utilization" here is relative to the space the writer will actually let
  // us commit (capacity minus the cleaning reserve, capped at 4/5 of the
  // segments — see CheckSpace): u90 runs at 90% of the ENOSPC ceiling, the
  // regime where every reclaimed segment is expensive.
  LfsStatFs sfs = inst.fs->StatFs();
  const uint64_t seg_bytes = sfs.total_bytes / sfs.nsegments;
  uint64_t usable_segs = sfs.nsegments > cfg.reserve_segments + 2
                             ? sfs.nsegments - cfg.reserve_segments - 2
                             : 0;
  usable_segs = std::min<uint64_t>(usable_segs, sfs.nsegments * 4 / 5);
  const uint64_t target_bytes = static_cast<uint64_t>(
      target_utilization * static_cast<double>(usable_segs * seg_bytes));
  std::vector<InodeNum> files;
  while (inst.fs->StatFs().live_bytes + file_bytes <= target_bytes) {
    std::string path = "/f" + std::to_string(files.size());
    auto ino = inst.fs->Create(path);
    Check(ino.status(), "create");
    Check(inst.fs->WriteAt(*ino, 0, buf), "fill write");
    files.push_back(*ino);
  }
  Check(inst.fs->Sync(), "fill sync");
  res.files = files.size();
  res.fill_utilization = inst.fs->disk_utilization();

  // The overwrite stream is the measurement; the fill is not.
  inst.fs->mutable_stats() = LfsStats{};
  inst.disk->ResetStats();

  // --- sustained skewed overwrite -------------------------------------------------
  Rng rng(20260808);
  const uint64_t hot_count =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                static_cast<double>(files.size()) * kHotFraction));
  for (uint64_t op = 0; op < kOverwriteOps; op++) {
    uint64_t victim = rng.NextDouble() < kHotProbability
                          ? rng.NextU64() % hot_count
                          : hot_count + rng.NextU64() % (files.size() - hot_count);
    buf[0] = static_cast<uint8_t>(op);  // dirty every block each time
    double t0 = inst.disk->ModeledTime();
    Check(inst.fs->WriteAt(files[victim], 0, buf), "overwrite");
    if ((op + 1) % kSyncEvery == 0) {
      Check(inst.fs->Sync(), "sync");
    }
    res.latency.Record(inst.disk->ModeledTime() - t0);
  }
  Check(inst.fs->Sync(), "final sync");

  res.stats = inst.fs->stats();
  res.copy_bytes = res.stats.clean_read_bytes + res.stats.clean_write_bytes;
  res.write_cost = res.stats.WriteCost();
  std::printf(
      "  %-12s %5" PRIu64 " files, fill u %.3f, p50 %.0f us, p99 %.0f us, "
      "write cost %.2f, copied %s\n",
      name, res.files, res.fill_utilization, res.latency.PercentileUs(0.50),
      res.latency.PercentileUs(0.99), res.write_cost,
      HumanBytes(res.copy_bytes).c_str());
  Check(inst.fs->Unmount(), "unmount");
  return res;
}

}  // namespace

int main() {
  std::printf("=== Cleaner QoS: foreground p99 under sustained overwrite ===\n\n");
  auto wall0 = std::chrono::steady_clock::now();

  InstanceResult u70 = RunInstance("u70", 0.70, /*fine_grained=*/false);
  InstanceResult u90_fixed = RunInstance("u90_fixed", 0.90, /*fine_grained=*/false);
  InstanceResult u90_adaptive = RunInstance("u90_adaptive", 0.90, /*fine_grained=*/true);
  double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();

  BenchReport report("cleaner_qos");
  report.AddScalar("disk_bytes", static_cast<double>(kDiskBytes));
  report.AddScalar("overwrite_ops", static_cast<double>(kOverwriteOps));
  report.AddScalar("wall.run_sec", wall_sec);

  // The scalars CI's ratio gates read. p99 within 2x of the 70% baseline:
  // p99_us_70 / p99_us_90_adaptive >= 0.5. Adaptive must not copy more than
  // fixed cost-benefit: copy_bytes_fixed / copy_bytes_adaptive >= 1.0.
  report.AddScalar("p99_us_70", u70.latency.PercentileUs(0.99));
  report.AddScalar("p99_us_90_fixed", u90_fixed.latency.PercentileUs(0.99));
  report.AddScalar("p99_us_90_adaptive", u90_adaptive.latency.PercentileUs(0.99));
  report.AddScalar("write_cost_70", u70.write_cost);
  report.AddScalar("write_cost_90_fixed", u90_fixed.write_cost);
  report.AddScalar("write_cost_90_adaptive", u90_adaptive.write_cost);
  report.AddScalar("copy_bytes_fixed", static_cast<double>(u90_fixed.copy_bytes));
  report.AddScalar("copy_bytes_adaptive",
                   static_cast<double>(u90_adaptive.copy_bytes));

  const LfsStats& ast = u90_adaptive.stats;
  report.AddScalar("adaptive.segments_cleaned",
                   static_cast<double>(ast.segments_cleaned));
  report.AddScalar("adaptive.cleaned_greedy",
                   static_cast<double>(ast.segments_cleaned_by_policy[0]));
  report.AddScalar("adaptive.cleaned_costbenefit",
                   static_cast<double>(ast.segments_cleaned_by_policy[1]));
  report.AddScalar("adaptive.partial_compactions",
                   static_cast<double>(ast.partial_compactions));
  report.AddScalar("adaptive.full_compactions",
                   static_cast<double>(ast.full_compactions));
  report.AddScalar("adaptive.partial_blocks_moved",
                   static_cast<double>(ast.partial_blocks_moved));
  report.AddScalar("adaptive.governor_switches",
                   static_cast<double>(ast.governor_switches));
  report.AddScalar("adaptive.qos_deferrals",
                   static_cast<double>(ast.qos_deferrals));
  report.AddScalar("adaptive.qos_escalations",
                   static_cast<double>(ast.qos_escalations));
  report.AddScalar("adaptive.qos_charged_bytes",
                   static_cast<double>(ast.qos_charged_bytes));
  report.AddScalar("fixed90.segments_cleaned",
                   static_cast<double>(u90_fixed.stats.segments_cleaned));

  report.registry().AddHistogram("overwrite.u70", u70.latency);
  report.registry().AddHistogram("overwrite.u90_fixed", u90_fixed.latency);
  report.registry().AddHistogram("overwrite.u90_adaptive", u90_adaptive.latency);

  Table table({"Instance", "p50_us", "p95_us", "p99_us", "Write cost", "Copied"});
  struct Row {
    const char* name;
    const InstanceResult* r;
  } rows[] = {{"u70", &u70}, {"u90_fixed", &u90_fixed}, {"u90_adaptive", &u90_adaptive}};
  for (const Row& row : rows) {
    table.AddRow({row.name, Table::Fmt(row.r->latency.PercentileUs(0.50), 0),
                  Table::Fmt(row.r->latency.PercentileUs(0.95), 0),
                  Table::Fmt(row.r->latency.PercentileUs(0.99), 0),
                  Table::Fmt(row.r->write_cost, 2), HumanBytes(row.r->copy_bytes)});
  }
  std::printf("\n%s\n", table.ToString().c_str());
  double ratio = u90_adaptive.latency.PercentileUs(0.99) > 0
                     ? u70.latency.PercentileUs(0.99) /
                           u90_adaptive.latency.PercentileUs(0.99)
                     : 0;
  std::printf("p99_70 / p99_90_adaptive = %.3f (CI gate: >= 0.5)\n", ratio);
  std::printf("governor switched %" PRIu64 "x, deferred %" PRIu64
              ", escalated %" PRIu64 ", %" PRIu64 " partial drains\n",
              ast.governor_switches.load(), ast.qos_deferrals.load(),
              ast.qos_escalations.load(), ast.partial_compactions.load());

  report.Write();
  return 0;
}
