// Multi-threaded front-end scaling: the same per-thread workload (small-file
// creates, writes, and re-reads on private files) run with 1, 2, 4, and 8
// threads against one shared LFS in concurrent mode, through the shared
// write-back block cache. Reports wall-clock throughput per thread count and
// a per-op wall-latency distribution (obs::LatencyHistogram fed host-clock
// samples, so the percentiles show lock-contention tails directly).
//
// All throughput and latency numbers are host wall-clock and therefore
// machine- and schedule-dependent: every one is emitted under the "wall."
// prefix, which the CI bench-regression gate skips by design. CI instead
// gates the scaling *ratio* (threads_4 vs threads_1) via compare_bench.py
// --ratio, which is robust to absolute machine speed. The op counts are
// fixed by construction and serve as the deterministic sanity part of the
// schema.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/cached_device.h"
#include "src/obs/latency.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

const uint64_t kFilesPerThread = SmokePick(64, 16);
const uint64_t kOpsPerThread = SmokePick(2000, 400);
constexpr uint32_t kIoBytes = 4 * 1024;
const uint64_t kDiskBytes = SmokePick(256, 64) * 1024 * 1024;

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "mt_scaling: %s\n", st.ToString().c_str());
    std::abort();
  }
}

struct RunResult {
  double sec = 0;                 // wall time for all threads to finish
  obs::LatencyHistogram op_lat;   // per-op wall latency, all threads merged
};

// Wall seconds for `threads` workers to each run kOpsPerThread mixed ops.
RunResult RunOnce(int threads) {
  LfsConfig cfg = PaperLfsConfig();
  cfg.concurrent = true;
  uint64_t blocks = kDiskBytes / cfg.block_size;
  MemDisk disk(cfg.block_size, blocks);
  cache::CachedDeviceOptions opts;
  opts.capacity_blocks = 4096;
  opts.shards = 8;
  cache::CachedBlockDevice dev(&disk, opts);
  auto fs_r = LfsFileSystem::Mkfs(&dev, cfg);
  Check(fs_r.status());
  auto fs = std::move(fs_r).value();

  // Pre-create each thread's private files so the timed region measures
  // steady-state data traffic, not namespace setup.
  std::vector<std::vector<InodeNum>> inos(threads);
  for (int t = 0; t < threads; t++) {
    inos[t].resize(kFilesPerThread);
    for (uint64_t i = 0; i < kFilesPerThread; i++) {
      auto ino = fs->Create("/t" + std::to_string(t) + "_" + std::to_string(i));
      Check(ino.status());
      inos[t][i] = *ino;
    }
  }

  RunResult result;
  std::atomic<bool> failed{false};
  // The histogram's counters are relaxed atomics, so all workers record
  // into the one shared instance without a race.
  auto worker = [&](int t) {
    Rng rng(7919 * (t + 1));
    std::vector<uint8_t> wbuf(kIoBytes, static_cast<uint8_t>(t));
    std::vector<uint8_t> rbuf(kIoBytes);
    for (uint64_t i = 0; i < kOpsPerThread; i++) {
      InodeNum ino = inos[t][rng.NextU64() % kFilesPerThread];
      auto op_start = std::chrono::steady_clock::now();
      if (rng.NextU64() % 3 == 0) {
        if (!fs->WriteAt(ino, (rng.NextU64() % 8) * kIoBytes, wbuf).ok()) {
          failed.store(true);
          return;
        }
      } else {
        (void)fs->ReadAt(ino, (rng.NextU64() % 8) * kIoBytes, rbuf);
      }
      result.op_lat.RecordUs(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - op_start)
              .count()));
    }
  };

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; t++) {
    pool.emplace_back(worker, t);
  }
  for (auto& th : pool) {
    th.join();
  }
  auto end = std::chrono::steady_clock::now();
  if (failed.load()) {
    std::fprintf(stderr, "mt_scaling: worker op failed\n");
    std::abort();
  }
  Check(fs->Unmount());
  result.sec = std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace

int main() {
  BenchReport report("mt_scaling");
  report.AddScalar("config.files_per_thread", static_cast<double>(kFilesPerThread));
  report.AddScalar("config.ops_per_thread", static_cast<double>(kOpsPerThread));
  report.AddScalar("wall.hw_threads",
                   static_cast<double>(std::thread::hardware_concurrency()));

  std::printf("=== Concurrent front-end scaling (wall clock) ===\n\n");
  std::printf("host hardware threads: %u\n\n", std::thread::hardware_concurrency());
  std::printf("%8s %10s %13s %8s %9s %9s %9s\n", "threads", "wall sec",
              "total ops/s", "speedup", "p50 us", "p95 us", "p99 us");
  double base_rate = 0;
  for (int threads : {1, 2, 4, 8}) {
    RunResult run = RunOnce(threads);
    double rate = static_cast<double>(kOpsPerThread) * threads / run.sec;
    if (threads == 1) {
      base_rate = rate;
    }
    double p50 = run.op_lat.PercentileUs(0.50);
    double p95 = run.op_lat.PercentileUs(0.95);
    double p99 = run.op_lat.PercentileUs(0.99);
    std::printf("%8d %10.3f %13.0f %7.2fx %9.1f %9.1f %9.1f\n", threads, run.sec,
                rate, rate / base_rate, p50, p95, p99);
    std::string key = "wall.threads_" + std::to_string(threads);
    report.AddScalar(key + ".sec", run.sec);
    report.AddScalar(key + ".ops_per_sec", rate);
    report.AddScalar(key + ".p50_us", p50);
    report.AddScalar(key + ".p95_us", p95);
    report.AddScalar(key + ".p99_us", p99);
  }
  std::printf("\nReads run under the shared lock and striped inode locks; writes\n");
  std::printf("join group-committed batches and serialize only on the log tail.\n");
  std::printf("Numbers are wall-clock; CI gates the 4-vs-1 thread ratio only.\n");

  report.Write();
  return 0;
}
