// Multi-threaded front-end scaling: the same per-thread workload (small-file
// creates, writes, and re-reads on private files) run with 1, 2, and 4
// threads against one shared LFS in concurrent mode, through the shared
// write-back block cache. Reports wall-clock throughput per thread count.
//
// All throughput numbers are host wall-clock and therefore machine- and
// schedule-dependent: every one is emitted under the "wall." prefix, which
// the CI bench-regression gate skips by design. The op counts are fixed by
// construction and serve as the deterministic sanity part of the schema.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/cached_device.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

const uint64_t kFilesPerThread = SmokePick(64, 16);
const uint64_t kOpsPerThread = SmokePick(2000, 400);
constexpr uint32_t kIoBytes = 4 * 1024;
const uint64_t kDiskBytes = SmokePick(256, 64) * 1024 * 1024;

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "mt_scaling: %s\n", st.ToString().c_str());
    std::abort();
  }
}

// Wall seconds for `threads` workers to each run kOpsPerThread mixed ops.
double RunOnce(int threads) {
  LfsConfig cfg = PaperLfsConfig();
  cfg.concurrent = true;
  uint64_t blocks = kDiskBytes / cfg.block_size;
  MemDisk disk(cfg.block_size, blocks);
  cache::CachedDeviceOptions opts;
  opts.capacity_blocks = 4096;
  opts.shards = 8;
  cache::CachedBlockDevice dev(&disk, opts);
  auto fs_r = LfsFileSystem::Mkfs(&dev, cfg);
  Check(fs_r.status());
  auto fs = std::move(fs_r).value();

  // Pre-create each thread's private files so the timed region measures
  // steady-state data traffic, not namespace setup.
  std::vector<std::vector<InodeNum>> inos(threads);
  for (int t = 0; t < threads; t++) {
    inos[t].resize(kFilesPerThread);
    for (uint64_t i = 0; i < kFilesPerThread; i++) {
      auto ino = fs->Create("/t" + std::to_string(t) + "_" + std::to_string(i));
      Check(ino.status());
      inos[t][i] = *ino;
    }
  }

  std::atomic<bool> failed{false};
  auto worker = [&](int t) {
    Rng rng(7919 * (t + 1));
    std::vector<uint8_t> wbuf(kIoBytes, static_cast<uint8_t>(t));
    std::vector<uint8_t> rbuf(kIoBytes);
    for (uint64_t i = 0; i < kOpsPerThread; i++) {
      InodeNum ino = inos[t][rng.NextU64() % kFilesPerThread];
      if (rng.NextU64() % 3 == 0) {
        if (!fs->WriteAt(ino, (rng.NextU64() % 8) * kIoBytes, wbuf).ok()) {
          failed.store(true);
          return;
        }
      } else {
        (void)fs->ReadAt(ino, (rng.NextU64() % 8) * kIoBytes, rbuf);
      }
    }
  };

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; t++) {
    pool.emplace_back(worker, t);
  }
  for (auto& th : pool) {
    th.join();
  }
  auto end = std::chrono::steady_clock::now();
  if (failed.load()) {
    std::fprintf(stderr, "mt_scaling: worker op failed\n");
    std::abort();
  }
  Check(fs->Unmount());
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  BenchReport report("mt_scaling");
  report.AddScalar("config.files_per_thread", static_cast<double>(kFilesPerThread));
  report.AddScalar("config.ops_per_thread", static_cast<double>(kOpsPerThread));

  std::printf("=== Concurrent front-end scaling (wall clock) ===\n\n");
  std::printf("%8s %12s %14s %10s\n", "threads", "wall sec", "total ops/sec", "speedup");
  double base_rate = 0;
  for (int threads : {1, 2, 4}) {
    double sec = RunOnce(threads);
    double rate = static_cast<double>(kOpsPerThread) * threads / sec;
    if (threads == 1) {
      base_rate = rate;
    }
    std::printf("%8d %12.3f %14.0f %9.2fx\n", threads, sec, rate, rate / base_rate);
    std::string key = "wall.threads_" + std::to_string(threads);
    report.AddScalar(key + ".sec", sec);
    report.AddScalar(key + ".ops_per_sec", rate);
  }
  std::printf("\nReads run under the shared lock and in the sharded cache, so\n");
  std::printf("read-heavy mixes scale; writes serialize on the log (by design —\n");
  std::printf("there is one log tail). Numbers are wall-clock and not gated.\n");

  report.Write();
  return 0;
}
