// Shared infrastructure for the paper-reproduction benchmarks.
//
// Every benchmark measures MODELED time, not host wall-clock time: the
// SimDisk charges Wren IV service times (seek + rotation + transfer +
// per-request overhead) and the CpuModel charges per-operation/per-byte CPU
// costs calibrated to the paper's Sun-4/260. Elapsed time combines them as
//
//   LFS: max(cpu, disk)   — asynchronous logging overlaps CPU and disk
//   FFS: cpu + disk       — synchronous small I/Os serialize the two
//
// which reproduces the paper's observations that SunOS saturated the disk
// (85% busy) while Sprite LFS saturated the CPU (disk only 17% busy), and
// drives the Figure 8(b) faster-CPU prediction.

#ifndef LFS_BENCH_BENCH_COMMON_H_
#define LFS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/disk/mem_disk.h"
#include "src/disk/sim_disk.h"
#include "src/ffs/ffs.h"
#include "src/fs/file_system.h"
#include "src/lfs/lfs.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"

namespace lfs::bench {

// CPU cost model calibrated so the small-file benchmark lands in the
// paper's regime (Sprite LFS ~100-200 files/sec, CPU-bound).
struct CpuModel {
  double per_op_sec = 0.005;    // one filesystem call (create/read/delete...)
  double per_byte_sec = 2e-7;   // data touching (~5 MB/s Sun-4 copy rate)
  double speedup = 1.0;         // CPU generations for Figure 8(b)

  double Time(uint64_t ops, uint64_t bytes) const {
    return (static_cast<double>(ops) * per_op_sec +
            static_cast<double>(bytes) * per_byte_sec) /
           speedup;
  }
};

inline double LfsElapsed(double cpu_sec, double disk_sec) {
  return std::max(cpu_sec, disk_sec);
}
inline double FfsElapsed(double cpu_sec, double disk_sec) { return cpu_sec + disk_sec; }

// A filesystem instance over a timing-modeled disk.
struct LfsInstance {
  std::unique_ptr<SimDisk> disk;  // owns the MemDisk backing
  std::unique_ptr<LfsFileSystem> fs;
};

struct FfsInstance {
  std::unique_ptr<SimDisk> disk;
  std::unique_ptr<ffs::FfsFileSystem> fs;
};

LfsInstance MakeLfs(uint64_t disk_bytes, LfsConfig cfg,
                    DiskModelParams params = DiskModelParams::WrenIV());
FfsInstance MakeFfs(uint64_t disk_bytes, uint32_t block_size,
                    DiskModelParams params = DiskModelParams::WrenIV());

// The paper's benchmark filesystem configuration: ~4-KB blocks, 1-MB
// segments (Section 5.1).
LfsConfig PaperLfsConfig();

// --- synthetic long-term workloads (Table 2 / Figure 10 / Table 4) -------------

// Parameters of a production-like workload, scaled down from the Table 2
// systems. Files are created with exponentially distributed sizes, a
// fraction of them turn cold (never touched again), and the rest churn by
// whole-file delete+recreate (or random in-place rewrites for swap-like
// workloads) until `churn_multiplier` times the disk size has been written.
struct WorkloadParams {
  std::string name;
  uint64_t mean_file_bytes = 24 * 1024;
  uint64_t max_file_bytes = 8 * 1024 * 1024;  // cap of the large-file tail
  double target_utilization = 0.75;  // of the disk
  double churn_multiplier = 3.0;     // total new data / disk size
  double cold_fraction = 0.5;        // files never modified after creation
  bool sparse_rewrites = false;      // swap-style: rewrite blocks in place
  uint64_t seed = 42;
};

struct WorkloadReport {
  uint64_t files_created = 0;
  uint64_t bytes_written = 0;
  uint64_t avg_file_bytes = 0;
};

// Runs the workload against a mounted LFS. Checkpoints periodically (the
// production systems checkpointed every 30 seconds).
WorkloadReport RunWorkload(LfsFileSystem* fs, uint64_t disk_bytes, const WorkloadParams& params);

// Table 2's five production filesystems, scaled to the given disk size.
WorkloadParams User6Workload();
WorkloadParams PcsWorkload();
WorkloadParams SrcKernelWorkload();
WorkloadParams TmpWorkload();
WorkloadParams Swap2Workload();

// Formats a byte count as "12.3 MB" etc.
std::string HumanBytes(uint64_t bytes);

// --- machine-readable results (BENCH_<name>.json) ------------------------------

// True when LFS_BENCH_SMOKE is set in the environment (to anything but "0"):
// benchmarks shrink their workloads so CI can run every binary in seconds.
// The emitted JSON records the mode so smoke numbers are never diffed
// against full-run numbers.
bool SmokeMode();

// `full` normally, `smoke` under SmokeMode(). For scaling disk sizes,
// iteration counts, and file counts in one place.
uint64_t SmokePick(uint64_t full, uint64_t smoke);

// Collects a benchmark's metrics and emits BENCH_<name>.json with a stable
// schema CI can validate and diff:
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "smoke": false,
//     "metrics":    { "<dotted.name>": number, ... },       // sorted keys
//     "histograms": { "<name>": {count, mean_us, p50_us, p90_us,
//                                p95_us, p99_us, min_us, max_us}, ... }
//   }
//
// All numbers come from the modeled clock / operation counters, so the file
// is deterministic for a given build and workload (wall-clock measurements
// must go in with a "wall." prefix, which CI comparisons ignore).
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void AddScalar(const std::string& name, double value);
  // Snapshot a filesystem instance under `prefix` (e.g. "lfs."): stats
  // counters, disk counters, device service-time histograms, per-op latency
  // histograms.
  void AddLfs(const std::string& prefix, const LfsInstance& inst);
  void AddFfs(const std::string& prefix, const FfsInstance& inst);

  obs::MetricsRegistry& registry() { return reg_; }

  // Serializes the report (stable schema above).
  std::string ToJson() const;

  // Writes BENCH_<name>.json into $LFS_BENCH_OUT (default: current
  // directory) and prints the path to stdout.
  void Write() const;

 private:
  std::string name_;
  obs::MetricsRegistry reg_;
};

}  // namespace lfs::bench

#endif  // LFS_BENCH_BENCH_COMMON_H_
