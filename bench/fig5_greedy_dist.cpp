// Figure 5: segment utilization distributions under the greedy cleaner at
// 75% overall disk capacity utilization, for the uniform and hot-and-cold
// access patterns. The distributions are measured over all segments
// available to the cleaner at the moments cleaning is initiated.
//
// Expected shape (paper): locality skews the distribution towards the
// utilization at which cleaning occurs — cold segments linger just above the
// cleaning point, so hot-and-cold shows more mass clustered there and
// segments end up cleaned at a higher average utilization.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/sim.h"

using lfs::sim::AccessPattern;
using lfs::sim::CleaningSimulator;
using lfs::sim::Policy;
using lfs::sim::SimConfig;
using lfs::sim::SimResult;

int main() {
  SimConfig cfg;
  cfg.nsegments = 100;
  cfg.blocks_per_segment = 64;
  cfg.disk_utilization = 0.75;
  cfg.policy = Policy::kGreedy;
  cfg.warmup_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(150, 25));
  cfg.measure_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(60, 10));
  cfg.seed = 21;

  std::printf("=== Figure 5: segment utilization distributions, greedy cleaner, 75%% util ===\n\n");

  SimResult uniform = CleaningSimulator(cfg).Run();
  std::printf("%s\n", uniform.segment_distribution.ToAscii("Uniform").c_str());
  std::printf("  uniform: write cost %.2f, avg cleaned u %.3f\n\n", uniform.write_cost,
              uniform.avg_cleaned_utilization);

  cfg.pattern = AccessPattern::kHotAndCold;
  cfg.age_sort = true;
  SimResult hotcold = CleaningSimulator(cfg).Run();
  std::printf("%s\n", hotcold.segment_distribution.ToAscii("Hot-and-cold").c_str());
  std::printf("  hot-and-cold: write cost %.2f, avg cleaned u %.3f\n", hotcold.write_cost,
              hotcold.avg_cleaned_utilization);
  std::printf("\nExpected: hot-and-cold mass is more clustered near the cleaning point;\n");
  std::printf("segments are cleaned at higher average utilization than uniform\n");
  std::printf("(measured: %.3f vs %.3f).\n", hotcold.avg_cleaned_utilization,
              uniform.avg_cleaned_utilization);

  lfs::bench::BenchReport report("fig5_greedy_dist");
  report.AddScalar("uniform.write_cost", uniform.write_cost);
  report.AddScalar("uniform.avg_cleaned_utilization", uniform.avg_cleaned_utilization);
  report.AddScalar("hotcold.write_cost", hotcold.write_cost);
  report.AddScalar("hotcold.avg_cleaned_utilization", hotcold.avg_cleaned_utilization);
  report.Write();
  return 0;
}
