// Implementation microbenchmarks (google-benchmark). Unlike the fig*/table*
// harnesses, these measure the REAL host CPU time of this library's code
// paths (in-memory disk, no timing model): filesystem operations, the log
// append path, serialization, and CRCs. Useful for tracking implementation
// regressions, not for reproducing paper numbers.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/disk/mem_disk.h"
#include "src/lfs/lfs.h"
#include "src/util/crc32.h"

namespace {

using namespace lfs;

LfsConfig BenchConfig() {
  LfsConfig cfg;
  cfg.block_size = 4096;
  cfg.segment_blocks = 256;
  cfg.clean_lo = 8;
  cfg.clean_hi = 12;
  cfg.reserve_segments = 4;
  return cfg;
}

struct Fixture {
  std::unique_ptr<MemDisk> disk;
  std::unique_ptr<LfsFileSystem> fs;

  explicit Fixture(uint64_t disk_mb = 256) {
    LfsConfig cfg = BenchConfig();
    disk = std::make_unique<MemDisk>(cfg.block_size, disk_mb * 1024 * 1024 / cfg.block_size);
    fs = std::move(LfsFileSystem::Mkfs(disk.get(), cfg)).value();
  }
};

void BM_CreateEmptyFile(benchmark::State& state) {
  Fixture fx;
  int i = 0;
  for (auto _ : state) {
    auto r = fx.fs->Create("/f" + std::to_string(i++));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CreateEmptyFile);

void BM_Write4K(benchmark::State& state) {
  Fixture fx;
  InodeNum ino = std::move(fx.fs->Create("/f")).value();
  std::vector<uint8_t> block(4096, 0xAA);
  uint64_t off = 0;
  for (auto _ : state) {
    Status st = fx.fs->WriteAt(ino, off % (64ull * 1024 * 1024), block);
    benchmark::DoNotOptimize(st);
    off += 4096;
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Write4K);

void BM_Read4K(benchmark::State& state) {
  Fixture fx;
  InodeNum ino = std::move(fx.fs->Create("/f")).value();
  std::vector<uint8_t> data(1024 * 1024, 0xBB);
  (void)fx.fs->WriteAt(ino, 0, data);
  (void)fx.fs->Sync();
  std::vector<uint8_t> buf(4096);
  uint64_t off = 0;
  for (auto _ : state) {
    auto r = fx.fs->ReadAt(ino, off % (1024 * 1024), buf);
    benchmark::DoNotOptimize(r);
    off += 4096;
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Read4K);

void BM_CreateWriteUnlink(benchmark::State& state) {
  Fixture fx;
  std::vector<uint8_t> content(1024, 0xCC);
  int i = 0;
  for (auto _ : state) {
    std::string path = "/f" + std::to_string(i++ % 1000);
    (void)fx.fs->WriteFile(path, content);
    (void)fx.fs->Unlink(path);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CreateWriteUnlink);

void BM_Lookup(benchmark::State& state) {
  Fixture fx;
  for (int i = 0; i < 1000; i++) {
    (void)fx.fs->Create("/f" + std::to_string(i));
  }
  int i = 0;
  for (auto _ : state) {
    auto r = fx.fs->Lookup("/f" + std::to_string(i++ % 1000));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Lookup);

void BM_Checkpoint(benchmark::State& state) {
  Fixture fx;
  std::vector<uint8_t> content(8192, 0xDD);
  int i = 0;
  for (auto _ : state) {
    (void)fx.fs->WriteFile("/c" + std::to_string(i++), content);
    Status st = fx.fs->Sync();
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Checkpoint);

void BM_Crc32_4K(benchmark::State& state) {
  std::vector<uint8_t> data(4096, 0x42);
  for (auto _ : state) {
    uint32_t crc = Crc32(data);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Crc32_4K);

void BM_InodeEncodeDecode(benchmark::State& state) {
  Inode ino;
  ino.ino = 42;
  ino.type = FileType::kRegular;
  ino.size = 123456;
  std::vector<uint8_t> slot(kInodeSlotSize);
  for (auto _ : state) {
    ino.EncodeTo(slot);
    auto r = Inode::DecodeFrom(slot);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InodeEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
