// Table 4: disk space and log bandwidth usage of /user6 by block type.
// After running the /user6-style workload, we report
//   - Live data:      what fraction of the live bytes on disk each block
//                     type accounts for (from a full log scan), and
//   - Log bandwidth:  what fraction of everything written to the log each
//                     block type consumed (from the write-path accounting).
//
// Expected shape (paper): >99% of live data is file data + indirect blocks,
// but metadata (inodes, inode map, segment usage map) consumes ~13% of log
// bandwidth because it is rewritten so often — the inode map alone over 7%.
// The paper blames the short checkpoint interval; the checkpoint-interval
// ablation (bench/ablation_checkpoint) quantifies exactly that effect.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/table.h"

using namespace lfs;
using namespace lfs::bench;

int main() {
  const uint64_t disk_bytes = SmokePick(160, 48) * 1024 * 1024;
  LfsInstance inst = MakeLfs(disk_bytes, PaperLfsConfig());
  inst.fs->mutable_stats() = LfsStats{};
  WorkloadParams params = User6Workload();
  if (SmokeMode()) {
    params.churn_multiplier = 1.0;
    params.max_file_bytes = disk_bytes / 24;
  }
  RunWorkload(inst.fs.get(), disk_bytes, params);

  auto live_r = inst.fs->LiveBytesByKind();
  if (!live_r.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", live_r.status().ToString().c_str());
    return 1;
  }
  const auto& live = *live_r;
  const LfsStats& st = inst.fs->stats();

  uint64_t live_total = 0;
  for (uint64_t b : live) {
    live_total += b;
  }
  uint64_t log_total = st.total_log_written();

  struct RowSpec {
    const char* name;
    const char* key;  // metric-name suffix for the BENCH json
    BlockKind kind;
    const char* paper_live;
    const char* paper_log;
  };
  RowSpec rows[] = {
      {"Data blocks*", "data", BlockKind::kData, "98.0%", "85.2%"},
      {"Indirect blocks*", "indirect", BlockKind::kIndirect, "1.0%", "1.6%"},
      {"Inode blocks*", "inode", BlockKind::kInodeBlock, "0.2%", "2.7%"},
      {"Inode map", "imap", BlockKind::kImapChunk, "0.2%", "7.8%"},
      {"Seg usage map*", "usage", BlockKind::kUsageChunk, "0.0%", "2.1%"},
      {"Dir op log", "dirlog", BlockKind::kDirLog, "0.0%", "0.1%"},
  };

  BenchReport bench_report("table4_composition");
  Table table({"Block type", "Live data", "Log bandwidth", "Paper live", "Paper log"});
  for (const RowSpec& r : rows) {
    size_t k = static_cast<size_t>(r.kind);
    uint64_t live_bytes = live[k];
    uint64_t log_bytes = st.log_bytes_by_kind[k];
    if (r.kind == BlockKind::kIndirect) {
      // Fold double-indirect roots into the indirect row, as the paper does.
      live_bytes += live[static_cast<size_t>(BlockKind::kDoubleIndirect)];
      log_bytes += st.log_bytes_by_kind[static_cast<size_t>(BlockKind::kDoubleIndirect)];
    }
    table.AddRow({r.name,
                  Table::FmtPercent(static_cast<double>(live_bytes) / live_total, 1),
                  Table::FmtPercent(static_cast<double>(log_bytes) / log_total, 1),
                  r.paper_live, r.paper_log});
    bench_report.AddScalar(std::string("live_fraction.") + r.key,
                           static_cast<double>(live_bytes) / live_total);
    bench_report.AddScalar(std::string("log_fraction.") + r.key,
                           static_cast<double>(log_bytes) / log_total);
  }
  table.AddRow({"Summary blocks", Table::FmtPercent(0.0, 1),
                Table::FmtPercent(static_cast<double>(st.summary_bytes) / log_total, 1),
                "0.6%", "0.5%"});

  std::printf("=== Table 4: disk space and log bandwidth usage by block type (/user6) ===\n\n");
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(The 'Paper' columns reproduce the published Table 4 for comparison;\n");
  std::printf("block types marked * have equivalents in Unix FFS. Log-bandwidth\n");
  std::printf("fractions here are over new data + cleaning traffic combined.)\n\n");
  std::printf("Expected shape: file data dominates live bytes (>95%%), while metadata\n");
  std::printf("takes a disproportionate share of log bandwidth.\n");
  bench_report.AddScalar("log_fraction.summary",
                         static_cast<double>(st.summary_bytes) / log_total);
  bench_report.AddLfs("lfs.", inst);
  bench_report.Write();
  return 0;
}
