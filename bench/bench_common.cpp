#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/bindings.h"

namespace lfs::bench {

LfsConfig PaperLfsConfig() {
  LfsConfig cfg;
  cfg.block_size = 4096;
  cfg.segment_blocks = 256;  // 1-MB segments
  cfg.max_inodes = 131072;
  // Proportional to Sprite's thresholds ("a few tens" low / 50-100 high on
  // a 1280-segment disk, i.e. ~2.5% / ~5%) at the benchmarks' scaled disk
  // sizes of 100-300 segments.
  cfg.clean_lo = 4;
  cfg.clean_hi = 8;
  cfg.segments_per_pass = 8;
  cfg.reserve_segments = 4;
  cfg.write_buffer_blocks = 256;
  return cfg;
}

LfsInstance MakeLfs(uint64_t disk_bytes, LfsConfig cfg, DiskModelParams params) {
  uint64_t blocks = disk_bytes / cfg.block_size;
  auto disk = std::make_unique<SimDisk>(std::make_unique<MemDisk>(cfg.block_size, blocks),
                                        params);
  auto fs = LfsFileSystem::Mkfs(disk.get(), cfg);
  if (!fs.ok()) {
    std::fprintf(stderr, "LFS mkfs failed: %s\n", fs.status().ToString().c_str());
    std::abort();
  }
  disk->ResetStats();  // setup cost is not part of any measurement
  return LfsInstance{std::move(disk), std::move(fs).value()};
}

FfsInstance MakeFfs(uint64_t disk_bytes, uint32_t block_size, DiskModelParams params) {
  uint64_t blocks = disk_bytes / block_size;
  auto disk = std::make_unique<SimDisk>(std::make_unique<MemDisk>(block_size, blocks),
                                        params);
  auto fs = ffs::FfsFileSystem::Mkfs(disk.get(), block_size);
  if (!fs.ok()) {
    std::fprintf(stderr, "FFS mkfs failed: %s\n", fs.status().ToString().c_str());
    std::abort();
  }
  disk->ResetStats();
  return FfsInstance{std::move(disk), std::move(fs).value()};
}

namespace {
void CheckOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "workload %s failed: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}
}  // namespace

WorkloadReport RunWorkload(LfsFileSystem* fs, uint64_t disk_bytes,
                           const WorkloadParams& params) {
  WorkloadReport report;
  Rng rng(params.seed);
  CheckOk(fs->Mkdir("/w"), "mkdir");

  struct LiveFile {
    std::string path;
    uint64_t size;
  };
  std::vector<LiveFile> hot;  // churnable files
  uint64_t next_id = 0;
  uint64_t total_file_bytes = 0;
  uint64_t file_count = 0;

  // Realistic file sizes: most files are small, but a few percent are large
  // and carry the majority of the bytes (the trace studies the paper cites).
  // The large tail matters doubly here: deleting a file bigger than a
  // segment yields completely empty segments (Section 5.2).
  auto sample_size = [&]() -> uint64_t {
    if (rng.NextBool(0.03)) {
      return rng.NextFileSize(params.mean_file_bytes * 20, params.max_file_bytes);
    }
    return rng.NextFileSize(std::max<uint64_t>(1024, params.mean_file_bytes * 2 / 5),
                            256 * 1024);
  };
  // Returns false when the log is out of committed space (the large-file
  // tail can overshoot the utilization target, especially on small disks);
  // the caller stops filling and lets deletions restore headroom.
  auto create_one = [&](bool may_be_cold) -> bool {
    uint64_t size = sample_size();
    std::string path = "/w/f" + std::to_string(next_id++);
    std::vector<uint8_t> content(size);
    for (auto& b : content) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    Status st = fs->WriteFile(path, content);
    if (st.code() == StatusCode::kNoSpace) {
      return false;
    }
    CheckOk(st, "create");
    report.bytes_written += size;
    total_file_bytes += size;
    file_count++;
    report.files_created++;
    if (!may_be_cold || !rng.NextBool(params.cold_fraction)) {
      hot.push_back(LiveFile{std::move(path), size});
    }
    return true;
  };
  // Regulate on the filesystem's own live-byte accounting so metadata and
  // block-padding overheads are included in the utilization target.
  auto below_target = [&]() {
    return fs->disk_utilization() +
               static_cast<double>(params.mean_file_bytes) / disk_bytes <
           params.target_utilization;
  };

  // Phase 1: fill to the target utilization.
  while (below_target()) {
    if (!create_one(/*may_be_cold=*/true)) {
      break;
    }
  }
  CheckOk(fs->Sync(), "sync after fill");

  // Phase 2: churn. Whole-file delete + recreate (office/engineering style),
  // or random in-place block rewrites (swap style), with periodic
  // checkpoints standing in for the 30-second checkpoint interval.
  uint64_t churn_target = static_cast<uint64_t>(params.churn_multiplier * disk_bytes);
  uint64_t since_checkpoint = 0;
  const uint64_t checkpoint_every = 8 * 1024 * 1024;
  while (report.bytes_written < churn_target && !hot.empty()) {
    uint64_t before = report.bytes_written;
    if (params.sparse_rewrites) {
      // Rewrite a random block range of an existing file.
      LiveFile& f = hot[rng.NextBelow(hot.size())];
      Result<InodeNum> ino = fs->Lookup(f.path);
      CheckOk(ino.status(), "lookup");
      uint64_t bs = fs->config().block_size;
      uint64_t nblocks = (f.size + bs - 1) / bs;
      uint64_t fbn = rng.NextBelow(nblocks);
      uint64_t len = std::min<uint64_t>(1 + rng.NextBelow(8), nblocks - fbn);
      std::vector<uint8_t> content(len * bs);
      for (auto& b : content) {
        b = static_cast<uint8_t>(rng.NextU64());
      }
      CheckOk(fs->WriteAt(*ino, fbn * bs, content), "rewrite");
      report.bytes_written += content.size();
    } else {
      // Delete a RUN of files created around the same time, then create
      // replacements. Deletion locality is what empties whole segments in
      // production (Section 5.2: "files tend to be written and deleted as a
      // whole... deleting the file will produce one or more totally empty
      // segments") — a uniformly random deleter would almost never empty
      // one. `hot` is kept in creation order to preserve that correlation.
      size_t run = 1 + rng.NextBelow(12);
      size_t idx = rng.NextBelow(hot.size());
      size_t end = std::min(idx + run, hot.size());
      for (size_t i = idx; i < end; i++) {
        CheckOk(fs->Unlink(hot[i].path), "unlink");
        total_file_bytes -= hot[i].size;
        file_count--;
      }
      hot.erase(hot.begin() + idx, hot.begin() + end);
      // Refill toward the target utilization.
      while (below_target()) {
        if (!create_one(/*may_be_cold=*/false)) {
          break;
        }
      }
    }
    since_checkpoint += report.bytes_written - before;
    if (since_checkpoint >= checkpoint_every) {
      CheckOk(fs->Sync(), "periodic checkpoint");
      since_checkpoint = 0;
    }
  }
  CheckOk(fs->Sync(), "final sync");
  report.avg_file_bytes = file_count > 0 ? total_file_bytes / file_count : 0;
  return report;
}

WorkloadParams User6Workload() {
  WorkloadParams p;
  p.name = "/user6";
  p.mean_file_bytes = 23500;  // Table 2: 23.5 KB average file size
  p.target_utilization = 0.75;
  p.churn_multiplier = 3.0;
  p.cold_fraction = 0.5;  // home directories: much data written once
  p.seed = 1001;
  return p;
}

WorkloadParams PcsWorkload() {
  WorkloadParams p;
  p.name = "/pcs";
  p.mean_file_bytes = 10500;
  p.target_utilization = 0.63;
  p.churn_multiplier = 3.0;
  p.cold_fraction = 0.45;
  p.seed = 1002;
  return p;
}

WorkloadParams SrcKernelWorkload() {
  WorkloadParams p;
  p.name = "/src/kernel";
  p.mean_file_bytes = 37500;
  p.target_utilization = 0.72;
  p.churn_multiplier = 3.0;
  p.cold_fraction = 0.3;  // sources + binaries rebuilt wholesale
  p.seed = 1003;
  return p;
}

WorkloadParams TmpWorkload() {
  WorkloadParams p;
  p.name = "/tmp";
  p.mean_file_bytes = 28900;
  p.target_utilization = 0.11;  // Table 2: only 11% in use
  p.churn_multiplier = 3.0;
  p.cold_fraction = 0.02;  // temporary files die young
  p.seed = 1004;
  return p;
}

WorkloadParams Swap2Workload() {
  WorkloadParams p;
  p.name = "/swap2";
  p.mean_file_bytes = 68100;
  p.target_utilization = 0.65;
  p.churn_multiplier = 3.0;
  p.cold_fraction = 0.0;
  p.sparse_rewrites = true;  // VM backing store: nonsequential block rewrites
  p.seed = 1005;
  return p;
}

bool SmokeMode() {
  const char* v = std::getenv("LFS_BENCH_SMOKE");
  return v != nullptr && std::string(v) != "0";
}

uint64_t SmokePick(uint64_t full, uint64_t smoke) { return SmokeMode() ? smoke : full; }

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::AddScalar(const std::string& name, double value) {
  reg_.AddGauge(name, value);
}

void BenchReport::AddLfs(const std::string& prefix, const LfsInstance& inst) {
  obs::BindLfsStats(&reg_, prefix, inst.fs->stats());
  obs::BindFsObs(&reg_, prefix, inst.fs->obs());
  obs::BindSimDisk(&reg_, prefix + "disk.", *inst.disk);
}

void BenchReport::AddFfs(const std::string& prefix, const FfsInstance& inst) {
  obs::BindFfsStats(&reg_, prefix, inst.fs->stats());
  obs::BindFsObs(&reg_, prefix, inst.fs->obs());
  obs::BindSimDisk(&reg_, prefix + "disk.", *inst.disk);
}

std::string BenchReport::ToJson() const {
  // Prepend the identity header to the registry's {"metrics", "histograms"}
  // object; the registry output starts "{\n", so substr(2) splices cleanly.
  std::string inner = reg_.ToJson(2);
  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"bench\": " + obs::JsonString(name_) + ",\n";
  out += std::string("  \"smoke\": ") + (SmokeMode() ? "true" : "false") + ",\n";
  out += inner.substr(2);
  return out;
}

void BenchReport::Write() const {
  const char* dir = std::getenv("LFS_BENCH_OUT");
  std::string path = (dir != nullptr && dir[0] != '\0') ? std::string(dir) + "/" : "";
  path += "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
    return;
  }
  std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  // stderr: perf_hotpaths' stdout is documented as a pure JSON object.
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace lfs::bench
