// Ablation: whole-segment cleaning reads versus live-blocks-only reads.
//
// Section 3.4, on formula (1): "we made the conservative assumption that a
// segment must be read in its entirety to recover the live blocks; in
// practice it may be faster to read just the live blocks, particularly if
// the utilization is very low (we haven't tried this in Sprite LFS)."
//
// We try it. Expected: at low utilization the sparse strategy reads far
// fewer bytes (summaries + a few live runs instead of whole segments) and
// the cleaner's disk time drops accordingly; near high utilization the two
// converge (almost everything must be read anyway, and the sparse path pays
// extra per-request overhead for its scattered run reads).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/rng.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "ablation: %s\n", st.ToString().c_str());
    std::abort();
  }
}

struct Outcome {
  double clean_read_mb = 0;
  double cleaner_disk_sec = 0;
  double write_cost = 0;
  uint64_t segments_cleaned = 0;
};

Outcome RunOne(bool live_only, double utilization) {
  LfsConfig cfg;
  cfg.block_size = 4096;
  cfg.segment_blocks = 128;  // 512-KB segments
  cfg.cleaner_read_live_blocks_only = live_only;
  cfg.clean_lo = 4;
  cfg.clean_hi = 8;
  cfg.segments_per_pass = 8;
  cfg.reserve_segments = 3;
  // Not shrunk in smoke mode: the 0.90-utilization fill needs the full
  // disk's headroom to stay ahead of segment-padding overhead.
  const uint64_t disk_bytes = 64ull * 1024 * 1024;
  LfsInstance inst = MakeLfs(disk_bytes, cfg);
  Check(inst.fs->Mkdir("/d"));

  // Build a fragmented disk at the requested utilization, then force a
  // cleaning sweep and measure only the cleaning traffic.
  Rng rng(4);
  const uint64_t file_bytes = 24 * 1024;
  std::vector<uint8_t> content(file_bytes, 0x66);
  int i = 0;
  while (inst.fs->disk_utilization() < 0.90) {
    Status st = inst.fs->WriteFile("/d/f" + std::to_string(i), content);
    if (st.code() == StatusCode::kNoSpace) {
      // Log-overhead padding can exhaust committed space before live bytes
      // reach the target; the utilization actually achieved is what the
      // sweep measures, so stop filling here.
      break;
    }
    Check(st);
    i++;
  }
  // Delete down to the target utilization, randomly (fragmentation).
  std::vector<int> alive(i);
  for (int k = 0; k < i; k++) {
    alive[k] = k;
  }
  while (inst.fs->disk_utilization() > utilization && !alive.empty()) {
    size_t pick = rng.NextBelow(alive.size());
    Check(inst.fs->Unlink("/d/f" + std::to_string(alive[pick])));
    alive[pick] = alive.back();
    alive.pop_back();
  }
  Check(inst.fs->Sync());

  inst.fs->mutable_stats() = LfsStats{};
  inst.disk->ResetStats();
  DiskStats before = inst.disk->stats();
  uint32_t reclaimed_total = 0;
  for (int pass = 0; pass < 24; pass++) {
    auto n = inst.fs->ForceClean();
    Check(n.status());
    if (*n == 0) {
      break;
    }
    reclaimed_total += *n;
  }
  Outcome out;
  const LfsStats& st = inst.fs->stats();
  out.clean_read_mb = static_cast<double>(st.clean_read_bytes) / (1024 * 1024);
  out.cleaner_disk_sec = (inst.disk->stats() - before).busy_sec;
  out.write_cost = st.WriteCost();
  out.segments_cleaned = st.segments_cleaned;
  (void)reclaimed_total;
  return out;
}

}  // namespace

int main() {
  BenchReport report("ablation_clean_read");
  std::printf("=== Ablation: whole-segment vs live-blocks-only cleaning reads ===\n\n");
  std::printf("%-6s %-12s %14s %16s %12s\n", "util", "strategy", "bytes read",
              "cleaner disk (s)", "cleaned");
  for (double util : {0.15, 0.35, 0.55, 0.75}) {
    Outcome whole = RunOne(false, util);
    Outcome sparse = RunOne(true, util);
    std::printf("%-6.2f %-12s %11.1f MB %16.2f %12llu\n", util, "whole", whole.clean_read_mb,
                whole.cleaner_disk_sec, static_cast<unsigned long long>(whole.segments_cleaned));
    std::printf("%-6s %-12s %11.1f MB %16.2f %12llu\n", "", "live-only", sparse.clean_read_mb,
                sparse.cleaner_disk_sec,
                static_cast<unsigned long long>(sparse.segments_cleaned));
    char key[64];
    int u = static_cast<int>(util * 100);
    std::snprintf(key, sizeof(key), "whole.clean_read_mb.u%02d", u);
    report.AddScalar(key, whole.clean_read_mb);
    std::snprintf(key, sizeof(key), "live_only.clean_read_mb.u%02d", u);
    report.AddScalar(key, sparse.clean_read_mb);
    std::snprintf(key, sizeof(key), "whole.cleaner_disk_sec.u%02d", u);
    report.AddScalar(key, whole.cleaner_disk_sec);
    std::snprintf(key, sizeof(key), "live_only.cleaner_disk_sec.u%02d", u);
    report.AddScalar(key, sparse.cleaner_disk_sec);
  }
  std::printf("\nExpected: live-only reads far fewer bytes at low utilization (the\n");
  std::printf("paper's untried hypothesis, confirmed); the advantage shrinks as\n");
  std::printf("utilization rises and nearly everything must be read anyway.\n");
  report.Write();
  return 0;
}
