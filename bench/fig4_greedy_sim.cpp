// Figure 4: initial simulation results. Write cost versus overall disk
// capacity utilization for
//   - "No variance":       formula (1) applied to the overall utilization
//   - "LFS uniform":       uniform access, greedy cleaner, no reorganization
//   - "LFS hot-and-cold":  90% of writes to 10% of files, greedy cleaner,
//                          live data sorted by age
// The paper's surprising result: locality + "better" grouping makes the
// greedy policy WORSE than having no locality at all.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/sim.h"

using lfs::sim::AccessPattern;
using lfs::sim::CleaningSimulator;
using lfs::sim::FormulaWriteCost;
using lfs::sim::Policy;
using lfs::sim::SimConfig;
using lfs::sim::SimResult;

namespace {

SimConfig Base(double util) {
  SimConfig cfg;
  cfg.nsegments = 100;
  cfg.blocks_per_segment = 64;
  cfg.disk_utilization = util;
  cfg.policy = Policy::kGreedy;
  cfg.warmup_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(120, 20));
  cfg.measure_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(60, 10));
  cfg.seed = 7;
  return cfg;
}

}  // namespace

int main() {
  lfs::bench::BenchReport report("fig4_greedy_sim");
  std::printf("=== Figure 4: write cost vs disk capacity utilization (greedy cleaner) ===\n\n");
  std::printf("%-6s %12s %14s %18s\n", "util", "no-variance", "LFS uniform", "LFS hot-and-cold");
  for (double util : {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.93}) {
    SimConfig uni = Base(util);
    SimResult r_uni = CleaningSimulator(uni).Run();

    SimConfig hc = Base(util);
    hc.pattern = AccessPattern::kHotAndCold;
    hc.age_sort = true;  // the cleaner also sorts the live data by age
    SimResult r_hc = CleaningSimulator(hc).Run();

    std::printf("%-6.2f %12.2f %14.2f %18.2f\n", util, FormulaWriteCost(util),
                r_uni.write_cost, r_hc.write_cost);
    char key[48];
    std::snprintf(key, sizeof(key), "uniform.write_cost.u%02d", static_cast<int>(util * 100));
    report.AddScalar(key, r_uni.write_cost);
    std::snprintf(key, sizeof(key), "hotcold.write_cost.u%02d", static_cast<int>(util * 100));
    report.AddScalar(key, r_hc.write_cost);
  }
  std::printf("\nReference: FFS today ~ cost 10-20; FFS improved ~ cost 4.\n");
  std::printf("Expected shape (paper): both measured curves sit well below the\n");
  std::printf("no-variance formula; hot-and-cold (with greedy cleaning) is WORSE\n");
  std::printf("than uniform across mid/high utilizations.\n");
  report.Write();
  return 0;
}
