// Figure 2's design alternative, quantified: threaded log versus copying.
//
// Section 3.2: "The first alternative is to leave the live data in place and
// thread the log through the free extents. Unfortunately, threading will
// cause the free space to become severely fragmented, so that large
// contiguous writes won't be possible..." — and Sprite's answer: "Sprite LFS
// uses a combination of threading and copying... the log is threaded on a
// segment-by-segment basis."
//
// We simulate a threaded log on the Wren IV model (writes fill free extents
// in address order; deletions punch holes; each contiguous run is one
// seek-paying I/O) and sweep the unit of allocation/deletion from 4-KB
// files up to segment-sized extents. The copying alternative's bandwidth is
// 1/write-cost from the Section 3.5 simulator at the same utilization.
//
// Expected: at small units, steady-state threading collapses (every write
// lands in shattered file-sized holes) and copying wins; at segment-sized
// units, threading runs at nearly full bandwidth — which is exactly why
// Sprite LFS threads BETWEEN segments and copies WITHIN them.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/disk/disk_model.h"
#include "src/sim/sim.h"
#include "src/util/rng.h"

namespace {

constexpr uint32_t kBlockSize = 4096;
constexpr uint64_t kTotalBlocks = 64 * 1024;  // 256 MB
constexpr double kUtilization = 0.75;

// A minimal threaded-log allocator: blocks are free or live; the write head
// sweeps the disk filling free blocks in address order.
struct ThreadedLog {
  uint32_t file_blocks;
  std::vector<int32_t> owner;  // -1 free, else file id
  std::vector<std::vector<uint64_t>> files;
  uint64_t head = 0;
  lfs::DiskModel model{lfs::DiskModelParams::WrenIV(), kTotalBlocks * kBlockSize};

  explicit ThreadedLog(uint32_t fb) : file_blocks(fb), owner(kTotalBlocks, -1) {}

  // Writes one file into the next free blocks; returns modeled disk seconds.
  double WriteFile(int32_t id) {
    files.resize(std::max<size_t>(files.size(), id + 1));
    std::vector<uint64_t>& blocks = files[id];
    blocks.clear();
    double seconds = 0;
    uint32_t need = file_blocks;
    uint64_t scanned = 0;
    while (need > 0 && scanned < kTotalBlocks) {
      // Find the next free run at or after the head.
      while (scanned < kTotalBlocks && owner[head] != -1) {
        head = (head + 1) % kTotalBlocks;
        scanned++;
      }
      uint64_t run_start = head;
      uint32_t run = 0;
      while (scanned < kTotalBlocks && owner[head] == -1 && run < need) {
        owner[head] = id;
        blocks.push_back(head);
        head = (head + 1) % kTotalBlocks;
        scanned++;
        run++;
      }
      if (run > 0) {
        // One I/O per contiguous free run: this is where threading pays.
        seconds += model.Access(run_start * kBlockSize, uint64_t{run} * kBlockSize);
        need -= run;
      }
    }
    return seconds;
  }

  void DeleteFile(int32_t id) {
    for (uint64_t b : files[id]) {
      owner[b] = -1;
    }
    files[id].clear();
  }

  double AvgFreeExtentBlocks() const {
    uint64_t extents = 0;
    uint64_t free_blocks = 0;
    bool in_run = false;
    for (uint64_t b = 0; b < kTotalBlocks; b++) {
      if (owner[b] == -1) {
        free_blocks++;
        if (!in_run) {
          extents++;
          in_run = true;
        }
      } else {
        in_run = false;
      }
    }
    return extents == 0 ? 0 : static_cast<double>(free_blocks) / extents;
  }
};

}  // namespace

int main() {
  double raw_bw = lfs::DiskModelParams::WrenIV().transfer_bandwidth_bytes_per_sec;

  // The copying comparator: the LFS simulator's measured write cost at this
  // utilization gives the steady bandwidth fraction 1/wc, independent of
  // the allocation unit (the cleaner always moves whole segments).
  lfs::sim::SimConfig sim_cfg;
  sim_cfg.nsegments = 100;
  sim_cfg.blocks_per_segment = 64;
  sim_cfg.disk_utilization = kUtilization;
  sim_cfg.policy = lfs::sim::Policy::kCostBenefit;
  sim_cfg.pattern = lfs::sim::AccessPattern::kHotAndCold;
  sim_cfg.age_sort = true;
  sim_cfg.warmup_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(80, 15));
  sim_cfg.measure_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(40, 8));
  double copying_fraction = 1.0 / lfs::sim::CleaningSimulator(sim_cfg).Run().write_cost;

  lfs::bench::BenchReport report("fig2_threading");
  report.AddScalar("copying_bandwidth_fraction", copying_fraction);
  const int overwrite_rounds = static_cast<int>(lfs::bench::SmokePick(5, 1));

  std::printf("=== Figure 2 study: threaded log vs copying, 75%% utilization ===\n\n");
  std::printf("(steady state after 6 full disk overwrites per unit size)\n\n");
  std::printf("%-14s %18s %22s %18s\n", "write unit", "avg free extent",
              "threaded bandwidth", "copying (LFS)");
  for (uint32_t unit : {1u, 2u, 6u, 16u, 64u, 256u}) {
    lfs::Rng rng(31);
    ThreadedLog log(unit);
    const int nfiles = static_cast<int>(kUtilization * kTotalBlocks / unit);
    for (int f = 0; f < nfiles; f++) {
      log.WriteFile(f);
    }
    // Warm to steady state, then measure one overwrite round.
    for (int i = 0; i < overwrite_rounds * nfiles; i++) {
      int f = static_cast<int>(rng.NextBelow(nfiles));
      log.DeleteFile(f);
      log.WriteFile(f);
    }
    double seconds = 0;
    for (int i = 0; i < nfiles; i++) {
      int f = static_cast<int>(rng.NextBelow(nfiles));
      log.DeleteFile(f);
      seconds += log.WriteFile(f);
    }
    double bytes = static_cast<double>(nfiles) * unit * kBlockSize;
    std::printf("%5u KB %18.1f blk %20.0f%% %17.0f%%\n", unit * kBlockSize / 1024,
                log.AvgFreeExtentBlocks(), 100.0 * bytes / (seconds * raw_bw),
                100.0 * copying_fraction);
    char key[64];
    std::snprintf(key, sizeof(key), "threaded_bandwidth_fraction.unit%u", unit);
    report.AddScalar(key, bytes / (seconds * raw_bw));
  }
  std::printf("\nExpected: a crossover. With small write units the free space\n");
  std::printf("shatters into tiny holes and threading pays a seek per hole — worse\n");
  std::printf("than copying's cleaner tax. With segment-sized units (1 MB = the\n");
  std::printf("paper's segment), threading runs at nearly full bandwidth for free.\n");
  std::printf("Hence Sprite LFS's hybrid: thread BETWEEN segments, copy WITHIN.\n");
  report.Write();
  return 0;
}
