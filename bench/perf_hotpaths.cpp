// Hot-path microbenchmarks for the incremental selection index and the
// coalesced read path. Unlike the paper-figure benchmarks, these measure
// HOST wall-clock time (the quantities under test are in-memory CPU costs
// and I/O call-batching, not modeled disk service times) and emit a single
// machine-readable JSON object on stdout:
//
//   victim_selection: indexed SelectSegmentsToClean vs the reference
//     scan-and-sort, per pass, at 512 and 4096 segments and both policies —
//     the indexed cost should grow sublinearly in segment count while the
//     reference grows linearly.
//   sim: simulator overwrite steps/sec at 512 and 4096 segments (victim
//     picks ride the same index).
//   sequential_read: throughput reading a contiguous 32-MB file through one
//     bulk ReadAt (run-coalesced device I/O) vs a 4-KB-at-a-time ReadAt
//     loop, with the read cache disabled so every pass reaches the device.
//     Reported both as modeled Wren IV disk time (the repo's standard
//     measure — coalescing saves the per-request overheads) and as host
//     wall-clock over the raw in-memory backing.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/disk/mem_disk.h"
#include "src/disk/sim_disk.h"
#include "src/lfs/lfs.h"
#include "src/sim/sim.h"
#include "src/util/rng.h"

namespace lfs::bench {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct SelectionResult {
  uint32_t nsegments = 0;
  const char* policy = "";
  double indexed_us = 0.0;
  double reference_us = 0.0;
  uint32_t victims = 0;
};

// Builds a fragmented filesystem: ~70% full of one-segment files, each then
// truncated to a pseudo-random size so segment utilizations are spread out,
// and checkpointed so the segments are eligible victims.
SelectionResult BenchSelection(uint32_t target_segments, CleaningPolicy policy,
                               const char* policy_name) {
  LfsConfig cfg;
  cfg.block_size = 1024;
  cfg.segment_blocks = 16;
  cfg.max_inodes = 16384;
  cfg.clean_lo = 2;
  cfg.clean_hi = 4;
  cfg.reserve_segments = 3;
  cfg.write_buffer_blocks = 64;
  cfg.policy = policy;
  cfg.read_cache_blocks = 256;
  MemDisk disk(cfg.block_size, uint64_t{target_segments} * cfg.segment_blocks + 256);
  auto fs = LfsFileSystem::Mkfs(&disk, cfg).value();

  const uint32_t nsegs = fs->superblock().nsegments;
  const uint32_t nfiles = nsegs * 7 / 10;
  Rng rng(7);
  std::vector<uint8_t> content(16000, 0xAB);
  for (uint32_t i = 0; i < nfiles; i++) {
    std::string path = "/f" + std::to_string(i);
    if (!fs->WriteFile(path, content).ok()) {
      break;  // hit the capacity limit: enough population for the bench
    }
  }
  (void)fs->Sync();
  for (uint32_t i = 0; i < nfiles; i++) {
    auto ino = fs->Lookup("/f" + std::to_string(i));
    if (!ino.ok()) {
      break;
    }
    (void)fs->Truncate(ino.value(), rng.NextInRange(1024, 15 * 1024));
  }
  (void)fs->Sync();
  (void)fs->WriteCheckpoint();

  SelectionResult r;
  r.nsegments = nsegs;
  r.policy = policy_name;
  r.victims = static_cast<uint32_t>(fs->SelectSegmentsToClean(16).size());

  const int indexed_iters = static_cast<int>(SmokePick(2000, 200));
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < indexed_iters; i++) {
    (void)fs->SelectSegmentsToClean(16);
  }
  r.indexed_us = SecondsSince(t0) * 1e6 / indexed_iters;

  const int reference_iters = static_cast<int>(SmokePick(200, 20));
  uint64_t now = fs->clock().Now();
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reference_iters; i++) {
    (void)fs->SelectSegmentsToCleanReference(16, now);
  }
  r.reference_us = SecondsSince(t0) * 1e6 / reference_iters;
  return r;
}

double BenchSimStepsPerSec(uint32_t nsegments) {
  sim::SimConfig cfg;
  cfg.nsegments = nsegments;
  cfg.blocks_per_segment = 32;
  cfg.disk_utilization = 0.75;
  cfg.policy = sim::Policy::kCostBenefit;
  cfg.age_sort = true;
  sim::CleaningSimulator simulator(cfg);
  const uint64_t warmup = uint64_t{2} * simulator.nfiles();
  for (uint64_t i = 0; i < warmup; i++) {
    simulator.Step();
  }
  const uint64_t steps = SmokePick(200000, 20000);
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < steps; i++) {
    simulator.Step();
  }
  return static_cast<double>(steps) / SecondsSince(t0);
}

struct ReadResult {
  uint32_t block_size = 0;
  double coalesced_mb_s = 0.0;       // modeled Wren IV disk time
  double per_block_mb_s = 0.0;
  uint64_t coalesced_requests = 0;   // device reads issued per pass
  uint64_t per_block_requests = 0;
  double coalesced_wall_mb_s = 0.0;  // host wall-clock over MemDisk
  double per_block_wall_mb_s = 0.0;
};

ReadResult BenchSequentialRead(uint32_t block_size) {
  LfsConfig cfg;
  cfg.block_size = block_size;
  cfg.segment_blocks = 256;
  cfg.read_cache_blocks = 0;  // every pass must reach the device
  SimDisk disk(std::make_unique<MemDisk>(cfg.block_size, (96ull << 20) / block_size),
               DiskModelParams::WrenIV());
  auto fs = LfsFileSystem::Mkfs(&disk, cfg).value();

  const uint64_t file_bytes = 32ull << 20;
  std::vector<uint8_t> chunk(1 << 20);
  Rng rng(11);
  for (auto& b : chunk) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  InodeNum ino = fs->Create("/big").value();
  for (uint64_t off = 0; off < file_bytes; off += chunk.size()) {
    (void)fs->WriteAt(ino, off, chunk);
  }
  (void)fs->Sync();

  ReadResult r;
  r.block_size = block_size;
  const double mb = static_cast<double>(file_bytes) / (1 << 20);
  std::vector<uint8_t> buf(file_bytes);
  const uint32_t bs = cfg.block_size;
  const int passes = static_cast<int>(SmokePick(5, 2));

  disk.ResetStats();
  auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; p++) {
    (void)fs->ReadAt(ino, 0, buf);
  }
  r.coalesced_wall_mb_s = mb * passes / SecondsSince(t0);
  r.coalesced_mb_s = mb * passes / disk.stats().busy_sec;
  r.coalesced_requests = disk.stats().reads / passes;

  disk.ResetStats();
  t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; p++) {
    for (uint64_t off = 0; off < file_bytes; off += bs) {
      (void)fs->ReadAt(ino, off, std::span<uint8_t>(buf).subspan(off, bs));
    }
  }
  r.per_block_wall_mb_s = mb * passes / SecondsSince(t0);
  r.per_block_mb_s = mb * passes / disk.stats().busy_sec;
  r.per_block_requests = disk.stats().reads / passes;
  return r;
}

int Main() {
  std::vector<SelectionResult> selection;
  for (uint32_t segs : {512u, 4096u}) {
    selection.push_back(BenchSelection(segs, CleaningPolicy::kGreedy, "greedy"));
    selection.push_back(BenchSelection(segs, CleaningPolicy::kCostBenefit, "cost_benefit"));
  }
  double sim512 = BenchSimStepsPerSec(512);
  double sim4096 = BenchSimStepsPerSec(4096);
  std::vector<ReadResult> reads;
  for (uint32_t bs : {4096u, 1024u}) {
    reads.push_back(BenchSequentialRead(bs));
  }

  printf("{\n  \"bench\": \"perf_hotpaths\",\n  \"victim_selection\": [\n");
  for (size_t i = 0; i < selection.size(); i++) {
    const SelectionResult& s = selection[i];
    printf("    {\"nsegments\": %u, \"policy\": \"%s\", \"victims_per_pass\": %u, "
           "\"indexed_us_per_pass\": %.3f, \"reference_us_per_pass\": %.3f, "
           "\"speedup\": %.2f}%s\n",
           s.nsegments, s.policy, s.victims, s.indexed_us, s.reference_us,
           s.reference_us / s.indexed_us, i + 1 < selection.size() ? "," : "");
  }
  printf("  ],\n  \"sim\": [\n");
  printf("    {\"nsegments\": 512, \"steps_per_sec\": %.0f},\n", sim512);
  printf("    {\"nsegments\": 4096, \"steps_per_sec\": %.0f}\n", sim4096);
  printf("  ],\n");
  printf("  \"sequential_read\": [\n");
  for (size_t i = 0; i < reads.size(); i++) {
    const ReadResult& read = reads[i];
    printf("    {\"file_mb\": 32, \"block_size\": %u, \"coalesced_mb_per_s\": %.2f, "
           "\"per_block_mb_per_s\": %.2f, \"speedup\": %.2f, "
           "\"coalesced_requests_per_pass\": %llu, \"per_block_requests_per_pass\": %llu, "
           "\"coalesced_wall_mb_per_s\": %.1f, \"per_block_wall_mb_per_s\": %.1f}%s\n",
           read.block_size, read.coalesced_mb_s, read.per_block_mb_s,
           read.coalesced_mb_s / read.per_block_mb_s,
           static_cast<unsigned long long>(read.coalesced_requests),
           static_cast<unsigned long long>(read.per_block_requests),
           read.coalesced_wall_mb_s, read.per_block_wall_mb_s,
           i + 1 < reads.size() ? "," : "");
  }
  printf("  ]\n");
  printf("}\n");

  // The stable-schema report CI diffs. Modeled/count metrics are
  // deterministic; host wall-clock measurements carry the "wall." prefix so
  // schema comparisons can skip them.
  BenchReport report("perf_hotpaths");
  const uint32_t targets[2] = {512u, 4096u};
  for (size_t i = 0; i < selection.size(); i++) {
    const SelectionResult& s = selection[i];
    std::string p = "selection." + std::string(s.policy) + ".s" +
                    std::to_string(targets[i / 2]) + ".";
    report.AddScalar(p + "victims_per_pass", s.victims);
    report.AddScalar("wall." + p + "indexed_us_per_pass", s.indexed_us);
    report.AddScalar("wall." + p + "reference_us_per_pass", s.reference_us);
    report.AddScalar("wall." + p + "speedup", s.reference_us / s.indexed_us);
  }
  report.AddScalar("wall.sim.steps_per_sec.s512", sim512);
  report.AddScalar("wall.sim.steps_per_sec.s4096", sim4096);
  for (const ReadResult& read : reads) {
    std::string p = "read.bs" + std::to_string(read.block_size) + ".";
    report.AddScalar(p + "coalesced_mb_per_s", read.coalesced_mb_s);
    report.AddScalar(p + "per_block_mb_per_s", read.per_block_mb_s);
    report.AddScalar(p + "coalesced_requests_per_pass",
                     static_cast<double>(read.coalesced_requests));
    report.AddScalar(p + "per_block_requests_per_pass",
                     static_cast<double>(read.per_block_requests));
    report.AddScalar("wall." + p + "coalesced_mb_per_s", read.coalesced_wall_mb_s);
    report.AddScalar("wall." + p + "per_block_mb_per_s", read.per_block_wall_mb_s);
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace lfs::bench

int main() { return lfs::bench::Main(); }
