// Block-cache effectiveness on the Figure 8 (small-file) workload: create a
// working set of 4-KB files, then re-read it repeatedly. With the unified
// write-back cache at paper-scale capacity (the Sprite machines dedicated
// megabytes of main memory to the file cache, Section 5.1) the re-read
// passes are served from memory and the device sees an order of magnitude
// fewer reads; without it every pass pays device reads.
//
// Deterministic and single-threaded: all numbers come from the modeled disk
// and the cache's own counters, so the emitted JSON is byte-stable and safe
// for the CI bench-regression gate. Also sweeps cache capacity and reports
// hit rate at each size (the EXPERIMENTS.md cache table).

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/cached_device.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

const uint64_t kFileCount = SmokePick(2000, 400);
constexpr uint32_t kFileBytes = 4 * 1024;  // one block per file at 4-KB blocks
const uint64_t kRereadPasses = SmokePick(16, 6);
const uint64_t kDiskBytes = SmokePick(192, 64) * 1024 * 1024;

// Paper-scale cache: comfortably larger than the working set, the regime the
// paper assumes when it says "large file caches ... alter the disk workload
// seen by the filesystem" (Section 1).
constexpr uint64_t kPaperCacheBlocks = 4096;  // 16 MB of 4-KB blocks

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "cache_reread: %s\n", st.ToString().c_str());
    std::abort();
  }
}

LfsConfig BenchConfig() {
  LfsConfig cfg = PaperLfsConfig();
  // Shrink the front-end's internal block-address read cache so the device-
  // level cache under test is what serves (or fails to serve) re-reads.
  cfg.read_cache_blocks = 16;
  return cfg;
}

struct RunResult {
  uint64_t warm_device_reads = 0;    // device reads during the re-read passes
  uint64_t total_device_reads = 0;   // including the cold pass
  double reread_busy_sec = 0;        // modeled disk time of the re-read passes
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

// Runs the create + (1 cold + kRereadPasses warm) read workload. When
// `cache_blocks` is nonzero the filesystem sits on a CachedBlockDevice of
// that capacity; zero means the filesystem talks to the modeled disk
// directly.
RunResult RunOnce(uint64_t cache_blocks) {
  LfsConfig cfg = BenchConfig();
  uint64_t blocks = kDiskBytes / cfg.block_size;
  SimDisk disk(std::make_unique<MemDisk>(cfg.block_size, blocks), DiskModelParams::WrenIV());

  std::unique_ptr<cache::CachedBlockDevice> cached;
  BlockDevice* dev = &disk;
  if (cache_blocks > 0) {
    cache::CachedDeviceOptions opts;
    opts.capacity_blocks = cache_blocks;
    opts.shards = 8;
    cached = std::make_unique<cache::CachedBlockDevice>(&disk, opts);
    dev = cached.get();
  }

  auto fs_r = LfsFileSystem::Mkfs(dev, cfg);
  Check(fs_r.status());
  auto fs = std::move(fs_r).value();

  std::vector<InodeNum> inos(kFileCount);
  std::vector<uint8_t> content(kFileBytes, 0x42);
  for (uint64_t i = 0; i < kFileCount; i++) {
    auto ino = fs->Create("/f" + std::to_string(i));
    Check(ino.status());
    inos[i] = *ino;
    Check(fs->WriteAt(inos[i], 0, content));
  }
  Check(fs->Sync());
  if (cached) {
    Check(cached->Flush());  // writes reach the platter; reads start cold-ish
  }

  RunResult res;
  std::vector<uint8_t> buf(kFileBytes);
  DiskStats before_all = disk.stats();
  // Cold pass: populates the cache (or doesn't, in the uncached run).
  for (uint64_t i = 0; i < kFileCount; i++) {
    Check(fs->ReadAt(inos[i], 0, buf).status());
  }
  DiskStats before_warm = disk.stats();
  for (uint64_t pass = 0; pass < kRereadPasses; pass++) {
    for (uint64_t i = 0; i < kFileCount; i++) {
      Check(fs->ReadAt(inos[i], 0, buf).status());
    }
  }
  DiskStats after = disk.stats();
  res.warm_device_reads = after.reads - before_warm.reads;
  res.total_device_reads = after.reads - before_all.reads;
  res.reread_busy_sec = after.busy_sec - before_warm.busy_sec;
  if (cached) {
    res.cache_hits = cached->cache().stats().hits;
    res.cache_misses = cached->cache().stats().misses;
  }
  Check(fs->Unmount());
  return res;
}

}  // namespace

int main() {
  BenchReport report("cache_reread");

  RunResult uncached = RunOnce(0);
  RunResult cached = RunOnce(kPaperCacheBlocks);

  // The headline number: device reads during the re-read phase, with and
  // without the cache. The acceptance bar is a >= 10x reduction.
  double reduction = cached.warm_device_reads == 0
                         ? static_cast<double>(uncached.warm_device_reads)
                         : static_cast<double>(uncached.warm_device_reads) /
                               static_cast<double>(cached.warm_device_reads);
  double hit_rate = static_cast<double>(cached.cache_hits) /
                    static_cast<double>(cached.cache_hits + cached.cache_misses);

  std::printf("=== Block cache on the Fig. 8 small-file re-read workload ===\n\n");
  std::printf("%" PRIu64 " files x %u bytes, %" PRIu64 " re-read passes\n",
              kFileCount, kFileBytes, kRereadPasses);
  std::printf("%-28s %14s %14s\n", "", "uncached", "cached");
  std::printf("%-28s %14" PRIu64 " %14" PRIu64 "\n", "device reads (re-read)",
              uncached.warm_device_reads, cached.warm_device_reads);
  std::printf("%-28s %14" PRIu64 " %14" PRIu64 "\n", "device reads (total)",
              uncached.total_device_reads, cached.total_device_reads);
  std::printf("%-28s %14.3f %14.3f\n", "modeled re-read disk sec",
              uncached.reread_busy_sec, cached.reread_busy_sec);
  std::printf("\nre-read device-read reduction: %.1fx (cache hit rate %.3f)\n",
              reduction, hit_rate);
  if (reduction < 10.0) {
    std::fprintf(stderr, "cache_reread: reduction %.1fx below the 10x bar\n", reduction);
    return 1;
  }

  report.AddScalar("cache.files", static_cast<double>(kFileCount));
  report.AddScalar("cache.reread_passes", static_cast<double>(kRereadPasses));
  report.AddScalar("cache.capacity_blocks", static_cast<double>(kPaperCacheBlocks));
  report.AddScalar("cache.uncached_reread_device_reads",
                   static_cast<double>(uncached.warm_device_reads));
  report.AddScalar("cache.cached_reread_device_reads",
                   static_cast<double>(cached.warm_device_reads));
  report.AddScalar("cache.read_reduction", reduction);
  report.AddScalar("cache.hits", static_cast<double>(cached.cache_hits));
  report.AddScalar("cache.misses", static_cast<double>(cached.cache_misses));
  report.AddScalar("cache.hit_rate", hit_rate);
  report.AddScalar("cache.uncached_reread_busy_sec", uncached.reread_busy_sec);
  report.AddScalar("cache.cached_reread_busy_sec", cached.reread_busy_sec);

  // Capacity sweep: hit rate vs cache size (EXPERIMENTS.md table). The knee
  // sits where capacity crosses the working set.
  std::printf("\n%-18s %12s %16s %12s\n", "capacity (blocks)", "hit rate",
              "re-read dev reads", "reduction");
  const uint64_t sweep[] = {256, 512, 1024, 2048, 4096};
  for (uint64_t cap : sweep) {
    RunResult r = RunOnce(cap);
    double hr = static_cast<double>(r.cache_hits) /
                static_cast<double>(r.cache_hits + r.cache_misses);
    double red = r.warm_device_reads == 0
                     ? static_cast<double>(uncached.warm_device_reads)
                     : static_cast<double>(uncached.warm_device_reads) /
                           static_cast<double>(r.warm_device_reads);
    std::printf("%-18" PRIu64 " %12.3f %16" PRIu64 " %11.1fx\n", cap, hr,
                r.warm_device_reads, red);
    std::string key = "sweep.cap_" + std::to_string(cap);
    report.AddScalar(key + ".hit_rate", hr);
    report.AddScalar(key + ".reread_device_reads",
                     static_cast<double>(r.warm_device_reads));
  }

  report.Write();
  return 0;
}
