// Figure 7: write cost versus disk capacity utilization, greedy versus
// cost-benefit, for the hot-and-cold access pattern.
//
// Expected shape (paper): cost-benefit is substantially better than greedy,
// particularly above 60% utilization (up to ~50% lower write cost), and a
// cost-benefit LFS outperforms even an improved Unix FFS (write cost 4) at
// relatively high utilizations.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/sim.h"

using lfs::sim::AccessPattern;
using lfs::sim::CleaningSimulator;
using lfs::sim::FormulaWriteCost;
using lfs::sim::Policy;
using lfs::sim::SimConfig;
using lfs::sim::SimResult;

namespace {

SimConfig Base(double util, Policy policy) {
  SimConfig cfg;
  cfg.nsegments = 100;
  cfg.blocks_per_segment = 64;
  cfg.disk_utilization = util;
  cfg.pattern = AccessPattern::kHotAndCold;
  cfg.age_sort = true;
  cfg.policy = policy;
  cfg.warmup_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(120, 20));
  cfg.measure_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(60, 10));
  cfg.seed = 7;
  return cfg;
}

}  // namespace

int main() {
  lfs::bench::BenchReport report("fig7_costbenefit_sim");
  std::printf("=== Figure 7: write cost, greedy vs cost-benefit (hot-and-cold) ===\n\n");
  std::printf("%-6s %12s %12s %14s %10s\n", "util", "no-variance", "LFS greedy",
              "LFS cost-benefit", "saving");
  for (double util : {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.93}) {
    SimResult greedy = CleaningSimulator(Base(util, Policy::kGreedy)).Run();
    SimResult cb = CleaningSimulator(Base(util, Policy::kCostBenefit)).Run();
    double saving = greedy.write_cost > 0
                        ? (1.0 - cb.write_cost / greedy.write_cost) * 100.0
                        : 0.0;
    std::printf("%-6.2f %12.2f %12.2f %14.2f %9.0f%%\n", util, FormulaWriteCost(util),
                greedy.write_cost, cb.write_cost, saving);
    char key[48];
    std::snprintf(key, sizeof(key), "greedy.write_cost.u%02d", static_cast<int>(util * 100));
    report.AddScalar(key, greedy.write_cost);
    std::snprintf(key, sizeof(key), "costbenefit.write_cost.u%02d",
                  static_cast<int>(util * 100));
    report.AddScalar(key, cb.write_cost);
  }
  std::printf("\nReference: FFS today ~ cost 10-20; FFS improved ~ cost 4.\n");
  std::printf("Expected: cost-benefit below greedy everywhere, with the gap widest\n");
  std::printf("at utilizations above 60%%; cost-benefit stays below FFS improved (4)\n");
  std::printf("well past 70%% utilization.\n");
  report.Write();
  return 0;
}
