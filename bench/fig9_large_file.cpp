// Figure 9: large-file performance. A 100-MB file is written sequentially,
// read sequentially, written randomly (100 MB of 4-KB random-offset
// writes), read randomly, and finally re-read sequentially; the bandwidth
// of each phase is reported for both filesystems.
//
// Expected shape (paper): LFS has higher write bandwidth in all cases —
// dramatically so for random writes (they become sequential log writes) —
// and the same read bandwidth, EXCEPT for the sequential re-read of a
// randomly written file, where LFS pays seeks and FFS wins (temporal vs
// logical locality, Section 5.1).

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

const uint64_t kFileBytes = SmokePick(100, 8) * 1024 * 1024;
const uint64_t kDiskBytes = SmokePick(300, 48) * 1024 * 1024;
constexpr uint32_t kIoUnit = 8 * 1024;        // sequential access unit
constexpr uint32_t kRandomUnit = 4 * 1024;    // random access unit

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "fig9: %s\n", st.ToString().c_str());
    std::abort();
  }
}

struct Phase {
  const char* name;
  double lfs_kbps = 0;
  double ffs_kbps = 0;
};

// Runs one phase and returns modeled bandwidth in KB/s.
template <typename ElapsedFn>
double RunPhase(SimDisk* disk, const CpuModel& cpu, ElapsedFn elapsed_fn, uint64_t ops,
                uint64_t bytes, const std::function<void()>& body) {
  DiskStats before = disk->stats();
  body();
  DiskStats delta = disk->stats() - before;
  double elapsed = elapsed_fn(cpu.Time(ops, bytes), delta.busy_sec);
  return static_cast<double>(bytes) / 1024.0 / elapsed;
}

}  // namespace

int main() {
  CpuModel cpu;
  std::vector<uint8_t> chunk(kIoUnit, 0x5C);
  std::vector<uint8_t> rchunk(kRandomUnit, 0xC5);
  std::vector<uint8_t> buf(kIoUnit);
  const uint64_t seq_ops = kFileBytes / kIoUnit;
  const uint64_t rand_ops = kFileBytes / kRandomUnit;

  // Precomputed random offsets (same sequence for both filesystems).
  std::vector<uint64_t> offsets(rand_ops);
  {
    Rng rng(2024);
    for (auto& off : offsets) {
      off = rng.NextBelow(kFileBytes / kRandomUnit) * kRandomUnit;
    }
  }

  Phase phases[5] = {{"write seq"}, {"read seq"}, {"write rand"}, {"read rand"},
                     {"reread seq"}};
  BenchReport report("fig9_large_file");

  // --- Sprite LFS ---------------------------------------------------------------
  {
    LfsInstance inst = MakeLfs(kDiskBytes, PaperLfsConfig());
    auto ino_r = inst.fs->Create("/big");
    Check(ino_r.status());
    InodeNum ino = *ino_r;
    inst.disk->ResetStats();

    phases[0].lfs_kbps = RunPhase(inst.disk.get(), cpu, LfsElapsed, seq_ops, kFileBytes, [&] {
      for (uint64_t off = 0; off < kFileBytes; off += kIoUnit) {
        Check(inst.fs->WriteAt(ino, off, chunk));
      }
      Check(inst.fs->Sync());
    });
    phases[1].lfs_kbps = RunPhase(inst.disk.get(), cpu, LfsElapsed, seq_ops, kFileBytes, [&] {
      for (uint64_t off = 0; off < kFileBytes; off += kIoUnit) {
        Check(inst.fs->ReadAt(ino, off, buf).status());
      }
    });
    phases[2].lfs_kbps = RunPhase(inst.disk.get(), cpu, LfsElapsed, rand_ops, kFileBytes, [&] {
      for (uint64_t off : offsets) {
        Check(inst.fs->WriteAt(ino, off, rchunk));
      }
      Check(inst.fs->Sync());
    });
    phases[3].lfs_kbps = RunPhase(inst.disk.get(), cpu, LfsElapsed, rand_ops, kFileBytes, [&] {
      std::vector<uint8_t> rbuf(kRandomUnit);
      for (uint64_t off : offsets) {
        Check(inst.fs->ReadAt(ino, off, rbuf).status());
      }
    });
    phases[4].lfs_kbps = RunPhase(inst.disk.get(), cpu, LfsElapsed, seq_ops, kFileBytes, [&] {
      for (uint64_t off = 0; off < kFileBytes; off += kIoUnit) {
        Check(inst.fs->ReadAt(ino, off, buf).status());
      }
    });
    report.AddLfs("lfs.", inst);
  }

  // --- Unix FFS --------------------------------------------------------------------
  {
    FfsInstance inst = MakeFfs(kDiskBytes, 4096);
    auto ino_r = inst.fs->Create("/big");
    Check(ino_r.status());
    InodeNum ino = *ino_r;
    inst.disk->ResetStats();

    phases[0].ffs_kbps = RunPhase(inst.disk.get(), cpu, FfsElapsed, seq_ops, kFileBytes, [&] {
      for (uint64_t off = 0; off < kFileBytes; off += kIoUnit) {
        Check(inst.fs->WriteAt(ino, off, chunk));
      }
    });
    phases[1].ffs_kbps = RunPhase(inst.disk.get(), cpu, FfsElapsed, seq_ops, kFileBytes, [&] {
      for (uint64_t off = 0; off < kFileBytes; off += kIoUnit) {
        Check(inst.fs->ReadAt(ino, off, buf).status());
      }
    });
    phases[2].ffs_kbps = RunPhase(inst.disk.get(), cpu, FfsElapsed, rand_ops, kFileBytes, [&] {
      for (uint64_t off : offsets) {
        Check(inst.fs->WriteAt(ino, off, rchunk));
      }
    });
    phases[3].ffs_kbps = RunPhase(inst.disk.get(), cpu, FfsElapsed, rand_ops, kFileBytes, [&] {
      std::vector<uint8_t> rbuf(kRandomUnit);
      for (uint64_t off : offsets) {
        Check(inst.fs->ReadAt(ino, off, rbuf).status());
      }
    });
    phases[4].ffs_kbps = RunPhase(inst.disk.get(), cpu, FfsElapsed, seq_ops, kFileBytes, [&] {
      for (uint64_t off = 0; off < kFileBytes; off += kIoUnit) {
        Check(inst.fs->ReadAt(ino, off, buf).status());
      }
    });
    report.AddFfs("ffs.", inst);
  }

  std::printf("=== Figure 9: 100-MB file bandwidth per phase (KB/sec) ===\n\n");
  std::printf("%-12s %12s %12s %10s\n", "phase", "Sprite LFS", "Unix FFS", "LFS/FFS");
  for (const Phase& p : phases) {
    std::printf("%-12s %12.0f %12.0f %9.2fx\n", p.name, p.lfs_kbps, p.ffs_kbps,
                p.lfs_kbps / p.ffs_kbps);
  }
  std::printf("\nExpected shape (paper): LFS wins every write phase (hugely for\n");
  std::printf("random writes), ties the sequential read and random read, and LOSES\n");
  std::printf("the final sequential re-read of the randomly-written file — the one\n");
  std::printf("case where FFS's logical locality beats LFS's temporal locality.\n");

  const char* keys[5] = {"write_seq", "read_seq", "write_rand", "read_rand", "reread_seq"};
  for (int i = 0; i < 5; i++) {
    report.AddScalar(std::string("lfs.") + keys[i] + "_kbps", phases[i].lfs_kbps);
    report.AddScalar(std::string("ffs.") + keys[i] + "_kbps", phases[i].ffs_kbps);
  }
  report.Write();
  return 0;
}
