// Figure 1: a comparison between Sprite LFS and Unix FFS — the paper's
// opening illustration. Both filesystems create dir1/file1 and dir2/file2;
// we trace every block write each one issues and print the traces side by
// side.
//
// Expected shape (paper's caption): "Unix FFS requires ten non-sequential
// writes for the new information (the inodes for the new files are each
// written twice to ease recovery from crashes), while Sprite LFS performs
// the operations in a single large write" — one sequential partial-segment
// I/O containing data blocks, inodes, and the directory blocks, plus the
// inode-map blocks at the checkpoint.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/disk/mem_disk.h"
#include "src/ffs/ffs.h"
#include "src/lfs/lfs.h"

using namespace lfs;

namespace {

// Records every write (address, length) passing through.
class TracingDisk : public BlockDevice {
 public:
  explicit TracingDisk(std::unique_ptr<BlockDevice> backing) : backing_(std::move(backing)) {}

  struct WriteRecord {
    BlockNo block;
    uint64_t count;
  };

  uint32_t block_size() const override { return backing_->block_size(); }
  uint64_t block_count() const override { return backing_->block_count(); }
  Status Read(BlockNo block, uint64_t count, std::span<uint8_t> out) override {
    return backing_->Read(block, count, out);
  }
  Status Write(BlockNo block, uint64_t count, std::span<const uint8_t> data) override {
    if (tracing) {
      writes.push_back({block, count});
    }
    return backing_->Write(block, count, data);
  }
  Status Flush() override { return backing_->Flush(); }

  bool tracing = false;
  std::vector<WriteRecord> writes;

 private:
  std::unique_ptr<BlockDevice> backing_;
};

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

struct TraceTotals {
  uint64_t write_ops = 0;
  uint64_t blocks = 0;
  uint64_t seeks = 0;
};

TraceTotals PrintTrace(const char* title, const TracingDisk& disk, uint64_t seeks_baseline) {
  std::printf("%s\n", title);
  uint64_t prev_end = seeks_baseline;
  TraceTotals t;
  for (const auto& w : disk.writes) {
    bool seek = w.block != prev_end;
    std::printf("  write %4llu..%-4llu (%llu block%s)%s\n",
                static_cast<unsigned long long>(w.block),
                static_cast<unsigned long long>(w.block + w.count - 1),
                static_cast<unsigned long long>(w.count), w.count == 1 ? "" : "s",
                seek ? "   <- seek" : "");
    t.seeks += seek ? 1 : 0;
    t.blocks += w.count;
    prev_end = w.block + w.count;
  }
  t.write_ops = disk.writes.size();
  std::printf("  => %llu write operations, %llu blocks, %llu seek%s\n\n",
              static_cast<unsigned long long>(t.write_ops),
              static_cast<unsigned long long>(t.blocks),
              static_cast<unsigned long long>(t.seeks), t.seeks == 1 ? "" : "s");
  return t;
}

}  // namespace

int main() {
  std::printf("=== Figure 1: creating dir1/file1 and dir2/file2 ===\n\n");
  std::vector<uint8_t> one_block(4096, 0xF1);
  TraceTotals lfs_totals;
  TraceTotals ffs_totals;

  {
    LfsConfig cfg;
    auto tdisk = std::make_unique<TracingDisk>(std::make_unique<MemDisk>(4096, 16384));
    TracingDisk* trace = tdisk.get();
    auto fs = std::move(LfsFileSystem::Mkfs(trace, cfg)).value();
    trace->tracing = true;
    Check(fs->Mkdir("/dir1"), "mkdir");
    Check(fs->Mkdir("/dir2"), "mkdir");
    Check(fs->WriteFile("/dir1/file1", one_block), "file1");
    Check(fs->WriteFile("/dir2/file2", one_block), "file2");
    Check(fs->Sync(), "sync");
    // The trace includes the fixed-position checkpoint-region write (the one
    // seek): it is part of LFS's story too.
    lfs_totals =
        PrintTrace("Sprite LFS (log write: data + inodes + directories together):",
                   *trace, trace->writes.empty() ? 0 : trace->writes.front().block);
  }

  {
    auto tdisk = std::make_unique<TracingDisk>(std::make_unique<MemDisk>(4096, 16384));
    TracingDisk* trace = tdisk.get();
    auto fs = std::move(ffs::FfsFileSystem::Mkfs(trace, 4096)).value();
    trace->tracing = true;
    Check(fs->Mkdir("/dir1"), "mkdir");
    Check(fs->Mkdir("/dir2"), "mkdir");
    Check(fs->WriteFile("/dir1/file1", one_block), "file1");
    Check(fs->WriteFile("/dir2/file2", one_block), "file2");
    ffs_totals =
        PrintTrace("Unix FFS (each inode written twice; everything at fixed places):",
                   *trace, trace->writes.empty() ? 0 : trace->writes.front().block);
  }

  std::printf("Expected shape (paper's caption): FFS needs ~ten small non-sequential\n");
  std::printf("writes; LFS performs the same operations in a couple of large\n");
  std::printf("sequential log writes (plus its fixed-position checkpoint region).\n");

  lfs::bench::BenchReport report("fig1_layout");
  report.AddScalar("lfs.write_ops", static_cast<double>(lfs_totals.write_ops));
  report.AddScalar("lfs.blocks", static_cast<double>(lfs_totals.blocks));
  report.AddScalar("lfs.seeks", static_cast<double>(lfs_totals.seeks));
  report.AddScalar("ffs.write_ops", static_cast<double>(ffs_totals.write_ops));
  report.AddScalar("ffs.blocks", static_cast<double>(ffs_totals.blocks));
  report.AddScalar("ffs.seeks", static_cast<double>(ffs_totals.seeks));
  report.Write();
  return 0;
}
