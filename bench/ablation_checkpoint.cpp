// Ablation: checkpoint interval (Section 4.1). "A long interval between
// checkpoints reduces the overhead of writing the checkpoints but increases
// the time needed to roll forward during recovery; a short checkpoint
// interval improves recovery time but increases the cost of normal
// operation." The paper blames Sprite's 30-second interval for the 13%
// metadata share of log bandwidth in Table 4.
//
// We sweep the (data-driven) checkpoint interval over a fixed workload and
// report both sides of the tradeoff: the metadata share of log bandwidth,
// and the modeled roll-forward time after a crash at the end of the run.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/disk/crash_disk.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "ablation: %s\n", st.ToString().c_str());
    std::abort();
  }
}

struct Outcome {
  double metadata_share = 0;  // imap+usage+inode+dirlog / total log bandwidth
  double recovery_sec = 0;
  uint64_t checkpoints = 0;
};

Outcome RunOne(uint64_t interval_bytes) {
  LfsConfig cfg = PaperLfsConfig();
  cfg.checkpoint_interval_bytes = interval_bytes;
  const uint64_t disk_bytes = 256ull * 1024 * 1024;
  auto sim = std::make_unique<SimDisk>(
      std::make_unique<MemDisk>(cfg.block_size, disk_bytes / cfg.block_size),
      DiskModelParams::WrenIV());
  SimDisk* sim_ptr = sim.get();
  CrashDisk crash(std::move(sim));
  auto fs_r = LfsFileSystem::Mkfs(&crash, cfg);
  Check(fs_r.status());
  std::unique_ptr<LfsFileSystem> fs = std::move(fs_r).value();
  Check(fs->Mkdir("/d"));
  Check(fs->Sync());
  fs->mutable_stats() = LfsStats{};

  std::vector<uint8_t> content(16 * 1024, 0x22);
  const int nfiles = static_cast<int>(SmokePick(3000, 400));
  for (int i = 0; i < nfiles; i++) {
    Check(fs->WriteFile("/d/f" + std::to_string(i), content));
  }

  const LfsStats& st = fs->stats();
  Outcome out;
  uint64_t metadata = st.log_bytes_by_kind[static_cast<size_t>(BlockKind::kInodeBlock)] +
                      st.log_bytes_by_kind[static_cast<size_t>(BlockKind::kImapChunk)] +
                      st.log_bytes_by_kind[static_cast<size_t>(BlockKind::kUsageChunk)] +
                      st.log_bytes_by_kind[static_cast<size_t>(BlockKind::kDirLog)];
  out.metadata_share = static_cast<double>(metadata) / st.total_log_written();
  out.checkpoints = st.checkpoints;

  // Crash at the end; measure roll-forward during remount.
  crash.CrashNow();
  fs.reset();
  crash.ClearCrash();
  DiskStats before = sim_ptr->stats();
  auto remount = LfsFileSystem::Mount(&crash, cfg);
  Check(remount.status());
  out.recovery_sec = (sim_ptr->stats() - before).busy_sec;
  return out;
}

}  // namespace

int main() {
  BenchReport report("ablation_checkpoint");
  std::printf("=== Ablation: checkpoint interval tradeoff (Section 4.1) ===\n\n");
  std::printf("(3000 x 16-KB file creates; metadata share of log bandwidth vs\n");
  std::printf(" roll-forward time after an end-of-run crash)\n\n");
  std::printf("%-16s %12s %18s %16s\n", "ckpt interval", "checkpoints", "metadata share",
              "recovery (s)");
  struct Row {
    const char* label;
    uint64_t bytes;
  };
  for (Row row : std::vector<Row>{{"1 MB", 1ull << 20},
                                  {"4 MB", 4ull << 20},
                                  {"16 MB", 16ull << 20},
                                  {"none (Sync only)", 0}}) {
    Outcome o = RunOne(row.bytes);
    std::printf("%-16s %12llu %17.1f%% %16.2f\n", row.label,
                static_cast<unsigned long long>(o.checkpoints), o.metadata_share * 100,
                o.recovery_sec);
    char key[64];
    std::snprintf(key, sizeof(key), "metadata_share.ckpt%llumb",
                  static_cast<unsigned long long>(row.bytes >> 20));
    report.AddScalar(key, o.metadata_share);
    std::snprintf(key, sizeof(key), "recovery_sec.ckpt%llumb",
                  static_cast<unsigned long long>(row.bytes >> 20));
    report.AddScalar(key, o.recovery_sec);
  }
  std::printf("\nExpected: short intervals inflate the metadata share of the log (the\n");
  std::printf("paper's Table 4 effect) but keep recovery fast; long/no intervals do\n");
  std::printf("the reverse. This is exactly the tradeoff Section 4.1 describes.\n");
  report.Write();
  return 0;
}
