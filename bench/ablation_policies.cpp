// Ablation: cleaning policy and age-sorting on the REAL filesystem (not the
// abstract simulator): greedy vs cost-benefit, with and without sorting
// live blocks by age, under a hot-and-cold overwrite workload at several
// disk utilizations. This validates that the policy conclusions from
// Section 3.5's simulator carry over to the full system with inodes,
// directories, and metadata in the log.
//
// Expected shape: cost-benefit + age-sort gives the lowest write cost at
// high utilization; the gap shrinks at low utilization where cleaning is
// nearly free for everyone.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/rng.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "ablation: %s\n", st.ToString().c_str());
    std::abort();
  }
}

double RunOne(CleaningPolicy policy, bool age_sort, double utilization) {
  LfsConfig cfg;
  cfg.block_size = 4096;
  cfg.segment_blocks = 64;  // smaller segments -> more cleaning decisions
  cfg.policy = policy;
  cfg.age_sort = age_sort;
  cfg.clean_lo = 8;
  cfg.clean_hi = 12;
  cfg.segments_per_pass = 4;
  cfg.reserve_segments = 3;
  cfg.checkpoint_interval_bytes = 4 * 1024 * 1024;
  const uint64_t disk_bytes = 48ull * 1024 * 1024;
  LfsInstance inst = MakeLfs(disk_bytes, cfg);

  Rng rng(99);
  const uint64_t file_bytes = 32 * 1024;
  uint64_t usable = disk_bytes - 4 * 1024 * 1024;  // superblock/reserve slack
  int nfiles = static_cast<int>(utilization * usable / file_bytes);
  std::vector<uint8_t> content(file_bytes, 0x11);
  Check(inst.fs->Mkdir("/d"));
  for (int i = 0; i < nfiles; i++) {
    Check(inst.fs->WriteFile("/d/f" + std::to_string(i), content));
  }
  Check(inst.fs->Sync());
  inst.fs->mutable_stats() = LfsStats{};

  // Hot-and-cold churn: 90% of the rewrites hit 10% of the files.
  int hot = std::max(1, nfiles / 10);
  const int churn_steps = nfiles * static_cast<int>(SmokePick(12, 3));
  for (int step = 0; step < churn_steps; step++) {
    int idx = rng.NextBool(0.9) ? static_cast<int>(rng.NextBelow(hot))
                                : static_cast<int>(hot + rng.NextBelow(nfiles - hot));
    std::string path = "/d/f" + std::to_string(idx);
    Check(inst.fs->Unlink(path));
    Check(inst.fs->WriteFile(path, content));
  }
  Check(inst.fs->Sync());
  return inst.fs->stats().WriteCost();
}

}  // namespace

int main() {
  BenchReport report("ablation_policies");
  std::printf("=== Ablation: cleaning policy x age-sort on the real filesystem ===\n\n");
  std::printf("(hot-and-cold whole-file churn; write cost, lower is better)\n\n");
  std::printf("%-6s %16s %16s %16s %16s\n", "util", "greedy", "greedy+sort", "cost-benefit",
              "cost-benefit+sort");
  for (double util : {0.45, 0.65, 0.80}) {
    double g = RunOne(CleaningPolicy::kGreedy, false, util);
    double gs = RunOne(CleaningPolicy::kGreedy, true, util);
    double cb = RunOne(CleaningPolicy::kCostBenefit, false, util);
    double cbs = RunOne(CleaningPolicy::kCostBenefit, true, util);
    std::printf("%-6.2f %16.2f %16.2f %16.2f %16.2f\n", util, g, gs, cb, cbs);
    char key[64];
    int u = static_cast<int>(util * 100);
    std::snprintf(key, sizeof(key), "greedy.write_cost.u%02d", u);
    report.AddScalar(key, g);
    std::snprintf(key, sizeof(key), "greedy_sort.write_cost.u%02d", u);
    report.AddScalar(key, gs);
    std::snprintf(key, sizeof(key), "costbenefit.write_cost.u%02d", u);
    report.AddScalar(key, cb);
    std::snprintf(key, sizeof(key), "costbenefit_sort.write_cost.u%02d", u);
    report.AddScalar(key, cbs);
  }
  std::printf("\nExpected: cost-benefit+sort lowest at high utilization, echoing the\n");
  std::printf("simulator's Figure 7 on the full system.\n");
  report.Write();
  return 0;
}
