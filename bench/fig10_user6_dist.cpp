// Figure 10: segment utilization distribution in the /user6 file system —
// a snapshot of the real filesystem's segment usage table after the scaled
// /user6 workload (not the abstract simulator).
//
// Expected shape (paper): strongly bimodal — "large numbers of fully
// utilized segments and totally empty segments", with only a thin spread in
// between. This is the production confirmation of the simulator's Figure 6.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/histogram.h"

using namespace lfs;
using namespace lfs::bench;

int main() {
  const uint64_t disk_bytes = SmokePick(160, 48) * 1024 * 1024;
  LfsInstance inst = MakeLfs(disk_bytes, PaperLfsConfig());
  WorkloadParams params = User6Workload();
  if (SmokeMode()) {
    params.churn_multiplier = 1.0;
    // The full-size 8-MB large-file tail would blow past the target
    // utilization on the shrunken smoke disk.
    params.max_file_bytes = disk_bytes / 24;
  }
  WorkloadReport report = RunWorkload(inst.fs.get(), disk_bytes, params);

  Histogram hist(20);  // the paper's figure uses coarse buckets
  const SegUsage& usage = inst.fs->seg_usage();
  uint32_t clean = 0;
  uint32_t full = 0;
  for (SegNo seg = 0; seg < usage.nsegments(); seg++) {
    double u = usage.Get(seg).state == SegState::kClean ? 0.0 : usage.Utilization(seg);
    hist.Add(u);
    if (u < 0.05) {
      clean++;
    }
    if (u > 0.95) {
      full++;
    }
  }

  std::printf("=== Figure 10: segment utilization snapshot of /user6 ===\n\n");
  std::printf("workload: %llu files created, %s written, disk %.0f%% utilized\n\n",
              static_cast<unsigned long long>(report.files_created),
              HumanBytes(report.bytes_written).c_str(),
              inst.fs->disk_utilization() * 100);
  std::printf("%s\n", hist.ToAscii("segment utilization").c_str());
  std::printf("empty-ish segments (u<0.05): %u of %u (%.0f%%)\n", clean, usage.nsegments(),
              100.0 * clean / usage.nsegments());
  std::printf("full-ish segments  (u>0.95): %u of %u (%.0f%%)\n", full, usage.nsegments(),
              100.0 * full / usage.nsegments());
  std::printf("\nExpected shape: bimodal — most segments either nearly empty or nearly\n");
  std::printf("full, exactly what the cost-benefit policy is designed to produce.\n");

  BenchReport bench_report("fig10_user6_dist");
  bench_report.AddScalar("files_created", static_cast<double>(report.files_created));
  bench_report.AddScalar("disk_utilization", inst.fs->disk_utilization());
  bench_report.AddScalar("emptyish_fraction", static_cast<double>(clean) / usage.nsegments());
  bench_report.AddScalar("fullish_fraction", static_cast<double>(full) / usage.nsegments());
  bench_report.AddLfs("lfs.", inst);
  bench_report.Write();
  return 0;
}
