// Figure 10: segment utilization distribution in the /user6 file system —
// a snapshot of the real filesystem's segment usage table after the scaled
// /user6 workload (not the abstract simulator).
//
// Expected shape (paper): strongly bimodal — "large numbers of fully
// utilized segments and totally empty segments", with only a thin spread in
// between. This is the production confirmation of the simulator's Figure 6.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/histogram.h"

using namespace lfs;
using namespace lfs::bench;

int main() {
  const uint64_t disk_bytes = 160ull * 1024 * 1024;
  LfsInstance inst = MakeLfs(disk_bytes, PaperLfsConfig());
  WorkloadParams params = User6Workload();
  WorkloadReport report = RunWorkload(inst.fs.get(), disk_bytes, params);

  Histogram hist(20);  // the paper's figure uses coarse buckets
  const SegUsage& usage = inst.fs->seg_usage();
  uint32_t clean = 0;
  uint32_t full = 0;
  for (SegNo seg = 0; seg < usage.nsegments(); seg++) {
    double u = usage.Get(seg).state == SegState::kClean ? 0.0 : usage.Utilization(seg);
    hist.Add(u);
    if (u < 0.05) {
      clean++;
    }
    if (u > 0.95) {
      full++;
    }
  }

  std::printf("=== Figure 10: segment utilization snapshot of /user6 ===\n\n");
  std::printf("workload: %llu files created, %s written, disk %.0f%% utilized\n\n",
              static_cast<unsigned long long>(report.files_created),
              HumanBytes(report.bytes_written).c_str(),
              inst.fs->disk_utilization() * 100);
  std::printf("%s\n", hist.ToAscii("segment utilization").c_str());
  std::printf("empty-ish segments (u<0.05): %u of %u (%.0f%%)\n", clean, usage.nsegments(),
              100.0 * clean / usage.nsegments());
  std::printf("full-ish segments  (u>0.95): %u of %u (%.0f%%)\n", full, usage.nsegments(),
              100.0 * full / usage.nsegments());
  std::printf("\nExpected shape: bimodal — most segments either nearly empty or nearly\n");
  std::printf("full, exactly what the cost-benefit policy is designed to produce.\n");
  return 0;
}
