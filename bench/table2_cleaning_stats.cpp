// Table 2: segment cleaning statistics and write costs for production
// filesystems. The paper measured five Sprite LFS partitions over four
// months; we run scaled-down synthetic workloads whose parameters (mean
// file size, disk utilization, whole-file write/delete behaviour, cold-file
// populations, swap-style sparse rewrites) are taken from the table's
// columns, then report the same statistics.
//
// Expected shape (paper): write costs far below the simulator's predictions
// (1.2-1.6 versus 2.5-3) because (a) files are written and deleted whole, so
// many cleaned segments are completely empty (paper: >50%), and (b) truly
// cold files are never touched again. /swap2 is the outlier with high
// cleaned utilization (0.535) because swap files are overwritten in place,
// block by block.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/util/table.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

struct PaperRow {
  const char* fs;
  const char* disk;
  const char* avg_file;
  const char* in_use;
  const char* empty;
  const char* avg_u;
  const char* cost;
};

// The published Table 2 rows, for side-by-side comparison.
constexpr PaperRow kPaper[] = {
    {"/user6", "1280 MB", "23.5 KB", "75%", "69%", "0.133", "1.4"},
    {"/pcs", "990 MB", "10.5 KB", "63%", "52%", "0.137", "1.6"},
    {"/src/kernel", "1280 MB", "37.5 KB", "72%", "83%", "0.122", "1.2"},
    {"/tmp", "264 MB", "28.9 KB", "11%", "78%", "0.130", "1.3"},
    {"/swap2", "309 MB", "68.1 KB", "65%", "66%", "0.535", "1.6"},
};

}  // namespace

int main() {
  // Scaled disk sizes (1/8 of the production systems) keep runtime modest
  // while preserving the utilization and file-size relationships.
  struct Run {
    WorkloadParams params;
    uint64_t disk_bytes;
  };
  const uint64_t scale = SmokePick(1, 4);
  Run runs[] = {
      {User6Workload(), 160ull * 1024 * 1024 / scale},
      {PcsWorkload(), 124ull * 1024 * 1024 / scale},
      {SrcKernelWorkload(), 160ull * 1024 * 1024 / scale},
      {TmpWorkload(), 33ull * 1024 * 1024},
      {Swap2Workload(), 39ull * 1024 * 1024},
  };

  BenchReport bench_report("table2_cleaning_stats");
  // Two extra columns over the paper's table: which ordering policy each
  // reclaimed victim was charged to (greedy/cost-benefit — all cost-benefit
  // unless adaptive_cleaning is on), and how many victims were drained
  // incrementally versus round-tripped whole (all full unless
  // partial_compaction is on). They pin the fine-grained reclamation
  // accounting to the classic workloads: knobs off, the new counters must
  // reproduce the legacy totals exactly.
  Table table({"File system", "Disk", "Avg file", "In use", "Cleaned", "Empty",
               "u (non-empty)", "Write cost", "g/cb", "part/full"});
  for (Run& run : runs) {
    if (SmokeMode()) {
      run.params.churn_multiplier = 1.0;
      run.params.max_file_bytes = run.disk_bytes / 24;
    }
    LfsInstance inst = MakeLfs(run.disk_bytes, PaperLfsConfig());
    // Reset accounting after setup; the workload itself is the measurement.
    inst.fs->mutable_stats() = LfsStats{};
    WorkloadReport report = RunWorkload(inst.fs.get(), run.disk_bytes, run.params);
    const LfsStats& st = inst.fs->stats();
    table.AddRow({run.params.name, HumanBytes(run.disk_bytes), HumanBytes(report.avg_file_bytes),
                  Table::FmtPercent(inst.fs->disk_utilization()),
                  std::to_string(st.segments_cleaned),
                  Table::FmtPercent(st.EmptyCleanedFraction()),
                  Table::Fmt(st.AvgCleanedUtilization(), 3), Table::Fmt(st.WriteCost(), 2),
                  std::to_string(st.segments_cleaned_by_policy[0].load()) + "/" +
                      std::to_string(st.segments_cleaned_by_policy[1].load()),
                  std::to_string(st.partial_compactions.load()) + "/" +
                      std::to_string(st.full_compactions.load())});
    // Strip the leading '/' so the metric name reads "user6.write_cost".
    std::string p = run.params.name.substr(1) + ".";
    for (char& c : p) {
      if (c == '/') {
        c = '_';
      }
    }
    bench_report.AddScalar(p + "write_cost", st.WriteCost());
    bench_report.AddScalar(p + "empty_cleaned_fraction", st.EmptyCleanedFraction());
    bench_report.AddScalar(p + "avg_cleaned_utilization", st.AvgCleanedUtilization());
    bench_report.AddScalar(p + "disk_utilization", inst.fs->disk_utilization());
    bench_report.AddScalar(p + "cleaned_greedy",
                           static_cast<double>(st.segments_cleaned_by_policy[0]));
    bench_report.AddScalar(p + "cleaned_costbenefit",
                           static_cast<double>(st.segments_cleaned_by_policy[1]));
    bench_report.AddScalar(p + "copy_bytes_greedy",
                           static_cast<double>(st.copy_bytes_by_policy[0]));
    bench_report.AddScalar(p + "copy_bytes_costbenefit",
                           static_cast<double>(st.copy_bytes_by_policy[1]));
    bench_report.AddScalar(p + "partial_compactions",
                           static_cast<double>(st.partial_compactions));
    bench_report.AddScalar(p + "full_compactions",
                           static_cast<double>(st.full_compactions));
  }

  std::printf("=== Table 2: cleaning statistics, measured on synthetic production workloads ===\n\n");
  std::printf("%s\n", table.ToString().c_str());

  Table paper({"File system", "Disk", "Avg file", "In use", "Empty", "u (non-empty)",
               "Write cost"});
  for (const PaperRow& r : kPaper) {
    paper.AddRow({r.fs, r.disk, r.avg_file, r.in_use, r.empty, r.avg_u, r.cost});
  }
  std::printf("Paper's published Table 2 (4 months of production use):\n\n%s\n",
              paper.ToString().c_str());
  std::printf("Expected shape: write costs ~1.2-1.6 (cleaning overhead limits long-term\n");
  std::printf("write performance to ~70%% of sequential bandwidth); a large fraction of\n");
  std::printf("cleaned segments empty; /swap2 cleaned at much higher utilization.\n");
  bench_report.Write();
  return 0;
}
