// Figure 8: small-file performance, Sprite LFS versus SunOS (our FFS
// baseline), on the paper's testbed model (Sun-4/260 + Wren IV, ~300-MB
// filesystems).
//
// (a) create 10000 1-KB files, read them back in creation order, delete
//     them; report files/sec per phase for both filesystems.
// (b) predicted create throughput on machines with 1x/2x/4x the CPU speed
//     and the same disk: LFS scales with the CPU (its disk is mostly idle);
//     FFS barely improves (its disk is saturated).
//
// Expected shape (paper): LFS ~10x FFS for create and delete, faster for
// the ordered read-back; LFS disk utilization low (~17%) during create
// while FFS's is ~85%.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

const int kNumFiles = static_cast<int>(SmokePick(10000, 500));
constexpr int kFileSize = 1024;
const uint64_t kDiskBytes = SmokePick(300, 64) * 1024 * 1024;

struct PhaseResult {
  double cpu_sec = 0;
  double disk_sec = 0;
  double elapsed = 0;
  double files_per_sec = 0;
  double disk_busy_fraction = 0;
};

template <typename ElapsedFn>
PhaseResult Measure(SimDisk* disk, const CpuModel& cpu, ElapsedFn elapsed_fn, uint64_t ops,
                    uint64_t bytes, const std::function<void()>& body) {
  DiskStats before = disk->stats();
  body();
  DiskStats delta = disk->stats() - before;
  PhaseResult r;
  r.cpu_sec = cpu.Time(ops, bytes);
  r.disk_sec = delta.busy_sec;
  r.elapsed = elapsed_fn(r.cpu_sec, r.disk_sec);
  r.files_per_sec = static_cast<double>(kNumFiles) / r.elapsed;
  r.disk_busy_fraction = r.disk_sec / r.elapsed;
  return r;
}

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "fig8: %s\n", st.ToString().c_str());
    std::abort();
  }
}

}  // namespace

int main() {
  CpuModel cpu;  // Sun-4/260
  std::vector<uint8_t> content(kFileSize, 0xAB);

  // --- Sprite LFS --------------------------------------------------------------
  // Block size 1 KB for this workload: Sprite packed 1-KB files without
  // padding them to 4 KB; with 4-KB blocks every file would quadruple its
  // log footprint and overstate LFS disk utilization (see EXPERIMENTS.md).
  LfsConfig lfs_cfg = PaperLfsConfig();
  lfs_cfg.block_size = 1024;
  lfs_cfg.segment_blocks = 1024;  // keep 1-MB segments
  LfsInstance lfs_inst = MakeLfs(kDiskBytes, lfs_cfg);
  Check(lfs_inst.fs->Mkdir("/bench"));
  lfs_inst.disk->ResetStats();

  std::vector<InodeNum> lfs_inos(kNumFiles);
  PhaseResult lfs_create = Measure(
      lfs_inst.disk.get(), cpu, LfsElapsed, kNumFiles,
      uint64_t{kNumFiles} * kFileSize, [&] {
        for (int i = 0; i < kNumFiles; i++) {
          auto ino = lfs_inst.fs->Create("/bench/f" + std::to_string(i));
          Check(ino.status());
          lfs_inos[i] = *ino;
          Check(lfs_inst.fs->WriteAt(*ino, 0, content));
        }
        Check(lfs_inst.fs->Sync());
      });
  std::vector<uint8_t> buf(kFileSize);
  PhaseResult lfs_read = Measure(
      lfs_inst.disk.get(), cpu, LfsElapsed, kNumFiles,
      uint64_t{kNumFiles} * kFileSize, [&] {
        for (int i = 0; i < kNumFiles; i++) {
          Check(lfs_inst.fs->ReadAt(lfs_inos[i], 0, buf).status());
        }
      });
  PhaseResult lfs_delete = Measure(
      lfs_inst.disk.get(), cpu, LfsElapsed, kNumFiles, 0, [&] {
        for (int i = 0; i < kNumFiles; i++) {
          Check(lfs_inst.fs->Unlink("/bench/f" + std::to_string(i)));
        }
        Check(lfs_inst.fs->Sync());
      });

  // --- Unix FFS (SunOS stand-in) -------------------------------------------------
  FfsInstance ffs_inst = MakeFfs(kDiskBytes, 4096);
  Check(ffs_inst.fs->Mkdir("/bench"));
  ffs_inst.disk->ResetStats();

  std::vector<InodeNum> ffs_inos(kNumFiles);
  PhaseResult ffs_create = Measure(
      ffs_inst.disk.get(), cpu, FfsElapsed, kNumFiles,
      uint64_t{kNumFiles} * kFileSize, [&] {
        for (int i = 0; i < kNumFiles; i++) {
          auto ino = ffs_inst.fs->Create("/bench/f" + std::to_string(i));
          Check(ino.status());
          ffs_inos[i] = *ino;
          Check(ffs_inst.fs->WriteAt(*ino, 0, content));
        }
      });
  PhaseResult ffs_read = Measure(
      ffs_inst.disk.get(), cpu, FfsElapsed, kNumFiles,
      uint64_t{kNumFiles} * kFileSize, [&] {
        for (int i = 0; i < kNumFiles; i++) {
          Check(ffs_inst.fs->ReadAt(ffs_inos[i], 0, buf).status());
        }
      });
  PhaseResult ffs_delete = Measure(
      ffs_inst.disk.get(), cpu, FfsElapsed, kNumFiles, 0, [&] {
        for (int i = 0; i < kNumFiles; i++) {
          Check(ffs_inst.fs->Unlink("/bench/f" + std::to_string(i)));
        }
      });

  // --- Figure 8(a) ----------------------------------------------------------------
  std::printf("=== Figure 8(a): 10000 1-KB file create/read/delete (files/sec) ===\n\n");
  std::printf("%-8s %14s %14s %10s\n", "phase", "Sprite LFS", "Unix FFS", "LFS/FFS");
  auto row = [](const char* name, const PhaseResult& l, const PhaseResult& f) {
    std::printf("%-8s %14.0f %14.0f %9.1fx\n", name, l.files_per_sec, f.files_per_sec,
                l.files_per_sec / f.files_per_sec);
  };
  row("create", lfs_create, ffs_create);
  row("read", lfs_read, ffs_read);
  row("delete", lfs_delete, ffs_delete);

  std::printf("\nDisk utilization during the create phase:\n");
  std::printf("  Sprite LFS: %4.0f%% busy (CPU-bound; paper measured 17%%)\n",
              lfs_create.disk_busy_fraction * 100);
  std::printf("  Unix FFS:   %4.0f%% busy (disk-bound; paper measured 85%%)\n",
              ffs_create.disk_busy_fraction * 100);

  // --- Figure 8(b): faster CPUs, same disk ------------------------------------------
  std::printf("\n=== Figure 8(b): predicted create throughput vs CPU speed ===\n\n");
  std::printf("%-10s %14s %14s\n", "CPU speed", "Sprite LFS", "Unix FFS");
  for (double speed : {1.0, 2.0, 4.0}) {
    double lfs_fps = kNumFiles / LfsElapsed(lfs_create.cpu_sec / speed, lfs_create.disk_sec);
    double ffs_fps = kNumFiles / FfsElapsed(ffs_create.cpu_sec / speed, ffs_create.disk_sec);
    std::printf("%-9.0fx %14.0f %14.0f\n", speed, lfs_fps, ffs_fps);
  }
  std::printf("\nExpected shape: LFS scales nearly linearly with CPU speed; FFS is\n");
  std::printf("pinned by its saturated disk (paper: 4-6x more headroom for LFS).\n");

  BenchReport report("fig8_small_file");
  report.AddScalar("lfs.create_files_per_sec", lfs_create.files_per_sec);
  report.AddScalar("lfs.read_files_per_sec", lfs_read.files_per_sec);
  report.AddScalar("lfs.delete_files_per_sec", lfs_delete.files_per_sec);
  report.AddScalar("lfs.create_disk_busy_fraction", lfs_create.disk_busy_fraction);
  report.AddScalar("ffs.create_files_per_sec", ffs_create.files_per_sec);
  report.AddScalar("ffs.read_files_per_sec", ffs_read.files_per_sec);
  report.AddScalar("ffs.delete_files_per_sec", ffs_delete.files_per_sec);
  report.AddScalar("ffs.create_disk_busy_fraction", ffs_create.disk_busy_fraction);
  report.AddLfs("lfs.", lfs_inst);
  report.AddFfs("ffs.", ffs_inst);
  report.Write();
  return 0;
}
