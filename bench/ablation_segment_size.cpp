// Ablation: segment size (Section 3.2). "The segment size is chosen large
// enough that the transfer time to read or write a whole segment is much
// greater than the cost of a seek to the beginning of the segment."
//
// We run the same small-file workload at several segment sizes on the Wren
// IV model and report what fraction of the raw disk bandwidth the log
// achieves for new data. Expected shape: small segments waste bandwidth on
// per-segment seeks; beyond ~512 KB - 1 MB the curve flattens (which is why
// Sprite used 512 KB / 1 MB segments).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace lfs;
using namespace lfs::bench;

namespace {
void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "ablation: %s\n", st.ToString().c_str());
    std::abort();
  }
}
}  // namespace

int main() {
  BenchReport report("ablation_segment_size");
  std::printf("=== Ablation: segment size vs effective log write bandwidth ===\n\n");
  std::printf("%-12s %16s %18s %14s\n", "segment", "disk time (s)", "log bandwidth",
              "%% of raw");
  for (uint32_t seg_blocks : {16u, 32u, 64u, 128u, 256u, 512u}) {
    LfsConfig cfg = PaperLfsConfig();
    cfg.segment_blocks = seg_blocks;
    LfsInstance inst = MakeLfs(SmokePick(256, 96) * 1024 * 1024, cfg);
    Check(inst.fs->Mkdir("/d"));
    inst.disk->ResetStats();

    std::vector<uint8_t> content(8 * 1024, 0xEE);
    const int kFiles = static_cast<int>(SmokePick(3000, 500));
    for (int i = 0; i < kFiles; i++) {
      Check(inst.fs->WriteFile("/d/f" + std::to_string(i), content));
    }
    Check(inst.fs->Sync());

    const DiskStats& st = inst.disk->stats();
    double bytes = static_cast<double>(kFiles) * content.size();
    double bw = bytes / st.busy_sec;
    std::printf("%-12s %16.2f %15.0f KB/s %13.0f%%\n",
                HumanBytes(uint64_t{seg_blocks} * cfg.block_size).c_str(), st.busy_sec,
                bw / 1024.0, 100.0 * bw / inst.disk->raw_bandwidth());
    char key[64];
    std::snprintf(key, sizeof(key), "raw_bandwidth_fraction.seg%u", seg_blocks);
    report.AddScalar(key, bw / inst.disk->raw_bandwidth());
  }
  std::printf("\nExpected: rising curve that saturates around 512 KB-1 MB segments —\n");
  std::printf("whole-segment transfers amortize the seek+rotation cost, the design\n");
  std::printf("rationale in Section 3.2.\n");
  report.Write();
  return 0;
}
