// A modified-Andrew-benchmark-like workload (Section 5's 20% observation):
// directory creation, file copying, tree stat, file reads, and a
// compile-like read+write phase, run on both filesystems with the modeled
// Sun-4/260 CPU and Wren IV disk.
//
// Expected shape (paper): Sprite LFS only ~20% faster overall — the
// benchmark is CPU-bound (>80% CPU utilization), so the disk-level win
// barely shows. Most of the speedup comes from removing synchronous writes.
// Also reported: the recovery-time comparison — LFS roll-forward after this
// workload versus a full FFS fsck scan (Section 4's motivation).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/rng.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

const uint64_t kDiskBytes = SmokePick(300, 64) * 1024 * 1024;

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "andrew: %s\n", st.ToString().c_str());
    std::abort();
  }
}

struct Totals {
  uint64_t ops = 0;
  uint64_t bytes = 0;
};

// The five MAB-like phases against any FileSystem; returns op/byte counts
// for the CPU model.
Totals RunPhases(FileSystem* fs) {
  Totals t;
  Rng rng(77);
  // Phase 1: make directories.
  std::vector<std::string> dirs;
  for (int i = 0; i < 20; i++) {
    std::string d = "/proj/d" + std::to_string(i);
    if (i == 0) {
      Check(fs->Mkdir("/proj"));
      t.ops++;
    }
    Check(fs->Mkdir(d));
    dirs.push_back(d);
    t.ops++;
  }
  // Phase 2: copy ~70 source files (a few KB each).
  std::vector<std::string> files;
  for (int i = 0; i < 70; i++) {
    std::string path = dirs[i % dirs.size()] + "/src" + std::to_string(i) + ".c";
    size_t size = 2000 + rng.NextBelow(6000);
    std::vector<uint8_t> content(size, static_cast<uint8_t>(i));
    Check(fs->WriteFile(path, content));
    files.push_back(path);
    t.ops += 2;
    t.bytes += size;
  }
  // Phase 3: stat every file in the tree (recursive examine).
  for (const std::string& d : dirs) {
    auto entries = fs->ReadDir(d);
    Check(entries.status());
    t.ops++;
    for (const DirEntry& e : *entries) {
      Check(fs->Stat(e.ino).status());
      t.ops++;
    }
  }
  // Phase 4: read every file.
  for (const std::string& f : files) {
    auto data = fs->ReadFile(f);
    Check(data.status());
    t.ops++;
    t.bytes += data->size();
  }
  // Phase 5: compile-like — read all sources again, write .o files and link
  // one binary.
  uint64_t obj_bytes = 0;
  for (const std::string& f : files) {
    auto data = fs->ReadFile(f);
    Check(data.status());
    std::vector<uint8_t> obj(data->size() * 2, 0x90);
    Check(fs->WriteFile(f + ".o", obj));
    obj_bytes += data->size() + obj.size();
    t.ops += 3;
  }
  std::vector<uint8_t> binary(512 * 1024, 0x7F);
  Check(fs->WriteFile("/proj/a.out", binary));
  t.ops++;
  t.bytes += obj_bytes + binary.size();
  Check(fs->Sync());
  t.ops++;
  // Compile-phase CPU is dominated by the "compiler", not the filesystem:
  // charge extra CPU work to reflect the benchmark's >80% CPU utilization
  // on the Sun-4 (the paper: "the machines are not fast enough to be
  // disk-bound with the current workloads").
  t.bytes += 500 * 1024 * 1024;  // stands in for compiler cycles
  return t;
}

}  // namespace

int main() {
  CpuModel cpu;

  LfsInstance lfs_inst = MakeLfs(kDiskBytes, PaperLfsConfig());
  Totals lfs_t = RunPhases(lfs_inst.fs.get());
  double lfs_cpu = cpu.Time(lfs_t.ops, lfs_t.bytes);
  double lfs_disk = lfs_inst.disk->stats().busy_sec;
  double lfs_elapsed = LfsElapsed(lfs_cpu, lfs_disk);

  FfsInstance ffs_inst = MakeFfs(kDiskBytes, 4096);
  Totals ffs_t = RunPhases(ffs_inst.fs.get());
  double ffs_cpu = cpu.Time(ffs_t.ops, ffs_t.bytes);
  double ffs_disk = ffs_inst.disk->stats().busy_sec;
  double ffs_elapsed = FfsElapsed(ffs_cpu, ffs_disk);

  std::printf("=== Andrew-like benchmark: Sprite LFS vs Unix FFS ===\n\n");
  std::printf("%-14s %10s %10s %10s %12s\n", "filesystem", "cpu (s)", "disk (s)",
              "elapsed", "CPU util");
  std::printf("%-14s %10.1f %10.1f %10.1f %11.0f%%\n", "Sprite LFS", lfs_cpu, lfs_disk,
              lfs_elapsed, 100.0 * lfs_cpu / lfs_elapsed);
  std::printf("%-14s %10.1f %10.1f %10.1f %11.0f%%\n", "Unix FFS", ffs_cpu, ffs_disk,
              ffs_elapsed, 100.0 * ffs_cpu / ffs_elapsed);
  std::printf("\nLFS speedup: %.0f%%  (paper: ~20%%, because the benchmark is CPU-bound)\n",
              (ffs_elapsed / lfs_elapsed - 1.0) * 100);

  // --- recovery comparison (Section 4's motivation) ----------------------------
  DiskStats before = lfs_inst.disk->stats();
  auto remount = LfsFileSystem::Mount(lfs_inst.disk.get(), PaperLfsConfig());
  Check(remount.status());
  double lfs_recovery = (lfs_inst.disk->stats() - before).busy_sec;

  before = ffs_inst.disk->stats();
  Check(ffs_inst.fs->Fsck().status());
  double ffs_fsck = (ffs_inst.disk->stats() - before).busy_sec;

  std::printf("\nCrash-recovery disk time after this workload:\n");
  std::printf("  LFS mount (checkpoint + roll-forward): %8.2f s\n", lfs_recovery);
  std::printf("  FFS fsck (scan all metadata):          %8.2f s\n", ffs_fsck);
  std::printf("  ratio: %.0fx  (the paper cites 'tens of minutes' for production fsck)\n",
              ffs_fsck / std::max(lfs_recovery, 1e-9));

  BenchReport report("andrew_like");
  report.AddScalar("lfs.elapsed_sec", lfs_elapsed);
  report.AddScalar("lfs.cpu_sec", lfs_cpu);
  report.AddScalar("lfs.disk_sec", lfs_disk);
  report.AddScalar("lfs.recovery_sec", lfs_recovery);
  report.AddScalar("ffs.elapsed_sec", ffs_elapsed);
  report.AddScalar("ffs.cpu_sec", ffs_cpu);
  report.AddScalar("ffs.disk_sec", ffs_disk);
  report.AddScalar("ffs.fsck_sec", ffs_fsck);
  report.AddScalar("speedup_percent", (ffs_elapsed / lfs_elapsed - 1.0) * 100);
  report.AddLfs("lfs.", lfs_inst);
  report.AddFfs("ffs.", ffs_inst);
  report.Write();
  return 0;
}
