// Fleet traffic benchmark: tens of thousands of simulated closed-loop
// clients driving a multi-volume, multi-tenant fleet through the
// deterministic event-loop pipeline (src/fleet/event_loop.h).
//
// Eight tenants ride four volumes (two per volume). Every tenant runs the
// same client mix — smallfile churn (create/write/read/unlink cycles),
// large sequential writers, and namespace storms (mkdir/rename ping-pong) —
// but the last tenant is provisioned at a quarter of the admission rate
// with half the queue depth, so the report shows both sides of isolation:
// the seven uniform tenants complete near-identical work (gated by a Jain
// fairness index), and the throttled tenant sheds load through kBusy
// rejections without denting its volume neighbor.
//
// Latencies are simulated-time submit-to-completion: admission wait +
// volume queueing + max(cpu, modeled disk) service + any fair-share cleaner
// charge in front of the op. Everything (event order, token refills, disk
// model) runs off the deterministic clock, so the whole BENCH_*.json —
// per-class and per-tenant p50/p95/p99 included — is byte-stable and CI
// gates it against a checked-in baseline.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fleet/event_loop.h"
#include "src/fleet/fleet.h"

using namespace lfs;
using namespace lfs::bench;
using namespace lfs::fleet;

namespace {

constexpr uint32_t kVolumes = 4;
constexpr uint32_t kTenants = 8;  // two per volume
const uint64_t kClients = SmokePick(12000, 800);
const uint64_t kOpsPerClient = SmokePick(10, 5);
const uint64_t kDiskBytes = SmokePick(96, 32) * 1024 * 1024;

constexpr uint32_t kSmallBytes = 4 * 1024;
constexpr uint32_t kLargeBytes = 64 * 1024;
// Large writers truncate back to zero at this size, bounding their live
// footprint: the churn keeps the cleaner busy (its passes are what the p99
// tails wait behind) while live utilization stays low enough that volumes
// never hit their own ENOSPC reserve.
constexpr uint64_t kLargeFileCap = 128 * 1024;

// Uniform tenants t0..t6 are provisioned far above their offered load, so
// their latency reflects queueing and cleaning, not admission. t7 offers
// the same load but is provisioned *below* it (admission binds), with a
// short queue bound, so the report shows the throttled side of isolation:
// t7 sheds work through kBusy while its volume neighbor (t3) stays fair.
constexpr double kUniformRate = 4000.0;  // admission ops/sec per tenant
constexpr double kThrottledRate = 10.0;
constexpr double kThrottledBurst = 16.0;
constexpr uint32_t kThrottledQueueDepth = 100;
constexpr double kBusyBackoffSec = 0.02;  // client retry after a rejection

// Closed-loop pacing: mean think time is sized so the fleet offers
// ~150 ops/sec aggregate — roughly 75% of the four volumes' sustained
// capacity under the Wren IV model with cleaning — so queues form behind
// segment flushes and cleaner passes (the tails this bench gates) without
// collapsing into a pure queue-drain experiment where every percentile is
// just the backlog length.
const double kThinkMeanSec = static_cast<double>(kClients) / 150.0;

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "fleet_traffic: %s\n", st.ToString().c_str());
    std::abort();
  }
}

// Client roles, assigned 80/10/10 within every tenant so all tenants offer
// the same mix and per-tenant completions are directly comparable.
enum class Kind : uint8_t { kSmall, kLarge, kStorm };

struct Client {
  uint32_t id = 0;
  uint32_t tenant = 0;
  Kind kind = Kind::kSmall;
  uint32_t ops_left = 0;
  uint32_t step = 0;   // position in the role's state machine
  uint32_t cycle = 0;  // churn iteration (names files uniquely)
  InodeNum ino = 0;
  uint64_t off = 0;  // large writer's append position
};

struct Driver {
  Fleet* fleet = nullptr;
  FleetScheduler* sched = nullptr;
  Rng rng{20260808};
  std::vector<Client> clients;
  std::vector<std::string> tenant_names;
  std::vector<uint8_t> wbuf;
  std::vector<uint8_t> rbuf;
  uint64_t busy_retries = 0;
  uint64_t errors = 0;

  double Think() { return rng.NextExponential(kThinkMeanSec); }
  void SubmitNext(uint32_t ci, double when);
};

// Builds the next op for client `ci` from its state machine. The body runs
// at dispatch time inside the event loop (single-threaded), and each client
// has exactly one op in flight, so mutating the Client from body/done is
// race-free by construction.
void Driver::SubmitNext(uint32_t ci, double when) {
  Client& c = clients[ci];
  const std::string& tname = tenant_names[c.tenant];
  FleetScheduler::Op op;
  op.tenant = tname;

  switch (c.kind) {
    case Kind::kSmall: {
      std::string path =
          "/c" + std::to_string(c.id) + "_" + std::to_string(c.cycle);
      if (c.step == 0) {
        op.cls = OpClass::kCreate;
        op.body = [this, ci, path]() {
          auto r = fleet->Create(tenant_names[clients[ci].tenant], path);
          if (r.ok()) clients[ci].ino = *r;
          return r.status();
        };
      } else if (c.step == 1) {
        op.cls = OpClass::kSmallWrite;
        op.bytes = kSmallBytes;
        op.body = [this, ci]() {
          Client& cl = clients[ci];
          return fleet->WriteAt(tenant_names[cl.tenant], cl.ino, 0,
                                std::span<const uint8_t>(wbuf.data(), kSmallBytes));
        };
      } else if (c.step == 2) {
        op.cls = OpClass::kSmallRead;
        op.bytes = kSmallBytes;
        op.body = [this, ci]() {
          Client& cl = clients[ci];
          return fleet
              ->ReadAt(tenant_names[cl.tenant], cl.ino, 0,
                       std::span<uint8_t>(rbuf.data(), kSmallBytes))
              .status();
        };
      } else {
        op.cls = OpClass::kUnlink;
        op.body = [this, ci, path]() {
          return fleet->Unlink(tenant_names[clients[ci].tenant], path);
        };
      }
      break;
    }
    case Kind::kLarge: {
      if (c.step == 0) {
        op.cls = OpClass::kCreate;
        op.body = [this, ci]() {
          Client& cl = clients[ci];
          auto r = fleet->Create(tenant_names[cl.tenant],
                                 "/big" + std::to_string(cl.id));
          if (r.ok()) cl.ino = *r;
          return r.status();
        };
      } else if (c.off >= kLargeFileCap) {
        op.cls = OpClass::kNamespace;  // metadata op: reset the file
        op.body = [this, ci]() {
          Client& cl = clients[ci];
          return fleet->Truncate(tenant_names[cl.tenant], cl.ino, 0);
        };
      } else {
        op.cls = OpClass::kLargeWrite;
        op.bytes = kLargeBytes;
        op.body = [this, ci]() {
          Client& cl = clients[ci];
          return fleet->WriteAt(tenant_names[cl.tenant], cl.ino, cl.off,
                                std::span<const uint8_t>(wbuf.data(), kLargeBytes));
        };
      }
      break;
    }
    case Kind::kStorm: {
      std::string base = "/d" + std::to_string(c.id);
      op.cls = OpClass::kNamespace;
      if (c.step == 0) {
        op.body = [this, ci, base]() {
          return fleet->Mkdir(tenant_names[clients[ci].tenant], base);
        };
      } else if (c.step % 2 == 1) {
        op.body = [this, ci, base]() {
          return fleet->Rename(tenant_names[clients[ci].tenant], base, base + "x");
        };
      } else {
        op.body = [this, ci, base]() {
          return fleet->Rename(tenant_names[clients[ci].tenant], base + "x", base);
        };
      }
      break;
    }
  }

  op.done = [this, ci](double now, const Status& st) {
    Client& cl = clients[ci];
    cl.ops_left--;  // every attempt consumes budget, so the run terminates
    if (st.ok()) {
      // Advance the state machine.
      switch (cl.kind) {
        case Kind::kSmall:
          cl.step = (cl.step + 1) % 4;
          if (cl.step == 0) cl.cycle++;
          break;
        case Kind::kLarge:
          if (cl.step == 0) {
            cl.step = 1;
          } else if (cl.off >= kLargeFileCap) {
            cl.off = 0;  // the truncate just completed
          } else {
            cl.off += kLargeBytes;
          }
          break;
        case Kind::kStorm:
          cl.step++;
          break;
      }
    } else if (st.code() == StatusCode::kBusy) {
      busy_retries++;  // retry the same step after a backoff
    } else {
      errors++;
    }
    if (cl.ops_left > 0) {
      double delay = st.code() == StatusCode::kBusy ? kBusyBackoffSec : Think();
      SubmitNext(ci, now + delay);
    }
  };

  sched->Submit(when, std::move(op));
}

double JainIndex(const std::vector<double>& xs) {
  double sum = 0, sq = 0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) return 0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

}  // namespace

int main() {
  LfsConfig lcfg = PaperLfsConfig();  // 4-KB blocks, 1-MB segments
  FleetConfig fcfg = UniformFleetConfig(kVolumes, kDiskBytes, lcfg);
  fcfg.front_door_admission = false;  // the scheduler reserves admission
  auto fleet_r = Fleet::Create(fcfg);
  Check(fleet_r.status());
  auto fleet = std::move(fleet_r).value();

  Driver d;
  d.fleet = fleet.get();
  const uint64_t clients_per_tenant = kClients / kTenants;
  for (uint32_t t = 0; t < kTenants; t++) {
    TenantConfig tc;
    tc.name = "t" + std::to_string(t);
    tc.volume = t % kVolumes;
    tc.max_blocks = (kDiskBytes / lcfg.block_size) / 2;  // half a volume each
    tc.max_inodes = static_cast<uint32_t>(clients_per_tenant * 4);
    bool throttled = (t == kTenants - 1);
    tc.ops_per_sec = throttled ? kThrottledRate : kUniformRate;
    tc.burst_ops = throttled ? kThrottledBurst : 64.0;
    tc.max_queue_depth = throttled ? kThrottledQueueDepth
                                   : static_cast<uint32_t>(clients_per_tenant * 2);
    Check(fleet->AddTenant(tc));
    d.tenant_names.push_back(tc.name);
  }

  FleetScheduler sched(fleet.get(), SchedulerOptions{});
  d.sched = &sched;
  d.wbuf.resize(kLargeBytes);
  for (size_t i = 0; i < d.wbuf.size(); i++) {
    d.wbuf[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  d.rbuf.resize(kLargeBytes);

  // One closed-loop chain per client: 80% smallfile churn, 10% large
  // sequential, 10% namespace storm, interleaved across tenants. Start
  // times stagger over one mean think interval so the opening burst is an
  // admission-queue ramp, not a single instantaneous spike.
  d.clients.resize(kClients);
  for (uint32_t i = 0; i < kClients; i++) {
    Client& c = d.clients[i];
    c.id = i;
    c.tenant = i % kTenants;
    uint32_t role = (i / kTenants) % 10;
    c.kind = role < 8 ? Kind::kSmall : (role == 8 ? Kind::kLarge : Kind::kStorm);
    c.ops_left = static_cast<uint32_t>(kOpsPerClient);
  }
  auto wall0 = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < kClients; i++) {
    d.SubmitNext(i, kThinkMeanSec * static_cast<double>(i) /
                        static_cast<double>(kClients));
  }
  sched.Run();
  double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();

  Check(fleet->SyncAll());

  // --- report ------------------------------------------------------------------
  BenchReport report("fleet_traffic");
  double sim_sec = sched.now();
  report.AddScalar("clients", static_cast<double>(kClients));
  report.AddScalar("tenants", kTenants);
  report.AddScalar("volumes", kVolumes);
  report.AddScalar("ops_done", static_cast<double>(sched.ops_done()));
  report.AddScalar("ops_rejected", static_cast<double>(sched.ops_rejected()));
  report.AddScalar("busy_retries", static_cast<double>(d.busy_retries));
  report.AddScalar("errors", static_cast<double>(d.errors));
  report.AddScalar("sim_seconds", sim_sec);
  report.AddScalar("throughput_ops_per_sec",
                   sim_sec > 0 ? static_cast<double>(sched.ops_done()) / sim_sec : 0);
  report.AddScalar("wall.run_sec", wall_sec);

  // Fairness: the seven uniform tenants ran identical offered load through
  // identical provisioning; their completed-op counts should be near equal.
  std::vector<double> uniform_done;
  double throttled_done = 0;
  for (uint32_t t = 0; t < kTenants; t++) {
    TenantState* ts = fleet->tenant(d.tenant_names[t]);
    double done = static_cast<double>(ts->ops_completed.load());
    if (t == kTenants - 1) {
      throttled_done = done;
    } else {
      uniform_done.push_back(done);
    }
  }
  double uniform_avg = 0;
  for (double x : uniform_done) uniform_avg += x;
  uniform_avg /= static_cast<double>(uniform_done.size());
  report.AddScalar("fairness_jain_uniform", JainIndex(uniform_done));
  report.AddScalar("throttled_completion_ratio",
                   uniform_avg > 0 ? throttled_done / uniform_avg : 0);

  for (uint32_t v = 0; v < kVolumes; v++) {
    report.AddScalar("sched.volume" + std::to_string(v) + ".busy_fraction",
                     sched.busy_fraction(v));
  }
  fleet->BindMetrics(&report.registry(), "fleet.");

  for (size_t cls = 0; cls < static_cast<size_t>(OpClass::kCount); cls++) {
    report.registry().AddHistogram(
        std::string("op.") + OpClassName(static_cast<OpClass>(cls)),
        sched.class_latency(static_cast<OpClass>(cls)));
  }
  for (const std::string& name : d.tenant_names) {
    report.registry().AddHistogram("tenant." + name, *sched.tenant_latency(name));
  }

  std::printf("fleet_traffic: %" PRIu64 " clients, %u tenants on %u volumes, "
              "%" PRIu64 " ops in %.2f sim-sec (%.0f ops/sec)\n",
              kClients, kTenants, kVolumes, sched.ops_done(), sim_sec,
              sim_sec > 0 ? static_cast<double>(sched.ops_done()) / sim_sec : 0);
  std::printf("  rejected %" PRIu64 " (throttled tenant ratio %.2f), "
              "jain(t0..t6) %.4f\n",
              sched.ops_rejected(),
              uniform_avg > 0 ? throttled_done / uniform_avg : 0,
              JainIndex(uniform_done));
  std::printf("  %-12s %10s %10s %10s %10s\n", "class", "count", "p50_us",
              "p95_us", "p99_us");
  for (size_t cls = 0; cls < static_cast<size_t>(OpClass::kCount); cls++) {
    const auto& h = sched.class_latency(static_cast<OpClass>(cls));
    std::printf("  %-12s %10" PRIu64 " %10.0f %10.0f %10.0f\n",
                OpClassName(static_cast<OpClass>(cls)), h.count(),
                h.PercentileUs(0.50), h.PercentileUs(0.95), h.PercentileUs(0.99));
  }
  for (const std::string& name : d.tenant_names) {
    const auto& h = *sched.tenant_latency(name);
    std::printf("  tenant %-6s %9" PRIu64 " %10.0f %10.0f %10.0f\n", name.c_str(),
                h.count(), h.PercentileUs(0.50), h.PercentileUs(0.95),
                h.PercentileUs(0.99));
  }

  report.Write();
  return 0;
}
