// Table 3: recovery time for various crash configurations. A program
// creates one, ten, or fifty megabytes of fixed-size files (1 KB, 10 KB, or
// 100 KB) after the last checkpoint, the machine crashes, and we measure the
// roll-forward time during remount (modeled Wren IV disk time plus a CPU
// charge per recovered file).
//
// The paper used a special Sprite LFS with an infinite checkpoint interval;
// our configuration checkpoints only on Sync(), giving the same effect.
//
// Expected shape (paper): recovery time is dominated by the NUMBER of files
// recovered (1 KB x 50 MB is by far the worst cell); it grows roughly
// linearly with the amount of data written since the checkpoint; all times
// are seconds, not the tens of minutes an fsck-style scan needs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/disk/crash_disk.h"
#include "src/util/table.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "table3: %s\n", st.ToString().c_str());
    std::abort();
  }
}

// Runs one crash cell; returns modeled recovery seconds.
double RunCell(uint64_t file_bytes, uint64_t data_bytes, uint64_t* files_out) {
  const uint64_t disk_bytes = SmokePick(300, 96) * 1024 * 1024;
  LfsConfig cfg = PaperLfsConfig();
  auto sim = std::make_unique<SimDisk>(
      std::make_unique<MemDisk>(cfg.block_size, disk_bytes / cfg.block_size),
      DiskModelParams::WrenIV());
  SimDisk* sim_ptr = sim.get();
  CrashDisk crash(std::move(sim));

  auto fs_r = LfsFileSystem::Mkfs(&crash, cfg);
  Check(fs_r.status());
  std::unique_ptr<LfsFileSystem> fs = std::move(fs_r).value();
  Check(fs->Mkdir("/d"));
  Check(fs->Sync());  // the last checkpoint before the crash

  uint64_t nfiles = data_bytes / file_bytes;
  std::vector<uint8_t> content(file_bytes, 0x77);
  for (uint64_t i = 0; i < nfiles; i++) {
    Check(fs->WriteFile("/d/f" + std::to_string(i), content));
  }
  // Push any tail still buffered into the log (but take no checkpoint), then
  // crash.
  crash.CrashNow();
  fs.reset();
  crash.ClearCrash();

  DiskStats before = sim_ptr->stats();
  auto remounted = LfsFileSystem::Mount(&crash, cfg);
  Check(remounted.status());
  DiskStats delta = sim_ptr->stats() - before;

  // Recovery cost: modeled disk time plus a per-recovered-file CPU charge
  // (inode map update, directory entry check).
  CpuModel cpu;
  double cpu_sec = cpu.Time(nfiles, 0) / 10.0;  // recovery ops are cheap syscalls
  *files_out = nfiles;
  return delta.busy_sec + cpu_sec;
}

}  // namespace

int main() {
  const uint64_t kMB = 1024 * 1024;
  uint64_t file_sizes[] = {1024, 10 * 1024, 100 * 1024};
  uint64_t data_sizes[] = {1 * kMB, SmokePick(10, 4) * kMB, SmokePick(50, 8) * kMB};

  BenchReport report("table3_recovery");
  std::printf("=== Table 3: recovery time (seconds) for various crash configurations ===\n\n");
  Table table({"File size", "1 MB recovered", "10 MB recovered", "50 MB recovered"});
  for (uint64_t fsize : file_sizes) {
    std::vector<std::string> row = {HumanBytes(fsize)};
    for (uint64_t dsize : data_sizes) {
      uint64_t files = 0;
      double sec = RunCell(fsize, dsize, &files);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.2f s (%llu files)", sec,
                    static_cast<unsigned long long>(files));
      row.push_back(cell);
      char key[64];
      std::snprintf(key, sizeof(key), "recovery_sec.f%lluk_d%llum",
                    static_cast<unsigned long long>(fsize / 1024),
                    static_cast<unsigned long long>(dsize / kMB));
      report.AddScalar(key, sec);
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Paper's published Table 3 (seconds):\n");
  std::printf("  1 KB files:   1 / 21 / 132\n");
  std::printf("  10 KB files:  <1 / 3 / 17\n");
  std::printf("  100 KB files: <1 / 1 / 8\n\n");
  std::printf("Expected shape: time grows with data recovered and is dominated by the\n");
  std::printf("number of files; small-file cells are an order of magnitude slower than\n");
  std::printf("large-file cells at equal data. Compare with an FFS fsck, which must\n");
  std::printf("scan ALL metadata regardless of how little changed (see andrew_like's\n");
  std::printf("recovery comparison and the paper's 'tens of minutes').\n");
  report.Write();
  return 0;
}
