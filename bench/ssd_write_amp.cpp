// Flash-era sweep: write amplification of LFS on the SSD model as a
// function of disk utilization and the number of segregated logs.
//
// The chapter the paper could not write in 1991: on flash there is no seek
// penalty to amortize, but every rewrite eventually costs an erase, so the
// metric that matters is write amplification — device pages programmed per
// page of new application data. Hot/cold segregation at write time (multiple
// append points) keeps cold survivors out of hot segments, so cleaning
// copies them once instead of over and over; the win grows with utilization,
// exactly where the Section 3 write-cost curves hurt the most. The device is
// configured with enough open erase blocks that its sequential-stream
// detector gives each LFS log its own physical frontier — segregation that
// the logs preserve down to the erase-block level.
//
// Emits BENCH_ssd_write_amp.json with, per (num_logs, utilization) cell:
//   logsN.uXX.wa_e2e      end-to-end WA: all pages programmed / new data
//   logsN.uXX.wa_device   FTL-internal WA (GC relocations only)
//   logsN.uXX.write_cost  the paper's log write cost for the same run
//   logsN.uXX.erases      erase-block erases (wear)
// plus the headline comparisons multilog_wa_reduction.uXX (single-log WA
// minus 2-log WA; positive means segregation pays).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/disk/ssd_disk.h"
#include "src/util/rng.h"

using namespace lfs;
using namespace lfs::bench;

namespace {

void Check(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "ssd_write_amp: %s\n", st.ToString().c_str());
    std::abort();
  }
}

struct CellResult {
  double wa_e2e = 0;     // (host + gc programs) * page / new app payload
  double wa_device = 0;  // FTL-internal amplification
  double write_cost = 0; // paper metric, for continuity with Fig. 3
  double erases = 0;
  double trimmed_pages = 0;
  double device_sec = 0;
};

CellResult RunOne(uint32_t num_logs, double utilization) {
  LfsConfig cfg;
  cfg.block_size = 4096;
  cfg.segment_blocks = 64;  // 256 KB segments == one erase block below
  cfg.num_logs = num_logs;
  cfg.policy = CleaningPolicy::kCostBenefit;
  cfg.age_sort = true;
  cfg.clean_lo = 8;
  cfg.clean_hi = 12;
  cfg.segments_per_pass = 4;
  cfg.reserve_segments = 3;
  cfg.checkpoint_interval_bytes = 4 * 1024 * 1024;

  const uint64_t disk_bytes = 48ull * 1024 * 1024;
  // Erase blocks sized to one LFS segment: the interesting frictions all
  // come from cleaning, not from a misaligned FTL.
  SsdModelParams params = SsdModelParams::Sata2010();
  params.erase_block_pages = cfg.segment_blocks;
  // Enough open blocks that every write stream (N logs, checkpoint regions,
  // GC) keeps its own — the multi-stream capability the sweep is about.
  params.open_erase_blocks = 8;
  SsdDisk ssd(cfg.block_size, disk_bytes / cfg.block_size, params);
  auto fs = std::move(LfsFileSystem::Mkfs(&ssd, cfg)).value();

  // `utilization` is measured against the allocator's usable capacity: the
  // FS refuses growth past ~80% of raw space (its analogue of FFS's 90%
  // limit), so raw-disk fractions above that are unreachable by design.
  LfsStatFs stfs = fs->StatFs();
  uint64_t seg_bytes = stfs.total_bytes / stfs.nsegments;
  uint64_t usable_segs = std::min<uint64_t>(stfs.nsegments - cfg.reserve_segments - 2,
                                            uint64_t{stfs.nsegments} * 4 / 5);
  uint64_t usable = usable_segs * seg_bytes;

  Rng rng(1234);
  const uint64_t file_bytes = 32 * 1024;
  int nfiles = static_cast<int>(utilization * usable / file_bytes);
  std::vector<uint8_t> content(file_bytes, 0x11);
  Check(fs->Mkdir("/d"));
  for (int i = 0; i < nfiles; i++) {
    fs->clock().Tick();
    Check(fs->WriteFile("/d/f" + std::to_string(i), content));
  }
  Check(fs->Sync());
  // Measure steady-state churn only: reset both the LFS counters and the
  // device counters after the fill.
  fs->mutable_stats() = LfsStats{};
  ssd.ResetStats();

  // Hot-and-cold churn (90% of rewrites hit 10% of files), clock advancing
  // so the age heuristic can tell the populations apart.
  // The churn horizon must reach steady state even in smoke mode:
  // segregation pays a one-time cost (the first cleaning wave moves every
  // cold block once) and earns it back on every avoided re-copy afterwards,
  // so short runs systematically under-report it. The whole sweep stays
  // under half a minute.
  int hot = std::max(1, nfiles / 10);
  const int churn_steps = nfiles * 12;
  uint64_t app_payload = 0;
  for (int step = 0; step < churn_steps; step++) {
    fs->clock().Tick();
    int idx = rng.NextBool(0.9) ? static_cast<int>(rng.NextBelow(hot))
                                : static_cast<int>(hot + rng.NextBelow(nfiles - hot));
    std::string path = "/d/f" + std::to_string(idx);
    Check(fs->Unlink(path));
    Check(fs->WriteFile(path, content));
    app_payload += file_bytes;
  }
  Check(fs->Sync());

  SsdStats s = ssd.stats();
  CellResult r;
  double programmed =
      static_cast<double>(s.pages_programmed_host + s.pages_programmed_gc) * cfg.block_size;
  r.wa_e2e = app_payload > 0 ? programmed / static_cast<double>(app_payload) : 0;
  r.wa_device = s.WriteAmplification();
  r.write_cost = fs->stats().WriteCost();
  r.erases = static_cast<double>(s.erases);
  r.trimmed_pages = static_cast<double>(s.pages_trimmed);
  r.device_sec = ssd.ModeledTime();
  Check(fs->Unmount());
  return r;
}

}  // namespace

int main() {
  BenchReport report("ssd_write_amp");
  std::printf("=== SSD write amplification: utilization x num_logs ===\n\n");
  std::printf("(end-to-end WA = pages programmed / new data pages; lower is better)\n\n");
  std::printf("%-6s %14s %14s %14s\n", "util", "1 log", "2 logs", "4 logs");

  const std::vector<double> utils = {0.60, 0.80, 0.90};
  const std::vector<uint32_t> log_counts = {1, 2, 4};
  for (double util : utils) {
    int u = static_cast<int>(util * 100);
    std::vector<CellResult> row;
    for (uint32_t logs : log_counts) {
      CellResult r = RunOne(logs, util);
      row.push_back(r);
      char key[64];
      std::snprintf(key, sizeof(key), "logs%u.u%02d.wa_e2e", logs, u);
      report.AddScalar(key, r.wa_e2e);
      std::snprintf(key, sizeof(key), "logs%u.u%02d.wa_device", logs, u);
      report.AddScalar(key, r.wa_device);
      std::snprintf(key, sizeof(key), "logs%u.u%02d.write_cost", logs, u);
      report.AddScalar(key, r.write_cost);
      std::snprintf(key, sizeof(key), "logs%u.u%02d.erases", logs, u);
      report.AddScalar(key, r.erases);
      std::snprintf(key, sizeof(key), "logs%u.u%02d.trimmed_pages", logs, u);
      report.AddScalar(key, r.trimmed_pages);
    }
    std::printf("%-6.2f %14.3f %14.3f %14.3f\n", util, row[0].wa_e2e, row[1].wa_e2e,
                row[2].wa_e2e);
    char key[64];
    std::snprintf(key, sizeof(key), "multilog_wa_reduction.u%02d", u);
    report.AddScalar(key, row[0].wa_e2e - row[1].wa_e2e);
  }

  std::printf("\nExpected: at low utilization multi-log costs a little (extra append\n");
  std::printf("points, no cleaning pressure to relieve); at >= 80%% utilization it\n");
  std::printf("wins, and the gap is widest at 90%% where the single log re-copies\n");
  std::printf("cold data over and over.\n");
  report.Write();
  return 0;
}
