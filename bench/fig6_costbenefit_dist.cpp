// Figure 6: segment utilization distribution with the cost-benefit policy
// (hot-and-cold access, 75% disk utilization, live blocks grouped by age).
//
// Expected shape (paper): a bimodal distribution — the cleaner lets cold
// segments ripen to high utilization (~75%) before cleaning them, while hot
// segments are cleaned around 15%; most cleaned segments are hot. The greedy
// distribution is printed for comparison (Figure 5's curve).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/sim.h"

using lfs::sim::AccessPattern;
using lfs::sim::CleaningSimulator;
using lfs::sim::Policy;
using lfs::sim::SimConfig;
using lfs::sim::SimResult;

int main() {
  SimConfig cfg;
  cfg.nsegments = 100;
  cfg.blocks_per_segment = 64;
  cfg.disk_utilization = 0.75;
  cfg.pattern = AccessPattern::kHotAndCold;
  cfg.age_sort = true;
  cfg.warmup_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(150, 25));
  cfg.measure_overwrites_per_file =
      static_cast<uint32_t>(lfs::bench::SmokePick(60, 10));
  cfg.seed = 33;

  std::printf("=== Figure 6: segment utilization distribution, cost-benefit policy ===\n\n");

  cfg.policy = Policy::kCostBenefit;
  SimResult cb = CleaningSimulator(cfg).Run();
  std::printf("%s\n", cb.segment_distribution.ToAscii("LFS Cost-Benefit").c_str());
  std::printf("  cost-benefit: write cost %.2f, avg cleaned u %.3f\n\n", cb.write_cost,
              cb.avg_cleaned_utilization);

  cfg.policy = Policy::kGreedy;
  SimResult greedy = CleaningSimulator(cfg).Run();
  std::printf("%s\n", greedy.segment_distribution.ToAscii("LFS Greedy (for comparison)").c_str());
  std::printf("  greedy: write cost %.2f, avg cleaned u %.3f\n", greedy.write_cost,
              greedy.avg_cleaned_utilization);

  std::printf("\nCleaned-segment utilization distributions:\n\n");
  std::printf("%s\n", cb.cleaned_distribution.ToAscii("cleaned by cost-benefit").c_str());
  std::printf("Expected: bimodal overall distribution under cost-benefit (cold\n");
  std::printf("segments ripen near the top; hot segments cleaned low), and the\n");
  std::printf("cleaned-u distribution concentrated at low utilizations.\n");

  lfs::bench::BenchReport report("fig6_costbenefit_dist");
  report.AddScalar("costbenefit.write_cost", cb.write_cost);
  report.AddScalar("costbenefit.avg_cleaned_utilization", cb.avg_cleaned_utilization);
  report.AddScalar("greedy.write_cost", greedy.write_cost);
  report.AddScalar("greedy.avg_cleaned_utilization", greedy.avg_cleaned_utilization);
  report.Write();
  return 0;
}
