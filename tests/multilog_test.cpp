// Multi-log segregated writing (num_logs > 1): differential correctness
// against a reference model, the offline-checker + remount oracle, format
// compatibility across num_logs settings, crash points mid multi-log write,
// and cleaner interaction with per-temperature segment populations.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/disk/crash_disk.h"
#include "src/lfs/check.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

LfsConfig MultiLogConfig(uint32_t num_logs) {
  LfsConfig cfg = SmallConfig();
  cfg.num_logs = num_logs;
  return cfg;
}

// WriteFile() refuses to clobber an existing path (Create fails with
// AlreadyExists), so overwrites go through Truncate + WriteAt.
Status Upsert(LfsFileSystem* fs, const std::string& path,
              const std::vector<uint8_t>& data) {
  auto ino = fs->Lookup(path);
  if (!ino.ok()) {
    return fs->WriteFile(path, data);
  }
  Status st = fs->Truncate(ino.value(), 0);
  if (!st.ok()) {
    return st;
  }
  return fs->WriteAt(ino.value(), 0, data);
}

// Mixed-temperature churn: a cold set written once, a hot set overwritten
// many times with the clock advancing, deletions, and enough traffic to
// force cleaning. Mirrors every mutation into `ref`.
void Churn(LfsFileSystem* fs, std::map<std::string, std::vector<uint8_t>>* ref) {
  for (int i = 0; i < 24; i++) {
    std::string path = "/cold" + std::to_string(i);
    auto data = TestContent(1000 + i, 1500 + 97 * i);
    ASSERT_OK(fs->WriteFile(path, data));
    (*ref)[path] = data;
  }
  ASSERT_OK(fs->Sync());
  for (int round = 0; round < 12; round++) {
    for (int i = 0; i < 10; i++) {
      fs->clock().Tick();
      std::string path = "/hot" + std::to_string(i);
      auto data = TestContent(round * 100 + i, 800 + 131 * i);
      ASSERT_OK(Upsert(fs, path, data));
      (*ref)[path] = data;
    }
    if (round % 3 == 2) {
      std::string victim = "/hot" + std::to_string(round % 10);
      ASSERT_OK(fs->Unlink(victim));
      ref->erase(victim);
      ASSERT_OK(fs->Sync());
      ASSERT_OK(fs->ForceClean().status());
    }
  }
  ASSERT_OK(fs->Sync());
}

void VerifyAgainstRef(LfsFileSystem* fs,
                      const std::map<std::string, std::vector<uint8_t>>& ref) {
  for (const auto& [path, expect] : ref) {
    ASSERT_OK_AND_ASSIGN(auto data, fs->ReadFile(path));
    EXPECT_EQ(data, expect) << path;
  }
}

class MultiLogTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MultiLogTest, DifferentialChurnThenCheckThenRemount) {
  LfsConfig cfg = MultiLogConfig(GetParam());
  MemDisk disk(cfg.block_size, 8192);
  std::map<std::string, std::vector<uint8_t>> ref;
  {
    ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mkfs(&disk, cfg));
    Churn(fs.get(), &ref);
    VerifyAgainstRef(fs.get(), ref);
    ASSERT_OK(fs->Unmount());
  }
  // Offline-checker oracle: the unmounted image must be fully consistent.
  ASSERT_OK_AND_ASSIGN(CheckReport report, CheckLfsImage(&disk));
  EXPECT_EQ(report.errors, 0u) << report.Summary();
  // Remount oracle: everything readable and intact.
  ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mount(&disk, cfg));
  VerifyAgainstRef(fs.get(), ref);
  ASSERT_OK(fs->Unmount());
}

TEST_P(MultiLogTest, RecoversAfterCrashMidWorkload) {
  // Crash after every N-th device write during a multi-log workload; every
  // crash point must mount cleanly with a consistent image.
  for (uint64_t crash_after : {3u, 9u, 17u, 33u, 61u, 120u}) {
    LfsConfig cfg = MultiLogConfig(GetParam());
    CrashDisk disk(std::make_unique<MemDisk>(cfg.block_size, 8192));
    std::map<std::string, std::vector<uint8_t>> ref;
    {
      ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mkfs(&disk, cfg));
      // Checkpointed base state the crash can never lose.
      ASSERT_OK(fs->WriteFile("/base", TestContent(7, 5000)));
      ASSERT_OK(fs->Sync());
      disk.CrashAfterWrites(crash_after, /*torn_blocks=*/1);
      for (int i = 0; i < 40; i++) {
        fs->clock().Tick();
        Status st = Upsert(fs.get(), "/f" + std::to_string(i % 8),
                           TestContent(i, 700 + 53 * i));
        if (!st.ok()) {
          break;  // writes started failing post-crash; state is frozen
        }
        if (i % 7 == 6 && !fs->Sync().ok()) {
          break;
        }
      }
    }
    disk.ClearCrash();
    ASSERT_OK_AND_ASSIGN(CheckReport report, CheckLfsImage(&disk));
    EXPECT_EQ(report.errors, 0u)
        << "crash_after=" << crash_after << ": " << report.Summary();
    ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mount(&disk, cfg));
    ASSERT_OK_AND_ASSIGN(auto base, fs->ReadFile("/base"));
    EXPECT_EQ(base, TestContent(7, 5000));
    // Whatever else was recovered must read back without errors.
    for (int i = 0; i < 8; i++) {
      std::string path = "/f" + std::to_string(i);
      if (fs->Exists(path)) {
        EXPECT_TRUE(fs->ReadFile(path).ok()) << path;
      }
    }
    ASSERT_OK(fs->Unmount());
  }
}

INSTANTIATE_TEST_SUITE_P(NumLogs, MultiLogTest, ::testing::Values(1u, 2u, 4u));

TEST(MultiLogFormatTest, SingleLogCheckpointCarriesNoExtraLogs) {
  // num_logs == 1 must keep the legacy checkpoint encoding: the multi-log
  // extension is present only when extra append points exist.
  LfsConfig cfg = MultiLogConfig(1);
  MemDisk disk(cfg.block_size, 8192);
  ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mkfs(&disk, cfg));
  ASSERT_OK(fs->WriteFile("/f", TestContent(1, 4000)));
  ASSERT_OK(fs->Unmount());
  fs.reset();
  const Superblock sb = [&] {
    std::vector<uint8_t> block(cfg.block_size);
    EXPECT_TRUE(disk.ReadBlock(0, block).ok());
    auto r = Superblock::DecodeFrom(block);
    EXPECT_TRUE(r.ok());
    return r.value();
  }();
  std::vector<uint8_t> region(size_t{sb.cr_blocks} * sb.block_size);
  for (BlockNo base : {sb.cr_base0, sb.cr_base1}) {
    if (!disk.Read(base, sb.cr_blocks, region).ok()) {
      continue;
    }
    Result<Checkpoint> ck = Checkpoint::DecodeFrom(region);
    if (ck.ok()) {
      EXPECT_TRUE(ck->extra_logs.empty());
    }
  }
}

TEST(MultiLogFormatTest, ImagesMountAcrossNumLogsSettings) {
  // An image written with 4 logs mounts with 1 (extra append points are
  // abandoned to the cleaner) and vice versa; data survives both switches.
  MemDisk disk(1024, 8192);
  std::map<std::string, std::vector<uint8_t>> ref;
  {
    ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mkfs(&disk, MultiLogConfig(4)));
    Churn(fs.get(), &ref);
    ASSERT_OK(fs->Unmount());
  }
  {
    ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mount(&disk, MultiLogConfig(1)));
    VerifyAgainstRef(fs.get(), ref);
    auto extra = TestContent(5555, 2000);
    ASSERT_OK(fs->WriteFile("/after_downgrade", extra));
    ref["/after_downgrade"] = extra;
    ASSERT_OK(fs->Unmount());
  }
  {
    ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mount(&disk, MultiLogConfig(2)));
    VerifyAgainstRef(fs.get(), ref);
    ASSERT_OK(fs->Unmount());
  }
  ASSERT_OK_AND_ASSIGN(CheckReport report, CheckLfsImage(&disk));
  EXPECT_EQ(report.errors, 0u) << report.Summary();
}

TEST(MultiLogCleanerTest, ColdMigrationsLandInColdLogs) {
  // With multiple logs, cleaner survivors (old mtimes) must classify into a
  // log other than 0, leaving per-temperature segment populations behind.
  // Interleave cold and hot blocks so every segment holds both; once the hot
  // half is overwritten, cleaning those segments must migrate cold survivors.
  LfsConfig cfg = MultiLogConfig(2);
  MemDisk disk(cfg.block_size, 8192);
  ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mkfs(&disk, cfg));
  std::map<std::string, std::vector<uint8_t>> ref;
  for (int i = 0; i < 32; i++) {
    std::string cold = "/cold" + std::to_string(i);
    auto cdata = TestContent(9000 + i, 2048);
    ASSERT_OK(fs->WriteFile(cold, cdata));
    ref[cold] = cdata;
    std::string hot = "/hot" + std::to_string(i);
    auto hdata = TestContent(100 + i, 2048);
    ASSERT_OK(fs->WriteFile(hot, hdata));
    ref[hot] = hdata;
  }
  ASSERT_OK(fs->Sync());
  // Advance time, then kill the hot half: segments become half-dead with
  // old cold survivors, exactly what cost-benefit cleaning targets.
  for (int round = 0; round < 8; round++) {
    for (int i = 0; i < 32; i++) {
      fs->clock().Tick();
      std::string hot = "/hot" + std::to_string(i);
      auto hdata = TestContent(round * 1000 + i, 2048);
      ASSERT_OK(Upsert(fs.get(), hot, hdata));
      ref[hot] = hdata;
    }
    ASSERT_OK(fs->Sync());
    ASSERT_OK(fs->ForceClean().status());
  }
  // Drain the fully-dead segments (free harvest) until cost-benefit has to
  // pick the half-live cold/hot mixtures and migrate their survivors.
  for (int i = 0; i < 20; i++) {
    fs->clock().Tick();
    ASSERT_OK(fs->ForceClean().status());
  }
  VerifyAgainstRef(fs.get(), ref);
  const SegUsage& usage = fs->seg_usage();
  uint32_t tagged_cold = 0;
  for (SegNo seg = 0; seg < usage.nsegments(); seg++) {
    const SegUsageEntry& e = usage.Get(seg);
    if (e.state != SegState::kClean && e.log_id > 0) {
      tagged_cold++;
    }
  }
  EXPECT_GT(tagged_cold, 0u) << "no segment was ever filled by a cold log";
  ASSERT_OK(fs->Unmount());
}

TEST(MultiLogCleanerTest, ReuseCountsPersistAcrossRemount) {
  LfsConfig cfg = MultiLogConfig(2);
  MemDisk disk(cfg.block_size, 8192);
  std::map<std::string, std::vector<uint8_t>> ref;
  {
    ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mkfs(&disk, cfg));
    Churn(fs.get(), &ref);
    ASSERT_OK(fs->Unmount());
  }
  ASSERT_OK_AND_ASSIGN(auto fs, LfsFileSystem::Mount(&disk, cfg));
  uint64_t total_reuse = 0;
  const SegUsage& usage = fs->seg_usage();
  for (SegNo seg = 0; seg < usage.nsegments(); seg++) {
    total_reuse += usage.Get(seg).reuse_count;
  }
  EXPECT_GT(total_reuse, 0u) << "segment fill cycles were not persisted";
  ASSERT_OK(fs->Unmount());
}

}  // namespace
}  // namespace lfs
