// Tests for the POSIX-flavored descriptor layer, run against BOTH
// filesystems (the layer is backend-agnostic, so the suite is parameterized
// over the backend).

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/ffs/ffs.h"
#include "src/fs/fd_table.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

enum class Backend { kLfs, kFfs };

class FdTableTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    LfsConfig cfg = SmallConfig();
    disk_ = std::make_unique<MemDisk>(cfg.block_size, 8192);
    if (GetParam() == Backend::kLfs) {
      fs_ = std::move(LfsFileSystem::Mkfs(disk_.get(), cfg)).value();
    } else {
      fs_ = std::move(ffs::FfsFileSystem::Mkfs(disk_.get(), cfg.block_size)).value();
    }
    fds_ = std::make_unique<FdTable>(fs_.get());
  }

  std::unique_ptr<MemDisk> disk_;
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<FdTable> fds_;
};

TEST_P(FdTableTest, OpenMissingFileFails) {
  auto fd = fds_->Open("/nope", kRdOnly);
  EXPECT_EQ(fd.status().code(), StatusCode::kNotFound);
}

TEST_P(FdTableTest, CreateWriteReadRoundTrip) {
  ASSERT_OK_AND_ASSIGN(int fd, fds_->Open("/f", kRdWr | kCreate));
  std::vector<uint8_t> data = TestContent(1, 5000);
  ASSERT_OK_AND_ASSIGN(uint64_t w, fds_->Write(fd, data));
  EXPECT_EQ(w, 5000u);
  ASSERT_OK_AND_ASSIGN(uint64_t pos, fds_->Seek(fd, 0, Whence::kSet));
  EXPECT_EQ(pos, 0u);
  std::vector<uint8_t> back(5000);
  ASSERT_OK_AND_ASSIGN(uint64_t r, fds_->Read(fd, back));
  EXPECT_EQ(r, 5000u);
  EXPECT_EQ(back, data);
  ASSERT_OK(fds_->Close(fd));
}

TEST_P(FdTableTest, OffsetsAdvanceIndependently) {
  ASSERT_OK_AND_ASSIGN(int a, fds_->Open("/f", kRdWr | kCreate));
  ASSERT_OK_AND_ASSIGN(int b, fds_->Open("/f", kRdOnly));
  std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_OK(fds_->Write(a, data).status());
  std::vector<uint8_t> half(4);
  ASSERT_OK(fds_->Read(b, half).status());
  EXPECT_EQ(half, (std::vector<uint8_t>{1, 2, 3, 4}));
  ASSERT_OK(fds_->Read(b, half).status());
  EXPECT_EQ(half, (std::vector<uint8_t>{5, 6, 7, 8}));
  // a's offset is at 8 (after its write), independent of b's reads.
  ASSERT_OK_AND_ASSIGN(uint64_t apos, fds_->Seek(a, 0, Whence::kCur));
  EXPECT_EQ(apos, 8u);
}

TEST_P(FdTableTest, ExclusiveCreateFailsOnExisting) {
  ASSERT_OK(fds_->Open("/f", kWrOnly | kCreate).status());
  auto again = fds_->Open("/f", kWrOnly | kCreate | kExclusive);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST_P(FdTableTest, TruncateOnOpen) {
  ASSERT_OK(fs_->WriteFile("/f", TestContent(2, 1000)));
  ASSERT_OK_AND_ASSIGN(int fd, fds_->Open("/f", kWrOnly | kTruncate));
  ASSERT_OK_AND_ASSIGN(FileStat st, fds_->Fstat(fd));
  EXPECT_EQ(st.size, 0u);
}

TEST_P(FdTableTest, AppendAlwaysWritesAtEof) {
  ASSERT_OK(fs_->WriteFile("/log", TestContent(3, 10)));
  ASSERT_OK_AND_ASSIGN(int fd, fds_->Open("/log", kWrOnly | kAppend));
  std::vector<uint8_t> line1 = {'a', 'b'};
  std::vector<uint8_t> line2 = {'c', 'd'};
  ASSERT_OK(fds_->Write(fd, line1).status());
  // Seek backwards; kAppend must still direct the next write to EOF.
  ASSERT_OK(fds_->Seek(fd, 0, Whence::kSet).status());
  ASSERT_OK(fds_->Write(fd, line2).status());
  ASSERT_OK_AND_ASSIGN(auto all, fs_->ReadFile("/log"));
  ASSERT_EQ(all.size(), 14u);
  EXPECT_EQ(all[10], 'a');
  EXPECT_EQ(all[12], 'c');
}

TEST_P(FdTableTest, ReadOnWriteOnlyFails) {
  ASSERT_OK_AND_ASSIGN(int fd, fds_->Open("/f", kWrOnly | kCreate));
  std::vector<uint8_t> buf(10);
  EXPECT_FALSE(fds_->Read(fd, buf).ok());
  EXPECT_FALSE(fds_->Pread(fd, 0, buf).ok());
}

TEST_P(FdTableTest, WriteOnReadOnlyFails) {
  ASSERT_OK(fs_->WriteFile("/f", TestContent(4, 10)));
  ASSERT_OK_AND_ASSIGN(int fd, fds_->Open("/f", kRdOnly));
  std::vector<uint8_t> buf(10);
  EXPECT_FALSE(fds_->Write(fd, buf).ok());
  EXPECT_FALSE(fds_->Ftruncate(fd, 0).ok());
}

TEST_P(FdTableTest, PreadPwriteDoNotMoveOffset) {
  ASSERT_OK_AND_ASSIGN(int fd, fds_->Open("/f", kRdWr | kCreate));
  std::vector<uint8_t> data = TestContent(5, 100);
  ASSERT_OK(fds_->Pwrite(fd, 50, data).status());
  ASSERT_OK_AND_ASSIGN(uint64_t pos, fds_->Seek(fd, 0, Whence::kCur));
  EXPECT_EQ(pos, 0u);
  std::vector<uint8_t> back(100);
  ASSERT_OK_AND_ASSIGN(uint64_t n, fds_->Pread(fd, 50, back));
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(back, data);
}

TEST_P(FdTableTest, SeekPastEofThenWriteMakesHole) {
  ASSERT_OK_AND_ASSIGN(int fd, fds_->Open("/f", kRdWr | kCreate));
  ASSERT_OK(fds_->Seek(fd, 10000, Whence::kSet).status());
  std::vector<uint8_t> tail = {9, 9};
  ASSERT_OK(fds_->Write(fd, tail).status());
  ASSERT_OK_AND_ASSIGN(FileStat st, fds_->Fstat(fd));
  EXPECT_EQ(st.size, 10002u);
  std::vector<uint8_t> hole(100);
  ASSERT_OK(fds_->Pread(fd, 100, hole).status());
  EXPECT_TRUE(std::all_of(hole.begin(), hole.end(), [](uint8_t b) { return b == 0; }));
}

TEST_P(FdTableTest, DescriptorsAreReusedLowestFirst) {
  ASSERT_OK_AND_ASSIGN(int a, fds_->Open("/a", kWrOnly | kCreate));
  ASSERT_OK_AND_ASSIGN(int b, fds_->Open("/b", kWrOnly | kCreate));
  EXPECT_EQ(b, a + 1);
  ASSERT_OK(fds_->Close(a));
  ASSERT_OK_AND_ASSIGN(int c, fds_->Open("/c", kWrOnly | kCreate));
  EXPECT_EQ(c, a);  // the lowest free slot comes back first
  EXPECT_EQ(fds_->open_count(), 2u);
}

TEST_P(FdTableTest, OperationsOnClosedFdFail) {
  ASSERT_OK_AND_ASSIGN(int fd, fds_->Open("/f", kRdWr | kCreate));
  ASSERT_OK(fds_->Close(fd));
  std::vector<uint8_t> buf(4);
  EXPECT_FALSE(fds_->Read(fd, buf).ok());
  EXPECT_FALSE(fds_->Close(fd).ok());
  EXPECT_FALSE(fds_->Seek(fd, 0, Whence::kSet).ok());
}

TEST_P(FdTableTest, OpenDirectoryForWriteFails) {
  ASSERT_OK(fs_->Mkdir("/d"));
  EXPECT_FALSE(fds_->Open("/d", kRdWr).ok());
  EXPECT_TRUE(fds_->Open("/d", kRdOnly).ok());  // stat-style opens allowed
}

INSTANTIATE_TEST_SUITE_P(Backends, FdTableTest,
                         ::testing::Values(Backend::kLfs, Backend::kFfs),
                         [](const auto& param_info) {
                           return param_info.param == Backend::kLfs ? "Lfs" : "Ffs";
                         });

}  // namespace
}  // namespace lfs
