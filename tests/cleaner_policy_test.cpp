// Fine-grained reclamation (ISSUE 10): the adaptive policy governor, the
// cleaner QoS token bucket, and partial-segment compaction.
//
//   - governor thresholds: an emptied-out utilization histogram flips the hot
//     log to greedy, a mid-utilization one keeps cost-benefit, and switches
//     are counted;
//   - QoS accounting: refill against the modeled clock capped at burst,
//     charges that may run the bucket into deficit, discretionary deferral
//     above the critical floor and escalation at it (no wedge);
//   - partial compaction: differential oracle against the full-copy cleaner
//     (byte-identical namespaces, clean lfsck, clean remount on both), and
//     exhaustive crash-point exploration through a drain.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/explorer.h"
#include "src/check/workload.h"
#include "src/lfs/check.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

// ---------------------------------------------------------------------------
// Governor thresholds

// A histogram with `n` buckets, all zero.
std::vector<uint32_t> Histogram(size_t n) { return std::vector<uint32_t>(n, 0); }

LfsConfig AdaptiveConfig() {
  LfsConfig cfg;
  cfg.adaptive_cleaning = true;  // governor_greedy_fraction/low_u defaults
  return cfg;
}

TEST(CleanerGovernorTest, EmptiedOutHistogramSwitchesHotLogToGreedy) {
  CleanerGovernor gov;
  gov.Configure(AdaptiveConfig());
  ASSERT_TRUE(gov.enabled());

  // Everything nearly empty: greedy is optimal (cheapest victims first).
  std::vector<uint32_t> hist = Histogram(64);
  hist[0] = 10;
  hist[1] = 5;
  GovernorDecision d = gov.Decide(hist);
  EXPECT_EQ(d.hot_policy, CleaningPolicy::kGreedy);
  EXPECT_EQ(d.cold_policy, CleaningPolicy::kCostBenefit);

  // The expensive middle of the bimodal distribution: cost-benefit.
  std::vector<uint32_t> mid = Histogram(64);
  mid[32] = 20;
  mid[40] = 20;
  d = gov.Decide(mid);
  EXPECT_EQ(d.hot_policy, CleaningPolicy::kCostBenefit);
  EXPECT_EQ(d.cold_policy, CleaningPolicy::kCostBenefit);
}

TEST(CleanerGovernorTest, ThresholdIsInclusiveAndSwitchesAreCounted) {
  LfsConfig cfg = AdaptiveConfig();
  cfg.governor_greedy_fraction = 0.35;
  cfg.governor_low_u = 0.25;
  CleanerGovernor gov;
  gov.Configure(cfg);

  // With 64 buckets, buckets 0..15 have (b+1)/64 <= 0.25 and count as "low".
  // low/total = 7/20 is exactly the greedy fraction: inclusive, so greedy.
  std::vector<uint32_t> hist = Histogram(64);
  hist[4] = 7;    // low
  hist[32] = 13;  // mid
  EXPECT_EQ(gov.Decide(hist).hot_policy, CleaningPolicy::kGreedy);
  EXPECT_EQ(gov.switches(), 0u);  // first decision establishes the baseline

  // One fewer low victim drops below the fraction: back to cost-benefit.
  hist[4] = 6;
  hist[32] = 14;
  EXPECT_EQ(gov.Decide(hist).hot_policy, CleaningPolicy::kCostBenefit);
  EXPECT_EQ(gov.switches(), 1u);

  // Same decision again is not a switch.
  EXPECT_EQ(gov.Decide(hist).hot_policy, CleaningPolicy::kCostBenefit);
  EXPECT_EQ(gov.switches(), 1u);

  // An empty histogram (no dirty segments) is not "emptied out".
  EXPECT_EQ(gov.Decide(Histogram(64)).hot_policy, CleaningPolicy::kCostBenefit);
  EXPECT_EQ(gov.switches(), 1u);
}

TEST(CleanerGovernorTest, DisabledGovernorPassesThroughFixedPolicy) {
  LfsConfig cfg;
  cfg.policy = CleaningPolicy::kGreedy;
  cfg.partial_compaction = true;
  CleanerGovernor gov;
  gov.Configure(cfg);
  ASSERT_FALSE(gov.enabled());

  std::vector<uint32_t> mid = Histogram(64);
  mid[32] = 100;  // would be cost-benefit if the governor were deciding
  GovernorDecision d = gov.Decide(mid);
  EXPECT_EQ(d.hot_policy, CleaningPolicy::kGreedy);
  EXPECT_EQ(d.cold_policy, CleaningPolicy::kGreedy);
  EXPECT_TRUE(d.partial);  // partial compaction rides along without adaptivity
  EXPECT_EQ(gov.switches(), 0u);
}

// ---------------------------------------------------------------------------
// QoS token accounting

TEST(CleanerQosTest, RefillChargeAndDeficitAccounting) {
  CleanerQos qos;
  qos.Configure(/*bytes_per_sec=*/1000.0, /*burst_sec=*/2.0);
  ASSERT_TRUE(qos.enabled());
  // Starts full: 2000 bytes of burst.
  EXPECT_DOUBLE_EQ(qos.tokens(), 2000.0);
  EXPECT_TRUE(qos.HasTokens());

  qos.Charge(500);
  EXPECT_DOUBLE_EQ(qos.tokens(), 1500.0);
  EXPECT_DOUBLE_EQ(qos.deficit_bytes(), 0.0);

  // An escalated pass may overdraw: the bucket goes negative.
  qos.Charge(2000);
  EXPECT_DOUBLE_EQ(qos.tokens(), -500.0);
  EXPECT_DOUBLE_EQ(qos.deficit_bytes(), 500.0);
  EXPECT_FALSE(qos.HasTokens());

  // The first refill only anchors the clock; no tokens accrue.
  qos.Refill(10.0);
  EXPECT_DOUBLE_EQ(qos.tokens(), -500.0);
  // 0.4 modeled seconds at 1000 B/s pays back 400 bytes of the deficit.
  qos.Refill(10.4);
  EXPECT_NEAR(qos.tokens(), -100.0, 1e-6);
  EXPECT_FALSE(qos.HasTokens());
  // A long idle stretch refills, capped at the burst size.
  qos.Refill(100.0);
  EXPECT_DOUBLE_EQ(qos.tokens(), 2000.0);
  EXPECT_TRUE(qos.HasTokens());
  // Time never runs backwards on the modeled clock; a stale now is a no-op.
  qos.Refill(50.0);
  EXPECT_DOUBLE_EQ(qos.tokens(), 2000.0);
}

TEST(CleanerQosTest, ZeroRateDisablesThrottling) {
  CleanerQos qos;
  qos.Configure(0.0, 1.0);
  EXPECT_FALSE(qos.enabled());
  EXPECT_TRUE(qos.HasTokens());
  qos.Charge(1 << 30);
  EXPECT_TRUE(qos.HasTokens());  // charges are no-ops when disabled
}

TEST(CleanerQosTest, DiscretionaryPassDefersWhenBucketIsDry) {
  LfsConfig cfg = SmallConfig();
  cfg.cleaner_qos_bytes_per_sec = 1.0;  // effectively always dry
  cfg.cleaner_qos_burst_sec = 0.0;      // start empty
  MemDisk disk(cfg.block_size, 8192);
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();
  ASSERT_TRUE(fs->cleaner_qos().enabled());

  // Fragment a few segments so there would be victims to clean.
  for (int i = 0; i < 8; i++) {
    ASSERT_OK(fs->WriteFile("/f" + std::to_string(i),
                            TestContent(i, 8 * cfg.block_size)));
  }
  ASSERT_OK(fs->Sync());
  for (int i = 0; i < 8; i += 2) {
    ASSERT_OK(fs->Unlink("/f" + std::to_string(i)));
  }
  ASSERT_OK(fs->Sync());

  // The clean pool is far above the critical floor, so the pass is
  // discretionary — and the dry bucket defers it without selecting victims.
  ASSERT_OK_AND_ASSIGN(uint32_t reclaimed, fs->ForceClean());
  EXPECT_EQ(reclaimed, 0u);
  EXPECT_GE(fs->stats().qos_deferrals, 1u);
  EXPECT_EQ(fs->stats().qos_escalations, 0u);
  EXPECT_EQ(fs->stats().segments_cleaned, 0u);
  ASSERT_OK(fs->Unmount());
}

TEST(CleanerQosTest, EscalatesAtCriticalFloorInsteadOfWedging) {
  LfsConfig cfg = SmallConfig();
  cfg.cleaner_qos_bytes_per_sec = 1.0;  // dry forever at this scale
  cfg.cleaner_qos_burst_sec = 0.0;
  // Small disk so sustained churn actually erodes the clean pool down to the
  // critical floor within a few waves.
  MemDisk disk(cfg.block_size, 2048);
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();

  std::map<std::string, std::vector<uint8_t>> model;
  int file_id = 0;
  for (int wave = 0; wave < 36 && fs->stats().qos_escalations == 0; wave++) {
    // Land a wave of files on disk first (Sync), THEN kill every other one:
    // unlinking before the sync would just drop the blocks from the write
    // buffer and leave the segments fully live. This way each wave turns
    // ~3 segments half-live — dead space only cleaning can reclaim — and the
    // dry bucket defers discretionary passes until the pool hits the floor.
    for (int j = 0; j < 6; j++, file_id++) {
      std::string name = "/w" + std::to_string(file_id);
      std::vector<uint8_t> data =
          TestContent(static_cast<uint64_t>(file_id), 8 * cfg.block_size);
      ASSERT_OK(fs->WriteFile(name, data));
      model[name] = std::move(data);
    }
    ASSERT_OK(fs->Sync());
    for (int j = 0; j < 6; j += 2) {
      std::string name = "/w" + std::to_string(file_id - 6 + j);
      ASSERT_OK(fs->Unlink(name));
      model.erase(name);
    }
    ASSERT_OK(fs->Sync());
  }

  // The throttle deferred discretionary passes but escalated at the floor:
  // the filesystem kept going instead of wedging on a dry bucket.
  EXPECT_GE(fs->stats().qos_escalations, 1u);
  EXPECT_GT(fs->stats().qos_charged_bytes, 0u);
  EXPECT_GT(fs->cleaner_qos().deficit_bytes(), 0.0);
  EXPECT_EQ(fs->mount_state(), MountState::kReadWrite);
  for (const auto& [name, data] : model) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> got, fs->ReadFile(name));
    EXPECT_EQ(got, data) << name;
  }
  ASSERT_OK(fs->Unmount());
  fs.reset();
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();
}

// ---------------------------------------------------------------------------
// Partial vs full compaction: differential oracle

// Drives the same fragmentation workload against one filesystem; returns the
// reference model of surviving contents.
std::map<std::string, std::vector<uint8_t>> ChurnWorkload(LfsFileSystem* fs,
                                                          uint32_t block_size) {
  std::map<std::string, std::vector<uint8_t>> model;
  auto put = [&](const std::string& name, uint64_t seed, size_t blocks) {
    std::vector<uint8_t> data = TestContent(seed, blocks * block_size);
    if (fs->Exists(name)) {  // overwrite in place: dead blocks in old segments
      auto ino = fs->Lookup(name);
      EXPECT_OK(ino.status());
      EXPECT_OK(fs->Truncate(*ino, 0));
      EXPECT_OK(fs->WriteAt(*ino, 0, data));
    } else {
      EXPECT_OK(fs->WriteFile(name, data));
    }
    model[name] = std::move(data);
  };
  for (int i = 0; i < 12; i++) {
    put("/f" + std::to_string(i), 100 + static_cast<uint64_t>(i), 8);
  }
  EXPECT_OK(fs->Sync());
  for (int i = 0; i < 12; i += 2) {
    EXPECT_OK(fs->Unlink("/f" + std::to_string(i)));
    model.erase("/f" + std::to_string(i));
  }
  EXPECT_OK(fs->Sync());
  EXPECT_OK(fs->ForceClean().status());
  for (int i = 1; i < 12; i += 4) {
    put("/f" + std::to_string(i), 500 + static_cast<uint64_t>(i), 5);  // overwrite
  }
  EXPECT_OK(fs->Sync());
  EXPECT_OK(fs->ForceClean().status());
  EXPECT_OK(fs->ForceClean().status());
  return model;
}

TEST(PartialCompactionTest, DifferentialOracleAgainstFullCopyCleaner) {
  LfsConfig full_cfg = SmallConfig();
  LfsConfig partial_cfg = SmallConfig();
  partial_cfg.partial_compaction = true;
  partial_cfg.partial_compaction_min_u = 0.3;
  partial_cfg.partial_compaction_max_blocks = 4;  // several passes per victim

  MemDisk full_disk(full_cfg.block_size, 8192);
  MemDisk partial_disk(partial_cfg.block_size, 8192);
  auto full_fs = std::move(LfsFileSystem::Mkfs(&full_disk, full_cfg)).value();
  auto partial_fs =
      std::move(LfsFileSystem::Mkfs(&partial_disk, partial_cfg)).value();

  auto full_model = ChurnWorkload(full_fs.get(), full_cfg.block_size);
  auto partial_model = ChurnWorkload(partial_fs.get(), partial_cfg.block_size);
  ASSERT_EQ(full_model, partial_model);  // same workload, same survivors

  // The partial instance actually drained incrementally; the full one never.
  EXPECT_GT(partial_fs->stats().partial_compactions, 0u);
  EXPECT_GT(partial_fs->stats().partial_blocks_moved, 0u);
  EXPECT_EQ(full_fs->stats().partial_compactions, 0u);

  // Byte-identical namespaces while mounted.
  for (const auto& [name, data] : full_model) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> fgot, full_fs->ReadFile(name));
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> pgot, partial_fs->ReadFile(name));
    EXPECT_EQ(fgot, data) << name;
    EXPECT_EQ(pgot, data) << name;
  }

  // Both images check clean offline (exact live accounting: a drain that
  // over- or under-debited the victim trips lfsck's usage.mismatch error).
  ASSERT_OK(full_fs->Unmount());
  ASSERT_OK(partial_fs->Unmount());
  full_fs.reset();
  partial_fs.reset();
  for (MemDisk* d : {&full_disk, &partial_disk}) {
    auto report = CheckLfsImage(d);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->errors, 0u) << report->Summary();
  }

  // And both remount to the same namespace.
  full_fs = std::move(LfsFileSystem::Mount(&full_disk, full_cfg)).value();
  partial_fs = std::move(LfsFileSystem::Mount(&partial_disk, partial_cfg)).value();
  for (const auto& [name, data] : full_model) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> fgot, full_fs->ReadFile(name));
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> pgot, partial_fs->ReadFile(name));
    EXPECT_EQ(fgot, data) << name;
    EXPECT_EQ(pgot, data) << name;
  }
  ASSERT_OK(full_fs->Unmount());
  ASSERT_OK(partial_fs->Unmount());
}

TEST(PartialCompactionTest, AdaptiveCleaningReclaimsWithPolicyAttribution) {
  LfsConfig cfg = SmallConfig();
  cfg.adaptive_cleaning = true;
  cfg.partial_compaction = true;
  cfg.partial_compaction_min_u = 0.3;
  cfg.partial_compaction_max_blocks = 4;
  MemDisk disk(cfg.block_size, 8192);
  auto fs = std::move(LfsFileSystem::Mkfs(&disk, cfg)).value();

  auto model = ChurnWorkload(fs.get(), cfg.block_size);

  const LfsStats& st = fs->stats();
  EXPECT_GT(st.segments_cleaned, 0u);
  // Every reclaimed victim is attributed to the policy that picked it, and
  // attribution never exceeds the reclaim count.
  uint64_t by_policy = st.segments_cleaned_by_policy[0] +
                       st.segments_cleaned_by_policy[1];
  EXPECT_GT(by_policy, 0u);
  EXPECT_LE(by_policy, st.segments_cleaned);

  for (const auto& [name, data] : model) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> got, fs->ReadFile(name));
    EXPECT_EQ(got, data) << name;
  }
  ASSERT_OK(fs->Unmount());
  fs.reset();
  auto report = CheckLfsImage(&disk);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u) << report->Summary();
}

// ---------------------------------------------------------------------------
// Crash mid-partial-compaction

TEST(PartialCompactionTest, WorkloadFieldRoundTripsThroughText) {
  check::Workload w;
  w.name = "t";
  w.partial_compaction = 1;
  ASSERT_OK_AND_ASSIGN(check::Workload back, check::Workload::FromText(w.ToText()));
  EXPECT_EQ(back.partial_compaction, 1u);
  EXPECT_TRUE(back.Config().partial_compaction);

  // Scripts without the field parse to the legacy full-copy cleaner.
  ASSERT_OK_AND_ASSIGN(check::Workload legacy,
                       check::Workload::FromText("workload l\nop sync\n"));
  EXPECT_EQ(legacy.partial_compaction, 0u);
  EXPECT_FALSE(legacy.Config().partial_compaction);
}

TEST(PartialCompactionTest, ExhaustiveCrashExplorationThroughDrainIsClean) {
  // A compact fragmentation trace whose `op clean` passes drain victims in
  // 4-block slices (workload.partial_compaction): every device-edge crash
  // point — including those between drain slices, with the victim
  // half-relocated — must recover to a consistent, usable image.
  check::Workload w;
  w.name = "partialdrain";
  w.disk_blocks = 2048;
  w.num_logs = 1;
  w.write_buffer_blocks = 16;
  w.partial_compaction = 1;
  auto op1 = [&](check::OpKind k, const std::string& a) {
    w.ops.push_back({k, a});
  };
  auto write = [&](const std::string& p, uint64_t off, uint64_t len, uint64_t seed) {
    check::Op op;
    op.kind = check::OpKind::kWrite;
    op.a = p;
    op.offset = off;
    op.length = len;
    op.seed = seed;
    w.ops.push_back(std::move(op));
  };
  op1(check::OpKind::kMkdir, "/d");
  for (int i = 0; i < 6; i++) {
    op1(check::OpKind::kCreate, "/d/f" + std::to_string(i));
    write("/d/f" + std::to_string(i), 0, 3000, 40 + static_cast<uint64_t>(i));
  }
  w.ops.push_back({check::OpKind::kSync});
  op1(check::OpKind::kUnlink, "/d/f0");
  op1(check::OpKind::kUnlink, "/d/f2");
  op1(check::OpKind::kUnlink, "/d/f4");
  w.ops.push_back({check::OpKind::kSync});
  w.ops.push_back({check::OpKind::kClean});
  write("/d/f1", 1024, 2000, 50);  // overwrite across the drained segments
  w.ops.push_back({check::OpKind::kSync});
  w.ops.push_back({check::OpKind::kClean});

  ASSERT_OK_AND_ASSIGN(check::ExploreReport report, check::ExploreWorkload(w));
  std::string digest;
  for (const check::CrashFailure& f : report.failures) {
    digest += "  " + f.Describe() + "\n";
  }
  EXPECT_TRUE(report.clean()) << digest;
  EXPECT_GT(report.edges, 0u);
  EXPECT_EQ(report.checked, report.unique_states);
}

}  // namespace
}  // namespace lfs
