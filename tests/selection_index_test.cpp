// Differential tests for the incremental victim-selection index: the indexed
// selection must be byte-identical to the reference scan-and-sort — same
// victims, same order — for any segment state and any `now`, under both
// cleaning policies. Covered at three levels: the bare VictimIndex against a
// shadow exhaustive sort (fuzzed, tie-heavy), the filesystem cleaner under a
// churning workload (including recycling, checkpoint-boundary changes, and
// remount), and the Section 3.5 simulator across policies and access
// patterns.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/sim.h"
#include "src/util/victim_index.h"
#include "tests/test_util.h"

namespace lfs {
namespace {

using ::lfs::testing::SmallConfig;
using ::lfs::testing::TestContent;

// The pre-index selection semantics, spelled out exhaustively: score every
// member, drop full segments, sort by score descending with segment-number
// ties ascending. Greedy scores are computed as 1-u (not via the live-byte
// shortcut) so the test independently checks that ascending (live, seg)
// order really is descending score order in IEEE doubles.
std::vector<uint32_t> ReferenceOrder(const VictimIndex& idx,
                                     const std::vector<int64_t>& live,
                                     const std::vector<uint64_t>& last_write,
                                     uint64_t capacity, bool greedy, uint64_t now) {
  struct Cand {
    double score;
    uint32_t seg;
  };
  std::vector<Cand> cands;
  for (uint32_t seg = 0; seg < live.size(); seg++) {
    if (live[seg] < 0 || static_cast<uint64_t>(live[seg]) >= capacity) {
      continue;  // absent, or u >= 1.0
    }
    double score;
    if (greedy) {
      double u = static_cast<double>(live[seg]) / static_cast<double>(capacity);
      score = 1.0 - u;
    } else {
      score = idx.Score(static_cast<uint64_t>(live[seg]), last_write[seg], now);
    }
    cands.push_back({score, seg});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.seg < b.seg;
  });
  std::vector<uint32_t> order;
  order.reserve(cands.size());
  for (const Cand& c : cands) {
    order.push_back(c.seg);
  }
  return order;
}

std::vector<uint32_t> DrainCursor(const VictimIndex& idx, bool greedy, uint64_t now) {
  std::vector<uint32_t> order;
  VictimIndex::Cursor cursor = idx.Select(greedy, now);
  for (uint32_t s = cursor.Next(); s != VictimIndex::kNone; s = cursor.Next()) {
    order.push_back(s);
  }
  return order;
}

TEST(VictimIndexTest, MatchesExhaustiveSortUnderRandomMutation) {
  const uint32_t nsegs = 96;
  const uint64_t capacity = 16;  // tiny, so live-byte collisions are common
  for (uint64_t seed = 1; seed <= 4; seed++) {
    VictimIndex idx(nsegs, capacity);
    std::vector<int64_t> live(nsegs, -1);  // -1 = not in the index
    std::vector<uint64_t> last_write(nsegs, 0);
    Rng rng(seed);
    uint64_t now = 4;
    for (int round = 0; round < 150; round++) {
      for (int op = 0; op < 12; op++) {
        uint32_t seg = static_cast<uint32_t>(rng.NextBelow(nsegs));
        // Small value ranges force score ties in every round; live can reach
        // capacity (and beyond) to exercise the u >= 1.0 exclusion, and
        // last_write can exceed now to exercise the age clamp.
        uint64_t l = rng.NextBelow(capacity + 2);
        uint64_t w = rng.NextBelow(now + 2);
        switch (rng.NextBelow(3)) {
          case 0:
            idx.Insert(seg, l, w);
            live[seg] = static_cast<int64_t>(l);
            last_write[seg] = w;
            break;
          case 1:
            idx.Remove(seg);
            live[seg] = -1;
            break;
          default:
            idx.Update(seg, l, w);
            live[seg] = static_cast<int64_t>(l);
            last_write[seg] = w;
            break;
        }
      }
      now += rng.NextBelow(3);
      for (bool greedy : {true, false}) {
        ASSERT_EQ(DrainCursor(idx, greedy, now),
                  ReferenceOrder(idx, live, last_write, capacity, greedy, now))
            << "seed=" << seed << " round=" << round << " greedy=" << greedy
            << " now=" << now;
      }
    }
  }
}

class SelectionIndexLfsTest : public ::testing::Test {
 protected:
  void Init(LfsConfig cfg, uint64_t disk_blocks = 4096) {
    cfg_ = cfg;
    disk_ = std::make_unique<MemDisk>(cfg_.block_size, disk_blocks);
    auto fs = LfsFileSystem::Mkfs(disk_.get(), cfg_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  // Replaces an existing file's contents (WriteFile only creates).
  void Overwrite(const std::string& path, const std::vector<uint8_t>& data) {
    ASSERT_OK_AND_ASSIGN(InodeNum ino, fs_->Lookup(path));
    ASSERT_OK(fs_->Truncate(ino, 0));
    ASSERT_OK(fs_->WriteAt(ino, 0, data));
  }

  // Direct comparison of the two public selection entry points at the
  // current state and time (the indexed path also self-checks on every
  // internal call because cfg.verify_selection is set).
  void ExpectSelectionMatches() {
    uint64_t now = fs_->clock().Now();
    for (uint32_t max : {1u, 4u, 64u}) {
      EXPECT_EQ(fs_->SelectSegmentsToClean(max),
                fs_->SelectSegmentsToCleanReference(max, now))
          << "max_segments=" << max;
    }
  }

  void Churn(CleaningPolicy policy) {
    LfsConfig cfg = SmallConfig();
    cfg.policy = policy;
    cfg.verify_selection = true;
    Init(cfg);

    for (int i = 0; i < 50; i++) {
      ASSERT_OK(fs_->WriteFile("/f" + std::to_string(i), TestContent(i, 3000)));
    }
    ASSERT_OK(fs_->Sync());
    ExpectSelectionMatches();

    // Fragment: delete a third, overwrite a third, then clean repeatedly so
    // victims get recycled and reused while selection keeps running.
    for (int i = 0; i < 50; i += 3) {
      ASSERT_OK(fs_->Unlink("/f" + std::to_string(i)));
    }
    for (int i = 1; i < 50; i += 3) {
      Overwrite("/f" + std::to_string(i), TestContent(i + 100, 3500));
    }
    ASSERT_OK(fs_->Sync());
    ExpectSelectionMatches();
    for (int pass = 0; pass < 10; pass++) {
      ASSERT_OK_AND_ASSIGN(uint32_t n, fs_->ForceClean());
      ExpectSelectionMatches();
      if (n == 0) {
        break;
      }
    }

    // Advance the checkpoint boundary (changes which segments are eligible)
    // and churn again on the far side of it.
    ASSERT_OK(fs_->WriteCheckpoint());
    ExpectSelectionMatches();
    for (int i = 2; i < 50; i += 3) {
      Overwrite("/f" + std::to_string(i), TestContent(i + 200, 2000));
    }
    ASSERT_OK(fs_->Sync());
    ASSERT_OK(fs_->ForceClean().status());
    ExpectSelectionMatches();
    EXPECT_EQ(fs_->stats().selection_mismatches, 0u);

    // Remount rebuilds the index from the on-disk usage chunks.
    ASSERT_OK(fs_->Unmount());
    fs_.reset();
    auto fs = LfsFileSystem::Mount(disk_.get(), cfg_);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
    ExpectSelectionMatches();
    for (int i = 1; i < 50; i += 3) {
      Overwrite("/f" + std::to_string(i), TestContent(i + 300, 1500));
    }
    ASSERT_OK(fs_->Sync());
    ASSERT_OK(fs_->ForceClean().status());
    ExpectSelectionMatches();
    EXPECT_EQ(fs_->stats().selection_mismatches, 0u);
    EXPECT_GT(fs_->stats().segments_cleaned, 0u);

    // The workload's survivors read back intact.
    for (int i = 1; i < 50; i += 3) {
      ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f" + std::to_string(i)));
      EXPECT_EQ(data, TestContent(i + 300, 1500)) << i;
    }
    for (int i = 2; i < 50; i += 3) {
      ASSERT_OK_AND_ASSIGN(auto data, fs_->ReadFile("/f" + std::to_string(i)));
      EXPECT_EQ(data, TestContent(i + 200, 2000)) << i;
    }
  }

  LfsConfig cfg_;
  std::unique_ptr<MemDisk> disk_;
  std::unique_ptr<LfsFileSystem> fs_;
};

TEST_F(SelectionIndexLfsTest, GreedyMatchesReferenceUnderChurn) {
  Churn(CleaningPolicy::kGreedy);
}

TEST_F(SelectionIndexLfsTest, CostBenefitMatchesReferenceUnderChurn) {
  Churn(CleaningPolicy::kCostBenefit);
}

TEST(SelectionIndexSimTest, IndexedPickMatchesReferenceAcrossPoliciesAndPatterns) {
  for (sim::Policy policy : {sim::Policy::kGreedy, sim::Policy::kCostBenefit}) {
    for (sim::AccessPattern pattern :
         {sim::AccessPattern::kUniform, sim::AccessPattern::kHotAndCold}) {
      sim::SimConfig cfg;
      cfg.nsegments = 64;
      cfg.blocks_per_segment = 32;
      cfg.disk_utilization = 0.80;
      cfg.policy = policy;
      cfg.pattern = pattern;
      cfg.age_sort = policy == sim::Policy::kCostBenefit;
      cfg.verify_selection = true;
      cfg.warmup_overwrites_per_file = 10;
      cfg.measure_overwrites_per_file = 10;
      sim::CleaningSimulator simulator(cfg);
      sim::SimResult result = simulator.Run();
      EXPECT_GT(result.segments_cleaned, 0u);
      EXPECT_EQ(simulator.selection_mismatches(), 0u)
          << "policy=" << static_cast<int>(policy)
          << " pattern=" << static_cast<int>(pattern);
    }
  }
}

}  // namespace
}  // namespace lfs
