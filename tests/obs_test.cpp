// Tests for the observability layer: latency histogram bucket math, trace
// ring-buffer wraparound and file round-trip, the metrics registry's JSON
// export (round-tripped through the repo's own parser), and the ScopedOpTimer
// plumbing. The whole file compiles and passes in both -DLFS_TRACE=ON and
// OFF configurations; the trace-dependent assertions are gated on
// LFS_TRACE_ENABLED.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/latency.h"
#include "src/obs/metrics.h"
#include "src/obs/modeled_time.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/util/json.h"

namespace lfs::obs {
namespace {

// --- LatencyHistogram bucket math ---

TEST(LatencyHistogramTest, BucketIndexEdges) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(7), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 4u);
  // Powers of two land in the bucket they open: [2^(i-1), 2^i).
  for (size_t i = 1; i < 63; i++) {
    uint64_t lo = uint64_t{1} << (i - 1);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i) << "lo of bucket " << i;
    EXPECT_EQ(LatencyHistogram::BucketIndex(2 * lo - 1), i) << "hi of bucket " << i;
  }
  EXPECT_EQ(LatencyHistogram::BucketIndex(UINT64_MAX), 64u - 1);
}

TEST(LatencyHistogramTest, BucketBoundsAgreeWithIndex) {
  for (size_t i = 0; i < LatencyHistogram::kBuckets - 1; i++) {
    uint64_t lo = LatencyHistogram::BucketLowerUs(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i);
    EXPECT_EQ(LatencyHistogram::BucketUpperUs(i), LatencyHistogram::BucketLowerUs(i + 1));
  }
}

TEST(LatencyHistogramTest, RecordRoundsSecondsToMicros) {
  LatencyHistogram h;
  h.Record(0.0);         // 0 us -> bucket 0
  h.Record(1e-6);        // 1 us
  h.Record(1.6e-6);      // rounds to 2 us
  h.Record(-5.0);        // clamped to 0
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.min_us(), 0u);
  EXPECT_EQ(h.max_us(), 2u);
}

TEST(LatencyHistogramTest, PercentilesClampToRecordedExtremes) {
  LatencyHistogram h;
  for (int i = 0; i < 99; i++) {
    h.RecordUs(100);  // bucket [64, 128)
  }
  h.RecordUs(70000);  // one outlier in bucket [65536, 131072)
  EXPECT_EQ(h.count(), 100u);
  // The p50 rank falls in the 100-us bucket; whatever interpolation is used
  // it must stay inside that bucket's bounds (and at least the recorded min).
  double p50 = h.PercentileUs(0.50);
  EXPECT_GE(p50, 100.0);
  EXPECT_LT(p50, 128.0);
  // Quantiles clamp to the recorded extremes: the low ranks can't report
  // less than min, and the outlier bucket's midpoint (~92682) can't exceed
  // the recorded max.
  EXPECT_EQ(h.PercentileUs(0.0), 100.0);
  EXPECT_EQ(h.PercentileUs(1.0), 70000.0);
  EXPECT_EQ(h.PercentileUs(0.999), 70000.0);
}

TEST(LatencyHistogramTest, EmptyHistogramIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanUs(), 0.0);
  EXPECT_EQ(h.PercentileUs(0.5), 0.0);
  EXPECT_EQ(h.min_us(), 0u);
  EXPECT_EQ(h.max_us(), 0u);
}

TEST(LatencyHistogramTest, MergeAndClear) {
  LatencyHistogram a, b;
  a.RecordUs(10);
  a.RecordUs(20);
  b.RecordUs(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min_us(), 10u);
  EXPECT_EQ(a.max_us(), 1000u);
  EXPECT_DOUBLE_EQ(a.MeanUs(), (10.0 + 20.0 + 1000.0) / 3.0);
  a.Clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.max_us(), 0u);
}

// --- TraceBuffer ring semantics and file round-trip ---

TEST(TraceBufferTest, WraparoundKeepsNewestOldestFirst) {
  TraceBuffer trace(8);
  for (uint64_t i = 0; i < 20; i++) {
    trace.Emit(TraceEventType::kSegmentWrite, OpType::kNone, /*ts=*/i * 10,
               /*a=*/i, /*b=*/0, /*t_model=*/0.0);
  }
  EXPECT_EQ(trace.capacity(), 8u);
  EXPECT_EQ(trace.size(), 8u);
  EXPECT_EQ(trace.emitted(), 20u);
  std::vector<TraceRecord> recs = trace.Snapshot();
  ASSERT_EQ(recs.size(), 8u);
  // The 8 newest records (seq 12..19), oldest first.
  for (size_t i = 0; i < recs.size(); i++) {
    EXPECT_EQ(recs[i].seq, 12 + i);
    EXPECT_EQ(recs[i].a, 12 + i);
    EXPECT_EQ(recs[i].ts, (12 + i) * 10);
  }
}

TEST(TraceBufferTest, FileRoundTrip) {
  TraceBuffer trace(16);
  trace.Emit(TraceEventType::kOpBegin, OpType::kWrite, 5, 42, 0, 0.25);
  trace.Emit(TraceEventType::kOpEnd, OpType::kWrite, 7, 42, 1, 0.75);
  trace.Emit(TraceEventType::kQuarantine, OpType::kNone, 9, 17, 0, 1.5);
  std::string path = ::testing::TempDir() + "/obs_test_roundtrip.trc";
  ASSERT_TRUE(trace.WriteFile(path).ok());

  auto read = TraceBuffer::ReadFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), 3u);
  const TraceRecord& r = (*read)[1];
  EXPECT_EQ(r.seq, 1u);
  EXPECT_EQ(r.ts, 7u);
  EXPECT_EQ(r.type, static_cast<uint16_t>(TraceEventType::kOpEnd));
  EXPECT_EQ(r.op, static_cast<uint16_t>(OpType::kWrite));
  EXPECT_EQ(r.a, 42u);
  EXPECT_EQ(r.b, 1u);
  EXPECT_DOUBLE_EQ(r.t_model, 0.75);
  EXPECT_EQ((*read)[2].a, 17u);
}

TEST(TraceBufferTest, ReadFileRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/obs_test_garbage.trc";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("not a trace file", f);
  fclose(f);
  EXPECT_FALSE(TraceBuffer::ReadFile(path).ok());
  EXPECT_FALSE(TraceBuffer::ReadFile("/nonexistent/no.trc").ok());
}

TEST(TraceBufferTest, NamesAreStable) {
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kCleanerPassEnd), "cleaner_pass_end");
  EXPECT_STREQ(OpTypeName(OpType::kCleanerPass), "cleaner_pass");
  EXPECT_STREQ(OpTypeName(OpType::kRead), "read");
}

// --- MetricsRegistry JSON/CSV export ---

TEST(MetricsRegistryTest, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.AddCounter("lfs.segments_cleaned", 12);
  reg.AddGauge("lfs.write_cost", 1.75);
  reg.AddGauge("big", 1e15);
  LatencyHistogram h;
  h.RecordUs(0);
  h.RecordUs(100);
  h.RecordUs(10000);
  reg.AddHistogram("lfs.op.write", h);

  auto doc = json::Parse(reg.ToJson(2));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* metrics = doc->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->Find("lfs.segments_cleaned"), nullptr);
  EXPECT_DOUBLE_EQ(metrics->Find("lfs.segments_cleaned")->as_number(), 12.0);
  EXPECT_DOUBLE_EQ(metrics->Find("lfs.write_cost")->as_number(), 1.75);
  EXPECT_DOUBLE_EQ(metrics->Find("big")->as_number(), 1e15);

  const json::Value* hists = doc->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* hw = hists->Find("lfs.op.write");
  ASSERT_NE(hw, nullptr);
  EXPECT_DOUBLE_EQ(hw->Find("count")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(hw->Find("min_us")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(hw->Find("max_us")->as_number(), 10000.0);
  // All exported percentile fields exist and are ordered.
  double p50 = hw->Find("p50_us")->as_number();
  double p90 = hw->Find("p90_us")->as_number();
  double p95 = hw->Find("p95_us")->as_number();
  double p99 = hw->Find("p99_us")->as_number();
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 10000.0);
}

TEST(MetricsRegistryTest, ExportsAreSortedAndCsvMatches) {
  MetricsRegistry reg;
  reg.AddCounter("zeta", 1);
  reg.AddCounter("alpha", 2);
  std::string js = reg.ToJson(0);
  EXPECT_LT(js.find("alpha"), js.find("zeta"));
  std::string csv = reg.ToCsv();
  EXPECT_NE(csv.find("alpha,2"), std::string::npos);
  EXPECT_NE(csv.find("zeta,1"), std::string::npos);
  EXPECT_LT(csv.find("alpha"), csv.find("zeta"));
}

TEST(MetricsRegistryTest, JsonNumberFormatting) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(0.0), "0");
  // Non-integral values round-trip through the parser exactly.
  auto v = json::Parse(JsonNumber(0.1));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->as_number(), 0.1);
  EXPECT_EQ(JsonString("a\"b\\c"), "\"a\\\"b\\\\c\"");
}

// --- FsObs / ScopedOpTimer plumbing ---

class FakeClockSource : public ModeledTimeSource {
 public:
  double ModeledTime() const override { return now_; }
  void Advance(double sec) { now_ += sec; }

 private:
  double now_ = 0.0;
};

TEST(ScopedOpTimerTest, RecordsModeledDeltaIntoOpHistogram) {
  FsObs obs;
  FakeClockSource dev;
  {
    ScopedOpTimer timer(&obs, OpType::kRead, &dev, /*clock=*/nullptr, /*arg=*/7);
    dev.Advance(0.001);  // 1000 us of modeled disk time inside the op
  }
  {
    ScopedOpTimer timer(&obs, OpType::kRead, &dev, nullptr);
    // No disk activity: records a zero sample.
  }
  const LatencyHistogram& h = obs.hist(OpType::kRead);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_us(), 1000u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(obs.hist(OpType::kWrite).count(), 0u);

#if LFS_TRACE_ENABLED
  ASSERT_NE(obs.tracer(), nullptr);
  std::vector<TraceRecord> recs = obs.trace.Snapshot();
  ASSERT_EQ(recs.size(), 4u);  // begin/end per timed scope
  EXPECT_EQ(recs[0].type, static_cast<uint16_t>(TraceEventType::kOpBegin));
  EXPECT_EQ(recs[0].a, 7u);
  EXPECT_EQ(recs[1].type, static_cast<uint16_t>(TraceEventType::kOpEnd));
  EXPECT_EQ(recs[1].b, 1u);  // ok
  EXPECT_DOUBLE_EQ(recs[1].t_model, 0.001);
#else
  // Tracing compiled out: tracer() is null and LFS_TRACE is a no-op, but the
  // histograms above still recorded — the metrics path has no trace
  // dependency.
  EXPECT_EQ(obs.tracer(), nullptr);
#endif
}

TEST(ScopedOpTimerTest, FailedOpStillRecordsLatency) {
  FsObs obs;
  FakeClockSource dev;
  {
    ScopedOpTimer timer(&obs, OpType::kUnlink, &dev, nullptr);
    dev.Advance(0.0005);
    timer.set_failed();
  }
  EXPECT_EQ(obs.hist(OpType::kUnlink).count(), 1u);
  EXPECT_EQ(obs.hist(OpType::kUnlink).max_us(), 500u);
#if LFS_TRACE_ENABLED
  std::vector<TraceRecord> recs = obs.trace.Snapshot();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[1].b, 0u);  // marked failed in the kOpEnd record
#endif
}

TEST(HistogramSnapshotTest, FromSummarizes) {
  LatencyHistogram h;
  for (int i = 0; i < 10; i++) {
    h.RecordUs(50);
  }
  HistogramSnapshot s = HistogramSnapshot::From(h);
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean_us, 50.0);
  EXPECT_EQ(s.min_us, 50u);
  EXPECT_EQ(s.max_us, 50u);
  EXPECT_EQ(s.p50_us, 50.0);  // single-bucket distributions clamp exactly
  EXPECT_EQ(s.p99_us, 50.0);
}

}  // namespace
}  // namespace lfs::obs
